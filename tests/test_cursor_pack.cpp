#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/layouts.h"
#include "mpi/cpu_pack.h"
#include "mpi/cursor.h"
#include "mpi/datatype.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

std::vector<Block> all_blocks(const DatatypePtr& dt, std::int64_t count) {
  BlockCursor cur(dt, count);
  std::vector<Block> out;
  Block b;
  while (cur.next(&b)) out.push_back(b);
  return out;
}

TEST(BlockCursor, PrimitiveYieldsOneBlock) {
  auto blocks = all_blocks(kDouble(), 1);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].offset, 0);
  EXPECT_EQ(blocks[0].len, 8);
}

TEST(BlockCursor, CountAdvancesByExtent) {
  auto r = Datatype::resized(kDouble(), 0, 32);
  auto blocks = all_blocks(r, 3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[1].offset, 32);
  EXPECT_EQ(blocks[2].offset, 64);
}

TEST(BlockCursor, VectorBlockSequence) {
  auto t = Datatype::vector(3, 2, 5, kDouble());
  auto blocks = all_blocks(t, 1);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].offset, 0);
  EXPECT_EQ(blocks[0].len, 16);
  EXPECT_EQ(blocks[1].offset, 40);
  EXPECT_EQ(blocks[2].offset, 80);
}

TEST(BlockCursor, TriangularColumns) {
  const std::int64_t n = 5;
  auto t = core::lower_triangular_type(n, n);
  auto blocks = all_blocks(t, 1);
  ASSERT_EQ(blocks.size(), static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(blocks[static_cast<std::size_t>(j)].offset, (j * n + j) * 8);
    EXPECT_EQ(blocks[static_cast<std::size_t>(j)].len, (n - j) * 8);
  }
}

TEST(BlockCursor, PartialBudgetSplitsBlocks) {
  auto t = Datatype::contiguous(8, kDouble());  // one 64-byte block
  BlockCursor cur(t, 1);
  Block b;
  ASSERT_TRUE(cur.next(24, &b));
  EXPECT_EQ(b.offset, 0);
  EXPECT_EQ(b.len, 24);
  ASSERT_TRUE(cur.next(100, &b));
  EXPECT_EQ(b.offset, 24);
  EXPECT_EQ(b.len, 40);
  EXPECT_TRUE(cur.done());
}

TEST(BlockCursor, BytesRemainingTracksProgress) {
  auto t = Datatype::vector(4, 2, 4, kDouble());
  BlockCursor cur(t, 2);
  EXPECT_EQ(cur.bytes_remaining(), 2 * 64);
  Block b;
  cur.next(10, &b);
  EXPECT_EQ(cur.bytes_remaining(), 128 - 10);
  EXPECT_EQ(cur.bytes_consumed(), 10);
}

TEST(BlockCursor, ZeroCountIsImmediatelyDone) {
  BlockCursor cur(kDouble(), 0);
  EXPECT_TRUE(cur.done());
  Block b;
  EXPECT_FALSE(cur.next(&b));
}

TEST(BlockCursor, NestedLoopsTraverseInOrder) {
  // vector of vectors: 2 outer blocks of (2 inner blocks of 1 double).
  auto inner = Datatype::vector(2, 1, 3, kDouble());
  auto outer = Datatype::hvector(2, 1, 100, inner);
  auto blocks = all_blocks(outer, 1);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].offset, 0);
  EXPECT_EQ(blocks[1].offset, 24);
  EXPECT_EQ(blocks[2].offset, 100);
  EXPECT_EQ(blocks[3].offset, 124);
}

TEST(BlockCursor, SumOfBlocksEqualsSize) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 1 + trial % 4;
    auto blocks = all_blocks(dt, count);
    const std::int64_t sum = std::accumulate(
        blocks.begin(), blocks.end(), std::int64_t{0},
        [](std::int64_t acc, const Block& b) { return acc + b.len; });
    EXPECT_EQ(sum, dt->size() * count) << dt->describe();
  }
}

TEST(BlockCursor, PartialTraversalMatchesFullTraversal) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 1 + trial % 3;
    auto full = all_blocks(dt, count);
    // Re-walk with random small budgets and merge the pieces.
    BlockCursor cur(dt, count);
    std::vector<Block> merged;
    std::uniform_int_distribution<int> budget(1, 17);
    Block b;
    while (cur.next(budget(rng), &b)) {
      if (!merged.empty() &&
          merged.back().offset + merged.back().len == b.offset) {
        merged.back().len += b.len;
      } else {
        merged.push_back(b);
      }
    }
    // Merge the reference the same way (adjacent full blocks may abut).
    std::vector<Block> ref;
    for (const Block& f : full) {
      if (!ref.empty() && ref.back().offset + ref.back().len == f.offset) {
        ref.back().len += f.len;
      } else {
        ref.push_back(f);
      }
    }
    ASSERT_EQ(merged.size(), ref.size()) << dt->describe();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(merged[i].offset, ref[i].offset);
      EXPECT_EQ(merged[i].len, ref[i].len);
    }
  }
}

// --- CPU pack/unpack --------------------------------------------------------------

TEST(CpuPack, VectorGathersStridedColumns) {
  auto t = Datatype::vector(2, 1, 2, kInt32());
  const std::int32_t src[] = {1, 2, 3, 4};
  std::vector<std::byte> out(8);
  cpu_pack(t, 1, src, out);
  std::int32_t vals[2];
  std::memcpy(vals, out.data(), 8);
  EXPECT_EQ(vals[0], 1);
  EXPECT_EQ(vals[1], 3);
}

TEST(CpuPack, UnpackScattersBack) {
  auto t = Datatype::vector(2, 1, 2, kInt32());
  const std::int32_t packed[] = {7, 9};
  std::int32_t dst[4] = {0, 0, 0, 0};
  cpu_unpack(t, 1,
             std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(packed), 8),
             dst);
  EXPECT_EQ(dst[0], 7);
  EXPECT_EQ(dst[1], 0);
  EXPECT_EQ(dst[2], 9);
}

TEST(CpuPack, TooSmallOutputThrows) {
  auto t = Datatype::contiguous(4, kDouble());
  std::vector<std::byte> out(8);
  double src[4];
  EXPECT_THROW(cpu_pack(t, 1, src, out), std::invalid_argument);
}

TEST(CpuPack, RoundTripRandomTypes) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 1 + trial % 3;
    const std::int64_t span = test::span_bytes(dt, count);
    std::vector<std::byte> src(static_cast<std::size_t>(span));
    test::fill_pattern(src.data(), src.size(), trial);
    // Base shifted so negative-lb types stay in range.
    const std::byte* base = src.data() - dt->true_lb();

    auto packed = test::reference_pack(dt, count, base);
    std::vector<std::byte> dst(static_cast<std::size_t>(span));
    std::byte* dst_base = dst.data() - dt->true_lb();
    cpu_unpack(dt, count, packed, dst_base);
    auto repacked = test::reference_pack(dt, count, dst_base);
    EXPECT_EQ(packed, repacked) << dt->describe();
  }
}

TEST(CpuPack, PartialPackMatchesWholePack) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 2;
    const std::int64_t total = dt->size() * count;
    if (total == 0) continue;
    const std::int64_t span = test::span_bytes(dt, count);
    std::vector<std::byte> src(static_cast<std::size_t>(span));
    test::fill_pattern(src.data(), src.size(), trial + 1000);
    const std::byte* base = src.data() - dt->true_lb();

    auto whole = test::reference_pack(dt, count, base);
    std::vector<std::byte> pieces(static_cast<std::size_t>(total));
    BlockCursor cur(dt, count);
    std::int64_t at = 0;
    std::uniform_int_distribution<int> step(1, 13);
    while (at < total) {
      const std::int64_t n =
          std::min<std::int64_t>(step(rng), total - at);
      const auto st = cpu_pack_some(
          cur, base,
          std::span<std::byte>(pieces.data() + at,
                               static_cast<std::size_t>(n)));
      EXPECT_EQ(st.bytes, n);
      at += n;
    }
    EXPECT_EQ(whole, pieces) << dt->describe();
  }
}

TEST(CpuPack, StatsCountPieces) {
  auto t = Datatype::vector(4, 1, 2, kDouble());
  double src[8];
  std::vector<std::byte> out(32);
  const auto st = cpu_pack(t, 1, src, out);
  EXPECT_EQ(st.bytes, 32);
  EXPECT_EQ(st.pieces, 4);
}

}  // namespace
}  // namespace gpuddt::mpi
