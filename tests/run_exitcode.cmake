# Run TOOL with ARGS (a single space-separated string) and require the
# exact exit code EXPECTED. Plain ctest entries can only distinguish
# zero from non-zero (WILL_FAIL), so the metrics_diff exit-code contract
# (0 ok / 1 mismatch / 2 usage / 3 baseline missing / 4 candidate
# missing) is asserted through this script.
if(NOT DEFINED TOOL OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "run_exitcode.cmake: TOOL and EXPECTED are required")
endif()
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${TOOL} ${arg_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL ${EXPECTED})
  message(FATAL_ERROR
    "${TOOL} ${ARGS}: expected exit ${EXPECTED}, got ${rc}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
