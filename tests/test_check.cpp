// Tests for the checking layer (src/check/, docs/checking.md): the stream
// hazard detector over the simulated runtime, the DEV invariant checker at
// the engine boundary, and their wiring into machines, engines and the
// MPI runtime.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/access_tracker.h"
#include "check/config.h"
#include "check/dev_invariants.h"
#include "core/engine.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "obs/recorder.h"
#include "simgpu/runtime.h"
#include "simgpu/staging.h"
#include "test_helpers.h"

namespace gpuddt {
namespace {

using core::CudaDevDist;
using Dir = core::GpuDatatypeEngine::Dir;

sg::MachineConfig checked_config(int devices = 1) {
  sg::MachineConfig m = test::machine_config(devices);
  m.check = 1;  // explicit per-machine setting beats env / build default
  return m;
}

/// Snapshot of the global sink totals, for per-test deltas (the sink is
/// process-global and other tests contribute to it).
struct SinkDelta {
  std::int64_t hazards0 = check::hazard_count();
  std::int64_t violations0 = check::violation_count();
  std::int64_t hazards() const { return check::hazard_count() - hazards0; }
  std::int64_t violations() const {
    return check::violation_count() - violations0;
  }
};

// --- Enablement -------------------------------------------------------------

TEST(CheckConfig, MachineSettingWins) {
  sg::MachineConfig off = test::machine_config(1);
  off.check = 0;
  sg::Machine m_off(off);
  EXPECT_EQ(m_off.observer(), nullptr);

  sg::Machine m_on(checked_config());
  ASSERT_NE(m_on.observer(), nullptr);
  EXPECT_NE(check::tracker_of(m_on), nullptr);
}

// --- Hazard detector --------------------------------------------------------

TEST(CheckHazard, UnorderedWritesAreWaw) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> h1(bytes), h2(bytes);
  sg::Stream s1(&m.device(0), "s1");
  sg::Stream s2(&m.device(0), "s2");

  const SinkDelta d;
  const auto n0 = check::diagnostics().size();
  sg::MemcpyAsync(ctx, dev, h1.data(), bytes, s1);
  // No event wait: the second upload is enqueued while the first may
  // still be in flight - a WAW on the device buffer.
  sg::MemcpyAsync(ctx, dev, h2.data(), bytes, s2);
  EXPECT_GE(d.hazards(), 1);

  const auto diags = check::diagnostics();
  ASSERT_GT(diags.size(), n0);
  const check::Diagnostic& diag = diags.back();
  EXPECT_EQ(diag.kind, "hazard");
  EXPECT_EQ(diag.type, "WAW");
  EXPECT_EQ(diag.device, 0);
  EXPECT_EQ(diag.a.queue, "s1");
  EXPECT_EQ(diag.b.queue, "s2");
  EXPECT_EQ(diag.a.label, "memcpy_async");
  EXPECT_EQ(diag.a.len, static_cast<std::int64_t>(bytes));
  EXPECT_EQ(diag.a.ptr, reinterpret_cast<std::uintptr_t>(dev));
  EXPECT_TRUE(diag.a.write);
  EXPECT_TRUE(diag.b.write);
  EXPECT_LT(diag.a.start, diag.b.finish);  // overlapping windows
  EXPECT_LT(diag.b.start, diag.a.finish);
  sg::Free(ctx, dev);
}

TEST(CheckHazard, RegisteredHostScratchExposesHiddenWaw) {
  // Two D2H copies from DISJOINT device buffers land in the SAME plain
  // (malloc'd) host vector with no ordering between their streams. The
  // only conflicting range is the host scratch, which the tracker skips
  // while unregistered - this WAW used to go undetected. Registering the
  // scratch (sg::ScopedStagingRegistration, what the protocol layers now
  // do for their staging) makes the same pair of copies a reported WAW.
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev1 = sg::Malloc(ctx, bytes);
  void* dev2 = sg::Malloc(ctx, bytes);
  std::vector<std::byte> scratch(bytes);
  sg::Stream s1(&m.device(0), "s1");
  sg::Stream s2(&m.device(0), "s2");

  {
    const SinkDelta d;
    sg::MemcpyAsync(ctx, scratch.data(), dev1, bytes, s1);
    sg::MemcpyAsync(ctx, scratch.data(), dev2, bytes, s2);
    EXPECT_EQ(d.hazards(), 0);  // the historical blind spot
  }
  sg::StreamSynchronize(ctx, s1);
  sg::StreamSynchronize(ctx, s2);
  {
    sg::ScopedStagingRegistration reg(m, scratch.data(), scratch.size());
    const SinkDelta d;
    sg::MemcpyAsync(ctx, scratch.data(), dev1, bytes, s1);
    sg::MemcpyAsync(ctx, scratch.data(), dev2, bytes, s2);
    EXPECT_GE(d.hazards(), 1);
    // diagnostics() returns a snapshot by value; copy the entry so it
    // outlives the temporary vector.
    const check::Diagnostic diag = check::diagnostics().back();
    EXPECT_EQ(diag.type, "WAW");
    EXPECT_EQ(diag.a.ptr, reinterpret_cast<std::uintptr_t>(scratch.data()));
  }
  sg::Free(ctx, dev1);
  sg::Free(ctx, dev2);
}

TEST(CheckHazard, ReadAfterUnorderedWriteIsRaw) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> host(bytes);
  sg::Stream s1(&m.device(0), "writer");
  sg::Stream s2(&m.device(0), "reader");

  const SinkDelta d;
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s1);
  sg::MemcpyAsync(ctx, host.data(), dev, bytes, s2);  // missing wait
  EXPECT_GE(d.hazards(), 1);
  EXPECT_EQ(check::diagnostics().back().type, "RAW");
  sg::Free(ctx, dev);
}

TEST(CheckHazard, WriteAfterUnorderedReadIsWar) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> host(bytes);
  sg::Stream s1(&m.device(0), "reader");
  sg::Stream s2(&m.device(0), "writer");

  sg::MemcpyAsync(ctx, host.data(), dev, bytes, s1);  // read dev
  const SinkDelta d;
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s2);  // overwrite, no wait
  EXPECT_GE(d.hazards(), 1);
  EXPECT_EQ(check::diagnostics().back().type, "WAR");
  sg::Free(ctx, dev);
}

TEST(CheckHazard, EventWaitOrdersAccesses) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> host(bytes);
  sg::Stream s1(&m.device(0), "producer");
  sg::Stream s2(&m.device(0), "consumer");

  const SinkDelta d;
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s1);
  sg::StreamWaitEvent(ctx, s2, sg::EventRecord(ctx, s1));
  sg::MemcpyAsync(ctx, host.data(), dev, bytes, s2);
  EXPECT_EQ(d.hazards(), 0);
  sg::Free(ctx, dev);
}

TEST(CheckHazard, SameStreamIsOrdered) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> h1(bytes), h2(bytes);
  sg::Stream s(&m.device(0), "only");

  const SinkDelta d;
  sg::MemcpyAsync(ctx, dev, h1.data(), bytes, s);
  sg::MemcpyAsync(ctx, dev, h2.data(), bytes, s);
  sg::MemcpyAsync(ctx, h1.data(), dev, bytes, s);
  EXPECT_EQ(d.hazards(), 0);
  sg::Free(ctx, dev);
}

TEST(CheckHazard, DisjointRangesAreClean) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  auto* dev = static_cast<std::byte*>(sg::Malloc(ctx, 2 * bytes));
  std::vector<std::byte> h1(bytes), h2(bytes);
  sg::Stream s1(&m.device(0), "a");
  sg::Stream s2(&m.device(0), "b");

  const SinkDelta d;
  sg::MemcpyAsync(ctx, dev, h1.data(), bytes, s1);
  sg::MemcpyAsync(ctx, dev + bytes, h2.data(), bytes, s2);  // disjoint halves
  EXPECT_EQ(d.hazards(), 0);
  sg::Free(ctx, dev);
}

TEST(CheckHazard, FreeDropsHistory) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  std::vector<std::byte> host(bytes);
  sg::Stream s1(&m.device(0), "a");
  sg::Stream s2(&m.device(0), "b");

  const SinkDelta d;
  void* dev = sg::Malloc(ctx, bytes);
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s1);
  sg::Free(ctx, dev);
  // A fresh allocation can land at the same address; the old history must
  // not produce a false positive against it.
  void* dev2 = sg::Malloc(ctx, bytes);
  sg::MemcpyAsync(ctx, dev2, host.data(), bytes, s2);
  EXPECT_EQ(d.hazards(), 0);
  sg::Free(ctx, dev2);
}

TEST(CheckHazard, UnregisteredHostStagingIsInvisible) {
  // Two unordered D2H downloads into the SAME malloc'd staging buffer are
  // a WAW on the host side - but plain host memory is not keyed to any
  // allocation, so the tracker has nowhere to file the ranges. This is
  // the blind spot register_host_range closes (next test).
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> staging(bytes);
  sg::Stream s1(&m.device(0), "a");
  sg::Stream s2(&m.device(0), "b");

  const SinkDelta d;
  sg::MemcpyAsync(ctx, staging.data(), dev, bytes, s1);
  sg::MemcpyAsync(ctx, staging.data(), dev, bytes, s2);
  EXPECT_EQ(d.hazards(), 0);  // undetected: documents the gap
  sg::Free(ctx, dev);
}

TEST(CheckHazard, RegisteredHostStagingIsTracked) {
  // Same seeded WAW as above, with the staging registered the way the
  // protocol registers payload staging: now the hazard is caught.
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> staging(bytes);
  sg::Stream s1(&m.device(0), "a");
  sg::Stream s2(&m.device(0), "b");

  m.register_host_range(staging.data(), bytes);
  const SinkDelta d;
  const auto n0 = check::diagnostics().size();
  sg::MemcpyAsync(ctx, staging.data(), dev, bytes, s1);
  sg::MemcpyAsync(ctx, staging.data(), dev, bytes, s2);
  EXPECT_GE(d.hazards(), 1);
  const auto diags = check::diagnostics();
  ASSERT_GT(diags.size(), n0);
  EXPECT_EQ(diags.back().type, "WAW");

  // Unregistering drops the history: a reuse of the same addresses as a
  // new logical buffer must not alias the old accesses.
  m.unregister_host_range(staging.data());
  const SinkDelta d2;
  m.register_host_range(staging.data(), bytes);
  sg::MemcpyAsync(ctx, staging.data(), dev, bytes, s2);
  EXPECT_EQ(d2.hazards(), 0);
  m.unregister_host_range(staging.data());
  EXPECT_THROW(m.unregister_host_range(staging.data()),
               std::invalid_argument);
  sg::Free(ctx, dev);
}

TEST(CheckHazard, CountersReachRecorder) {
  sg::Machine m(checked_config());
  check::set_recorder(m, &obs::default_recorder());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> h1(bytes), h2(bytes);
  sg::Stream s1(&m.device(0), "r1");
  sg::Stream s2(&m.device(0), "r2");

  auto& reg = obs::default_recorder().metrics();
  const std::int64_t ops0 = reg.counter("check.ops").value();
  const std::int64_t haz0 = reg.counter("check.hazards").value();
  sg::MemcpyAsync(ctx, dev, h1.data(), bytes, s1);
  sg::MemcpyAsync(ctx, dev, h2.data(), bytes, s2);
  EXPECT_GE(reg.counter("check.ops").value(), ops0 + 2);
  EXPECT_GE(reg.counter("check.hazards").value(), haz0 + 1);
  check::set_recorder(m, nullptr);
  sg::Free(ctx, dev);
}

// --- Engine under checking --------------------------------------------------

void roundtrip(sg::HostContext& ctx, core::GpuDatatypeEngine& eng,
               const mpi::DatatypePtr& dt, std::int64_t count,
               std::int64_t frag_bytes) {
  const std::int64_t total = dt->size() * count;
  const std::int64_t span = test::span_bytes(dt, count);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, total));
  auto* back = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(src, static_cast<std::size_t>(span), 5);
  std::byte* src_base = src - dt->true_lb();
  std::byte* back_base = back - dt->true_lb();

  auto pack = eng.start(Dir::kPack, dt, count, src_base);
  while (!pack->done()) {
    if (eng.process_some(*pack, packed + pack->bytes_done(), frag_bytes)
            .bytes == 0)
      break;
  }
  eng.finish(*pack);
  auto unpack = eng.start(Dir::kUnpack, dt, count, back_base);
  while (!unpack->done()) {
    if (eng.process_some(*unpack, packed + unpack->bytes_done(), frag_bytes)
            .bytes == 0)
      break;
  }
  eng.finish(*unpack);
  eng.synchronize();
  EXPECT_EQ(test::reference_pack(dt, count, back_base),
            test::reference_pack(dt, count, src_base));
  sg::Free(ctx, src);
  sg::Free(ctx, packed);
  sg::Free(ctx, back);
}

TEST(CheckEngine, PipelinedConversionRunsClean) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  core::EngineConfig cfg;
  cfg.unit_bytes = 1024;
  cfg.convert_chunk_units = 16;  // many small upload/launch windows
  core::GpuDatatypeEngine eng(ctx, cfg);

  const SinkDelta d;
  roundtrip(ctx, eng, core::lower_triangular_type(96, 96), 1, 8 * 1024);
  EXPECT_EQ(d.hazards(), 0);
  EXPECT_EQ(d.violations(), 0);
  EXPECT_GT(eng.stats().kernels_launched, 2);
}

TEST(CheckEngine, ResidueStreamRunsClean) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  core::EngineConfig cfg;
  cfg.unit_bytes = 1024;
  cfg.convert_chunk_units = 16;
  cfg.residue_separate_stream = true;
  core::GpuDatatypeEngine eng(ctx, cfg);

  const SinkDelta d;
  roundtrip(ctx, eng, core::lower_triangular_type(96, 96), 1, 8 * 1024);
  EXPECT_EQ(d.hazards(), 0);
  EXPECT_EQ(d.violations(), 0);
}

TEST(CheckEngine, CachedPathRunsCleanAndCountsDistinctUnits) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  core::EngineConfig cfg;
  cfg.unit_bytes = 1024;
  core::GpuDatatypeEngine eng(ctx, cfg);
  auto dt = core::lower_triangular_type(64, 64);

  const SinkDelta d;
  roundtrip(ctx, eng, dt, 1, 64 * 1024);  // first run fills the cache
  const auto* entry = eng.cache().find(dt, 1, cfg.unit_bytes);
  ASSERT_NE(entry, nullptr);
  const auto n_units = static_cast<std::int64_t>(entry->units.size());

  // Second run is served from the cache, with a budget of half a unit so
  // every unit is split across two windows: the per-window counter sees
  // each unit about twice, the distinct counter exactly once.
  const std::int64_t from_cache0 = eng.stats().units_from_cache;
  const std::int64_t distinct0 = eng.stats().units_from_cache_distinct;
  const std::int64_t total = dt->size();
  auto* src = static_cast<std::byte*>(
      sg::Malloc(ctx, test::span_bytes(dt, 1)));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, total));
  auto op = eng.start(Dir::kPack, dt, 1, src - dt->true_lb());
  ASSERT_TRUE(op->used_cache());
  while (!op->done()) {
    if (eng.process_some(*op, packed + op->bytes_done(), 512).bytes == 0)
      break;
  }
  eng.finish(*op);
  eng.synchronize();

  const std::int64_t from_cache = eng.stats().units_from_cache - from_cache0;
  const std::int64_t distinct =
      eng.stats().units_from_cache_distinct - distinct0;
  EXPECT_EQ(distinct, n_units);
  EXPECT_GT(from_cache, distinct);
  EXPECT_EQ(d.hazards(), 0);
  EXPECT_EQ(d.violations(), 0);
  sg::Free(ctx, src);
  sg::Free(ctx, packed);
}

TEST(CheckEngine, PingPongRunsClean) {
  harness::PingPongSpec spec;
  spec.cfg.world_size = 2;
  spec.cfg.machine = checked_config(2);
  spec.cfg.machine.device_memory_bytes = std::size_t{1} << 30;
  spec.dt0 = spec.dt1 = core::lower_triangular_type(256, 256);

  const SinkDelta d;
  const auto res = harness::run_pingpong(spec);
  EXPECT_GT(res.avg_roundtrip, 0);
  EXPECT_EQ(d.hazards(), 0);
  EXPECT_EQ(d.violations(), 0);
}

// --- DEV invariant checker --------------------------------------------------

TEST(CheckInvariants, OutOfBoundsUnitThrows) {
  const check::DevListBounds b{0, 1000, 2048, 1024};
  const CudaDevDist bad[] = {{950, 0, 100}};  // nc end 1050 > 1000
  const SinkDelta d;
  EXPECT_THROW(
      check::validate_dev_window(bad, b, 0, /*contiguous=*/false, "test"),
      check::InvariantViolation);
  EXPECT_EQ(d.violations(), 1);
  EXPECT_EQ(check::diagnostics().back().kind, "dev_invariant");
  EXPECT_EQ(check::diagnostics().back().type, "nc_bounds");
  EXPECT_EQ(check::diagnostics().back().unit_index, 0);
}

TEST(CheckInvariants, BadUnitLengthThrows) {
  const check::DevListBounds b{0, 4096, 4096, 1024};
  const CudaDevDist zero[] = {{0, 0, 0}};
  const CudaDevDist oversize[] = {{0, 0, 2048}};
  EXPECT_THROW(check::validate_dev_window(zero, b, 0, false, "test"),
               check::InvariantViolation);
  EXPECT_THROW(check::validate_dev_window(oversize, b, 0, false, "test"),
               check::InvariantViolation);
}

TEST(CheckInvariants, OverlappingPackDestinationsThrow) {
  const check::DevListBounds b{0, 8192, 2048, 1024};
  // Two units whose packed destinations collide on [512, 1024).
  const CudaDevDist bad[] = {{0, 0, 1024}, {4096, 512, 1024}};
  const SinkDelta d;
  EXPECT_THROW(
      check::validate_dev_window(bad, b, 0, /*contiguous=*/false, "test"),
      check::InvariantViolation);
  EXPECT_EQ(d.violations(), 1);
  EXPECT_EQ(check::diagnostics().back().type, "pk_overlap");
}

TEST(CheckInvariants, NonContiguousWindowThrows) {
  const check::DevListBounds b{0, 8192, 4096, 1024};
  // Valid pairwise, but the window must start at pk_expected=0 and be
  // gap-free; this one jumps 512 bytes.
  const CudaDevDist bad[] = {{0, 0, 1024}, {4096, 1536, 1024}};
  EXPECT_THROW(
      check::validate_dev_window(bad, b, 0, /*contiguous=*/true, "test"),
      check::InvariantViolation);
}

TEST(CheckInvariants, FullListCoverageChecked) {
  const check::DevListBounds b{0, 2048, 2048, 1024};
  const CudaDevDist good[] = {{0, 0, 1024}, {1024, 1024, 1024}};
  EXPECT_NO_THROW(check::validate_dev_list(good, b, "test"));
  // Same list with a missing tail no longer covers [0, total_bytes).
  const CudaDevDist gap[] = {{0, 0, 1024}};
  EXPECT_THROW(check::validate_dev_list(gap, b, "test"),
               check::InvariantViolation);
}

TEST(CheckInvariants, CacheInsertValidates) {
  sg::Machine m(test::machine_config(1));
  sg::HostContext ctx(m, 0);
  core::DevCache cache;
  cache.set_validation(true);
  auto dt = core::lower_triangular_type(16, 16);
  auto units = core::convert_all(dt, 1, 1024);
  ASSERT_FALSE(units.empty());
  units.front().nc_disp = dt->true_extent() + 4096;  // corrupt: out of bounds
  EXPECT_THROW(cache.insert(ctx, dt, 1, 1024, std::move(units)),
               check::InvariantViolation);
}

TEST(CheckInvariants, EngineValidatesWindowsWithoutFalsePositives) {
  // The whole-suite guarantee in miniature: a checked engine validates
  // every window of a real conversion without tripping.
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  core::EngineConfig cfg;
  cfg.unit_bytes = 1024;
  core::GpuDatatypeEngine eng(ctx, cfg);
  const SinkDelta d;
  roundtrip(ctx, eng, core::submatrix_type(64, 32, 96), 1, 4 * 1024);
  roundtrip(ctx, eng, core::lower_triangular_type(48, 48), 2, 4 * 1024);
  EXPECT_EQ(d.violations(), 0);
}

// --- Report serialization ---------------------------------------------------

TEST(CheckReport, JsonCarriesTotalsAndDiagnostics) {
  sg::Machine m(checked_config());
  sg::HostContext ctx(m, 0);
  const std::size_t bytes = 1 << 20;
  void* dev = sg::Malloc(ctx, bytes);
  std::vector<std::byte> host(bytes);
  sg::Stream s1(&m.device(0), "jsa");
  sg::Stream s2(&m.device(0), "jsb");
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s1);
  sg::MemcpyAsync(ctx, dev, host.data(), bytes, s2);
  sg::Free(ctx, dev);

  const std::string json = check::report_json();
  EXPECT_NE(json.find("\"schema\": \"gpuddt-check-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"hazards\""), std::string::npos);
  EXPECT_NE(json.find("\"dev_violations\""), std::string::npos);
  EXPECT_NE(json.find("\"WAW\""), std::string::npos);
  EXPECT_NE(json.find("jsa"), std::string::npos);
}

}  // namespace
}  // namespace gpuddt
