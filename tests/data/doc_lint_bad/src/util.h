// Fixture source: deliberately defines none of the doc's claims.
#pragma once
