// Fixture: "gpu." is registered but undocumented in the fixture docs.
constexpr const char* kKnownFamilies[] = {
    "pml.",
    "gpu.",
};
