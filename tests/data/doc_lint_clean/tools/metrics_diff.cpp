// Fixture: the family registry doc_lint cross-checks against metrics.md.
constexpr const char* kKnownFamilies[] = {
    "pml.",
};
