// Fixture source: defines everything the fixture docs claim.
#pragma once
// reads GPUDDT_DEMO; CLI parsing accepts "--demo-flag".
inline const char* kDemoFlag = "--demo-flag";
