// Collective operations: correctness on host and device buffers, with
// contiguous and derived datatypes, across world sizes (including
// non-powers of two) and topologies.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/layouts.h"
#include "mpi/coll.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

RuntimeConfig world(int n, int ranks_per_node = 1 << 30) {
  RuntimeConfig cfg;
  cfg.world_size = n;
  cfg.ranks_per_node = ranks_per_node;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  return cfg;
}

void with_plugin(Runtime& rt) {
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
}

class CollWorldSize : public ::testing::TestWithParam<int> {};

TEST_P(CollWorldSize, BcastHostInts) {
  Runtime rt(world(GetParam()));
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    std::vector<std::int32_t> buf(1000, -1);
    if (p.rank() == 2 % p.size())
      std::iota(buf.begin(), buf.end(), 100);
    coll.bcast(buf.data(), 1000, kInt32(), 2 % p.size());
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(buf[i], 100 + i);
  });
}

TEST_P(CollWorldSize, GatherScatterRoundTrip) {
  const int n = GetParam();
  Runtime rt(world(n));
  rt.run([n](Process& p) {
    Collectives coll(Comm{p});
    constexpr std::int64_t kCount = 256;
    std::vector<std::int64_t> mine(kCount, p.rank());
    std::vector<std::int64_t> all(kCount * n, -1);
    coll.gather(mine.data(), all.data(), kCount, kInt64(), 0);
    if (p.rank() == 0) {
      for (int r = 0; r < n; ++r)
        for (std::int64_t i = 0; i < kCount; ++i)
          EXPECT_EQ(all[r * kCount + i], r);
      // Mutate and scatter back.
      for (auto& v : all) v += 1000;
    }
    std::vector<std::int64_t> back(kCount, -1);
    coll.scatter(all.data(), back.data(), kCount, kInt64(), 0);
    for (std::int64_t i = 0; i < kCount; ++i)
      EXPECT_EQ(back[i], p.rank() + 1000);
  });
}

TEST_P(CollWorldSize, AllgatherOrdersBlocks) {
  const int n = GetParam();
  Runtime rt(world(n));
  rt.run([n](Process& p) {
    Collectives coll(Comm{p});
    constexpr std::int64_t kCount = 128;
    std::vector<double> mine(kCount, p.rank() + 0.5);
    std::vector<double> all(kCount * n, -1);
    coll.allgather(mine.data(), all.data(), kCount, kDouble());
    for (int r = 0; r < n; ++r)
      for (std::int64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(all[r * kCount + i], r + 0.5);
  });
}

TEST_P(CollWorldSize, AlltoallPermutesBlocks) {
  const int n = GetParam();
  Runtime rt(world(n));
  rt.run([n](Process& p) {
    Collectives coll(Comm{p});
    constexpr std::int64_t kCount = 64;
    std::vector<std::int32_t> out(kCount * n), in(kCount * n, -1);
    for (int r = 0; r < n; ++r)
      for (std::int64_t i = 0; i < kCount; ++i)
        out[r * kCount + i] = p.rank() * 1000 + r;  // destined for rank r
    coll.alltoall(out.data(), in.data(), kCount, kInt32());
    for (int r = 0; r < n; ++r)
      for (std::int64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(in[r * kCount + i], r * 1000 + p.rank());
  });
}

TEST_P(CollWorldSize, ReduceSumDoubles) {
  const int n = GetParam();
  Runtime rt(world(n));
  rt.run([n](Process& p) {
    Collectives coll(Comm{p});
    constexpr std::int64_t kCount = 500;
    std::vector<double> mine(kCount);
    for (std::int64_t i = 0; i < kCount; ++i)
      mine[i] = p.rank() * 1.0 + i;
    std::vector<double> result(kCount, -1);
    coll.reduce(mine.data(), result.data(), kCount, kDouble(),
                ReduceOp::kSum, 0);
    if (p.rank() == 0) {
      const double rank_sum = n * (n - 1) / 2.0;
      for (std::int64_t i = 0; i < kCount; ++i)
        EXPECT_DOUBLE_EQ(result[i], rank_sum + n * static_cast<double>(i));
    }
  });
}

TEST_P(CollWorldSize, AllreduceMaxInts) {
  const int n = GetParam();
  Runtime rt(world(n));
  rt.run([n](Process& p) {
    Collectives coll(Comm{p});
    std::int32_t mine = 10 + p.rank();
    std::int32_t result = -1;
    coll.allreduce(&mine, &result, 1, kInt32(), ReduceOp::kMax);
    EXPECT_EQ(result, 10 + n - 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollWorldSize, ::testing::Values(1, 2, 3, 5, 8));

TEST(Collectives, BcastDeviceTriangular) {
  Runtime rt(world(3));
  with_plugin(rt);
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    const std::int64_t n = 96;
    auto dt = core::lower_triangular_type(n, n);
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
    std::memset(buf, 0, static_cast<std::size_t>(n * n * 8));
    if (p.rank() == 0)
      test::fill_pattern(buf, static_cast<std::size_t>(n * n * 8), 66);
    coll.bcast(buf, 1, dt, 0);
    std::vector<std::byte> expect(static_cast<std::size_t>(n * n * 8));
    test::fill_pattern(expect.data(), expect.size(), 66);
    EXPECT_EQ(test::reference_pack(dt, 1, buf),
              test::reference_pack(dt, 1, expect.data()));
  });
}

TEST(Collectives, AllgatherDeviceVectors) {
  Runtime rt(world(4));
  with_plugin(rt);
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    // Each rank contributes a strided column block, gathered densely:
    // signature-compatible send/recv types per block.
    const std::int64_t rows = 64, cols = 8, ld = 96;
    auto vec = core::submatrix_type(rows, cols, ld);
    auto* mine = static_cast<double*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(ld * cols * 8)));
    for (std::int64_t j = 0; j < cols; ++j)
      for (std::int64_t i = 0; i < rows; ++i)
        mine[j * ld + i] = p.rank() * 10000.0 + j * 100.0 + i;
    auto* all = static_cast<double*>(sg::Malloc(
        p.gpu(), static_cast<std::size_t>(rows * cols * 8 * p.size())));
    // Gather as packed blocks: reuse allgather with the vector type on
    // the send side by first packing locally via a self-transfer. For the
    // collective itself, blocks travel as (vec) -> placed by extent; use
    // a dense type on the recv side of the same signature per block is
    // not expressible in this allgather signature, so exchange dense:
    // pack explicitly first.
    auto* packed = static_cast<double*>(sg::Malloc(
        p.gpu(), static_cast<std::size_t>(rows * cols * 8)));
    auto* plugin =
        dynamic_cast<proto::GpuDatatypePlugin*>(p.runtime().gpu_plugin());
    ASSERT_NE(plugin, nullptr);
    std::int64_t pos = 0;
    plugin->pack(p, mine, 1, vec,
                 std::span<std::byte>(reinterpret_cast<std::byte*>(packed),
                                      static_cast<std::size_t>(rows * cols * 8)),
                 &pos);
    coll.allgather(packed, all, rows * cols, kDouble());
    for (int r = 0; r < p.size(); ++r) {
      const double* blk = all + r * rows * cols;
      for (std::int64_t j = 0; j < cols; ++j)
        for (std::int64_t i = 0; i < rows; ++i)
          EXPECT_EQ(blk[j * rows + i], r * 10000.0 + j * 100.0 + i);
    }
  });
}

TEST(Collectives, WorksAcrossNodes) {
  Runtime rt(world(4, /*ranks_per_node=*/2));
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    std::int64_t v = p.rank() + 1;
    std::int64_t sum = 0;
    coll.allreduce(&v, &sum, 1, kInt64(), ReduceOp::kSum);
    EXPECT_EQ(sum, 1 + 2 + 3 + 4);
  });
}

TEST(Collectives, ReduceRejectsMixedTypes) {
  Runtime rt(world(2));
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    const std::int64_t lens[] = {1, 1};
    const std::int64_t displs[] = {0, 8};
    const DatatypePtr types[] = {kInt32(), kDouble()};
    auto mixed = Datatype::struct_type(lens, displs, types);
    std::byte in[32], out[32];
    EXPECT_THROW(coll.reduce(in, out, 1, mixed, ReduceOp::kSum, 0),
                 std::invalid_argument);
  });
}

TEST(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  Runtime rt(world(4));
  rt.run([](Process& p) {
    Collectives coll(Comm{p});
    for (int round = 0; round < 5; ++round) {
      std::int32_t v = p.rank() + round;
      std::int32_t mx = -1;
      coll.allreduce(&v, &mx, 1, kInt32(), ReduceOp::kMax);
      EXPECT_EQ(mx, 3 + round);
    }
  });
}

}  // namespace
}  // namespace gpuddt::mpi

namespace gpuddt::mpi {
namespace {

// --- Communicator split ----------------------------------------------------------

TEST(CommSplit, EvenOddGroupsExchangeIndependently) {
  Runtime rt(world(6));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm sub = comm.split(p.rank() % 2, p.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), p.rank() / 2);
    EXPECT_EQ(sub.world_rank(sub.rank()), p.rank());
    // Ring within the sub-communicator.
    const int next = (sub.rank() + 1) % sub.size();
    const int prev = (sub.rank() - 1 + sub.size()) % sub.size();
    int token = 100 * (p.rank() % 2) + sub.rank();
    int got = -1;
    Request r = sub.irecv(&got, 1, kInt32(), prev, 0);
    Request s = sub.isend(&token, 1, kInt32(), next, 0);
    sub.wait(r);
    sub.wait(s);
    EXPECT_EQ(got, 100 * (p.rank() % 2) + prev);
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  Runtime rt(world(4));
  rt.run([](Process& p) {
    Comm comm(p);
    // Reverse the rank order via the key.
    Comm sub = comm.split(0, p.size() - p.rank());
    EXPECT_EQ(sub.rank(), p.size() - 1 - p.rank());
    EXPECT_EQ(sub.world_rank(sub.rank()), p.rank());
  });
}

TEST(CommSplit, CollectivesWorkOnSubComm) {
  Runtime rt(world(6));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm sub = comm.split(p.rank() < 4 ? 0 : 1, p.rank());
    Collectives coll(sub);
    std::int64_t v = p.rank();
    std::int64_t sum = 0;
    coll.allreduce(&v, &sum, 1, kInt64(), ReduceOp::kSum);
    EXPECT_EQ(sum, p.rank() < 4 ? 0 + 1 + 2 + 3 : 4 + 5);
  });
}

TEST(CommSplit, WildcardSourceReturnsGroupRank) {
  Runtime rt(world(4));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm sub = comm.split(p.rank() % 2, p.rank());
    if (sub.rank() == 1) {
      int v = 77;
      sub.send(&v, 1, kInt32(), 0, 9);
    } else if (sub.rank() == 0) {
      int v = 0;
      const Status st = sub.recv(&v, 1, kInt32(), kAnySource, 9);
      EXPECT_EQ(v, 77);
      EXPECT_EQ(st.source, 1);  // group rank, not world rank
    }
  });
}

TEST(CommSplit, ParentAndChildTrafficDoNotCrossMatch) {
  Runtime rt(world(2));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm sub = comm.split(0, p.rank());
    // Same peer, same tag, different communicators.
    int a = -1, b = -1;
    if (p.rank() == 0) {
      int x = 1, y = 2;
      Request s1 = comm.isend(&x, 1, kInt32(), 1, 5);
      Request s2 = sub.isend(&y, 1, kInt32(), 1, 5);
      comm.wait(s1);
      sub.wait(s2);
    } else {
      // Receive the sub-communicator's message FIRST: it must not match
      // the world message even though (src, tag) are identical.
      sub.recv(&b, 1, kInt32(), 0, 5);
      comm.recv(&a, 1, kInt32(), 0, 5);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(CommSplit, DupIsolatesTraffic) {
  Runtime rt(world(2));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm copy = comm.dup();
    EXPECT_EQ(copy.rank(), comm.rank());
    EXPECT_EQ(copy.size(), comm.size());
    // Same (src, tag) on both comms: must not cross-match.
    if (p.rank() == 0) {
      int x = 5, y = 6;
      comm.send(&x, 1, kInt32(), 1, 3);
      copy.send(&y, 1, kInt32(), 1, 3);
    } else {
      int x = -1, y = -1;
      copy.recv(&y, 1, kInt32(), 0, 3);
      comm.recv(&x, 1, kInt32(), 0, 3);
      EXPECT_EQ(x, 5);
      EXPECT_EQ(y, 6);
    }
  });
}

TEST(CommSplit, NestedSplits) {
  Runtime rt(world(8));
  rt.run([](Process& p) {
    Comm comm(p);
    Comm half = comm.split(p.rank() / 4, p.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    int v = p.rank(), peer_v = -1;
    const int peer = 1 - quarter.rank();
    const Status st = quarter.sendrecv(&v, 1, kInt32(), peer, 0, &peer_v, 1,
                                       kInt32(), peer, 0);
    EXPECT_EQ(st.source, peer);
    // The quarters pair adjacent world ranks: 0-1, 2-3, ...
    EXPECT_EQ(peer_v, p.rank() % 2 == 0 ? p.rank() + 1 : p.rank() - 1);
  });
}

}  // namespace
}  // namespace gpuddt::mpi
