// The symbolic verifier (src/verify/): every datatype constructor must
// prove clean, the proof must be closed over all counts (subsuming the
// sampled canonical property test), seeded DEV/model mutations must each
// be rejected with the right obligation named, and the GPUDDT_VERIFY
// cache-insert hook must keep uncertifiable DEVs out of the cache.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "core/dev.h"
#include "core/dev_cache.h"
#include "core/engine.h"
#include "core/layouts.h"
#include "mpi/datatype.h"
#include "simgpu/machine.h"
#include "verify/hook.h"
#include "verify/pipeline.h"
#include "verify/symbolic.h"
#include "verify/verifier.h"
#include "test_helpers.h"

namespace gpuddt::verify {
namespace {

using mpi::Datatype;
using mpi::DatatypePtr;

DatatypePtr dbl() { return Datatype::primitive(mpi::Primitive::kDouble); }

/// The failing obligation names of a report, for exact-match assertions.
std::vector<std::string> failed_names(const Report& rep) {
  std::vector<std::string> out;
  for (const Obligation& o : rep.obligations) {
    if (!o.proved) out.push_back(o.name);
  }
  return out;
}

void expect_certified(const Report& rep) {
  const Obligation* o = rep.first_failed();
  EXPECT_TRUE(rep.certified())
      << rep.subject << ": " << (o ? o->name + ": " + o->detail : "");
}

/// Type + production-DEV proofs for one datatype over several
/// (count, unit_bytes) points.
void expect_all_proofs(const DatatypePtr& dt) {
  expect_certified(verify_type(*dt));
  for (const std::int64_t count : {1, 3}) {
    for (const std::int64_t s : {core::kMinUnitBytes, std::int64_t{1024}}) {
      const auto units = core::convert_all(dt, count, s);
      expect_certified(verify_dev(*dt, count, s, units));
    }
  }
}

// --- Every constructor proves clean -----------------------------------------------

TEST(Verify, Primitive) { expect_all_proofs(dbl()); }

TEST(Verify, Contiguous) {
  expect_all_proofs(Datatype::contiguous(16, dbl()));
}

TEST(Verify, Vector) { expect_all_proofs(Datatype::vector(8, 4, 16, dbl())); }

TEST(Verify, Hvector) {
  expect_all_proofs(Datatype::hvector(6, 3, 100, dbl()));
}

TEST(Verify, Indexed) {
  const std::int64_t lens[] = {3, 1, 4};
  const std::int64_t displs[] = {0, 5, 9};
  expect_all_proofs(Datatype::indexed(lens, displs, dbl()));
}

TEST(Verify, Hindexed) {
  const std::int64_t lens[] = {2, 2};
  const std::int64_t displs[] = {0, 40};
  expect_all_proofs(Datatype::hindexed(lens, displs, dbl()));
}

TEST(Verify, IndexedBlock) {
  const std::int64_t displs[] = {0, 4, 9, 15};
  expect_all_proofs(Datatype::indexed_block(2, displs, dbl()));
}

TEST(Verify, Struct) {
  const DatatypePtr types[] = {Datatype::primitive(mpi::Primitive::kChar),
                               dbl()};
  const std::int64_t lens[] = {3, 2};
  const std::int64_t displs[] = {0, 8};
  expect_all_proofs(Datatype::struct_type(lens, displs, types));
}

TEST(Verify, Subarray) {
  const std::int64_t sizes[] = {8, 10};
  const std::int64_t subsizes[] = {3, 4};
  const std::int64_t starts[] = {2, 1};
  expect_all_proofs(Datatype::subarray(sizes, subsizes, starts, dbl()));
}

TEST(Verify, DarrayBlockCyclic) {
  const std::int64_t gsizes[] = {12, 12};
  const Datatype::Distrib distribs[] = {Datatype::Distrib::kCyclic,
                                        Datatype::Distrib::kBlock};
  const std::int64_t dargs[] = {2, Datatype::kDefaultDarg};
  const std::int64_t psizes[] = {2, 2};
  for (int rank = 0; rank < 4; ++rank) {
    expect_all_proofs(
        Datatype::darray(4, rank, gsizes, distribs, dargs, psizes, dbl()));
  }
}

TEST(Verify, Resized) {
  expect_all_proofs(
      Datatype::resized(Datatype::vector(4, 2, 5, dbl()), 0, 50 * 8));
}

TEST(Verify, PaperLayouts) {
  expect_all_proofs(core::submatrix_type(32, 16, 64));
  expect_all_proofs(core::lower_triangular_type(24, 24));
  expect_all_proofs(core::stair_triangular_type(32, 32, 8));
  expect_all_proofs(core::transpose_type(12, 12));
}

// The 200-seed sweep the sampled canonical property test runs - here
// each seed's proof is closed over ALL counts (symbolic equivalence +
// the cross-element shift-disjointness argument), not just the sampled
// ones. Production DEVs at the paper's minimum unit size ride along.
TEST(Verify, RandomTypeSweepProvesForAllCounts) {
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(seed);
    const DatatypePtr dt = test::random_datatype(rng);
    const Report rep = verify_type(*dt);
    const Obligation* o = rep.first_failed();
    ASSERT_TRUE(rep.certified())
        << "seed " << seed << ": " << rep.subject << ": "
        << (o ? o->name + ": " + o->detail : "");
    const auto units = core::convert_all(dt, 2, core::kMinUnitBytes);
    expect_certified(verify_dev(*dt, 2, core::kMinUnitBytes, units));
  }
}

// --- Seeded mutations are rejected with the right obligation ----------------------

/// A unit list with enough pieces for index-1 mutations to be
/// interesting.
std::vector<core::CudaDevDist> fixture_units(const DatatypePtr& dt) {
  auto units = core::convert_all(dt, 2, core::kMinUnitBytes);
  EXPECT_GE(units.size(), 2u);
  return units;
}

TEST(VerifyMutation, DroppedUnitFailsUnitCount) {
  const DatatypePtr dt = core::lower_triangular_type(24, 24);
  auto units = fixture_units(dt);
  units.erase(units.begin() + 1);
  const Report rep = verify_dev(*dt, 2, core::kMinUnitBytes, units);
  EXPECT_FALSE(rep.certified());
  const auto names = failed_names(rep);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), kDevUnitCount);
}

TEST(VerifyMutation, ShiftedDisplacementFailsNcExact) {
  const DatatypePtr dt = core::lower_triangular_type(24, 24);
  auto units = fixture_units(dt);
  units[1].nc_disp += 8;
  const Report rep = verify_dev(*dt, 2, core::kMinUnitBytes, units);
  EXPECT_FALSE(rep.certified());
  EXPECT_EQ(failed_names(rep), std::vector<std::string>{kDevNcExact});
}

TEST(VerifyMutation, OverlappingPackDestinationFailsPkExact) {
  const DatatypePtr dt = core::lower_triangular_type(24, 24);
  auto units = fixture_units(dt);
  units[1].pk_disp = units[0].pk_disp;
  const Report rep = verify_dev(*dt, 2, core::kMinUnitBytes, units);
  EXPECT_FALSE(rep.certified());
  EXPECT_EQ(failed_names(rep), std::vector<std::string>{kDevPkExact});
}

TEST(VerifyMutation, ReorderedPipelineEdgeFailsHazardFree) {
  core::GpuDatatypeEngine::PipelineShape shape;
  EnginePipelineParams p = params_from_engine(shape, /*windows=*/6);
  EXPECT_TRUE(verify_pipeline(p).certified());
  // Dropping the desc_last_use WAR guard reproduces the PR 2
  // descriptor-slot race as a statically refuted obligation.
  p.mutate = MutateDag::kDropWarEdge;
  const Report rep = verify_pipeline(p);
  EXPECT_FALSE(rep.certified());
  EXPECT_EQ(failed_names(rep), std::vector<std::string>{kPipelineHazardFree});
}

TEST(VerifyPipeline, AllEngineShapesProveHazardFree) {
  for (const bool residue : {false, true}) {
    core::GpuDatatypeEngine::PipelineShape shape;
    shape.residue_separate_stream = residue;
    expect_certified(verify_pipeline(params_from_engine(shape, 8)));
  }
  core::GpuDatatypeEngine::PipelineShape shape;
  expect_certified(verify_pipeline(params_from_engine(shape, 6, 6)));
}

TEST(VerifyPipeline, StreamTriggeredChainProvesHazardFree) {
  // Both ring depths exercised well past reuse, at several depth
  // combinations including asymmetric ones.
  for (const int send_ring : {1, 2, 3}) {
    for (const int staging : {1, 2, 4}) {
      EnginePipelineParams p;
      p.windows = 8;
      p.wire_fragments = 8;
      p.stream_triggered = true;
      p.send_ring_depth = send_ring;
      p.staging_depth = staging;
      expect_certified(verify_pipeline(p));
    }
  }
}

TEST(VerifyMutation, DroppedStreamCreditEdgeFailsHazardFree) {
  EnginePipelineParams p;
  p.windows = 8;
  p.wire_fragments = 8;
  p.stream_triggered = true;
  EXPECT_TRUE(verify_pipeline(p).certified());
  // Without the wire(f) -> kernel(f + send_ring_depth) credit event the
  // pack kernel overwrites a send-ring slot an in-flight GET still
  // reads: a WAR the prover must refuse to order.
  p.mutate = MutateDag::kDropCreditEdge;
  const Report rep = verify_pipeline(p);
  EXPECT_FALSE(rep.certified());
  EXPECT_EQ(failed_names(rep), std::vector<std::string>{kPipelineHazardFree});
}

TEST(VerifyPipeline, StreamTriggeredRejectsUnmodeledShapes) {
  EnginePipelineParams p;
  p.windows = 8;
  p.wire_fragments = 8;
  p.stream_triggered = true;
  p.residue_separate_stream = true;  // stage_all refuses it; so does the model
  EXPECT_THROW(build_engine_pipeline(p), std::invalid_argument);
  p.residue_separate_stream = false;
  p.mutate = MutateDag::kDropWarEdge;  // targets the double-buffered uploader
  EXPECT_THROW(build_engine_pipeline(p), std::invalid_argument);
  EnginePipelineParams host;
  host.mutate = MutateDag::kDropCreditEdge;  // targets the stream chain
  EXPECT_THROW(build_engine_pipeline(host), std::invalid_argument);
}

// --- The cache-insert hook --------------------------------------------------------

class ForcedVerify {
 public:
  ForcedVerify() { set_forced(true); }
  ~ForcedVerify() { set_forced(std::nullopt); }
};

TEST(VerifyHook, CertifiesGoodInsertAndRejectsCorruptOne) {
  ForcedVerify forced;
  ASSERT_TRUE(enabled());
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  core::DevCache cache;
  const DatatypePtr dt = core::lower_triangular_type(16, 16);
  auto good = core::convert_all(dt, 1, 1024);
  cache.insert(ctx, dt, 1, 1024, good);  // certifies, no throw
  EXPECT_NE(cache.find(dt, 1, 1024), nullptr);

  auto bad = core::convert_all(dt, 2, 1024);
  ASSERT_GE(bad.size(), 2u);
  bad[1].nc_disp += 8;
  EXPECT_THROW(cache.insert(ctx, dt, 2, 1024, std::move(bad)),
               CertificationFailure);
  // The uncertified DEV never became reachable.
  EXPECT_EQ(cache.find(dt, 2, 1024), nullptr);
}

TEST(VerifyHook, ForcedOffDisablesCertification) {
  set_forced(false);
  EXPECT_FALSE(enabled());
  set_forced(std::nullopt);
}

// --- Symbolic algebra edge cases --------------------------------------------------

TEST(VerifySymbolic, ByteMapMergesAndComparesRuns) {
  ByteMap a;
  a.push(0, 8);
  a.push(8, 8);   // merges with [0,8)
  a.push(24, 8);  // gap: second run
  EXPECT_EQ(a.runs().size(), 2u);
  EXPECT_EQ(a.size(), 24);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 32);
  EXPECT_TRUE(a.self_disjoint());

  ByteMap b;
  b.push(0, 16);
  b.push(24, 8);
  EXPECT_TRUE(a == b);
}

TEST(VerifySymbolic, ShiftDisjointClosesOverAllCounts) {
  // Runs at [0,8) and [24,32): extent 16 interleaves elements cleanly
  // for every count; extent 12 collides element 0's second run with
  // element 1's first at some count - the prover must find it without
  // enumerating counts.
  ByteMap m;
  m.push(0, 8);
  m.push(24, 8);
  EXPECT_TRUE(m.shift_disjoint(16));
  EXPECT_FALSE(m.shift_disjoint(12));
  EXPECT_FALSE(m.shift_disjoint(0));  // non-empty map, no advance
}

}  // namespace
}  // namespace gpuddt::verify
