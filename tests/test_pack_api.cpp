// The explicit MPI_Pack/MPI_Unpack-style API on the GPU plugin, plus the
// GPUDirect RDMA small-message crossover policy.
#include <gtest/gtest.h>

#include <cstring>

#include "core/layouts.h"
#include "mpi/btl.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::proto {
namespace {

mpi::RuntimeConfig cfg2() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  return cfg;
}

TEST(PackApi, PacksHostBuffer) {
  mpi::Runtime rt(cfg2());
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    if (p.rank() != 0) return;
    auto dt = mpi::Datatype::vector(8, 2, 4, mpi::kInt32());
    std::vector<std::int32_t> src(8 * 4);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<std::int32_t>(i);
    std::vector<std::byte> out(dt->size() + 16);
    std::int64_t pos = 4;  // pack at an offset, MPI_Pack style
    plugin->pack(p, src.data(), 1, dt, out, &pos);
    EXPECT_EQ(pos, 4 + dt->size());
    const auto ref = test::reference_pack(dt, 1, src.data());
    EXPECT_EQ(std::memcmp(out.data() + 4, ref.data(), ref.size()), 0);
  });
}

TEST(PackApi, PacksDeviceBufferWithEngine) {
  mpi::Runtime rt(cfg2());
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    if (p.rank() != 0) return;
    const std::int64_t n = 64;
    auto dt = core::lower_triangular_type(n, n);
    auto* src = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
    test::fill_pattern(src, static_cast<std::size_t>(n * n * 8), 12);
    auto* out = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->size())));
    std::int64_t pos = 0;
    const vt::Time t0 = p.clock().now();
    plugin->pack(p, src, 1, dt,
                 std::span<std::byte>(out, static_cast<std::size_t>(dt->size())),
                 &pos);
    EXPECT_GT(p.clock().now(), t0);  // engine time charged
    const auto ref = test::reference_pack(dt, 1, src);
    EXPECT_EQ(std::memcmp(out, ref.data(), ref.size()), 0);
  });
}

TEST(PackApi, UnpackInverts) {
  mpi::Runtime rt(cfg2());
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    if (p.rank() != 0) return;
    auto dt = core::submatrix_type(32, 8, 48);
    const std::int64_t span = 48 * 8 * 8;
    auto* orig = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
    auto* back = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
    test::fill_pattern(orig, static_cast<std::size_t>(span), 9);
    std::memset(back, 0, static_cast<std::size_t>(span));
    std::vector<std::byte> wire(static_cast<std::size_t>(dt->size()));
    std::int64_t pos = 0;
    plugin->pack(p, orig, 1, dt, wire, &pos);
    pos = 0;
    plugin->unpack(p, wire, &pos, back, 1, dt);
    EXPECT_EQ(test::reference_pack(dt, 1, orig),
              test::reference_pack(dt, 1, back));
  });
}

TEST(PackApi, OverflowThrows) {
  mpi::Runtime rt(cfg2());
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    if (p.rank() != 0) return;
    auto dt = mpi::Datatype::contiguous(100, mpi::kDouble());
    double src[100];
    std::vector<std::byte> tiny(32);
    std::int64_t pos = 0;
    EXPECT_THROW(plugin->pack(p, src, 1, dt, tiny, &pos),
                 std::invalid_argument);
  });
}

// --- GPUDirect small-message crossover ---------------------------------------------------

TEST(GpuDirectLimit, SmallMessagesUseDirectRdma) {
  // Below the limit on IB, the RDMA family is selected: the receiver ends
  // up opening the sender's handle, so the transfer completes without
  // host fragments. Verify both correctness and that the latency is lower
  // than the staged path for a small message.
  auto run = [&](bool gpudirect, std::int64_t elems) {
    auto cfg = cfg2();
    cfg.ranks_per_node = 1;
    cfg.gpu_eager_limit = 0;  // isolate rendezvous protocols
    cfg.gpudirect_rdma = gpudirect;
    mpi::Runtime rt(cfg);
    rt.set_gpu_plugin(std::make_shared<GpuDatatypePlugin>());
    vt::Time elapsed = 0;
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      // Contiguous payload: the regime where GPUDirect RDMA wins ([14]) -
      // a single one-sided get, no pack/unpack kernels on either side.
      auto dt = mpi::Datatype::contiguous(elems, mpi::kDouble());
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->extent() + 64)));
      test::fill_pattern(buf, static_cast<std::size_t>(dt->size()), 3);
      // Warm both paths once, then measure.
      for (int it = 0; it < 2; ++it) {
        const vt::Time t0 = p.clock().now();
        if (p.rank() == 0) {
          comm.send(buf, 1, dt, 1, it);
          comm.recv(buf, 1, dt, 1, it + 100);
        } else {
          comm.recv(buf, 1, dt, 0, it);
          comm.send(buf, 1, dt, 0, it + 100);
        }
        if (p.rank() == 0 && it == 1) elapsed = p.clock().now() - t0;
      }
    });
    return elapsed;
  };
  // 2048 doubles = 16KB < 30KB limit.
  const vt::Time direct = run(true, 2048);
  const vt::Time staged = run(false, 2048);
  EXPECT_LT(direct, staged);
}

TEST(GpuDirectLimit, LargeMessagesFallBackToHostStaging) {
  // A 16MB message with GPUDirect enabled must take the copy-in/out path
  // (above gpudirect_limit_bytes) and still be correct, and perform like
  // the GPUDirect-off configuration.
  auto cfg = cfg2();
  cfg.ranks_per_node = 1;
  cfg.gpudirect_rdma = true;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<GpuDatatypePlugin>());
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    auto dt = core::lower_triangular_type(512, 512);
    const std::int64_t span = 512 * 512 * 8;
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 91);
      comm.send(buf, 1, dt, 1, 0);
    } else {
      std::memset(buf, 0, static_cast<std::size_t>(span));
      comm.recv(buf, 1, dt, 0, 0);
      std::vector<std::byte> expect(static_cast<std::size_t>(span));
      test::fill_pattern(expect.data(), expect.size(), 91);
      EXPECT_EQ(test::reference_pack(dt, 1, buf),
                test::reference_pack(dt, 1, expect.data()));
    }
  });
}

TEST(GpuDirectLimit, LimitIsConfigurable) {
  // Raising the limit far above the message size forces the direct path
  // even for large transfers; it must stay correct (just slower).
  auto cfg = cfg2();
  cfg.ranks_per_node = 1;
  cfg.gpudirect_rdma = true;
  cfg.gpudirect_limit_bytes = INT64_MAX;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<GpuDatatypePlugin>());
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    auto dt = core::submatrix_type(256, 64, 320);
    const std::int64_t span = 320 * 64 * 8;
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 14);
      comm.send(buf, 1, dt, 1, 0);
    } else {
      comm.recv(buf, 1, dt, 0, 0);
      std::vector<std::byte> expect(static_cast<std::size_t>(span));
      test::fill_pattern(expect.data(), expect.size(), 14);
      EXPECT_EQ(test::reference_pack(dt, 1, buf),
                test::reference_pack(dt, 1, expect.data()));
    }
  });
}

}  // namespace
}  // namespace gpuddt::proto

namespace gpuddt::proto {
namespace {

TEST(GpuEager, SmallDeviceSendsSkipRendezvous) {
  mpi::Runtime rt(cfg2());
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    // 8KB < gpu_eager_limit: one eager AM, no pipeline fragments.
    auto dt = mpi::Datatype::vector(512, 1, 2, mpi::kDouble());
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->extent() + 64)));
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(dt->extent()), 8);
      comm.send(buf, 1, dt, 1, 0);
    } else {
      comm.recv(buf, 1, dt, 0, 0);
      std::vector<std::byte> expect(static_cast<std::size_t>(dt->extent()));
      test::fill_pattern(expect.data(), expect.size(), 8);
      EXPECT_EQ(test::reference_pack(dt, 1, buf),
                test::reference_pack(dt, 1, expect.data()));
      const auto& st = plugin->stats(p);
      EXPECT_EQ(st.eager_unpacks, 1);
      EXPECT_EQ(st.rdma_pipelined, 0);
      EXPECT_EQ(st.host_staged, 0);
      EXPECT_EQ(st.fragments, 0);
    }
  });
}

TEST(GpuEager, LimitBoundaryRoutesCorrectly) {
  auto run_with_size = [](std::int64_t bytes, std::int64_t* eager,
                          std::int64_t* pipelined) {
    mpi::RuntimeConfig cfg = cfg2();
    cfg.gpu_eager_limit = 4096;
    mpi::Runtime rt(cfg);
    auto plugin = std::make_shared<GpuDatatypePlugin>();
    rt.set_gpu_plugin(plugin);
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      // payload = (bytes/8) doubles = `bytes` packed bytes exactly
      auto vec = mpi::Datatype::vector(bytes / 8, 1, 2, mpi::kDouble());
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(vec->extent() + 64)));
      if (p.rank() == 0) {
        comm.send(buf, 1, vec, 1, 0);
      } else {
        comm.recv(buf, 1, vec, 0, 0);
        *eager = plugin->stats(p).eager_unpacks;
        *pipelined = plugin->stats(p).rdma_pipelined;
      }
    });
  };
  std::int64_t eager = 0, pipelined = 0;
  run_with_size(4096, &eager, &pipelined);  // exactly at the limit: eager
  EXPECT_EQ(eager, 1);
  EXPECT_EQ(pipelined, 0);
  run_with_size(8192, &eager, &pipelined);  // above: rendezvous
  EXPECT_EQ(eager, 0);
  EXPECT_EQ(pipelined, 1);
}

TEST(GpuEager, ZeroLimitDisablesTheTier) {
  mpi::RuntimeConfig cfg = cfg2();
  cfg.gpu_eager_limit = 0;
  mpi::Runtime rt(cfg);
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    auto dt = mpi::Datatype::vector(64, 1, 2, mpi::kDouble());  // 512 B
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->extent() + 64)));
    if (p.rank() == 0) {
      comm.send(buf, 1, dt, 1, 0);
    } else {
      comm.recv(buf, 1, dt, 0, 0);
      EXPECT_EQ(plugin->stats(p).eager_unpacks, 0);
    }
  });
}

TEST(GpuEager, DeviceToHostSmallMessage) {
  mpi::Runtime rt(cfg2());
  rt.set_gpu_plugin(std::make_shared<GpuDatatypePlugin>());
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    auto dt = mpi::Datatype::vector(128, 2, 4, mpi::kInt32());  // 1 KB
    if (p.rank() == 0) {
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->extent() + 64)));
      test::fill_pattern(buf, static_cast<std::size_t>(dt->extent()), 17);
      comm.send(buf, 1, dt, 1, 0);
    } else {
      std::vector<std::byte> host(static_cast<std::size_t>(dt->extent() + 64),
                                  std::byte{0});
      comm.recv(host.data(), 1, dt, 0, 0);
      std::vector<std::byte> expect(host.size());
      test::fill_pattern(expect.data(),
                         static_cast<std::size_t>(dt->extent()), 17);
      EXPECT_EQ(test::reference_pack(dt, 1, host.data()),
                test::reference_pack(dt, 1, expect.data()));
    }
  });
}

}  // namespace
}  // namespace gpuddt::proto
