// MPI-3 style RMA windows: fence epochs, datatype put/get/accumulate on
// host and device windows.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/config.h"
#include "core/layouts.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"
#include "test_helpers.h"

namespace gpuddt::rma {
namespace {

mpi::RuntimeConfig world(int n) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = n;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  return cfg;
}

TEST(RmaWindow, PutContiguousHost) {
  mpi::Runtime rt(world(2));
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    std::vector<std::int32_t> win(256, -1);
    Window w(comm, win.data(), 256 * 4);
    w.fence();
    if (p.rank() == 0) {
      std::vector<std::int32_t> data(100);
      for (int i = 0; i < 100; ++i) data[static_cast<std::size_t>(i)] = i;
      w.put(data.data(), 100, mpi::kInt32(), 1, /*disp=*/64, 100,
            mpi::kInt32());
    }
    w.fence();
    if (p.rank() == 1) {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(win[16 + i], i);
      EXPECT_EQ(win[15], -1);
      EXPECT_EQ(win[116], -1);
    }
  });
}

TEST(RmaWindow, PutWithTargetDatatypeOnDevice) {
  // Origin holds a dense block; the target scatters it as a triangular
  // matrix in device memory - the target datatype is applied remotely by
  // the origin's engine.
  mpi::Runtime rt(world(2));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t n = 64;
    auto tri = core::lower_triangular_type(n, n);
    auto* win = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
    std::memset(win, 0, static_cast<std::size_t>(n * n * 8));
    Window w(comm, win, n * n * 8);
    w.fence();
    if (p.rank() == 0) {
      std::vector<double> dense(
          static_cast<std::size_t>(core::lower_triangle_elems(n)));
      for (std::size_t i = 0; i < dense.size(); ++i)
        dense[i] = static_cast<double>(i) + 0.5;
      w.put(dense.data(), core::lower_triangle_elems(n), mpi::kDouble(), 1,
            0, 1, tri);
    }
    w.fence();
    if (p.rank() == 1) {
      const auto got = test::reference_pack(tri, 1, win);
      const auto* vals = reinterpret_cast<const double*>(got.data());
      for (std::int64_t i = 0; i < core::lower_triangle_elems(n); ++i)
        ASSERT_EQ(vals[i], static_cast<double>(i) + 0.5);
      // Off-triangle untouched.
      EXPECT_EQ(reinterpret_cast<double*>(win)[1 * n + 0], 0.0);
    }
  });
}

TEST(RmaWindow, GetWithOriginDatatype) {
  mpi::Runtime rt(world(2));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t rows = 32, cols = 8, ld = 48;
    auto vec = core::submatrix_type(rows, cols, ld);
    auto* win = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(ld * cols * 8)));
    test::fill_pattern(win, static_cast<std::size_t>(ld * cols * 8),
                       p.rank() + 3);
    Window w(comm, win, ld * cols * 8);
    w.fence();
    if (p.rank() == 0) {
      // Fetch rank 1's sub-matrix into a dense local buffer.
      std::vector<double> dense(static_cast<std::size_t>(rows * cols));
      w.get(dense.data(), rows * cols, mpi::kDouble(), 1, 0, 1, vec);
      std::vector<std::byte> peer(static_cast<std::size_t>(ld * cols * 8));
      test::fill_pattern(peer.data(), peer.size(), 4);
      const auto expect = test::reference_pack(vec, 1, peer.data());
      EXPECT_EQ(std::memcmp(dense.data(), expect.data(), expect.size()), 0);
    }
    w.fence();
  });
}

TEST(RmaWindow, AccumulateSumsFromAllRanks) {
  mpi::Runtime rt(world(4));
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    std::vector<double> win(64, 0.0);
    Window w(comm, win.data(), 64 * 8);
    w.fence();
    // Everyone accumulates into rank 0's window.
    std::vector<double> mine(64);
    for (int i = 0; i < 64; ++i)
      mine[static_cast<std::size_t>(i)] = p.rank() + 1.0;
    w.accumulate(mine.data(), 64, mpi::kDouble(), 0, 0, 64, mpi::kDouble(),
                 mpi::ReduceOp::kSum);
    w.fence();
    if (p.rank() == 0) {
      for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(win[i], 1 + 2 + 3 + 4);
    }
  });
}

TEST(RmaWindow, FencePropagatesVirtualCompletion) {
  mpi::Runtime rt(world(2));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    auto* win = static_cast<std::byte*>(sg::Malloc(p.gpu(), 32u << 20));
    Window w(comm, win, 32 << 20);
    w.fence();
    if (p.rank() == 0) {
      auto* local = static_cast<std::byte*>(sg::Malloc(p.gpu(), 16u << 20));
      w.put(local, (16 << 20) / 8, mpi::kDouble(), 1, 0, (16 << 20) / 8,
            mpi::kDouble());
    }
    const vt::Time before = p.clock().now();
    w.fence();
    if (p.rank() == 1) {
      // The target's clock must absorb the origin's 16MB peer transfer.
      EXPECT_GT(p.clock().now(), before + vt::msec(1));
    }
  });
}

TEST(RmaWindow, SeededEpochConflictIsFlaggedByChecker) {
  // Two origins put into the SAME bytes of rank 0's device window inside
  // one fence epoch. MPI makes such conflicts the caller's problem
  // (window.h header comment); the access checker must surface the WAW -
  // the RMA layer previously had no seeded-hazard coverage.
  mpi::RuntimeConfig cfg = world(3);
  cfg.machine.check = 1;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  const std::int64_t hazards0 = check::hazard_count();
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t bytes = 64 * 1024;
    std::byte* win = nullptr;
    if (p.rank() == 0) {
      win = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(bytes)));
      std::memset(win, 0, static_cast<std::size_t>(bytes));
    }
    Window w(comm, win, p.rank() == 0 ? bytes : 0);
    w.fence();
    if (p.rank() != 0) {
      std::vector<std::int32_t> data(
          static_cast<std::size_t>(bytes / 4), p.rank());
      w.put(data.data(), bytes / 4, mpi::kInt32(), 0, /*disp=*/0, bytes / 4,
            mpi::kInt32());
    }
    w.fence();
    if (p.rank() == 0) sg::Free(p.gpu(), win);
  });
  EXPECT_GE(check::hazard_count() - hazards0, 1);
}

TEST(RmaWindow, DeviceAccumulateScratchIsCheckedAndClean) {
  // Accumulate on a device window stages through malloc'd host scratch
  // that the window now registers with the checker
  // (simgpu/staging.h). Fence-separated accumulates are fully ordered:
  // the newly-visible scratch ranges must not produce false positives,
  // and the result must still combine correctly.
  mpi::RuntimeConfig cfg = world(2);
  cfg.machine.check = 1;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  const std::int64_t hazards0 = check::hazard_count();
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t n = 1024;
    std::byte* win = nullptr;
    if (p.rank() == 0) {
      win = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(n * 4)));
      std::vector<std::int32_t> init(static_cast<std::size_t>(n), 10);
      std::memcpy(win, init.data(), static_cast<std::size_t>(n * 4));
    }
    Window w(comm, win, p.rank() == 0 ? n * 4 : 0);
    w.fence();
    if (p.rank() == 1) {
      std::vector<std::int32_t> data(static_cast<std::size_t>(n), 5);
      w.accumulate(data.data(), n, mpi::kInt32(), 0, 0, n, mpi::kInt32(),
                   mpi::ReduceOp::kSum);
    }
    w.fence();
    if (p.rank() == 0) {
      std::vector<std::int32_t> out(static_cast<std::size_t>(n));
      std::memcpy(out.data(), win, static_cast<std::size_t>(n * 4));
      EXPECT_EQ(out[0], 15);
      EXPECT_EQ(out[static_cast<std::size_t>(n) - 1], 15);
      sg::Free(p.gpu(), win);
    }
  });
  EXPECT_EQ(check::hazard_count() - hazards0, 0);
}

TEST(RmaWindow, FenceSeparatedPutsRunClean) {
  // The same two puts in separate fence epochs are ordered and must not
  // be flagged.
  mpi::RuntimeConfig cfg = world(3);
  cfg.machine.check = 1;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  const std::int64_t hazards0 = check::hazard_count();
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t bytes = 64 * 1024;
    std::byte* win = nullptr;
    if (p.rank() == 0) {
      win = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(bytes)));
      std::memset(win, 0, static_cast<std::size_t>(bytes));
    }
    Window w(comm, win, p.rank() == 0 ? bytes : 0);
    w.fence();
    if (p.rank() == 1) {
      std::vector<std::int32_t> data(static_cast<std::size_t>(bytes / 4), 1);
      w.put(data.data(), bytes / 4, mpi::kInt32(), 0, 0, bytes / 4,
            mpi::kInt32());
    }
    w.fence();
    if (p.rank() == 2) {
      std::vector<std::int32_t> data(static_cast<std::size_t>(bytes / 4), 2);
      w.put(data.data(), bytes / 4, mpi::kInt32(), 0, 0, bytes / 4,
            mpi::kInt32());
    }
    w.fence();
    if (p.rank() == 0) sg::Free(p.gpu(), win);
  });
  EXPECT_EQ(check::hazard_count() - hazards0, 0);
}

TEST(RmaWindow, OutOfRangeAccessThrows) {
  mpi::Runtime rt(world(2));
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    std::vector<std::byte> win(1024);
    Window w(comm, win.data(), 1024);
    w.fence();
    std::vector<std::byte> data(512);
    EXPECT_THROW(w.put(data.data(), 512, mpi::kByte(), 1 - p.rank(), 768,
                       512, mpi::kByte()),
                 std::invalid_argument);
    w.fence();
  });
}

TEST(RmaWindow, SizeMismatchThrows) {
  mpi::Runtime rt(world(2));
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    std::vector<std::byte> win(1024);
    Window w(comm, win.data(), 1024);
    w.fence();
    std::vector<std::byte> data(128);
    EXPECT_THROW(w.put(data.data(), 128, mpi::kByte(), 1 - p.rank(), 0, 64,
                       mpi::kByte()),
                 std::invalid_argument);
    w.fence();
  });
}

TEST(RmaWindow, HeterogeneousWindowSizes) {
  mpi::Runtime rt(world(3));
  rt.run([](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t mine = 256 * (p.rank() + 1);
    std::vector<std::byte> win(static_cast<std::size_t>(mine));
    Window w(comm, win.data(), mine);
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(w.size_at(r), 256 * (r + 1));
    w.fence();
    w.fence();
  });
}

}  // namespace
}  // namespace gpuddt::rma
