// Parameterized property sweeps of the GPU datatype engine: every layout
// class x work-unit size x fragment geometry must round-trip bit-exact,
// and the invariants (exact byte budgets, monotone progress, cache
// coherence across configurations) must hold everywhere.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "core/engine.h"
#include "core/layouts.h"
#include "test_helpers.h"

namespace gpuddt::core {
namespace {

using Dir = GpuDatatypeEngine::Dir;

enum class Layout {
  kVector,
  kVectorOdd,       // misaligned stride/len
  kTriangular,
  kStair,
  kTranspose,
  kStruct,
  kSubarray,
  kDarray,
};

const char* layout_name(Layout l) {
  switch (l) {
    case Layout::kVector: return "vector";
    case Layout::kVectorOdd: return "vector_odd";
    case Layout::kTriangular: return "triangular";
    case Layout::kStair: return "stair";
    case Layout::kTranspose: return "transpose";
    case Layout::kStruct: return "struct";
    case Layout::kSubarray: return "subarray";
    case Layout::kDarray: return "darray";
  }
  return "?";
}

mpi::DatatypePtr make_layout(Layout l) {
  using mpi::Datatype;
  switch (l) {
    case Layout::kVector:
      return core::submatrix_type(64, 24, 96);
    case Layout::kVectorOdd:
      return Datatype::vector(37, 3, 7, mpi::kInt32());
    case Layout::kTriangular:
      return core::lower_triangular_type(72, 88);
    case Layout::kStair:
      return core::stair_triangular_type(64, 64, 16);
    case Layout::kTranspose:
      return core::transpose_type(20, 20);
    case Layout::kStruct: {
      const std::int64_t lens[] = {3, 2, 5};
      const std::int64_t displs[] = {0, 40, 80};
      const mpi::DatatypePtr types[] = {mpi::kInt32(), mpi::kDouble(),
                                        mpi::kFloat()};
      return Datatype::struct_type(lens, displs, types);
    }
    case Layout::kSubarray: {
      const std::int64_t sizes[] = {30, 40};
      const std::int64_t subsizes[] = {11, 13};
      const std::int64_t starts[] = {5, 9};
      return Datatype::subarray(sizes, subsizes, starts, mpi::kDouble(),
                                Datatype::Order::kFortran);
    }
    case Layout::kDarray: {
      const std::int64_t gs[] = {48, 36};
      const Datatype::Distrib ds[] = {Datatype::Distrib::kCyclic,
                                      Datatype::Distrib::kCyclic};
      const std::int64_t da[] = {8, 4};
      const std::int64_t ps[] = {2, 2};
      return Datatype::darray(4, 3, gs, ds, da, ps, mpi::kDouble(),
                              Datatype::Order::kFortran);
    }
  }
  return mpi::kByte();
}

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<Layout, std::int64_t, int>> {
};

TEST_P(EngineSweep, RoundTripsExactly) {
  const auto [layout, unit_bytes, frag_sel] = GetParam();
  const std::int64_t frag_bytes = 300 + 977 * frag_sel;  // odd sizes on purpose
  sg::Machine m{test::machine_config(1)};
  sg::HostContext ctx(m, 0);
  EngineConfig cfg;
  cfg.unit_bytes = unit_bytes;
  GpuDatatypeEngine eng(ctx, cfg);

  auto dt = make_layout(layout);
  const std::int64_t count = 2;
  const std::int64_t total = dt->size() * count;
  const std::int64_t span = test::span_bytes(dt, count);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, total + 8));
  auto* back = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(src, static_cast<std::size_t>(span), 1);
  std::memset(back, 0, static_cast<std::size_t>(span));
  std::byte* src_base = src - dt->true_lb();
  std::byte* back_base = back - dt->true_lb();

  // Pack with exact odd-sized budgets.
  auto pack = eng.start(Dir::kPack, dt, count, src_base);
  while (!pack->done()) {
    const std::int64_t before = pack->bytes_done();
    const auto r = eng.process_some(*pack, packed + before, frag_bytes);
    ASSERT_EQ(r.bytes, std::min(frag_bytes, total - before))
        << layout_name(layout);
    ASSERT_EQ(pack->bytes_done(), before + r.bytes);
  }
  eng.finish(*pack);
  const auto ref = test::reference_pack(dt, count, src_base);
  ASSERT_EQ(std::memcmp(packed, ref.data(), ref.size()), 0)
      << layout_name(layout) << " S=" << unit_bytes;

  // Unpack with a different (also odd) budget.
  auto unpack = eng.start(Dir::kUnpack, dt, count, back_base);
  while (!unpack->done()) {
    const auto r = eng.process_some(*unpack, packed + unpack->bytes_done(),
                                    frag_bytes + 129);
    if (r.bytes == 0) break;
  }
  eng.finish(*unpack);
  EXPECT_EQ(test::reference_pack(dt, count, back_base), ref)
      << layout_name(layout) << " S=" << unit_bytes;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, EngineSweep,
    ::testing::Combine(
        ::testing::Values(Layout::kVector, Layout::kVectorOdd,
                          Layout::kTriangular, Layout::kStair,
                          Layout::kTranspose, Layout::kStruct,
                          Layout::kSubarray, Layout::kDarray),
        ::testing::Values<std::int64_t>(256, 1024, 4096),
        ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::string(layout_name(std::get<0>(info.param))) + "_S" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

class CachedSweep : public ::testing::TestWithParam<Layout> {};

TEST_P(CachedSweep, CachedPathMatchesLivePath) {
  sg::Machine m{test::machine_config(1)};
  sg::HostContext ctx(m, 0);
  GpuDatatypeEngine eng(ctx, {});
  auto dt = make_layout(GetParam());
  const std::int64_t total = dt->size();
  const std::int64_t span = test::span_bytes(dt, 1);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* p1 = static_cast<std::byte*>(sg::Malloc(ctx, total + 8));
  auto* p2 = static_cast<std::byte*>(sg::Malloc(ctx, total + 8));
  test::fill_pattern(src, static_cast<std::size_t>(span), 5);
  std::byte* base = src - dt->true_lb();

  auto run_pack = [&](std::byte* out) {
    auto op = eng.start(Dir::kPack, dt, 1, base);
    while (!op->done()) {
      const auto r = eng.process_some(*op, out + op->bytes_done(), 3000);
      if (r.bytes == 0) break;
    }
    eng.finish(*op);
    return op->used_cache();
  };
  const bool first_cached = run_pack(p1);   // live conversion, fills cache
  const bool second_cached = run_pack(p2);  // cache hit
  if (!dt->regular_pattern(1)) {
    EXPECT_FALSE(first_cached);
    EXPECT_TRUE(second_cached);
  }
  EXPECT_EQ(std::memcmp(p1, p2, static_cast<std::size_t>(total)), 0);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, CachedSweep,
                         ::testing::Values(Layout::kTriangular, Layout::kStair,
                                           Layout::kTranspose, Layout::kStruct,
                                           Layout::kSubarray, Layout::kDarray),
                         [](const auto& info) {
                           return layout_name(info.param);
                         });

}  // namespace
}  // namespace gpuddt::core
