// MPI_Type_create_darray: the HPF/ScaLAPACK distributed-array layout.
// Verified structurally (sizes, extents) and semantically: the union of
// all processes' darray types must tile the global array exactly once,
// and block-cyclic layouts must match a hand-computed owner function.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cpu_pack.h"
#include "mpi/cursor.h"
#include "mpi/datatype.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

using Distrib = Datatype::Distrib;

/// Owner of global element (i in dim d) under a distribution.
std::int64_t owner_1d(std::int64_t i, Distrib d, std::int64_t darg,
                      std::int64_t gsize, std::int64_t psize) {
  switch (d) {
    case Distrib::kNone:
      return 0;
    case Distrib::kBlock: {
      const std::int64_t b =
          darg == Datatype::kDefaultDarg ? (gsize + psize - 1) / psize : darg;
      return i / b;
    }
    case Distrib::kCyclic: {
      const std::int64_t b = darg == Datatype::kDefaultDarg ? 1 : darg;
      return (i / b) % psize;
    }
  }
  return 0;
}

struct Spec1D {
  std::int64_t gsize;
  Distrib distrib;
  std::int64_t darg;
  std::int64_t psize;
};

/// Check that the world's types tile [0, prod(gsizes)) exactly once and
/// match the owner function.
void check_tiling(const std::vector<Spec1D>& dims, Datatype::Order order) {
  std::vector<std::int64_t> gsizes, dargs, psizes;
  std::vector<Distrib> distribs;
  int world = 1;
  for (const auto& d : dims) {
    gsizes.push_back(d.gsize);
    distribs.push_back(d.distrib);
    dargs.push_back(d.darg);
    psizes.push_back(d.psize);
    world *= static_cast<int>(d.psize);
  }
  std::int64_t total = 1;
  for (auto g : gsizes) total *= g;

  std::vector<int> covered(static_cast<std::size_t>(total), -1);
  std::int64_t covered_count = 0;
  for (int rank = 0; rank < world; ++rank) {
    auto dt = Datatype::darray(world, rank, gsizes, distribs, dargs, psizes,
                               kDouble(), order);
    EXPECT_EQ(dt->extent(), total * 8) << "rank " << rank;
    BlockCursor cur(dt, 1);
    Block b;
    while (cur.next(&b)) {
      ASSERT_EQ(b.offset % 8, 0);
      ASSERT_EQ(b.len % 8, 0);
      for (std::int64_t e = b.offset / 8; e < (b.offset + b.len) / 8; ++e) {
        ASSERT_GE(e, 0);
        ASSERT_LT(e, total);
        EXPECT_EQ(covered[static_cast<std::size_t>(e)], -1)
            << "element " << e << " claimed twice (ranks "
            << covered[static_cast<std::size_t>(e)] << " and " << rank << ")";
        covered[static_cast<std::size_t>(e)] = rank;
        ++covered_count;
      }
    }
  }
  EXPECT_EQ(covered_count, total) << "tiling incomplete";

  // Cross-check the owner function.
  std::vector<std::int64_t> coord(dims.size());
  for (std::int64_t e = 0; e < total; ++e) {
    // Decompose the linear element index into per-dimension indices.
    std::int64_t rem = e / 8 * 8;  // silence none
    (void)rem;
    std::vector<std::int64_t> gidx(dims.size());
    std::int64_t x = e;
    if (order == Datatype::Order::kFortran) {
      for (std::size_t d = 0; d < dims.size(); ++d) {
        gidx[d] = x % gsizes[d];
        x /= gsizes[d];
      }
    } else {
      for (std::size_t d = dims.size(); d-- > 0;) {
        gidx[d] = x % gsizes[d];
        x /= gsizes[d];
      }
    }
    // Expected rank: C-order composition of per-dimension owners.
    std::int64_t expect = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      expect = expect * psizes[d] +
               owner_1d(gidx[d], distribs[d], dargs[d], gsizes[d], psizes[d]);
    }
    EXPECT_EQ(covered[static_cast<std::size_t>(e)], expect)
        << "element " << e;
  }
}

TEST(Darray, Block1D) {
  check_tiling({{100, Distrib::kBlock, Datatype::kDefaultDarg, 4}},
               Datatype::Order::kFortran);
}

TEST(Darray, Block1DUnevenTail) {
  // 10 elements over 4 procs with block 3: last proc gets only 1.
  check_tiling({{10, Distrib::kBlock, 3, 4}}, Datatype::Order::kFortran);
}

TEST(Darray, Cyclic1DUnit) {
  check_tiling({{17, Distrib::kCyclic, Datatype::kDefaultDarg, 3}},
               Datatype::Order::kFortran);
}

TEST(Darray, BlockCyclic1D) {
  check_tiling({{100, Distrib::kCyclic, 8, 3}}, Datatype::Order::kFortran);
}

TEST(Darray, BlockCyclic1DPartialTail) {
  // 50 = 6 blocks of 8 + tail of 2; tail lands on proc 6%4=2... exercise.
  check_tiling({{50, Distrib::kCyclic, 8, 4}}, Datatype::Order::kFortran);
}

TEST(Darray, BlockCyclic2DScalapack) {
  // The classic ScaLAPACK 2D block-cyclic layout: 2x3 grid, 64-blocks.
  check_tiling({{100, Distrib::kCyclic, 16, 2}, {90, Distrib::kCyclic, 16, 3}},
               Datatype::Order::kFortran);
}

TEST(Darray, MixedBlockAndNone) {
  check_tiling({{40, Distrib::kBlock, Datatype::kDefaultDarg, 4},
                {7, Distrib::kNone, Datatype::kDefaultDarg, 1}},
               Datatype::Order::kFortran);
}

TEST(Darray, COrder2D) {
  check_tiling({{12, Distrib::kCyclic, 2, 2}, {18, Distrib::kBlock, 9, 2}},
               Datatype::Order::kC);
}

TEST(Darray, ThreeDimensions) {
  check_tiling({{8, Distrib::kBlock, Datatype::kDefaultDarg, 2},
                {9, Distrib::kCyclic, 2, 3},
                {4, Distrib::kNone, Datatype::kDefaultDarg, 1}},
               Datatype::Order::kFortran);
}

TEST(Darray, SizesSumAcrossRanks) {
  const std::int64_t gs[] = {64, 48};
  const Distrib ds[] = {Distrib::kCyclic, Distrib::kCyclic};
  const std::int64_t da[] = {8, 8};
  const std::int64_t ps[] = {2, 2};
  std::int64_t sum = 0;
  for (int r = 0; r < 4; ++r) {
    auto dt = Datatype::darray(4, r, gs, ds, da, ps, kDouble(),
                               Datatype::Order::kFortran);
    sum += dt->size();
  }
  EXPECT_EQ(sum, 64 * 48 * 8);
}

TEST(Darray, GridMismatchThrows) {
  const std::int64_t gs[] = {10};
  const Distrib ds[] = {Distrib::kBlock};
  const std::int64_t da[] = {Datatype::kDefaultDarg};
  const std::int64_t ps[] = {3};
  EXPECT_THROW(
      Datatype::darray(4, 0, gs, ds, da, ps, kDouble()),
      std::invalid_argument);
}

TEST(Darray, NoneRequiresSingleProcDim) {
  const std::int64_t gs[] = {10, 10};
  const Distrib ds[] = {Distrib::kNone, Distrib::kBlock};
  const std::int64_t da[] = {Datatype::kDefaultDarg, Datatype::kDefaultDarg};
  const std::int64_t ps[] = {2, 2};
  EXPECT_THROW(
      Datatype::darray(4, 0, gs, ds, da, ps, kDouble()),
      std::invalid_argument);
}

TEST(Darray, PackUnpackRoundTrip) {
  const std::int64_t gs[] = {40, 30};
  const Distrib ds[] = {Distrib::kCyclic, Distrib::kCyclic};
  const std::int64_t da[] = {4, 8};
  const std::int64_t ps[] = {2, 2};
  for (int r = 0; r < 4; ++r) {
    auto dt = Datatype::darray(4, r, gs, ds, da, ps, kDouble(),
                               Datatype::Order::kFortran);
    std::vector<std::byte> src(static_cast<std::size_t>(dt->extent()));
    std::vector<std::byte> dst(src.size(), std::byte{0});
    test::fill_pattern(src.data(), src.size(), r);
    auto packed = test::reference_pack(dt, 1, src.data());
    EXPECT_EQ(static_cast<std::int64_t>(packed.size()), dt->size());
    cpu_unpack(dt, 1, packed, dst.data());
    EXPECT_EQ(test::reference_pack(dt, 1, dst.data()), packed);
  }
}

}  // namespace
}  // namespace gpuddt::mpi
