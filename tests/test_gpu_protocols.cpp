// End-to-end tests of the GPU datatype protocols (Section 4): pipelined
// RDMA over IPC, the contiguous-side shortcuts, the copy-in/out protocol,
// mixed host/device endpoints, and the MVAPICH-style baseline plugin.
// Every transfer is verified bit-exact against the CPU datatype engine.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "harness/harness.h"
#include "obs/recorder.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::proto {
namespace {

using mpi::Comm;
using mpi::DatatypePtr;
using mpi::Process;
using mpi::Runtime;
using mpi::RuntimeConfig;

RuntimeConfig gpu_world() {
  RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256 << 20;
  cfg.progress_timeout_ms = 10000;
  return cfg;
}

/// Run a 0->1 transfer of (send_dt on device?) -> (recv_dt on device?) and
/// verify the received layout packs identically to the sent one.
void run_transfer(RuntimeConfig cfg, const DatatypePtr& send_dt,
                  std::int64_t send_count, bool send_on_device,
                  const DatatypePtr& recv_dt, std::int64_t recv_count,
                  bool recv_on_device,
                  std::shared_ptr<mpi::GpuTransferPlugin> plugin = nullptr) {
  Runtime rt(cfg);
  rt.set_gpu_plugin(plugin ? plugin
                           : std::make_shared<GpuDatatypePlugin>());
  rt.run([&](Process& p) {
    Comm comm(p);
    if (p.rank() == 0) {
      const std::int64_t span = test::span_bytes(send_dt, send_count);
      std::byte* buf;
      std::vector<std::byte> host_backing;
      if (send_on_device) {
        buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      } else {
        host_backing.resize(static_cast<std::size_t>(span));
        buf = host_backing.data();
      }
      test::fill_pattern(buf, static_cast<std::size_t>(span), 77);
      std::byte* base = buf - send_dt->true_lb();
      comm.send(base, send_count, send_dt, 1, 42);
    } else {
      const std::int64_t span = test::span_bytes(recv_dt, recv_count);
      std::byte* buf;
      std::vector<std::byte> host_backing;
      if (recv_on_device) {
        buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      } else {
        host_backing.resize(static_cast<std::size_t>(span));
        buf = host_backing.data();
      }
      std::memset(buf, 0, static_cast<std::size_t>(span));
      std::byte* base = buf - recv_dt->true_lb();
      const mpi::Status st = comm.recv(base, recv_count, recv_dt, 0, 42);
      EXPECT_EQ(st.bytes, send_dt->size() * send_count);

      // Reference: what the sender's data packs to.
      const std::int64_t sspan = test::span_bytes(send_dt, send_count);
      std::vector<std::byte> sent(static_cast<std::size_t>(sspan));
      test::fill_pattern(sent.data(), sent.size(), 77);
      const auto expect =
          test::reference_pack(send_dt, send_count,
                               sent.data() - send_dt->true_lb());
      const auto got = test::reference_pack(recv_dt, recv_count, base);
      ASSERT_EQ(got.size(), expect.size());
      EXPECT_EQ(got, expect) << "send=" << send_dt->describe()
                             << " recv=" << recv_dt->describe();
    }
  });
}

// --- Pipelined RDMA over IPC (Section 4.1) -------------------------------------------

TEST(GpuRdma, TriangularBetweenTwoGpus) {
  auto dt = core::lower_triangular_type(256, 256);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, true);
}

TEST(GpuRdma, VectorBetweenTwoGpus) {
  auto dt = core::submatrix_type(512, 256, 768);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, true);
}

TEST(GpuRdma, SameGpuBothRanks) {
  RuntimeConfig cfg = gpu_world();
  cfg.device_of = [](int) { return 0; };
  auto dt = core::lower_triangular_type(200, 200);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuRdma, DifferentLayoutsSameSignature) {
  // Sender: vector; receiver: triangular of the same element count? Not
  // equal counts - use vector vs contiguous instead (FFT reshape).
  auto vec = core::submatrix_type(128, 64, 192);
  auto cont = mpi::Datatype::contiguous(128 * 64, mpi::kDouble());
  run_transfer(gpu_world(), vec, 1, true, cont, 1, true);
}

TEST(GpuRdma, ContiguousSenderShortcutRecvDriven) {
  auto cont = mpi::Datatype::contiguous(1 << 19, mpi::kDouble());  // 4 MB
  auto vec = core::submatrix_type(1 << 10, 1 << 9, 1 << 10);
  run_transfer(gpu_world(), cont, 1, true, vec, 1, true);
}

TEST(GpuRdma, ContiguousBothSidesOneGet) {
  auto cont = mpi::Datatype::contiguous(1 << 18, mpi::kDouble());
  run_transfer(gpu_world(), cont, 1, true, cont, 1, true);
}

TEST(GpuRdma, ContiguousReceiverShortcutPackToRemote) {
  auto tri = core::lower_triangular_type(128, 128);
  auto cont =
      mpi::Datatype::contiguous(core::lower_triangle_elems(128),
                                mpi::kDouble());
  run_transfer(gpu_world(), tri, 1, true, cont, 1, true);
}

TEST(GpuRdma, TransposeStressTest) {
  auto t = core::transpose_type(96, 96);
  auto cont = mpi::Datatype::contiguous(96 * 96, mpi::kDouble());
  run_transfer(gpu_world(), cont, 1, true, t, 1, true);
}

TEST(GpuRdma, MultiCountElements) {
  auto dt = core::submatrix_type(64, 8, 96);
  run_transfer(gpu_world(), dt, 7, true, dt, 7, true);
}

TEST(GpuRdma, NoLocalStagingVariant) {
  RuntimeConfig cfg = gpu_world();
  cfg.recv_local_staging = false;  // unpack straight from remote memory
  auto dt = core::lower_triangular_type(192, 192);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuRdma, SmallFragmentsManyRounds) {
  RuntimeConfig cfg = gpu_world();
  cfg.gpu_frag_bytes = 4096;
  cfg.gpu_pipeline_depth = 2;
  auto dt = core::lower_triangular_type(128, 160);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuRdma, DepthOnePipelineStillCorrect) {
  RuntimeConfig cfg = gpu_world();
  cfg.gpu_pipeline_depth = 1;
  auto dt = core::submatrix_type(256, 64, 320);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

// --- Copy-in/out protocol (Section 4.2) -----------------------------------------------

TEST(GpuCopyInOut, IpcDisabledFallsBackToHostStaging) {
  RuntimeConfig cfg = gpu_world();
  cfg.ipc_enabled = false;
  auto dt = core::lower_triangular_type(192, 192);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuCopyInOut, ForceCopyInOutFlag) {
  RuntimeConfig cfg = gpu_world();
  cfg.force_copy_inout = true;
  auto dt = core::submatrix_type(256, 128, 384);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuCopyInOut, InterNodeOverIb) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;  // force the IB path
  auto dt = core::lower_triangular_type(256, 256);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuCopyInOut, InterNodeWithoutZeroCopy) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;
  cfg.zero_copy = false;  // explicit D2H / H2D staging
  auto dt = core::submatrix_type(512, 128, 640);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuCopyInOut, InterNodeVectorToContiguous) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;
  auto vec = core::submatrix_type(256, 64, 300);
  auto cont = mpi::Datatype::contiguous(256 * 64, mpi::kDouble());
  run_transfer(cfg, vec, 1, true, cont, 1, true);
}

TEST(GpuCopyInOut, GpuDirectRdmaOverIb) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;
  cfg.gpudirect_rdma = true;  // RDMA family over the IB BTL
  auto dt = core::lower_triangular_type(160, 160);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

// --- Mixed host/device endpoints ------------------------------------------------------

TEST(GpuMixed, DeviceToHost) {
  auto dt = core::lower_triangular_type(160, 160);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, false);
}

TEST(GpuMixed, HostToDevice) {
  auto dt = core::lower_triangular_type(160, 160);
  run_transfer(gpu_world(), dt, 1, false, dt, 1, true);
}

TEST(GpuMixed, HostVectorToDeviceContiguous) {
  auto vec = core::submatrix_type(128, 32, 160);
  auto cont = mpi::Datatype::contiguous(128 * 32, mpi::kDouble());
  run_transfer(gpu_world(), vec, 1, false, cont, 1, true);
}

TEST(GpuMixed, SmallDeviceRecvViaEager) {
  // Host sender small enough for the eager path; device receiver.
  auto dt = mpi::Datatype::vector(16, 2, 4, mpi::kInt32());
  run_transfer(gpu_world(), dt, 1, false, dt, 1, true);
}

TEST(GpuMixed, EagerTraceCarriesNoFlowIds) {
  // Eager messages skip the rendezvous, so there is no RTS-carried
  // send_id to build a cross-rank frag_flow from. The receiver must
  // stamp its unpack spans flow-less (flow 0) - the old code recycled
  // req.last_flow, fabricating ids that collided across transfers.
  obs::Recorder rec;
  rec.enable_tracing();
  RuntimeConfig cfg = gpu_world();
  cfg.recorder = &rec;
  auto dt = mpi::Datatype::vector(16, 2, 4, mpi::kInt32());
  run_transfer(cfg, dt, 1, false, dt, 1, true);
  const auto events = rec.trace().snapshot();
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) {
    EXPECT_EQ(ev.flow, 0u) << "eager-path event '" << ev.name
                           << "' carries flow id " << ev.flow;
  }
}

TEST(GpuMixed, DeviceSenderSmallMessage) {
  // Device sends are always rendezvous; tiny payload must still work.
  auto dt = mpi::Datatype::vector(4, 1, 2, mpi::kDouble());
  run_transfer(gpu_world(), dt, 1, true, dt, 1, true);
}

TEST(GpuMixed, InterNodeDeviceToHost) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;
  auto dt = core::submatrix_type(128, 64, 192);
  run_transfer(cfg, dt, 1, true, dt, 1, false);
}

// --- Random property sweep --------------------------------------------------------------

class GpuRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuRandomSweep, RandomTypeRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919 + 13);
  auto dt = test::random_datatype(rng);
  if (dt->size() == 0) GTEST_SKIP();
  const std::int64_t count = 1 + GetParam() % 4;
  RuntimeConfig cfg = gpu_world();
  // Vary the transport knobs with the seed.
  cfg.gpu_frag_bytes = 1u << (12 + GetParam() % 6);
  cfg.gpu_pipeline_depth = 1 + GetParam() % 4;
  if (GetParam() % 3 == 1) cfg.ranks_per_node = 1;
  if (GetParam() % 5 == 2) cfg.ipc_enabled = false;
  if (GetParam() % 7 == 3) cfg.zero_copy = false;
  if (GetParam() % 2 == 1) cfg.rdma_put_mode = true;
  run_transfer(cfg, dt, count, true, dt, count, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuRandomSweep, ::testing::Range(0, 24));

// --- The MVAPICH-style baseline plugin ----------------------------------------------------

TEST(MvapichBaseline, TriangularCorrectness) {
  auto dt = core::lower_triangular_type(96, 96);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, true,
               std::make_shared<base::MvapichLikePlugin>());
}

TEST(MvapichBaseline, VectorCorrectness) {
  auto dt = core::submatrix_type(128, 64, 160);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, true,
               std::make_shared<base::MvapichLikePlugin>());
}

TEST(MvapichBaseline, DeviceToHost) {
  auto dt = core::submatrix_type(64, 32, 96);
  run_transfer(gpu_world(), dt, 1, true, dt, 1, false,
               std::make_shared<base::MvapichLikePlugin>());
}

TEST(MvapichBaseline, InterNode) {
  RuntimeConfig cfg = gpu_world();
  cfg.ranks_per_node = 1;
  auto dt = core::lower_triangular_type(128, 128);
  run_transfer(cfg, dt, 1, true, dt, 1, true,
               std::make_shared<base::MvapichLikePlugin>());
}

TEST(MvapichBaseline, EagerToDevice) {
  auto dt = mpi::Datatype::vector(8, 2, 4, mpi::kInt32());
  run_transfer(gpu_world(), dt, 1, false, dt, 1, true,
               std::make_shared<base::MvapichLikePlugin>());
}

// --- Registration cache ---------------------------------------------------------------------

TEST(GpuRdma, RepeatedTransfersReuseIpcRegistration) {
  RuntimeConfig cfg = gpu_world();
  Runtime rt(cfg);
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  auto dt = core::lower_triangular_type(96, 96);
  rt.run([&](Process& p) {
    Comm comm(p);
    const std::int64_t span = test::span_bytes(dt, 1);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    test::fill_pattern(buf, static_cast<std::size_t>(span), 3);
    vt::Time first = 0, second = 0;
    for (int iter = 0; iter < 2; ++iter) {
      const vt::Time t0 = p.clock().now();
      if (p.rank() == 0) {
        comm.send(buf, 1, dt, 1, iter);
      } else {
        comm.recv(buf, 1, dt, 0, iter);
      }
      comm.barrier();
      (iter == 0 ? first : second) = p.clock().now() - t0;
    }
    // Second iteration skips IPC opens and DEV conversion: faster.
    EXPECT_LT(second, first);
  });
}

}  // namespace
}  // namespace gpuddt::proto

namespace gpuddt::proto {
namespace {

TEST(GpuRdmaPut, PutModeRoundTripsTriangular) {
  RuntimeConfig cfg = gpu_world();
  cfg.rdma_put_mode = true;
  auto dt = core::lower_triangular_type(256, 256);
  run_transfer(cfg, dt, 1, true, dt, 1, true);
}

TEST(GpuRdmaPut, PutModeReshape) {
  RuntimeConfig cfg = gpu_world();
  cfg.rdma_put_mode = true;
  cfg.gpu_frag_bytes = 32 * 1024;
  auto vec = core::submatrix_type(128, 64, 192);
  auto cont = mpi::Datatype::contiguous(128 * 64, mpi::kDouble());
  run_transfer(cfg, vec, 1, true, cont, 1, true);
}

TEST(GpuRdmaPut, PutAndGetModesPerformSimilarly) {
  auto run_mode = [](bool put) {
    harness::PingPongSpec spec;
    spec.cfg = gpu_world();
    spec.cfg.rdma_put_mode = put;
    spec.cfg.machine.device_memory_bytes = std::size_t{2} << 30;
    spec.dt0 = spec.dt1 = core::lower_triangular_type(2048, 2048);
    return harness::run_pingpong(spec);
  };
  const auto get = run_mode(false);
  const auto put = run_mode(true);
  // Same pipeline, opposite initiator: within ~20% of each other.
  EXPECT_LT(static_cast<double>(put.avg_roundtrip),
            1.2 * static_cast<double>(get.avg_roundtrip));
  EXPECT_GT(static_cast<double>(put.avg_roundtrip),
            0.8 * static_cast<double>(get.avg_roundtrip));
}

TEST(GpuRdmaPut, ContiguousShortcutsUnaffectedByPutMode) {
  RuntimeConfig cfg = gpu_world();
  cfg.rdma_put_mode = true;
  auto cont = mpi::Datatype::contiguous(1 << 19, mpi::kDouble());
  auto tri = core::lower_triangular_type(128, 128);
  auto tri_cont =
      mpi::Datatype::contiguous(core::lower_triangle_elems(128),
                                mpi::kDouble());
  run_transfer(cfg, cont, 1, true,
               core::submatrix_type(1 << 10, 1 << 9, 1 << 10), 1, true);
  run_transfer(cfg, tri, 1, true, tri_cont, 1, true);
}

}  // namespace
}  // namespace gpuddt::proto
