# Pin trace_critpath's output on the hand-built two-fragment fixture:
# the fixture's dependency DAG is known (sender kernel -> two pipelined
# RDMA GETs -> receiver unpack), so the full gpuddt-critpath-v1 document
# is compared byte-for-byte against the checked-in expectation.
# Invoked by the trace_critpath_fixture CTest entry.
#
# cmake -DTOOL=... -DTRACE=... -DEXPECTED=... -DWORK_DIR=...
#       -P run_critpath_fixture.cmake

if(NOT TOOL OR NOT TRACE OR NOT EXPECTED OR NOT WORK_DIR)
  message(FATAL_ERROR
    "run_critpath_fixture.cmake: TOOL, TRACE, EXPECTED, WORK_DIR required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${TOOL} --check-efficiency --json-out=${WORK_DIR}/critpath.json
          ${TRACE}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_critpath failed on the fixture")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/critpath.json ${EXPECTED}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "critpath report diverged from the checked-in expectation "
    "(${EXPECTED}) - review the change, then regenerate with "
    "trace_critpath --json ${TRACE}")
endif()
