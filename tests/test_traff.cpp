// Traff self-consistency of the GPU datatype protocols: sending a
// derived datatype directly must never be slower, in virtual time, than
// the user doing the engine's job by hand - an explicit pack to a
// contiguous device buffer, a contiguous send of the same bytes, and an
// explicit unpack on the receiver. Holds for the host-driven pipelined
// RDMA path AND the stream-triggered fragment chain (docs/protocols.md),
// which is also required to be at least as fast as the host-driven path
// on this multi-fragment shape (the ISSUE 8 overlap criterion).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "mpi/datatype.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "mpi/stream_triggered.h"
#include "obs/flowstats.h"
#include "obs/recorder.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::proto {
namespace {

using mpi::Comm;
using mpi::Datatype;
using mpi::DatatypePtr;
using mpi::Process;
using mpi::Runtime;
using mpi::RuntimeConfig;

RuntimeConfig gpu_world() {
  RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256 << 20;
  cfg.progress_timeout_ms = 10000;
  return cfg;
}

/// A multi-fragment non-contiguous shape: 2048 blocks of 128 doubles at
/// stride 256 (2 MB payload, several pipeline fragments).
DatatypePtr layout() {
  return Datatype::vector(
      2048, 128, 256, Datatype::primitive(mpi::Primitive::kDouble));
}

/// 0 -> 1 device-to-device DDT send; returns the receiver's completion
/// time on the virtual clock. `stream_triggered` drives the
/// RuntimeConfig tri-state knob.
vt::Time ddt_transfer_time(int stream_triggered) {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = stream_triggered;
  const DatatypePtr dt = layout();
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  vt::Time done = 0;
  std::int64_t chains = 0;
  Runtime rt(cfg);
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    const std::int64_t span = test::span_bytes(dt, 1);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
      comm.send(buf, 1, dt, 1, 7);
    } else {
      comm.recv(buf, 1, dt, 0, 7);
      done = p.clock().now();
      chains = plugin->stats(p).stream_triggered;
    }
    sg::Free(p.gpu(), buf);
  });
  // The mode under test must actually have engaged.
  EXPECT_EQ(chains, stream_triggered != 0 ? 1 : 0);
  return done;
}

/// The same bytes moved by hand: explicit engine pack into a contiguous
/// device buffer, contiguous send, explicit unpack. This is the
/// comparator Traff's self-consistency requirement measures against.
vt::Time packed_transfer_time() {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = 0;
  const DatatypePtr dt = layout();
  const std::int64_t bytes = dt->size();
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  vt::Time done = 0;
  Runtime rt(cfg);
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    const std::int64_t span = test::span_bytes(dt, 1);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    auto* staging = static_cast<std::byte*>(sg::Malloc(p.gpu(), bytes));
    const DatatypePtr contig = Datatype::contiguous(bytes, mpi::kByte());
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
      std::int64_t pos = 0;
      plugin->pack(p, buf, 1, dt,
                   std::span<std::byte>(staging,
                                        static_cast<std::size_t>(bytes)),
                   &pos);
      comm.send(staging, 1, contig, 1, 7);
    } else {
      comm.recv(staging, 1, contig, 0, 7);
      std::int64_t pos = 0;
      plugin->unpack(p,
                     std::span<const std::byte>(
                         staging, static_cast<std::size_t>(bytes)),
                     &pos, buf, 1, dt);
      done = p.clock().now();
    }
    sg::Free(p.gpu(), staging);
    sg::Free(p.gpu(), buf);
  });
  return done;
}

/// p99 of the first flow class matching `kind`/`shape` in a latency
/// report (-1 if absent). Classes are keyed kind/shape-digest/bucket, so
/// a prefix match pins the class without hardcoding the size bucket.
std::int64_t class_p99(const obs::FlowStats::Report& rep,
                       const std::string& kind, std::uint64_t shape) {
  char prefix[80];
  std::snprintf(prefix, sizeof(prefix), "%s/%016llx/", kind.c_str(),
                static_cast<unsigned long long>(shape));
  for (const auto& [key, cls] : rep.classes) {
    if (key.rfind(prefix, 0) == 0) return cls.p99;
  }
  return -1;
}

/// All class keys of a report, for failure messages.
std::string class_keys(const obs::FlowStats::Report& rep) {
  std::string keys;
  for (const auto& [key, cls] : rep.classes) {
    if (!keys.empty()) keys += ", ";
    keys += key;
  }
  return keys.empty() ? "(none)" : keys;
}

/// The DDT transfer of ddt_transfer_time, run with the flow-latency
/// engine recording; returns the report after Runtime teardown (the
/// generation fence has dropped any open flows by then).
obs::FlowStats::Report ddt_latency_report(int stream_triggered,
                                          obs::Recorder* rec) {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = stream_triggered;
  cfg.recorder = rec;
  const DatatypePtr dt = layout();
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  {
    Runtime rt(cfg);
    rt.set_gpu_plugin(plugin);
    rt.run([&](Process& p) {
      Comm comm(p);
      const std::int64_t span = test::span_bytes(dt, 1);
      auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      if (p.rank() == 0) {
        test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
        comm.send(buf, 1, dt, 1, 7);
      } else {
        comm.recv(buf, 1, dt, 0, 7);
      }
      sg::Free(p.gpu(), buf);
    });
  }
  return rec->flowstats().report();
}

/// The hand-packed comparator of packed_transfer_time with the latency
/// engine recording: its report carries three classes - the explicit
/// pack, the contiguous send, and the explicit unpack.
obs::FlowStats::Report packed_latency_report(obs::Recorder* rec,
                                             DatatypePtr* contig_out) {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = 0;
  cfg.recorder = rec;
  const DatatypePtr dt = layout();
  const std::int64_t bytes = dt->size();
  const DatatypePtr contig = Datatype::contiguous(bytes, mpi::kByte());
  *contig_out = contig;
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  {
    Runtime rt(cfg);
    rt.set_gpu_plugin(plugin);
    rt.run([&](Process& p) {
      Comm comm(p);
      const std::int64_t span = test::span_bytes(dt, 1);
      auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      auto* staging = static_cast<std::byte*>(sg::Malloc(p.gpu(), bytes));
      if (p.rank() == 0) {
        test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
        std::int64_t pos = 0;
        plugin->pack(p, buf, 1, dt,
                     std::span<std::byte>(staging,
                                          static_cast<std::size_t>(bytes)),
                     &pos);
        comm.send(staging, 1, contig, 1, 7);
      } else {
        comm.recv(staging, 1, contig, 0, 7);
        std::int64_t pos = 0;
        plugin->unpack(p,
                       std::span<const std::byte>(
                           staging, static_cast<std::size_t>(bytes)),
                       &pos, buf, 1, dt);
      }
      sg::Free(p.gpu(), staging);
      sg::Free(p.gpu(), buf);
    });
  }
  return rec->flowstats().report();
}

TEST(TraffSelfConsistency, LatencyReportP99HoldsInBothModes) {
  // The Traff requirement restated over the flow-latency report
  // (docs/latency.md): the DDT-send class's p99 must not exceed the sum
  // of the hand-packed pipeline's per-class p99s (explicit pack +
  // contiguous send + explicit unpack) - in the host-driven mode AND the
  // stream-triggered mode. Exact nearest-rank percentiles from the
  // engine, not wall-clock: the assertion is deterministic.
  const DatatypePtr dt = layout();
  DatatypePtr contig;
  obs::Recorder packed_rec;
  packed_rec.flowstats().enable(true);
  const auto packed = packed_latency_report(&packed_rec, &contig);
  const std::int64_t pack_p99 = class_p99(packed, "pack", dt->shape_digest());
  const std::int64_t send_p99 =
      class_p99(packed, "send", contig->shape_digest());
  const std::int64_t unpack_p99 =
      class_p99(packed, "unpack", dt->shape_digest());
  ASSERT_GT(pack_p99, 0)
      << "no pack class; classes: " << class_keys(packed);
  ASSERT_GT(send_p99, 0)
      << "no contiguous-send class; classes: " << class_keys(packed);
  ASSERT_GT(unpack_p99, 0)
      << "no unpack class; classes: " << class_keys(packed);
  const std::int64_t budget = pack_p99 + send_p99 + unpack_p99;

  for (const int stream : {0, 1}) {
    obs::Recorder rec;
    rec.flowstats().enable(true);
    const auto rep = ddt_latency_report(stream, &rec);
    const std::int64_t ddt_p99 = class_p99(rep, "send", dt->shape_digest());
    ASSERT_GT(ddt_p99, 0)
        << "no DDT-send class in the " << (stream ? "stream" : "host")
        << " report; classes: " << class_keys(rep);
    EXPECT_LE(ddt_p99, budget)
        << (stream ? "stream-triggered" : "host-driven")
        << " DDT-send p99 exceeds pack + contiguous-send + unpack p99";
  }
}

TEST(TraffSelfConsistency, DdtSendNeverSlowerThanExplicitPack) {
  const vt::Time packed = packed_transfer_time();
  const vt::Time host_driven = ddt_transfer_time(0);
  const vt::Time stream = ddt_transfer_time(1);
  ASSERT_GT(packed, 0);
  ASSERT_GT(host_driven, 0);
  ASSERT_GT(stream, 0);
  // Traff: the library must beat (or match) the user-level pack + send
  // + unpack of the same bytes - in both transfer modes.
  EXPECT_LE(host_driven, packed)
      << "host-driven DDT send slower than explicit pack + contiguous send";
  EXPECT_LE(stream, packed)
      << "stream-triggered DDT send slower than explicit pack + "
         "contiguous send";
  // ISSUE 8 overlap criterion: offloading the chain must not cost
  // overlap relative to the host-driven pipeline on this shape.
  EXPECT_LE(stream, host_driven)
      << "stream-triggered chain slower than the host-driven pipeline";
}

}  // namespace
}  // namespace gpuddt::proto
