// Traff self-consistency of the GPU datatype protocols: sending a
// derived datatype directly must never be slower, in virtual time, than
// the user doing the engine's job by hand - an explicit pack to a
// contiguous device buffer, a contiguous send of the same bytes, and an
// explicit unpack on the receiver. Holds for the host-driven pipelined
// RDMA path AND the stream-triggered fragment chain (docs/protocols.md),
// which is also required to be at least as fast as the host-driven path
// on this multi-fragment shape (the ISSUE 8 overlap criterion).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "mpi/datatype.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "mpi/stream_triggered.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::proto {
namespace {

using mpi::Comm;
using mpi::Datatype;
using mpi::DatatypePtr;
using mpi::Process;
using mpi::Runtime;
using mpi::RuntimeConfig;

RuntimeConfig gpu_world() {
  RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256 << 20;
  cfg.progress_timeout_ms = 10000;
  return cfg;
}

/// A multi-fragment non-contiguous shape: 2048 blocks of 128 doubles at
/// stride 256 (2 MB payload, several pipeline fragments).
DatatypePtr layout() {
  return Datatype::vector(
      2048, 128, 256, Datatype::primitive(mpi::Primitive::kDouble));
}

/// 0 -> 1 device-to-device DDT send; returns the receiver's completion
/// time on the virtual clock. `stream_triggered` drives the
/// RuntimeConfig tri-state knob.
vt::Time ddt_transfer_time(int stream_triggered) {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = stream_triggered;
  const DatatypePtr dt = layout();
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  vt::Time done = 0;
  std::int64_t chains = 0;
  Runtime rt(cfg);
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    const std::int64_t span = test::span_bytes(dt, 1);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
      comm.send(buf, 1, dt, 1, 7);
    } else {
      comm.recv(buf, 1, dt, 0, 7);
      done = p.clock().now();
      chains = plugin->stats(p).stream_triggered;
    }
    sg::Free(p.gpu(), buf);
  });
  // The mode under test must actually have engaged.
  EXPECT_EQ(chains, stream_triggered != 0 ? 1 : 0);
  return done;
}

/// The same bytes moved by hand: explicit engine pack into a contiguous
/// device buffer, contiguous send, explicit unpack. This is the
/// comparator Traff's self-consistency requirement measures against.
vt::Time packed_transfer_time() {
  RuntimeConfig cfg = gpu_world();
  cfg.stream_triggered = 0;
  const DatatypePtr dt = layout();
  const std::int64_t bytes = dt->size();
  auto plugin = std::make_shared<GpuDatatypePlugin>();
  vt::Time done = 0;
  Runtime rt(cfg);
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    const std::int64_t span = test::span_bytes(dt, 1);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    auto* staging = static_cast<std::byte*>(sg::Malloc(p.gpu(), bytes));
    const DatatypePtr contig = Datatype::contiguous(bytes, mpi::kByte());
    if (p.rank() == 0) {
      test::fill_pattern(buf, static_cast<std::size_t>(span), 5);
      std::int64_t pos = 0;
      plugin->pack(p, buf, 1, dt,
                   std::span<std::byte>(staging,
                                        static_cast<std::size_t>(bytes)),
                   &pos);
      comm.send(staging, 1, contig, 1, 7);
    } else {
      comm.recv(staging, 1, contig, 0, 7);
      std::int64_t pos = 0;
      plugin->unpack(p,
                     std::span<const std::byte>(
                         staging, static_cast<std::size_t>(bytes)),
                     &pos, buf, 1, dt);
      done = p.clock().now();
    }
    sg::Free(p.gpu(), staging);
    sg::Free(p.gpu(), buf);
  });
  return done;
}

TEST(TraffSelfConsistency, DdtSendNeverSlowerThanExplicitPack) {
  const vt::Time packed = packed_transfer_time();
  const vt::Time host_driven = ddt_transfer_time(0);
  const vt::Time stream = ddt_transfer_time(1);
  ASSERT_GT(packed, 0);
  ASSERT_GT(host_driven, 0);
  ASSERT_GT(stream, 0);
  // Traff: the library must beat (or match) the user-level pack + send
  // + unpack of the same bytes - in both transfer modes.
  EXPECT_LE(host_driven, packed)
      << "host-driven DDT send slower than explicit pack + contiguous send";
  EXPECT_LE(stream, packed)
      << "stream-triggered DDT send slower than explicit pack + "
         "contiguous send";
  // ISSUE 8 overlap criterion: offloading the chain must not cost
  // overlap relative to the host-driven pipeline on this shape.
  EXPECT_LE(stream, host_driven)
      << "stream-triggered chain slower than the host-driven pipeline";
}

}  // namespace
}  // namespace gpuddt::proto
