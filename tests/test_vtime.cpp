#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "vtime/resource.h"
#include "vtime/vclock.h"

namespace gpuddt::vt {
namespace {

TEST(VClock, StartsAtZero) {
  VClock c;
  EXPECT_EQ(c.now(), 0);
}

TEST(VClock, AdvanceAccumulates) {
  VClock c;
  c.advance(10);
  c.advance(5);
  EXPECT_EQ(c.now(), 15);
}

TEST(VClock, WaitUntilNeverGoesBackwards) {
  VClock c;
  c.advance(100);
  c.wait_until(50);
  EXPECT_EQ(c.now(), 100);
  c.wait_until(200);
  EXPECT_EQ(c.now(), 200);
}

TEST(VClock, ResetRestoresStart) {
  VClock c(7);
  c.advance(10);
  c.reset(3);
  EXPECT_EQ(c.now(), 3);
}

TEST(TransferTime, ZeroBytesIsFree) {
  EXPECT_EQ(transfer_time(0, 10.0), 0);
  EXPECT_EQ(transfer_time(-5, 10.0), 0);
}

TEST(TransferTime, PositiveBytesTakeAtLeastOneNano) {
  EXPECT_GE(transfer_time(1, 1000.0), 1);
}

TEST(TransferTime, ScalesLinearly) {
  // 10 GB/s -> 1e9 bytes take 1e8 ns.
  EXPECT_EQ(transfer_time(1'000'000'000, 10.0), 100'000'000);
}

TEST(TimedResource, BackToBackRequestsSerialize) {
  TimedResource r;
  const auto a = r.reserve(0, 100);
  const auto b = r.reserve(0, 50);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.finish, 100);
  EXPECT_EQ(b.start, 100);
  EXPECT_EQ(b.finish, 150);
}

TEST(TimedResource, IdleGapsAreRespected) {
  TimedResource r;
  r.reserve(0, 10);
  const auto b = r.reserve(1000, 10);
  EXPECT_EQ(b.start, 1000);
  EXPECT_EQ(b.finish, 1010);
}

TEST(TimedResource, TracksBusyTime) {
  TimedResource r;
  r.reserve(0, 10);
  r.reserve(0, 20);
  EXPECT_EQ(r.total_busy(), 30);
}

TEST(TimedResource, ResetClearsState) {
  TimedResource r;
  r.reserve(0, 100);
  r.reset();
  EXPECT_EQ(r.available(), 0);
  EXPECT_EQ(r.total_busy(), 0);
}

TEST(TimedResource, ConcurrentReservationsNeverOverlap) {
  TimedResource r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::vector<std::vector<Reservation>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        results[t].push_back(r.reserve(0, 7));
    });
  }
  for (auto& th : threads) th.join();
  std::vector<Reservation> all;
  for (auto& v : results) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Reservation& a, const Reservation& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i].start, all[i - 1].finish);
  EXPECT_EQ(r.total_busy(), 7 * kThreads * kPerThread);
}

TEST(CapacityResource, ParallelTasksShareSlots) {
  CapacityResource r(4);
  // Four width-1 tasks run concurrently.
  for (int i = 0; i < 4; ++i) {
    const auto res = r.reserve(0, 100, 1);
    EXPECT_EQ(res.start, 0);
  }
  // The fifth waits for a slot.
  const auto fifth = r.reserve(0, 100, 1);
  EXPECT_EQ(fifth.start, 100);
}

TEST(CapacityResource, WideTaskOccupiesManySlots) {
  CapacityResource r(4);
  const auto wide = r.reserve(0, 100, 4);
  EXPECT_EQ(wide.start, 0);
  const auto next = r.reserve(0, 10, 1);
  EXPECT_EQ(next.start, 100);
}

TEST(CapacityResource, WidthClampsToCapacity) {
  CapacityResource r(2);
  const auto res = r.reserve(0, 10, 100);
  EXPECT_EQ(res.finish, 10);
  const auto next = r.reserve(0, 10, 1);
  EXPECT_EQ(next.start, 10);
}

TEST(CapacityResource, NarrowTaskSlipsInBesideWideOne) {
  CapacityResource r(4);
  r.reserve(0, 100, 3);  // occupies 3 slots
  const auto narrow = r.reserve(0, 50, 1);
  EXPECT_EQ(narrow.start, 0);  // the 4th slot is free
}

TEST(CapacityResource, PicksEarliestSlots) {
  CapacityResource r(2);
  r.reserve(0, 100, 1);  // slot busy until 100
  r.reserve(0, 10, 1);   // other slot busy until 10
  const auto next = r.reserve(0, 10, 1);
  EXPECT_EQ(next.start, 10);  // reuses the earlier-free slot
}

TEST(CapacityResource, BusyAccountingIsSlotNanoseconds) {
  CapacityResource r(4);
  r.reserve(0, 10, 2);
  EXPECT_EQ(r.total_busy(), 20);
}

}  // namespace
}  // namespace gpuddt::vt
