// Tests of the baseline implementations: the vectorization algorithm, the
// Figure 1 pack-side alternatives (correctness + cost ordering), and the
// cost asymmetries that drive the paper's comparison figures.
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/alternatives.h"
#include "baselines/vectorize.h"
#include "core/layouts.h"
#include "test_helpers.h"

namespace gpuddt::base {
namespace {

// --- vectorize() -------------------------------------------------------------

TEST(Vectorize, VectorTypeCollapsesToOneSegment) {
  auto dt = core::submatrix_type(64, 32, 100);
  const auto segs = vectorize(dt, 1);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].blocklen, 64 * 8);
  EXPECT_EQ(segs[0].stride, 100 * 8);
  EXPECT_EQ(segs[0].count, 32);
}

TEST(Vectorize, ContiguousIsOneRow) {
  auto dt = mpi::Datatype::contiguous(100, mpi::kDouble());
  const auto segs = vectorize(dt, 1);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].count, 1);
  EXPECT_EQ(segs[0].blocklen, 800);
}

TEST(Vectorize, TriangularDegeneratesToOneSegmentPerColumn) {
  const std::int64_t n = 64;
  auto dt = core::lower_triangular_type(n, n);
  const auto segs = vectorize(dt, 1);
  // Every column has a different length: no merging possible.
  EXPECT_EQ(segs.size(), static_cast<std::size_t>(n));
  for (const auto& s : segs) EXPECT_EQ(s.count, 1);
}

TEST(Vectorize, StairTriangleMergesWithinStairs) {
  const std::int64_t n = 64, nb = 16;
  auto dt = core::stair_triangular_type(n, n, nb);
  const auto segs = vectorize(dt, 1);
  // Columns within one stair share a length and a uniform stride.
  EXPECT_EQ(segs.size(), static_cast<std::size_t>(n / nb));
}

TEST(Vectorize, TransposeMergesPerRow) {
  const std::int64_t n = 16;
  auto dt = core::transpose_type(n, n);
  const auto segs = vectorize(dt, 1);
  EXPECT_EQ(segs.size(), static_cast<std::size_t>(n));
  for (const auto& s : segs) {
    EXPECT_EQ(s.blocklen, 8);
    EXPECT_EQ(s.count, n);
  }
}

TEST(Vectorize, SegmentsCoverEveryPackedByte) {
  std::mt19937 rng(5150);
  for (int trial = 0; trial < 40; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 1 + trial % 3;
    const auto segs = vectorize(dt, count);
    std::int64_t covered = 0;
    std::int64_t expected_pk = 0;
    for (const auto& s : segs) {
      EXPECT_EQ(s.pk_disp, expected_pk) << dt->describe();
      covered += s.blocklen * s.count;
      expected_pk += s.blocklen * s.count;
    }
    EXPECT_EQ(covered, dt->size() * count) << dt->describe();
  }
}

TEST(Vectorize, SegmentCopySemanticsMatchCpuPack) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    auto dt = test::random_datatype(rng);
    const std::int64_t count = 1 + trial % 2;
    const std::int64_t total = dt->size() * count;
    if (total == 0) continue;
    const std::int64_t span = test::span_bytes(dt, count);
    std::vector<std::byte> src(static_cast<std::size_t>(span));
    test::fill_pattern(src.data(), src.size(), trial);
    const std::byte* base = src.data() - dt->true_lb();
    // Emulate the per-segment 2D copies on the host.
    std::vector<std::byte> packed(static_cast<std::size_t>(total));
    for (const auto& s : vectorize(dt, count)) {
      for (std::int64_t r = 0; r < s.count; ++r) {
        std::memcpy(packed.data() + s.pk_disp + r * s.blocklen,
                    base + s.src_disp + r * s.stride,
                    static_cast<std::size_t>(s.blocklen));
      }
    }
    EXPECT_EQ(packed, test::reference_pack(dt, count, base))
        << dt->describe();
  }
}

// --- Figure 1 alternatives ----------------------------------------------------

class AlternativesTest : public ::testing::Test {
 protected:
  sg::Machine m{test::machine_config(1, 512u << 20)};
  sg::HostContext ctx{m, 0};
};

TEST_F(AlternativesTest, AllStrategiesProduceIdenticalBytes) {
  auto dt = core::lower_triangular_type(96, 128);
  const std::int64_t total = dt->size();
  const std::int64_t span = dt->true_extent() + 64;
  auto* dev_src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(dev_src, static_cast<std::size_t>(span), 4);
  auto* host_scratch = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(span), false));
  auto* host_packed_a = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  auto* host_packed_b = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  auto* dev_packed_c = static_cast<std::byte*>(sg::Malloc(ctx, total));
  auto* dev_packed_d = static_cast<std::byte*>(sg::Malloc(ctx, total));

  pack_stage_whole(ctx, dt, 1, dev_src, host_scratch, host_packed_a);
  pack_per_block_d2h(ctx, dt, 1, dev_src, host_packed_b);
  pack_per_block_d2d(ctx, dt, 1, dev_src, dev_packed_c);
  core::GpuDatatypeEngine eng(ctx);
  pack_gpu_kernel(eng, dt, 1, dev_src, dev_packed_d);

  const auto ref = test::reference_pack(dt, 1, dev_src);
  EXPECT_EQ(std::memcmp(host_packed_a, ref.data(), ref.size()), 0);
  EXPECT_EQ(std::memcmp(host_packed_b, ref.data(), ref.size()), 0);
  EXPECT_EQ(std::memcmp(dev_packed_c, ref.data(), ref.size()), 0);
  EXPECT_EQ(std::memcmp(dev_packed_d, ref.data(), ref.size()), 0);
}

TEST_F(AlternativesTest, GpuKernelBeatsPerBlockStrategies) {
  auto dt = core::lower_triangular_type(512, 512);
  const std::int64_t total = dt->size();
  const std::int64_t span = dt->true_extent() + 64;
  auto* dev_src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* host_packed = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  auto* dev_packed = static_cast<std::byte*>(sg::Malloc(ctx, total));

  const auto b = pack_per_block_d2h(ctx, dt, 1, dev_src, host_packed);
  const auto c = pack_per_block_d2d(ctx, dt, 1, dev_src, dev_packed);
  core::GpuDatatypeEngine eng(ctx);
  const auto d = pack_gpu_kernel(eng, dt, 1, dev_src, dev_packed);

  // 512 per-block memcpy calls at ~6us each dwarf one kernel.
  EXPECT_GT(b.elapsed, 10 * d.elapsed);
  EXPECT_GT(c.elapsed, 10 * d.elapsed);
}

TEST_F(AlternativesTest, StageWholeWastesBandwidthOnGaps) {
  // Triangular matrix: half the extent is gaps, so strategy (a) moves
  // ~2x the payload over PCI-E plus a CPU pack.
  auto dt = core::lower_triangular_type(1024, 1024);
  const std::int64_t total = dt->size();
  const std::int64_t span = dt->true_extent() + 64;
  auto* dev_src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* host_scratch = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(span), false));
  auto* host_packed = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));

  const auto a =
      pack_stage_whole(ctx, dt, 1, dev_src, host_scratch, host_packed);
  // Must at least pay extent/pcie + size/cpu.
  const auto& cm = ctx.cost();
  EXPECT_GT(a.elapsed,
            cm.d2h_ns(dt->true_extent()) + cm.cpu_copy_ns(total));
}

TEST_F(AlternativesTest, PerBlockD2DBeatsD2HPerBlock) {
  // Same call count, but D2D copies avoid the PCI-E latency per call.
  auto dt = core::lower_triangular_type(256, 256);
  const std::int64_t total = dt->size();
  auto* dev_src =
      static_cast<std::byte*>(sg::Malloc(ctx, dt->true_extent() + 64));
  auto* host_packed = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  auto* dev_packed = static_cast<std::byte*>(sg::Malloc(ctx, total));
  const auto b = pack_per_block_d2h(ctx, dt, 1, dev_src, host_packed);
  const auto c = pack_per_block_d2d(ctx, dt, 1, dev_src, dev_packed);
  EXPECT_LT(c.elapsed, b.elapsed);
}

}  // namespace
}  // namespace gpuddt::base
