// Direct unit tests of the BTL / BML layer: Active-Message delivery and
// ordering, link timing, RDMA primitives, rail selection, and BML
// routing - below the PML, using raw handlers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "mpi/bml.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

RuntimeConfig raw_world(int ranks, int per_node) {
  RuntimeConfig cfg;
  cfg.world_size = ranks;
  cfg.ranks_per_node = per_node;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 128u << 20;
  cfg.progress_timeout_ms = 10000;
  return cfg;
}

TEST(BtlRaw, AmHandlerReceivesPayloadAndArrivalTime) {
  Runtime rt(raw_world(2, 1 << 30));
  std::atomic<int> hits{0};
  const int handler = rt.register_handler([&](Process& p, AmMessage& m) {
    EXPECT_EQ(m.src_rank, 0);
    EXPECT_EQ(m.payload.size(), 100u);
    EXPECT_GT(m.arrival, 0);
    EXPECT_GE(p.clock().now(), m.arrival);  // progress waited for arrival
    hits.fetch_add(1);
  });
  rt.run([&](Process& p) {
    if (p.rank() == 0) {
      p.am_send(1, handler, std::vector<std::byte>(100));
    } else {
      while (hits.load() == 0) p.progress_blocking();
    }
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(BtlRaw, MessagesFromOneSenderArriveInOrder) {
  Runtime rt(raw_world(2, 1 << 30));
  std::vector<int> seen;
  const int handler = rt.register_handler([&](Process&, AmMessage& m) {
    int v;
    std::memcpy(&v, m.payload.data(), 4);
    seen.push_back(v);
  });
  rt.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        std::vector<std::byte> payload(4);
        std::memcpy(payload.data(), &i, 4);
        p.am_send(1, handler, std::move(payload));
      }
    } else {
      while (seen.size() < 50) p.progress_blocking();
    }
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(BtlRaw, EarliestDependencyDelaysArrival) {
  Runtime rt(raw_world(2, 1 << 30));
  vt::Time arrival = 0;
  const int handler = rt.register_handler(
      [&](Process&, AmMessage& m) { arrival = m.arrival; });
  rt.run([&](Process& p) {
    if (p.rank() == 0) {
      p.am_send(1, handler, std::vector<std::byte>(16), vt::msec(3));
    } else {
      while (arrival == 0) p.progress_blocking();
    }
  });
  EXPECT_GE(arrival, vt::msec(3));
}

TEST(BtlRaw, IbLinkSlowerThanSmChannel) {
  auto measure = [](int per_node) {
    Runtime rt(raw_world(2, per_node));
    vt::Time arrival = 0;
    const int handler = rt.register_handler(
        [&](Process&, AmMessage& m) { arrival = m.arrival; });
    rt.run([&](Process& p) {
      if (p.rank() == 0) {
        p.am_send(1, handler, std::vector<std::byte>(1 << 20));
      } else {
        while (arrival == 0) p.progress_blocking();
      }
    });
    return arrival;
  };
  const vt::Time sm = measure(1 << 30);  // same node
  const vt::Time ib = measure(1);        // different nodes
  EXPECT_GT(ib, sm);  // 5.8 GB/s IB vs 6 GB/s SM plus latency gap
}

TEST(BtlRaw, RdmaGetMovesDeviceBytesOneSided) {
  Runtime rt(raw_world(2, 1 << 30));
  std::byte* remote_buf = nullptr;
  std::atomic<bool> ready{false};
  rt.run([&](Process& p) {
    if (p.rank() == 0) {
      remote_buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), 4096));
      test::fill_pattern(remote_buf, 4096, 42);
      ready.store(true);
      // Keep rank 0 alive while rank 1 reads (one-sided!).
      Comm(p).barrier();
    } else {
      while (!ready.load()) {
      }
      auto* local = static_cast<std::byte*>(sg::Malloc(p.gpu(), 4096));
      Btl& btl = p.runtime().btl_between(1, 0);
      const vt::Time t = btl.rdma_get(p, 0, local, remote_buf, 4096,
                                      p.clock().now());
      EXPECT_GT(t, 0);
      std::vector<std::byte> expect(4096);
      test::fill_pattern(expect.data(), 4096, 42);
      EXPECT_EQ(std::memcmp(local, expect.data(), 4096), 0);
      Comm(p).barrier();
    }
  });
}

TEST(BtlRaw, MultiRailDistributesLargeMessages) {
  // With 2 rails, two back-to-back large sends reserve different links,
  // so the second's arrival is NOT after the first's.
  auto measure = [](int rails) {
    RuntimeConfig cfg = raw_world(2, 1);
    cfg.ib_rails = rails;
    Runtime rt(cfg);
    std::vector<vt::Time> arrivals;
    const int handler = rt.register_handler(
        [&](Process&, AmMessage& m) { arrivals.push_back(m.arrival); });
    rt.run([&](Process& p) {
      if (p.rank() == 0) {
        p.am_send(1, handler, std::vector<std::byte>(1 << 20));
        p.am_send(1, handler, std::vector<std::byte>(1 << 20));
      } else {
        while (arrivals.size() < 2) p.progress_blocking();
      }
    });
    return arrivals;
  };
  const auto serial = measure(1);
  const auto railed = measure(2);
  // One rail: strictly serialized. Two rails: near-simultaneous arrivals.
  EXPECT_GT(serial[1], serial[0]);
  EXPECT_LT(railed[1] - railed[0], serial[1] - serial[0]);
}

TEST(BtlRaw, SmallControlMessagesStayOnRailZero) {
  // Many small messages with rails=4 remain strictly ordered in virtual
  // time (they all serialize on rail 0).
  RuntimeConfig cfg = raw_world(2, 1);
  cfg.ib_rails = 4;
  Runtime rt(cfg);
  std::vector<vt::Time> arrivals;
  const int handler = rt.register_handler(
      [&](Process&, AmMessage& m) { arrivals.push_back(m.arrival); });
  rt.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        p.am_send(1, handler, std::vector<std::byte>(64));
    } else {
      while (arrivals.size() < 10) p.progress_blocking();
    }
  });
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
}

TEST(Bml, RoutesByNodeTopology) {
  RuntimeConfig cfg = raw_world(4, 2);
  Runtime rt(cfg);
  Bml& bml = rt.bml();
  EXPECT_STREQ(bml.between(0, 1).name(), "sm");  // same node
  EXPECT_STREQ(bml.between(2, 3).name(), "sm");
  EXPECT_STREQ(bml.between(0, 2).name(), "ib");  // across nodes
  EXPECT_STREQ(bml.between(3, 0).name(), "ib");
}

TEST(Bml, GpuRdmaCapabilityPerBtl) {
  RuntimeConfig cfg = raw_world(4, 2);
  cfg.ipc_enabled = true;
  cfg.gpudirect_rdma = false;
  Runtime rt(cfg);
  rt.run([&](Process& p) {
    if (p.rank() != 0) return;
    EXPECT_TRUE(p.runtime().btl_between(0, 1).supports_gpu_rdma(p, 1));
    EXPECT_FALSE(p.runtime().btl_between(0, 2).supports_gpu_rdma(p, 2));
  });
}

}  // namespace
}  // namespace gpuddt::mpi
