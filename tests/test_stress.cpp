// Stress and failure-injection tests: many ranks across nodes, concurrent
// mixed host/device traffic, repeated runtimes, determinism of the
// virtual-time harness, truncation errors, signature overflow, and other
// paths the happy-path tests never reach.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/coll.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt {
namespace {

using mpi::Comm;
using mpi::Process;
using mpi::Runtime;
using mpi::RuntimeConfig;

RuntimeConfig stress_world(int ranks, int per_node) {
  RuntimeConfig cfg;
  cfg.world_size = ranks;
  cfg.ranks_per_node = per_node;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 512u << 20;
  cfg.progress_timeout_ms = 20000;
  return cfg;
}

TEST(Stress, SixRanksThreeNodesMixedTraffic) {
  Runtime rt(stress_world(6, 2));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    Comm comm(p);
    std::mt19937 rng(p.rank() * 31 + 5);
    // Everyone exchanges a device triangular matrix with everyone.
    const std::int64_t n = 64;
    auto dt = core::lower_triangular_type(n, n);
    const std::size_t span = static_cast<std::size_t>(n * n * 8);
    std::vector<std::byte*> out(static_cast<std::size_t>(p.size()));
    std::vector<std::byte*> in(static_cast<std::size_t>(p.size()));
    std::vector<mpi::Request> reqs;
    for (int r = 0; r < p.size(); ++r) {
      if (r == p.rank()) continue;
      out[r] = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      in[r] = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
      test::fill_pattern(out[r], span,
                         static_cast<std::uint32_t>(p.rank() * 100 + r));
      std::memset(in[r], 0, span);
      reqs.push_back(comm.irecv(in[r], 1, dt, r, p.rank()));
      reqs.push_back(comm.isend(out[r], 1, dt, r, r));
    }
    comm.waitall(reqs);
    for (int r = 0; r < p.size(); ++r) {
      if (r == p.rank()) continue;
      std::vector<std::byte> expect(span);
      test::fill_pattern(expect.data(), span,
                         static_cast<std::uint32_t>(r * 100 + p.rank()));
      EXPECT_EQ(test::reference_pack(dt, 1, in[r]),
                test::reference_pack(dt, 1, expect.data()))
          << "pair " << p.rank() << "<-" << r;
    }
  });
}

TEST(Stress, ManySmallMessagesPreserveOrder) {
  Runtime rt(stress_world(2, 1 << 30));
  rt.run([](Process& p) {
    Comm comm(p);
    constexpr int kMsgs = 500;
    if (p.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        comm.send(&i, 1, mpi::kInt32(), 1, /*tag=*/7);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        comm.recv(&v, 1, mpi::kInt32(), 0, 7);
        EXPECT_EQ(v, i);  // same (src, tag): non-overtaking
      }
    }
  });
}

TEST(Stress, InterleavedTagsMatchCorrectly) {
  Runtime rt(stress_world(2, 1 << 30));
  rt.run([](Process& p) {
    Comm comm(p);
    constexpr int kEach = 50;
    if (p.rank() == 0) {
      // Interleave two tag streams.
      for (int i = 0; i < kEach; ++i) {
        const int a = i, b = 1000 + i;
        comm.send(&a, 1, mpi::kInt32(), 1, 1);
        comm.send(&b, 1, mpi::kInt32(), 1, 2);
      }
    } else {
      // Drain tag 2 first, then tag 1.
      for (int i = 0; i < kEach; ++i) {
        int v = -1;
        comm.recv(&v, 1, mpi::kInt32(), 0, 2);
        EXPECT_EQ(v, 1000 + i);
      }
      for (int i = 0; i < kEach; ++i) {
        int v = -1;
        comm.recv(&v, 1, mpi::kInt32(), 0, 1);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Stress, RepeatedGpuTransfersStayStable) {
  Runtime rt(stress_world(2, 1 << 30));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    Comm comm(p);
    auto dt = core::submatrix_type(128, 32, 192);
    const std::size_t span = 192 * 32 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    for (int iter = 0; iter < 30; ++iter) {
      if (p.rank() == 0) {
        test::fill_pattern(buf, span, static_cast<std::uint32_t>(iter));
        comm.send(buf, 1, dt, 1, iter);
      } else {
        comm.recv(buf, 1, dt, 0, iter);
        std::vector<std::byte> expect(span);
        test::fill_pattern(expect.data(), span,
                           static_cast<std::uint32_t>(iter));
        ASSERT_EQ(test::reference_pack(dt, 1, buf),
                  test::reference_pack(dt, 1, expect.data()))
            << "iter " << iter;
      }
    }
  });
}

TEST(Stress, DeviceMemoryIsReleasedAfterTransfers) {
  Runtime rt(stress_world(2, 1 << 30));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  std::size_t in_use_after = 0;
  rt.run([&](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(128, 128);
    const std::size_t span = 128 * 128 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    const std::size_t baseline = p.gpu().dev().arena().bytes_in_use();
    for (int i = 0; i < 10; ++i) {
      if (p.rank() == 0) {
        comm.send(buf, 1, dt, 1, i);
      } else {
        comm.recv(buf, 1, dt, 0, i);
      }
    }
    comm.barrier();
    // Staging rings and descriptor scratch are freed per transfer; only
    // the DEV-cache device copies may persist (bounded by the cache).
    const std::size_t now = p.gpu().dev().arena().bytes_in_use();
    EXPECT_LT(now - baseline, 4u << 20);
    if (p.rank() == 0) in_use_after = now;
  });
  (void)in_use_after;
}

TEST(Stress, TruncatingRendezvousThrows) {
  RuntimeConfig cfg = stress_world(2, 1 << 30);
  cfg.progress_timeout_ms = 500;
  Runtime rt(cfg);
  EXPECT_THROW(
      rt.run([](Process& p) {
        Comm comm(p);
        std::vector<std::byte> big(1 << 20), small(1 << 10);
        if (p.rank() == 0) {
          comm.send(big.data(), 1 << 20, mpi::kByte(), 1, 0);
        } else {
          comm.recv(small.data(), 1 << 10, mpi::kByte(), 0, 0);
        }
      }),
      std::runtime_error);
}

TEST(Stress, HarnessIsDeterministic) {
  // Identical specs must produce identical virtual times: the whole
  // simulation is deterministic modulo thread scheduling, and virtual
  // time is independent of real interleaving.
  harness::PingPongSpec spec;
  spec.cfg = stress_world(2, 1 << 30);
  spec.dt0 = spec.dt1 = core::lower_triangular_type(512, 512);
  const auto a = harness::run_pingpong(spec);
  const auto b = harness::run_pingpong(spec);
  EXPECT_EQ(a.avg_roundtrip, b.avg_roundtrip);
}

TEST(Stress, SignatureOverflowStaysSound) {
  // A struct alternating primitives beyond the RLE cap exercises the
  // overflow-hash path; equal constructions still compare equal and
  // unequal ones differ.
  auto build = [](int runs, mpi::Primitive extra) {
    std::vector<std::int64_t> lens, displs;
    std::vector<mpi::DatatypePtr> types;
    std::int64_t at = 0;
    for (int i = 0; i < runs; ++i) {
      lens.push_back(1);
      displs.push_back(at);
      types.push_back(i % 2 ? mpi::kInt32() : mpi::kDouble());
      at += 16;
    }
    lens.push_back(1);
    displs.push_back(at);
    types.push_back(mpi::Datatype::primitive(extra));
    return mpi::Datatype::struct_type(lens, displs, types);
  };
  auto a = build(100, mpi::Primitive::kFloat);
  auto b = build(100, mpi::Primitive::kFloat);
  auto c = build(100, mpi::Primitive::kInt64);
  EXPECT_NE(a->signature().overflow_hash, 0u);
  EXPECT_EQ(a->signature(), b->signature());
  EXPECT_NE(a->signature().hash(), c->signature().hash());
}

TEST(Stress, PackUnpackRoundTripsOverflowType) {
  // The >cap struct must still move correctly end to end.
  std::vector<std::int64_t> lens, displs;
  std::vector<mpi::DatatypePtr> types;
  std::int64_t at = 0;
  for (int i = 0; i < 80; ++i) {
    lens.push_back(1 + i % 3);
    displs.push_back(at);
    types.push_back(i % 2 ? mpi::kInt32() : mpi::kDouble());
    at += 8 * (1 + i % 3) + 8;
  }
  auto dt = mpi::Datatype::struct_type(lens, displs, types);
  const std::int64_t span = test::span_bytes(dt, 1);
  std::vector<std::byte> src(static_cast<std::size_t>(span)),
      dst(static_cast<std::size_t>(span), std::byte{0});
  test::fill_pattern(src.data(), src.size(), 2);
  auto packed = test::reference_pack(dt, 1, src.data());
  mpi::cpu_unpack(dt, 1, packed, dst.data());
  EXPECT_EQ(test::reference_pack(dt, 1, dst.data()), packed);
}

TEST(Stress, ConcurrentEnginesOnSeparateRanks) {
  // Two ranks hammer their engines simultaneously on the same device:
  // SM-capacity contention must not corrupt results.
  RuntimeConfig cfg = stress_world(4, 1 << 30);
  cfg.device_of = [](int) { return 0; };  // everyone on GPU 0
  Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(96, 96);
    const std::size_t span = 96 * 96 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    const int peer = p.rank() ^ 1;
    test::fill_pattern(buf, span, static_cast<std::uint32_t>(p.rank()));
    mpi::Request r[2];
    std::vector<std::byte> in(span, std::byte{0});
    auto* dev_in = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    std::memset(dev_in, 0, span);
    r[0] = comm.irecv(dev_in, 1, dt, peer, 0);
    r[1] = comm.isend(buf, 1, dt, peer, 0);
    comm.wait(r[0]);
    comm.wait(r[1]);
    std::vector<std::byte> expect(span);
    test::fill_pattern(expect.data(), span,
                       static_cast<std::uint32_t>(peer));
    EXPECT_EQ(test::reference_pack(dt, 1, dev_in),
              test::reference_pack(dt, 1, expect.data()));
  });
}

TEST(Stress, MultiRailIbSpeedsUpLargeTransfers) {
  // Two rails roughly double aggregate IB bandwidth for the pipelined
  // fragment stream; correctness is unchanged.
  auto run_with_rails = [](int rails) {
    harness::PingPongSpec spec;
    spec.cfg = stress_world(2, 1);  // two nodes: IB path
    spec.cfg.ib_rails = rails;
    spec.dt0 = spec.dt1 = core::submatrix_type(2048, 1024, 2048 + 512);
    return harness::run_pingpong(spec);
  };
  const auto one = run_with_rails(1);
  const auto two = run_with_rails(2);
  EXPECT_LT(static_cast<double>(two.avg_roundtrip),
            0.70 * static_cast<double>(one.avg_roundtrip));
  const auto four = run_with_rails(4);
  EXPECT_LE(four.avg_roundtrip, two.avg_roundtrip);
}

TEST(Stress, MultiRailPreservesCorrectness) {
  RuntimeConfig cfg = stress_world(2, 1);
  cfg.ib_rails = 3;
  Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(512, 512);
    const std::size_t span = 512 * 512 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    if (p.rank() == 0) {
      test::fill_pattern(buf, span, 123);
      comm.send(buf, 1, dt, 1, 0);
    } else {
      comm.recv(buf, 1, dt, 0, 0);
      std::vector<std::byte> expect(span);
      test::fill_pattern(expect.data(), span, 123);
      EXPECT_EQ(test::reference_pack(dt, 1, buf),
                test::reference_pack(dt, 1, expect.data()));
    }
  });
}

TEST(Stress, WideWorldBarrierStorm) {
  Runtime rt(stress_world(8, 3));  // uneven node packing
  rt.run([](Process& p) {
    Comm comm(p);
    for (int i = 0; i < 20; ++i) comm.barrier();
    EXPECT_GT(p.clock().now(), 0);
  });
}

}  // namespace
}  // namespace gpuddt

namespace gpuddt {
namespace {

TEST(Stress, SixGpusLikeThePaperNode) {
  // The paper's PSG nodes carry 6 K40s; six ranks, one per device,
  // all-pairs triangular traffic.
  RuntimeConfig cfg;
  cfg.world_size = 6;
  cfg.machine.num_devices = 6;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 20000;
  Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    EXPECT_EQ(p.gpu().device, p.rank());  // one rank per GPU
    Comm comm(p);
    auto dt = core::lower_triangular_type(96, 96);
    const std::size_t span = 96 * 96 * 8;
    auto* out = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    auto* in = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    test::fill_pattern(out, span, static_cast<std::uint32_t>(p.rank()));
    const int peer = (p.rank() + 3) % 6;  // pair distant devices
    mpi::Request r = comm.irecv(in, 1, dt, peer, 0);
    mpi::Request s = comm.isend(out, 1, dt, peer, 0);
    comm.wait(r);
    comm.wait(s);
    std::vector<std::byte> expect(span);
    test::fill_pattern(expect.data(), span,
                       static_cast<std::uint32_t>(peer));
    EXPECT_EQ(test::reference_pack(dt, 1, in),
              test::reference_pack(dt, 1, expect.data()));
  });
}

TEST(Stress, OddRanksPerNodeTopology) {
  // 5 ranks over nodes of 2: nodes {0,1},{2,3},{4}; mixed SM/IB paths in
  // one collective.
  RuntimeConfig cfg = stress_world(5, 2);
  Runtime rt(cfg);
  rt.run([](Process& p) {
    mpi::Collectives coll(Comm{p});
    std::int64_t v = 1;
    std::int64_t sum = 0;
    coll.allreduce(&v, &sum, 1, mpi::kInt64(), mpi::ReduceOp::kSum);
    EXPECT_EQ(sum, 5);
  });
}

}  // namespace
}  // namespace gpuddt
