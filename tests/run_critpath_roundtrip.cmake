# Round-trip + determinism check for the critical-path profiler: run the
# fig9 benchmark twice with --trace-format=chrome, feed both traces
# through trace_critpath, and require
#   - overlap efficiency in (0, 1] on real pipeline output
#     (--check-efficiency), and
#   - the two gpuddt-critpath-v1 documents byte-identical (virtual time
#     is deterministic; docs/determinism.md).
# Invoked by the trace_critpath_roundtrip CTest entry.
#
# cmake -DBENCH=<bench_fig9 path> -DTOOL=<trace_critpath path>
#       -DWORK_DIR=<scratch dir> -P run_critpath_roundtrip.cmake

if(NOT BENCH OR NOT TOOL OR NOT WORK_DIR)
  message(FATAL_ERROR
    "run_critpath_roundtrip.cmake: BENCH, TOOL and WORK_DIR required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(run 1 2)
  execute_process(
    COMMAND ${BENCH} --benchmark_filter=BM_Fig9_V/1024/
            --trace-format=chrome
            --trace-out=${WORK_DIR}/critpath_trace_${run}.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "benchmark run ${run} failed")
  endif()
  execute_process(
    COMMAND ${TOOL} --check-efficiency
            --json-out=${WORK_DIR}/critpath_${run}.json
            ${WORK_DIR}/critpath_trace_${run}.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "trace_critpath failed on run ${run} (efficiency outside (0, 1]?)")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/critpath_1.json ${WORK_DIR}/critpath_2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "critpath reports differ between identical runs (determinism break)")
endif()
