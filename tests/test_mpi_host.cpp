// Host-path MPI tests: matching, eager/rendezvous, datatypes on the wire,
// wildcards, barrier, multi-rank traffic. No GPU involvement.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/layouts.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

RuntimeConfig small_world(int n = 2) {
  RuntimeConfig cfg;
  cfg.world_size = n;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 64 << 20;
  cfg.progress_timeout_ms = 10000;
  return cfg;
}

TEST(MpiHost, EagerSendRecvInts) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    std::vector<std::int32_t> buf(128);
    if (p.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
      comm.send(buf.data(), 128, kInt32(), 1, 7);
    } else {
      const Status st = comm.recv(buf.data(), 128, kInt32(), 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 512);
      for (int i = 0; i < 128; ++i) EXPECT_EQ(buf[i], i);
    }
  });
}

TEST(MpiHost, RendezvousLargeMessage) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    const std::int64_t n = 1 << 20;  // 4 MB of int32 > eager limit
    std::vector<std::int32_t> buf(static_cast<std::size_t>(n));
    if (p.rank() == 0) {
      for (std::int64_t i = 0; i < n; ++i)
        buf[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i * 3);
      comm.send(buf.data(), n, kInt32(), 1, 1);
    } else {
      comm.recv(buf.data(), n, kInt32(), 0, 1);
      for (std::int64_t i = 0; i < n; i += 997)
        EXPECT_EQ(buf[static_cast<std::size_t>(i)],
                  static_cast<std::int32_t>(i * 3));
    }
  });
}

TEST(MpiHost, NonContiguousVectorRoundTrip) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    auto dt = Datatype::vector(64, 2, 4, kDouble());
    std::vector<double> buf(64 * 4);
    if (p.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<double>(i);
      comm.send(buf.data(), 1, dt, 1, 0);
    } else {
      std::fill(buf.begin(), buf.end(), -1.0);
      comm.recv(buf.data(), 1, dt, 0, 0);
      for (std::size_t i = 0; i < buf.size() - 2; ++i) {
        const bool in_block = (i % 4) < 2;
        EXPECT_EQ(buf[i], in_block ? static_cast<double>(i) : -1.0) << i;
      }
    }
  });
}

TEST(MpiHost, SenderVectorToReceiverContiguous) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    auto vec = Datatype::vector(32, 1, 2, kInt32());
    if (p.rank() == 0) {
      std::vector<std::int32_t> buf(64);
      for (int i = 0; i < 64; ++i) buf[static_cast<std::size_t>(i)] = i;
      comm.send(buf.data(), 1, vec, 1, 0);
    } else {
      std::vector<std::int32_t> out(32, -1);
      comm.recv(out.data(), 32, kInt32(), 0, 0);
      for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * i);
    }
  });
}

TEST(MpiHost, TriangularRendezvousRoundTrip) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    const std::int64_t n = 192;  // > eager limit once packed
    auto dt = core::lower_triangular_type(n, n);
    std::vector<std::byte> buf(static_cast<std::size_t>(n * n * 8));
    if (p.rank() == 0) {
      test::fill_pattern(buf.data(), buf.size(), 21);
      comm.send(buf.data(), 1, dt, 1, 3);
      auto ref = test::reference_pack(dt, 1, buf.data());
      // Receiver repacks identically (checked there).
    } else {
      comm.recv(buf.data(), 1, dt, 0, 3);
      std::vector<std::byte> expected(buf.size());
      test::fill_pattern(expected.data(), expected.size(), 21);
      EXPECT_EQ(test::reference_pack(dt, 1, buf.data()),
                test::reference_pack(dt, 1, expected.data()));
    }
  });
}

TEST(MpiHost, UnexpectedMessagesMatchInOrder) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    int a = 0, b = 0;
    if (p.rank() == 0) {
      a = 11;
      b = 22;
      comm.send(&a, 1, kInt32(), 1, 5);
      comm.send(&b, 1, kInt32(), 1, 5);
    } else {
      comm.barrier();  // let both messages land unexpected
      comm.recv(&a, 1, kInt32(), 0, 5);
      comm.recv(&b, 1, kInt32(), 0, 5);
      EXPECT_EQ(a, 11);
      EXPECT_EQ(b, 22);
    }
    if (p.rank() == 0) comm.barrier();
  });
}

TEST(MpiHost, WildcardSourceAndTag) {
  Runtime rt(small_world(3));
  rt.run([](Process& p) {
    Comm comm(p);
    if (p.rank() != 0) {
      int v = p.rank() * 100;
      comm.send(&v, 1, kInt32(), 0, p.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const Status st = comm.recv(&v, 1, kInt32(), kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen += v;
      }
      EXPECT_EQ(seen, 300);
    }
  });
}

TEST(MpiHost, IsendIrecvWaitall) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    constexpr int kN = 8;
    std::vector<std::vector<std::int32_t>> bufs(kN,
                                                std::vector<std::int32_t>(64));
    std::vector<Request> reqs;
    if (p.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::fill(bufs[i].begin(), bufs[i].end(), i);
        reqs.push_back(comm.isend(bufs[i].data(), 64, kInt32(), 1, i));
      }
    } else {
      for (int i = 0; i < kN; ++i)
        reqs.push_back(comm.irecv(bufs[i].data(), 64, kInt32(), 0, i));
    }
    comm.waitall(reqs);
    if (p.rank() == 1) {
      for (int i = 0; i < kN; ++i)
        for (int v : bufs[i]) EXPECT_EQ(v, i);
    }
  });
}

TEST(MpiHost, ExchangeBothDirectionsNoDeadlock) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    const std::int64_t n = 1 << 19;  // rendezvous-sized
    std::vector<std::byte> out(static_cast<std::size_t>(n)),
        in(static_cast<std::size_t>(n));
    test::fill_pattern(out.data(), out.size(), p.rank());
    Request r = comm.irecv(in.data(), n, kByte(), 1 - p.rank(), 0);
    Request s = comm.isend(out.data(), n, kByte(), 1 - p.rank(), 0);
    comm.wait(r);
    comm.wait(s);
    std::vector<std::byte> expect(static_cast<std::size_t>(n));
    test::fill_pattern(expect.data(), expect.size(), 1 - p.rank());
    EXPECT_EQ(std::memcmp(in.data(), expect.data(), expect.size()), 0);
  });
}

TEST(MpiHost, BarrierSynchronizesAllRanks) {
  Runtime rt(small_world(5));
  std::atomic<int> before{0}, after{0};
  rt.run([&](Process& p) {
    Comm comm(p);
    before.fetch_add(1);
    comm.barrier();
    // Every rank must have entered before any leaves.
    EXPECT_EQ(before.load(), 5);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 5);
}

TEST(MpiHost, ZeroByteMessage) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    char token = 0;
    if (p.rank() == 0) {
      comm.send(&token, 0, kByte(), 1, 9);
    } else {
      const Status st = comm.recv(&token, 0, kByte(), 0, 9);
      EXPECT_EQ(st.bytes, 0);
    }
  });
}

TEST(MpiHost, ReceiveLargerBufferThanMessage) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    std::vector<std::int32_t> buf(64, -1);
    if (p.rank() == 0) {
      comm.send(buf.data(), 8, kInt32(), 1, 0);
    } else {
      const Status st = comm.recv(buf.data(), 64, kInt32(), 0, 0);
      EXPECT_EQ(st.bytes, 32);
    }
  });
}

TEST(MpiHost, InterNodeTrafficUsesIbBtl) {
  RuntimeConfig cfg = small_world();
  cfg.ranks_per_node = 1;  // ranks 0 and 1 on different nodes
  Runtime rt(cfg);
  rt.run([](Process& p) {
    EXPECT_EQ(p.node(), p.rank());
    Comm comm(p);
    const std::int64_t n = 1 << 20;
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (p.rank() == 0) {
      test::fill_pattern(buf.data(), buf.size(), 55);
      comm.send(buf.data(), n, kByte(), 1, 0);
    } else {
      comm.recv(buf.data(), n, kByte(), 0, 0);
      std::vector<std::byte> expect(static_cast<std::size_t>(n));
      test::fill_pattern(expect.data(), expect.size(), 55);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data(), expect.size()), 0);
      // Wire time for 1MB at IB rates is far above SM rates.
      EXPECT_GT(p.clock().now(), vt::usec(150));
    }
  });
}

TEST(MpiHost, ManyRanksRing) {
  Runtime rt(small_world(6));
  rt.run([](Process& p) {
    Comm comm(p);
    const int next = (p.rank() + 1) % p.size();
    const int prev = (p.rank() - 1 + p.size()) % p.size();
    int token = p.rank();
    int got = -1;
    Request r = comm.irecv(&got, 1, kInt32(), prev, 0);
    Request s = comm.isend(&token, 1, kInt32(), next, 0);
    comm.wait(r);
    comm.wait(s);
    EXPECT_EQ(got, prev);
  });
}

TEST(MpiHost, VirtualClocksAdvanceWithTraffic) {
  Runtime rt(small_world());
  rt.run([](Process& p) {
    Comm comm(p);
    const std::int64_t n = 8 << 20;
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (p.rank() == 0) {
      comm.send(buf.data(), n, kByte(), 1, 0);
    } else {
      comm.recv(buf.data(), n, kByte(), 0, 0);
      // 8MB at ~6 GB/s SM + packing costs: at least 1 ms of virtual time.
      EXPECT_GT(p.clock().now(), vt::msec(1));
      EXPECT_LT(p.clock().now(), vt::msec(100));
    }
  });
}

TEST(MpiHost, RuntimeRejectsSecondRun) {
  Runtime rt(small_world());
  rt.run([](Process&) {});
  EXPECT_THROW(rt.run([](Process&) {}), std::logic_error);
}

TEST(MpiHost, DeviceSendWithoutPluginThrows) {
  RuntimeConfig cfg = small_world();
  cfg.progress_timeout_ms = 300;  // peer rank aborts quickly
  Runtime rt(cfg);
  EXPECT_THROW(rt.run([](Process& p) {
                 Comm comm(p);
                 void* dev = sg::Malloc(p.gpu(), 1 << 20);
                 if (p.rank() == 0) {
                   comm.send(dev, 1 << 18, kInt32(), 1, 0);
                 } else {
                   comm.recv(dev, 1 << 18, kInt32(), 0, 0);
                 }
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace gpuddt::mpi
