#include <gtest/gtest.h>

#include "core/layouts.h"
#include "mpi/datatype.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

TEST(Primitive, SizesMatchC) {
  EXPECT_EQ(kDouble()->size(), 8);
  EXPECT_EQ(kFloat()->size(), 4);
  EXPECT_EQ(kInt32()->size(), 4);
  EXPECT_EQ(kInt64()->size(), 8);
  EXPECT_EQ(kByte()->size(), 1);
  EXPECT_EQ(kChar()->size(), 1);
}

TEST(Primitive, IsDenseAndContiguous) {
  EXPECT_TRUE(kDouble()->is_dense());
  EXPECT_TRUE(kDouble()->is_contiguous(10));
  EXPECT_EQ(kDouble()->extent(), 8);
  EXPECT_EQ(kDouble()->blocks_per_element(), 1);
}

TEST(Contiguous, CollapsesToSingleBlock) {
  auto t = Datatype::contiguous(10, kDouble());
  EXPECT_EQ(t->size(), 80);
  EXPECT_EQ(t->extent(), 80);
  EXPECT_TRUE(t->is_dense());
  EXPECT_EQ(t->blocks_per_element(), 1);
  EXPECT_EQ(t->program().size(), 1u);
}

TEST(Contiguous, OfContiguousStaysDense) {
  auto t = Datatype::contiguous(4, Datatype::contiguous(3, kInt32()));
  EXPECT_EQ(t->size(), 48);
  EXPECT_TRUE(t->is_dense());
}

TEST(Contiguous, ZeroCountIsEmpty) {
  auto t = Datatype::contiguous(0, kDouble());
  EXPECT_EQ(t->size(), 0);
  EXPECT_EQ(t->extent(), 0);
}

TEST(Contiguous, NegativeCountThrows) {
  EXPECT_THROW(Datatype::contiguous(-1, kDouble()), std::invalid_argument);
}

TEST(Vector, BasicGeometry) {
  // 4 blocks of 2 doubles, stride 5 doubles.
  auto t = Datatype::vector(4, 2, 5, kDouble());
  EXPECT_EQ(t->size(), 4 * 2 * 8);
  EXPECT_EQ(t->extent(), (3 * 5 + 2) * 8);  // last block end
  EXPECT_FALSE(t->is_dense());
  EXPECT_EQ(t->blocks_per_element(), 4);
}

TEST(Vector, StrideEqualBlocklenIsContiguous) {
  auto t = Datatype::vector(4, 3, 3, kDouble());
  EXPECT_TRUE(t->is_dense());
  EXPECT_EQ(t->size(), 96);
  EXPECT_EQ(t->program().size(), 1u);
}

TEST(Vector, HvectorUsesByteStride) {
  auto t = Datatype::hvector(3, 1, 100, kDouble());
  EXPECT_EQ(t->size(), 24);
  EXPECT_EQ(t->extent(), 2 * 100 + 8);
}

TEST(Vector, NegativeStrideGivesNegativeLb) {
  auto t = Datatype::hvector(3, 1, -16, kDouble());
  EXPECT_EQ(t->size(), 24);
  EXPECT_EQ(t->true_lb(), -32);
  EXPECT_EQ(t->extent(), 40);
}

TEST(Indexed, TriangularGeometry) {
  auto t = core::lower_triangular_type(8, 8);
  EXPECT_EQ(t->size(), core::lower_triangle_elems(8) * 8);
  EXPECT_EQ(t->blocks_per_element(), 8);
  EXPECT_FALSE(t->is_dense());
  EXPECT_FALSE(t->regular_pattern(1).has_value());
}

TEST(Indexed, AdjacentBlocksMerge) {
  const std::int64_t lens[] = {2, 3};
  const std::int64_t displs[] = {0, 2};
  auto t = Datatype::indexed(lens, displs, kDouble());
  EXPECT_TRUE(t->is_dense());
  EXPECT_EQ(t->size(), 40);
  EXPECT_EQ(t->blocks_per_element(), 1);
}

TEST(Indexed, MismatchedArgumentsThrow) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t displs[] = {0};
  EXPECT_THROW(Datatype::indexed(lens, std::span<const std::int64_t>(displs),
                                 kDouble()),
               std::invalid_argument);
}

TEST(IndexedBlock, EqualBlocksShareLength) {
  const std::int64_t displs[] = {0, 4, 8};
  auto t = Datatype::indexed_block(2, displs, kInt32());
  EXPECT_EQ(t->size(), 3 * 2 * 4);
  EXPECT_EQ(t->blocks_per_element(), 3);
}

TEST(Struct, MixedPrimitives) {
  // {int32 a; double b[2];} with natural alignment padding.
  const std::int64_t lens[] = {1, 2};
  const std::int64_t displs[] = {0, 8};
  const DatatypePtr types[] = {kInt32(), kDouble()};
  auto t = Datatype::struct_type(lens, displs, types);
  EXPECT_EQ(t->size(), 4 + 16);
  EXPECT_EQ(t->true_extent(), 24);
  EXPECT_EQ(t->blocks_per_element(), 2);
  EXPECT_EQ(t->signature().runs.size(), 2u);
}

TEST(Subarray, FortranOrder2D) {
  // 4x3 sub-block at (2,1) of a 10x8 Fortran-order double array.
  const std::int64_t sizes[] = {10, 8};
  const std::int64_t subsizes[] = {4, 3};
  const std::int64_t starts[] = {2, 1};
  auto t = Datatype::subarray(sizes, subsizes, starts, kDouble(),
                              Datatype::Order::kFortran);
  EXPECT_EQ(t->size(), 12 * 8);
  EXPECT_EQ(t->extent(), 80 * 8);  // full array
  EXPECT_EQ(t->lb(), 0);
  EXPECT_EQ(t->blocks_per_element(), 3);  // one block per column
  // First element at column 1, row 2.
  EXPECT_EQ(t->true_lb(), (1 * 10 + 2) * 8);
}

TEST(Subarray, COrder2D) {
  const std::int64_t sizes[] = {6, 10};
  const std::int64_t subsizes[] = {2, 4};
  const std::int64_t starts[] = {1, 3};
  auto t = Datatype::subarray(sizes, subsizes, starts, kDouble(),
                              Datatype::Order::kC);
  EXPECT_EQ(t->size(), 8 * 8);
  EXPECT_EQ(t->extent(), 60 * 8);
  EXPECT_EQ(t->true_lb(), (1 * 10 + 3) * 8);
  EXPECT_EQ(t->blocks_per_element(), 2);  // one run per row
}

TEST(Subarray, FullArrayIsContiguousData) {
  const std::int64_t sizes[] = {4, 4};
  const std::int64_t subsizes[] = {4, 4};
  const std::int64_t starts[] = {0, 0};
  auto t = Datatype::subarray(sizes, subsizes, starts, kDouble(),
                              Datatype::Order::kFortran);
  EXPECT_EQ(t->size(), t->extent());
  EXPECT_TRUE(t->is_contiguous(1));
}

TEST(Subarray, OutOfBoundsThrows) {
  const std::int64_t sizes[] = {4};
  const std::int64_t subsizes[] = {3};
  const std::int64_t starts[] = {2};
  EXPECT_THROW(Datatype::subarray(sizes, subsizes, starts, kDouble()),
               std::invalid_argument);
}

TEST(Resized, OverridesExtentOnly) {
  auto v = Datatype::vector(2, 1, 4, kDouble());
  auto r = Datatype::resized(v, 0, 64);
  EXPECT_EQ(r->size(), v->size());
  EXPECT_EQ(r->extent(), 64);
  EXPECT_EQ(r->true_extent(), v->true_extent());
}

TEST(Resized, NegativeLb) {
  auto r = Datatype::resized(kDouble(), -8, 24);
  EXPECT_EQ(r->lb(), -8);
  EXPECT_EQ(r->ub(), 16);
  EXPECT_EQ(r->size(), 8);
}

// --- Contiguity queries -------------------------------------------------------------

TEST(Contiguity, DenseTypeContiguousForAnyCount) {
  auto t = Datatype::contiguous(3, kDouble());
  EXPECT_TRUE(t->is_contiguous(1));
  EXPECT_TRUE(t->is_contiguous(100));
}

TEST(Contiguity, GappedExtentContiguousOnlyForCountOne) {
  // Dense 24 bytes of data but extent 32: elements don't abut.
  auto r = Datatype::resized(Datatype::contiguous(3, kDouble()), 0, 32);
  EXPECT_TRUE(r->is_contiguous(1));
  EXPECT_FALSE(r->is_contiguous(2));
}

TEST(Contiguity, VectorIsNotContiguous) {
  EXPECT_FALSE(Datatype::vector(2, 1, 4, kDouble())->is_contiguous(1));
}

// --- Regular pattern (vector fast path) ------------------------------------------------

TEST(RegularPattern, VectorMapsDirectly) {
  auto t = Datatype::vector(4, 2, 5, kDouble());
  auto p = t->regular_pattern(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->blocklen, 16);
  EXPECT_EQ(p->stride, 40);
  EXPECT_EQ(p->count, 4);
  EXPECT_EQ(p->first_disp, 0);
}

TEST(RegularPattern, MultiCountVectorNeedsMatchingExtent) {
  auto t = Datatype::vector(4, 2, 5, kDouble());
  // extent (17 doubles) != count*stride (20 doubles): not uniform.
  EXPECT_FALSE(t->regular_pattern(3).has_value());
  // Resized to stride-multiple extent: uniform across elements.
  auto r = Datatype::resized(t, 0, 4 * 5 * 8);
  auto p = r->regular_pattern(3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->count, 12);
}

TEST(RegularPattern, DenseBlockBecomesSingleRun) {
  auto t = Datatype::contiguous(8, kDouble());
  auto p = t->regular_pattern(5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->count, 1);
  EXPECT_EQ(p->blocklen, 5 * 64);
}

TEST(RegularPattern, CountedPrimitiveWithGapIsStrided) {
  auto r = Datatype::resized(kDouble(), 0, 16);
  auto p = r->regular_pattern(6);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->count, 6);
  EXPECT_EQ(p->blocklen, 8);
  EXPECT_EQ(p->stride, 16);
}

TEST(RegularPattern, TriangularHasNone) {
  EXPECT_FALSE(
      core::lower_triangular_type(16, 16)->regular_pattern(1).has_value());
}

// --- Signatures -----------------------------------------------------------------------

TEST(Signature, FlattenedFormsMatch) {
  auto vec = Datatype::vector(4, 2, 5, kDouble());
  auto cont = Datatype::contiguous(8, kDouble());
  EXPECT_EQ(vec->signature(), cont->signature());
  EXPECT_EQ(vec->signature().hash(), cont->signature().hash());
}

TEST(Signature, DifferentPrimitivesDiffer) {
  auto a = Datatype::contiguous(2, kDouble());
  auto b = Datatype::contiguous(4, kFloat());  // same byte count
  EXPECT_NE(a->signature(), b->signature());
}

TEST(Signature, TriangularMatchesContiguousOfSameElems) {
  auto t = core::lower_triangular_type(32, 32);
  auto c = Datatype::contiguous(core::lower_triangle_elems(32), kDouble());
  EXPECT_EQ(t->signature().hash(), c->signature().hash());
}

TEST(Signature, StructOrderMatters) {
  const std::int64_t lens[] = {1, 1};
  const std::int64_t displs[] = {0, 8};
  const DatatypePtr t1[] = {kInt32(), kDouble()};
  const DatatypePtr t2[] = {kDouble(), kInt32()};
  auto a = Datatype::struct_type(lens, displs, t1);
  auto b = Datatype::struct_type(lens, displs, t2);
  EXPECT_NE(a->signature(), b->signature());
}

TEST(Signature, TotalPrimitivesCounts) {
  auto t = core::lower_triangular_type(10, 10);
  EXPECT_EQ(t->signature().total_primitives, core::lower_triangle_elems(10));
}

TEST(TypeId, UniquePerInstance) {
  auto a = Datatype::contiguous(2, kDouble());
  auto b = Datatype::contiguous(2, kDouble());
  EXPECT_NE(a->type_id(), b->type_id());
}

TEST(Describe, MentionsGeometry) {
  auto t = Datatype::vector(4, 2, 5, kDouble());
  const std::string d = t->describe();
  EXPECT_NE(d.find("size=64"), std::string::npos);
  EXPECT_NE(d.find("loop"), std::string::npos);
}

// --- Layout builders ------------------------------------------------------------------

TEST(Layouts, SubmatrixSizes) {
  auto t = core::submatrix_type(100, 50, 128);
  EXPECT_EQ(t->size(), 100 * 50 * 8);
  EXPECT_EQ(t->blocks_per_element(), 50);
}

TEST(Layouts, StairCoversAtLeastTriangle) {
  const std::int64_t n = 64, nb = 16;
  EXPECT_GE(core::stair_triangle_elems(n, nb), core::lower_triangle_elems(n));
  auto t = core::stair_triangular_type(n, n, nb);
  EXPECT_EQ(t->size(), core::stair_triangle_elems(n, nb) * 8);
}

TEST(Layouts, StairWithNbOneIsTriangle) {
  EXPECT_EQ(core::stair_triangle_elems(20, 1),
            core::lower_triangle_elems(20));
}

TEST(Layouts, TransposeTypeSize) {
  auto t = core::transpose_type(16, 16);
  EXPECT_EQ(t->size(), 16 * 16 * 8);
  EXPECT_EQ(t->blocks_per_element(), 256);  // every element its own block
}

TEST(Layouts, UpperTriangularSize) {
  auto t = core::upper_triangular_type(10, 12);
  EXPECT_EQ(t->size(), core::lower_triangle_elems(10) * 8);
}

}  // namespace
}  // namespace gpuddt::mpi

namespace gpuddt::mpi {
namespace {

// --- Envelope / contents introspection ----------------------------------------

TEST(Contents, PrimitiveIsNamed) {
  EXPECT_EQ(kDouble()->combiner(), Combiner::kNamed);
  EXPECT_EQ(kDouble()->describe_tree(), "double");
}

TEST(Contents, VectorRecipeRoundTrips) {
  auto t = Datatype::vector(4, 2, 5, kDouble());
  const TypeContents& tc = t->contents();
  EXPECT_EQ(tc.combiner, Combiner::kVector);
  ASSERT_EQ(tc.integers.size(), 3u);
  EXPECT_EQ(tc.integers[0], 4);
  EXPECT_EQ(tc.integers[1], 2);
  EXPECT_EQ(tc.integers[2], 5);
  ASSERT_EQ(tc.types.size(), 1u);
  // Rebuild from the recipe: identical layout.
  auto rebuilt = Datatype::vector(tc.integers[0], tc.integers[1],
                                  tc.integers[2], tc.types[0]);
  EXPECT_EQ(rebuilt->size(), t->size());
  EXPECT_EQ(rebuilt->extent(), t->extent());
  EXPECT_EQ(rebuilt->signature(), t->signature());
}

TEST(Contents, HindexedKeepsDisplacements) {
  const std::int64_t lens[] = {2, 1};
  const std::int64_t displs[] = {0, 48};
  auto t = Datatype::hindexed(lens, displs, kDouble());
  const TypeContents& tc = t->contents();
  EXPECT_EQ(tc.combiner, Combiner::kHindexed);
  EXPECT_EQ(tc.integers[0], 2);     // count
  EXPECT_EQ(tc.integers[1], 2);     // blocklens...
  EXPECT_EQ(tc.integers[2], 1);
  EXPECT_EQ(tc.addresses[0], 0);    // byte displacements
  EXPECT_EQ(tc.addresses[1], 48);
}

TEST(Contents, StructKeepsFieldTypes) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t displs[] = {0, 8};
  const DatatypePtr types[] = {kInt32(), kDouble()};
  auto t = Datatype::struct_type(lens, displs, types);
  const TypeContents& tc = t->contents();
  EXPECT_EQ(tc.combiner, Combiner::kStruct);
  ASSERT_EQ(tc.types.size(), 2u);
  EXPECT_EQ(tc.types[0]->combiner(), Combiner::kNamed);
  EXPECT_NE(t->describe_tree().find("struct(2 fields"), std::string::npos);
}

TEST(Contents, NestedTreeDescription) {
  auto inner = Datatype::vector(3, 1, 2, kFloat());
  auto outer = Datatype::contiguous(4, inner);
  EXPECT_EQ(outer->describe_tree(), "contiguous(4, vector(3, 1, 2, float))");
}

TEST(Contents, ResizedKeepsBounds) {
  auto t = Datatype::resized(kDouble(), -8, 32);
  EXPECT_EQ(t->combiner(), Combiner::kResized);
  EXPECT_EQ(t->contents().addresses[0], -8);
  EXPECT_EQ(t->contents().addresses[1], 32);
}

TEST(Contents, DarrayRecordsGrid) {
  const std::int64_t gs[] = {16, 16};
  const Datatype::Distrib ds[] = {Datatype::Distrib::kCyclic,
                                  Datatype::Distrib::kCyclic};
  const std::int64_t da[] = {4, 4};
  const std::int64_t ps[] = {2, 2};
  auto t = Datatype::darray(4, 3, gs, ds, da, ps, kDouble(),
                            Datatype::Order::kFortran);
  EXPECT_EQ(t->combiner(), Combiner::kDarray);
  EXPECT_EQ(t->contents().integers[0], 4);  // world
  EXPECT_EQ(t->contents().integers[1], 3);  // rank
  EXPECT_NE(t->describe_tree().find("darray(rank 3/4"), std::string::npos);
}

TEST(Contents, SubarrayRecordsDims) {
  const std::int64_t sizes[] = {10, 8};
  const std::int64_t subsizes[] = {4, 3};
  const std::int64_t starts[] = {2, 1};
  auto t = Datatype::subarray(sizes, subsizes, starts, kDouble(),
                              Datatype::Order::kFortran);
  EXPECT_EQ(t->combiner(), Combiner::kSubarray);
  const auto& ints = t->contents().integers;
  EXPECT_EQ(ints[0], 2);            // ndims
  EXPECT_EQ(ints[1], 10);           // sizes
  EXPECT_EQ(ints[3], 4);            // subsizes
  EXPECT_EQ(ints[5], 2);            // starts
  EXPECT_EQ(ints.back(), 1);        // Fortran order
}

}  // namespace
}  // namespace gpuddt::mpi
