#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <set>

#include "core/dev.h"
#include "core/dev_cache.h"
#include "core/engine.h"
#include "core/kernels.h"
#include "core/layouts.h"
#include "obs/recorder.h"
#include "test_helpers.h"

namespace gpuddt::core {
namespace {

using Dir = GpuDatatypeEngine::Dir;

// --- DevCursor --------------------------------------------------------------------

TEST(DevCursor, SplitsLargeBlocksAtUnitSize) {
  auto t = mpi::Datatype::contiguous(512, mpi::kDouble());  // 4096 B
  auto units = convert_all(t, 1, 1024);
  ASSERT_EQ(units.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(units[i].length, 1024);
    EXPECT_EQ(units[i].nc_disp, static_cast<std::int64_t>(i) * 1024);
    EXPECT_EQ(units[i].pk_disp, static_cast<std::int64_t>(i) * 1024);
  }
}

TEST(DevCursor, ResidueUnitsKeepRemainder) {
  auto t = mpi::Datatype::contiguous(300, mpi::kDouble());  // 2400 B
  auto units = convert_all(t, 1, 1024);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[2].length, 2400 - 2048);
}

TEST(DevCursor, PackedDisplacementsAreDense) {
  auto t = core::lower_triangular_type(32, 32);
  auto units = convert_all(t, 1, 1024);
  std::int64_t pk = 0;
  for (const auto& u : units) {
    EXPECT_EQ(u.pk_disp, pk);
    pk += u.length;
  }
  EXPECT_EQ(pk, t->size());
}

TEST(DevCursor, RejectsSubMinimumUnit) {
  EXPECT_THROW(DevCursor(mpi::kDouble(), 1, 128), std::invalid_argument);
}

TEST(DevCursor, IncrementalMatchesOneShot) {
  auto t = core::lower_triangular_type(40, 48);
  auto whole = convert_all(t, 1, 512);
  DevCursor cur(t, 1, 512);
  std::vector<CudaDevDist> inc;
  CudaDevDist buf[7];
  for (;;) {
    const std::size_t n = cur.next_units(buf);
    if (n == 0) break;
    inc.insert(inc.end(), buf, buf + n);
  }
  ASSERT_EQ(inc.size(), whole.size());
  for (std::size_t i = 0; i < inc.size(); ++i) {
    EXPECT_EQ(inc[i].nc_disp, whole[i].nc_disp);
    EXPECT_EQ(inc[i].pk_disp, whole[i].pk_disp);
    EXPECT_EQ(inc[i].length, whole[i].length);
  }
}

// --- DevCache ---------------------------------------------------------------------

TEST(DevCache, MissThenHit) {
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  DevCache cache;
  auto t = core::lower_triangular_type(16, 16);
  EXPECT_EQ(cache.find(t, 1, 1024), nullptr);
  cache.insert(ctx, t, 1, 1024, convert_all(t, 1, 1024));
  const auto* e = cache.find(t, 1, 1024);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->total_bytes, t->size());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DevCache, KeyIncludesCountAndUnitSize) {
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  DevCache cache;
  auto t = core::lower_triangular_type(16, 16);
  cache.insert(ctx, t, 1, 1024, convert_all(t, 1, 1024));
  EXPECT_EQ(cache.find(t, 2, 1024), nullptr);
  EXPECT_EQ(cache.find(t, 1, 2048), nullptr);
}

TEST(DevCache, DeviceCopyUploadedOncePerDevice) {
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  DevCache cache;
  auto t = core::lower_triangular_type(16, 16);
  const auto* e = cache.insert(ctx, t, 1, 1024, convert_all(t, 1, 1024));
  const auto* d1 = cache.device_units(ctx, *e);
  const vt::Time after_first = ctx.clock.now();
  const auto* d2 = cache.device_units(ctx, *e);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(ctx.clock.now(), after_first);  // second call free
  EXPECT_TRUE(m.device(0).arena().contains(d1));
}

TEST(DevCache, EvictsLeastRecentlyUsed) {
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  DevCache cache(2);
  auto a = core::lower_triangular_type(8, 8);
  auto b = core::lower_triangular_type(9, 9);
  auto c = core::lower_triangular_type(10, 10);
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));
  EXPECT_NE(cache.find(a, 1, 1024), nullptr);  // touch a
  cache.insert(ctx, c, 1, 1024, convert_all(c, 1, 1024));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(b, 1, 1024), nullptr);  // b was the LRU victim
  EXPECT_NE(cache.find(a, 1, 1024), nullptr);
}

TEST(DevCache, CountsEvictionsAndKeepsLruOrder) {
  // After the O(1)-touch refactor (iterators stored in the entry map, hits
  // promoted via splice), the recency order and the eviction counter must
  // both stay exact.
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  DevCache cache(3);
  auto a = core::lower_triangular_type(8, 8);
  auto b = core::lower_triangular_type(9, 9);
  auto c = core::lower_triangular_type(10, 10);
  auto d = core::lower_triangular_type(11, 11);
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));
  cache.insert(ctx, c, 1, 1024, convert_all(c, 1, 1024));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.lru_shape_digests(),
            (std::vector<std::uint64_t>{c->shape_digest(), b->shape_digest(),
                                        a->shape_digest()}));
  EXPECT_NE(cache.find(a, 1, 1024), nullptr);  // promote a
  EXPECT_NE(cache.find(b, 1, 1024), nullptr);  // promote b
  EXPECT_EQ(cache.lru_shape_digests(),
            (std::vector<std::uint64_t>{b->shape_digest(), a->shape_digest(),
                                        c->shape_digest()}));
  cache.insert(ctx, d, 1, 1024, convert_all(d, 1, 1024));  // evicts c
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(c, 1, 1024), nullptr);
  EXPECT_EQ(cache.lru_shape_digests(),
            (std::vector<std::uint64_t>{d->shape_digest(), b->shape_digest(),
                                        a->shape_digest()}));
  // Re-inserting an existing key only touches it; nothing is evicted.
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lru_shape_digests(),
            (std::vector<std::uint64_t>{b->shape_digest(), d->shape_digest(),
                                        a->shape_digest()}));
}

TEST(DevCache, ByteBoundEvictsUnderEntryBudget) {
  // Two 4-unit entries fit the entry budget comfortably but overflow a
  // 6-descriptor byte bound: the LRU one must go even though
  // max_entries would have kept both.
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  const std::int64_t d = sizeof(CudaDevDist);
  DevCache cache(64, 6 * d);
  auto a = mpi::Datatype::contiguous(512, mpi::kDouble());  // 4096 B -> 4 units
  auto b = mpi::Datatype::contiguous(513, mpi::kDouble());  // 4104 B -> 5 units
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  EXPECT_EQ(cache.bytes(), 4 * d);
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(a, 1, 1024), nullptr);  // a was the byte-bound victim
  EXPECT_NE(cache.find(b, 1, 1024), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.evictions_bytes(), 4 * d);
  EXPECT_EQ(cache.bytes(), 5 * d);
}

TEST(DevCache, ByteBoundKeepsOversizedNewestEntry) {
  // A single entry larger than max_bytes stays resident - evicting the
  // entry that was just inserted would make every insert a no-op.
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  const std::int64_t d = sizeof(CudaDevDist);
  DevCache cache(64, 2 * d);
  auto a = mpi::Datatype::contiguous(512, mpi::kDouble());  // 4 units > bound
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_NE(cache.find(a, 1, 1024), nullptr);
}

TEST(DevCache, ExportsByteCounters) {
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  obs::Recorder rec;
  const std::int64_t d = sizeof(CudaDevDist);
  DevCache cache(64, 6 * d);
  cache.set_recorder(&rec);
  auto a = mpi::Datatype::contiguous(512, mpi::kDouble());
  auto b = mpi::Datatype::contiguous(513, mpi::kDouble());
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));  // evicts a
  auto counters = rec.metrics().counters_snapshot();
  EXPECT_EQ(counters.at("dev_cache.bytes"), cache.bytes());
  EXPECT_EQ(counters.at("dev_cache.evictions_bytes"), 4 * d);
  cache.clear(ctx);
  counters = rec.metrics().counters_snapshot();
  EXPECT_EQ(counters.at("dev_cache.bytes"), 0);
}

TEST(DevCache, KeyHashMixesAllFields) {
  // Regression: the previous `h * prime ^ hash(field)` mixing collapsed
  // for common small-integer fields (the xor of a near-identity
  // std::hash lands in the low bits the multiply just vacated). Proper
  // FNV-1a over all key bytes must give distinct hashes across a dense
  // grid of realistic small keys.
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (std::uint64_t shape = 1; shape <= 16; ++shape) {
    for (std::int64_t count = 1; count <= 16; ++count) {
      for (std::int64_t unit : {256, 512, 1024, 2048, 4096}) {
        seen.insert(DevCache::key_hash(shape, count, unit));
        ++n;
      }
    }
  }
  EXPECT_EQ(seen.size(), n);
  // Field transposition must not collide either.
  EXPECT_NE(DevCache::key_hash(1, 2, 1024), DevCache::key_hash(2, 1, 1024));
}

TEST(DevCache, ReinsertChargesByteDelta) {
  // Re-inserting an existing key with a different program size must
  // charge the byte delta, not double-count the entry (and must free the
  // stale device copies).
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  obs::Recorder rec;
  const std::int64_t d = sizeof(CudaDevDist);
  DevCache cache;
  cache.set_recorder(&rec);
  auto a = core::lower_triangular_type(16, 16);
  const auto* e = cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  const auto n0 = static_cast<std::int64_t>(e->units.size());
  EXPECT_EQ(cache.bytes(), n0 * d);
  cache.device_units(ctx, *e);  // upload, so the replace must free it
  // Same key, different program: a hand-built list of a different size.
  std::vector<CudaDevDist> other(static_cast<std::size_t>(n0) + 3);
  std::int64_t pk = 0;
  for (auto& u : other) {
    u = {pk, pk, 8};
    pk += 8;
  }
  cache.insert(ctx, a, 1, 1024, std::move(other));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), (n0 + 3) * d);  // delta charged, no double count
  const auto counters = rec.metrics().counters_snapshot();
  EXPECT_EQ(counters.at("dev_cache.bytes"), cache.bytes());
  EXPECT_EQ(cache.evictions(), 0u);
  // And an identical re-insert (the coalesce path) changes nothing.
  const auto* e2 = cache.find(a, 1, 1024);
  ASSERT_NE(e2, nullptr);
  auto same = e2->units;
  cache.insert(ctx, a, 1, 1024, std::move(same));
  EXPECT_EQ(cache.bytes(), (n0 + 3) * d);
}

TEST(DevCache, ShapeDedupAcrossInstances) {
  // Two structurally identical types built independently share one
  // entry; the second find/insert is counted as shape-dedup traffic.
  sg::Machine m;
  sg::HostContext ctx(m, 0);
  obs::Recorder rec;
  DevCache cache;
  cache.set_recorder(&rec);
  auto a = core::lower_triangular_type(16, 16);
  auto b = core::lower_triangular_type(16, 16);  // fresh instance
  ASSERT_NE(a->type_id(), b->type_id());
  ASSERT_EQ(a->shape_digest(), b->shape_digest());
  cache.insert(ctx, a, 1, 1024, convert_all(a, 1, 1024));
  EXPECT_NE(cache.find(b, 1, 1024), nullptr);  // hit, not a second entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.shape_dedup_hits(), 1u);
  cache.insert(ctx, b, 1, 1024, convert_all(b, 1, 1024));  // coalesced
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.shape_dedup_coalesced(), 1u);
  EXPECT_GT(cache.shape_dedup_bytes_saved(), 0);
  const auto counters = rec.metrics().counters_snapshot();
  EXPECT_EQ(counters.at("dev_cache.shape_dedup.hits"), 1);
  EXPECT_EQ(counters.at("dev_cache.shape_dedup.inserts_coalesced"), 1);
}

// --- Kernels: functional + profile shape -----------------------------------------------

class KernelTest : public ::testing::Test {
 protected:
  sg::Machine m{test::machine_config(2)};
  sg::HostContext ctx{m, 0};
  sg::Stream stream{&m.device(0)};
};

TEST_F(KernelTest, VectorPackGathersCorrectBytes) {
  const std::int64_t rows = 16, cols = 8, ld = 32;
  auto dt = core::submatrix_type(rows, cols, ld);
  const std::int64_t span = ld * cols * 8;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  test::fill_pattern(src, static_cast<std::size_t>(span), 5);
  const auto pat = *dt->regular_pattern(1);
  pack_vector_kernel(ctx, stream, src, pat, 0, dt->size(), dst, 15);
  const auto ref = test::reference_pack(dt, 1, src);
  EXPECT_EQ(std::memcmp(dst, ref.data(), ref.size()), 0);
}

TEST_F(KernelTest, VectorPackSubRange) {
  auto dt = core::submatrix_type(16, 8, 32);
  const std::int64_t span = 32 * 8 * 8;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  test::fill_pattern(src, static_cast<std::size_t>(span), 6);
  const auto pat = *dt->regular_pattern(1);
  // Pack in three uneven pieces.
  const std::int64_t cuts[] = {0, 100, 500, dt->size()};
  for (int i = 0; i < 3; ++i)
    pack_vector_kernel(ctx, stream, src, pat, cuts[i], cuts[i + 1],
                       dst + cuts[i], 15);
  const auto ref = test::reference_pack(dt, 1, src);
  EXPECT_EQ(std::memcmp(dst, ref.data(), ref.size()), 0);
}

TEST_F(KernelTest, VectorUnpackInvertsPack) {
  auto dt = core::submatrix_type(12, 5, 20);
  const std::int64_t span = 20 * 5 * 8;
  auto* orig = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto* back = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(orig, static_cast<std::size_t>(span), 7);
  std::memset(back, 0, static_cast<std::size_t>(span));
  const auto pat = *dt->regular_pattern(1);
  pack_vector_kernel(ctx, stream, orig, pat, 0, dt->size(), packed, 15);
  unpack_vector_kernel(ctx, stream, back, pat, 0, dt->size(), packed, 15);
  const auto a = test::reference_pack(dt, 1, orig);
  const auto b = test::reference_pack(dt, 1, back);
  EXPECT_EQ(a, b);
}

TEST_F(KernelTest, DevPackMatchesCpuReference) {
  auto dt = core::lower_triangular_type(48, 64);
  const std::int64_t span = 64 * 48 * 8;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  test::fill_pattern(src, static_cast<std::size_t>(span), 8);
  auto units = convert_all(dt, 1, 1024);
  pack_dev_kernel(ctx, stream, src, units, 0, dst, nullptr, 15);
  const auto ref = test::reference_pack(dt, 1, src);
  EXPECT_EQ(std::memcmp(dst, ref.data(), ref.size()), 0);
}

TEST_F(KernelTest, DevUnpackInvertsPack) {
  auto dt = core::lower_triangular_type(32, 40);
  const std::int64_t span = 40 * 32 * 8;
  auto* orig = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto* back = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(orig, static_cast<std::size_t>(span), 9);
  std::memset(back, 0, static_cast<std::size_t>(span));
  auto units = convert_all(dt, 1, 512);
  pack_dev_kernel(ctx, stream, orig, units, 0, packed, nullptr, 15);
  unpack_dev_kernel(ctx, stream, back, units, 0, packed, nullptr, 15);
  EXPECT_EQ(test::reference_pack(dt, 1, orig),
            test::reference_pack(dt, 1, back));
}

TEST_F(KernelTest, AlignedVectorNearsMemcpyBandwidth) {
  // Large aligned vector: kernel duration within ~15% of a d2d memcpy
  // (the paper's Figure 6 shows ~94% of the copy-engine peak).
  const std::int64_t rows = 3968, cols = 2048, ld = 4096;  // 31KB columns
  auto dt = core::submatrix_type(rows, cols, ld);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, ld * cols * 8));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  const auto pat = *dt->regular_pattern(1);
  const vt::Time start = ctx.clock.now();
  const vt::Time fin =
      pack_vector_kernel(ctx, stream, src, pat, 0, dt->size(), dst, 64);
  const vt::Time kernel = fin - start;
  const vt::Time memcpy_time = ctx.cost().d2d_copy_ns(dt->size());
  EXPECT_LT(static_cast<double>(kernel),
            1.15 * static_cast<double>(memcpy_time));
  EXPECT_GT(static_cast<double>(kernel),
            1.01 * static_cast<double>(memcpy_time));
}

TEST_F(KernelTest, MisalignedUnitsCostMoreTransactions) {
  // Same payload; one unit set aligned to 128B, one drifting by 8B.
  std::vector<CudaDevDist> aligned, drifting;
  for (int i = 0; i < 64; ++i) {
    aligned.push_back({i * 1024, i * 1024, 1024});
    drifting.push_back({i * 1032, i * 1024, 1024});
  }
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 1 << 20));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, 1 << 20));
  auto* dst2 = static_cast<std::byte*>(sg::Malloc(ctx, 1 << 20));
  sg::Stream s1(&m.device(0)), s2(&m.device(0));
  const vt::Time f1 = pack_dev_kernel(ctx, s1, src, aligned, 0, dst, nullptr, 15);
  const vt::Time base1 = s1.tail();
  const vt::Time f2 =
      pack_dev_kernel(ctx, s2, src, drifting, 0, dst2, nullptr, 15);
  (void)base1;
  // Durations: compare net-of-queue times via fresh streams.
  EXPECT_GT(f2 - f1, 0);
}

TEST_F(KernelTest, ZeroCopyPackChargesPcie) {
  auto dt = core::submatrix_type(64, 16, 128);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 128 * 16 * 8));
  auto* host = static_cast<std::byte*>(sg::HostAlloc(ctx, dt->size(), true));
  const auto pat = *dt->regular_pattern(1);
  pack_vector_kernel(ctx, stream, src, pat, 0, dt->size(), host, 15);
  EXPECT_GT(m.device(0).pcie().total_busy(), 0);
  // Functional result still correct.
  const auto ref = test::reference_pack(dt, 1, src);
  EXPECT_EQ(std::memcmp(host, ref.data(), ref.size()), 0);
}

// --- Engine -----------------------------------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  sg::Machine m{test::machine_config(2)};
  sg::HostContext ctx{m, 0};
};

void run_roundtrip(sg::HostContext& ctx, GpuDatatypeEngine& eng,
                   const mpi::DatatypePtr& dt, std::int64_t count,
                   std::int64_t frag_bytes) {
  const std::int64_t total = dt->size() * count;
  const std::int64_t span = test::span_bytes(dt, count);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, total + 1));
  auto* back = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(src, static_cast<std::size_t>(span), 11);
  std::memset(back, 0, static_cast<std::size_t>(span));
  std::byte* src_base = src - dt->true_lb();
  std::byte* back_base = back - dt->true_lb();

  auto pack = eng.start(Dir::kPack, dt, count, src_base);
  while (!pack->done()) {
    const auto r =
        eng.process_some(*pack, packed + pack->bytes_done(), frag_bytes);
    ASSERT_EQ(r.bytes, std::min(frag_bytes, total - (pack->bytes_done() -
                                                     r.bytes)));
    if (r.bytes == 0) break;
  }
  eng.finish(*pack);
  const auto ref = test::reference_pack(dt, count, src_base);
  ASSERT_EQ(std::memcmp(packed, ref.data(), ref.size()), 0)
      << dt->describe();

  auto unpack = eng.start(Dir::kUnpack, dt, count, back_base);
  while (!unpack->done()) {
    const auto r =
        eng.process_some(*unpack, packed + unpack->bytes_done(), frag_bytes);
    if (r.bytes == 0) break;
  }
  eng.finish(*unpack);
  EXPECT_EQ(test::reference_pack(dt, count, back_base), ref)
      << dt->describe();
  sg::Free(ctx, src);
  sg::Free(ctx, packed);
  sg::Free(ctx, back);
}

TEST_F(EngineTest, VectorFastPathRoundTrip) {
  GpuDatatypeEngine eng(ctx);
  auto dt = core::submatrix_type(64, 32, 100);
  auto op = eng.start(Dir::kPack, dt, 1, nullptr);
  EXPECT_TRUE(op->on_vector_path());
  run_roundtrip(ctx, eng, dt, 1, 8192);
}

TEST_F(EngineTest, TriangularDevPathRoundTrip) {
  GpuDatatypeEngine eng(ctx);
  run_roundtrip(ctx, eng, core::lower_triangular_type(64, 80), 1, 8192);
}

TEST_F(EngineTest, TransposeTypeRoundTrip) {
  GpuDatatypeEngine eng(ctx);
  run_roundtrip(ctx, eng, core::transpose_type(24, 24), 1, 4096);
}

TEST_F(EngineTest, OddFragmentBoundariesSplitUnits) {
  GpuDatatypeEngine eng(ctx);
  // Fragment size deliberately not a multiple of the unit size.
  run_roundtrip(ctx, eng, core::lower_triangular_type(48, 48), 1, 1000);
}

TEST_F(EngineTest, MultiCountRoundTrip) {
  GpuDatatypeEngine eng(ctx);
  run_roundtrip(ctx, eng, core::submatrix_type(16, 4, 24), 5, 2048);
}

TEST_F(EngineTest, RandomTypesRoundTrip) {
  GpuDatatypeEngine eng(ctx);
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    auto dt = test::random_datatype(rng);
    if (dt->size() == 0) continue;
    run_roundtrip(ctx, eng, dt, 1 + trial % 3, 512 + 256 * (trial % 5));
  }
}

TEST_F(EngineTest, SecondPackHitsCache) {
  GpuDatatypeEngine eng(ctx);
  auto dt = core::lower_triangular_type(64, 64);
  run_roundtrip(ctx, eng, dt, 1, 8192);
  EXPECT_GE(eng.cache().size(), 1u);
  auto op = eng.start(Dir::kPack, dt, 1, nullptr);
  EXPECT_TRUE(op->used_cache());
}

TEST_F(EngineTest, CachedUnitsCountedAcrossWindows) {
  // Regression for the units_from_cache accounting: the counter used to be
  // bumped once per process_some call, after the window loop, from the
  // contents of the last ws_ window. It must equal the total number of
  // window entries served from the cache - including units split across
  // budget boundaries, which legitimately count once per window they
  // appear in.
  GpuDatatypeEngine eng(ctx);
  auto dt = core::lower_triangular_type(64, 64);
  run_roundtrip(ctx, eng, dt, 1, 8192);  // fills the cache
  ASSERT_GE(eng.cache().size(), 1u);

  // Replay the budget-trimming walk on the host units to get the exact
  // expected per-window entry count.
  const auto units = convert_all(dt, 1, 1024);
  const std::int64_t frag = 1000;  // odd: forces unit splits
  std::int64_t expected = 0, windows = 0;
  std::size_t pos = 0;
  std::int64_t off = 0;
  while (pos < units.size()) {
    std::int64_t budget = frag;
    ++windows;
    while (pos < units.size() && budget > 0) {
      const std::int64_t take = std::min(units[pos].length - off, budget);
      ++expected;
      budget -= take;
      off += take;
      if (off == units[pos].length) {
        off = 0;
        ++pos;
      }
    }
  }
  ASSERT_GT(windows, 1);

  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 64 * 64 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  const std::int64_t before = eng.stats().units_from_cache;
  auto op = eng.start(Dir::kPack, dt, 1, src);
  ASSERT_TRUE(op->used_cache());
  while (!op->done()) {
    const auto r = eng.process_some(*op, packed + op->bytes_done(), frag);
    if (r.bytes == 0) break;
  }
  eng.finish(*op);
  EXPECT_EQ(eng.stats().units_from_cache - before, expected);
}

TEST_F(EngineTest, CacheDisabledNeverCaches) {
  EngineConfig cfg;
  cfg.cache_enabled = false;
  GpuDatatypeEngine eng(ctx, cfg);
  auto dt = core::lower_triangular_type(32, 32);
  run_roundtrip(ctx, eng, dt, 1, 8192);
  EXPECT_EQ(eng.cache().size(), 0u);
}

TEST_F(EngineTest, CachedPackIsFasterThanFirstPack) {
  GpuDatatypeEngine eng(ctx);
  auto dt = core::lower_triangular_type(256, 256);
  const std::int64_t total = dt->size();
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 256 * 256 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, total));

  auto time_pack = [&]() {
    const vt::Time t0 = ctx.clock.now();
    auto op = eng.start(Dir::kPack, dt, 1, src);
    vt::Time last = t0;
    while (!op->done()) {
      const auto r = eng.process_some(*op, packed + op->bytes_done(), total);
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*op);
    ctx.clock.wait_until(last);
    return ctx.clock.now() - t0;
  };
  const vt::Time first = time_pack();
  const vt::Time second = time_pack();
  EXPECT_LT(second, first);
}

TEST_F(EngineTest, PipelinedConversionBeatsSequential) {
  auto dt = core::lower_triangular_type(512, 512);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 512 * 512 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));

  auto run_with = [&](bool pipelined) {
    EngineConfig cfg;
    cfg.cache_enabled = false;
    cfg.pipeline_conversion = pipelined;
    sg::HostContext local(m, 0);
    GpuDatatypeEngine eng(local, cfg);
    const vt::Time t0 = local.clock.now();
    auto op = eng.start(Dir::kPack, dt, 1, src);
    vt::Time last = t0;
    while (!op->done()) {
      const auto r =
          eng.process_some(*op, packed + op->bytes_done(), dt->size());
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*op);
    local.clock.wait_until(last);
    return local.clock.now() - t0;
  };
  const vt::Time sequential = run_with(false);
  m.reset_timing();
  const vt::Time pipelined = run_with(true);
  EXPECT_LT(static_cast<double>(pipelined),
            0.80 * static_cast<double>(sequential));
}

TEST_F(EngineTest, DependencyDelaysKernel) {
  GpuDatatypeEngine eng(ctx);
  auto dt = core::submatrix_type(16, 4, 32);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 32 * 4 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto op = eng.start(Dir::kPack, dt, 1, src);
  const vt::Time dep = ctx.clock.now() + vt::msec(5);
  const auto r = eng.process_some(*op, packed, dt->size(), dep);
  EXPECT_GE(r.ready, dep);
}

TEST_F(EngineTest, ResidueStreamVariantIsCorrect) {
  EngineConfig cfg;
  cfg.residue_separate_stream = true;
  GpuDatatypeEngine eng(ctx, cfg);
  // Triangular columns produce plenty of residue units.
  run_roundtrip(ctx, eng, core::lower_triangular_type(96, 120), 1, 8192);
  run_roundtrip(ctx, eng, core::transpose_type(24, 24), 1, 4096);
}

TEST_F(EngineTest, ResidueSplitMatchesSingleStreamByteForByte) {
  // The residue-stream variant partitions each window into full units and
  // residues before launching; the packed stream must nevertheless be
  // byte-identical to the single-stream path, cold and cached alike.
  auto dt = core::lower_triangular_type(96, 120);
  const std::int64_t span = test::span_bytes(dt, 1);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  test::fill_pattern(src, static_cast<std::size_t>(span), 21);
  std::byte* base = src - dt->true_lb();

  auto* out_plain = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto* out_split = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto pack_with = [&](GpuDatatypeEngine& eng, std::byte* out,
                       std::int64_t frag) {
    std::memset(out, 0, static_cast<std::size_t>(dt->size()));
    auto op = eng.start(Dir::kPack, dt, 1, base);
    while (!op->done()) {
      const auto r = eng.process_some(*op, out + op->bytes_done(), frag);
      if (r.bytes == 0) break;
    }
    eng.finish(*op);
  };

  EngineConfig plain_cfg;
  EngineConfig split_cfg;
  split_cfg.residue_separate_stream = true;
  GpuDatatypeEngine plain(ctx, plain_cfg);
  GpuDatatypeEngine split(ctx, split_cfg);
  // Cold pass (converting) and cached pass, with an odd fragment size so
  // windows end mid-unit.
  for (const std::int64_t frag : {std::int64_t{3000}, std::int64_t{3000},
                                  dt->size()}) {
    pack_with(plain, out_plain, frag);
    pack_with(split, out_split, frag);
    EXPECT_EQ(std::memcmp(out_plain, out_split,
                          static_cast<std::size_t>(dt->size())),
              0);
  }
}

TEST_F(EngineTest, ResidueSplitUploadsSplitOrderedDescriptors) {
  // Regression: the residue-stream path used to hand both launches a
  // device descriptor array laid out in ws_ order (or, when cached, the
  // cache's original-geometry array), while the host spans were reordered
  // full-first - so device-side descriptor indices no longer matched the
  // host span. The fix uploads the split-ordered descriptors, which is
  // observable as descriptor-upload traffic even on the cached path
  // (previously zero).
  obs::Recorder rec;
  EngineConfig cfg;
  cfg.residue_separate_stream = true;
  cfg.recorder = &rec;
  GpuDatatypeEngine eng(ctx, cfg);
  auto dt = core::lower_triangular_type(64, 64);
  run_roundtrip(ctx, eng, dt, 1, 8192);  // fills the cache
  ASSERT_GE(eng.cache().size(), 1u);

  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 64 * 64 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  const std::int64_t uploads_before =
      rec.metrics().counter("engine.desc_uploads").value();
  auto op = eng.start(Dir::kPack, dt, 1, src);
  ASSERT_TRUE(op->used_cache());
  while (!op->done()) {
    const auto r = eng.process_some(*op, packed + op->bytes_done(), 4096);
    if (r.bytes == 0) break;
  }
  eng.finish(*op);
  EXPECT_GT(rec.metrics().counter("engine.desc_uploads").value(),
            uploads_before);
}

TEST_F(EngineTest, ResidueStreamCostsExtraLaunches) {
  // The paper treats residues like full units "to launch a single kernel
  // and therefore minimize launching overhead"; the alternative must
  // measure slower on residue-heavy types.
  auto dt = core::lower_triangular_type(512, 512);
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, 512 * 512 * 8));
  auto* packed = static_cast<std::byte*>(sg::Malloc(ctx, dt->size()));
  auto time_with = [&](bool residue_stream) {
    EngineConfig cfg;
    cfg.cache_enabled = false;
    cfg.residue_separate_stream = residue_stream;
    sg::HostContext local(m, 0);
    GpuDatatypeEngine eng(local, cfg);
    const vt::Time t0 = local.clock.now();
    auto op = eng.start(Dir::kPack, dt, 1, src);
    vt::Time last = t0;
    while (!op->done()) {
      const auto r =
          eng.process_some(*op, packed + op->bytes_done(), dt->size());
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*op);
    local.clock.wait_until(last);
    return local.clock.now() - t0;
  };
  const vt::Time equal_treatment = time_with(false);
  m.reset_timing();
  const vt::Time separate = time_with(true);
  EXPECT_GT(separate, equal_treatment);
}

TEST_F(EngineTest, ZeroSizeOpCompletesImmediately) {
  GpuDatatypeEngine eng(ctx);
  auto dt = mpi::Datatype::contiguous(0, mpi::kDouble());
  auto op = eng.start(Dir::kPack, dt, 4, nullptr);
  EXPECT_TRUE(op->done());
  const auto r = eng.process_some(*op, nullptr, 100);
  EXPECT_EQ(r.bytes, 0);
}

}  // namespace
}  // namespace gpuddt::core

namespace gpuddt::core {
namespace {

TEST(Prefetch, WarmsCacheBeforeFirstPack) {
  sg::Machine m{test::machine_config(1, 128u << 20)};
  sg::HostContext ctx(m, 0);
  GpuDatatypeEngine eng(ctx);
  auto dt = core::lower_triangular_type(64, 64);
  eng.prefetch(dt, 1);
  EXPECT_EQ(eng.cache().size(), 1u);
  auto op = eng.start(GpuDatatypeEngine::Dir::kPack, dt, 1, nullptr);
  EXPECT_TRUE(op->used_cache());
}

TEST(Prefetch, ChargesConversionTime) {
  sg::Machine m{test::machine_config(1, 128u << 20)};
  sg::HostContext ctx(m, 0);
  GpuDatatypeEngine eng(ctx);
  auto dt = core::lower_triangular_type(256, 256);
  const vt::Time t0 = ctx.clock.now();
  eng.prefetch(dt, 1);
  EXPECT_GT(ctx.clock.now(), t0);
  // Idempotent and free the second time.
  const vt::Time t1 = ctx.clock.now();
  eng.prefetch(dt, 1);
  EXPECT_EQ(ctx.clock.now(), t1);
}

TEST(Prefetch, ChargesWalkPerPieceVisited) {
  // Regression: prefetch used to charge cpu_block_walk_ns per emitted
  // *unit* instead of per datatype piece visited, overstating the host
  // conversion cost whenever long contiguous pieces split into several
  // units (the convert_chunk path has always charged per piece).
  auto dt = core::lower_triangular_type(512, 512);
  DevCursor ref(dt, 1, 1024);
  std::size_t units_n = 0;
  CudaDevDist buf[256];
  for (;;) {
    const std::size_t n = ref.next_units(buf);
    if (n == 0) break;
    units_n += n;
  }
  const std::int64_t pieces = ref.pieces_visited();
  // Long triangular rows split at the 1KB unit size, so there are more
  // units than pieces - the configuration where the two formulas differ.
  ASSERT_GT(static_cast<std::int64_t>(units_n), pieces);

  // The device upload that prefetch also performs, measured on its own
  // machine so PCIe accounting cannot bleed between the measurements.
  vt::Time upload = 0;
  {
    sg::Machine m{test::machine_config(1, 128u << 20)};
    sg::HostContext ctx(m, 0);
    DevCache cache;
    const auto* e = cache.insert(ctx, dt, 1, 1024, convert_all(dt, 1, 1024));
    const vt::Time t0 = ctx.clock.now();
    cache.device_units(ctx, *e);
    upload = ctx.clock.now() - t0;
  }

  sg::Machine m{test::machine_config(1, 128u << 20)};
  sg::HostContext ctx(m, 0);
  GpuDatatypeEngine eng(ctx);
  const sg::CostModel& cm = ctx.cost();
  const vt::Time t0 = ctx.clock.now();
  eng.prefetch(dt, 1);
  const vt::Time elapsed = ctx.clock.now() - t0;

  const auto conv = static_cast<vt::Time>(
      cm.cpu_dev_emit_ns * static_cast<double>(units_n) +
      cm.cpu_block_walk_ns * static_cast<double>(pieces));
  const auto old_formula = static_cast<vt::Time>(
      cm.cpu_dev_emit_ns * static_cast<double>(units_n) +
      cm.cpu_block_walk_ns * static_cast<double>(units_n));
  ASSERT_NE(conv, old_formula);  // the fix is observable on this type
  EXPECT_EQ(elapsed, conv + upload);
}

TEST(Prefetch, SkipsVectorFastPath) {
  sg::Machine m{test::machine_config(1, 128u << 20)};
  sg::HostContext ctx(m, 0);
  GpuDatatypeEngine eng(ctx);
  eng.prefetch(core::submatrix_type(64, 16, 96), 1);
  EXPECT_EQ(eng.cache().size(), 0u);
}

}  // namespace
}  // namespace gpuddt::core
