// OpenSHMEM-style one-sided layer: symmetric heap semantics, put/get,
// strided transfers, datatype put/get via the GPU engine, and quiet()
// ordering in virtual time.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/config.h"
#include "core/layouts.h"
#include "mpi/runtime.h"
#include "shmem/shmem.h"
#include "test_helpers.h"

namespace gpuddt::shmem {
namespace {

mpi::RuntimeConfig pe_world(int n) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = n;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  return cfg;
}

TEST(Shmem, SymmetricAddressesTranslate) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 1 << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* a = static_cast<double*>(pe.malloc(1024));
    auto* b = static_cast<double*>(pe.malloc(2048));
    // Same offsets on every PE.
    EXPECT_EQ(reinterpret_cast<std::byte*>(a) - heap.base(p.rank()), 0);
    EXPECT_EQ(reinterpret_cast<std::byte*>(b) - heap.base(p.rank()), 1024);
  });
}

TEST(Shmem, PutDeliversBytes) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 1 << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* buf = static_cast<std::int32_t*>(pe.malloc(4096));
    for (int i = 0; i < 1024; ++i) buf[i] = p.rank() == 0 ? i : -1;
    pe.barrier_all();
    if (p.rank() == 0) pe.putmem(buf, buf, 4096, 1);
    pe.barrier_all();
    if (p.rank() == 1) {
      for (int i = 0; i < 1024; ++i) EXPECT_EQ(buf[i], i);
    }
  });
}

TEST(Shmem, GetPullsRemoteBytes) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 1 << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* buf = static_cast<std::byte*>(pe.malloc(8192));
    test::fill_pattern(buf, 8192, p.rank() + 40);
    pe.barrier_all();
    if (p.rank() == 1) {
      std::vector<std::byte> local(8192);
      pe.getmem(local.data(), buf, 8192, 0);
      std::vector<std::byte> expect(8192);
      test::fill_pattern(expect.data(), 8192, 40);
      EXPECT_EQ(std::memcmp(local.data(), expect.data(), 8192), 0);
    }
    pe.barrier_all();
  });
}

TEST(Shmem, StridedIputIget) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 1 << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* buf = static_cast<double*>(pe.malloc(64 * 8));
    for (int i = 0; i < 64; ++i) buf[i] = p.rank() * 100.0 + i;
    pe.barrier_all();
    if (p.rank() == 0) {
      // Scatter every element to every 2nd slot on PE 1.
      double local[16];
      for (int i = 0; i < 16; ++i) local[i] = 1000.0 + i;
      pe.iput(buf, local, /*dst stride=*/2, /*src stride=*/1, 16,
              sizeof(double), 1);
    }
    pe.barrier_all();
    if (p.rank() == 1) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(buf[2 * i], 1000.0 + i);
        if (2 * i + 1 < 64) {
          EXPECT_EQ(buf[2 * i + 1], 100.0 + (2 * i + 1));  // untouched
        }
      }
      // Pull back strided.
      double pulled[8];
      pe.iget(pulled, buf, 1, 4, 8, sizeof(double), 0);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(pulled[i], 4.0 * i);
    }
    pe.barrier_all();
  });
}

TEST(Shmem, DatatypePutMovesTriangle) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 8u << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    const std::int64_t n = 64;
    auto dt = core::lower_triangular_type(n, n);
    auto* mat = static_cast<std::byte*>(
        pe.malloc(static_cast<std::size_t>(n * n * 8)));
    if (p.rank() == 0) {
      test::fill_pattern(mat, static_cast<std::size_t>(n * n * 8), 31);
    } else {
      std::memset(mat, 0, static_cast<std::size_t>(n * n * 8));
    }
    pe.barrier_all();
    if (p.rank() == 0) pe.put_datatype(mat, mat, dt, 1, 1);
    pe.barrier_all();
    if (p.rank() == 1) {
      std::vector<std::byte> expect(static_cast<std::size_t>(n * n * 8));
      test::fill_pattern(expect.data(), expect.size(), 31);
      EXPECT_EQ(test::reference_pack(dt, 1, mat),
                test::reference_pack(dt, 1, expect.data()));
      // Off-triangle stays zero.
      const auto* d = reinterpret_cast<const double*>(mat);
      EXPECT_EQ(d[1 * n + 0], 0.0);  // A(0,1): strictly upper
    }
    pe.barrier_all();
  });
}

TEST(Shmem, DatatypeGetPullsVector) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 8u << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    const std::int64_t rows = 48, cols = 16, ld = 64;
    auto dt = core::submatrix_type(rows, cols, ld);
    auto* mat = static_cast<std::byte*>(
        pe.malloc(static_cast<std::size_t>(ld * cols * 8)));
    test::fill_pattern(mat, static_cast<std::size_t>(ld * cols * 8),
                       p.rank() + 7);
    pe.barrier_all();
    if (p.rank() == 1) {
      std::vector<std::byte> local(static_cast<std::size_t>(ld * cols * 8),
                                   std::byte{0});
      pe.get_datatype(local.data(), mat, dt, 1, 0);
      std::vector<std::byte> expect(static_cast<std::size_t>(ld * cols * 8));
      test::fill_pattern(expect.data(), expect.size(), 7);
      EXPECT_EQ(test::reference_pack(dt, 1, local.data()),
                test::reference_pack(dt, 1, expect.data()));
    }
    pe.barrier_all();
  });
}

TEST(Shmem, QuietAdvancesClockPastNbiOps) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 32u << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* buf = static_cast<std::byte*>(pe.malloc(16u << 20));
    pe.barrier_all();
    if (p.rank() == 0) {
      const vt::Time t0 = p.clock().now();
      pe.putmem_nbi(buf, buf, 16u << 20, 1);
      const vt::Time after_post = p.clock().now();
      pe.quiet();
      const vt::Time after_quiet = p.clock().now();
      // Posting is cheap; quiet absorbs the transfer time (16MB peer).
      EXPECT_LT(after_post - t0, vt::msec(1));
      EXPECT_GT(after_quiet - t0, vt::msec(1));
    }
    pe.barrier_all();
  });
}

TEST(Shmem, SeededConcurrentPutsAreFlaggedByChecker) {
  // Two PEs push into the SAME symmetric range on a third PE with no
  // ordering between them - a WAW the OpenSHMEM memory model leaves to
  // the programmer. The layer routes through checked BTL RDMA, so the
  // access checker must flag it (previously the SHMEM layer had no
  // seeded-hazard coverage of its own).
  //
  // There is deliberately no barrier after the puts: a trailing barrier's
  // messages carry post-put timestamps, and draining one before the
  // second put would order the writers in virtual time (a legitimate
  // happens-before edge - the checker is right to stay silent then).
  // quiet() only advances the local clock, so without closing traffic the
  // two transfer windows stay truly concurrent.
  mpi::RuntimeConfig cfg = pe_world(3);
  cfg.machine.check = 1;
  mpi::Runtime rt(cfg);
  SymmetricHeap heap(rt, 32u << 20);
  const std::int64_t hazards0 = check::hazard_count();
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    const std::size_t bytes = 16u << 20;
    auto* buf = static_cast<std::byte*>(pe.malloc(bytes));
    pe.barrier_all();
    // PEs 1 and 2 write PE 0's whole buffer concurrently; PE 2 shares the
    // target's device (copy engine), PE 1 crosses PCI-E, so the two
    // transfers' virtual windows overlap (16MB dwarfs any barrier skew).
    if (p.rank() == 1 || p.rank() == 2) {
      pe.putmem_nbi(buf, buf, bytes, 0);
      pe.quiet();
    }
  });
  EXPECT_GE(check::hazard_count() - hazards0, 1);
}

TEST(Shmem, OrderedPutsRunClean) {
  // The same traffic with a barrier between the two puts is ordered in
  // virtual time and must NOT be flagged.
  mpi::RuntimeConfig cfg = pe_world(3);
  cfg.machine.check = 1;
  mpi::Runtime rt(cfg);
  SymmetricHeap heap(rt, 2u << 20);
  const std::int64_t hazards0 = check::hazard_count();
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    auto* buf = static_cast<std::byte*>(pe.malloc(1 << 20));
    pe.barrier_all();
    if (p.rank() == 0) pe.putmem(buf, buf, 1 << 20, 2);
    pe.barrier_all();
    if (p.rank() == 1) pe.putmem(buf, buf, 1 << 20, 2);
    pe.barrier_all();
  });
  EXPECT_EQ(check::hazard_count() - hazards0, 0);
}

TEST(Shmem, RejectsNonSymmetricAddress) {
  mpi::Runtime rt(pe_world(2));
  SymmetricHeap heap(rt, 1 << 20);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    int stack_var = 0;
    EXPECT_THROW(pe.putmem(&stack_var, &stack_var, 4, 1 - p.rank()),
                 std::invalid_argument);
  });
}

TEST(Shmem, HeapExhaustionThrows) {
  mpi::Runtime rt(pe_world(1));
  SymmetricHeap heap(rt, 4096);
  rt.run([&](mpi::Process& p) {
    Pe pe(p, heap);
    pe.malloc(4096);
    EXPECT_THROW(pe.malloc(1), std::bad_alloc);
  });
}

}  // namespace
}  // namespace gpuddt::shmem
