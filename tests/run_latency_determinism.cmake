# Determinism check for the flow-latency pipeline: run the traffic-mix
# benchmark twice with both report sinks and require each pair of output
# documents byte-identical - the gpuddt-metrics-v1 dump AND the
# gpuddt-latency-v1 report. No canonicalization step: FlowStats::to_json
# serializes through canonical_latency, so the file on disk IS the
# canonical form and any byte of divergence is a determinism break
# (docs/determinism.md, docs/latency.md).
# Invoked by the bench_latency_determinism CTest entry.
#
# cmake -DBENCH=<bench_traffic_mix path> -DWORK_DIR=<scratch dir>
#       -P run_latency_determinism.cmake

if(NOT BENCH OR NOT WORK_DIR)
  message(FATAL_ERROR
    "run_latency_determinism.cmake: BENCH and WORK_DIR required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(run 1 2)
  execute_process(
    COMMAND ${BENCH}
            --metrics-out=${WORK_DIR}/metrics_${run}.json
            --latency-out=${WORK_DIR}/latency_${run}.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traffic-mix run ${run} failed")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/latency_1.json ${WORK_DIR}/latency_2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "latency reports differ between identical runs (determinism break)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/metrics_1.json ${WORK_DIR}/metrics_2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "metrics dumps differ between identical runs (determinism break)")
endif()
