// Canonical datatype form (mpi/canonical.h): structurally equal types
// built through different constructor paths must agree on the canonical
// program and the shape digest, compile to identical DEV unit lists, and
// share one DEV-cache entry (a shape_dedup hit on the second build).
// Träff's self-consistency expectation rides along: the canonicalized
// type drives exactly the same conversion work as its hand-flattened
// equivalent, so it can never be slower.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/dev.h"
#include "core/engine.h"
#include "core/layouts.h"
#include "mpi/canonical.h"
#include "mpi/cursor.h"
#include "mpi/datatype.h"
#include "obs/recorder.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

using core::convert_all;
using core::CudaDevDist;

/// Every byte offset (dt, count) touches, in traversal order, walking
/// the given program view. Canonicalization must preserve this exactly.
std::vector<std::int64_t> touched_bytes(const DatatypePtr& dt,
                                        std::int64_t count,
                                        BlockCursor::ProgramView view) {
  BlockCursor cur(dt, count, view);
  std::vector<std::int64_t> out;
  Block b;
  while (cur.next(&b)) {
    for (std::int64_t i = 0; i < b.len; ++i) out.push_back(b.offset + i);
  }
  return out;
}

void expect_same_shape(const DatatypePtr& a, const DatatypePtr& b) {
  EXPECT_EQ(a->shape_digest(), b->shape_digest())
      << a->describe() << " vs " << b->describe();
  EXPECT_EQ(a->canonical_program(), b->canonical_program())
      << a->describe() << " vs " << b->describe();
  EXPECT_EQ(a->size(), b->size());
  EXPECT_EQ(a->extent(), b->extent());
  // Identical compiled DEV programs.
  EXPECT_EQ(convert_all(a, 1, 1024), convert_all(b, 1, 1024));
  EXPECT_EQ(convert_all(a, 3, 512), convert_all(b, 3, 512));
}

TEST(Canonical, ContiguousVectorHvectorChainsCollapse) {
  auto c = Datatype::contiguous(4, kDouble());
  expect_same_shape(c, Datatype::vector(1, 4, 4, kDouble()));
  expect_same_shape(c, Datatype::vector(4, 1, 1, kDouble()));
  expect_same_shape(c, Datatype::hvector(4, 1, 8, kDouble()));  // unit stride
  expect_same_shape(c, Datatype::hvector(2, 2, 16, kDouble()));
  expect_same_shape(c, Datatype::contiguous(2, Datatype::contiguous(2, kDouble())));
  const std::int64_t one_block[] = {4};
  const std::int64_t at_zero[] = {0};
  expect_same_shape(c, Datatype::indexed(one_block, at_zero, kDouble()));
}

TEST(Canonical, VectorIndexedStructEquivalence) {
  // 3 blocks of 2 doubles, block starts 5 doubles apart.
  auto v = Datatype::vector(3, 2, 5, kDouble());
  const std::int64_t lens[] = {2, 2, 2};
  const std::int64_t displs_el[] = {0, 5, 10};
  const std::int64_t displs_by[] = {0, 40, 80};
  expect_same_shape(v, Datatype::indexed(lens, displs_el, kDouble()));
  expect_same_shape(v, Datatype::hindexed(lens, displs_by, kDouble()));
  expect_same_shape(v, Datatype::indexed_block(2, displs_el, kDouble()));
  const DatatypePtr dd[] = {kDouble(), kDouble(), kDouble()};
  expect_same_shape(v, Datatype::struct_type(lens, displs_by, dd));
  // The canonical program is the re-rolled loop.
  ASSERT_EQ(v->canonical_program().size(), 3u);
  EXPECT_EQ(v->canonical_program()[0].op, Instr::Op::kLoop);
}

TEST(Canonical, RegularPatternHidesInsideIndexed) {
  // A uniform indexed_block re-rolls to the 3-instr loop and must route
  // onto the vector fast path exactly like the vector-built equivalent.
  const std::int64_t displs[] = {0, 5, 10, 15};
  auto ib = Datatype::indexed_block(2, displs, kDouble());
  auto v = Datatype::vector(4, 2, 5, kDouble());
  expect_same_shape(v, ib);
  const auto pat = ib->regular_pattern(1);
  ASSERT_TRUE(pat.has_value());
  EXPECT_EQ(pat->first_disp, 0);
  EXPECT_EQ(pat->blocklen, 16);
  EXPECT_EQ(pat->stride, 40);
  EXPECT_EQ(pat->count, 4);
  const auto vpat = v->regular_pattern(1);
  ASSERT_TRUE(vpat.has_value());
  EXPECT_EQ(pat->stride, vpat->stride);
  EXPECT_EQ(pat->blocklen, vpat->blocklen);
}

TEST(Canonical, PerfectlyNestedLoopsFuse) {
  // Two rows of 4 singles fuse into 8 singles when the outer stride
  // continues the inner progression (extents matched via resized).
  auto inner = Datatype::resized(Datatype::vector(4, 1, 2, kDouble()), 0, 64);
  auto nested = Datatype::contiguous(2, inner);
  auto flat = Datatype::resized(Datatype::vector(8, 1, 2, kDouble()), 0, 128);
  expect_same_shape(flat, nested);
  ASSERT_EQ(nested->canonical_program().size(), 3u);
  EXPECT_EQ(nested->canonical_program()[0].count, 8);
}

TEST(Canonical, SubarrayEquivalence) {
  const std::int64_t sizes[] = {6, 4};
  const std::int64_t subsizes[] = {3, 2};
  const std::int64_t starts[] = {1, 1};
  auto sub = Datatype::subarray(sizes, subsizes, starts, kDouble());
  // Same shape, hand-built: 3 rows of 2 doubles, 4 doubles apart,
  // starting at element (1,1), padded to the full 6x4 extent.
  const std::int64_t lens[] = {2, 2, 2};
  const std::int64_t displs[] = {40, 72, 104};
  auto hi = Datatype::resized(Datatype::hindexed(lens, displs, kDouble()),
                              0, 192);
  expect_same_shape(sub, hi);
  const DatatypePtr vt[] = {Datatype::vector(3, 2, 4, kDouble())};
  const std::int64_t one[] = {1};
  const std::int64_t at40[] = {40};
  auto st = Datatype::resized(Datatype::struct_type(one, at40, vt), 0, 192);
  expect_same_shape(sub, st);
}

TEST(Canonical, DarrayEquivalence) {
  const std::int64_t gsizes[] = {8};
  const Datatype::Distrib distribs[] = {Datatype::Distrib::kBlock};
  const std::int64_t dargs[] = {Datatype::kDefaultDarg};
  const std::int64_t psizes[] = {1};
  auto da = Datatype::darray(1, 0, gsizes, distribs, dargs, psizes,
                             kDouble());
  expect_same_shape(da, Datatype::contiguous(8, kDouble()));
}

TEST(Canonical, DistinctShapesKeepDistinctDigests) {
  auto v = Datatype::vector(3, 2, 5, kDouble());
  EXPECT_NE(v->shape_digest(),
            Datatype::vector(3, 2, 6, kDouble())->shape_digest());
  EXPECT_NE(v->shape_digest(),
            Datatype::vector(2, 2, 5, kDouble())->shape_digest());
  EXPECT_NE(v->shape_digest(),
            Datatype::vector(3, 3, 5, kDouble())->shape_digest());
  // Same layout, different extent (resized padding) is a different
  // multi-element shape and must not alias.
  EXPECT_NE(v->shape_digest(),
            Datatype::resized(v, 0, v->extent() + 8)->shape_digest());
}

TEST(Canonical, WalkPreservesByteOrderOnRandomTypes) {
  // Property: the canonical program visits exactly the same bytes in the
  // same order as the compiled program, for any constructor mix.
  std::mt19937 rng(20160531);  // the paper's conference date as seed
  for (int i = 0; i < 200; ++i) {
    auto dt = test::random_datatype(rng);
    for (std::int64_t count : {1, 3}) {
      EXPECT_EQ(touched_bytes(dt, count, BlockCursor::ProgramView::kCompiled),
                touched_bytes(dt, count, BlockCursor::ProgramView::kCanonical))
          << dt->describe_tree() << " count=" << count;
    }
  }
}

TEST(Canonical, NeverSlowerThanHandFlattened) {
  // Träff self-consistency: the conversion cost drivers (emitted units,
  // walked pieces) of a constructor-built type equal those of its
  // hand-flattened form, so the canonicalized type is never slower.
  auto v = Datatype::vector(8, 4, 6, kDouble());
  std::vector<std::int64_t> lens(8, 4);
  std::vector<std::int64_t> displs(8);
  for (int i = 0; i < 8; ++i) displs[i] = i * 6;
  auto flat = Datatype::indexed(lens, displs, kDouble());
  core::DevCursor a(v, 1, 1024);
  core::DevCursor b(flat, 1, 1024);
  CudaDevDist bufa[64];
  CudaDevDist bufb[64];
  std::vector<CudaDevDist> ua;
  std::vector<CudaDevDist> ub;
  for (std::size_t n = 0; (n = a.next_units(bufa)) > 0;)
    ua.insert(ua.end(), bufa, bufa + n);
  for (std::size_t n = 0; (n = b.next_units(bufb)) > 0;)
    ub.insert(ub.end(), bufb, bufb + n);
  EXPECT_EQ(ua, ub);
  EXPECT_EQ(a.pieces_visited(), b.pieces_visited());
}

TEST(Canonical, EngineShapeDedupHitOnSecondBuild) {
  // Two structurally equal but differently constructed irregular types:
  // the second build must hit the shape-keyed cache, not recompile.
  sg::Machine m{test::machine_config(1)};
  sg::HostContext ctx(m, 0);
  obs::Recorder rec;
  core::EngineConfig cfg;
  cfg.recorder = &rec;
  core::GpuDatatypeEngine eng(ctx, cfg);
  // Triangle built as indexed...
  auto t1 = core::lower_triangular_type(24, 24);
  // ...and the same triangle hand-built as hindexed over bytes.
  std::vector<std::int64_t> lens(24);
  std::vector<std::int64_t> displs(24);
  for (std::int64_t j = 0; j < 24; ++j) {
    lens[static_cast<std::size_t>(j)] = 24 - j;
    displs[static_cast<std::size_t>(j)] = (j * 24 + j) * 8;
  }
  auto t2 = Datatype::hindexed(lens, displs, kDouble());
  ASSERT_NE(t1->type_id(), t2->type_id());
  ASSERT_EQ(t1->shape_digest(), t2->shape_digest());
  ASSERT_FALSE(t1->regular_pattern(1).has_value());  // genuinely irregular
  eng.prefetch(t1, 1);
  EXPECT_EQ(eng.cache().size(), 1u);
  void* base = sg::Malloc(ctx, static_cast<std::size_t>(t2->extent()));
  auto op = eng.start(core::GpuDatatypeEngine::Dir::kPack, t2, 1, base);
  EXPECT_TRUE(op->used_cache());
  eng.finish(*op);
  EXPECT_EQ(eng.cache().size(), 1u);  // still one entry, shared by shape
  EXPECT_EQ(eng.cache().shape_dedup_hits(), 1u);
  const auto counters = rec.metrics().counters_snapshot();
  EXPECT_EQ(counters.at("dev_cache.shape_dedup.hits"), 1);
  sg::Free(ctx, base);
}

}  // namespace
}  // namespace gpuddt::mpi
