// The event-driven simulator core (src/vtime/engine.h, docs/simulator.md):
// engine-level scheduling semantics, byte-exact equivalence with the
// legacy thread-per-rank TurnScheduler, deadlock diagnostics from both
// backends, 1000-rank scale, and the modeled NVLink/fat-tree topology.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpi/coll.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "obs/canon.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"
#include "simgpu/runtime.h"
#include "test_helpers.h"
#include "vtime/engine.h"

namespace gpuddt {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- EventEngine scheduling semantics ---------------------------------------

TEST(EventEngine, DispatchesTasksInIdOrder) {
  vt::EventEngine eng(3);
  std::vector<int> order;
  eng.run([&](int t) { order.push_back(t); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.stats().dispatches, 3u);
}

TEST(EventEngine, YieldRotatesRoundRobin) {
  // Mirrors TurnScheduler::pass_turn_locked: the yielding task becomes
  // the scan anchor, so peers run before it resumes.
  vt::EventEngine eng(3);
  std::vector<int> order;
  eng.run([&](int t) {
    order.push_back(t);
    eng.yield(t);
    order.push_back(t + 10);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12}));
  EXPECT_EQ(eng.stats().yields, 3u);
}

TEST(EventEngine, YieldIsNoopWhenSoleRunnable) {
  vt::EventEngine eng(1);
  eng.run([&](int t) {
    eng.yield(t);
    eng.yield(t);
  });
  EXPECT_EQ(eng.stats().yields, 0u);
  EXPECT_EQ(eng.stats().dispatches, 1u);
}

TEST(EventEngine, NoteMessageWakesBlockedTask) {
  vt::EventEngine eng(2);
  std::vector<int> order;
  eng.run([&](int t) {
    if (t == 0) {
      eng.wait_for_message(0);
      order.push_back(100);
    } else {
      order.push_back(1);
      eng.note_message(0);
      order.push_back(2);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 100}));
  EXPECT_EQ(eng.stats().wakeups, 1u);
}

TEST(EventEngine, PendingMessageConsumedWithoutSwitching) {
  vt::EventEngine eng(2);
  std::vector<int> order;
  eng.run([&](int t) {
    if (t == 0) {
      eng.note_message(0);  // already delivered before the wait
      eng.wait_for_message(0);
      order.push_back(0);
    } else {
      order.push_back(1);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventEngine, PropagatesLowestTaskException) {
  vt::EventEngine eng(3);
  try {
    eng.run([&](int t) {
      if (t >= 1) throw std::runtime_error("boom from " + std::to_string(t));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from 1");
  }
}

TEST(EventEngine, RunIsSingleUse) {
  vt::EventEngine eng(1);
  eng.run([](int) {});
  EXPECT_THROW(eng.run([](int) {}), std::logic_error);
}

TEST(EventEngine, DeadlockReportNamesEveryBlockedTask) {
  vt::EventEngine eng(2);
  eng.set_block_describer(
      [](int t) { return "op" + std::to_string(t); });
  try {
    eng.run([&](int t) { eng.wait_for_message(t); });
    FAIL() << "expected DeadlockError";
  } catch (const vt::DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "deadlock detected")) << msg;
    EXPECT_TRUE(contains(msg, "rank 0: op0")) << msg;
    EXPECT_TRUE(contains(msg, "rank 1: op1")) << msg;
  }
}

// --- Backend selection ------------------------------------------------------

class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
  }
  ~ScopedEnv() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }
  void set(const char* v) { setenv(name_, v, 1); }
  void unset() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_;
  std::string saved_;
};

TEST(SchedBackendConfig, EnvAndFieldPrecedence) {
  ScopedEnv env("GPUDDT_SIM_BACKEND");
  env.unset();
  EXPECT_EQ(mpi::resolve_sched_backend(mpi::SchedBackend::kAuto),
            mpi::SchedBackend::kEvent);
  env.set("threads");
  EXPECT_EQ(mpi::resolve_sched_backend(mpi::SchedBackend::kAuto),
            mpi::SchedBackend::kThreads);
  env.set("event");
  EXPECT_EQ(mpi::resolve_sched_backend(mpi::SchedBackend::kAuto),
            mpi::SchedBackend::kEvent);
  env.set("fiber");
  EXPECT_EQ(mpi::resolve_sched_backend(mpi::SchedBackend::kAuto),
            mpi::SchedBackend::kEvent);
  // An explicit config field wins over the environment.
  env.set("threads");
  EXPECT_EQ(mpi::resolve_sched_backend(mpi::SchedBackend::kEvent),
            mpi::SchedBackend::kEvent);
  env.set("bogus");
  EXPECT_THROW(mpi::resolve_sched_backend(mpi::SchedBackend::kAuto),
               std::invalid_argument);
}

// --- Scheduler equivalence: event core vs. legacy thread backend ------------

struct Capture {
  std::string canon;   // obs::canonical_metrics of the run's dump
  std::string chrome;  // virtual-time chrome trace (docs/tracing.md)
};

Capture run_captured(mpi::RuntimeConfig cfg, mpi::SchedBackend backend,
                     const std::function<void(mpi::Process&)>& body,
                     bool gpu_plugin = false) {
  obs::Recorder rec;
  rec.enable_tracing(true);
  cfg.recorder = &rec;
  cfg.sched_backend = backend;
  mpi::Runtime rt(cfg);
  if (gpu_plugin) rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run(body);
  return {obs::canonical_metrics(obs::json::parse(rec.to_json())),
          rec.to_chrome_json()};
}

void expect_backends_equivalent(mpi::RuntimeConfig cfg,
                                const std::function<void(mpi::Process&)>& body,
                                bool gpu_plugin = false) {
  const Capture threads =
      run_captured(cfg, mpi::SchedBackend::kThreads, body, gpu_plugin);
  const Capture event =
      run_captured(cfg, mpi::SchedBackend::kEvent, body, gpu_plugin);
  EXPECT_EQ(threads.canon, event.canon);
  EXPECT_EQ(threads.chrome, event.chrome);
  EXPECT_TRUE(contains(threads.canon, "gpuddt-metrics-v1"));
}

TEST(SchedulerEquivalence, DevicePingpongMatchesByteForByte) {
  // The fig9 shape: a strided device datatype bounced between two ranks.
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  expect_backends_equivalent(
      cfg,
      [](mpi::Process& p) {
        mpi::Comm comm(p);
        const auto dt = mpi::Datatype::vector(256, 16, 32, mpi::kByte());
        const std::int64_t span = test::span_bytes(dt, 4);
        auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
        test::fill_pattern(buf, static_cast<std::size_t>(span),
                           static_cast<std::uint32_t>(p.rank()));
        for (int it = 0; it < 3; ++it) {
          if (p.rank() == 0) {
            comm.send(buf, 4, dt, 1, it);
            comm.recv(buf, 4, dt, 1, 100 + it);
          } else {
            comm.recv(buf, 4, dt, 0, it);
            comm.send(buf, 4, dt, 0, 100 + it);
          }
        }
      },
      /*gpu_plugin=*/true);
}

TEST(SchedulerEquivalence, CollectivesMatchByteForByte) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 8;
  cfg.machine.num_devices = 1;
  expect_backends_equivalent(cfg, [](mpi::Process& p) {
    mpi::Comm comm(p);
    mpi::Collectives coll(comm);
    std::vector<std::int32_t> v(64, p.rank());
    std::vector<std::int32_t> sum(64, 0);
    coll.allreduce(v.data(), sum.data(), 64, mpi::kInt32(),
                   mpi::ReduceOp::kSum);
    EXPECT_EQ(sum[0], 28);  // 0+1+...+7
    std::vector<std::int32_t> all(64 * 8, 0);
    coll.allgather(v.data(), all.data(), 64, mpi::kInt32());
    coll.bcast(v.data(), 64, mpi::kInt32(), 3);
    EXPECT_EQ(v[0], 3);
    comm.barrier();
  });
}

TEST(SchedulerEquivalence, OnesidedMatchesByteForByte) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 4;
  cfg.machine.num_devices = 1;
  expect_backends_equivalent(cfg, [](mpi::Process& p) {
    mpi::Comm comm(p);
    std::vector<std::int32_t> win(256, -1);
    rma::Window w(comm, win.data(), 256 * 4);
    w.fence();
    if (p.rank() != 0) {
      std::vector<std::int32_t> data(16, p.rank());
      w.put(data.data(), 16, mpi::kInt32(), 0, 64 * p.rank(), 16,
            mpi::kInt32());
    }
    w.fence();
    if (p.rank() == 0) {
      for (int r = 1; r < 4; ++r) EXPECT_EQ(win[16 * r], r);
    }
  });
}

// --- Deadlock diagnostics through the MPI stack -----------------------------

void expect_pml_deadlock_report(mpi::SchedBackend backend) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.sched_backend = backend;
  mpi::Runtime rt(cfg);
  try {
    rt.run([](mpi::Process& p) {
      mpi::Comm comm(p);
      std::byte b{};
      // Mismatched tags: neither recv can ever match.
      if (p.rank() == 0)
        comm.recv(&b, 1, mpi::kByte(), 1, 7);
      else
        comm.recv(&b, 1, mpi::kByte(), 0, 9);
    });
    FAIL() << "expected DeadlockError";
  } catch (const vt::DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "rank 0: recv(src=1, tag=7")) << msg;
    EXPECT_TRUE(contains(msg, "rank 1: recv(src=0, tag=9")) << msg;
  }
}

TEST(DeadlockDiagnostics, EventBackendReportsPendingOps) {
  expect_pml_deadlock_report(mpi::SchedBackend::kEvent);
}

TEST(DeadlockDiagnostics, ThreadBackendReportsPendingOps) {
  expect_pml_deadlock_report(mpi::SchedBackend::kThreads);
}

TEST(DeadlockDiagnostics, WildcardRecvReportsAny) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.sched_backend = mpi::SchedBackend::kEvent;
  mpi::Runtime rt(cfg);
  try {
    rt.run([](mpi::Process& p) {
      if (p.rank() == 0) {
        std::byte b{};
        mpi::Comm(p).recv(&b, 1, mpi::kByte(), mpi::kAnySource,
                          mpi::kAnyTag);
      }
      // rank 1 exits immediately; nothing can ever match rank 0's recv.
    });
    FAIL() << "expected DeadlockError";
  } catch (const vt::DeadlockError& e) {
    EXPECT_TRUE(contains(e.what(), "rank 0: recv(src=any, tag=any"))
        << e.what();
  }
}

// --- Scale: 1024 ranks in one process ---------------------------------------

mpi::RuntimeConfig scale_config(int ranks) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = ranks;
  cfg.ranks_per_node = 32;
  cfg.machine.num_devices = 1;
  cfg.machine.topo.fat_tree_leaf_nodes = 4;
  cfg.machine.topo.fat_tree_uplinks = 2;
  cfg.sched_backend = mpi::SchedBackend::kEvent;
  cfg.sim_stack_bytes = 256 * 1024;
  return cfg;
}

TEST(SimScale, Ring1024CompletesDeterministically) {
  auto run_once = []() {
    obs::Recorder rec;
    mpi::RuntimeConfig cfg = scale_config(1024);
    cfg.recorder = &rec;
    mpi::Runtime rt(cfg);
    int done = 0;  // the event loop is single-threaded; plain int is safe
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      std::int32_t out = p.rank(), in = -1;
      comm.sendrecv(&out, 1, mpi::kInt32(), (p.rank() + 1) % 1024, 0, &in, 1,
                    mpi::kInt32(), (p.rank() + 1023) % 1024, 0);
      EXPECT_EQ(in, (p.rank() + 1023) % 1024);
      comm.barrier();
      ++done;
    });
    EXPECT_EQ(done, 1024);
    EXPECT_GE(rt.sim_stats().dispatches, 1024u);
    EXPECT_GT(rt.sim_stats().max_vtime, 0);
    return obs::canonical_metrics(obs::json::parse(rec.to_json()));
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
}

TEST(SimScale, DeadlockAt1024ReportsFirstAndLastRank) {
  mpi::RuntimeConfig cfg = scale_config(1024);
  mpi::Runtime rt(cfg);
  try {
    rt.run([](mpi::Process& p) {
      std::byte b{};
      // Everyone waits for a message nobody sends.
      mpi::Comm(p).recv(&b, 1, mpi::kByte(), (p.rank() + 1) % 1024, 3);
    });
    FAIL() << "expected DeadlockError";
  } catch (const vt::DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "rank 0: recv(src=1, tag=3")) << msg.substr(0, 200);
    EXPECT_TRUE(contains(msg, "rank 1023: recv(src=0, tag=3"));
  }
}

// --- Modeled topology: NVLink domains and fat-tree uplinks ------------------

TEST(Topology, NvlinkDomainAcceleratesPeerCopies) {
  auto finish_time = [](int domain_size) {
    mpi::RuntimeConfig cfg;
    cfg.world_size = 2;
    cfg.machine.num_devices = 2;
    cfg.machine.device_memory_bytes = 256u << 20;
    cfg.machine.topo.nvlink_domain_size = domain_size;
    vt::Time finish = 0;
    mpi::Runtime rt(cfg);
    rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      const std::int64_t n = 4 << 20;
      auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), n));
      if (p.rank() == 0) {
        std::memset(buf, 0x5a, static_cast<std::size_t>(n));
        comm.send(buf, n, mpi::kByte(), 1, 5);
      } else {
        comm.recv(buf, n, mpi::kByte(), 0, 5);
        finish = p.clock().now();
      }
    });
    return finish;
  };
  const vt::Time pcie = finish_time(0);    // default: P2P over PCI-E
  const vt::Time nvlink = finish_time(2);  // devices 0,1 share a domain
  EXPECT_GT(pcie, 0);
  EXPECT_LT(nvlink, pcie);
}

TEST(Topology, FatTreeChargesCrossLeafDetourOnly) {
  // 3 single-rank nodes; with 2 nodes per leaf, rank 1 shares rank 0's
  // leaf and rank 2 sits across the spine. The spine is oversubscribed
  // (1 GB/s uplinks under 5.8 GB/s node links) so the detour's
  // serialization time dominates; at full bisection the wormhole model
  // hides the two 0.7us hop latencies behind the wire latency and a
  // lone transfer is (correctly) unaffected.
  auto recv_finish = [](int leaf_nodes, int receiver) {
    mpi::RuntimeConfig cfg;
    cfg.world_size = 3;
    cfg.ranks_per_node = 1;
    cfg.machine.num_devices = 1;
    cfg.machine.topo.fat_tree_leaf_nodes = leaf_nodes;
    cfg.machine.topo.fat_tree_uplink_gbps = 1.0;
    vt::Time finish = 0;
    mpi::Runtime rt(cfg);
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      std::vector<std::byte> buf(256 * 1024);
      if (p.rank() == 0) {
        comm.send(buf.data(), static_cast<std::int64_t>(buf.size()),
                  mpi::kByte(), receiver, 1);
      } else if (p.rank() == receiver) {
        comm.recv(buf.data(), static_cast<std::int64_t>(buf.size()),
                  mpi::kByte(), 0, 1);
        finish = p.clock().now();
      }
    });
    return finish;
  };
  // Same-leaf traffic never detours: identical to the flat full-bisection
  // fabric, byte-for-byte.
  EXPECT_EQ(recv_finish(2, 1), recv_finish(0, 1));
  // Cross-leaf traffic pays the shared-uplink detour.
  EXPECT_GT(recv_finish(2, 2), recv_finish(0, 2));
}

TEST(Topology, DomainHelpers) {
  sg::MachineConfig mc = test::machine_config(4);
  mc.topo.nvlink_domain_size = 2;
  sg::Machine m(mc);
  EXPECT_EQ(m.nvlink_domain(0), 0);
  EXPECT_EQ(m.nvlink_domain(3), 1);
  EXPECT_TRUE(m.nvlink_connected(0, 1));
  EXPECT_FALSE(m.nvlink_connected(1, 2));
  EXPECT_FALSE(m.nvlink_connected(2, 2));  // self is not a peer link
}

}  // namespace
}  // namespace gpuddt
