// Cross-layer metrics accounting: the coll.* / rma.* / shmem.* byte
// counters (docs/metrics.md) must agree with the bytes the simulated
// machine actually moved. A ByteSink AccessObserver (simgpu/access.h)
// replaces the default checker and tallies observed writes into known
// target regions; the counters the instrumentation emitted must sum to
// the same value. Plain host stores (test setup memsets, CPU unpack)
// are invisible to the machine, so every test moves payload through
// observed paths: TimedCopy, RDMA, device engine.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "mpi/coll.h"
#include "mpi/runtime.h"
#include "obs/recorder.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"
#include "shmem/shmem.h"
#include "simgpu/access.h"

namespace gpuddt {
namespace {

struct Region {
  const std::byte* base = nullptr;
  std::size_t bytes = 0;
};

/// Sums the bytes of observed *writes* that land inside any of the
/// caller's target regions. Regions are read at on_op time, so tests may
/// fill them in from inside rt.run (ranks execute one at a time).
class ByteSink : public sg::AccessObserver {
 public:
  explicit ByteSink(const std::vector<Region>* regions)
      : regions_(regions) {}

  void on_op(const sg::OpInfo&,
             std::span<const sg::MemRange> ranges) override {
    for (const sg::MemRange& r : ranges) {
      if (!r.write) continue;
      const auto* lo = static_cast<const std::byte*>(r.ptr);
      const auto* hi = lo + r.len;
      for (const Region& reg : *regions_) {
        const auto* rlo = reg.base;
        const auto* rhi = reg.base + reg.bytes;
        const auto* a = lo < rlo ? rlo : lo;
        const auto* b = hi < rhi ? hi : rhi;
        if (a < b) written_ += b - a;
      }
    }
  }
  void on_release(const void*, std::size_t) override {}
  void on_reset() override { written_ = 0; }

  std::int64_t written() const { return written_; }

 private:
  const std::vector<Region>* regions_;
  std::int64_t written_ = 0;
};

std::int64_t counter(const obs::Recorder& rec, const std::string& name) {
  const auto snap = rec.metrics().counters_snapshot();
  const auto it = snap.find(name);
  return it == snap.end() ? 0 : it->second;
}

mpi::RuntimeConfig world(int n, obs::Recorder* rec) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = n;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  cfg.recorder = rec;
  return cfg;
}

TEST(LayerMetrics, ShmemPutBytesMatchObservedWrites) {
  obs::Recorder rec;
  std::vector<Region> targets;
  mpi::Runtime rt(world(2, &rec));
  shmem::SymmetricHeap heap(rt, 1 << 20);
  // Only writes into PE 1's heap count: the put's destination.
  targets.push_back({heap.base(1), 1 << 20});
  auto sink = std::make_unique<ByteSink>(&targets);
  ByteSink* observed = sink.get();
  rt.machine().set_observer(std::move(sink));
  constexpr std::int64_t kBytes = 4096;
  rt.run([&](mpi::Process& p) {
    shmem::Pe pe(p, heap);
    auto* buf = static_cast<std::byte*>(pe.malloc(kBytes));
    pe.barrier_all();
    if (p.rank() == 0) pe.putmem(buf, buf, kBytes, 1);
    pe.barrier_all();
  });
  EXPECT_EQ(counter(rec, "shmem.put.calls"), 1);
  EXPECT_EQ(counter(rec, "shmem.put.bytes"), kBytes);
  EXPECT_EQ(counter(rec, "shmem.bytes.direct"), kBytes);
  EXPECT_EQ(observed->written(), kBytes);
}

TEST(LayerMetrics, RmaPutBytesMatchObservedDeviceWrites) {
  obs::Recorder rec;
  std::vector<Region> targets;
  mpi::Runtime rt(world(2, &rec));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  auto sink = std::make_unique<ByteSink>(&targets);
  ByteSink* observed = sink.get();
  rt.machine().set_observer(std::move(sink));
  constexpr std::int64_t kCount = 256;  // int32 -> 1 KiB payload
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    auto* win = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(kCount) * 4));
    if (p.rank() == 1) targets.push_back({win, kCount * 4});
    rma::Window w(comm, win, kCount * 4);
    w.fence();
    if (p.rank() == 0) {
      std::vector<std::int32_t> data(kCount, 42);
      w.put(data.data(), kCount, mpi::kInt32(), 1, 0, kCount,
            mpi::kInt32());
    }
    w.fence();
    sg::Free(p.gpu(), win);
  });
  EXPECT_EQ(counter(rec, "rma.put.calls"), 1);
  EXPECT_EQ(counter(rec, "rma.put.bytes"), kCount * 4);
  EXPECT_EQ(counter(rec, "rma.bytes.contiguous"), kCount * 4);
  EXPECT_EQ(counter(rec, "rma.bytes.staged_device"), kCount * 4);
  EXPECT_EQ(observed->written(), kCount * 4);
}

TEST(LayerMetrics, CollBcastBytesMatchObservedDeviceWrites) {
  // Contiguous device bcast over 4 ranks: the tree forwards the block
  // world-1 times, and every non-root copy lands in a device buffer the
  // machine observes.
  obs::Recorder rec;
  std::vector<Region> targets;
  constexpr int kWorld = 4;
  mpi::Runtime rt(world(kWorld, &rec));
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  auto sink = std::make_unique<ByteSink>(&targets);
  ByteSink* observed = sink.get();
  rt.machine().set_observer(std::move(sink));
  constexpr std::int64_t kBytes = 8192;
  rt.run([&](mpi::Process& p) {
    mpi::Collectives coll(mpi::Comm{p});
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(kBytes)));
    if (p.rank() != 0)
      targets.push_back({buf, static_cast<std::size_t>(kBytes)});
    if (p.rank() == 0) std::memset(buf, 7, static_cast<std::size_t>(kBytes));
    coll.bcast(buf, kBytes, mpi::kByte(), 0);
    coll.barrier();
    sg::Free(p.gpu(), buf);
  });
  EXPECT_EQ(counter(rec, "coll.bcast.calls"), kWorld);
  EXPECT_EQ(counter(rec, "coll.bcast.bytes"), (kWorld - 1) * kBytes);
  EXPECT_EQ(observed->written(), (kWorld - 1) * kBytes);
}

TEST(LayerMetrics, CollHostBcastCountsContiguousDirectBytes) {
  // Host path is invisible to the machine, but the counter algebra must
  // still hold: world-1 block sends, all contiguous, none staged.
  obs::Recorder rec;
  constexpr int kWorld = 4;
  mpi::Runtime rt(world(kWorld, &rec));
  constexpr std::int64_t kCount = 1024;
  rt.run([&](mpi::Process& p) {
    mpi::Collectives coll(mpi::Comm{p});
    std::vector<double> buf(kCount, p.rank() == 0 ? 3.5 : 0.0);
    coll.bcast(buf.data(), kCount, mpi::kDouble(), 0);
    EXPECT_EQ(buf[kCount - 1], 3.5);
  });
  EXPECT_EQ(counter(rec, "coll.bcast.calls"), kWorld);
  EXPECT_EQ(counter(rec, "coll.bcast.bytes"), (kWorld - 1) * kCount * 8);
  EXPECT_EQ(counter(rec, "coll.bytes.contiguous"),
            (kWorld - 1) * kCount * 8);
  EXPECT_EQ(counter(rec, "coll.bytes.direct"), (kWorld - 1) * kCount * 8);
  EXPECT_EQ(counter(rec, "coll.bytes.packed"), 0);
  EXPECT_EQ(counter(rec, "coll.bytes.staged"), 0);
}

TEST(LayerMetrics, ReduceOpFlopsPinToElementCounts) {
  // Binomial reduce combines world-1 incoming streams, each one operator
  // application per element, so coll.reduce.op_flops is exactly
  // (world-1) * count independent of primitive width or op.
  obs::Recorder rec;
  constexpr int kWorld = 4;
  mpi::Runtime rt(world(kWorld, &rec));
  constexpr std::int64_t kCount = 1024;
  rt.run([&](mpi::Process& p) {
    mpi::Collectives coll(mpi::Comm{p});
    std::vector<double> buf(kCount, 1.0), out(kCount, 0.0);
    coll.reduce(buf.data(), out.data(), kCount, mpi::kDouble(),
                mpi::ReduceOp::kSum, 0);
    if (p.rank() == 0) EXPECT_EQ(out[kCount - 1], double(kWorld));
  });
  EXPECT_EQ(counter(rec, "coll.reduce.op_flops"), (kWorld - 1) * kCount);
}

TEST(LayerMetrics, AllreduceOpFlopsAccrueUnderReduce) {
  // Allreduce = reduce + bcast: the combining work lands on the inner
  // reduce's counter, and a narrower primitive (int32) still counts
  // elements, not bytes.
  obs::Recorder rec;
  constexpr int kWorld = 4;
  mpi::Runtime rt(world(kWorld, &rec));
  constexpr std::int64_t kCount = 512;
  rt.run([&](mpi::Process& p) {
    mpi::Collectives coll(mpi::Comm{p});
    std::vector<std::int32_t> buf(kCount, 2), out(kCount, 0);
    coll.allreduce(buf.data(), out.data(), kCount, mpi::kInt32(),
                   mpi::ReduceOp::kMax);
    EXPECT_EQ(out[0], 2);
  });
  EXPECT_EQ(counter(rec, "coll.reduce.op_flops"), (kWorld - 1) * kCount);
  EXPECT_EQ(counter(rec, "coll.allreduce.op_flops"), 0);
  EXPECT_EQ(counter(rec, "coll.allreduce.calls"), kWorld);
}

}  // namespace
}  // namespace gpuddt
