// Request-layer API: MPI_Test-style polling, sendrecv, and persistent
// requests - on host and device buffers.
#include <gtest/gtest.h>

#include <vector>

#include "core/layouts.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt::mpi {
namespace {

RuntimeConfig two_ranks() {
  RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 256u << 20;
  cfg.progress_timeout_ms = 15000;
  return cfg;
}

TEST(RequestApi, TestPollsToCompletion) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    int v = p.rank() == 0 ? 42 : -1;
    if (p.rank() == 0) {
      comm.send(&v, 1, kInt32(), 1, 0);
    } else {
      Request r = comm.irecv(&v, 1, kInt32(), 0, 0);
      int spins = 0;
      while (!comm.test(r)) {
        ++spins;
        ASSERT_LT(spins, 1000000);
      }
      EXPECT_EQ(v, 42);
      EXPECT_TRUE(r->done);
      EXPECT_TRUE(comm.test(r));  // idempotent once done
    }
  });
}

TEST(RequestApi, SendrecvExchangesWithoutDeadlock) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    // Large (rendezvous) payloads in both directions simultaneously.
    const std::int64_t n = 1 << 18;
    std::vector<std::int64_t> out(static_cast<std::size_t>(n), p.rank());
    std::vector<std::int64_t> in(static_cast<std::size_t>(n), -1);
    const Status st = comm.sendrecv(out.data(), n, kInt64(), 1 - p.rank(), 0,
                                    in.data(), n, kInt64(), 1 - p.rank(), 0);
    EXPECT_EQ(st.source, 1 - p.rank());
    for (auto v : in) ASSERT_EQ(v, 1 - p.rank());
  });
}

TEST(RequestApi, PersistentHaloLoop) {
  Runtime rt(two_ranks());
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([](Process& p) {
    Comm comm(p);
    // Persistent send/recv of a GPU-resident vector type, restarted over
    // several iterations - the stencil idiom.
    auto dt = core::submatrix_type(64, 16, 96);
    const std::size_t span = 96 * 16 * 8;
    auto* out = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    auto* in = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    auto ps = PersistentRequest::send_init(comm, out, 1, dt, 1 - p.rank(), 5);
    auto pr = PersistentRequest::recv_init(comm, in, 1, dt, 1 - p.rank(), 5);
    for (int iter = 0; iter < 6; ++iter) {
      test::fill_pattern(out, span,
                         static_cast<std::uint32_t>(p.rank() * 50 + iter));
      pr.start();
      ps.start();
      pr.wait();
      ps.wait();
      std::vector<std::byte> expect(span);
      test::fill_pattern(expect.data(), span,
                         static_cast<std::uint32_t>((1 - p.rank()) * 50 + iter));
      ASSERT_EQ(test::reference_pack(dt, 1, in),
                test::reference_pack(dt, 1, expect.data()))
          << "iter " << iter;
    }
  });
}

TEST(RequestApi, PersistentStartWhileActiveThrows) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    int buf = 0;
    if (p.rank() == 1) {
      auto pr = PersistentRequest::recv_init(comm, &buf, 1, kInt32(), 0, 0);
      pr.start();
      EXPECT_THROW(pr.start(), std::logic_error);  // still in flight
      pr.wait();
      EXPECT_EQ(buf, 7);
    } else {
      int v = 7;
      comm.send(&v, 1, kInt32(), 1, 0);
    }
  });
}

TEST(RequestApi, PersistentWaitBeforeStartThrows) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    int buf = 0;
    auto pr = PersistentRequest::recv_init(comm, &buf, 1, kInt32(),
                                           1 - p.rank(), 0);
    EXPECT_THROW(pr.wait(), std::logic_error);
  });
}

TEST(RequestApi, TransferStatsReflectProtocolChoice) {
  // Same-node device<->device: the pipelined RDMA protocol must be
  // chosen; the stats expose it (and the registration cache reuse).
  Runtime rt(two_ranks());
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(96, 96);
    const std::size_t span = 96 * 96 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    for (int i = 0; i < 3; ++i) {
      if (p.rank() == 0) {
        comm.send(buf, 1, dt, 1, i);
      } else {
        comm.recv(buf, 1, dt, 0, i);
      }
    }
    comm.barrier();
    if (p.rank() == 1) {
      const auto& st = plugin->stats(p);
      EXPECT_EQ(st.rdma_pipelined, 3);
      EXPECT_EQ(st.host_staged, 0);
      EXPECT_EQ(st.bytes_received, 3 * dt->size());
      EXPECT_GT(st.fragments, 0);
      EXPECT_EQ(st.ipc_opens, 1);   // sender staging mapped once...
      EXPECT_EQ(st.ipc_reuses, 2);  // ...and reused afterwards
    }
  });
}

TEST(RequestApi, TransferStatsCopyInOutPath) {
  RuntimeConfig cfg = two_ranks();
  cfg.ranks_per_node = 1;  // IB: copy-in/out
  Runtime rt(cfg);
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto dt = core::submatrix_type(128, 32, 192);
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), 192 * 32 * 8));
    if (p.rank() == 0) {
      comm.send(buf, 1, dt, 1, 0);
    } else {
      comm.recv(buf, 1, dt, 0, 0);
      const auto& st = plugin->stats(p);
      EXPECT_EQ(st.host_staged, 1);
      EXPECT_EQ(st.rdma_pipelined, 0);
      EXPECT_EQ(st.ipc_opens, 0);
    }
  });
}

TEST(RequestApi, TransferStatsShortcuts) {
  Runtime rt(two_ranks());
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto vec = core::submatrix_type(256, 64, 320);
    auto cont = Datatype::contiguous(256 * 64, kDouble());
    auto* a = static_cast<std::byte*>(sg::Malloc(p.gpu(), 320 * 64 * 8));
    auto* b = static_cast<std::byte*>(sg::Malloc(p.gpu(), 256 * 64 * 8));
    if (p.rank() == 0) {
      comm.send(b, 1, cont, 1, 0);  // contiguous sender -> recv-driven
      comm.send(a, 1, vec, 1, 1);   // contiguous receiver -> pack-to-remote
    } else {
      comm.recv(a, 1, vec, 0, 0);
      comm.recv(b, 1, cont, 0, 1);
      const auto& st = plugin->stats(p);
      EXPECT_EQ(st.rdma_recv_driven, 1);
      EXPECT_EQ(st.rdma_pack_remote, 1);
    }
  });
}

TEST(RequestApi, WaitanyReturnsFirstCompleted) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    if (p.rank() == 0) {
      // Complete tag 2 first, then tag 1.
      int a = 10, b = 20;
      comm.send(&b, 1, kInt32(), 1, 2);
      comm.send(&a, 1, kInt32(), 1, 1);
    } else {
      int a = -1, b = -1;
      std::vector<Request> rs;
      rs.push_back(comm.irecv(&a, 1, kInt32(), 0, 1));
      rs.push_back(comm.irecv(&b, 1, kInt32(), 0, 2));
      const std::size_t first = comm.waitany(rs);
      EXPECT_TRUE(rs[first]->done);
      comm.waitall(rs);
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 20);
    }
  });
}

TEST(RequestApi, WaitanyEmptyThrows) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    std::vector<Request> empty;
    EXPECT_THROW(comm.waitany(empty), std::invalid_argument);
  });
}

TEST(RequestApi, TraceProvesPipelineOverlap) {
  // The central mechanism of Section 4.1: fragment k+1 is packed and
  // announced while fragment k is still in flight or being unpacked. The
  // virtual-time trace must show that overlap for a multi-fragment
  // transfer.
  Runtime rt(two_ranks());
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(1024, 1024);
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(1024 * 1024 * 8)));
    if (p.rank() == 0) {
      comm.send(buf, 1, dt, 1, 0);
    } else {
      plugin->enable_tracing(p);
      comm.recv(buf, 1, dt, 0, 0);
      const auto& trace = plugin->trace(p);
      ASSERT_GT(trace.size(), 3u);
      int overlaps = 0;
      for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
        EXPECT_LE(trace[k].packed_and_wired, trace[k].staged);
        EXPECT_LE(trace[k].staged, trace[k].unpacked);
        if (trace[k + 1].packed_and_wired < trace[k].unpacked) ++overlaps;
      }
      // Most adjacent pairs overlap; a serialized protocol would have 0.
      EXPECT_GE(overlaps, static_cast<int>(trace.size()) / 2);
    }
  });
}

}  // namespace
}  // namespace gpuddt::mpi

namespace gpuddt::mpi {
namespace {

TEST(RequestApi, IprobeSeesUnexpectedMessages) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    if (p.rank() == 0) {
      int v = 9;
      comm.send(&v, 1, kInt32(), 1, 7);
      comm.barrier();
    } else {
      // Spin until the eager message is sitting in the unexpected queue.
      Status st;
      while (!comm.iprobe(0, 7, &st)) {
      }
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 4);
      // Probe does not consume: a second probe still matches, and the
      // actual receive still works.
      EXPECT_TRUE(comm.iprobe(kAnySource, kAnyTag, nullptr));
      int v = -1;
      comm.recv(&v, 1, kInt32(), 0, 7);
      EXPECT_EQ(v, 9);
      EXPECT_FALSE(comm.iprobe(0, 7, nullptr));
      comm.barrier();
    }
  });
}

TEST(RequestApi, IprobeSeesRendezvousSize) {
  Runtime rt(two_ranks());
  rt.run([](Process& p) {
    Comm comm(p);
    if (p.rank() == 0) {
      std::vector<std::byte> big(1 << 20);
      comm.send(big.data(), 1 << 20, kByte(), 1, 1);
      comm.barrier();
    } else {
      Status st;
      while (!comm.iprobe(0, 1, &st)) {
      }
      EXPECT_EQ(st.bytes, 1 << 20);  // RTS carries the size
      std::vector<std::byte> buf(1 << 20);
      comm.recv(buf.data(), 1 << 20, kByte(), 0, 1);
      comm.barrier();
    }
  });
}

TEST(RequestApi, UnexpectedGpuRtsMatchedLater) {
  // A device RTS arriving before the receive is posted must be stashed
  // and then drive the full RDMA protocol when the recv appears.
  Runtime rt(two_ranks());
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto dt = core::lower_triangular_type(128, 128);
    const std::size_t span = 128 * 128 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    if (p.rank() == 0) {
      test::fill_pattern(buf, span, 61);
      comm.send(buf, 1, dt, 1, 0);
      comm.barrier();
    } else {
      // Let the RTS land unexpected first.
      Status st;
      while (!comm.iprobe(0, 0, &st)) {
      }
      EXPECT_EQ(st.bytes, dt->size());
      std::memset(buf, 0, span);
      comm.recv(buf, 1, dt, 0, 0);
      std::vector<std::byte> expect(span);
      test::fill_pattern(expect.data(), span, 61);
      EXPECT_EQ(test::reference_pack(dt, 1, buf),
                test::reference_pack(dt, 1, expect.data()));
      EXPECT_EQ(plugin->stats(p).rdma_pipelined, 1);
      comm.barrier();
    }
  });
}

TEST(RequestApi, EngineStatsAccumulate) {
  Runtime rt(two_ranks());
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);
  rt.run([&](Process& p) {
    Comm comm(p);
    auto tri = core::lower_triangular_type(128, 128);
    auto vec = core::submatrix_type(128, 32, 192);
    const std::size_t span = 192 * 128 * 8;
    auto* buf = static_cast<std::byte*>(sg::Malloc(p.gpu(), span));
    for (int i = 0; i < 2; ++i) {
      if (p.rank() == 0) {
        comm.send(buf, 1, tri, 1, 2 * i);
        comm.send(buf, 1, vec, 1, 2 * i + 1);
      } else {
        comm.recv(buf, 1, tri, 0, 2 * i);
        comm.recv(buf, 1, vec, 0, 2 * i + 1);
      }
    }
    comm.barrier();
    const auto& st = plugin->engine(p).stats();
    EXPECT_GT(st.kernels_launched, 0);
    if (p.rank() == 1) {
      EXPECT_GT(st.bytes_unpacked, 0);
      EXPECT_GT(st.units_converted, 0);    // first triangular transfer
      EXPECT_GT(st.units_from_cache, 0);   // second one hits the cache
      EXPECT_GT(st.vector_fast_path_ops, 0);
    }
  });
}

}  // namespace
}  // namespace gpuddt::mpi
