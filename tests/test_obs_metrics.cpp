// Tests for the observability layer (src/obs): metrics registry,
// histograms, trace buffer, JSON writer/parser, and the end-to-end dump
// that --metrics-out produces.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/canon.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace gpuddt::obs {
namespace {

TEST(Counter, AccumulatesAtomically) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.add(7);
  EXPECT_EQ(reg.counter("x").value(), 7);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_NE(&reg.counter("y"), &a);
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

TEST(Histogram, TracksMomentsAndQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.sum, 5050);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Log2 buckets: quantiles land on bucket upper bounds, so p50 of
  // 1..100 is somewhere in [32, 127] and p99 at or above 64.
  EXPECT_GE(s.quantile(0.5), 32.0);
  EXPECT_LE(s.quantile(0.5), 127.0);
  EXPECT_GE(s.quantile(0.99), 64.0);
}

TEST(Histogram, NearestRankHelperMatchesDefinition) {
  // rank = ceil(q * count), clamped to [1, count]: the exact nearest-rank
  // definition FlowStats uses for its percentiles (docs/latency.md).
  EXPECT_EQ(nearest_rank(0.5, 100), 50);
  EXPECT_EQ(nearest_rank(0.99, 100), 99);
  EXPECT_EQ(nearest_rank(0.999, 100), 100);
  EXPECT_EQ(nearest_rank(0.999, 10000), 9990);
  EXPECT_EQ(nearest_rank(0.0, 10), 1);   // clamped up
  EXPECT_EQ(nearest_rank(1.0, 10), 10);
  EXPECT_EQ(nearest_rank(0.5, 1), 1);
  EXPECT_EQ(nearest_rank(0.5, 0), 0);    // empty distribution
}

TEST(Histogram, QuantileNearestRankIsExactAndDeterministic) {
  // Unlike quantile() (approximate, frozen into the historic baselines),
  // quantile_nearest_rank answers with the log2 bucket bound of the
  // exact nearest-rank sample, clamped into [min, max] - repeat calls
  // are bit-identical and a quantile can never leave the observed range.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);   // bucket hi 15
  for (int i = 0; i < 9; ++i) h.record(100);   // bucket hi 127
  h.record(5000);                              // bucket hi 8191
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.quantile_nearest_rank(0.5), 15);    // rank 50: a 10
  EXPECT_EQ(s.quantile_nearest_rank(0.90), 15);   // rank 90: still a 10
  EXPECT_EQ(s.quantile_nearest_rank(0.99), 127);  // rank 99: a 100
  EXPECT_EQ(s.quantile_nearest_rank(0.999), 5000);  // rank 100: the max
  EXPECT_EQ(s.quantile_nearest_rank(1.0), 5000);
}

TEST(Histogram, QuantileNearestRankSingleValueIsExact) {
  Histogram h;
  h.record(42);
  const auto s = h.snapshot();
  EXPECT_EQ(s.quantile_nearest_rank(0.5), 42);
  EXPECT_EQ(s.quantile_nearest_rank(0.999), 42);
  EXPECT_EQ(Histogram().snapshot().quantile_nearest_rank(0.5), 0);
}

TEST(Histogram, EmptySnapshotIsInert) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(TraceBuffer, DisabledByDefaultAndBounded) {
  TraceBuffer buf(4);
  buf.record({"e", "c", 0, 1, 0, 0});
  EXPECT_EQ(buf.snapshot().size(), 0u);  // tracing off: no-op
  buf.enable(true);
  for (int i = 0; i < 6; ++i)
    buf.record({"e", "c", i, i + 1, 0, 0});
  EXPECT_EQ(buf.snapshot().size(), 4u);
  EXPECT_EQ(buf.dropped(), 2);
}

TEST(Json, ParsesNestedDocument) {
  const auto v = json::parse(
      R"({"a": [1, 2.5, -3], "s": "hi\nthere", "t": true, "n": null,)"
      R"( "o": {"k": 7}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(v.at("a").as_array()[2].as_int(), -3);
  EXPECT_EQ(v.at("s").as_string(), "hi\nthere");
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_EQ(v.at("n").kind(), json::Value::Kind::kNull);
  EXPECT_EQ(v.at("o").at("k").as_int(), 7);
  EXPECT_TRUE(v.contains("o"));
  EXPECT_FALSE(v.contains("missing"));
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const auto v = json::parse("\"" + json::escape(nasty) + "\"");
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(Recorder, ToJsonRoundTrips) {
  Recorder rec;
  rec.metrics().counter("engine.pack.bytes.dev").add(4096);
  rec.metrics().counter("dev_cache.hits").add(3);
  for (int i = 0; i < 10; ++i)
    rec.metrics().histogram("pml.rts_to_cts_ns").record(1000 + i);
  rec.enable_tracing(true);
  rec.trace().record({"dev_kernel", "engine", 10, 20, 0, 64});

  const auto doc = json::parse(rec.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "gpuddt-metrics-v1");
  EXPECT_EQ(doc.at("counters").at("engine.pack.bytes.dev").as_int(), 4096);
  EXPECT_EQ(doc.at("counters").at("dev_cache.hits").as_int(), 3);
  const auto& h = doc.at("histograms").at("pml.rts_to_cts_ns");
  EXPECT_EQ(h.at("count").as_int(), 10);
  EXPECT_EQ(h.at("min").as_int(), 1000);
  EXPECT_EQ(h.at("max").as_int(), 1009);
  EXPECT_GT(h.at("mean").as_double(), 999.0);
  const auto& events = doc.at("trace").at("events").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), "dev_kernel");
  EXPECT_EQ(events[0].at("begin").as_int(), 10);
  EXPECT_EQ(events[0].at("end").as_int(), 20);
}

TEST(Recorder, WriteJsonProducesParsableFile) {
  Recorder rec;
  rec.metrics().counter("a.b").add(1);
  rec.metrics().histogram("c.d").record(5);
  const std::string path =
      ::testing::TempDir() + "/gpuddt_metrics_test.json";
  ASSERT_TRUE(rec.write_json(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  EXPECT_EQ(doc.at("schema").as_string(), "gpuddt-metrics-v1");
  EXPECT_EQ(doc.at("counters").at("a.b").as_int(), 1);
  EXPECT_EQ(doc.at("histograms").at("c.d").at("count").as_int(), 1);
  std::remove(path.c_str());
}

TEST(Recorder, ClearDropsEverything) {
  Recorder rec;
  rec.metrics().counter("x").add(9);
  rec.metrics().histogram("y").record(2);
  rec.clear();
  const auto doc = json::parse(rec.to_json());
  EXPECT_TRUE(doc.at("counters").as_object().empty());
  EXPECT_TRUE(doc.at("histograms").as_object().empty());
}

TEST(Canon, DropsTraceAndInstrumentationMetrics) {
  Recorder rec;
  rec.enable_tracing(true);
  rec.metrics().counter("pml.frags").add(7);
  rec.metrics().counter("check.hazards").add(3);  // checker-only metric
  rec.metrics().histogram("check.lat").record(1);
  trace(&rec, {"ev", "cat", 0, 10, 0, 0});
  const std::string text = canonical_metrics(json::parse(rec.to_json()));
  EXPECT_NE(text.find("\"pml.frags\": 7"), std::string::npos);
  EXPECT_EQ(text.find("check."), std::string::npos);
  EXPECT_EQ(text.find("trace"), std::string::npos);
  EXPECT_EQ(text.find("ev"), std::string::npos);
}

TEST(Canon, IsInvariantToTraceAndCheckerState) {
  // The determinism harness compares a run with the checker/tracing off
  // against a run with them on; the canonical text must not move.
  Recorder plain;
  plain.metrics().counter("engine.bytes").add(4096);
  plain.metrics().histogram("lat").record(250);
  Recorder instrumented;
  instrumented.enable_tracing(true);
  instrumented.metrics().counter("engine.bytes").add(4096);
  instrumented.metrics().histogram("lat").record(250);
  instrumented.metrics().counter("check.ops").add(12);
  trace(&instrumented, {"op", "engine", 0, 5, 1, 0});
  EXPECT_EQ(canonical_metrics(json::parse(plain.to_json())),
            canonical_metrics(json::parse(instrumented.to_json())));
}

TEST(Canon, RejectsForeignDocuments) {
  EXPECT_THROW(canonical_metrics(json::parse("{\"schema\": \"other\"}")),
               std::runtime_error);
  EXPECT_THROW(
      canonical_metrics(json::parse(
          "{\"schema\": \"gpuddt-metrics-v1\", \"counters\": {}}")),
      std::runtime_error);
}

TEST(Canon, StableNumberFormatting) {
  // Integers (counter values, histogram fields) must round-trip through
  // the double-typed parser without drifting into exponent notation.
  const auto doc = json::parse(
      "{\"schema\": \"gpuddt-metrics-v1\","
      " \"counters\": {\"big\": 9007199254740991, \"neg\": -12},"
      " \"histograms\": {\"h\": {\"count\": 2, \"mean\": 1.5}}}");
  const std::string text = canonical_metrics(doc);
  EXPECT_NE(text.find("\"big\": 9007199254740991"), std::string::npos);
  EXPECT_NE(text.find("\"neg\": -12"), std::string::npos);
  EXPECT_NE(text.find("\"mean\":1.5"), std::string::npos);
}

TEST(ChromeTrace, RoundTripsThroughParser) {
  // A recorded op must export as a parseable Chrome Trace Event Format
  // array: ph:"X" complete events with monotone ts, non-negative dur,
  // the rank as pid, and named stage rows (docs/tracing.md).
  Recorder rec;
  rec.enable_tracing();
  // Deliberately out of order and with a negative-duration input event:
  // the exporter must sort and clamp.
  trace(&rec, {"convert_chunk", "engine", 3000, 5000, 0, 64, 1});
  trace(&rec, {"dev_kernel", "engine", 1000, 500, 0, 32, 1});
  trace(&rec, {"frag", "pml", 2000, 2000, 0, 4096, 0});
  trace(&rec, {"put", "rma", 500, 9000, 1, 1 << 20, 1});
  const json::Value doc = json::parse(rec.to_chrome_json());
  ASSERT_TRUE(doc.is_array());
  std::int64_t last_ts = -1;
  int complete = 0;
  for (const json::Value& ev : doc.as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph != "X") continue;
    ++complete;
    EXPECT_GE(ev.at("ts").as_double(), static_cast<double>(last_ts));
    last_ts = ev.at("ts").as_int();
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    EXPECT_GE(ev.at("pid").as_int(), 0);
  }
  EXPECT_EQ(complete, 4);
  // ts/dur are microseconds with the nanosecond clock preserved as the
  // fractional part: 500ns -> 0.5us.
  const std::string text = rec.to_chrome_json();
  EXPECT_NE(text.find("\"ts\": 0.500"), std::string::npos);
  // Rank as pid: the engine events carried pid=1 even though their tid
  // field holds the device.
  bool engine_on_pid1 = false;
  for (const json::Value& ev : doc.as_array())
    if (ev.at("ph").as_string() == "X" &&
        ev.at("cat").as_string() == "engine" && ev.at("pid").as_int() == 1)
      engine_on_pid1 = true;
  EXPECT_TRUE(engine_on_pid1);
}

TEST(ChromeTrace, NamesStageRowsAndProcesses) {
  Recorder rec;
  rec.enable_tracing();
  trace(&rec, {"convert_chunk", "engine", 0, 10, 0, 1, 0});
  trace(&rec, {"rdma_frag", "gpu", 5, 20, 1, 1, 1});
  const json::Value doc = json::parse(rec.to_chrome_json());
  bool saw_conv = false, saw_rdma = false, saw_proc = false;
  for (const json::Value& ev : doc.as_array()) {
    if (ev.at("ph").as_string() != "M") continue;
    const std::string& name = ev.at("name").as_string();
    const std::string& arg = ev.at("args").at("name").as_string();
    if (name == "thread_name" && arg == "conv") saw_conv = true;
    if (name == "thread_name" && arg == "RDMA GET") saw_rdma = true;
    if (name == "process_name" && arg == "rank 1") saw_proc = true;
  }
  EXPECT_TRUE(saw_conv);
  EXPECT_TRUE(saw_rdma);
  EXPECT_TRUE(saw_proc);
}

TEST(ChromeTrace, FlowEventsChainFragmentsAcrossRanks) {
  // Three spans sharing one fragment flow id (sender kernel -> receiver
  // RDMA GET -> receiver unpack) must export as args.flow on each X
  // event plus an s -> t -> f flow-event chain with the shared id, each
  // bound at its span's begin; a flow with a single member gets args.flow
  // but NO flow events (there is nothing to draw an arrow to).
  Recorder rec;
  rec.enable_tracing();
  const std::uint64_t flow = (1ull << 40) | (7ull << 20) | 3ull;
  trace(&rec, {"dev_kernel", "engine", 100, 200, 0, 64, 0, flow});
  trace(&rec, {"rdma_frag", "gpu", 250, 400, 1, 64, 1, flow});
  trace(&rec, {"host_frag_unpack", "gpu", 450, 500, 1, 64, 1, flow});
  trace(&rec, {"dev_kernel", "engine", 600, 700, 0, 64, 0, 42});
  const json::Value doc = json::parse(rec.to_chrome_json());
  int args_flow = 0;
  std::vector<std::string> phases;
  for (const json::Value& ev : doc.as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X" && ev.at("args").contains("flow")) ++args_flow;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    phases.push_back(ph);
    EXPECT_EQ(ev.at("name").as_string(), "frag_flow");
    EXPECT_EQ(static_cast<std::uint64_t>(ev.at("id").as_double()), flow);
    // Bind points ride the owning span's begin (keeps ts monotone).
    if (ph == "s") {
      EXPECT_EQ(ev.at("ts").as_double(), 0.100);
      EXPECT_EQ(ev.at("pid").as_int(), 0);
      EXPECT_FALSE(ev.contains("bp"));
    } else {
      EXPECT_EQ(ev.at("pid").as_int(), 1);
      EXPECT_EQ(ev.at("bp").as_string(), "e");
    }
  }
  EXPECT_EQ(args_flow, 4);  // every flow-carrying X, single-member too
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], "s");
  EXPECT_EQ(phases[1], "t");
  EXPECT_EQ(phases[2], "f");
}

TEST(V1Trace, FlowKeySerializedOnlyWhenSet) {
  // The v1 dump keeps trace events inline; a non-zero flow id must
  // round-trip through the JSON (as a < 2^53 number, exact in a double)
  // and a zero flow must not emit the key at all.
  Recorder rec;
  rec.enable_tracing();
  const std::uint64_t flow = (3ull << 40) | (1ull << 20) | 5ull;
  trace(&rec, {"frag", "pml", 0, 10, 0, 4096, 0, flow});
  trace(&rec, {"frag", "pml", 10, 20, 0, 4096, 0});
  const json::Value doc = json::parse(rec.to_json());
  const auto& events = doc.at("trace").at("events").as_array();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_TRUE(events[0].contains("flow"));
  EXPECT_EQ(static_cast<std::uint64_t>(events[0].at("flow").as_double()),
            flow);
  EXPECT_FALSE(events[1].contains("flow"));
}

TEST(StageProfile, TableUsesIntervalUnionOccupancy) {
  // Two overlapping kernels on one rank occupy [0, 150) - the union, not
  // the 200ns duration sum - so busy_% stays a true utilization.
  std::vector<TraceEvent> events;
  events.push_back({"dev_kernel", "engine", 0, 100, 0, 1, 0});
  events.push_back({"dev_kernel", "engine", 50, 150, 0, 1, 0});
  events.push_back({"frag", "pml", 100, 200, 1, 1, 1});
  const std::string table = stage_profile_table(events);
  EXPECT_NE(table.find("stage utilization over 200 virtual ns"),
            std::string::npos);
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("150"), std::string::npos);   // union, not 200
  EXPECT_NE(table.find("75.00%"), std::string::npos);  // 150 / 200
  EXPECT_NE(table.find("wire"), std::string::npos);
  EXPECT_NE(table.find("50.00%"), std::string::npos);  // 100 / 200
  EXPECT_TRUE(stage_profile_table({}).empty());
}

TEST(ChromeTrace, EmptyAndTruncatedBuffers) {
  Recorder rec;
  const json::Value empty = json::parse(rec.to_chrome_json());
  ASSERT_TRUE(empty.is_array());
  EXPECT_TRUE(empty.as_array().empty());
  // A full buffer must flag the truncation as an instant event.
  TraceBuffer tiny(/*max_events=*/1);
  tiny.enable();
  tiny.record({"a", "c", 0, 1, 0, 0});
  tiny.record({"b", "c", 1, 2, 0, 0});
  const json::Value doc =
      json::parse(chrome_trace_json(tiny.snapshot(), tiny.dropped()));
  bool truncated = false;
  for (const json::Value& ev : doc.as_array())
    if (ev.at("ph").as_string() == "i" &&
        ev.at("name").as_string() == "trace_truncated" &&
        ev.at("args").at("dropped").as_int() == 1)
      truncated = true;
  EXPECT_TRUE(truncated);
}

TEST(ChromeTrace, WriteChromeJsonProducesParsableFile) {
  Recorder rec;
  rec.enable_tracing();
  trace(&rec, {"put", "shmem", 100, 200, 0, 64, 0});
  const std::string path = "chrome_trace_test.json";
  ASSERT_TRUE(rec.write_chrome_json(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const json::Value doc = json::parse(ss.str());
  ASSERT_TRUE(doc.is_array());
  std::remove(path.c_str());
}

TEST(Recorder, GuardedHelpersIgnoreNull) {
  // The instrumentation sites pass nullable pointers; null must be a
  // silent no-op (production default).
  count(nullptr, "anything", 5);
  observe(nullptr, "anything", 5);
  trace(nullptr, {"e", "c", 0, 1, 0, 0});
  Recorder rec;
  count(&rec, "c", 2);
  observe(&rec, "h", 3);
  EXPECT_EQ(rec.metrics().counter("c").value(), 2);
  EXPECT_EQ(rec.metrics().histogram("h").snapshot().count, 1);
}

}  // namespace
}  // namespace gpuddt::obs
