// Tests for the streaming per-flow latency engine (src/obs/flowstats.h):
// span-to-flow assembly, multi-participant collective finalization, the
// flow-lifecycle leak rules (open flows and flow-less completions count
// as flowstats.dropped, never as percentiles), late-span accounting, the
// distinct-value cap, generation fences, and canonical-JSON idempotence
// of the gpuddt-latency-v1 serialization.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "mpi/pml.h"
#include "obs/canon.h"
#include "obs/flowstats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace gpuddt::obs {
namespace {

TraceEvent span(const char* name, const char* cat, std::int64_t begin,
                std::int64_t end, std::uint64_t flow) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.begin = begin;
  ev.end = end;
  ev.tid = 0;
  ev.flow = flow;
  return ev;
}

int stage_of(const char* short_name) {
  for (int i = 0; i < FlowStats::kStages; ++i)
    if (std::string(FlowStats::stage_name(i)) == short_name) return i;
  ADD_FAILURE() << "no stage named " << short_name;
  return -1;
}

TEST(FlowStats, AssemblesFragmentSpansIntoOneLogicalFlow) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  // Two fragments of one rendezvous send share the logical flow (upper
  // 44 bits of frag_flow); their spans union per stage.
  const std::uint64_t f0 = mpi::frag_flow(0, 1, 0);
  const std::uint64_t f1 = mpi::frag_flow(0, 1, 1);
  fs.on_span(span("dev_kernel", "engine", 100, 200, f0));
  fs.on_span(span("frag", "pml", 200, 300, f0));
  fs.on_span(span("dev_kernel", "engine", 250, 350, f1));
  fs.on_span(span("frag", "pml", 350, 450, f1));
  fs.complete({f0, "send", 0xabcu, 4096, -1, -1, 1});

  const FlowStats::Report rep = fs.report();
  EXPECT_EQ(rep.spans, 4);
  EXPECT_EQ(rep.flows, 1);
  EXPECT_EQ(rep.dropped, 0);
  ASSERT_EQ(rep.classes.size(), 1u);
  const auto& [key, cls] = *rep.classes.begin();
  // Class key: kind / shape digest / log2 size bucket.
  EXPECT_EQ(key.rfind("send/0000000000000abc/b", 0), 0u) << key;
  EXPECT_EQ(cls.count, 1);
  EXPECT_EQ(cls.bytes, 4096);
  // Window derived from the spans: 100..450.
  EXPECT_EQ(cls.p50, 350);
  EXPECT_EQ(cls.p99, 350);
  EXPECT_EQ(cls.max, 350);
  const int kernel = stage_of("kernel");
  const int wire = stage_of("wire");
  // Interval unions: kernel [100,200]+[250,350], wire [200,300]+[350,450].
  EXPECT_EQ(cls.work[kernel], 200);
  EXPECT_EQ(cls.work[wire], 200);
  EXPECT_EQ(cls.wait[kernel], 150);
  EXPECT_EQ(cls.wait[wire], 150);
  EXPECT_EQ(cls.stage_flows[kernel], 1);
  // One flow at p99: tail attribution picks its biggest stage (tied
  // kernel/wire resolve to the earlier pipeline stage).
  EXPECT_EQ(cls.tail_count, 1);
  EXPECT_EQ(cls.tail_threshold, 350);
  EXPECT_EQ(cls.tail_dominant, kernel);
}

TEST(FlowStats, OverlappingSpansUnionNotSum) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t f = mpi::frag_flow(1, 9, 0);
  fs.on_span(span("dev_kernel", "engine", 0, 100, f));
  fs.on_span(span("dev_kernel", "engine", 50, 150, f));
  fs.complete({f, "pack", 0, 64, -1, -1, 1});
  const auto rep = fs.report();
  const auto& cls = rep.classes.begin()->second;
  EXPECT_EQ(cls.work[stage_of("kernel")], 150);  // union, not 200
  EXPECT_EQ(cls.max, 150);
}

TEST(FlowStats, CollectiveFinalizesWhenAllParticipantsComplete) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t f = mpi::coll_flow(3, 1);
  fs.complete({f, "coll.bcast", 0x11u, 100, 1000, 2000, 3});
  fs.complete({f, "coll.bcast", 0x11u, 100, 1100, 2500, 3});
  EXPECT_EQ(fs.report().flows, 0);  // still open: 2 of 3 completions
  fs.complete({f, "coll.bcast", 0x11u, 100, 900, 2200, 3});
  const auto rep = fs.report();
  EXPECT_EQ(rep.flows, 1);
  ASSERT_EQ(rep.classes.size(), 1u);
  const auto& cls = rep.classes.begin()->second;
  // End-to-end window: earliest begin (900) to latest end (2500); bytes
  // accumulate across members.
  EXPECT_EQ(cls.max, 1600);
  EXPECT_EQ(cls.bytes, 300);
  EXPECT_EQ(cls.count, 1);
}

TEST(FlowStats, FlowlessCompletionCountsDroppedNotPercentiles) {
  // Eager sends complete with flow id 0: there is nothing to assemble,
  // so they must land in flowstats.dropped and leave every class alone.
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  fs.drop_unidentified();
  fs.drop_unidentified();
  const auto rep = fs.report();
  EXPECT_EQ(rep.dropped, 2);
  EXPECT_EQ(rep.flows, 0);
  EXPECT_TRUE(rep.classes.empty());
}

TEST(FlowStats, OpenFlowAtShutdownIsDroppedNotFolded) {
  // Leak regression: a seeded incomplete flow (spans recorded, layer
  // completion never arrives - a truncated run) must be counted in
  // flowstats.dropped at the generation fence and must never contribute
  // to any class's percentiles.
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t open_flow = mpi::frag_flow(0, 5, 0);
  const std::uint64_t done_flow = mpi::frag_flow(1, 6, 0);
  fs.on_span(span("dev_kernel", "engine", 0, 70, open_flow));
  fs.on_span(span("frag", "pml", 70, 900000, open_flow));  // huge outlier
  fs.on_span(span("dev_kernel", "engine", 0, 100, done_flow));
  fs.complete({done_flow, "send", 0x7u, 512, -1, -1, 1});
  fs.end_generation();  // Runtime teardown with open_flow still open

  const auto rep = fs.report();
  EXPECT_EQ(rep.dropped, 1);
  EXPECT_EQ(rep.flows, 1);
  ASSERT_EQ(rep.classes.size(), 1u);
  // The survivor's statistics are untouched by the dropped outlier.
  EXPECT_EQ(rep.classes.begin()->second.max, 100);
  EXPECT_EQ(reg.counter("flowstats.dropped").value(), 1);
}

TEST(FlowStats, LateSpanAfterFinalizationIsCountedNotFolded) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t f = mpi::frag_flow(0, 2, 0);
  fs.on_span(span("dev_kernel", "engine", 0, 100, f));
  fs.complete({f, "send", 0, 256, -1, -1, 1});
  // A straggler span for the already-finalized flow (e.g. the sender's
  // last fragment ack) must not reopen or skew the class.
  fs.on_span(span("frag", "pml", 100, 5000, f));
  const auto rep = fs.report();
  EXPECT_EQ(rep.late_spans, 1);
  EXPECT_EQ(rep.classes.begin()->second.max, 100);
}

TEST(FlowStats, DistinctValueCapCoarsensAndCounts) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  // More distinct e2e values in one class than kMaxDistinctValues (1024):
  // overflow values coarsen to their log2 bucket bound and count as
  // flowstats.capped; the flow count stays exact and percentiles ordered.
  const int n = 1200;
  for (int i = 0; i < n; ++i) {
    fs.complete({mpi::frag_flow(0, static_cast<std::uint64_t>(i + 1), 0),
                 "send", 0x1u, 64, 0, 1000 + i, 1});
  }
  const auto rep = fs.report();
  EXPECT_GT(rep.capped, 0);
  ASSERT_EQ(rep.classes.size(), 1u);
  const auto& cls = rep.classes.begin()->second;
  EXPECT_EQ(cls.count, n);
  EXPECT_LE(cls.p50, cls.p99);
  EXPECT_LE(cls.p99, cls.p999);
  EXPECT_LE(cls.p999, cls.max);
  EXPECT_EQ(reg.counter("flowstats.capped").value(), rep.capped);
}

TEST(FlowStats, GenerationFenceUnaliasesRestartedFlowIds) {
  // Send ids restart when a new Runtime is built: the same frag_flow
  // value in the next generation is a NEW flow, not a late span of the
  // finalized one.
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t f = mpi::frag_flow(0, 1, 0);
  fs.begin_generation();
  fs.on_span(span("dev_kernel", "engine", 0, 10, f));
  fs.complete({f, "send", 0, 32, -1, -1, 1});
  fs.end_generation();
  fs.begin_generation();  // next Runtime: ids restart
  fs.on_span(span("dev_kernel", "engine", 0, 20, f));
  fs.complete({f, "send", 0, 32, -1, -1, 1});
  fs.end_generation();
  const auto rep = fs.report();
  EXPECT_EQ(rep.late_spans, 0);
  EXPECT_EQ(rep.flows, 2);
  EXPECT_EQ(rep.classes.begin()->second.count, 2);
}

TEST(FlowStats, ToJsonIsCanonicalAndIdempotent) {
  Registry reg;
  FlowStats fs(&reg);
  fs.enable(true);
  const std::uint64_t f = mpi::frag_flow(0, 3, 0);
  fs.on_span(span("dev_kernel", "engine", 10, 50, f));
  fs.on_span(span("frag", "pml", 50, 90, f));
  fs.complete({f, "send", 0xbeefu, 2048, -1, -1, 1});
  fs.drop_unidentified();
  const std::string text = fs.to_json();
  // Serialize -> parse -> canonicalize must be byte-identical: the
  // report IS its canonical form (the baseline gate depends on this).
  EXPECT_EQ(canonical_latency(json::parse(text)), text);
  // And canonical_report dispatches latency documents to the same form.
  EXPECT_EQ(canonical_report(json::parse(text)), text);
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "gpuddt-latency-v1");
  EXPECT_EQ(doc.at("flowstats").at("flows").as_int(), 1);
  EXPECT_EQ(doc.at("flowstats").at("dropped").as_int(), 1);
  ASSERT_EQ(doc.at("classes").as_object().size(), 1u);
  const auto& cls = doc.at("classes").as_object().begin()->second;
  EXPECT_EQ(cls.at("e2e").at("max").as_int(), 80);
  EXPECT_EQ(cls.at("stages").at("kernel").at("work").as_int(), 40);
  EXPECT_EQ(cls.at("stages").at("wire").at("work").as_int(), 40);
}

TEST(FlowStats, DisabledEngineRecordsNothing) {
  // With the engine off (the default), spans and completions are no-ops
  // and no flowstats.* instruments appear in the registry - historic
  // metrics baselines must not change when code paths are merely built.
  Registry reg;
  FlowStats fs(&reg);
  const std::uint64_t f = mpi::frag_flow(0, 1, 0);
  fs.on_span(span("dev_kernel", "engine", 0, 10, f));
  fs.complete({f, "send", 0, 32, -1, -1, 1});
  fs.drop_unidentified();
  const auto rep = fs.report();
  EXPECT_EQ(rep.spans, 0);
  EXPECT_EQ(rep.flows, 0);
  EXPECT_EQ(rep.dropped, 0);
  const json::Value doc = json::parse(Recorder().to_json());
  EXPECT_TRUE(doc.at("counters").as_object().empty());
}

TEST(Recorder, TraceHelperFeedsFlowStatsEvenWithTracingOff) {
  // obs::trace hands flow-stamped spans to FlowStats before the ring
  // buffer: latency assembly must work with tracing disabled entirely.
  Recorder rec;
  rec.flowstats().enable(true);
  const std::uint64_t f = mpi::frag_flow(0, 4, 0);
  trace(&rec, {"dev_kernel", "engine", 0, 60, 0, 64, 0, f});
  rec.flowstats().complete({f, "send", 0, 64, -1, -1, 1});
  EXPECT_TRUE(rec.trace().snapshot().empty());  // tracing stayed off
  const auto rep = rec.flowstats().report();
  EXPECT_EQ(rep.flows, 1);
  EXPECT_EQ(rep.classes.begin()->second.max, 60);
  // write_latency_json emits the canonical report to disk.
  const std::string path = ::testing::TempDir() + "/gpuddt_latency_test.json";
  ASSERT_TRUE(rec.write_latency_json(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpuddt::obs
