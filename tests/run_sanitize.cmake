# Configure, build and ctest the suite with -DGPUDDT_SANITIZE=<mode> in a
# nested build tree. Invoked by the sanitize_suite / sanitize_suite_thread
# CTest entries (gated behind GPUDDT_CI_TESTS) and by tools/ci.sh.
#
# cmake -DSRC_DIR=... -DBIN_DIR=... [-DSANITIZE=ON|thread]
#       [-DTESTS_REGEX=<ctest -R filter>] -P run_sanitize.cmake

if(NOT SRC_DIR OR NOT BIN_DIR)
  message(FATAL_ERROR "run_sanitize.cmake: SRC_DIR and BIN_DIR required")
endif()
if(NOT SANITIZE)
  set(SANITIZE ON)
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SRC_DIR} -B ${BIN_DIR}
          -DGPUDDT_SANITIZE=${SANITIZE} -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sanitize configure failed")
endif()

include(ProcessorCount)
ProcessorCount(NPROC)
if(NPROC EQUAL 0)
  set(NPROC 4)
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BIN_DIR} -j ${NPROC}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sanitize build failed")
endif()

set(filter -E sanitize_suite)
if(TESTS_REGEX)
  list(APPEND filter -R ${TESTS_REGEX})
endif()

execute_process(
  COMMAND ctest --test-dir ${BIN_DIR} --output-on-failure -j ${NPROC}
          ${filter}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sanitize test run failed")
endif()
