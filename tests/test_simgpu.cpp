#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simgpu/arena.h"
#include "simgpu/machine.h"
#include "simgpu/runtime.h"
#include "simgpu/stream.h"
#include "test_helpers.h"

namespace gpuddt::sg {
namespace {

// --- Arena ---------------------------------------------------------------------

TEST(Arena, AllocateReturnsAlignedPointers) {
  Arena a(1 << 20);
  void* p = a.allocate(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlign, 0u);
  void* q = a.allocate(100);
  EXPECT_NE(p, q);
}

TEST(Arena, ContainsDetectsOwnership) {
  Arena a(1 << 16);
  std::byte* p = a.allocate(64);
  EXPECT_TRUE(a.contains(p));
  EXPECT_TRUE(a.contains(p + 63));
  int x;
  EXPECT_FALSE(a.contains(&x));
}

TEST(Arena, FreeingCoalescesNeighbors) {
  Arena a(4096);
  // Fill the arena, free everything, and re-allocate the full size.
  std::byte* p1 = a.allocate(1024);
  std::byte* p2 = a.allocate(1024);
  std::byte* p3 = a.allocate(1024);
  a.deallocate(p2);
  a.deallocate(p1);
  a.deallocate(p3);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_NO_THROW(a.allocate(4096));
}

TEST(Arena, ExhaustionThrowsBadAlloc) {
  Arena a(4096);
  a.allocate(4096);
  EXPECT_THROW(a.allocate(1), std::bad_alloc);
}

TEST(Arena, DoubleFreeThrows) {
  Arena a(4096);
  std::byte* p = a.allocate(64);
  a.deallocate(p);
  EXPECT_THROW(a.deallocate(p), std::invalid_argument);
}

TEST(Arena, AllocationSizeTracksRoundedSize) {
  Arena a(1 << 16);
  std::byte* p = a.allocate(100);
  EXPECT_GE(a.allocation_size(p), 100u);
  EXPECT_EQ(a.allocation_size(p + 1), 0u);  // interior pointer
}

// --- Machine / registry ----------------------------------------------------------

TEST(Machine, ClassifiesDevicePointersPerDevice) {
  Machine m(test::machine_config(2));
  HostContext c0(m, 0), c1(m, 1);
  void* d0 = Malloc(c0, 256);
  void* d1 = Malloc(c1, 256);
  EXPECT_EQ(m.query(d0).space, MemorySpace::kDevice);
  EXPECT_EQ(m.query(d0).device, 0);
  EXPECT_EQ(m.query(d1).device, 1);
}

TEST(Machine, ClassifiesHostAllocations) {
  Machine m;
  HostContext c(m, 0);
  void* pinned = HostAlloc(c, 128, false);
  void* mapped = HostAlloc(c, 128, true);
  int stack_var = 0;
  EXPECT_EQ(m.query(pinned).space, MemorySpace::kPinnedHost);
  EXPECT_EQ(m.query(mapped).space, MemorySpace::kMappedHost);
  EXPECT_EQ(m.query(&stack_var).space, MemorySpace::kUnregisteredHost);
  HostFree(c, pinned);
  HostFree(c, mapped);
}

TEST(Machine, InteriorHostPointerResolves) {
  Machine m;
  HostContext c(m, 0);
  auto* p = static_cast<std::byte*>(HostAlloc(c, 128, true));
  EXPECT_EQ(m.query(p + 64).space, MemorySpace::kMappedHost);
  EXPECT_EQ(m.query(p + 128).space, MemorySpace::kUnregisteredHost);
  HostFree(c, p);
}

TEST(Machine, FreeRejectsNonDevicePointer) {
  Machine m;
  HostContext c(m, 0);
  int x;
  EXPECT_THROW(Free(c, &x), std::invalid_argument);
}

// --- Copies: functional + timing --------------------------------------------------

class CopyTest : public ::testing::Test {
 protected:
  Machine m{test::machine_config(2)};
  HostContext ctx{m, 0};
};

TEST_F(CopyTest, H2DandD2HRoundTripBytes) {
  std::vector<std::byte> host(4096);
  test::fill_pattern(host.data(), host.size(), 1);
  void* dev = Malloc(ctx, 4096);
  Memcpy(ctx, dev, host.data(), 4096);
  std::vector<std::byte> back(4096);
  Memcpy(ctx, back.data(), dev, 4096);
  EXPECT_EQ(std::memcmp(host.data(), back.data(), 4096), 0);
}

TEST_F(CopyTest, H2DCostsPcieTime) {
  std::vector<std::byte> host(1 << 20);
  void* dev = Malloc(ctx, 1 << 20);
  const vt::Time t0 = ctx.clock.now();
  Memcpy(ctx, dev, host.data(), 1 << 20);
  const vt::Time dt = ctx.clock.now() - t0;
  const vt::Time expected = vt::transfer_time(1 << 20, ctx.cost().pcie_h2d_gbps);
  EXPECT_GT(dt, expected);  // overheads included
  EXPECT_LT(dt, expected + vt::usec(30));
}

TEST_F(CopyTest, D2DUsesFullDeviceBandwidth) {
  void* a = Malloc(ctx, 1 << 20);
  void* b = Malloc(ctx, 1 << 20);
  const vt::Time t0 = ctx.clock.now();
  Memcpy(ctx, b, a, 1 << 20);
  const vt::Time d2d = ctx.clock.now() - t0;
  // D2D is far faster than the PCI-E copy of the same size.
  EXPECT_LT(d2d, vt::transfer_time(1 << 20, ctx.cost().pcie_h2d_gbps));
}

TEST_F(CopyTest, PeerCopyReservesBothPcieLinks) {
  HostContext ctx1(m, 1);
  void* a = Malloc(ctx, 1 << 20);
  void* b = Malloc(ctx1, 1 << 20);
  Memcpy(ctx, b, a, 1 << 20);  // peer d2d
  EXPECT_GT(m.device(0).pcie().total_busy(), 0);
  EXPECT_GT(m.device(1).pcie().total_busy(), 0);
}

TEST_F(CopyTest, HostToHostAdvancesOnlyCpuTime) {
  std::vector<std::byte> a(1 << 20), b(1 << 20);
  const vt::Time t0 = ctx.clock.now();
  Memcpy(ctx, b.data(), a.data(), 1 << 20);
  EXPECT_EQ(ctx.clock.now() - t0,
            ctx.cost().cpu_copy_ns(1 << 20));
  EXPECT_EQ(m.device(0).pcie().total_busy(), 0);
}

TEST_F(CopyTest, ZeroByteCopyIsFree) {
  void* dev = Malloc(ctx, 64);
  const vt::Time t0 = ctx.clock.now();
  Memcpy(ctx, dev, dev, 0);
  EXPECT_EQ(ctx.clock.now(), t0);
}

TEST_F(CopyTest, MemsetFillsDeviceMemory) {
  auto* dev = static_cast<std::byte*>(Malloc(ctx, 256));
  Memset(ctx, dev, 0xAB, 256);
  for (int i = 0; i < 256; ++i)
    EXPECT_EQ(std::to_integer<int>(dev[i]), 0xAB);
}

// --- Memcpy2D ----------------------------------------------------------------------

TEST_F(CopyTest, Memcpy2DMovesRowsFunctionally) {
  const std::size_t spitch = 64, dpitch = 32, width = 32, rows = 8;
  std::vector<std::byte> src(spitch * rows), dst(dpitch * rows);
  test::fill_pattern(src.data(), src.size(), 3);
  Memcpy2D(ctx, dst.data(), dpitch, src.data(), spitch, width, rows);
  for (std::size_t r = 0; r < rows; ++r)
    EXPECT_EQ(std::memcmp(dst.data() + r * dpitch, src.data() + r * spitch,
                          width),
              0);
}

TEST_F(CopyTest, Memcpy2DRejectsWidthBeyondPitch) {
  std::vector<std::byte> a(1024), b(1024);
  EXPECT_THROW(Memcpy2D(ctx, a.data(), 16, b.data(), 64, 32, 4),
               std::invalid_argument);
}

TEST_F(CopyTest, Memcpy2DMisalignedWidthIsSlower) {
  // Same total payload; 64B-multiple rows vs. off-granule rows.
  const std::size_t rows = 1024;
  void* dev = Malloc(ctx, 256 * rows);
  std::vector<std::byte> host(256 * rows);
  HostContext c1(m, 0);
  const vt::Time t0 = c1.clock.now();
  Memcpy2D(c1, host.data(), 256, dev, 256, 128, rows);
  const vt::Time aligned = c1.clock.now() - t0;
  const vt::Time t1 = c1.clock.now();
  Memcpy2D(c1, host.data(), 256, dev, 256, 120, rows);
  const vt::Time misaligned = c1.clock.now() - t1;
  EXPECT_GT(misaligned, aligned);
}

// --- Streams, events, kernels --------------------------------------------------------

TEST_F(CopyTest, StreamOperationsSerializeInVirtualTime) {
  Stream s(&m.device(0));
  void* a = Malloc(ctx, 1 << 20);
  void* b = Malloc(ctx, 1 << 20);
  std::vector<std::byte> h(1 << 20);
  const vt::Time f1 = MemcpyAsync(ctx, a, h.data(), 1 << 20, s);
  const vt::Time f2 = MemcpyAsync(ctx, b, h.data(), 1 << 20, s);
  EXPECT_GT(f2, f1);
  EXPECT_EQ(s.tail(), f2);
}

TEST_F(CopyTest, StreamSynchronizeAdvancesHostClock) {
  Stream s(&m.device(0));
  void* a = Malloc(ctx, 1 << 20);
  std::vector<std::byte> h(1 << 20);
  const vt::Time f = MemcpyAsync(ctx, a, h.data(), 1 << 20, s);
  EXPECT_LT(ctx.clock.now(), f);  // async: host ran ahead
  StreamSynchronize(ctx, s);
  EXPECT_GE(ctx.clock.now(), f);
}

TEST_F(CopyTest, EventsOrderStreams) {
  Stream s1(&m.device(0)), s2(&m.device(0));
  void* a = Malloc(ctx, 1 << 20);
  std::vector<std::byte> h(1 << 20);
  MemcpyAsync(ctx, a, h.data(), 1 << 20, s1);
  const Event e = EventRecord(ctx, s1);
  StreamWaitEvent(ctx, s2, e);
  const vt::Time f2 = MemcpyAsync(ctx, a, h.data(), 1 << 20, s2);
  EXPECT_GE(f2, e.timestamp);
}

TEST_F(CopyTest, KernelBodyRunsAndProfileSetsDuration) {
  Stream s(&m.device(0));
  bool ran = false;
  KernelProfile prof;
  prof.device_txn_bytes = 1 << 20;
  prof.blocks = 64;
  const vt::Time finish = LaunchKernel(ctx, s, prof, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(finish - ctx.clock.now(),
            ctx.cost().kernel_launch_ns / 2);
}

TEST_F(CopyTest, NarrowKernelIsComputeBound) {
  const CostModel& cm = ctx.cost();
  KernelProfile narrow;
  narrow.device_txn_bytes = 100 << 20;
  narrow.blocks = 1;
  KernelProfile wide = narrow;
  wide.blocks = 15;
  const vt::Time t_narrow = KernelDuration(cm, narrow, 15);
  const vt::Time t_wide = KernelDuration(cm, wide, 15);
  EXPECT_GT(t_narrow, 3 * t_wide);
}

TEST_F(CopyTest, ConcurrentKernelsContendForSms) {
  Stream s1(&m.device(0)), s2(&m.device(0));
  KernelProfile big;
  big.device_txn_bytes = 100 << 20;
  big.blocks = 64;  // full width
  const vt::Time f1 = LaunchKernel(ctx, s1, big, [] {});
  const vt::Time f2 = LaunchKernel(ctx, s2, big, [] {});
  // Full-width kernels cannot overlap: the second queues behind the first.
  EXPECT_GE(f2, f1);
}

TEST_F(CopyTest, ZeroCopyKernelHoldsPcieLink) {
  Stream s(&m.device(0));
  KernelProfile prof;
  prof.device_txn_bytes = 1 << 20;
  prof.pcie_bytes = 1 << 20;
  prof.pcie_dir = PcieDir::kToHost;
  prof.blocks = 15;
  LaunchKernel(ctx, s, prof, [] {});
  EXPECT_GT(m.device(0).pcie().total_busy(), 0);
}

// --- IPC --------------------------------------------------------------------------------

TEST_F(CopyTest, IpcHandleRoundTripsAcrossContexts) {
  auto* dev = static_cast<std::byte*>(Malloc(ctx, 512));
  test::fill_pattern(dev, 512, 9);
  const IpcMemHandle h = IpcGetMemHandle(ctx, dev);
  HostContext peer(m, 1);
  auto* mapped = static_cast<std::byte*>(IpcOpenMemHandle(peer, h));
  EXPECT_EQ(mapped, dev);  // same simulated address space
  EXPECT_EQ(std::memcmp(mapped, dev, 512), 0);
}

TEST_F(CopyTest, IpcOpenCostsTime) {
  void* dev = Malloc(ctx, 64);
  const IpcMemHandle h = IpcGetMemHandle(ctx, dev);
  HostContext peer(m, 1);
  const vt::Time t0 = peer.clock.now();
  IpcOpenMemHandle(peer, h);
  EXPECT_EQ(peer.clock.now() - t0, ctx.cost().ipc_open_ns);
}

TEST_F(CopyTest, IpcGetHandleRejectsHostPointer) {
  int x;
  EXPECT_THROW(IpcGetMemHandle(ctx, &x), std::invalid_argument);
}

// --- TimedCopy ------------------------------------------------------------------------------

TEST_F(CopyTest, TimedCopyRespectsDependency) {
  void* a = Malloc(ctx, 4096);
  void* b = Malloc(ctx, 4096);
  const vt::Time f = TimedCopy(ctx, b, a, 4096, vt::usec(500));
  EXPECT_GE(f, vt::usec(500));
}

TEST_F(CopyTest, TimedCopyDoesNotBlockHostClock) {
  void* a = Malloc(ctx, 1 << 20);
  void* b = Malloc(ctx, 1 << 20);
  const vt::Time t0 = ctx.clock.now();
  TimedCopy(ctx, b, a, 1 << 20, 0);
  EXPECT_EQ(ctx.clock.now(), t0);
}

}  // namespace
}  // namespace gpuddt::sg

namespace gpuddt::sg {
namespace {

TEST(Memcpy3D, MovesPitched3DBlocks) {
  Machine m;
  HostContext ctx(m, 0);
  const std::size_t w = 24, h = 4, d = 3;
  const std::size_t spitch = 32, sslice = spitch * h + 64;
  const std::size_t dpitch = 24, dslice = dpitch * h;
  std::vector<std::byte> src(sslice * d), dst(dslice * d);
  test::fill_pattern(src.data(), src.size(), 77);
  Memcpy3D(ctx, dst.data(), dpitch, dslice, src.data(), spitch, sslice, w, h,
           d);
  for (std::size_t z = 0; z < d; ++z)
    for (std::size_t r = 0; r < h; ++r)
      EXPECT_EQ(std::memcmp(dst.data() + z * dslice + r * dpitch,
                            src.data() + z * sslice + r * spitch, w),
                0);
}

TEST(Memcpy3D, RejectsBadPitches) {
  Machine m;
  HostContext ctx(m, 0);
  std::vector<std::byte> a(1024), b(1024);
  EXPECT_THROW(
      Memcpy3D(ctx, a.data(), 8, 64, b.data(), 16, 64, 12, 4, 2),
      std::invalid_argument);
}

TEST(Memcpy3D, ChargesPerSliceTime) {
  Machine m;
  HostContext ctx(m, 0);
  void* dev = Malloc(ctx, 1 << 20);
  std::vector<std::byte> host(1 << 20);
  const vt::Time t0 = ctx.clock.now();
  Memcpy3D(ctx, host.data(), 1024, 1024 * 64, dev, 1024, 1024 * 64, 1024, 64,
           4);
  // Four D2H slices of 64KB each: at least the PCI-E time of 256KB.
  EXPECT_GT(ctx.clock.now() - t0, vt::transfer_time(256 << 10, 11.0));
}

}  // namespace
}  // namespace gpuddt::sg
