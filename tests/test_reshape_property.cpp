// Property sweep: ANY two layouts with identical signatures (here: N
// doubles) may be used as the two ends of one transfer, and the packed
// byte stream must be preserved exactly - the on-the-fly reshape that
// Figure 11 and the transpose stress test are special cases of.
//
// Each seed generates two independent random layouts of the same N
// doubles (random hindexed partitions with random gaps, random vector
// factorizations, contiguous, or transpose-like single-element vectors)
// and runs the transfer device-to-device across randomized transports.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "core/layouts.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "test_helpers.h"

namespace gpuddt {
namespace {

/// A random layout holding exactly `n` doubles.
mpi::DatatypePtr random_layout_of_n_doubles(std::mt19937& rng,
                                            std::int64_t n) {
  using mpi::Datatype;
  std::uniform_int_distribution<int> kind(0, 3);
  switch (kind(rng)) {
    case 0:
      return Datatype::contiguous(n, mpi::kDouble());
    case 1: {  // vector factorization n = count * blocklen
      std::vector<std::int64_t> divisors;
      for (std::int64_t d = 1; d * d <= n; ++d)
        if (n % d == 0) {
          divisors.push_back(d);
          divisors.push_back(n / d);
        }
      std::uniform_int_distribution<std::size_t> pick(0, divisors.size() - 1);
      const std::int64_t bl = divisors[pick(rng)];
      const std::int64_t count = n / bl;
      std::uniform_int_distribution<std::int64_t> gap(0, 7);
      return Datatype::vector(count, bl, bl + gap(rng), mpi::kDouble());
    }
    case 2: {  // random partition with random gaps -> indexed
      std::vector<std::int64_t> lens, displs;
      std::int64_t left = n, at = 0;
      std::uniform_int_distribution<std::int64_t> blk(1, 37);
      std::uniform_int_distribution<std::int64_t> gap(0, 11);
      while (left > 0) {
        const std::int64_t l = std::min(blk(rng), left);
        lens.push_back(l);
        displs.push_back(at);
        at += l + gap(rng);
        left -= l;
      }
      return Datatype::indexed(lens, displs, mpi::kDouble());
    }
    default: {  // transpose-like: n single-element columns, strided
      std::uniform_int_distribution<std::int64_t> stride(2, 5);
      return Datatype::vector(n, 1, stride(rng), mpi::kDouble());
    }
  }
}

class ReshapeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReshapeProperty, PackedStreamSurvivesAnyLayoutPair) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729 + 7);
  std::uniform_int_distribution<std::int64_t> n_dist(64, 4096);
  const std::int64_t n = n_dist(rng);
  auto send_dt = random_layout_of_n_doubles(rng, n);
  auto recv_dt = random_layout_of_n_doubles(rng, n);
  ASSERT_EQ(send_dt->signature().hash(), recv_dt->signature().hash());

  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = 128u << 20;
  cfg.progress_timeout_ms = 15000;
  // Randomize the transport so every protocol sees these layouts.
  if (GetParam() % 3 == 1) cfg.ranks_per_node = 1;
  if (GetParam() % 4 == 2) cfg.ipc_enabled = false;
  if (GetParam() % 5 == 3) cfg.zero_copy = false;
  cfg.gpu_frag_bytes = 1u << (12 + GetParam() % 5);
  cfg.gpu_eager_limit = (GetParam() % 2) ? 16 * 1024 : 0;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    if (p.rank() == 0) {
      const std::int64_t span = test::span_bytes(send_dt, 1);
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
      test::fill_pattern(buf, static_cast<std::size_t>(span),
                         static_cast<std::uint32_t>(GetParam()));
      comm.send(buf - send_dt->true_lb(), 1, send_dt, 1, 0);
    } else {
      const std::int64_t span = test::span_bytes(recv_dt, 1);
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
      std::memset(buf, 0, static_cast<std::size_t>(span));
      std::byte* base = buf - recv_dt->true_lb();
      comm.recv(base, 1, recv_dt, 0, 0);

      const std::int64_t sspan = test::span_bytes(send_dt, 1);
      std::vector<std::byte> sent(static_cast<std::size_t>(sspan));
      test::fill_pattern(sent.data(), sent.size(),
                         static_cast<std::uint32_t>(GetParam()));
      EXPECT_EQ(test::reference_pack(recv_dt, 1, base),
                test::reference_pack(send_dt, 1,
                                     sent.data() - send_dt->true_lb()))
          << "send=" << send_dt->describe_tree()
          << " recv=" << recv_dt->describe_tree();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReshapeProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace gpuddt
