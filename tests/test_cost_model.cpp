// Unit tests of the calibrated cost model itself: the arithmetic every
// timing figure rests on.
#include <gtest/gtest.h>

#include "simgpu/cost_model.h"
#include "simgpu/runtime.h"

namespace gpuddt::sg {
namespace {

TEST(CostModel, TransactionLineCounting) {
  CostModel cm;
  EXPECT_EQ(cm.txn_lines(0, 0), 0);
  EXPECT_EQ(cm.txn_lines(0, 1), 1);
  EXPECT_EQ(cm.txn_lines(0, 128), 1);
  EXPECT_EQ(cm.txn_lines(0, 129), 2);
  EXPECT_EQ(cm.txn_lines(127, 2), 2);    // straddles a line boundary
  EXPECT_EQ(cm.txn_lines(8, 1024), 9);   // misaligned 1KB: 9 lines
  EXPECT_EQ(cm.txn_lines(128, 1024), 8); // aligned 1KB: 8 lines
}

TEST(CostModel, D2DCopyCountsBothDirections) {
  CostModel cm;
  // duration = 2*bytes / gpu_mem_gbps
  EXPECT_EQ(cm.d2d_copy_ns(360), 2);
  EXPECT_EQ(cm.d2d_copy_ns(0), 0);
}

TEST(CostModel, PcieAsymmetry) {
  CostModel cm;
  EXPECT_GT(cm.h2d_ns(1 << 20), 0);
  // d2h is configured slightly faster than h2d on this platform.
  EXPECT_LE(cm.d2h_ns(1 << 20), cm.h2d_ns(1 << 20));
}

TEST(CostModel, KernelDurationMemoryBoundAtFullWidth) {
  CostModel cm;
  KernelProfile prof;
  prof.device_txn_bytes = 64 << 20;
  prof.blocks = 64;
  const vt::Time d = KernelDuration(cm, prof, 15);
  const vt::Time mem = static_cast<vt::Time>(
      static_cast<double>(vt::transfer_time(64 << 20, cm.gpu_mem_gbps)) *
      (1.0 + cm.kernel_mem_inefficiency));
  EXPECT_EQ(d, cm.kernel_launch_ns + mem);
}

TEST(CostModel, KernelDurationComputeBoundWhenNarrow) {
  CostModel cm;
  KernelProfile prof;
  prof.device_txn_bytes = 64 << 20;
  prof.blocks = 1;
  const vt::Time d = KernelDuration(cm, prof, 15);
  const vt::Time compute = vt::transfer_time(64 << 20, cm.sm_copy_gbps);
  EXPECT_EQ(d, cm.kernel_launch_ns + compute);
}

TEST(CostModel, KernelDurationScalesWithWidthUntilSaturation) {
  CostModel cm;
  KernelProfile prof;
  prof.device_txn_bytes = 64 << 20;
  vt::Time prev = 0;
  for (int blocks : {1, 2, 4, 8}) {
    prof.blocks = blocks;
    const vt::Time d = KernelDuration(cm, prof, 15);
    if (prev != 0) {
      EXPECT_LT(d, prev);
    }
    prev = d;
  }
  // Beyond memory saturation, wider stops helping.
  prof.blocks = 15;
  const vt::Time full = KernelDuration(cm, prof, 15);
  prof.blocks = 64;
  EXPECT_EQ(KernelDuration(cm, prof, 15), full);
}

TEST(CostModel, ZeroCopyKernelBoundedByPcie) {
  CostModel cm;
  KernelProfile prof;
  prof.device_txn_bytes = 1 << 20;
  prof.pcie_bytes = 64 << 20;  // pcie side dominates
  prof.pcie_dir = PcieDir::kToHost;
  prof.blocks = 15;
  const vt::Time d = KernelDuration(cm, prof, 15);
  EXPECT_EQ(d, cm.kernel_launch_ns +
                   vt::transfer_time(64 << 20, cm.pcie_d2h_gbps));
}

TEST(CostModel, PeerKernelSlowerThanDmaPeerCopy) {
  // Kernels dereferencing IPC-mapped peer memory get less bandwidth than
  // the DMA peer copy - the reason the receiver stages locally.
  CostModel cm;
  EXPECT_LT(cm.kernel_peer_gbps, cm.pcie_peer_gbps);
}

TEST(CostModel, SmArrayCanSaturateMemory) {
  // 15 SMs x sm_copy_gbps must exceed the memory system's effective rate,
  // otherwise full-width kernels would be compute bound and Figure 6's
  // 94% could never be reached.
  CostModel cm;
  EXPECT_GT(15.0 * cm.sm_copy_gbps,
            cm.gpu_mem_gbps * (1.0 + cm.kernel_mem_inefficiency));
}

TEST(CostModel, ConversionCheaperThanCopyPerByte) {
  // Emitting one descriptor (covering up to S bytes) must cost far less
  // than moving those bytes over PCI-E, or pipelining could never win.
  CostModel cm;
  const double emit_per_byte = cm.cpu_dev_emit_ns / 1024.0;
  const double pcie_per_byte = 1.0 / cm.pcie_d2h_gbps;
  EXPECT_LT(emit_per_byte, pcie_per_byte);
}

TEST(CostModel, Memcpy2dGranulePenaltyConfigured) {
  CostModel cm;
  EXPECT_EQ(cm.memcpy2d_granule, 64);
  EXPECT_GT(cm.memcpy2d_misaligned_penalty, 1.0);
}

}  // namespace
}  // namespace gpuddt::sg
