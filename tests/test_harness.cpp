// Unit tests of the measurement harness itself (src/harness): the
// figures' numbers are only as trustworthy as these runners.
#include <gtest/gtest.h>

#include "core/layouts.h"
#include "harness/harness.h"

namespace gpuddt::harness {
namespace {

sg::MachineConfig small_machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = 256u << 20;
  return m;
}

TEST(Harness, PingPongReportsPlausibleBandwidth) {
  PingPongSpec spec;
  spec.cfg.world_size = 2;
  spec.cfg.machine = small_machine();
  spec.dt0 = spec.dt1 = mpi::Datatype::contiguous(1 << 20, mpi::kDouble());
  const auto res = run_pingpong(spec);
  EXPECT_EQ(res.message_bytes, 8 << 20);
  EXPECT_GT(res.avg_roundtrip, 0);
  // Bounded by the peer PCI-E rate.
  EXPECT_LT(res.bandwidth_gbps(), 12.1);
  EXPECT_GT(res.bandwidth_gbps(), 6.0);
}

TEST(Harness, WarmupExcludedFromMeasurement) {
  // With warmup, the measured iterations skip the one-time costs (IPC
  // opens, DEV conversion), so avg < the no-warmup average.
  PingPongSpec spec;
  spec.cfg.world_size = 2;
  spec.cfg.machine = small_machine();
  spec.dt0 = spec.dt1 = core::lower_triangular_type(512, 512);
  spec.warmup = 1;
  spec.iters = 2;
  const auto warm = run_pingpong(spec);
  spec.warmup = 0;
  spec.iters = 1;
  const auto cold = run_pingpong(spec);
  EXPECT_LT(warm.avg_roundtrip, cold.avg_roundtrip);
}

TEST(Harness, MixedDatatypesUseSenderPayload) {
  PingPongSpec spec;
  spec.cfg.world_size = 2;
  spec.cfg.machine = small_machine();
  spec.dt0 = core::submatrix_type(128, 64, 192);
  spec.dt1 = mpi::Datatype::contiguous(128 * 64, mpi::kDouble());
  const auto res = run_pingpong(spec);
  EXPECT_EQ(res.message_bytes, 128 * 64 * 8);
}

TEST(Harness, PackBenchSeparatesPackPhase) {
  PackBenchSpec spec;
  spec.dt = core::lower_triangular_type(256, 256);
  spec.machine = small_machine();
  const auto res = run_pack_bench(spec);
  EXPECT_GT(res.avg_pack_ns, 0);
  EXPECT_GT(res.avg_ns, res.avg_pack_ns);  // pack+unpack > pack
  EXPECT_EQ(res.bytes, spec.dt->size());
}

TEST(Harness, PackTargetsOrderAsExpected) {
  PackBenchSpec spec;
  spec.dt = core::submatrix_type(512, 256, 768);
  spec.machine = small_machine();
  spec.target = PackTarget::kDevice;
  const auto d2d = run_pack_bench(spec);
  spec.target = PackTarget::kZeroCopy;
  const auto cpy = run_pack_bench(spec);
  spec.target = PackTarget::kDeviceHost;
  const auto d2d2h = run_pack_bench(spec);
  EXPECT_LT(d2d.avg_ns, cpy.avg_ns);
  EXPECT_LT(cpy.avg_ns, d2d2h.avg_ns);
}

TEST(Harness, KernelBandwidthSaneForContiguous) {
  // A dense "pattern" pack is essentially a copy: close to the memcpy
  // peak, never above it.
  auto dt = mpi::Datatype::contiguous(4 << 20, mpi::kDouble());
  const double peak =
      memcpy_d2d_bandwidth(dt->size(), small_machine());
  const double bw = kernel_pack_bandwidth(dt, 1, {}, small_machine());
  EXPECT_LT(bw, peak);
  EXPECT_GT(bw, 0.85 * peak);
}

TEST(Harness, BackgroundHookRunsOnRankZero) {
  PingPongSpec spec;
  spec.cfg.world_size = 2;
  spec.cfg.machine = small_machine();
  spec.dt0 = spec.dt1 = mpi::Datatype::contiguous(1 << 18, mpi::kDouble());
  int calls = 0;
  spec.background = [&](mpi::Process& p) {
    EXPECT_EQ(p.rank(), 0);
    ++calls;
  };
  run_pingpong(spec);
  EXPECT_EQ(calls, spec.warmup + spec.iters);
}

}  // namespace
}  // namespace gpuddt::harness
