// Timing-shape tests: the paper's qualitative results (Section 5), encoded
// as assertions against the virtual-time harness. These pin down the
// behaviours the benchmark figures rely on - if a refactor breaks a ratio,
// these fail before the figures drift.
#include <gtest/gtest.h>

#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "simgpu/runtime.h"

namespace gpuddt::harness {
namespace {

sg::MachineConfig big_machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = std::size_t{3} << 30;
  return m;
}

mpi::RuntimeConfig pingpong_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine = big_machine();
  cfg.progress_timeout_ms = 20000;
  return cfg;
}

constexpr std::int64_t kN = 2048;  // matrix order used throughout

// --- Figure 6: kernel bandwidths ------------------------------------------------------

TEST(Fig6Shape, VectorKernelReaches90PercentOfMemcpy) {
  auto dt = core::submatrix_type(kN, kN / 2, kN + 512);
  const double peak = memcpy_d2d_bandwidth(dt->size(), big_machine());
  const double bw = kernel_pack_bandwidth(dt, 1, {}, big_machine());
  EXPECT_GT(bw, 0.88 * peak);
  EXPECT_LT(bw, peak);
}

TEST(Fig6Shape, TriangularKernelLosesToOccupancy) {
  auto tri = core::lower_triangular_type(kN, kN);
  const double peak = memcpy_d2d_bandwidth(tri->size(), big_machine());
  const double bw = kernel_pack_bandwidth(tri, 1, {}, big_machine());
  EXPECT_GT(bw, 0.70 * peak);
  EXPECT_LT(bw, 0.90 * peak);
}

TEST(Fig6Shape, StairTriangleRecoversVectorBandwidth) {
  auto tri = core::lower_triangular_type(kN, kN);
  auto stair = core::stair_triangular_type(kN, kN, 128);
  const double tri_bw = kernel_pack_bandwidth(tri, 1, {}, big_machine());
  const double stair_bw = kernel_pack_bandwidth(stair, 1, {}, big_machine());
  const double vec_bw = kernel_pack_bandwidth(
      core::submatrix_type(kN, kN / 2, kN + 512), 1, {}, big_machine());
  EXPECT_GT(stair_bw, tri_bw);
  EXPECT_GT(stair_bw, 0.95 * vec_bw);
}

// --- Figure 7: pipelining, caching, zero-copy -------------------------------------------

TEST(Fig7Shape, ConversionPipeliningNearlyDoublesThroughput) {
  PackBenchSpec spec;
  spec.dt = core::lower_triangular_type(kN, kN);
  spec.machine = big_machine();
  spec.engine.cache_enabled = false;
  spec.engine.pipeline_conversion = false;
  const auto plain = run_pack_bench(spec);
  spec.engine.pipeline_conversion = true;
  const auto pipelined = run_pack_bench(spec);
  EXPECT_LT(static_cast<double>(pipelined.avg_ns),
            0.70 * static_cast<double>(plain.avg_ns));
}

TEST(Fig7Shape, CachedBeatsPipelined) {
  PackBenchSpec spec;
  spec.dt = core::lower_triangular_type(kN, kN);
  spec.machine = big_machine();
  spec.engine.cache_enabled = false;
  const auto pipelined = run_pack_bench(spec);
  spec.engine.cache_enabled = true;
  spec.warmup = 1;  // fill the cache
  const auto cached = run_pack_bench(spec);
  EXPECT_LT(cached.avg_ns, pipelined.avg_ns);
}

TEST(Fig7Shape, ZeroCopySlightlyFasterThanExplicitStaging) {
  PackBenchSpec spec;
  spec.dt = core::submatrix_type(kN, kN / 2, kN + 512);
  spec.machine = big_machine();
  spec.target = PackTarget::kDeviceHost;
  const auto explicit_staging = run_pack_bench(spec);
  spec.target = PackTarget::kZeroCopy;
  const auto zero_copy = run_pack_bench(spec);
  EXPECT_LT(zero_copy.avg_ns, explicit_staging.avg_ns);
  // ... but not dramatically: the PCI-E link is the shared bottleneck.
  EXPECT_GT(static_cast<double>(zero_copy.avg_ns),
            0.5 * static_cast<double>(explicit_staging.avg_ns));
}

TEST(Fig7Shape, GoingThroughHostDominatedByPcie) {
  PackBenchSpec spec;
  spec.dt = core::submatrix_type(kN, kN / 2, kN + 512);
  spec.machine = big_machine();
  spec.target = PackTarget::kDevice;
  const auto d2d = run_pack_bench(spec);
  spec.target = PackTarget::kZeroCopy;
  const auto through_host = run_pack_bench(spec);
  EXPECT_GT(through_host.avg_ns, 3 * d2d.avg_ns);
}

// --- Figure 8: vector kernel vs cudaMemcpy2D ------------------------------------------------

TEST(Fig8Shape, KernelMatchesMemcpy2dOnDevice) {
  sg::Machine machine(big_machine());
  sg::HostContext ctx(machine, 0);
  const std::int64_t blocks = 8192, blk = 1024, pitch = 2048;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, blocks * pitch));
  auto* dst = static_cast<std::byte*>(sg::Malloc(ctx, blocks * blk));
  // cudaMemcpy2D d2d.
  const vt::Time t0 = ctx.clock.now();
  sg::Memcpy2D(ctx, dst, blk, src, pitch, blk, blocks);
  const vt::Time mcp2d = ctx.clock.now() - t0;
  // Our kernel.
  sg::Stream stream(&machine.device(0));
  mpi::RegularPattern pat{0, blk, pitch, blocks};
  const vt::Time k0 = ctx.clock.now();
  const vt::Time fin = core::pack_vector_kernel(ctx, stream, src, pat, 0,
                                                blocks * blk, dst, 64);
  const vt::Time kernel = fin - k0;
  EXPECT_LT(static_cast<double>(kernel), 1.3 * static_cast<double>(mcp2d));
  EXPECT_GT(static_cast<double>(kernel), 0.7 * static_cast<double>(mcp2d));
}

TEST(Fig8Shape, Memcpy2dRegressesOffGranule) {
  sg::Machine machine(big_machine());
  sg::HostContext ctx(machine, 0);
  const std::int64_t blocks = 8192, pitch = 2048;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, blocks * pitch));
  std::vector<std::byte> host(static_cast<std::size_t>(blocks * 1024));
  const vt::Time t0 = ctx.clock.now();
  sg::Memcpy2D(ctx, host.data(), 1024, src, pitch, 1024, blocks);
  const vt::Time aligned = ctx.clock.now() - t0;
  const vt::Time t1 = ctx.clock.now();
  sg::Memcpy2D(ctx, host.data(), 1024, src, pitch, 1000, blocks);
  const vt::Time off_granule = ctx.clock.now() - t1;
  // Nearly the same payload, much worse time (Figure 8's sawtooth).
  EXPECT_GT(static_cast<double>(off_granule),
            1.8 * static_cast<double>(aligned));
}

// --- Figures 9-10: ping-pong shapes -------------------------------------------------------

PingPongResult pingpong_of(const mpi::DatatypePtr& dt,
                           mpi::RuntimeConfig cfg,
                           std::shared_ptr<mpi::GpuTransferPlugin> plugin =
                               nullptr) {
  PingPongSpec spec;
  spec.cfg = std::move(cfg);
  spec.dt0 = spec.dt1 = dt;
  spec.plugin = std::move(plugin);
  return run_pingpong(spec);
}

TEST(Fig9Shape, VectorPingPongNearsContiguousBandwidth) {
  auto cfg = pingpong_cfg();
  auto vec = core::submatrix_type(kN, kN / 2, kN + 512);
  auto cont = mpi::Datatype::contiguous(vec->size() / 8, mpi::kDouble());
  const auto v = pingpong_of(vec, cfg);
  const auto c = pingpong_of(cont, cfg);
  EXPECT_GT(v.bandwidth_gbps(), 0.75 * c.bandwidth_gbps());
}

TEST(Fig9Shape, TriangularTrailsVector) {
  auto cfg = pingpong_cfg();
  auto tri = core::lower_triangular_type(kN, kN);
  auto cont = mpi::Datatype::contiguous(tri->size() / 8, mpi::kDouble());
  const auto t = pingpong_of(tri, cfg);
  const auto c = pingpong_of(cont, cfg);
  EXPECT_GT(t.bandwidth_gbps(), 0.55 * c.bandwidth_gbps());
  EXPECT_LT(t.bandwidth_gbps(), 0.95 * c.bandwidth_gbps());
}

TEST(Fig10Shape, SameGpuAtLeastTwiceAsFastAsTwoGpus) {
  auto dt = core::submatrix_type(kN, kN / 2, kN + 512);
  auto cfg1 = pingpong_cfg();
  cfg1.device_of = [](int) { return 0; };
  const auto one_gpu = pingpong_of(dt, cfg1);
  const auto two_gpus = pingpong_of(dt, pingpong_cfg());
  EXPECT_GT(static_cast<double>(two_gpus.avg_roundtrip),
            1.8 * static_cast<double>(one_gpu.avg_roundtrip));
}

TEST(Fig10Shape, LocalStagingBeatsRemoteUnpack) {
  auto dt = core::lower_triangular_type(kN, kN);
  auto with = pingpong_cfg();
  with.recv_local_staging = true;
  auto without = pingpong_cfg();
  without.recv_local_staging = false;
  const auto staged = pingpong_of(dt, with);
  const auto remote = pingpong_of(dt, without);
  // Paper: 10-20% faster with the local staging buffer.
  EXPECT_LT(static_cast<double>(staged.avg_roundtrip),
            0.99 * static_cast<double>(remote.avg_roundtrip));
  EXPECT_GT(static_cast<double>(staged.avg_roundtrip),
            0.60 * static_cast<double>(remote.avg_roundtrip));
}

TEST(Fig10Shape, OursBeatsMvapichStyleOnVectorSm) {
  auto dt = core::submatrix_type(kN, kN / 2, kN + 512);
  const auto ours = pingpong_of(dt, pingpong_cfg());
  const auto theirs = pingpong_of(dt, pingpong_cfg(),
                                  std::make_shared<base::MvapichLikePlugin>());
  EXPECT_LT(static_cast<double>(ours.avg_roundtrip),
            0.8 * static_cast<double>(theirs.avg_roundtrip));
}

TEST(Fig10Shape, MvapichStyleIndexedBlowsUp) {
  auto dt = core::lower_triangular_type(kN, kN);
  const auto ours = pingpong_of(dt, pingpong_cfg());
  const auto theirs = pingpong_of(dt, pingpong_cfg(),
                                  std::make_shared<base::MvapichLikePlugin>());
  // One cudaMemcpy2D per column: the call overhead dominates (the series
  // that leaves the plot in Figure 10).
  EXPECT_GT(static_cast<double>(theirs.avg_roundtrip),
            3.0 * static_cast<double>(ours.avg_roundtrip));
}

TEST(Fig10Shape, IbVectorAboutHalfFasterThanBaseline) {
  auto dt = core::submatrix_type(kN, kN / 2, kN + 512);
  auto cfg = pingpong_cfg();
  cfg.ranks_per_node = 1;
  const auto ours = pingpong_of(dt, cfg);
  const auto theirs =
      pingpong_of(dt, cfg, std::make_shared<base::MvapichLikePlugin>());
  const double speedup = static_cast<double>(theirs.avg_roundtrip) /
                         static_cast<double>(ours.avg_roundtrip);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 3.0);
}

// --- Figure 11: vector <-> contiguous (FFT reshape) ------------------------------------------

TEST(Fig11Shape, VectorToContiguousBeatsBaseline) {
  auto vec = core::submatrix_type(kN, kN / 2, kN + 512);
  auto cont = mpi::Datatype::contiguous(vec->size() / 8, mpi::kDouble());
  PingPongSpec spec;
  spec.cfg = pingpong_cfg();
  spec.dt0 = vec;
  spec.dt1 = cont;
  const auto ours = run_pingpong(spec);
  spec.plugin = std::make_shared<base::MvapichLikePlugin>();
  const auto theirs = run_pingpong(spec);
  EXPECT_LT(ours.avg_roundtrip, theirs.avg_roundtrip);
}

// --- Section 5.3: minimal GPU resources -----------------------------------------------------

TEST(Sec53Shape, FewBlocksSufficeWhenCommunicationBound) {
  auto dt = core::submatrix_type(kN, kN / 2, kN + 512);
  auto narrow_cfg = pingpong_cfg();
  narrow_cfg.gpu_kernel_blocks = 4;
  auto wide_cfg = pingpong_cfg();
  wide_cfg.gpu_kernel_blocks = 64;
  const auto narrow = pingpong_of(dt, narrow_cfg);
  const auto wide = pingpong_of(dt, wide_cfg);
  // Communication (PCI-E) is the bottleneck: a few blocks reach within
  // ~25% of the full-width configuration.
  EXPECT_LT(static_cast<double>(narrow.avg_roundtrip),
            1.25 * static_cast<double>(wide.avg_roundtrip));
  // ... while a single block is not enough.
  auto one_cfg = pingpong_cfg();
  one_cfg.gpu_kernel_blocks = 1;
  const auto one = pingpong_of(dt, one_cfg);
  EXPECT_GT(static_cast<double>(one.avg_roundtrip),
            1.02 * static_cast<double>(wide.avg_roundtrip));
}

// --- Section 5.4: sharing the GPU with another application -----------------------------------

TEST(Sec54Shape, CorunningKernelSlowsTransfer) {
  auto dt = core::lower_triangular_type(kN, kN);
  PingPongSpec spec;
  spec.cfg = pingpong_cfg();
  spec.dt0 = spec.dt1 = dt;
  const auto alone = run_pingpong(spec);
  // A compute-heavy co-runner occupying most SMs each iteration.
  spec.background = [](mpi::Process& p) {
    sg::Stream s(&p.gpu().dev());
    sg::KernelProfile prof;
    prof.device_txn_bytes = 64 << 20;
    prof.blocks = 12;
    sg::LaunchKernel(p.gpu(), s, prof, [] {});
  };
  const auto shared = run_pingpong(spec);
  EXPECT_GT(shared.avg_roundtrip, alone.avg_roundtrip);
}

}  // namespace
}  // namespace gpuddt::harness
