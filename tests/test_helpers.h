// Shared utilities for the gpuddt test suite.
#pragma once

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "mpi/cpu_pack.h"
#include "mpi/datatype.h"
#include "simgpu/runtime.h"

namespace gpuddt::test {

/// A MachineConfig with every field spelled out (keeps
/// -Wmissing-field-initializers quiet at the designated-init call sites).
inline sg::MachineConfig machine_config(int devices,
                                        std::size_t bytes = 256u << 20) {
  sg::MachineConfig m;
  m.num_devices = devices;
  m.device_memory_bytes = bytes;
  return m;
}

/// Deterministically fill a byte region with position-dependent values.
inline void fill_pattern(void* p, std::size_t bytes, std::uint32_t seed) {
  auto* b = static_cast<std::uint8_t*>(p);
  for (std::size_t i = 0; i < bytes; ++i)
    b[i] = static_cast<std::uint8_t>((i * 2654435761u + seed) >> 13);
}

/// Reference pack of (dt, count) at `src` using the CPU datatype engine.
inline std::vector<std::byte> reference_pack(const mpi::DatatypePtr& dt,
                                             std::int64_t count,
                                             const void* src) {
  std::vector<std::byte> out(
      static_cast<std::size_t>(dt->size() * count));
  mpi::cpu_pack(dt, count, src, out);
  return out;
}

/// A random "interesting" datatype for property tests: nested mixes of
/// vector / indexed / contiguous / struct over the primitive set.
inline mpi::DatatypePtr random_datatype(std::mt19937& rng, int depth = 0) {
  using mpi::Datatype;
  std::uniform_int_distribution<int> kind_dist(0, depth >= 2 ? 1 : 5);
  std::uniform_int_distribution<int> small(1, 5);
  switch (kind_dist(rng)) {
    case 0: {  // primitive
      std::uniform_int_distribution<int> p(0, 5);
      return Datatype::primitive(static_cast<mpi::Primitive>(p(rng)));
    }
    case 1:
      return Datatype::contiguous(small(rng), random_datatype(rng, depth + 1));
    case 2: {
      const int bl = small(rng);
      const int stride = bl + small(rng) - 1;  // stride >= blocklen
      return Datatype::vector(small(rng), bl, stride,
                              random_datatype(rng, depth + 1));
    }
    case 3: {  // indexed with increasing displacements
      const int n = small(rng);
      std::vector<std::int64_t> lens, displs;
      std::int64_t at = 0;
      for (int i = 0; i < n; ++i) {
        const std::int64_t l = small(rng);
        lens.push_back(l);
        displs.push_back(at);
        at += l + small(rng);
      }
      return Datatype::indexed(lens, displs, random_datatype(rng, depth + 1));
    }
    case 4: {  // hvector with byte stride
      auto t = random_datatype(rng, depth + 1);
      const int bl = small(rng);
      const std::int64_t stride = bl * t->extent() + 8 * small(rng);
      return Datatype::hvector(small(rng), bl, stride, t);
    }
    default: {  // struct of two
      auto a = random_datatype(rng, depth + 1);
      auto b = random_datatype(rng, depth + 1);
      const std::int64_t la = small(rng), lb = small(rng);
      const std::int64_t db = la * a->extent() + 8 * small(rng);
      const std::int64_t lens[] = {la, lb};
      const std::int64_t displs[] = {0, db};
      const mpi::DatatypePtr types[] = {a, b};
      return Datatype::struct_type(lens, displs, types);
    }
  }
}

/// Buffer span (bytes) needed to hold `count` elements of dt, including a
/// little negative-lb headroom.
inline std::int64_t span_bytes(const mpi::DatatypePtr& dt,
                               std::int64_t count) {
  if (count <= 0 || dt->size() == 0) return 1;
  return dt->true_extent() + (count - 1) * dt->extent() + 64;
}

}  // namespace gpuddt::test
