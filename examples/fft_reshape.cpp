// FFT-style on-the-fly reshape (Section 5.2.2): "the sender and the
// receiver can have different datatypes as long as the datatype signatures
// are identical. In FFT, one side uses a vector, and the other side uses a
// contiguous type."
//
// Rank 0 holds a column block of a larger matrix (vector type); rank 1
// receives it as a dense contiguous buffer ready for a local FFT - the
// MPI engine performs the reshape during the transfer. Also demonstrates
// the reverse direction and reports achieved bandwidth, comparing ours
// with the MVAPICH-style baseline plugin.
#include <cstdio>
#include <cstring>

#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kRows = 2048;
constexpr std::int64_t kCols = 1024;
constexpr std::int64_t kLd = 2048 + 512;
}  // namespace

int main() {
  // Correctness pass with explicit verification.
  {
    mpi::RuntimeConfig cfg;
    cfg.world_size = 2;
    cfg.machine.num_devices = 2;
    cfg.machine.device_memory_bytes = std::size_t{1} << 30;
    mpi::Runtime rt(cfg);
    rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      const mpi::DatatypePtr vec = core::submatrix_type(kRows, kCols, kLd);
      const mpi::DatatypePtr dense =
          mpi::Datatype::contiguous(kRows * kCols, mpi::kDouble());
      if (p.rank() == 0) {
        auto* a = static_cast<double*>(
            sg::Malloc(p.gpu(), kLd * kCols * sizeof(double)));
        for (std::int64_t j = 0; j < kCols; ++j)
          for (std::int64_t i = 0; i < kRows; ++i)
            a[j * kLd + i] = static_cast<double>(j * kRows + i);
        comm.send(a, 1, vec, 1, 0);       // strided out...
        comm.recv(a, 1, vec, 1, 1);       // ...and strided back in
      } else {
        auto* b = static_cast<double*>(
            sg::Malloc(p.gpu(), kRows * kCols * sizeof(double)));
        comm.recv(b, 1, dense, 0, 0);     // lands densely
        long long errors = 0;
        for (std::int64_t k = 0; k < kRows * kCols; ++k)
          if (b[k] != static_cast<double>(k)) ++errors;
        std::printf("[rank 1] reshape received %.1f MB dense, %lld "
                    "mismatches\n",
                    static_cast<double>(dense->size()) / (1 << 20), errors);
        if (errors != 0) std::abort();
        comm.send(b, 1, dense, 0, 1);     // send back densely
      }
    });
  }

  // Bandwidth comparison: ours vs. the MVAPICH-style baseline.
  auto measure = [&](std::shared_ptr<mpi::GpuTransferPlugin> plugin) {
    harness::PingPongSpec spec;
    spec.cfg.world_size = 2;
    spec.cfg.machine.num_devices = 2;
    spec.cfg.machine.device_memory_bytes = std::size_t{2} << 30;
    spec.dt0 = core::submatrix_type(kRows, kCols, kLd);
    spec.dt1 = mpi::Datatype::contiguous(kRows * kCols, mpi::kDouble());
    spec.plugin = std::move(plugin);
    return harness::run_pingpong(spec);
  };
  const auto ours = measure(nullptr);
  const auto baseline = measure(std::make_shared<base::MvapichLikePlugin>());
  std::printf("fft_reshape: vector<->contiguous ping-pong %.1f MB\n",
              static_cast<double>(ours.message_bytes) / (1 << 20));
  std::printf("  gpuddt engine : %8.3f ms  (%.2f GB/s)\n",
              static_cast<double>(ours.avg_roundtrip) / 1e6,
              ours.bandwidth_gbps());
  std::printf("  mvapich-style : %8.3f ms  (%.2f GB/s)\n",
              static_cast<double>(baseline.avg_roundtrip) / 1e6,
              baseline.bandwidth_gbps());
  std::printf("fft_reshape: OK\n");
  return 0;
}
