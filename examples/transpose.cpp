// Distributed matrix transpose (Section 5.2.3): "a very complex operation
// and a good stress-test for a datatype engine."
//
// Rank 0 sends a column-major matrix contiguously; rank 1 receives it
// with the transpose datatype (a collection of N single-element-column
// vectors), so B = A^T materializes directly in device memory with no
// intermediate buffers or explicit transpose kernel.
#include <cstdio>
#include <cstring>

#include "core/layouts.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

int main() {
  constexpr std::int64_t kN = 768;

  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::size_t bytes = kN * kN * sizeof(double);
    auto* m = static_cast<double*>(sg::Malloc(p.gpu(), bytes));
    const mpi::DatatypePtr dense =
        mpi::Datatype::contiguous(kN * kN, mpi::kDouble());
    const mpi::DatatypePtr trans = core::transpose_type(kN, kN);

    if (p.rank() == 0) {
      // A(i,j) = i * N + j, column-major.
      for (std::int64_t j = 0; j < kN; ++j)
        for (std::int64_t i = 0; i < kN; ++i)
          m[j * kN + i] = static_cast<double>(i * kN + j);
      comm.send(m, 1, dense, 1, 0);
      std::printf("[rank 0] sent %lld x %lld matrix (%.1f MB), virtual "
                  "time %.3f ms\n",
                  static_cast<long long>(kN), static_cast<long long>(kN),
                  static_cast<double>(bytes) / (1 << 20),
                  static_cast<double>(p.clock().now()) / 1e6);
    } else {
      std::memset(m, 0, bytes);
      comm.recv(m, 1, trans, 0, 0);  // unpack IS the transpose
      long long errors = 0;
      for (std::int64_t j = 0; j < kN; ++j)
        for (std::int64_t i = 0; i < kN; ++i)
          if (m[j * kN + i] != static_cast<double>(j * kN + i)) ++errors;
      std::printf("[rank 1] received transpose, %lld mismatches, virtual "
                  "time %.3f ms\n",
                  errors, static_cast<double>(p.clock().now()) / 1e6);
      if (errors != 0) std::abort();
    }
  });

  std::printf("transpose: OK\n");
  return 0;
}
