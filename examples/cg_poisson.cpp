// Capstone example: a distributed conjugate-gradient solve of the 2D
// Poisson equation, everything GPU-resident - the kind of application the
// paper's techniques serve. Combines:
//   * persistent halo exchanges with derived datatypes (contiguous column
//     halos between vertical slabs),
//   * allreduce for the CG dot products,
//   * the GPU datatype engine underneath every transfer.
// Convergence is verified independently: ||b - Ax|| / ||b|| recomputed
// from the final iterate must be tiny.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/coll.h"
#include "mpi/datatype.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kN = 96;       // global interior is kN x kN
constexpr int kRanks = 4;             // vertical slabs
constexpr std::int64_t kCols = kN / kRanks;
constexpr std::int64_t kLd = kN + 2;  // local leading dimension (ghosts)

std::int64_t idx(std::int64_t i, std::int64_t j) { return j * kLd + i; }

/// Deterministic pseudo-random RHS per global grid point. (A smooth
/// sin*sin RHS is an eigenfunction of the discrete Laplacian and lets CG
/// converge in one step; a rough RHS exercises the full Krylov loop.)
double rhs_at(std::int64_t gi, std::int64_t gj) {
  std::uint64_t h = static_cast<std::uint64_t>(gi * 1000003 + gj) *
                    0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return static_cast<double>(h % 2000) / 1000.0 - 1.0;  // [-1, 1)
}
}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kRanks;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    mpi::Collectives coll(comm);
    const int rank = p.rank();
    const std::int64_t slab = kLd * (kCols + 2);
    auto alloc = [&] {
      auto* v = static_cast<double*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(slab * 8)));
      std::memset(v, 0, static_cast<std::size_t>(slab * 8));
      return v;
    };
    double* x = alloc();   // solution iterate
    double* r = alloc();   // residual
    double* d = alloc();   // search direction
    double* q = alloc();   // A*d

    // Right-hand side at interior points of my slab.
    auto fill_b = [&](double* v) {
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kN; ++i)
          v[idx(i, j)] = rhs_at(i, rank * kCols + j);
    };

    const auto column = mpi::Datatype::contiguous(kN, mpi::kDouble());
    auto exchange_halos = [&](double* v, int tag) {
      std::vector<mpi::Request> reqs;
      if (rank > 0) {
        reqs.push_back(comm.irecv(&v[idx(1, 0)], 1, column, rank - 1, tag));
        reqs.push_back(comm.isend(&v[idx(1, 1)], 1, column, rank - 1, tag));
      }
      if (rank < kRanks - 1) {
        reqs.push_back(
            comm.irecv(&v[idx(1, kCols + 1)], 1, column, rank + 1, tag));
        reqs.push_back(
            comm.isend(&v[idx(1, kCols)], 1, column, rank + 1, tag));
      }
      comm.waitall(reqs);
    };

    auto apply_A = [&](double* in, double* out, int tag) {
      exchange_halos(in, tag);
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kN; ++i)
          out[idx(i, j)] = 4.0 * in[idx(i, j)] - in[idx(i - 1, j)] -
                           in[idx(i + 1, j)] - in[idx(i, j - 1)] -
                           in[idx(i, j + 1)];
    };

    auto dot = [&](const double* a, const double* b) {
      double local = 0;
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kN; ++i)
          local += a[idx(i, j)] * b[idx(i, j)];
      double global = 0;
      coll.allreduce(&local, &global, 1, mpi::kDouble(),
                     mpi::ReduceOp::kSum);
      return global;
    };

    // CG: x = 0, r = b, d = r.
    fill_b(r);
    std::memcpy(d, r, static_cast<std::size_t>(slab * 8));
    double rho = dot(r, r);
    const double rho0 = rho;
    int iters = 0;
    for (; iters < 500 && rho > 1e-16 * rho0; ++iters) {
      apply_A(d, q, 100 + iters);
      const double alpha = rho / dot(d, q);
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kN; ++i) {
          x[idx(i, j)] += alpha * d[idx(i, j)];
          r[idx(i, j)] -= alpha * q[idx(i, j)];
        }
      const double rho_new = dot(r, r);
      const double beta = rho_new / rho;
      rho = rho_new;
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kN; ++i)
          d[idx(i, j)] = r[idx(i, j)] + beta * d[idx(i, j)];
    }

    // Independent verification: recompute ||b - A x|| / ||b|| from x.
    apply_A(x, q, 9000);
    fill_b(d);  // reuse d as a scratch copy of b
    double local_num = 0, local_den = 0;
    for (std::int64_t j = 1; j <= kCols; ++j)
      for (std::int64_t i = 1; i <= kN; ++i) {
        const double diff = d[idx(i, j)] - q[idx(i, j)];
        local_num += diff * diff;
        local_den += d[idx(i, j)] * d[idx(i, j)];
      }
    double sums[2] = {local_num, local_den}, glob[2] = {0, 0};
    coll.allreduce(sums, glob, 2, mpi::kDouble(), mpi::ReduceOp::kSum);
    const double rel_resid = std::sqrt(glob[0] / glob[1]);
    if (rank == 0) {
      std::printf("cg_poisson: %lld x %lld grid on %d GPU slabs, %d CG "
                  "iterations, residual drop %.1e, verified ||b-Ax||/||b|| "
                  "= %.2e, virtual time %.2f ms\n",
                  static_cast<long long>(kN), static_cast<long long>(kN),
                  kRanks, iters, rho / rho0, rel_resid,
                  static_cast<double>(p.clock().now()) / 1e6);
      if (rel_resid > 1e-6 || iters < 10) {
        std::fprintf(stderr, "cg_poisson: did not converge properly!\n");
        std::abort();
      }
    }
  });

  std::printf("cg_poisson: OK\n");
  return 0;
}
