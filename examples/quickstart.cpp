// Quickstart: send the lower triangle of a GPU-resident matrix from one
// MPI rank to another, exactly as an application using GPU-aware MPI
// datatypes would - build the datatype once, then Send/Recv device
// pointers directly. Prints what happened, in virtual (simulated) time.
//
//   $ ./quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/layouts.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

int main() {
  constexpr std::int64_t kN = 1024;  // matrix order

  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;  // rank r uses GPU r
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  // Install the GPU datatype engine (the paper's contribution). Without
  // it, device-resident buffers cannot be used in MPI calls.
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);

    // The datatype: lower triangle (with diagonal) of an N x N
    // column-major double matrix - an MPI indexed type.
    const mpi::DatatypePtr tri = core::lower_triangular_type(kN, kN);

    // Allocate the matrix in device memory ("cudaMalloc").
    const std::size_t matrix_bytes = kN * kN * sizeof(double);
    auto* dmat = static_cast<double*>(sg::Malloc(p.gpu(), matrix_bytes));

    if (p.rank() == 0) {
      // Fill A(i,j) = i + j/1000 on the "GPU" (host-visible simulation).
      for (std::int64_t j = 0; j < kN; ++j)
        for (std::int64_t i = 0; i < kN; ++i)
          dmat[j * kN + i] = static_cast<double>(i) +
                             static_cast<double>(j) / 1000.0;
      comm.send(dmat, 1, tri, /*dst=*/1, /*tag=*/0);
      std::printf("[rank 0] sent lower triangle: %lld doubles (%.1f MB), "
                  "virtual time %.3f ms\n",
                  static_cast<long long>(core::lower_triangle_elems(kN)),
                  static_cast<double>(tri->size()) / (1 << 20),
                  static_cast<double>(p.clock().now()) / 1e6);
    } else {
      std::memset(dmat, 0, matrix_bytes);
      const mpi::Status st = comm.recv(dmat, 1, tri, /*src=*/0, /*tag=*/0);
      // Verify: the triangle arrived, the rest stayed zero.
      long long errors = 0;
      for (std::int64_t j = 0; j < kN; ++j) {
        for (std::int64_t i = 0; i < kN; ++i) {
          const double expect =
              i >= j ? static_cast<double>(i) + static_cast<double>(j) / 1000.0
                     : 0.0;
          if (dmat[j * kN + i] != expect) ++errors;
        }
      }
      std::printf("[rank 1] received %lld bytes, %lld mismatches, "
                  "virtual time %.3f ms\n",
                  static_cast<long long>(st.bytes), errors,
                  static_cast<double>(p.clock().now()) / 1e6);
      if (errors != 0) std::abort();
    }
  });

  std::printf("quickstart: OK\n");
  return 0;
}
