// LAMMPS-style particle exchange (Section 3's second motivating example):
// "each process keeps an array of indices of local particles that need to
// be communicated; such an access pattern can be captured by an indexed
// type."
//
// Two ranks hold GPU-resident particle arrays (struct-of-arrays of
// double3 positions); each selects a random subset of boundary particles
// by index, builds an MPI indexed type over them, and exchanges the
// subsets in place - no manual packing anywhere.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "mpi/datatype.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kParticles = 100000;
constexpr std::int64_t kBoundary = 8192;  // particles crossing the boundary
}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const int peer = 1 - p.rank();

    // Positions: 3 doubles per particle, GPU-resident.
    const std::size_t bytes = kParticles * 3 * sizeof(double);
    auto* pos = static_cast<double*>(sg::Malloc(p.gpu(), bytes));
    for (std::int64_t i = 0; i < kParticles; ++i) {
      pos[3 * i + 0] = p.rank() * 1e6 + static_cast<double>(i);
      pos[3 * i + 1] = static_cast<double>(i) * 0.5;
      pos[3 * i + 2] = static_cast<double>(i) * 0.25;
    }

    // Both ranks agree on the boundary index lists (in a real MD code
    // these come from the domain decomposition; here both sides derive
    // them from the same seed, as the receiving slots of incoming ghosts).
    std::mt19937 rng(1234 + p.rank());
    std::mt19937 rng_peer(1234 + peer);
    auto pick = [](std::mt19937& g) {
      std::vector<std::int64_t> ids(kParticles);
      for (std::int64_t i = 0; i < kParticles; ++i) ids[i] = i;
      std::shuffle(ids.begin(), ids.end(), g);
      ids.resize(kBoundary);
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    const auto my_ids = pick(rng);
    const auto peer_ids = pick(rng_peer);

    // One particle = 3 contiguous doubles; indexed over the id list.
    auto particle = mpi::Datatype::contiguous(3, mpi::kDouble());
    auto make_indexed = [&](const std::vector<std::int64_t>& ids) {
      std::vector<std::int64_t> lens(ids.size(), 1);
      return mpi::Datatype::indexed(lens, ids, particle);
    };
    const mpi::DatatypePtr send_t = make_indexed(my_ids);

    // Ghost storage appended after the locals, densely packed.
    auto* ghosts = static_cast<double*>(
        sg::Malloc(p.gpu(), kBoundary * 3 * sizeof(double)));
    const mpi::DatatypePtr recv_t =
        mpi::Datatype::contiguous(kBoundary * 3, mpi::kDouble());

    mpi::Request r = comm.irecv(ghosts, 1, recv_t, peer, 0);
    mpi::Request s = comm.isend(pos, 1, send_t, peer, 0);
    comm.wait(r);
    comm.wait(s);

    // Verify: ghost k must be the peer's particle peer_ids[k].
    long long errors = 0;
    for (std::int64_t k = 0; k < kBoundary; ++k) {
      const std::int64_t src = peer_ids[static_cast<std::size_t>(k)];
      const double expect_x = peer * 1e6 + static_cast<double>(src);
      if (ghosts[3 * k] != expect_x ||
          ghosts[3 * k + 1] != static_cast<double>(src) * 0.5)
        ++errors;
    }
    std::printf("[rank %d] exchanged %lld boundary particles (%.2f MB), "
                "%lld mismatches, virtual time %.3f ms\n",
                p.rank(), static_cast<long long>(kBoundary),
                static_cast<double>(send_t->size()) / (1 << 20), errors,
                static_cast<double>(p.clock().now()) / 1e6);
    if (errors != 0) std::abort();
  });

  std::printf("particle_exchange: OK\n");
  return 0;
}
