// 2D stencil halo exchange (the SHOC benchmark pattern the paper's
// Section 3 motivates): a column-major grid is partitioned into vertical
// slabs, one per rank, all resident in GPU memory. Each iteration
// exchanges one-column halos with both neighbours - a contiguous column
// on the send side maps to a contiguous recv, while the *row* halos of a
// real 2D decomposition would be vector types; we exchange both a column
// (contiguous) and the grid's top/bottom rows (vector type) to exercise
// the engine the way SHOC does ("two of the four boundaries are
// contiguous, and the other two are non-contiguous").
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/datatype.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {

constexpr std::int64_t kRows = 512;   // interior rows per rank
constexpr std::int64_t kCols = 256;   // interior columns per rank
constexpr int kIters = 4;
constexpr int kRanks = 4;

// Local slab layout (column-major, doubles), one ghost layer all around:
// (kRows + 2) x (kCols + 2).
constexpr std::int64_t kLd = kRows + 2;

std::int64_t idx(std::int64_t i, std::int64_t j) { return j * kLd + i; }

}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kRanks;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const int rank = p.rank();
    const int left = rank - 1;
    const int right = rank + 1;

    const std::size_t slab_bytes = kLd * (kCols + 2) * sizeof(double);
    auto* u = static_cast<double*>(sg::Malloc(p.gpu(), slab_bytes));
    std::memset(u, 0, slab_bytes);
    // Interior initialized to a rank-dependent ramp.
    for (std::int64_t j = 1; j <= kCols; ++j)
      for (std::int64_t i = 1; i <= kRows; ++i)
        u[idx(i, j)] = rank * 1000.0 + static_cast<double>(i + j);

    // Column halo: contiguous (one column of the slab).
    const mpi::DatatypePtr column =
        mpi::Datatype::contiguous(kRows, mpi::kDouble());
    // Row halo: a vector - one element per column, kLd apart (this is the
    // non-contiguous boundary of the 2D stencil).
    const mpi::DatatypePtr row =
        mpi::Datatype::vector(kCols, 1, kLd, mpi::kDouble());

    for (int it = 0; it < kIters; ++it) {
      std::vector<mpi::Request> reqs;
      // Exchange the boundary columns with left/right neighbours.
      if (left >= 0) {
        reqs.push_back(
            comm.irecv(&u[idx(1, 0)], 1, column, left, 2 * it));
        reqs.push_back(
            comm.isend(&u[idx(1, 1)], 1, column, left, 2 * it + 1));
      }
      if (right < kRanks) {
        reqs.push_back(
            comm.irecv(&u[idx(1, kCols + 1)], 1, column, right, 2 * it + 1));
        reqs.push_back(
            comm.isend(&u[idx(1, kCols)], 1, column, right, 2 * it));
      }
      // Also ship the top boundary row (vector type) around a ring to
      // exercise the non-contiguous path.
      const int nxt = (rank + 1) % kRanks;
      const int prv = (rank + kRanks - 1) % kRanks;
      reqs.push_back(comm.irecv(&u[idx(0, 1)], 1, row, prv, 777 + it));
      reqs.push_back(comm.isend(&u[idx(1, 1)], 1, row, nxt, 777 + it));
      comm.waitall(reqs);

      // A Jacobi-ish smoothing step over the interior (functionally real).
      for (std::int64_t j = 1; j <= kCols; ++j)
        for (std::int64_t i = 1; i <= kRows; ++i)
          u[idx(i, j)] =
              0.25 * (u[idx(i - 1, j)] + u[idx(i + 1, j)] +
                      u[idx(i, j - 1)] + u[idx(i, j + 1)]);
      comm.barrier();
    }

    // Verify the final column halos really hold the neighbour's boundary.
    if (left >= 0) {
      // After the last smoothing step the halo is one iteration stale,
      // which is the expected stencil behaviour; just check it is
      // non-zero (data genuinely arrived from the neighbour).
      double sum = 0;
      for (std::int64_t i = 1; i <= kRows; ++i) sum += u[idx(i, 0)];
      if (sum == 0.0) {
        std::fprintf(stderr, "[rank %d] halo never filled!\n", rank);
        std::abort();
      }
    }
    if (rank == 0) {
      std::printf("stencil2d: %d ranks, %d iters, grid %lld x %lld per "
                  "rank, virtual time %.3f ms\n",
                  kRanks, kIters, static_cast<long long>(kRows),
                  static_cast<long long>(kCols),
                  static_cast<double>(p.clock().now()) / 1e6);
    }
  });

  std::printf("stencil2d: OK\n");
  return 0;
}
