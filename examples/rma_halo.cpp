// Halo exchange with MPI-3 style RMA windows - the fence-epoch one-sided
// paradigm, with datatypes applied on BOTH sides of each put: every rank
// pushes its boundary row (a vector type) and boundary column directly
// into the neighbour's GPU-resident slab between two fences. No receives,
// no tags - the window and the datatypes carry all the structure.
#include <cstdio>
#include <cstring>

#include "mpi/datatype.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kRows = 384;
constexpr std::int64_t kCols = 192;
constexpr std::int64_t kLd = kRows + 2;
constexpr int kRanks = 4;
std::int64_t idx(std::int64_t i, std::int64_t j) { return j * kLd + i; }
}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kRanks;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const int me = p.rank();
    const int right = (me + 1) % kRanks;

    const std::int64_t slab_bytes = kLd * (kCols + 2) * 8;
    auto* u = static_cast<double*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(slab_bytes)));
    std::memset(u, 0, static_cast<std::size_t>(slab_bytes));
    for (std::int64_t j = 1; j <= kCols; ++j)
      for (std::int64_t i = 1; i <= kRows; ++i)
        u[idx(i, j)] = me * 1000.0 + static_cast<double>(i + j);

    rma::Window win(comm, u, slab_bytes);
    const auto column = mpi::Datatype::contiguous(kRows, mpi::kDouble());
    const auto row = mpi::Datatype::vector(kCols, 1, kLd, mpi::kDouble());

    win.fence();
    // Push my boundary column into the right neighbour's left ghost
    // column (contiguous on both sides)...
    win.put(&u[idx(1, kCols)], 1, column, right,
            /*disp=*/idx(1, 0) * 8, 1, column);
    // ...and my top interior row into their ghost row - a vector type
    // applied at the TARGET by the engine.
    win.put(&u[idx(1, 1)], 1, row, right, /*disp=*/idx(0, 1) * 8, 1, row);
    win.fence();

    const int left = (me + kRanks - 1) % kRanks;
    long long errors = 0;
    for (std::int64_t i = 1; i <= kRows; ++i) {
      if (u[idx(i, 0)] != left * 1000.0 + static_cast<double>(i + kCols))
        ++errors;
    }
    for (std::int64_t j = 1; j <= kCols; ++j) {
      if (u[idx(0, j)] != left * 1000.0 + static_cast<double>(1 + j))
        ++errors;
    }
    std::printf("[rank %d] RMA halos verified, %lld mismatches, virtual "
                "time %.3f ms\n",
                me, errors, static_cast<double>(p.clock().now()) / 1e6);
    if (errors != 0) std::abort();
  });

  std::printf("rma_halo: OK\n");
  return 0;
}
