// One-sided halo exchange with the OpenSHMEM-style layer (the paper's
// "ideas are generic ... OpenSHMEM" port): each PE keeps a GPU-resident
// slab on the symmetric heap and *puts* its boundary into the neighbour's
// ghost region - including a non-contiguous row boundary moved with
// put_datatype, the capability plain OpenSHMEM lacks (Section 2.1).
#include <cstdio>
#include <cstring>

#include "mpi/datatype.h"
#include "mpi/runtime.h"
#include "shmem/shmem.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kRows = 256;
constexpr std::int64_t kCols = 128;
constexpr std::int64_t kLd = kRows + 2;
constexpr int kPes = 4;
std::int64_t idx(std::int64_t i, std::int64_t j) { return j * kLd + i; }
}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kPes;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  shmem::SymmetricHeap heap(rt, 32u << 20);

  rt.run([&](mpi::Process& p) {
    shmem::Pe pe(p, heap);
    const int me = pe.my_pe();
    const int right = (me + 1) % kPes;

    const std::size_t slab = kLd * (kCols + 2) * sizeof(double);
    auto* u = static_cast<double*>(pe.malloc(slab));
    std::memset(u, 0, slab);
    for (std::int64_t j = 1; j <= kCols; ++j)
      for (std::int64_t i = 1; i <= kRows; ++i)
        u[idx(i, j)] = me * 1000.0 + static_cast<double>(i + j);
    pe.barrier_all();

    // (1) Contiguous boundary column -> right neighbour's left ghost.
    pe.putmem(&u[idx(1, 0)], &u[idx(1, kCols)], kRows * sizeof(double),
              right);

    // (2) Non-contiguous top boundary row (one element per column, kLd
    // apart) -> right neighbour's ghost row, via the datatype engine.
    auto row = mpi::Datatype::vector(kCols, 1, kLd, mpi::kDouble());
    // Symmetric addresses: same offsets on both sides.
    pe.put_datatype(&u[idx(0, 1)] /*their ghost row*/,
                    &u[idx(1, 1)] /*my top row*/, row, 1, right);
    pe.barrier_all();

    // Verify what the left neighbour put into my ghosts.
    const int left = (me + kPes - 1) % kPes;
    long long errors = 0;
    for (std::int64_t i = 1; i <= kRows; ++i) {
      const double expect = left * 1000.0 + static_cast<double>(i + kCols);
      if (u[idx(i, 0)] != expect) ++errors;
    }
    for (std::int64_t j = 1; j <= kCols; ++j) {
      const double expect = left * 1000.0 + static_cast<double>(1 + j);
      if (u[idx(0, j)] != expect) ++errors;
    }
    std::printf("[PE %d] one-sided halos verified, %lld mismatches, "
                "virtual time %.3f ms\n",
                me, errors, static_cast<double>(p.clock().now()) / 1e6);
    if (errors != 0) std::abort();
    pe.barrier_all();
  });

  std::printf("shmem_stencil: OK\n");
  return 0;
}
