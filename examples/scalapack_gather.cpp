// ScaLAPACK-style block-cyclic matrix collection - the workload class the
// paper's introduction motivates ("the widely used linear algebra library
// ScaLAPACK usually deals with sub-matrices and matrices with irregular
// shapes").
//
// A global M x N double matrix is distributed 2D block-cyclic over a
// 2 x 2 process grid, all pieces GPU-resident. Rank 0 assembles the global
// matrix by receiving each rank's contribution with THAT RANK's darray
// type: the datatype engine scatters every incoming packed stream straight
// into the right global positions on the GPU - no index arithmetic in the
// application, no staging buffers.
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/datatype.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {
constexpr std::int64_t kM = 512;   // global rows
constexpr std::int64_t kN = 384;   // global cols
constexpr std::int64_t kB = 64;    // block size
constexpr int kProws = 2, kPcols = 2;

double global_value(std::int64_t i, std::int64_t j) {
  return static_cast<double>(i) * 10000.0 + static_cast<double>(j);
}

mpi::DatatypePtr darray_of(int rank) {
  const std::int64_t gs[] = {kM, kN};
  const mpi::Datatype::Distrib ds[] = {mpi::Datatype::Distrib::kCyclic,
                                       mpi::Datatype::Distrib::kCyclic};
  const std::int64_t da[] = {kB, kB};
  const std::int64_t ps[] = {kProws, kPcols};
  return mpi::Datatype::darray(kProws * kPcols, rank, gs, ds, da, ps,
                               mpi::kDouble(),
                               mpi::Datatype::Order::kFortran);
}
}  // namespace

int main() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kProws * kPcols;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{1} << 30;

  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const int rank = p.rank();
    const mpi::DatatypePtr mine = darray_of(rank);

    // Each rank materializes ITS elements of the global matrix, stored at
    // their global positions within a full-extent device buffer (the
    // darray type's displacements are global).
    auto* local = static_cast<double*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(mine->extent())));
    std::memset(local, 0, static_cast<std::size_t>(mine->extent()));
    {
      // Walk my darray's blocks and fill my elements.
      mpi::BlockCursor cur(mine, 1);
      mpi::Block b;
      while (cur.next(&b)) {
        for (std::int64_t e = b.offset / 8; e < (b.offset + b.len) / 8; ++e) {
          const std::int64_t i = e % kM;  // Fortran order: i fastest
          const std::int64_t j = e / kM;
          local[e] = global_value(i, j);
        }
      }
    }

    if (rank == 0) {
      auto* global = static_cast<double*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(kM * kN * 8)));
      std::memset(global, 0, static_cast<std::size_t>(kM * kN * 8));
      // My own piece lands via a self-transfer, every other piece via a
      // receive typed with the SENDER's darray layout.
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.isend(local, 1, mine, 0, 0));
      for (int r = 0; r < p.size(); ++r)
        reqs.push_back(comm.irecv(global, 1, darray_of(r), r, 0));
      comm.waitall(reqs);

      long long errors = 0;
      for (std::int64_t j = 0; j < kN; ++j)
        for (std::int64_t i = 0; i < kM; ++i)
          if (global[j * kM + i] != global_value(i, j)) ++errors;
      std::printf("[rank 0] assembled %lld x %lld block-cyclic(b=%lld) "
                  "matrix from a %dx%d grid, %lld mismatches, virtual "
                  "time %.3f ms\n",
                  static_cast<long long>(kM), static_cast<long long>(kN),
                  static_cast<long long>(kB), kProws, kPcols, errors,
                  static_cast<double>(p.clock().now()) / 1e6);
      if (errors != 0) std::abort();
    } else {
      comm.send(local, 1, mine, 0, 0);
      std::printf("[rank %d] sent %.2f MB block-cyclic piece\n", rank,
                  static_cast<double>(mine->size()) / (1 << 20));
    }
  });

  std::printf("scalapack_gather: OK\n");
  return 0;
}
