#!/usr/bin/env python3
"""Plot the reproduced figures from the CSV files dump_figures writes.

Usage:
    ./build/tools/dump_figures figdata
    python3 plots/plot_figures.py figdata out

Produces one PNG per paper figure in `out/`. Requires matplotlib.
"""
import csv
import os
import sys


def read_csv(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return {k: [float(r[k]) for r in rows] for k in rows[0]}


def main():
    data_dir = sys.argv[1] if len(sys.argv) > 1 else "figdata"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "plots/out"
    os.makedirs(out_dir, exist_ok=True)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    def save(fig, name, title, xlabel, ylabel, logy=False):
        ax = fig.gca()
        ax.set_title(title)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        if logy:
            ax.set_yscale("log")
        ax.legend()
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        fig.savefig(os.path.join(out_dir, name), dpi=140)
        print(f"  {name}")

    # Figure 6
    d = read_csv(os.path.join(data_dir, "fig6_kernel_bandwidth.csv"))
    fig = plt.figure()
    for k, lbl in [("C_gbps", "C (cudaMemcpy)"), ("V_gbps", "V"),
                   ("T_gbps", "T"), ("Tstair_gbps", "T-stair")]:
        fig.gca().plot(d["N"], d[k], marker="o", label=lbl)
    save(fig, "fig6_kernel_bandwidth.png",
         "Fig 6: GPU memory bandwidth of packing kernels",
         "matrix order N", "GB/s")

    # Figure 7
    d = read_csv(os.path.join(data_dir, "fig7_pack_unpack.csv"))
    fig = plt.figure()
    for k, lbl in [("V_d2d_ms", "V-d2d"), ("T_d2d_ms", "T-d2d"),
                   ("T_pipeline_ms", "T-d2d-pipeline"),
                   ("T_cached_ms", "T-d2d-cached"),
                   ("V_d2d2h_ms", "V-d2d2h"), ("V_cpy_ms", "V-cpy")]:
        fig.gca().plot(d["N"], d[k], marker="o", label=lbl)
    save(fig, "fig7_pack_unpack.png",
         "Fig 7: pack+unpack time of the datatype engine",
         "matrix order N", "ms", logy=True)

    # Figure 8 (8192-block panel)
    d = read_csv(os.path.join(data_dir, "fig8_vs_memcpy2d.csv"))
    sel = [i for i, b in enumerate(d["blocks"]) if b == 8192]
    fig = plt.figure()
    for k, lbl in [("kernel_d2d_gbps", "kernel d2d"),
                   ("mcp2d_d2d_gbps", "cudaMemcpy2D d2d"),
                   ("kernel_d2h_gbps", "kernel d2h (zero-copy)"),
                   ("mcp2d_d2h_gbps", "cudaMemcpy2D d2h")]:
        fig.gca().plot([d["block_bytes"][i] for i in sel],
                       [d[k][i] for i in sel], marker="o", label=lbl)
    fig.gca().set_xscale("log")
    save(fig, "fig8_vs_memcpy2d.png",
         "Fig 8: vector kernel vs cudaMemcpy2D (8192 blocks)",
         "block size (bytes)", "GB/s")

    # Figure 9
    d = read_csv(os.path.join(data_dir, "fig9_pcie_bandwidth.csv"))
    fig = plt.figure()
    for k, lbl in [("C_gbps", "C"), ("V_gbps", "V"), ("T_gbps", "T")]:
        fig.gca().plot(d["N"], d[k], marker="o", label=lbl)
    save(fig, "fig9_pcie_bandwidth.png",
         "Fig 9: PCI-E bandwidth of the ping-pong",
         "matrix order N", "GB/s")

    # Figure 10
    d = read_csv(os.path.join(data_dir, "fig10_pingpong.csv"))
    for panel, series in [
        ("a_sm_1gpu", [("SM1_V_ms", "V 1GPU"), ("SM1_T_ms", "T 1GPU")]),
        ("b_sm_2gpu", [("SM2_V_ms", "V 2GPU"), ("SM2_T_ms", "T 2GPU"),
                       ("SM2_V_mvapich_ms", "V mvapich"),
                       ("SM2_T_mvapich_ms", "T mvapich")]),
        ("c_ib", [("IB_V_ms", "V"), ("IB_T_ms", "T"),
                  ("IB_V_mvapich_ms", "V mvapich"),
                  ("IB_T_mvapich_ms", "T mvapich")]),
    ]:
        fig = plt.figure()
        for k, lbl in series:
            fig.gca().plot(d["N"], d[k], marker="o", label=lbl)
        save(fig, f"fig10{panel}.png", f"Fig 10({panel[0]}): ping-pong",
             "matrix order N", "ms", logy=True)

    # Figures 11/12
    d = read_csv(os.path.join(data_dir, "fig11_12_reshape_transpose.csv"))
    fig = plt.figure()
    for k, lbl in [("reshape_ms", "vector<->contig (ours)"),
                   ("reshape_mvapich_ms", "vector<->contig (mvapich)"),
                   ("transpose_ms", "transpose (ours)"),
                   ("transpose_mvapich_ms", "transpose (mvapich)")]:
        fig.gca().plot(d["N"], d[k], marker="o", label=lbl)
    save(fig, "fig11_12_reshape_transpose.png",
         "Figs 11/12: reshape and transpose ping-pong",
         "matrix order N", "ms", logy=True)

    print(f"plots written to {out_dir}/")


if __name__ == "__main__":
    main()
