# Empty dependencies file for bench_fig8_vs_memcpy2d.
# This may be replaced when dependencies are built.
