file(REMOVE_RECURSE
  "../bench/bench_ablation_shared_gpu"
  "../bench/bench_ablation_shared_gpu.pdb"
  "CMakeFiles/bench_ablation_shared_gpu.dir/bench_ablation_shared_gpu.cpp.o"
  "CMakeFiles/bench_ablation_shared_gpu.dir/bench_ablation_shared_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
