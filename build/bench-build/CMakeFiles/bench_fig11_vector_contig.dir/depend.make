# Empty dependencies file for bench_fig11_vector_contig.
# This may be replaced when dependencies are built.
