file(REMOVE_RECURSE
  "../bench/bench_fig11_vector_contig"
  "../bench/bench_fig11_vector_contig.pdb"
  "CMakeFiles/bench_fig11_vector_contig.dir/bench_fig11_vector_contig.cpp.o"
  "CMakeFiles/bench_fig11_vector_contig.dir/bench_fig11_vector_contig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vector_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
