file(REMOVE_RECURSE
  "../bench/bench_ablation_gpu_resources"
  "../bench/bench_ablation_gpu_resources.pdb"
  "CMakeFiles/bench_ablation_gpu_resources.dir/bench_ablation_gpu_resources.cpp.o"
  "CMakeFiles/bench_ablation_gpu_resources.dir/bench_ablation_gpu_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gpu_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
