# Empty compiler generated dependencies file for bench_fig6_kernel_bandwidth.
# This may be replaced when dependencies are built.
