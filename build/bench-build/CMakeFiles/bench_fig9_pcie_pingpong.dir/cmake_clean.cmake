file(REMOVE_RECURSE
  "../bench/bench_fig9_pcie_pingpong"
  "../bench/bench_fig9_pcie_pingpong.pdb"
  "CMakeFiles/bench_fig9_pcie_pingpong.dir/bench_fig9_pcie_pingpong.cpp.o"
  "CMakeFiles/bench_fig9_pcie_pingpong.dir/bench_fig9_pcie_pingpong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pcie_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
