# Empty dependencies file for bench_fig7_pack_unpack.
# This may be replaced when dependencies are built.
