file(REMOVE_RECURSE
  "../bench/bench_fig7_pack_unpack"
  "../bench/bench_fig7_pack_unpack.pdb"
  "CMakeFiles/bench_fig7_pack_unpack.dir/bench_fig7_pack_unpack.cpp.o"
  "CMakeFiles/bench_fig7_pack_unpack.dir/bench_fig7_pack_unpack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pack_unpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
