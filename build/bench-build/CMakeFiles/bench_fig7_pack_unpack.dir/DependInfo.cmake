
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_pack_unpack.cpp" "bench-build/CMakeFiles/bench_fig7_pack_unpack.dir/bench_fig7_pack_unpack.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig7_pack_unpack.dir/bench_fig7_pack_unpack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gpuddt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpuddt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/gpuddt_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpuddt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gpuddt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/gpuddt_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
