file(REMOVE_RECURSE
  "../bench/bench_fig1_alternatives"
  "../bench/bench_fig1_alternatives.pdb"
  "CMakeFiles/bench_fig1_alternatives.dir/bench_fig1_alternatives.cpp.o"
  "CMakeFiles/bench_fig1_alternatives.dir/bench_fig1_alternatives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
