# Empty dependencies file for bench_fig10_pingpong.
# This may be replaced when dependencies are built.
