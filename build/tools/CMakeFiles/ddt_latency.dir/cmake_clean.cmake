file(REMOVE_RECURSE
  "CMakeFiles/ddt_latency.dir/ddt_latency.cpp.o"
  "CMakeFiles/ddt_latency.dir/ddt_latency.cpp.o.d"
  "ddt_latency"
  "ddt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
