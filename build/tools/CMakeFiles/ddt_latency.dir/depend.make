# Empty dependencies file for ddt_latency.
# This may be replaced when dependencies are built.
