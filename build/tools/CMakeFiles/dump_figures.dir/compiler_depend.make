# Empty compiler generated dependencies file for dump_figures.
# This may be replaced when dependencies are built.
