file(REMOVE_RECURSE
  "CMakeFiles/dump_figures.dir/dump_figures.cpp.o"
  "CMakeFiles/dump_figures.dir/dump_figures.cpp.o.d"
  "dump_figures"
  "dump_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
