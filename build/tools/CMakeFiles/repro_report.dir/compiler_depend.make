# Empty compiler generated dependencies file for repro_report.
# This may be replaced when dependencies are built.
