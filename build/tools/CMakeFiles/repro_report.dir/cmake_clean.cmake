file(REMOVE_RECURSE
  "CMakeFiles/repro_report.dir/repro_report.cpp.o"
  "CMakeFiles/repro_report.dir/repro_report.cpp.o.d"
  "repro_report"
  "repro_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
