file(REMOVE_RECURSE
  "CMakeFiles/fft_reshape.dir/fft_reshape.cpp.o"
  "CMakeFiles/fft_reshape.dir/fft_reshape.cpp.o.d"
  "fft_reshape"
  "fft_reshape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_reshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
