# Empty dependencies file for fft_reshape.
# This may be replaced when dependencies are built.
