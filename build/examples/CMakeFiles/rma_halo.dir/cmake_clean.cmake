file(REMOVE_RECURSE
  "CMakeFiles/rma_halo.dir/rma_halo.cpp.o"
  "CMakeFiles/rma_halo.dir/rma_halo.cpp.o.d"
  "rma_halo"
  "rma_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
