# Empty dependencies file for rma_halo.
# This may be replaced when dependencies are built.
