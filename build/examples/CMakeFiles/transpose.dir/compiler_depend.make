# Empty compiler generated dependencies file for transpose.
# This may be replaced when dependencies are built.
