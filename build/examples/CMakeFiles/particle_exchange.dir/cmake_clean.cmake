file(REMOVE_RECURSE
  "CMakeFiles/particle_exchange.dir/particle_exchange.cpp.o"
  "CMakeFiles/particle_exchange.dir/particle_exchange.cpp.o.d"
  "particle_exchange"
  "particle_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
