file(REMOVE_RECURSE
  "CMakeFiles/scalapack_gather.dir/scalapack_gather.cpp.o"
  "CMakeFiles/scalapack_gather.dir/scalapack_gather.cpp.o.d"
  "scalapack_gather"
  "scalapack_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalapack_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
