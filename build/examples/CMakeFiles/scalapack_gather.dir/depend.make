# Empty dependencies file for scalapack_gather.
# This may be replaced when dependencies are built.
