file(REMOVE_RECURSE
  "CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o"
  "CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o.d"
  "cg_poisson"
  "cg_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
