# Empty compiler generated dependencies file for shmem_stencil.
# This may be replaced when dependencies are built.
