file(REMOVE_RECURSE
  "CMakeFiles/shmem_stencil.dir/shmem_stencil.cpp.o"
  "CMakeFiles/shmem_stencil.dir/shmem_stencil.cpp.o.d"
  "shmem_stencil"
  "shmem_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmem_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
