
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_btl_bml.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_btl_bml.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_btl_bml.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_cursor_pack.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_cursor_pack.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_cursor_pack.cpp.o.d"
  "/root/repo/tests/test_darray.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_darray.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_darray.cpp.o.d"
  "/root/repo/tests/test_datatype.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_datatype.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_datatype.cpp.o.d"
  "/root/repo/tests/test_dev_engine.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_dev_engine.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_dev_engine.cpp.o.d"
  "/root/repo/tests/test_engine_sweeps.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_engine_sweeps.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_engine_sweeps.cpp.o.d"
  "/root/repo/tests/test_gpu_protocols.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_gpu_protocols.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_gpu_protocols.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_mpi_host.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_mpi_host.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_mpi_host.cpp.o.d"
  "/root/repo/tests/test_pack_api.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_pack_api.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_pack_api.cpp.o.d"
  "/root/repo/tests/test_requests.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_requests.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_requests.cpp.o.d"
  "/root/repo/tests/test_reshape_property.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_reshape_property.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_reshape_property.cpp.o.d"
  "/root/repo/tests/test_rma.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_rma.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_rma.cpp.o.d"
  "/root/repo/tests/test_shmem.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_shmem.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_shmem.cpp.o.d"
  "/root/repo/tests/test_simgpu.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_simgpu.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_simgpu.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_timing_model.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_timing_model.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_timing_model.cpp.o.d"
  "/root/repo/tests/test_vtime.cpp" "tests/CMakeFiles/gpuddt_tests.dir/test_vtime.cpp.o" "gcc" "tests/CMakeFiles/gpuddt_tests.dir/test_vtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gpuddt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/rma/CMakeFiles/gpuddt_rma.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/gpuddt_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpuddt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gpuddt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/gpuddt_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/gpuddt_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpuddt_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
