# Empty compiler generated dependencies file for gpuddt_tests.
# This may be replaced when dependencies are built.
