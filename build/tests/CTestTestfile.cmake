# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gpuddt_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_stencil2d "/root/repo/build/examples/stencil2d")
set_tests_properties(example_stencil2d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_particle_exchange "/root/repo/build/examples/particle_exchange")
set_tests_properties(example_particle_exchange PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_fft_reshape "/root/repo/build/examples/fft_reshape")
set_tests_properties(example_fft_reshape PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_transpose "/root/repo/build/examples/transpose")
set_tests_properties(example_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_shmem_stencil "/root/repo/build/examples/shmem_stencil")
set_tests_properties(example_shmem_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_scalapack_gather "/root/repo/build/examples/scalapack_gather")
set_tests_properties(example_scalapack_gather PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_rma_halo "/root/repo/build/examples/rma_halo")
set_tests_properties(example_rma_halo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cg_poisson "/root/repo/build/examples/cg_poisson")
set_tests_properties(example_cg_poisson PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(repro_report_quick "/root/repo/build/tools/repro_report" "--quick")
set_tests_properties(repro_report_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
