file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_mpi.dir/bml.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/bml.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/btl.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/btl.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/coll.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/coll.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/cpu_pack.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/cpu_pack.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/cursor.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/cursor.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/datatype.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/pml.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/pml.cpp.o.d"
  "CMakeFiles/gpuddt_mpi.dir/runtime.cpp.o"
  "CMakeFiles/gpuddt_mpi.dir/runtime.cpp.o.d"
  "libgpuddt_mpi.a"
  "libgpuddt_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
