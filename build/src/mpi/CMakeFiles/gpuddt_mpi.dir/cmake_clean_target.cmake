file(REMOVE_RECURSE
  "libgpuddt_mpi.a"
)
