# Empty dependencies file for gpuddt_mpi.
# This may be replaced when dependencies are built.
