
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/bml.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/bml.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/bml.cpp.o.d"
  "/root/repo/src/mpi/btl.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/btl.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/btl.cpp.o.d"
  "/root/repo/src/mpi/coll.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/coll.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/coll.cpp.o.d"
  "/root/repo/src/mpi/cpu_pack.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/cpu_pack.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/cpu_pack.cpp.o.d"
  "/root/repo/src/mpi/cursor.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/cursor.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/cursor.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/pml.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/pml.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/pml.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/mpi/CMakeFiles/gpuddt_mpi.dir/runtime.cpp.o" "gcc" "src/mpi/CMakeFiles/gpuddt_mpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simgpu/CMakeFiles/gpuddt_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
