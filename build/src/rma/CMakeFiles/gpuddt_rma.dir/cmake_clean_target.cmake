file(REMOVE_RECURSE
  "libgpuddt_rma.a"
)
