# Empty compiler generated dependencies file for gpuddt_rma.
# This may be replaced when dependencies are built.
