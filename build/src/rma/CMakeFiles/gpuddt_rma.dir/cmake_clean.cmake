file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_rma.dir/window.cpp.o"
  "CMakeFiles/gpuddt_rma.dir/window.cpp.o.d"
  "libgpuddt_rma.a"
  "libgpuddt_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
