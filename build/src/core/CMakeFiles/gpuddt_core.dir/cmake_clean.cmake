file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_core.dir/dev.cpp.o"
  "CMakeFiles/gpuddt_core.dir/dev.cpp.o.d"
  "CMakeFiles/gpuddt_core.dir/dev_cache.cpp.o"
  "CMakeFiles/gpuddt_core.dir/dev_cache.cpp.o.d"
  "CMakeFiles/gpuddt_core.dir/engine.cpp.o"
  "CMakeFiles/gpuddt_core.dir/engine.cpp.o.d"
  "CMakeFiles/gpuddt_core.dir/kernels.cpp.o"
  "CMakeFiles/gpuddt_core.dir/kernels.cpp.o.d"
  "CMakeFiles/gpuddt_core.dir/layouts.cpp.o"
  "CMakeFiles/gpuddt_core.dir/layouts.cpp.o.d"
  "libgpuddt_core.a"
  "libgpuddt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
