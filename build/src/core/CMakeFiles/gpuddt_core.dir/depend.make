# Empty dependencies file for gpuddt_core.
# This may be replaced when dependencies are built.
