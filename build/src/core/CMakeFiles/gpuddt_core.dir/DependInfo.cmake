
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dev.cpp" "src/core/CMakeFiles/gpuddt_core.dir/dev.cpp.o" "gcc" "src/core/CMakeFiles/gpuddt_core.dir/dev.cpp.o.d"
  "/root/repo/src/core/dev_cache.cpp" "src/core/CMakeFiles/gpuddt_core.dir/dev_cache.cpp.o" "gcc" "src/core/CMakeFiles/gpuddt_core.dir/dev_cache.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/gpuddt_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/gpuddt_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/gpuddt_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/gpuddt_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/layouts.cpp" "src/core/CMakeFiles/gpuddt_core.dir/layouts.cpp.o" "gcc" "src/core/CMakeFiles/gpuddt_core.dir/layouts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/gpuddt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/gpuddt_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
