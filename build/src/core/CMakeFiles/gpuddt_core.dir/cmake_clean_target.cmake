file(REMOVE_RECURSE
  "libgpuddt_core.a"
)
