file(REMOVE_RECURSE
  "libgpuddt_protocols.a"
)
