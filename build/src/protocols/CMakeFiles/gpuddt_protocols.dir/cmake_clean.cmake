file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_protocols.dir/gpu_plugin.cpp.o"
  "CMakeFiles/gpuddt_protocols.dir/gpu_plugin.cpp.o.d"
  "libgpuddt_protocols.a"
  "libgpuddt_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
