# Empty compiler generated dependencies file for gpuddt_protocols.
# This may be replaced when dependencies are built.
