file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_shmem.dir/shmem.cpp.o"
  "CMakeFiles/gpuddt_shmem.dir/shmem.cpp.o.d"
  "libgpuddt_shmem.a"
  "libgpuddt_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
