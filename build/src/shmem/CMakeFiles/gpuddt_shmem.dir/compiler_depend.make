# Empty compiler generated dependencies file for gpuddt_shmem.
# This may be replaced when dependencies are built.
