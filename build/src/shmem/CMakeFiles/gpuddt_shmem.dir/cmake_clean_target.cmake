file(REMOVE_RECURSE
  "libgpuddt_shmem.a"
)
