file(REMOVE_RECURSE
  "libgpuddt_baselines.a"
)
