file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_baselines.dir/alternatives.cpp.o"
  "CMakeFiles/gpuddt_baselines.dir/alternatives.cpp.o.d"
  "CMakeFiles/gpuddt_baselines.dir/mvapich_plugin.cpp.o"
  "CMakeFiles/gpuddt_baselines.dir/mvapich_plugin.cpp.o.d"
  "CMakeFiles/gpuddt_baselines.dir/vectorize.cpp.o"
  "CMakeFiles/gpuddt_baselines.dir/vectorize.cpp.o.d"
  "libgpuddt_baselines.a"
  "libgpuddt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
