
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alternatives.cpp" "src/baselines/CMakeFiles/gpuddt_baselines.dir/alternatives.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuddt_baselines.dir/alternatives.cpp.o.d"
  "/root/repo/src/baselines/mvapich_plugin.cpp" "src/baselines/CMakeFiles/gpuddt_baselines.dir/mvapich_plugin.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuddt_baselines.dir/mvapich_plugin.cpp.o.d"
  "/root/repo/src/baselines/vectorize.cpp" "src/baselines/CMakeFiles/gpuddt_baselines.dir/vectorize.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuddt_baselines.dir/vectorize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuddt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gpuddt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/gpuddt_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
