# Empty compiler generated dependencies file for gpuddt_baselines.
# This may be replaced when dependencies are built.
