file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_harness.dir/harness.cpp.o"
  "CMakeFiles/gpuddt_harness.dir/harness.cpp.o.d"
  "libgpuddt_harness.a"
  "libgpuddt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
