# Empty dependencies file for gpuddt_harness.
# This may be replaced when dependencies are built.
