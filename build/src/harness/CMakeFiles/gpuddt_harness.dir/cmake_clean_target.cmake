file(REMOVE_RECURSE
  "libgpuddt_harness.a"
)
