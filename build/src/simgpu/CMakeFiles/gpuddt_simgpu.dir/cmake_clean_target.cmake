file(REMOVE_RECURSE
  "libgpuddt_simgpu.a"
)
