file(REMOVE_RECURSE
  "CMakeFiles/gpuddt_simgpu.dir/runtime.cpp.o"
  "CMakeFiles/gpuddt_simgpu.dir/runtime.cpp.o.d"
  "libgpuddt_simgpu.a"
  "libgpuddt_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuddt_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
