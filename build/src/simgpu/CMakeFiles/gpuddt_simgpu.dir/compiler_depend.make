# Empty compiler generated dependencies file for gpuddt_simgpu.
# This may be replaced when dependencies are built.
