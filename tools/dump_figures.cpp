// dump_figures: write the data series behind every reproduced figure as
// CSV files (default into ./figdata), ready for plots/plot_figures.py.
// Unlike the google-benchmark binaries this sweeps full size ranges and
// emits one tidy file per figure.
//
//   $ ./dump_figures [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/datatype.h"

using namespace gpuddt;

namespace {

std::string g_dir = "figdata";

FILE* open_csv(const char* name, const char* header) {
  const std::string path = g_dir + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", header);
  return f;
}

sg::MachineConfig machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = std::size_t{3} << 30;
  return m;
}

mpi::RuntimeConfig pp_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine = machine();
  cfg.progress_timeout_ms = 60000;
  return cfg;
}

const std::int64_t kSizes[] = {256, 512, 1024, 2048, 4096};

void fig6() {
  FILE* f = open_csv("fig6_kernel_bandwidth.csv",
                     "N,C_gbps,V_gbps,T_gbps,Tstair_gbps");
  for (std::int64_t n : kSizes) {
    auto v = core::submatrix_type(n, n / 2, n + 512);
    const double c = harness::memcpy_d2d_bandwidth(v->size(), machine());
    const double bv = harness::kernel_pack_bandwidth(v, 1, {}, machine());
    const double bt = harness::kernel_pack_bandwidth(
        core::lower_triangular_type(n, n), 1, {}, machine());
    const double bs = harness::kernel_pack_bandwidth(
        core::stair_triangular_type(n, n, 128), 1, {}, machine());
    std::fprintf(f, "%lld,%.2f,%.2f,%.2f,%.2f\n",
                 static_cast<long long>(n), c, bv, bt, bs);
  }
  std::fclose(f);
}

void fig7() {
  FILE* f = open_csv(
      "fig7_pack_unpack.csv",
      "N,V_d2d_ms,T_d2d_ms,T_pipeline_ms,T_cached_ms,V_d2d2h_ms,V_cpy_ms");
  for (std::int64_t n : kSizes) {
    auto run = [&](const mpi::DatatypePtr& dt, bool pipeline, bool cache,
                   harness::PackTarget target) {
      harness::PackBenchSpec spec;
      spec.dt = dt;
      spec.machine = machine();
      spec.engine.pipeline_conversion = pipeline;
      spec.engine.cache_enabled = cache;
      spec.warmup = cache ? 1 : 0;
      spec.target = target;
      return static_cast<double>(harness::run_pack_bench(spec).avg_ns) / 1e6;
    };
    auto v = core::submatrix_type(n, n / 2, n + 512);
    auto t = core::lower_triangular_type(n, n);
    std::fprintf(f, "%lld,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                 static_cast<long long>(n),
                 run(v, true, true, harness::PackTarget::kDevice),
                 run(t, false, false, harness::PackTarget::kDevice),
                 run(t, true, false, harness::PackTarget::kDevice),
                 run(t, true, true, harness::PackTarget::kDevice),
                 run(v, true, true, harness::PackTarget::kDeviceHost),
                 run(v, true, true, harness::PackTarget::kZeroCopy));
  }
  std::fclose(f);
}

void fig8() {
  FILE* f = open_csv("fig8_vs_memcpy2d.csv",
                     "blocks,block_bytes,kernel_d2d_gbps,mcp2d_d2d_gbps,"
                     "kernel_d2h_gbps,mcp2d_d2h_gbps");
  for (std::int64_t nblocks : {1024, 8192}) {
    for (std::int64_t bs :
         {64, 120, 128, 448, 512, 1000, 1024, 2048, 4096}) {
      sg::Machine m(machine());
      sg::HostContext ctx(m, 0);
      sg::Stream stream(&m.device(0));
      const std::int64_t pitch = (bs + 127) / 128 * 128 + 128;
      const std::int64_t total = nblocks * bs;
      auto* src = static_cast<std::byte*>(sg::Malloc(ctx, nblocks * pitch));
      auto* dev = static_cast<std::byte*>(sg::Malloc(ctx, total));
      auto* mapped = static_cast<std::byte*>(
          sg::HostAlloc(ctx, static_cast<std::size_t>(total), true));
      std::vector<std::byte> host(static_cast<std::size_t>(total));
      const mpi::RegularPattern pat{0, bs, pitch, nblocks};
      auto gbps = [&](vt::Time dur) {
        return dur > 0 ? static_cast<double>(total) /
                             static_cast<double>(dur)
                       : 0.0;
      };
      vt::Time t0 = ctx.clock.now();
      vt::Time fin = core::pack_vector_kernel(ctx, stream, src, pat, 0,
                                              total, dev, 64);
      const double k_d2d = gbps(fin - t0);
      ctx.clock.wait_until(fin);
      t0 = ctx.clock.now();
      sg::Memcpy2D(ctx, dev, static_cast<std::size_t>(bs), src,
                   static_cast<std::size_t>(pitch),
                   static_cast<std::size_t>(bs),
                   static_cast<std::size_t>(nblocks));
      const double m_d2d = gbps(ctx.clock.now() - t0);
      t0 = ctx.clock.now();
      fin = core::pack_vector_kernel(ctx, stream, src, pat, 0, total,
                                     mapped, 64);
      const double k_d2h = gbps(fin - t0);
      ctx.clock.wait_until(fin);
      t0 = ctx.clock.now();
      sg::Memcpy2D(ctx, host.data(), static_cast<std::size_t>(bs), src,
                   static_cast<std::size_t>(pitch),
                   static_cast<std::size_t>(bs),
                   static_cast<std::size_t>(nblocks));
      const double m_d2h = gbps(ctx.clock.now() - t0);
      std::fprintf(f, "%lld,%lld,%.2f,%.2f,%.2f,%.2f\n",
                   static_cast<long long>(nblocks),
                   static_cast<long long>(bs), k_d2d, m_d2d, k_d2h, m_d2h);
    }
  }
  std::fclose(f);
}

void figs_9_10() {
  FILE* f9 = open_csv("fig9_pcie_bandwidth.csv", "N,C_gbps,V_gbps,T_gbps");
  FILE* f10 = open_csv(
      "fig10_pingpong.csv",
      "N,SM1_V_ms,SM1_T_ms,SM2_V_ms,SM2_T_ms,IB_V_ms,IB_T_ms,"
      "SM2_V_mvapich_ms,SM2_T_mvapich_ms,IB_V_mvapich_ms,IB_T_mvapich_ms");
  for (std::int64_t n : kSizes) {
    auto v = core::submatrix_type(n, n / 2, n + 512);
    auto t = core::lower_triangular_type(n, n);
    auto c = mpi::Datatype::contiguous(v->size() / 8, mpi::kDouble());
    auto pp = [&](const mpi::DatatypePtr& dt, mpi::RuntimeConfig cfg,
                  bool baseline = false) {
      harness::PingPongSpec spec;
      spec.cfg = std::move(cfg);
      spec.dt0 = spec.dt1 = dt;
      if (baseline)
        spec.plugin = std::make_shared<base::MvapichLikePlugin>();
      return harness::run_pingpong(spec);
    };
    auto one = pp_cfg();
    one.device_of = [](int) { return 0; };
    auto ib = pp_cfg();
    ib.ranks_per_node = 1;
    const auto rc = pp(c, pp_cfg());
    const auto rv = pp(v, pp_cfg());
    const auto rt_ = pp(t, pp_cfg());
    std::fprintf(f9, "%lld,%.2f,%.2f,%.2f\n", static_cast<long long>(n),
                 rc.bandwidth_gbps(), rv.bandwidth_gbps(),
                 rt_.bandwidth_gbps());
    auto ms = [](const harness::PingPongResult& r) {
      return static_cast<double>(r.avg_roundtrip) / 1e6;
    };
    std::fprintf(
        f10, "%lld,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
        static_cast<long long>(n), ms(pp(v, one)), ms(pp(t, one)), ms(rv),
        ms(rt_), ms(pp(v, ib)), ms(pp(t, ib)), ms(pp(v, pp_cfg(), true)),
        ms(pp(t, pp_cfg(), true)), ms(pp(v, ib, true)),
        ms(pp(t, ib, true)));
  }
  std::fclose(f9);
  std::fclose(f10);
}

void figs_11_12() {
  FILE* f = open_csv("fig11_12_reshape_transpose.csv",
                     "N,reshape_ms,reshape_mvapich_ms,transpose_ms,"
                     "transpose_mvapich_ms");
  for (std::int64_t n : {256, 512, 1024, 2048}) {
    auto v = core::submatrix_type(n, n / 2, n + 512);
    auto c = mpi::Datatype::contiguous(v->size() / 8, mpi::kDouble());
    auto dense = mpi::Datatype::contiguous(n * n / 4, mpi::kDouble());
    auto trans = core::transpose_type(n / 2, n / 2);
    auto pp = [&](const mpi::DatatypePtr& a, const mpi::DatatypePtr& b,
                  bool baseline) {
      harness::PingPongSpec spec;
      spec.cfg = pp_cfg();
      spec.dt0 = a;
      spec.dt1 = b;
      spec.iters = 2;
      if (baseline)
        spec.plugin = std::make_shared<base::MvapichLikePlugin>();
      return static_cast<double>(
                 harness::run_pingpong(spec).avg_roundtrip) /
             1e6;
    };
    std::fprintf(f, "%lld,%.3f,%.3f,%.3f,%.3f\n", static_cast<long long>(n),
                 pp(v, c, false), pp(v, c, true), pp(dense, trans, false),
                 pp(dense, trans, true));
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_dir = argv[1];
  std::filesystem::create_directories(g_dir);
  std::printf("writing figure data into %s/ ...\n", g_dir.c_str());
  fig6();
  std::printf("  fig6_kernel_bandwidth.csv\n");
  fig7();
  std::printf("  fig7_pack_unpack.csv\n");
  fig8();
  std::printf("  fig8_vs_memcpy2d.csv\n");
  figs_9_10();
  std::printf("  fig9_pcie_bandwidth.csv, fig10_pingpong.csv\n");
  figs_11_12();
  std::printf("  fig11_12_reshape_transpose.csv\n");
  std::printf("done; plot with plots/plot_figures.py\n");
  return 0;
}
