#!/usr/bin/env python3
"""Documentation lint for docs/.

The docs tree makes grep-checkable claims: it names repo files, env vars,
command-line flags, and metric counter families. Each of those drifts
silently when code moves - a renamed bench flag or a dropped env var
leaves the sentence looking just as authoritative as the day it was true.
This lint (the docs-side sibling of determinism_lint.py) re-derives every
such claim from the tree on each run:

  broken_ref      -- a repo path mentioned in a doc (docs/foo.md,
                     src/bar/baz.h, tools/x.py, ... or a relative
                     markdown link target) that does not exist.
  unknown_env     -- a GPUDDT_* environment/build variable documented but
                     never read anywhere under src/, tools/, bench/,
                     tests/, examples/ or the CMake files.
  unknown_flag    -- a --command-line-flag documented but absent from the
                     same corpus.
  unknown_family  -- a `family.metric` counter documented in
                     docs/metrics.md whose family is not pre-registered
                     in kKnownFamilies (tools/metrics_diff.cpp).
  undocumented_family -- a kKnownFamilies entry that docs/metrics.md
                     never mentions (reported against metrics.md line 1).

A finding on a line carrying (or directly below) the waiver comment

    <!-- doc-lint: allow(<rule>) - <reason> -->

is suppressed; the waiver must name the rule and carry a reason.

Usage: doc_lint.py <repo-root>
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

REF = re.compile(
    r"\b(?:docs|src|tools|bench|tests|examples)/[A-Za-z0-9_./-]*"
    r"[A-Za-z0-9_-]\.[A-Za-z0-9_]+"
)
MDLINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
ENV = re.compile(r"\bGPUDDT_[A-Z0-9_]+\b")
FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9_-]{2,}")
METRIC = re.compile(r"`([a-z_]+)\.([a-z0-9_.*]+)`")
WAIVER = re.compile(r"<!--\s*doc-lint:\s*allow\(([a-z_,\s]+)\)\s*-\s*\S")

CORPUS_DIRS = ("src", "tools", "bench", "tests", "examples")
CORPUS_SUFFIXES = {".h", ".cpp", ".py", ".sh", ".cmake", ".txt", ".json"}
NOT_A_METRIC_SUFFIX = {"md", "json", "cpp", "h", "py", "sh", "txt", "cmake"}

# Flags owned by external tools the docs legitimately invoke (cmake,
# ctest, ...); the corpus only proves flags this repo itself parses.
EXTERNAL_FLAGS = {"--preset"}

# Dump sections that are not counter families: `trace.dropped` is a field
# of the gpuddt-metrics-v1 trace section (docs/tracing.md), never a
# gated counter, so kKnownFamilies rightly omits it.
NONCOUNTER_NAMESPACES = {"trace."}


def load_corpus(root: Path) -> str:
    """All source/tooling text the docs may make claims about."""
    chunks = []
    for d in CORPUS_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.is_file() and p.suffix in CORPUS_SUFFIXES:
                chunks.append(p.read_text(errors="replace"))
    for name in ("CMakeLists.txt", "CMakePresets.json"):
        p = root / name
        if p.is_file():
            chunks.append(p.read_text(errors="replace"))
    return "\n".join(chunks)


def known_families(root: Path) -> set:
    """The kKnownFamilies initializer in tools/metrics_diff.cpp."""
    src = root / "tools" / "metrics_diff.cpp"
    if not src.is_file():
        return set()
    m = re.search(r"kKnownFamilies\[\]\s*=\s*\{(.*?)\};",
                  src.read_text(errors="replace"), re.DOTALL)
    if not m:
        return set()
    return set(re.findall(r'"([a-z_]+\.)"', m.group(1)))


def waived(rule: str, lines: list, i: int) -> bool:
    for line in (lines[i], lines[i - 1] if i > 0 else ""):
        m = WAIVER.search(line)
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            return True
    return False


def lint_doc(root: Path, doc: Path, corpus: str, families: set) -> list:
    findings = []
    lines = doc.read_text(errors="replace").splitlines()
    in_fence = False
    for i, line in enumerate(lines):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue

        for m in REF.finditer(line):
            if not (root / m.group(0)).is_file():
                if not waived("broken_ref", lines, i):
                    findings.append((doc, i + 1, "broken_ref", m.group(0)))
        for m in MDLINK.finditer(line):
            target = m.group(1)
            if re.match(r"[a-z]+:", target):  # http:, https:, mailto:
                continue
            if not (doc.parent / target).exists():
                if not waived("broken_ref", lines, i):
                    findings.append((doc, i + 1, "broken_ref", target))

        for m in ENV.finditer(line):
            if m.group(0) not in corpus:
                if not waived("unknown_env", lines, i):
                    findings.append((doc, i + 1, "unknown_env", m.group(0)))

        # Fenced blocks are often shell transcripts of external tools;
        # only prose and inline code make flag claims we hold the tree to.
        if not in_fence:
            for m in FLAG.finditer(line):
                if m.group(0) in EXTERNAL_FLAGS:
                    continue
                if m.group(0) not in corpus:
                    if not waived("unknown_flag", lines, i):
                        findings.append(
                            (doc, i + 1, "unknown_flag", m.group(0)))

        if doc.name == "metrics.md":
            for m in METRIC.finditer(line):
                token = m.group(0).strip("`")
                if "/" in token or token.rsplit(".", 1)[-1] in \
                        NOT_A_METRIC_SUFFIX:
                    continue
                family = m.group(1) + "."
                if family in NONCOUNTER_NAMESPACES:
                    continue
                if family not in families:
                    if not waived("unknown_family", lines, i):
                        findings.append(
                            (doc, i + 1, "unknown_family", token))
    return findings


def main(argv: list) -> int:
    if len(argv) != 2:
        print("usage: doc_lint.py <repo-root>", file=sys.stderr)
        return 2
    root = Path(argv[1])
    docs = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() \
        else []
    if not docs:
        print(f"doc_lint: no docs/*.md under {root}", file=sys.stderr)
        return 2
    corpus = load_corpus(root)
    families = known_families(root)

    findings = []
    for doc in docs:
        findings.extend(lint_doc(root, doc, corpus, families))

    metrics_md = root / "docs" / "metrics.md"
    if metrics_md.is_file() and families:
        text = metrics_md.read_text(errors="replace")
        for fam in sorted(families):
            # Documented means a backticked `family.` or `family.metric`
            # mention - prose that merely contains the word doesn't count.
            if not re.search(rf"`{re.escape(fam)}", text):
                findings.append(
                    (metrics_md, 1, "undocumented_family", fam))

    for path, lineno, rule, text in sorted(findings):
        print(f"{path}:{lineno}: [{rule}] {text}")
    if findings:
        print(
            f"doc_lint: {len(findings)} finding(s); waive a deliberate "
            "mention with '<!-- doc-lint: allow(<rule>) - <reason> -->'",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
