// Per-fragment critical-path profiler over gpuddt traces.
//
// Reconstructs the fragment dependency DAG from a trace - either the
// Chrome Trace Event Format array (--trace-format=chrome) or the v1
// gpuddt-metrics dump's trace section - using two edge kinds:
//
//   flow edges   events sharing a non-zero fragment flow id
//                (mpi::frag_flow: conv -> H2D desc -> pack kernel ->
//                wire/RDMA GET -> unpack, across ranks), and
//   stage edges  queueing on one (rank, stage-row) timeline: an event
//                waits for the previous event on its row.
//
// From the DAG it computes the end-to-end critical path (backward walk
// from the last-finishing event, always taking the predecessor that
// released the current event last), splits every stage's contribution
// into work (the span itself) vs. wait (the gap the path spent blocked
// before it), and reports an overlap-efficiency ratio per the paper's
// pipelining model (Section 4.1):
//
//   serial     = sum of all span durations (zero overlap)
//   bottleneck = busiest (rank, stage) row (perfect pipelining cannot
//                beat its busiest stage)
//   efficiency = (serial - span) / (serial - bottleneck), clamped to
//                [0, 1]; 1 when serial == bottleneck (nothing to overlap)
//
// The wait/work accounting telescopes exactly: head wait + sum of path
// work and wait equals the end-to-end span, so the report is internally
// consistent by construction. Virtual time is deterministic
// (docs/determinism.md), so both the report and the gpuddt-critpath-v1
// JSON are byte-identical across runs and can be baseline-gated.
//
// Usage:
//   trace_critpath FILE               human-readable report
//   trace_critpath --json FILE        gpuddt-critpath-v1 JSON on stdout
//   trace_critpath --json-out=P FILE  ... written to P (report on stdout)
//   trace_critpath --check-efficiency FILE
//       additionally require 0 < efficiency <= 1 (exit 1 otherwise);
//       composable with --json/--json-out.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace {

using gpuddt::obs::json::Value;

struct Span {
  std::string name;
  std::string stage;  // named row ("conv", "kernel", "wire", ...)
  int pid = 0;
  std::int64_t begin = 0;  // virtual ns
  std::int64_t end = 0;
  std::uint64_t flow = 0;
};

Value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return gpuddt::obs::json::parse(ss.str());
}

std::int64_t us_to_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1000.0));
}

/// Chrome export: "X" events only; stage names come from the
/// thread_name metadata the exporter always emits.
std::vector<Span> load_chrome(const Value& doc) {
  std::map<std::pair<int, int>, std::string> rows;
  for (const Value& ev : doc.as_array()) {
    if (!ev.is_object() || !ev.contains("ph")) continue;
    if (ev.at("ph").as_string() != "M") continue;
    if (ev.at("name").as_string() != "thread_name") continue;
    rows[{static_cast<int>(ev.at("pid").as_int()),
          static_cast<int>(ev.at("tid").as_int())}] =
        ev.at("args").at("name").as_string();
  }
  std::vector<Span> spans;
  for (const Value& ev : doc.as_array()) {
    if (!ev.is_object() || !ev.contains("ph")) continue;
    if (ev.at("ph").as_string() != "X") continue;
    Span s;
    s.name = ev.at("name").as_string();
    s.pid = static_cast<int>(ev.at("pid").as_int());
    s.begin = us_to_ns(ev.at("ts").as_double());
    s.end = s.begin + us_to_ns(ev.at("dur").as_double());
    const int tid = static_cast<int>(ev.at("tid").as_int());
    const auto it = rows.find({s.pid, tid});
    s.stage = it != rows.end() ? it->second : "tid" + std::to_string(tid);
    if (ev.contains("args") && ev.at("args").contains("flow"))
      s.flow = static_cast<std::uint64_t>(ev.at("args").at("flow").as_double());
    spans.push_back(std::move(s));
  }
  return spans;
}

/// v1 dump: the trace section carries raw ns and the producer's
/// name/cat, from which the exporter's own row mapping names the stage.
std::vector<Span> load_v1(const Value& doc) {
  std::vector<Span> spans;
  const Value& events = doc.at("trace").at("events");
  for (const Value& ev : events.as_array()) {
    gpuddt::obs::TraceEvent te;
    te.name = ev.at("name").as_string();
    te.cat = ev.at("cat").as_string();
    Span s;
    s.name = te.name;
    s.stage = gpuddt::obs::stage_row(te);
    const int pid = static_cast<int>(ev.at("pid").as_int());
    const int tid = static_cast<int>(ev.at("tid").as_int());
    s.pid = pid >= 0 ? pid : (tid >= 0 ? tid : 0);
    s.begin = ev.at("begin").as_int();
    s.end = ev.at("end").as_int();
    if (ev.contains("flow"))
      s.flow = static_cast<std::uint64_t>(ev.at("flow").as_double());
    spans.push_back(std::move(s));
  }
  return spans;
}

struct PathStep {
  std::size_t idx;          // span index
  std::int64_t work = 0;    // ns on the critical path doing this span
  std::int64_t wait = 0;    // ns the path was blocked before this span
};

struct Report {
  std::int64_t t0 = 0, t1 = 0;        // trace extent
  std::int64_t serial = 0;            // sum of all durations
  std::int64_t bottleneck = 0;        // busiest (rank, stage) row
  std::string bottleneck_stage;
  std::int64_t head_wait = 0;         // t0 -> first path event
  double efficiency = 0.0;
  std::size_t flows = 0;
  std::vector<PathStep> path;         // time order
  // stage key ("rank0:kernel") -> accumulated work/wait on the path.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> blame;
};

std::string stage_key(const Span& s) {
  return "rank" + std::to_string(s.pid) + ":" + s.stage;
}

Report analyze(std::vector<Span>& spans) {
  if (spans.empty()) throw std::runtime_error("trace contains no spans");
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.begin != b.begin) return a.begin < b.begin;
                     return a.end < b.end;
                   });

  Report r;
  r.t0 = spans.front().begin;
  r.t1 = spans.front().end;
  // Per-(rank, stage) occupancy as an interval UNION, not a duration sum:
  // pipelined fragments overlap on their own row, and the pipelining
  // bound is "the span cannot beat the busiest row's occupied time" -
  // which is only a valid lower bound without double counting. Spans are
  // begin-sorted, so the union is a single merge pass.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> open;
  std::map<std::string, std::int64_t> busy;
  for (const Span& s : spans) {
    r.t0 = std::min(r.t0, s.begin);
    r.t1 = std::max(r.t1, s.end);
    r.serial += std::max<std::int64_t>(0, s.end - s.begin);
    const std::string key = stage_key(s);
    const auto it = open.find(key);
    if (it == open.end()) {
      open.emplace(key, std::make_pair(s.begin, s.end));
    } else if (s.begin <= it->second.second) {
      it->second.second = std::max(it->second.second, s.end);
    } else {
      busy[key] += it->second.second - it->second.first;
      it->second = {s.begin, s.end};
    }
  }
  for (const auto& [key, iv] : open) busy[key] += iv.second - iv.first;
  for (const auto& [key, ns] : busy) {
    if (ns > r.bottleneck) {
      r.bottleneck = ns;
      r.bottleneck_stage = key;
    }
  }

  // Predecessor indices: previous member of the same flow chain, and
  // previous event on the same (rank, stage) row.
  std::map<std::uint64_t, std::size_t> flow_last;
  std::map<std::string, std::size_t> row_last;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> flow_pred(spans.size(), kNone);
  std::vector<std::size_t> row_pred(spans.size(), kNone);
  std::size_t sink = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.flow != 0) {
      const auto it = flow_last.find(s.flow);
      if (it != flow_last.end()) flow_pred[i] = it->second;
      flow_last[s.flow] = i;
    }
    const std::string row = stage_key(s);
    const auto it = row_last.find(row);
    if (it != row_last.end()) row_pred[i] = it->second;
    row_last[row] = i;
    if (s.end >= spans[sink].end) sink = i;
  }
  r.flows = flow_last.size();

  // Backward walk: of the two possible predecessors, blame the one that
  // released this event last (max end). Both predecessors are earlier in
  // the sorted order, so the walk terminates.
  std::vector<std::size_t> chain{sink};
  for (std::size_t cur = sink;;) {
    const std::size_t f = flow_pred[cur];
    const std::size_t q = row_pred[cur];
    std::size_t pred = kNone;
    if (f != kNone && q != kNone)
      pred = spans[f].end >= spans[q].end ? f : q;
    else
      pred = f != kNone ? f : q;
    if (pred == kNone) break;
    chain.push_back(pred);
    cur = pred;
  }
  std::reverse(chain.begin(), chain.end());

  // Forward accounting sweep. The cursor starts at t0 and ends at the
  // sink's end == t1, so head_wait + sum(work + wait) == t1 - t0 exactly.
  std::int64_t cursor = r.t0;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    const Span& s = spans[chain[k]];
    PathStep step;
    step.idx = chain[k];
    step.wait = std::max<std::int64_t>(0, s.begin - cursor);
    cursor = std::max(cursor, s.begin);
    step.work = std::max<std::int64_t>(0, s.end - cursor);
    cursor = std::max(cursor, s.end);
    if (k == 0) {
      r.head_wait = step.wait;
      step.wait = 0;
    }
    auto& [w, wt] = r.blame[stage_key(s)];
    w += step.work;
    wt += step.wait;
    r.path.push_back(step);
  }

  const std::int64_t span = r.t1 - r.t0;
  if (r.serial <= r.bottleneck) {
    r.efficiency = 1.0;  // one busy stage: nothing to overlap
  } else {
    r.efficiency = static_cast<double>(r.serial - span) /
                   static_cast<double>(r.serial - r.bottleneck);
    r.efficiency = std::clamp(r.efficiency, 0.0, 1.0);
  }
  return r;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

std::string to_json(const std::vector<Span>& spans, const Report& r) {
  std::string out;
  out.reserve(4096);
  char buf[64];
  out += "{\n  \"schema\": \"gpuddt-critpath-v1\",\n  \"t0_ns\": ";
  append_i64(out, r.t0);
  out += ",\n  \"t1_ns\": ";
  append_i64(out, r.t1);
  out += ",\n  \"span_ns\": ";
  append_i64(out, r.t1 - r.t0);
  out += ",\n  \"serial_ns\": ";
  append_i64(out, r.serial);
  out += ",\n  \"bottleneck_ns\": ";
  append_i64(out, r.bottleneck);
  out += ",\n  \"bottleneck_stage\": \"" +
         gpuddt::obs::json::escape(r.bottleneck_stage) + "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"overlap_efficiency\": %.6f,\n",
                r.efficiency);
  out += buf;
  out += "  \"events\": ";
  append_i64(out, static_cast<std::int64_t>(spans.size()));
  out += ",\n  \"flows\": ";
  append_i64(out, static_cast<std::int64_t>(r.flows));
  out += ",\n  \"head_wait_ns\": ";
  append_i64(out, r.head_wait);
  out += ",\n  \"critical_path\": [";
  bool first = true;
  for (const PathStep& st : r.path) {
    const Span& s = spans[st.idx];
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + gpuddt::obs::json::escape(s.name) +
           "\", \"stage\": \"" + gpuddt::obs::json::escape(stage_key(s)) +
           "\", \"begin_ns\": ";
    append_i64(out, s.begin);
    out += ", \"end_ns\": ";
    append_i64(out, s.end);
    out += ", \"work_ns\": ";
    append_i64(out, st.work);
    out += ", \"wait_ns\": ";
    append_i64(out, st.wait);
    std::snprintf(buf, sizeof(buf), ", \"flow\": %" PRIu64 "}", s.flow);
    out += buf;
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"stage_blame\": {";
  first = true;
  for (const auto& [key, ww] : r.blame) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + gpuddt::obs::json::escape(key) + "\": {\"work_ns\": ";
    append_i64(out, ww.first);
    out += ", \"wait_ns\": ";
    append_i64(out, ww.second);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void print_report(const std::vector<Span>& spans, const Report& r) {
  const std::int64_t span = r.t1 - r.t0;
  std::printf("trace: %zu spans, %zu fragment flows\n", spans.size(),
              r.flows);
  std::printf("end-to-end span     %12" PRId64 " ns  [%" PRId64
              " .. %" PRId64 "]\n",
              span, r.t0, r.t1);
  std::printf("serial (no overlap) %12" PRId64 " ns\n", r.serial);
  std::printf("bottleneck stage    %12" PRId64 " ns  (%s)\n", r.bottleneck,
              r.bottleneck_stage.c_str());
  std::printf("overlap efficiency  %15.3f  (achieved/ideal overlap)\n",
              r.efficiency);
  std::printf("\ncritical path (%zu steps, head wait %" PRId64 " ns):\n",
              r.path.size(), r.head_wait);
  std::printf("  %-18s %-20s %12s %12s %12s\n", "span", "stage", "begin_ns",
              "work_ns", "wait_ns");
  for (const PathStep& st : r.path) {
    const Span& s = spans[st.idx];
    std::printf("  %-18s %-20s %12" PRId64 " %12" PRId64 " %12" PRId64 "\n",
                s.name.c_str(), stage_key(s).c_str(), s.begin, st.work,
                st.wait);
  }
  std::printf("\nper-stage blame (path time only):\n");
  std::printf("  %-20s %12s %12s\n", "stage", "work_ns", "wait_ns");
  for (const auto& [key, ww] : r.blame) {
    std::printf("  %-20s %12" PRId64 " %12" PRId64 "\n", key.c_str(),
                ww.first, ww.second);
  }
  // Internal-consistency line the tests pin: the accounting telescopes.
  std::int64_t work = 0, wait = 0;
  for (const PathStep& st : r.path) {
    work += st.work;
    wait += st.wait;
  }
  std::printf("\naccounting: head_wait %" PRId64 " + work %" PRId64
              " + wait %" PRId64 " = span %" PRId64 " ns\n",
              r.head_wait, work, wait, span);
}

}  // namespace

int main(int argc, char** argv) {
  bool json_stdout = false;
  bool check_eff = false;
  std::string json_out;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_stdout = true;
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json-out="));
    } else if (arg == "--check-efficiency") {
      check_eff = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_critpath: unknown flag " << arg << "\n";
      return 2;
    } else if (file.empty()) {
      file = arg;
    } else {
      std::cerr << "trace_critpath: more than one input file\n";
      return 2;
    }
  }
  if (file.empty()) {
    std::cerr << "usage: trace_critpath [--json] [--json-out=PATH] "
                 "[--check-efficiency] TRACE.json\n"
                 "TRACE.json: a --trace-format=chrome array or a "
                 "gpuddt-metrics-v1 dump with trace events\n";
    return 2;
  }

  try {
    const Value doc = load(file);
    std::vector<Span> spans;
    if (doc.is_array()) {
      spans = load_chrome(doc);
    } else if (doc.is_object() && doc.contains("schema") &&
               doc.at("schema").as_string() == "gpuddt-metrics-v1") {
      spans = load_v1(doc);
    } else {
      std::cerr << file << ": neither a chrome trace array nor a "
                << "gpuddt-metrics-v1 dump\n";
      return 1;
    }
    const Report r = analyze(spans);
    const std::string json = to_json(spans, r);
    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::binary);
      out << json;
      if (!out) throw std::runtime_error("cannot write " + json_out);
    }
    if (json_stdout) {
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else {
      print_report(spans, r);
    }
    if (check_eff && !(r.efficiency > 0.0 && r.efficiency <= 1.0)) {
      std::cerr << "trace_critpath: overlap efficiency "
                << r.efficiency << " outside (0, 1]\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trace_critpath: " << e.what() << "\n";
    return 1;
  }
}
