#!/usr/bin/env python3
"""Determinism lint for src/.

The simulator's contract is bit-identical metrics and traces for a fixed
seed (docs/determinism.md, tools/check_determinism.sh). PR 3 fixed a
class of nondeterminism bugs that all share a signature greppable at
review time; this lint keeps the class from coming back:

  wall_clock        -- reading the host clock (std::chrono system/steady
                       /high_resolution clocks, time(), gettimeofday,
                       clock_gettime). Simulated time must come from the
                       virtual clock (src/vtime/).
  unordered_iter    -- range-for over an unordered_{map,set}. Iteration
                       order is hash-seed and allocator dependent; any
                       output or decision derived from it jitters.
  pointer_order     -- ordered containers or sorts keyed on pointers
                       (std::map<T*, ...>, std::set<T*>). Address order
                       changes run to run under ASLR.

A finding on a line ending with the waiver comment

    // det-lint: allow(<rule>) - <reason>

is suppressed; the waiver must name the rule and carry a reason. The
waiver may also sit on the line directly above the finding.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

RULES = {
    "wall_clock": re.compile(
        r"(?:std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0|&)"
        r")"
    ),
    "unordered_iter": re.compile(
        r"for\s*\(.*:\s*[^)]*\bunordered_(?:map|set|multimap|multiset)\b"
    ),
    "pointer_order": re.compile(
        r"std::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?\w[\w:]*\s*\*"
    ),
}

WAIVER = re.compile(r"//\s*det-lint:\s*allow\(([a-z_,\s]+)\)\s*-\s*\S")


def waived(rule: str, line: str) -> bool:
    m = WAIVER.search(line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def lint_file(path: Path) -> list:
    findings = []
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        print(f"determinism_lint: cannot read {path}: {e}", file=sys.stderr)
        return [(path, 0, "io", str(e))]
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0] if "det-lint:" not in line else line
        for rule, pat in RULES.items():
            if not pat.search(code):
                continue
            if waived(rule, line):
                continue
            if i > 0 and waived(rule, lines[i - 1]):
                continue
            findings.append((path, i + 1, rule, line.strip()))
    return findings


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: determinism_lint.py <file-or-dir>...", file=sys.stderr)
        return 2
    targets = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            targets.extend(sorted(p.rglob("*.h")))
            targets.extend(sorted(p.rglob("*.cpp")))
        elif p.is_file():
            targets.append(p)
        else:
            print(f"determinism_lint: no such path: {p}", file=sys.stderr)
            return 2
    findings = []
    for f in sorted(set(targets)):
        findings.extend(lint_file(f))
    for path, lineno, rule, text in sorted(findings):
        print(f"{path}:{lineno}: [{rule}] {text}")
    if findings:
        print(
            f"determinism_lint: {len(findings)} finding(s); waive a "
            "deliberate use with '// det-lint: allow(<rule>) - <reason>'",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
