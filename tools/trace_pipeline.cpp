// trace_pipeline: visualize the pipelined RDMA protocol of Section 4.1.
//
// Runs one GPU-to-GPU transfer of a triangular matrix with fragment
// tracing enabled and prints a virtual-time Gantt chart: one row per
// fragment, showing when it was packed+announced, staged (one-sided get),
// and unpacked. The staircase overlap - fragment k+1 packed while
// fragment k is still being unpacked - is the mechanism that cuts the
// paper's transfer cost to "the data transfer plus the most expensive
// stage on a single fragment".
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/layouts.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 1024;

  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine.num_devices = 2;
  cfg.machine.device_memory_bytes = std::size_t{2} << 30;
  cfg.gpu_frag_bytes = 512 << 10;

  mpi::Runtime rt(cfg);
  auto plugin = std::make_shared<proto::GpuDatatypePlugin>();
  rt.set_gpu_plugin(plugin);

  std::vector<proto::GpuDatatypePlugin::FragTrace> trace;
  vt::Time recv_done = 0;

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    auto dt = core::lower_triangular_type(n, n);
    auto* buf = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
    if (p.rank() == 0) {
      comm.send(buf, 1, dt, 1, 0);
    } else {
      plugin->enable_tracing(p);
      comm.recv(buf, 1, dt, 0, 0);
      trace = plugin->trace(p);
      recv_done = p.clock().now();
    }
  });

  if (trace.empty()) {
    std::printf("no fragments traced (message too small?)\n");
    return 1;
  }

  const vt::Time t0 = trace.front().packed_and_wired;
  vt::Time t1 = 0;
  for (const auto& f : trace) t1 = std::max(t1, f.unpacked);
  const double span = static_cast<double>(t1 - t0);
  constexpr int kWidth = 72;
  auto col = [&](vt::Time t) {
    const double x = static_cast<double>(t - t0) / span;
    return std::clamp(static_cast<int>(x * kWidth), 0, kWidth - 1);
  };

  std::printf("pipelined RDMA transfer: triangular N=%lld (%.1f MB), "
              "%zu fragments of %lld KB\n",
              static_cast<long long>(n),
              static_cast<double>(core::lower_triangle_elems(n) * 8) /
                  (1 << 20),
              trace.size(),
              static_cast<long long>(cfg.gpu_frag_bytes >> 10));
  std::printf("virtual timeline: 0 .. %.1f us   "
              "(P = packed+announced, = in staging get, # unpacking)\n\n",
              span / 1e3);
  for (const auto& f : trace) {
    std::string row(kWidth, ' ');
    const int a = col(f.packed_and_wired);
    const int b = col(f.staged);
    const int c = col(f.unpacked);
    row[a] = 'P';
    for (int i = a + 1; i <= b; ++i) row[i] = '=';
    for (int i = b + 1; i <= c; ++i) row[i] = '#';
    std::printf("frag %3lld |%s|\n", static_cast<long long>(f.frag),
                row.c_str());
  }

  // Quantify the overlap the chart shows.
  int overlaps = 0;
  for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
    if (trace[k + 1].packed_and_wired < trace[k].unpacked) ++overlaps;
  }
  std::printf("\n%d of %zu adjacent fragment pairs overlap "
              "(pack(k+1) before unpack(k) finished)\n",
              overlaps, trace.size() - 1);
  std::printf("receive completed at %.1f us of virtual time\n",
              static_cast<double>(recv_done) / 1e3);
  return 0;
}
