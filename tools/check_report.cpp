// Summarize a gpuddt-check-v1 report (the bench --check-out JSON).
//
// Usage:
//   check_report FILE [--max-hazards N] [--max-violations N]
//       Print the tracker totals and every stored diagnostic, then exit
//       non-zero when the hazard / DEV-violation totals exceed the caps
//       (both default 0, i.e. any finding fails). Used by the
//       bench_check_clean CTest entry to keep the suite hazard-free.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using gpuddt::obs::json::Value;

Value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return gpuddt::obs::json::parse(ss.str());
}

std::int64_t int_of(const Value& doc, const char* key) {
  return static_cast<std::int64_t>(doc.at(key).as_double());
}

void print_access(const char* tag, const Value& a) {
  std::printf("      %s %s on %s: [%#llx, +%lld) %s over [%lld, %lld)\n", tag,
              a.at("label").as_string().c_str(),
              a.at("queue").as_string().c_str(),
              static_cast<unsigned long long>(a.at("ptr").as_double()),
              static_cast<long long>(a.at("len").as_double()),
              a.at("write").as_bool() ? "write" : "read",
              static_cast<long long>(a.at("start").as_double()),
              static_cast<long long>(a.at("finish").as_double()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::int64_t max_hazards = 0;
  std::int64_t max_violations = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-hazards") == 0 && i + 1 < argc) {
      max_hazards = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-violations") == 0 && i + 1 < argc) {
      max_violations = std::atoll(argv[++i]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::cerr << "usage: check_report FILE [--max-hazards N]"
                   " [--max-violations N]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: check_report FILE [--max-hazards N]"
                 " [--max-violations N]\n";
    return 2;
  }
  try {
    const Value doc = load(path);
    if (!doc.is_object() || !doc.contains("schema") ||
        doc.at("schema").as_string() != "gpuddt-check-v1") {
      throw std::runtime_error(path + ": not a gpuddt-check-v1 report");
    }
    const std::int64_t hazards = int_of(doc, "hazards");
    const std::int64_t violations = int_of(doc, "dev_violations");
    std::printf("%s:\n", path.c_str());
    std::printf("  ops tracked      %12lld\n",
                static_cast<long long>(int_of(doc, "ops_tracked")));
    std::printf("  ranges tracked   %12lld\n",
                static_cast<long long>(int_of(doc, "ranges_tracked")));
    std::printf("  records dropped  %12lld\n",
                static_cast<long long>(int_of(doc, "records_dropped")));
    std::printf("  hazards          %12lld\n",
                static_cast<long long>(hazards));
    std::printf("  dev violations   %12lld\n",
                static_cast<long long>(violations));
    for (const auto& d : doc.at("diagnostics").as_array()) {
      std::printf("  [%s] %s: %s\n", d.at("kind").as_string().c_str(),
                  d.at("type").as_string().c_str(),
                  d.at("message").as_string().c_str());
      if (d.contains("a")) print_access("first ", d.at("a"));
      if (d.contains("b")) print_access("second", d.at("b"));
    }
    int rc = 0;
    if (hazards > max_hazards) {
      std::cerr << "FAIL: " << hazards << " hazard(s) > " << max_hazards
                << " allowed\n";
      rc = 1;
    }
    if (violations > max_violations) {
      std::cerr << "FAIL: " << violations << " DEV violation(s) > "
                << max_violations << " allowed\n";
      rc = 1;
    }
    if (rc == 0) std::printf("  clean\n");
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "check_report: " << e.what() << "\n";
    return 1;
  }
}
