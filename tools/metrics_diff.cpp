// Diff / validate gpuddt metrics dumps (the --metrics-out JSON).
//
// Usage:
//   metrics_diff A.json B.json
//       Print counters and histogram means that changed between the two
//       dumps (A = baseline, B = candidate), with absolute and relative
//       deltas. Exits 0 whether or not anything changed.
//   metrics_diff --validate FILE KEY...
//       Parse FILE, check the schema marker, and require each KEY to be
//       present as a counter or histogram. Additionally every metric in
//       the dump must belong to a known counter family (kKnownFamilies
//       below; docs/metrics.md documents each) - an
//       unknown prefix means an instrumentation site invented a family
//       without documenting it in docs/metrics.md. Exits 1 on any
//       failure (used by the bench_metrics_validate CTest entry).
//   metrics_diff --validate-chrome FILE
//       Parse FILE as a Chrome Trace Event Format array (the
//       --trace-format=chrome output; docs/tracing.md) and check its
//       shape: a JSON array whose "X" events carry non-negative dur and
//       monotone non-decreasing ts, and whose flow events (ph s/t/f)
//       form well-nested flows - one start and one finish per id, no
//       steps outside the start..finish window, no dangling flows, and
//       every binding point inside an "X" slice on the same pid/tid.
//       Exits 1 on any failure.
//   metrics_diff --validate-latency FILE
//       Parse FILE as a gpuddt-latency-v1 report (the --latency-out
//       output; docs/latency.md) and check its shape: flowstats
//       counters present, every class carries count/bytes, ordered
//       exact-rank percentiles, a full per-stage work/wait breakdown,
//       and a tail block naming a valid dominant stage; per-class
//       counts must sum to flowstats.flows. Exits 1 on any failure.
//   metrics_diff --gate A.json B.json KEY<=PCT...
//       Regression gate: for each KEY (counter or histogram mean), require
//       the candidate B not to exceed the baseline A by more than PCT
//       percent. A missing key in either dump fails. Exits 1 on any
//       breached threshold (wired as the bench_metrics_gate CTest entry).
//   metrics_diff --gate --baseline BASELINE.json CANDIDATE.json
//       Exact gate: canonicalize both dumps (obs/canon.h - counters and
//       histograms only, trace dropped) and require them to match
//       byte-for-byte. Virtual time is deterministic, so a checked-in
//       baseline needs no headroom; any divergence is a behavior change
//       that must be reviewed (and the baseline regenerated with
//       tools/regen_baselines.sh). Prints the per-key differences and
//       exits 1 on mismatch.
//
// Exit codes (both --gate forms distinguish the failure kinds so CI
// logs are diagnosable at a glance):
//   0 - ok
//   1 - gate breached / baseline mismatch / validation failure
//   2 - usage error
//   3 - baseline file missing or unreadable (first gate operand)
//   4 - candidate file missing or unreadable (second gate operand)
//   metrics_diff --canon FILE
//       Print FILE's canonical form on stdout (how baselines are
//       regenerated).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/canon.h"
#include "obs/json.h"

namespace {

using gpuddt::obs::json::Value;

constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBaselineMissing = 3;
constexpr int kExitCandidateMissing = 4;

Value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return gpuddt::obs::json::parse(ss.str());
}

/// Load one gate operand, exiting with `missing_code` (3 = baseline,
/// 4 = candidate) when the file cannot be opened or parsed - distinct
/// from the mismatch exit so a CI failure names its own cause.
Value load_gate_operand(const std::string& path, const char* role,
                        int missing_code) {
  try {
    return load(path);
  } catch (const std::exception& e) {
    std::cerr << "metrics_diff: " << role << " " << e.what() << "\n";
    std::exit(missing_code);
  }
}

void check_schema(const Value& doc, const std::string& path) {
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "gpuddt-metrics-v1") {
    throw std::runtime_error(path + ": not a gpuddt-metrics-v1 dump");
  }
}

/// Every counter family a dump may legally contain. One family per
/// instrumented layer; docs/metrics.md documents each. Adding an
/// instrumentation site with a new prefix requires extending this list
/// (and the docs) in the same change.
constexpr const char* kKnownFamilies[] = {
    "engine.", "dev_cache.", "check.",  "pml.",     "gpu.",     "coll.",
    "rma.",    "shmem.",     "verify.", "sim.",     "latency.", "flowstats.",
};

bool known_family(const std::string& name) {
  for (const char* fam : kKnownFamilies) {
    if (name.rfind(fam, 0) == 0) return true;
  }
  return false;
}

int validate(const std::string& path, int nkeys, char** keys) {
  const Value doc = load(path);
  check_schema(doc, path);
  const auto& counters = doc.at("counters").as_object();
  const auto& histos = doc.at("histograms").as_object();
  int missing = 0;
  for (int i = 0; i < nkeys; ++i) {
    const std::string key = keys[i];
    if (counters.count(key) == 0 && histos.count(key) == 0) {
      std::cerr << "missing metric: " << key << "\n";
      ++missing;
    }
  }
  int unknown = 0;
  for (const auto* section : {&counters, &histos}) {
    for (const auto& kv : *section) {
      if (!known_family(kv.first)) {
        std::cerr << "unknown counter family: " << kv.first << "\n";
        ++unknown;
      }
    }
  }
  if (missing > 0 || unknown > 0) {
    std::cerr << path << ": " << missing << " required metric(s) missing, "
              << unknown << " metric(s) outside the known families\n";
    return 1;
  }
  std::cout << path << ": ok (" << counters.size() << " counters, "
            << histos.size() << " histograms)\n";
  return 0;
}

/// Fail `path` with a one-line reason; returns 1 so callers can
/// `return fail_latency(...)`.
int fail_latency(const std::string& path, const std::string& why) {
  std::cerr << path << ": " << why << "\n";
  return 1;
}

/// Require `obj[key]` to be a non-negative number; returns its value via
/// `*out` (unchanged on failure).
bool non_negative(const gpuddt::obs::json::Object& obj, const std::string& key,
                  const std::string& ctx, const std::string& path,
                  double* out) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    std::cerr << path << ": " << ctx << " missing '" << key << "'\n";
    return false;
  }
  const double v = it->second.as_double();
  if (v < 0.0) {
    std::cerr << path << ": " << ctx << " '" << key << "' is negative\n";
    return false;
  }
  *out = v;
  return true;
}

/// Shape check for a gpuddt-latency-v1 report (docs/latency.md - the
/// --latency-out output): the flowstats counter block must be present and
/// every class entry must carry count/bytes, ordered exact-rank
/// percentiles (p50 <= p99 <= p999 <= max), the full per-stage
/// flows/work/wait breakdown, and a tail block whose dominant stage is
/// either a stage name or "none". Exits 1 on any failure (wired as the
/// bench_latency_validate CTest entry).
int validate_latency(const std::string& path) {
  const Value doc = load(path);
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "gpuddt-latency-v1") {
    return fail_latency(path, "not a gpuddt-latency-v1 report");
  }
  if (!doc.contains("flowstats") || !doc.at("flowstats").is_object())
    return fail_latency(path, "missing flowstats section");
  const auto& fs = doc.at("flowstats").as_object();
  double spans = 0.0;
  double flows = 0.0;
  double dropped = 0.0;
  for (const char* key : {"spans", "flows", "dropped", "late_spans",
                          "capped"}) {
    double v = 0.0;
    if (!non_negative(fs, key, "flowstats", path, &v)) return 1;
    if (std::strcmp(key, "spans") == 0) spans = v;
    if (std::strcmp(key, "flows") == 0) flows = v;
    if (std::strcmp(key, "dropped") == 0) dropped = v;
  }
  if (!doc.contains("classes") || !doc.at("classes").is_object())
    return fail_latency(path, "missing classes section");
  const auto& classes = doc.at("classes").as_object();
  static constexpr const char* kStageNames[] = {
      "conv", "desc", "kernel", "wire", "rdma", "unpack", "other"};
  double class_flows = 0.0;
  for (const auto& [name, cls] : classes) {
    const std::string ctx = "class " + name;
    if (!cls.is_object())
      return fail_latency(path, ctx + " is not an object");
    const auto& obj = cls.as_object();
    double count = 0.0;
    double ignored = 0.0;
    if (!non_negative(obj, "count", ctx, path, &count)) return 1;
    if (!non_negative(obj, "bytes", ctx, path, &ignored)) return 1;
    if (count <= 0.0)
      return fail_latency(path, ctx + " has zero count");
    class_flows += count;
    if (obj.find("e2e") == obj.end() || !obj.at("e2e").is_object())
      return fail_latency(path, ctx + " missing e2e block");
    const auto& e2e = obj.at("e2e").as_object();
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
    if (!non_negative(e2e, "p50", ctx + " e2e", path, &p50) ||
        !non_negative(e2e, "p99", ctx + " e2e", path, &p99) ||
        !non_negative(e2e, "p999", ctx + " e2e", path, &p999) ||
        !non_negative(e2e, "max", ctx + " e2e", path, &max)) {
      return 1;
    }
    // Nearest-rank percentiles over one distribution are monotone in q.
    if (p50 > p99 || p99 > p999 || p999 > max) {
      return fail_latency(path, ctx + " percentiles not ordered (want p50 <= "
                                      "p99 <= p999 <= max)");
    }
    if (obj.find("stages") == obj.end() || !obj.at("stages").is_object())
      return fail_latency(path, ctx + " missing stages block");
    const auto& stages = obj.at("stages").as_object();
    for (const auto& [stage, sv] : stages) {
      bool known = false;
      for (const char* s : kStageNames) known = known || stage == s;
      if (!known)
        return fail_latency(path, ctx + " has unknown stage '" + stage + "'");
      if (!sv.is_object())
        return fail_latency(path, ctx + " stage " + stage + " not an object");
      const auto& st = sv.as_object();
      const std::string sctx = ctx + " stage " + stage;
      if (!non_negative(st, "flows", sctx, path, &ignored) ||
          !non_negative(st, "work", sctx, path, &ignored) ||
          !non_negative(st, "wait", sctx, path, &ignored)) {
        return 1;
      }
    }
    if (obj.find("tail") == obj.end() || !obj.at("tail").is_object())
      return fail_latency(path, ctx + " missing tail block");
    const auto& tail = obj.at("tail").as_object();
    if (!non_negative(tail, "count", ctx + " tail", path, &ignored) ||
        !non_negative(tail, "threshold", ctx + " tail", path, &ignored)) {
      return 1;
    }
    const auto dom = tail.find("dominant");
    if (dom == tail.end())
      return fail_latency(path, ctx + " tail missing 'dominant'");
    const std::string dname = dom->second.as_string();
    bool dom_ok = dname == "none";
    for (const char* s : kStageNames) dom_ok = dom_ok || dname == s;
    if (!dom_ok)
      return fail_latency(path, ctx + " tail dominant '" + dname +
                                    "' is not a stage name or \"none\"");
    if (tail.find("work") == tail.end() || !tail.at("work").is_object())
      return fail_latency(path, ctx + " tail missing work block");
  }
  // Cross-check: the per-class counts must add up to the flow total the
  // engine reported - a flow may not appear in a class without being
  // counted, nor be counted without a class (dropped flows are excluded
  // from both).
  if (class_flows != flows) {
    std::ostringstream why;
    why << "class counts sum to " << class_flows << " but flowstats.flows is "
        << flows;
    return fail_latency(path, why.str());
  }
  std::cout << path << ": ok (" << classes.size() << " classes, " << flows
            << " flows, " << spans << " spans, " << dropped << " dropped)\n";
  return 0;
}

/// Shape check for --trace-format=chrome output (docs/tracing.md),
/// including the fragment flow events: every flow id must open with one
/// "s", close with one "f", never continue after closing, and each flow
/// event's binding point must lie inside an "X" slice on the same
/// pid/tid (flow events bind to their enclosing slice, bp:"e").
int validate_chrome(const std::string& path) {
  const Value doc = load(path);
  if (!doc.is_array()) {
    std::cerr << path << ": not a JSON array\n";
    return 1;
  }
  int complete = 0;
  double last_ts = 0.0;
  bool have_ts = false;
  // The recorder marks a capacity-bounded capture with a
  // "trace_truncated" instant event (docs/tracing.md): the tail of the
  // timeline - including flow finishes - was dropped on purpose, so a
  // started-but-unfinished flow is expected there, not a grammar error.
  bool truncated = false;
  // (pid, tid) -> [begin, end] of every complete event, for flow binding.
  std::map<std::pair<double, double>,
           std::vector<std::pair<double, double>>>
      slices;
  for (const Value& ev : doc.as_array()) {
    if (!ev.is_object() || !ev.contains("ph") || !ev.contains("name") ||
        !ev.contains("pid") || !ev.contains("tid")) {
      std::cerr << path << ": event missing ph/name/pid/tid\n";
      return 1;
    }
    if (ev.at("ph").as_string() == "i" &&
        ev.at("name").as_string() == "trace_truncated") {
      truncated = true;
    }
    if (ev.at("ph").as_string() != "X") continue;
    ++complete;
    const double ts = ev.at("ts").as_double();
    const double dur = ev.at("dur").as_double();
    if (dur < 0.0) {
      std::cerr << path << ": negative dur at ts " << ts << "\n";
      return 1;
    }
    if (have_ts && ts < last_ts) {
      std::cerr << path << ": ts not monotone (" << ts << " after "
                << last_ts << ")\n";
      return 1;
    }
    last_ts = ts;
    have_ts = true;
    slices[{ev.at("pid").as_double(), ev.at("tid").as_double()}]
        .emplace_back(ts, ts + dur);
  }
  struct FlowState {
    bool started = false;
    bool finished = false;
  };
  std::map<double, FlowState> flows;
  for (const Value& ev : doc.as_array()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    if (!ev.contains("id") || !ev.contains("ts")) {
      std::cerr << path << ": flow event missing id/ts\n";
      return 1;
    }
    const double id = ev.at("id").as_double();
    FlowState& st = flows[id];
    if (ph == "s") {
      if (st.started) {
        std::cerr << path << ": duplicate flow start, id " << id << "\n";
        return 1;
      }
      st.started = true;
    } else {
      if (!st.started) {
        std::cerr << path << ": flow '" << ph << "' before start, id " << id
                  << "\n";
        return 1;
      }
      if (st.finished) {
        std::cerr << path << ": flow event after finish, id " << id << "\n";
        return 1;
      }
      if (ph == "f") st.finished = true;
    }
    // Binding point: the flow event's ts must fall inside some slice on
    // its own (pid, tid), or Perfetto has no span to anchor the arrow to.
    const double ts = ev.at("ts").as_double();
    const auto it =
        slices.find({ev.at("pid").as_double(), ev.at("tid").as_double()});
    bool bound = false;
    if (it != slices.end()) {
      for (const auto& [b, e] : it->second) {
        if (ts >= b && ts <= e) {
          bound = true;
          break;
        }
      }
    }
    if (!bound) {
      std::cerr << path << ": flow event at ts " << ts << " (id " << id
                << ") binds outside every slice on its pid/tid\n";
      return 1;
    }
  }
  int dangling = 0;
  for (const auto& [id, st] : flows) {
    if (!st.finished) {
      std::cerr << path << ": " << (truncated ? "warning: " : "")
                << "dangling flow (no finish), id " << id
                << (truncated ? " (trace_truncated present)" : "") << "\n";
      ++dangling;
    }
  }
  if (dangling > 0 && !truncated) return 1;
  std::cout << path << ": ok (" << doc.as_array().size() << " events, "
            << complete << " complete, " << flows.size() << " flows"
            << (truncated ? ", truncated" : "") << ")\n";
  return 0;
}

void diff_section(const char* title, const gpuddt::obs::json::Object& a,
                  const gpuddt::obs::json::Object& b,
                  double (*value_of)(const Value&)) {
  std::printf("== %s ==\n", title);
  int shown = 0;
  for (const auto& [name, bv] : b) {
    const auto it = a.find(name);
    const double vb = value_of(bv);
    if (it == a.end()) {
      std::printf("  + %-42s %14.0f\n", name.c_str(), vb);
      ++shown;
      continue;
    }
    const double va = value_of(it->second);
    if (va == vb) continue;
    const double rel = va != 0.0 ? (vb - va) / va * 100.0 : 0.0;
    std::printf("  ~ %-42s %14.0f -> %-14.0f (%+.1f%%)\n", name.c_str(), va,
                vb, rel);
    ++shown;
  }
  for (const auto& [name, av] : a) {
    if (b.find(name) == b.end()) {
      std::printf("  - %-42s %14.0f\n", name.c_str(), value_of(av));
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (no differences)\n");
}

int diff(const std::string& pa, const std::string& pb) {
  const Value a = load(pa);
  const Value b = load(pb);
  check_schema(a, pa);
  check_schema(b, pb);
  diff_section("counters", a.at("counters").as_object(),
               b.at("counters").as_object(),
               [](const Value& v) { return v.as_double(); });
  diff_section("histogram means", a.at("histograms").as_object(),
               b.at("histograms").as_object(),
               [](const Value& v) { return v.at("mean").as_double(); });
  return 0;
}

/// Value of `key` in a dump: counter value, or histogram mean. Returns
/// false when the key exists in neither section.
bool lookup(const Value& doc, const std::string& key, double* out) {
  const auto& counters = doc.at("counters").as_object();
  if (const auto it = counters.find(key); it != counters.end()) {
    *out = it->second.as_double();
    return true;
  }
  const auto& histos = doc.at("histograms").as_object();
  if (const auto it = histos.find(key); it != histos.end()) {
    *out = it->second.at("mean").as_double();
    return true;
  }
  return false;
}

/// Canonical text of one section entry, for exact per-key comparison.
std::string entry_text(const std::string& name, const Value& v,
                       bool histogram) {
  using gpuddt::obs::json::Object;
  Object doc{{"schema", Value(std::string("gpuddt-metrics-v1"))},
             {"counters", Value(Object{})},
             {"histograms", Value(Object{})}};
  doc[histogram ? "histograms" : "counters"] = Value(Object{{name, v}});
  return gpuddt::obs::canonical_metrics(Value(std::move(doc)));
}

/// Exact per-key comparison of a section; prints every divergence.
int diff_exact(const char* title, const gpuddt::obs::json::Object& a,
               const gpuddt::obs::json::Object& b, bool histogram) {
  int diffs = 0;
  for (const auto& [name, av] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      std::printf("FAIL %s %-42s only in baseline\n", title, name.c_str());
      ++diffs;
    } else if (entry_text(name, av, histogram) !=
               entry_text(name, it->second, histogram)) {
      if (histogram) {
        std::printf("FAIL %s %-42s differs\n", title, name.c_str());
      } else {
        std::printf("FAIL %s %-42s %14.0f -> %-14.0f\n", title, name.c_str(),
                    av.as_double(), it->second.as_double());
      }
      ++diffs;
    }
  }
  for (const auto& [name, bv] : b) {
    if (a.find(name) == a.end()) {
      std::printf("FAIL %s %-42s only in candidate\n", title, name.c_str());
      ++diffs;
    }
  }
  return diffs;
}

int gate_baseline(const std::string& pa, const std::string& pb) {
  const Value a = load_gate_operand(pa, "baseline", kExitBaselineMissing);
  const Value b = load_gate_operand(pb, "candidate", kExitCandidateMissing);
  // canonical_report dispatches on the schema marker, so the same gate
  // covers gpuddt-metrics-v1 dumps and gpuddt-latency-v1 reports.
  const std::string ca = gpuddt::obs::canonical_report(a);
  const std::string cb = gpuddt::obs::canonical_report(b);
  if (ca == cb) {
    std::printf("ok   %s == %s (canonical, %zu bytes)\n", pa.c_str(),
                pb.c_str(), ca.size());
    return 0;
  }
  std::printf("baseline mismatch: %s vs %s\n", pa.c_str(), pb.c_str());
  int diffs = 0;
  if (a.is_object() && a.contains("counters") && b.is_object() &&
      b.contains("counters")) {
    diffs = diff_exact("counter", a.at("counters").as_object(),
                       b.at("counters").as_object(), /*histogram=*/false) +
            diff_exact("histogram", a.at("histograms").as_object(),
                       b.at("histograms").as_object(), /*histogram=*/true);
  }
  std::cerr << (diffs > 0 ? diffs : 1)
            << " difference(s) against checked-in baseline " << pa << "\n"
            << "(intended change? regenerate with "
               "tools/regen_baselines.sh)\n";
  return kExitMismatch;
}

int canon(const std::string& path) {
  const std::string text = gpuddt::obs::canonical_report(load(path));
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int gate(const std::string& pa, const std::string& pb, int nspecs,
         char** specs) {
  const Value a = load_gate_operand(pa, "baseline", kExitBaselineMissing);
  const Value b = load_gate_operand(pb, "candidate", kExitCandidateMissing);
  check_schema(a, pa);
  check_schema(b, pb);
  int failures = 0;
  for (int i = 0; i < nspecs; ++i) {
    const std::string spec = specs[i];
    const std::size_t sep = spec.find("<=");
    if (sep == std::string::npos || sep == 0) {
      std::cerr << "bad gate spec (want KEY<=PCT): " << spec << "\n";
      ++failures;
      continue;
    }
    const std::string key = spec.substr(0, sep);
    char* end = nullptr;
    const double pct = std::strtod(spec.c_str() + sep + 2, &end);
    if (end == spec.c_str() + sep + 2 || *end != '\0') {
      std::cerr << "bad gate threshold in: " << spec << "\n";
      ++failures;
      continue;
    }
    double va = 0.0;
    double vb = 0.0;
    if (!lookup(a, key, &va)) {
      std::cerr << "FAIL " << key << ": missing from baseline " << pa << "\n";
      ++failures;
      continue;
    }
    if (!lookup(b, key, &vb)) {
      std::cerr << "FAIL " << key << ": missing from candidate " << pb
                << "\n";
      ++failures;
      continue;
    }
    // Directional: only growth beyond the allowance fails (a drop in a
    // cost-like metric is an improvement, not a regression).
    const double limit = va * (1.0 + pct / 100.0);
    const double rel = va != 0.0 ? (vb - va) / va * 100.0 : 0.0;
    if (vb > limit) {
      std::printf("FAIL %-42s %14.0f -> %-14.0f (%+.1f%% > +%g%%)\n",
                  key.c_str(), va, vb, rel, pct);
      ++failures;
    } else {
      std::printf("ok   %-42s %14.0f -> %-14.0f (%+.1f%% <= +%g%%)\n",
                  key.c_str(), va, vb, rel, pct);
    }
  }
  if (failures > 0) {
    std::cerr << failures << " gate(s) breached\n";
    return kExitMismatch;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::strcmp(argv[1], "--validate") == 0) {
      return validate(argv[2], argc - 3, argv + 3);
    }
    if (argc == 3 && std::strcmp(argv[1], "--validate-chrome") == 0) {
      return validate_chrome(argv[2]);
    }
    if (argc == 3 && std::strcmp(argv[1], "--validate-latency") == 0) {
      return validate_latency(argv[2]);
    }
    if (argc == 5 && std::strcmp(argv[1], "--gate") == 0 &&
        std::strcmp(argv[2], "--baseline") == 0) {
      return gate_baseline(argv[3], argv[4]);
    }
    if (argc >= 5 && std::strcmp(argv[1], "--gate") == 0) {
      return gate(argv[2], argv[3], argc - 4, argv + 4);
    }
    if (argc == 3 && std::strcmp(argv[1], "--canon") == 0) {
      return canon(argv[2]);
    }
    if (argc == 3) return diff(argv[1], argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "metrics_diff: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "usage: metrics_diff A.json B.json\n"
               "       metrics_diff --validate FILE KEY...\n"
               "       metrics_diff --validate-chrome FILE\n"
               "       metrics_diff --validate-latency FILE\n"
               "       metrics_diff --gate A.json B.json KEY<=PCT...\n"
               "       metrics_diff --gate --baseline BASE.json CAND.json\n"
               "       metrics_diff --canon FILE\n";
  return kExitUsage;
}
