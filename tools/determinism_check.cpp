// Determinism harness: prove a benchmark binary is bit-identical across
// runs.
//
// Usage:
//   determinism_check BENCH_BINARY... [-- BENCH_ARGS...]
//
// Runs each binary twice with --metrics-out into a scratch directory,
// canonicalizes both gpuddt-metrics-v1 dumps (obs/canon.h: counters and
// histograms, trace dropped) and requires the two canonical texts to
// match byte-for-byte. Virtual time has no tolerance: the simulator's
// clocks, resource reservations and cache behavior are fully determined
// by the program, so ANY divergence between two runs of the same binary
// is a determinism bug (historically: free-running rank threads racing on
// shared virtual-time state - see docs/determinism.md). Arguments after
// `--` are forwarded to every benchmark invocation (e.g. a
// --benchmark_filter for a quick gate).
//
// Exits 0 when every binary double-runs identically, 1 otherwise.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/canon.h"
#include "obs/json.h"

namespace {

std::string scratch_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
}

/// Shell-quote a single argument (the binaries and forwarded args come
/// from a trusted CTest/ci.sh command line; quoting just keeps paths with
/// spaces working).
std::string quote(const std::string& s) {
  std::string q = "'";
  for (const char c : s) {
    if (c == '\'') {
      q += "'\\''";
    } else {
      q += c;
    }
  }
  q += "'";
  return q;
}

bool run_once(const std::string& binary,
              const std::vector<std::string>& extra_args,
              const std::string& metrics_path, std::string* canonical) {
  std::string cmd = quote(binary);
  for (const std::string& a : extra_args) cmd += " " + quote(a);
  cmd += " --metrics-out=" + quote(metrics_path);
  cmd += " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::cerr << "FAIL " << binary << ": exit status " << rc
              << " (rerun without determinism_check for its output)\n";
    return false;
  }
  std::ifstream in(metrics_path, std::ios::binary);
  if (!in) {
    std::cerr << "FAIL " << binary << ": no metrics dump at " << metrics_path
              << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    *canonical = gpuddt::obs::canonical_metrics(
        gpuddt::obs::json::parse(ss.str()));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << binary << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

/// Print the first line where the two canonical texts diverge.
void report_divergence(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return;
    if (la != lb || ga != gb) {
      std::cerr << "  first divergence at canonical line " << line << ":\n"
                << "    run 1: " << (ga ? la : "<eof>") << "\n"
                << "    run 2: " << (gb ? lb : "<eof>") << "\n";
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> binaries;
  std::vector<std::string> extra_args;
  bool after_dashes = false;
  for (int i = 1; i < argc; ++i) {
    if (!after_dashes && std::string(argv[i]) == "--") {
      after_dashes = true;
    } else if (after_dashes) {
      extra_args.emplace_back(argv[i]);
    } else {
      binaries.emplace_back(argv[i]);
    }
  }
  if (binaries.empty()) {
    std::cerr << "usage: determinism_check BENCH_BINARY... [-- ARGS...]\n";
    return 2;
  }
  const std::string dir = scratch_dir();
  int failures = 0;
  for (const std::string& bin : binaries) {
    // Scratch names keyed by pid so parallel ctest invocations don't
    // clobber each other.
    const std::string tag = std::to_string(::getpid());
    const std::string p1 = dir + "/gpuddt_det_" + tag + "_a.json";
    const std::string p2 = dir + "/gpuddt_det_" + tag + "_b.json";
    std::string c1;
    std::string c2;
    const bool ok = run_once(bin, extra_args, p1, &c1) &&
                    run_once(bin, extra_args, p2, &c2);
    std::remove(p1.c_str());
    std::remove(p2.c_str());
    if (!ok) {
      ++failures;
      continue;
    }
    if (c1 != c2) {
      std::cerr << "FAIL " << bin
                << ": two runs produced different canonical metrics\n";
      report_divergence(c1, c2);
      ++failures;
      continue;
    }
    std::printf("ok   %-48s (%zu canonical bytes)\n", bin.c_str(),
                c1.size());
  }
  if (failures > 0) {
    std::cerr << failures << " binar" << (failures == 1 ? "y" : "ies")
              << " failed the determinism check\n";
    return 1;
  }
  return 0;
}
