// repro_report: run every experiment of the paper's evaluation and print
// a self-contained markdown report (the source of EXPERIMENTS.md's
// numbers). Unlike the google-benchmark binaries in bench/, this tool
// aggregates across experiments, computes the ratios the paper claims,
// and flags any claim that no longer holds.
//
//   $ ./repro_report            # full report (~a minute)
//   $ ./repro_report --quick    # smaller sizes
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/alternatives.h"
#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "protocols/gpu_plugin.h"

using namespace gpuddt;

namespace {

int g_checks = 0;
int g_failures = 0;

void claim(const char* what, bool ok) {
  ++g_checks;
  if (!ok) ++g_failures;
  std::printf("  - %s **%s**\n", what, ok ? "HOLDS" : "VIOLATED");
}

double ms(vt::Time t) { return static_cast<double>(t) / 1e6; }

sg::MachineConfig machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = std::size_t{3} << 30;
  return m;
}

mpi::RuntimeConfig pp_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine = machine();
  cfg.progress_timeout_ms = 60000;
  return cfg;
}

harness::PingPongResult pingpong(
    const mpi::DatatypePtr& dt0, const mpi::DatatypePtr& dt1,
    mpi::RuntimeConfig cfg,
    std::shared_ptr<mpi::GpuTransferPlugin> plugin = nullptr) {
  harness::PingPongSpec spec;
  spec.cfg = std::move(cfg);
  spec.dt0 = dt0;
  spec.dt1 = dt1;
  spec.plugin = std::move(plugin);
  return harness::run_pingpong(spec);
}

void fig6(std::int64_t n) {
  std::printf("\n## Figure 6 - kernel GPU memory bandwidth (N=%lld)\n\n",
              static_cast<long long>(n));
  auto v = core::submatrix_type(n, n / 2, n + 512);
  auto t = core::lower_triangular_type(n, n);
  auto stair = core::stair_triangular_type(n, n, 128);
  const double peak = harness::memcpy_d2d_bandwidth(v->size(), machine());
  const double bv = harness::kernel_pack_bandwidth(v, 1, {}, machine());
  const double bt = harness::kernel_pack_bandwidth(t, 1, {}, machine());
  const double bs = harness::kernel_pack_bandwidth(stair, 1, {}, machine());
  std::printf("| series | GB/s | vs cudaMemcpy |\n|---|---|---|\n");
  std::printf("| C (cudaMemcpy d2d) | %.1f | 1.00 |\n", peak);
  std::printf("| V (vector kernel) | %.1f | %.2f |\n", bv, bv / peak);
  std::printf("| T (indexed kernel) | %.1f | %.2f |\n", bt, bt / peak);
  std::printf("| T-stair (nb=128) | %.1f | %.2f |\n\n", bs, bs / peak);
  claim("V reaches >= 88%% of memcpy (paper ~94%%)", bv > 0.88 * peak);
  claim("T loses to occupancy: 70-90%% (paper ~80%%)",
        bt > 0.70 * peak && bt < 0.90 * peak);
  claim("stair recovers vector bandwidth", bs > 0.95 * bv);
}

void fig7(std::int64_t n) {
  std::printf("\n## Figure 7 - engine pack+unpack (T, N=%lld)\n\n",
              static_cast<long long>(n));
  harness::PackBenchSpec spec;
  spec.dt = core::lower_triangular_type(n, n);
  spec.machine = machine();
  spec.engine.cache_enabled = false;
  spec.engine.pipeline_conversion = false;
  const auto plain = harness::run_pack_bench(spec);
  spec.engine.pipeline_conversion = true;
  const auto pipe = harness::run_pack_bench(spec);
  spec.engine.cache_enabled = true;
  spec.warmup = 1;
  const auto cached = harness::run_pack_bench(spec);
  spec.target = harness::PackTarget::kDeviceHost;
  const auto d2d2h = harness::run_pack_bench(spec);
  spec.target = harness::PackTarget::kZeroCopy;
  const auto cpy = harness::run_pack_bench(spec);
  std::printf("| variant | ms |\n|---|---|\n");
  std::printf("| T-d2d (plain) | %.3f |\n", ms(plain.avg_ns));
  std::printf("| T-d2d-pipeline | %.3f |\n", ms(pipe.avg_ns));
  std::printf("| T-d2d-cached | %.3f |\n", ms(cached.avg_ns));
  std::printf("| T-d2d2h-cached | %.3f |\n", ms(d2d2h.avg_ns));
  std::printf("| T-cpy-cached (zero-copy) | %.3f |\n\n", ms(cpy.avg_ns));
  claim("pipelining nearly doubles performance (>=1.4x)",
        plain.avg_ns > 1.4 * pipe.avg_ns);
  claim("caching beats pipelining", cached.avg_ns < pipe.avg_ns);
  claim("zero-copy slightly faster than explicit staging",
        cpy.avg_ns < d2d2h.avg_ns);
}

void fig9(std::int64_t n) {
  std::printf("\n## Figure 9 - ping-pong PCI-E bandwidth (N=%lld)\n\n",
              static_cast<long long>(n));
  auto v = core::submatrix_type(n, n / 2, n + 512);
  auto t = core::lower_triangular_type(n, n);
  auto c = mpi::Datatype::contiguous(v->size() / 8, mpi::kDouble());
  const auto rv = pingpong(v, v, pp_cfg());
  const auto rt_ = pingpong(t, t, pp_cfg());
  const auto rc = pingpong(c, c, pp_cfg());
  std::printf("| series | GB/s | vs contiguous |\n|---|---|---|\n");
  std::printf("| C | %.2f | 1.00 |\n", rc.bandwidth_gbps());
  std::printf("| V | %.2f | %.2f |\n", rv.bandwidth_gbps(),
              rv.bandwidth_gbps() / rc.bandwidth_gbps());
  std::printf("| T | %.2f | %.2f |\n\n", rt_.bandwidth_gbps(),
              rt_.bandwidth_gbps() / rc.bandwidth_gbps());
  claim("V >= 75%% of contiguous (paper ~90%%)",
        rv.bandwidth_gbps() > 0.75 * rc.bandwidth_gbps());
  claim("T <= V <= C ordering",
        rt_.bandwidth_gbps() <= rv.bandwidth_gbps() * 1.02 &&
            rv.bandwidth_gbps() < rc.bandwidth_gbps());
}

void fig10(std::int64_t n) {
  std::printf("\n## Figure 10 - ping-pong vs MVAPICH-style (N=%lld)\n\n",
              static_cast<long long>(n));
  auto v = core::submatrix_type(n, n / 2, n + 512);
  auto t = core::lower_triangular_type(n, n);
  auto one_gpu = pp_cfg();
  one_gpu.device_of = [](int) { return 0; };
  auto ib = pp_cfg();
  ib.ranks_per_node = 1;
  auto mv = [] { return std::make_shared<base::MvapichLikePlugin>(); };

  struct Row {
    const char* name;
    harness::PingPongResult ours, theirs;
  };
  std::vector<Row> rows;
  rows.push_back({"SM 1GPU V", pingpong(v, v, one_gpu),
                  pingpong(v, v, one_gpu, mv())});
  rows.push_back({"SM 1GPU T", pingpong(t, t, one_gpu),
                  pingpong(t, t, one_gpu, mv())});
  rows.push_back({"SM 2GPU V", pingpong(v, v, pp_cfg()),
                  pingpong(v, v, pp_cfg(), mv())});
  rows.push_back({"SM 2GPU T", pingpong(t, t, pp_cfg()),
                  pingpong(t, t, pp_cfg(), mv())});
  rows.push_back({"IB V", pingpong(v, v, ib), pingpong(v, v, ib, mv())});
  rows.push_back({"IB T", pingpong(t, t, ib), pingpong(t, t, ib, mv())});
  std::printf("| config | ours (ms) | mvapich-style (ms) | speedup |\n");
  std::printf("|---|---|---|---|\n");
  for (const auto& r : rows) {
    std::printf("| %s | %.2f | %.2f | %.1fx |\n", r.name,
                ms(r.ours.avg_roundtrip), ms(r.theirs.avg_roundtrip),
                static_cast<double>(r.theirs.avg_roundtrip) /
                    static_cast<double>(r.ours.avg_roundtrip));
  }
  std::printf("\n");
  claim("ours faster in every configuration",
        [&] {
          for (const auto& r : rows)
            if (r.ours.avg_roundtrip >= r.theirs.avg_roundtrip) return false;
          return true;
        }());
  claim("baseline indexed blows up (>=3x)",
        rows[3].theirs.avg_roundtrip > 3 * rows[3].ours.avg_roundtrip);
  claim("1 GPU >= ~2x faster than 2 GPUs (paper: at least 2x)",
        rows[2].ours.avg_roundtrip >
            static_cast<vt::Time>(1.8 * static_cast<double>(
                                            rows[0].ours.avg_roundtrip)));
  // Local-staging option (Section 5.2's 10-20%).
  auto no_staging = pp_cfg();
  no_staging.recv_local_staging = false;
  const auto remote_read = pingpong(t, t, no_staging);
  std::printf("  local staging %.2f ms vs remote-read unpack %.2f ms\n",
              ms(rows[3].ours.avg_roundtrip), ms(remote_read.avg_roundtrip));
  claim("receiver local staging faster than remote-read unpack",
        rows[3].ours.avg_roundtrip < remote_read.avg_roundtrip);
}

void fig11_12(std::int64_t n) {
  std::printf("\n## Figures 11/12 - reshape and transpose (N=%lld)\n\n",
              static_cast<long long>(n));
  auto v = core::submatrix_type(n, n / 2, n + 512);
  auto c = mpi::Datatype::contiguous(v->size() / 8, mpi::kDouble());
  const auto ours = pingpong(v, c, pp_cfg());
  const auto theirs =
      pingpong(v, c, pp_cfg(), std::make_shared<base::MvapichLikePlugin>());
  std::printf("vector<->contiguous: ours %.2f ms, baseline %.2f ms\n",
              ms(ours.avg_roundtrip), ms(theirs.avg_roundtrip));
  claim("reshape beats baseline", ours.avg_roundtrip < theirs.avg_roundtrip);

  const std::int64_t tn = n / 2;
  auto dense = mpi::Datatype::contiguous(tn * tn, mpi::kDouble());
  auto trans = core::transpose_type(tn, tn);
  const auto t_ours = pingpong(dense, trans, pp_cfg());
  const auto t_theirs = pingpong(dense, trans, pp_cfg(),
                                 std::make_shared<base::MvapichLikePlugin>());
  std::printf("transpose (N=%lld): ours %.2f ms, baseline %.2f ms\n",
              static_cast<long long>(tn), ms(t_ours.avg_roundtrip),
              ms(t_theirs.avg_roundtrip));
  claim("transpose stress beats baseline by >=5x",
        t_theirs.avg_roundtrip > 5 * t_ours.avg_roundtrip);
}

void fig1(std::int64_t n) {
  std::printf("\n## Figure 1 - design alternatives, pack side (T, N=%lld)\n\n",
              static_cast<long long>(n));
  sg::Machine m(machine());
  sg::HostContext ctx(m, 0);
  auto dt = core::lower_triangular_type(n, n);
  const std::int64_t total = dt->size();
  const std::int64_t span = dt->true_extent() + 64;
  auto* src = static_cast<std::byte*>(sg::Malloc(ctx, span));
  auto* scratch = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(span), false));
  auto* hpk = static_cast<std::byte*>(
      sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  auto* dpk = static_cast<std::byte*>(sg::Malloc(ctx, total));
  const auto a = base::pack_stage_whole(ctx, dt, 1, src, scratch, hpk);
  const auto b = base::pack_per_block_d2h(ctx, dt, 1, src, hpk);
  const auto c = base::pack_per_block_d2d(ctx, dt, 1, src, dpk);
  core::GpuDatatypeEngine eng(ctx);
  const auto d = base::pack_gpu_kernel(eng, dt, 1, src, dpk);
  std::printf("| strategy | ms |\n|---|---|\n");
  std::printf("| (a) stage whole extent + CPU pack | %.3f |\n", ms(a.elapsed));
  std::printf("| (b) per-block memcpy D2H | %.3f |\n", ms(b.elapsed));
  std::printf("| (c) per-block memcpy D2D | %.3f |\n", ms(c.elapsed));
  std::printf("| (d) GPU pack kernel | %.3f |\n\n", ms(d.elapsed));
  claim("(d) is the fastest alternative",
        d.elapsed < a.elapsed && d.elapsed < b.elapsed &&
            d.elapsed < c.elapsed);
}

void gpudirect() {
  std::printf("\n## GPUDirect crossover (Section 5.2 / [14])\n\n");
  auto run = [&](bool direct, std::int64_t bytes) {
    auto cfg = pp_cfg();
    cfg.ranks_per_node = 1;
    cfg.gpu_eager_limit = 0;  // isolate the rendezvous protocols
    cfg.gpudirect_rdma = direct;
    if (direct) cfg.gpudirect_limit_bytes = INT64_MAX;
    auto dt = mpi::Datatype::contiguous(bytes / 8, mpi::kDouble());
    return pingpong(dt, dt, cfg);
  };
  std::printf("| size | direct (us) | staged (us) |\n|---|---|---|\n");
  bool small_direct_wins = false, large_staged_wins = false;
  for (std::int64_t kb : {4, 16, 32, 256, 4096}) {
    const auto d = run(true, kb * 1024);
    const auto s = run(false, kb * 1024);
    std::printf("| %lld KB | %.1f | %.1f |\n", static_cast<long long>(kb),
                static_cast<double>(d.avg_roundtrip) / 1e3,
                static_cast<double>(s.avg_roundtrip) / 1e3);
    if (kb <= 16 && d.avg_roundtrip < s.avg_roundtrip)
      small_direct_wins = true;
    if (kb >= 256 && s.avg_roundtrip < d.avg_roundtrip)
      large_staged_wins = true;
  }
  std::printf("\n");
  claim("GPUDirect wins below ~30KB", small_direct_wins);
  claim("host staging wins for large messages", large_staged_wins);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::string(argv[1]) == "--quick";
  const std::int64_t n = quick ? 1024 : 2048;

  std::printf("# gpuddt reproduction report\n");
  std::printf("\nAll times are virtual nanoseconds from the calibrated "
              "K40-era machine model; see DESIGN.md.\n");
  fig1(n);
  fig6(quick ? 2048 : 4096);
  fig7(quick ? 2048 : 4096);
  fig9(n);
  fig10(n);
  fig11_12(n);
  gpudirect();

  std::printf("\n---\n%d/%d paper claims hold.\n", g_checks - g_failures,
              g_checks);
  return g_failures == 0 ? 0 : 1;
}
