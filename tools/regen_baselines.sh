#!/usr/bin/env bash
# Regenerate the checked-in metrics baselines under bench/baselines/.
#
# Each baseline is the CANONICAL (metrics_diff --canon: counters +
# histograms, trace dropped, sorted keys) gpuddt-metrics-v1 dump of one
# benchmark configuration. Virtual time is deterministic, so the CI gate
# (metrics_diff --gate --baseline, the bench_baseline_gate ctest entry)
# compares against these files byte-for-byte with zero headroom. Rerun
# this script - and review the diff! - whenever a change intentionally
# moves a modeled cost, then commit the updated baselines with the change
# that moved them. docs/determinism.md has the full story.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=bench/baselines
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

# name|binary|benchmark_filter|extra_args  (name becomes $OUT/<name>.json;
# extra_args, when present, are passed through to the bench binary - the
# stream-triggered variants reuse the host-driven binaries with the
# --stream-triggered flag from bench_common.h rather than registering
# duplicate benchmarks, so the host-driven dumps stay untouched).
BASELINES=(
  "fig10_sm_1gpu_t_256|bench_fig10_pingpong|BM_Fig10_SM_1GPU_T/256/|"
  "fig9_pcie_pingpong|bench_fig9_pcie_pingpong||"
  "coll_datatype|bench_coll_datatype||"
  "onesided|bench_onesided||"
  "ablation_pipeline|bench_ablation_pipeline||"
  "ddt_zoo|bench_ddt_zoo||"
  "fig9_stream_triggered|bench_fig9_pcie_pingpong||--stream-triggered"
  "sim_throughput|bench_sim_throughput||"
  "traffic_mix|bench_traffic_mix||"
)

binaries=(metrics_diff)
for spec in "${BASELINES[@]}"; do
  IFS='|' read -r _ bin _ _ <<<"$spec"
  binaries+=("$bin")
done
cmake --build "$BUILD" -j "$JOBS" --target "${binaries[@]}"

mkdir -p "$OUT"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for spec in "${BASELINES[@]}"; do
  IFS='|' read -r name bin filter extra <<<"$spec"
  args=(--metrics-out="$tmp")
  [ -n "$filter" ] && args+=("--benchmark_filter=$filter")
  [ -n "$extra" ] && args+=($extra)
  # The traffic-mix workload also pins the flow-latency report
  # (docs/latency.md): one run produces both baselines.
  latency_tmp=
  if [ "$name" = traffic_mix ]; then
    latency_tmp=$(mktemp)
    args+=(--latency-out="$latency_tmp")
  fi
  echo "== $name: $bin ${filter:+(filter $filter)}${extra:+ ($extra)}"
  "$BUILD/bench/$bin" "${args[@]}" > /dev/null
  "$BUILD/tools/metrics_diff" --canon "$tmp" > "$OUT/$name.json"
  if [ -n "$latency_tmp" ]; then
    # --canon dispatches on the schema marker, so the same idempotent
    # canonicalization covers the gpuddt-latency-v1 report.
    "$BUILD/tools/metrics_diff" --canon "$latency_tmp" \
      > "$OUT/${name}_latency.json"
    rm -f "$latency_tmp"
  fi
done

echo "== baselines regenerated into $OUT - review with git diff"
