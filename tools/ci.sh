#!/usr/bin/env bash
# CI driver: default build + tests, GPUDDT_CHECK=ON build + tests (the
# whole suite must run hazard-clean with the access checker attached to
# every machine), ASan/UBSan build + tests, a determinism sweep over all
# benchmark binaries (docs/determinism.md), and clang-tidy lint where
# available. Mirrors the CMakePresets.json configurations.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

run() {
  echo "== $* =="
  "$@"
}

# 1. Default configuration.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

# 2. Checking on by default: every machine in the suite gets the hazard
#    detector + DEV invariant checker attached.
run cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUDDT_CHECK=ON
run cmake --build build-check -j "$JOBS"
run ctest --test-dir build-check --output-on-failure -j "$JOBS"

# 3. ASan + UBSan.
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUDDT_SANITIZE=ON
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan --output-on-failure -j "$JOBS"

# 4. Chrome-trace export end to end: generate a trace from one pipelined
#    benchmark and shape-check it (array, monotone ts, non-negative dur,
#    well-formed fragment flow events; docs/tracing.md).
#    Perfetto/chrome://tracing load exactly this file.
run build/bench/bench_fig9_pcie_pingpong \
  "--benchmark_filter=BM_Fig9_V/1024/" --trace-format=chrome \
  --trace-out=build/ci_chrome_trace.json
run build/tools/metrics_diff --validate-chrome build/ci_chrome_trace.json

# 4b. Critical-path profiler over the same trace: the fragment flow ids
#     must chain into a DAG whose overlap efficiency lands in (0, 1]
#     (docs/metrics.md, gpuddt-critpath-v1).
run build/tools/trace_critpath --check-efficiency \
  --json-out=build/ci_critpath.json build/ci_chrome_trace.json

# 5. Determinism sweep: every benchmark binary must double-run to
#    byte-identical canonical metrics (the in-suite bench_determinism
#    ctest entries cover bench_fig10_pingpong and the seeded datatype-zoo
#    capacity sweep bench_ddt_zoo; this covers them all). The checked-in
#    baseline gates (bench_baseline_gate*, including the shape-dedup
#    workload's bench_baseline_gate_ddt_zoo) already ran as part of ctest.
run build/tools/determinism_check build/bench/bench_*

# 6. Lint (no-op with a notice when clang-tidy is not installed).
run cmake --build build --target lint

echo "== ci.sh: all configurations passed =="
