#!/usr/bin/env bash
# CI driver: default build + tests, GPUDDT_CHECK=ON build + tests (the
# whole suite must run hazard-clean with the access checker attached to
# every machine), ASan/UBSan build + tests, a determinism sweep over all
# benchmark binaries (docs/determinism.md), the symbolic verifier over
# its corpus and over every DEV the bench suite caches
# (docs/verification.md), the simulator scale stage (1024-rank smoke +
# throughput baseline gate; docs/simulator.md), the flow-latency stage
# (traffic-mix baseline gates + gpuddt-latency-v1 shape validation +
# double-run determinism of both reports; docs/latency.md), and the
# blocking lint stage (clang-tidy with warnings-as-errors + the
# determinism lint + the doc lint). Mirrors the CMakePresets.json
# configurations.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

run() {
  echo "== $* =="
  "$@"
}

# 1. Default configuration.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

# 2. Checking on by default: every machine in the suite gets the hazard
#    detector + DEV invariant checker attached.
run cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUDDT_CHECK=ON
run cmake --build build-check -j "$JOBS"
run ctest --test-dir build-check --output-on-failure -j "$JOBS"

# 3. ASan + UBSan.
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUDDT_SANITIZE=ON
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan --output-on-failure -j "$JOBS"

# 4. Chrome-trace export end to end: generate a trace from one pipelined
#    benchmark and shape-check it (array, monotone ts, non-negative dur,
#    well-formed fragment flow events; docs/tracing.md).
#    Perfetto/chrome://tracing load exactly this file.
run build/bench/bench_fig9_pcie_pingpong \
  "--benchmark_filter=BM_Fig9_V/1024/" --trace-format=chrome \
  --trace-out=build/ci_chrome_trace.json
run build/tools/metrics_diff --validate-chrome build/ci_chrome_trace.json

# 4b. Critical-path profiler over the same trace: the fragment flow ids
#     must chain into a DAG whose overlap efficiency lands in (0, 1]
#     (docs/metrics.md, gpuddt-critpath-v1).
run build/tools/trace_critpath --check-efficiency \
  --json-out=build/ci_critpath.json build/ci_chrome_trace.json

# 4c. Stream-triggered fragment chains (docs/protocols.md): the same
#     benchmark with the chains offloaded to the GPU streams must
#     produce a valid trace whose critical path has no per-fragment
#     host wait - only the one-time rendezvous - and overlap efficiency
#     still in (0, 1]. The deterministic virtual-time gate for this mode
#     is bench_baseline_gate_fig9_stream in ctest.
run build/bench/bench_fig9_pcie_pingpong --stream-triggered \
  "--benchmark_filter=BM_Fig9_V/1024/" --trace-format=chrome \
  --trace-out=build/ci_chrome_trace_stream.json
run build/tools/metrics_diff --validate-chrome \
  build/ci_chrome_trace_stream.json
run build/tools/trace_critpath --check-efficiency \
  --json-out=build/ci_critpath_stream.json \
  build/ci_chrome_trace_stream.json

# 5. Determinism sweep: every benchmark binary must double-run to
#    byte-identical canonical metrics (the in-suite bench_determinism
#    ctest entries cover bench_fig10_pingpong and the seeded datatype-zoo
#    capacity sweep bench_ddt_zoo; this covers them all). The checked-in
#    baseline gates (bench_baseline_gate*, including the shape-dedup
#    workload's bench_baseline_gate_ddt_zoo) already ran as part of ctest.
run build/tools/determinism_check build/bench/bench_*

# 6. Symbolic verification (docs/verification.md): the static prover
#    certifies its datatype corpus + the pipeline model, every seeded
#    mutation is rejected, and - with the cache-insert hook forced on -
#    every DEV the seeded datatype-zoo capacity sweep caches is certified
#    at insert time (an uncertified DEV aborts the run).
run build/tools/dev_verify --json-out=build/ci_dev_verify.json
for mode in dropped_unit shifted_disp overlap_pk reorder_edge \
    dropped_credit; do
  if build/tools/dev_verify --mutate "$mode" --seed 7 \
      --json-out="build/ci_dev_verify_$mode.json"; then
    echo "ci.sh: dev_verify --mutate $mode unexpectedly passed" >&2
    exit 1
  fi
done
run env GPUDDT_VERIFY=1 build/bench/bench_ddt_zoo \
  --metrics-out=build/ci_zoo_verify.json

# 7. Simulator scale (docs/simulator.md): the event-driven core must
#    hold 1000+ ranks. The 1024-rank smoke runs the SimScale suite
#    (ring exchange over a fat tree, double-run deterministic, plus the
#    1024-rank deadlock report), the throughput bench re-gates its
#    deterministic sim.* scheduling counters against the checked-in
#    baseline, and a 256-rank-config determinism double-run closes the
#    loop. (Stage 5's sweep already double-ran bench_sim_throughput;
#    this run is the named, grep-able scale gate.)
run ctest --test-dir build --output-on-failure -R 'SimScale'
run build/bench/bench_sim_throughput \
  --metrics-out=build/ci_sim_throughput.json
run build/tools/metrics_diff --gate \
  --baseline bench/baselines/sim_throughput.json \
  build/ci_sim_throughput.json
run build/tools/determinism_check build/bench/bench_sim_throughput \
  -- "--benchmark_filter=BM_SimThroughput_Ring/256"

# 8. Flow-latency pipeline (docs/latency.md): the seeded traffic-mix
#    workload gates BOTH of its reports against the checked-in baselines
#    (bench_baseline_gate_traffic_mix* in ctest already ran; this is the
#    named CI stage), the gpuddt-latency-v1 report passes shape
#    validation, and a double run of both sinks is byte-identical -
#    FlowStats::to_json is canonical, so raw file comparison is the
#    strictest gate available.
run build/bench/bench_traffic_mix \
  --metrics-out=build/ci_traffic_mix_metrics.json \
  --latency-out=build/ci_traffic_mix_latency.json
run build/tools/metrics_diff --validate-latency \
  build/ci_traffic_mix_latency.json
run build/tools/metrics_diff --gate \
  --baseline bench/baselines/traffic_mix.json \
  build/ci_traffic_mix_metrics.json
run build/tools/metrics_diff --gate \
  --baseline bench/baselines/traffic_mix_latency.json \
  build/ci_traffic_mix_latency.json
run build/bench/bench_traffic_mix \
  --metrics-out=build/ci_traffic_mix_metrics2.json \
  --latency-out=build/ci_traffic_mix_latency2.json
run cmp build/ci_traffic_mix_metrics.json \
  build/ci_traffic_mix_metrics2.json
run cmp build/ci_traffic_mix_latency.json \
  build/ci_traffic_mix_latency2.json

# 9. Lint: blocking. clang-tidy findings are errors
#    (--warnings-as-errors=*) and a missing clang-tidy fails the stage
#    instead of degrading; the determinism lint and the documentation
#    lint (tools/doc_lint.py) run in the same target.
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci.sh: clang-tidy is required for the blocking lint stage" >&2
  exit 1
fi
run cmake --build build --target lint

echo "== ci.sh: all configurations passed =="
