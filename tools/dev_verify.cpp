// dev_verify - run the symbolic verifier (src/verify/) over a built-in
// datatype corpus and the engine pipeline model, without executing a
// single copy.
//
// For every corpus type it proves the tree/program/canonical byte-map
// equivalence obligations (closed over all counts), then converts the
// type through the production DevCursor (core::convert_all) for several
// (count, unit_bytes) points and proves the resulting DEV unit list
// byte-exact. It also proves the engine's fragment pipeline hazard-free
// in each modeled configuration.
//
// Seeded mutation modes (--mutate) corrupt one conversion result (or the
// pipeline DAG) the way a real compiler/engine bug would, and must make
// the run fail with the matching obligation named:
//
//   dropped_unit   -> dev_unit_count     (a unit silently lost)
//   shifted_disp   -> dev_nc_exact       (source displacement off by one)
//   overlap_pk     -> dev_pk_exact       (two units pack to the same bytes)
//   reorder_edge   -> pipeline_hazard_free (desc-slot WAR guard dropped)
//   dropped_credit -> pipeline_hazard_free (stream-triggered send-ring
//                     credit event dropped: packs overwrite in-flight
//                     GET sources)
//
// Usage:
//   dev_verify [--json-out FILE] [--mutate MODE] [--seed N]
//
// Output: a gpuddt-verify-v1 JSON document (every report, obligation by
// obligation) to --json-out or stdout, plus a one-line summary on
// stderr. Exit 0 iff every obligation proved.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "core/dev.h"
#include "core/layouts.h"
#include "mpi/datatype.h"
#include "obs/json.h"
#include "verify/pipeline.h"
#include "verify/verifier.h"

namespace {

using gpuddt::mpi::Datatype;
using gpuddt::mpi::DatatypePtr;
using gpuddt::verify::Report;

struct Case {
  std::string name;
  DatatypePtr dt;
};

DatatypePtr dbl() {
  return Datatype::primitive(gpuddt::mpi::Primitive::kDouble);
}

/// Seeded irregular type: a few nesting levels over mixed constructors,
/// mirroring the shapes tests/test_helpers.h random_datatype produces.
DatatypePtr irregular(std::uint64_t seed, int depth = 0) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed * 2654435761u + depth));
  std::uniform_int_distribution<int> kind(0, depth >= 2 ? 1 : 6);
  std::uniform_int_distribution<std::int64_t> small(1, 4);
  switch (kind(rng)) {
    default:
    case 0:
      return dbl();
    case 1:
      return Datatype::contiguous(small(rng), irregular(seed + 11, depth + 1));
    case 2: {
      const auto bl = small(rng);
      return Datatype::vector(small(rng) + 1, bl, bl + small(rng),
                              irregular(seed + 23, depth + 1));
    }
    case 3: {
      const DatatypePtr c = irregular(seed + 37, depth + 1);
      const std::int64_t bl = small(rng);
      // Byte stride covers the block: sources in this simulator never
      // self-overlap (mirrors tests/test_helpers.h random_datatype).
      return Datatype::hvector(small(rng) + 1, bl,
                               c->extent() * (bl + small(rng)), c);
    }
    case 4: {
      const std::int64_t lens[] = {small(rng), small(rng)};
      const std::int64_t displs[] = {0, lens[0] + small(rng)};
      return Datatype::indexed(lens, displs, irregular(seed + 41, depth + 1));
    }
    case 5: {
      const std::int64_t displs[] = {0, 3 + small(rng), 9 + small(rng)};
      return Datatype::indexed_block(small(rng), displs,
                                     irregular(seed + 53, depth + 1));
    }
    case 6: {
      const DatatypePtr a = irregular(seed + 61, depth + 1);
      const DatatypePtr b = irregular(seed + 71, depth + 1);
      const std::int64_t lens[] = {1, small(rng)};
      const std::int64_t displs[] = {0, a->true_extent() + 8 * small(rng)};
      const DatatypePtr types[] = {a, b};
      return Datatype::struct_type(lens, displs, types);
    }
  }
}

/// Every datatype constructor plus the paper's evaluation layouts.
std::vector<Case> corpus(std::uint64_t seed) {
  std::vector<Case> out;
  out.push_back({"primitive_double", dbl()});
  out.push_back({"contiguous_16", Datatype::contiguous(16, dbl())});
  out.push_back({"vector_8x4s16", Datatype::vector(8, 4, 16, dbl())});
  out.push_back(
      {"hvector_6x3s100", Datatype::hvector(6, 3, 100, dbl())});
  {
    const std::int64_t lens[] = {3, 1, 4};
    const std::int64_t displs[] = {0, 5, 9};
    out.push_back({"indexed_3", Datatype::indexed(lens, displs, dbl())});
  }
  {
    const std::int64_t lens[] = {2, 2};
    const std::int64_t displs[] = {0, 40};
    out.push_back({"hindexed_2", Datatype::hindexed(lens, displs, dbl())});
  }
  {
    const std::int64_t displs[] = {0, 4, 9, 15};
    out.push_back(
        {"indexed_block_4", Datatype::indexed_block(2, displs, dbl())});
  }
  {
    const DatatypePtr types[] = {
        Datatype::primitive(gpuddt::mpi::Primitive::kChar), dbl()};
    const std::int64_t lens[] = {3, 2};
    const std::int64_t displs[] = {0, 8};
    out.push_back({"struct_2", Datatype::struct_type(lens, displs, types)});
  }
  {
    const std::int64_t sizes[] = {8, 10};
    const std::int64_t subsizes[] = {3, 4};
    const std::int64_t starts[] = {2, 1};
    out.push_back(
        {"subarray_2d", Datatype::subarray(sizes, subsizes, starts, dbl())});
  }
  {
    const std::int64_t gsizes[] = {12, 12};
    const Datatype::Distrib distribs[] = {Datatype::Distrib::kCyclic,
                                          Datatype::Distrib::kBlock};
    const std::int64_t dargs[] = {2, Datatype::kDefaultDarg};
    const std::int64_t psizes[] = {2, 2};
    out.push_back({"darray_cyclic_block",
                   Datatype::darray(4, 1, gsizes, distribs, dargs, psizes,
                                    dbl())});
  }
  out.push_back(
      {"resized_vector",
       Datatype::resized(Datatype::vector(4, 2, 5, dbl()), 0, 50 * 8)});
  // The paper's evaluation layouts (core/layouts.h).
  out.push_back({"submatrix_32x16", gpuddt::core::submatrix_type(32, 16, 64)});
  out.push_back(
      {"lower_triangular_32", gpuddt::core::lower_triangular_type(32, 32)});
  out.push_back(
      {"upper_triangular_24", gpuddt::core::upper_triangular_type(24, 24)});
  out.push_back(
      {"stair_triangular_32_8", gpuddt::core::stair_triangular_type(32, 32, 8)});
  out.push_back({"transpose_16", gpuddt::core::transpose_type(16, 16)});
  for (int i = 0; i < 8; ++i) {
    out.push_back({"irregular_" + std::to_string(i), irregular(seed + i)});
  }
  return out;
}

enum class Mutate { kNone, kDroppedUnit, kShiftedDisp, kOverlapPk,
                    kReorderEdge, kDroppedCredit };

/// Corrupt one unit list the way a conversion bug would.
void mutate_units(Mutate m, std::mt19937& rng,
                  std::vector<gpuddt::core::CudaDevDist>& units) {
  if (units.size() < 2) return;
  std::uniform_int_distribution<std::size_t> pick(1, units.size() - 1);
  const std::size_t i = pick(rng);
  switch (m) {
    case Mutate::kDroppedUnit:
      units.erase(units.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    case Mutate::kShiftedDisp:
      units[i].nc_disp += 1;
      break;
    case Mutate::kOverlapPk:
      units[i].pk_disp = units[i - 1].pk_disp;
      break;
    default:
      break;
  }
}

void write_report(std::string& out, const Report& rep) {
  out += "    {\"subject\": \"" + gpuddt::obs::json::escape(rep.subject) +
         "\",\n     \"certified\": ";
  out += rep.certified() ? "true" : "false";
  out += ",\n     \"obligations\": [";
  bool first = true;
  for (const auto& o : rep.obligations) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"name\": \"" + gpuddt::obs::json::escape(o.name) +
           "\", \"proved\": " + (o.proved ? "true" : "false") +
           ", \"detail\": \"" + gpuddt::obs::json::escape(o.detail) + "\"}";
  }
  out += "\n     ]}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string mutate_name = "none";
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    const auto value = [&](const char* flag) {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::cerr << "dev_verify: " << flag << " needs a value\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--json-out") {
      json_out = value("--json-out");
    } else if (arg == "--mutate") {
      mutate_name = value("--mutate");
    } else if (arg == "--seed") {
      seed = std::stoull(value("--seed"));
    } else {
      std::cerr << "usage: dev_verify [--json-out FILE] "
                   "[--mutate none|dropped_unit|shifted_disp|overlap_pk|"
                   "reorder_edge|dropped_credit] [--seed N]\n";
      return 2;
    }
  }
  Mutate mutate = Mutate::kNone;
  if (mutate_name == "dropped_unit") mutate = Mutate::kDroppedUnit;
  else if (mutate_name == "shifted_disp") mutate = Mutate::kShiftedDisp;
  else if (mutate_name == "overlap_pk") mutate = Mutate::kOverlapPk;
  else if (mutate_name == "reorder_edge") mutate = Mutate::kReorderEdge;
  else if (mutate_name == "dropped_credit") mutate = Mutate::kDroppedCredit;
  else if (mutate_name != "none") {
    std::cerr << "dev_verify: unknown --mutate mode '" << mutate_name << "'\n";
    return 2;
  }

  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  std::vector<Report> reports;

  // Datatype + DEV proofs over the corpus, through the production
  // converter at the paper's unit-size floor and two larger budgets.
  const std::int64_t counts[] = {1, 3};
  const std::int64_t unit_sizes[] = {gpuddt::core::kMinUnitBytes, 512, 1024};
  bool mutated_once = false;
  for (const Case& c : corpus(seed)) {
    Report tr = gpuddt::verify::verify_type(*c.dt);
    tr.subject = c.name + ": " + tr.subject;
    reports.push_back(std::move(tr));
    for (const std::int64_t count : counts) {
      for (const std::int64_t s : unit_sizes) {
        auto units = gpuddt::core::convert_all(c.dt, count, s);
        if (!mutated_once && mutate != Mutate::kNone &&
            mutate != Mutate::kReorderEdge &&
            mutate != Mutate::kDroppedCredit && units.size() >= 2) {
          mutate_units(mutate, rng, units);
          mutated_once = true;
        }
        Report dr = gpuddt::verify::verify_dev(*c.dt, count, s, units);
        dr.subject = c.name + ": " + dr.subject;
        reports.push_back(std::move(dr));
      }
    }
  }

  // Pipeline hazard proofs over every modeled engine configuration.
  for (const bool residue : {false, true}) {
    gpuddt::core::GpuDatatypeEngine::PipelineShape shape;
    shape.residue_separate_stream = residue;
    gpuddt::verify::EnginePipelineParams p =
        gpuddt::verify::params_from_engine(shape, /*windows=*/6);
    if (mutate == Mutate::kReorderEdge) {
      p.mutate = gpuddt::verify::MutateDag::kDropWarEdge;
    }
    reports.push_back(gpuddt::verify::verify_pipeline(p));
    if (!residue) {
      // Sender + wire + unpack extension (single-stream model only).
      gpuddt::verify::EnginePipelineParams wp =
          gpuddt::verify::params_from_engine(shape, /*windows=*/6,
                                             /*wire_fragments=*/6);
      if (mutate == Mutate::kReorderEdge) {
        wp.mutate = gpuddt::verify::MutateDag::kDropWarEdge;
      }
      reports.push_back(gpuddt::verify::verify_pipeline(wp));
    }
  }
  // Stream-triggered chain shapes (docs/protocols.md): the offloaded
  // pack -> GET -> unpack DAG with both ring depths exercised past reuse,
  // plus an asymmetric-depth shape. The dropped_credit mutation removes
  // the send-ring credit event and must be refuted here.
  {
    struct StShape { int frags; int send_ring; int staging; };
    const StShape shapes[] = {{8, 2, 2}, {8, 3, 2}, {6, 2, 4}};
    for (const StShape& sh : shapes) {
      gpuddt::verify::EnginePipelineParams sp;
      sp.windows = sh.frags;
      sp.wire_fragments = sh.frags;
      sp.stream_triggered = true;
      sp.send_ring_depth = sh.send_ring;
      sp.staging_depth = sh.staging;
      if (mutate == Mutate::kDroppedCredit) {
        sp.mutate = gpuddt::verify::MutateDag::kDropCreditEdge;
      }
      reports.push_back(gpuddt::verify::verify_pipeline(sp));
    }
  }

  std::int64_t proved = 0;
  std::int64_t failed = 0;
  std::string first_failed_name;
  for (const Report& r : reports) {
    for (const auto& o : r.obligations) {
      (o.proved ? proved : failed)++;
      if (!o.proved && first_failed_name.empty()) first_failed_name = o.name;
    }
  }

  std::string out = "{\n  \"schema\": \"gpuddt-verify-v1\",\n";
  out += "  \"mutate\": \"" + gpuddt::obs::json::escape(mutate_name) +
         "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"summary\": {\"reports\": " + std::to_string(reports.size()) +
         ", \"obligations_proved\": " + std::to_string(proved) +
         ", \"obligations_failed\": " + std::to_string(failed) + "},\n";
  out += "  \"reports\": [";
  bool first = true;
  for (const Report& r : reports) {
    out += first ? "\n" : ",\n";
    first = false;
    write_report(out, r);
  }
  out += "\n  ]\n}\n";

  if (json_out.empty()) {
    std::cout << out;
  } else {
    std::ofstream f(json_out);
    if (!f) {
      std::cerr << "dev_verify: cannot write " << json_out << "\n";
      return 2;
    }
    f << out;
  }
  std::cerr << "dev_verify: " << reports.size() << " reports, " << proved
            << " obligations proved, " << failed << " failed";
  if (failed > 0) std::cerr << " (first: " << first_failed_name << ")";
  std::cerr << "\n";
  return failed == 0 ? 0 : 1;
}
