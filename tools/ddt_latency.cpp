// ddt_latency: OSU-microbenchmark-style latency/bandwidth sweep for GPU
// derived datatypes - the everyday tool a user of this library would run
// first. For each message size, reports the one-way latency and bandwidth
// of a device-to-device ping-pong with three layouts (contiguous, vector,
// triangular-indexed) on the chosen topology.
//
//   $ ./ddt_latency            # intra-node, two GPUs
//   $ ./ddt_latency --ib       # two nodes over InfiniBand
//   $ ./ddt_latency --1gpu     # both ranks on one GPU
#include <cstdio>
#include <cstring>
#include <string>

#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/datatype.h"

using namespace gpuddt;

namespace {

mpi::DatatypePtr layout_for(const std::string& kind, std::int64_t bytes) {
  const std::int64_t elems = bytes / 8;
  if (kind == "contiguous")
    return mpi::Datatype::contiguous(elems, mpi::kDouble());
  if (kind == "vector") {
    // Square-ish factorization, stride 2x blocklen.
    std::int64_t bl = 1;
    while (bl * bl < elems) bl <<= 1;
    const std::int64_t count = (elems + bl - 1) / bl;
    return mpi::Datatype::vector(count, bl, 2 * bl, mpi::kDouble());
  }
  // triangular of the order whose triangle is closest to `elems`
  std::int64_t n = 2;
  while (core::lower_triangle_elems(n + 1) <= elems) ++n;
  return core::lower_triangular_type(n, n);
}

}  // namespace

int main(int argc, char** argv) {
  bool ib = false, one_gpu = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ib") == 0) ib = true;
    if (std::strcmp(argv[i], "--1gpu") == 0) one_gpu = true;
  }

  std::printf("# gpuddt datatype latency/bandwidth (%s)\n",
              ib ? "inter-node IB" : one_gpu ? "one GPU" : "two GPUs, SM");
  std::printf("%-12s %-12s %14s %12s\n", "layout", "size", "latency(us)",
              "BW(GB/s)");

  for (const char* kind : {"contiguous", "vector", "triangular"}) {
    for (std::int64_t bytes = 1024; bytes <= (64 << 20); bytes *= 4) {
      harness::PingPongSpec spec;
      spec.cfg.world_size = 2;
      spec.cfg.machine.num_devices = 2;
      spec.cfg.machine.device_memory_bytes = std::size_t{2} << 30;
      spec.cfg.progress_timeout_ms = 60000;
      if (ib) spec.cfg.ranks_per_node = 1;
      if (one_gpu) spec.cfg.device_of = [](int) { return 0; };
      spec.dt0 = spec.dt1 = layout_for(kind, bytes);
      spec.iters = 3;
      const auto res = harness::run_pingpong(spec);
      std::printf("%-12s %-12lld %14.2f %12.2f\n", kind,
                  static_cast<long long>(res.message_bytes),
                  static_cast<double>(res.avg_roundtrip) / 2e3,
                  res.bandwidth_gbps());
    }
    std::printf("\n");
  }
  return 0;
}
