#!/usr/bin/env bash
# Determinism lint over src/ (see tools/determinism_lint.py for the rule
# catalogue). Part of the blocking lint stage: `cmake --build build
# --target lint` and tools/ci.sh both run this.
set -euo pipefail
cd "$(dirname "$0")/.."
exec python3 tools/determinism_lint.py src
