// Figure 12 (Section 5.2.3): matrix transpose ping-pong - the datatype
// engine stress test. The sender ships a contiguous column-major matrix;
// the receiver unpacks it with the transpose type (N vectors of
// blocklength one element), so every element is its own contiguous block.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void transpose_sizes(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {128, 256, 512, 1024}) b->Arg(n);
}

void run_tp(benchmark::State& state, bool baseline, bool ib) {
  const std::int64_t n = state.range(0);
  auto cont = mpi::Datatype::contiguous(n * n, mpi::kDouble());
  auto trans = core::transpose_type(n, n);
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  if (ib) spec.cfg.ranks_per_node = 1;
  spec.dt0 = cont;
  spec.dt1 = trans;
  spec.iters = 2;
  if (baseline) spec.plugin = std::make_shared<base::MvapichLikePlugin>();
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}

void BM_Fig12_SM_Transpose(benchmark::State& state) {
  run_tp(state, false, false);
}
BENCHMARK(BM_Fig12_SM_Transpose)
    ->Apply(transpose_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig12_SM_Transpose_MVAPICH(benchmark::State& state) {
  run_tp(state, true, false);
}
BENCHMARK(BM_Fig12_SM_Transpose_MVAPICH)
    ->Apply(transpose_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig12_IB_Transpose(benchmark::State& state) {
  run_tp(state, false, true);
}
BENCHMARK(BM_Fig12_IB_Transpose)
    ->Apply(transpose_sizes)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
