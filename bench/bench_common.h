// Shared setup for the figure-reproduction benchmarks.
//
// All benchmarks report *virtual* time from the calibrated machine model
// (benchmark::State::SetIterationTime with manual timing), so results are
// deterministic and hardware-independent. Counters expose the payload
// bandwidth the paper's figures plot.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>

#include "baselines/mvapich_plugin.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/runtime.h"

namespace gpuddt::bench {

inline sg::MachineConfig bench_machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = std::size_t{3} << 30;
  return m;
}

inline mpi::RuntimeConfig bench_pingpong_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine = bench_machine();
  cfg.progress_timeout_ms = 60000;
  return cfg;
}

/// Matrix orders swept by the figures (the paper plots up to ~8K).
inline void matrix_sizes(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {256, 512, 1024, 2048, 4096}) b->Arg(n);
}

inline void small_matrix_sizes(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {256, 512, 1024, 2048}) b->Arg(n);
}

/// The paper's "V": an n x n/2 sub-matrix of a (n+512)-ld double matrix.
inline mpi::DatatypePtr v_type(std::int64_t n) {
  return core::submatrix_type(n, n / 2, n + 512);
}

/// The paper's "T": the lower triangle of an n x n double matrix.
inline mpi::DatatypePtr t_type(std::int64_t n) {
  return core::lower_triangular_type(n, n);
}

/// Contiguous peer of the same payload.
inline mpi::DatatypePtr c_type_of(const mpi::DatatypePtr& dt) {
  return mpi::Datatype::contiguous(dt->size() / 8, mpi::kDouble());
}

/// Record one virtual-time measurement as the iteration time plus a
/// bandwidth counter (payload bytes per direction / time).
inline void record(benchmark::State& state, vt::Time virtual_ns,
                   std::int64_t payload_bytes) {
  state.SetIterationTime(static_cast<double>(virtual_ns) * 1e-9);
  state.counters["GB/s"] = benchmark::Counter(
      virtual_ns > 0 ? static_cast<double>(payload_bytes) /
                           static_cast<double>(virtual_ns)
                     : 0.0);
  state.counters["msg_MB"] = benchmark::Counter(
      static_cast<double>(payload_bytes) / (1 << 20));
}

}  // namespace gpuddt::bench
