// Shared setup for the figure-reproduction benchmarks.
//
// All benchmarks report *virtual* time from the calibrated machine model
// (benchmark::State::SetIterationTime with manual timing), so results are
// deterministic and hardware-independent. Counters expose the payload
// bandwidth the paper's figures plot.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/mvapich_plugin.h"
#include "check/config.h"
#include "core/layouts.h"
#include "harness/harness.h"
#include "mpi/runtime.h"
#include "mpi/stream_triggered.h"
#include "obs/recorder.h"

namespace gpuddt::bench {

inline sg::MachineConfig bench_machine() {
  sg::MachineConfig m;
  m.num_devices = 2;
  m.device_memory_bytes = std::size_t{3} << 30;
  return m;
}

inline mpi::RuntimeConfig bench_pingpong_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = 2;
  cfg.machine = bench_machine();
  cfg.progress_timeout_ms = 60000;
  return cfg;
}

/// Matrix orders swept by the figures (the paper plots up to ~8K).
inline void matrix_sizes(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {256, 512, 1024, 2048, 4096}) b->Arg(n);
}

inline void small_matrix_sizes(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {256, 512, 1024, 2048}) b->Arg(n);
}

/// The paper's "V": an n x n/2 sub-matrix of a (n+512)-ld double matrix.
inline mpi::DatatypePtr v_type(std::int64_t n) {
  return core::submatrix_type(n, n / 2, n + 512);
}

/// The paper's "T": the lower triangle of an n x n double matrix.
inline mpi::DatatypePtr t_type(std::int64_t n) {
  return core::lower_triangular_type(n, n);
}

/// Contiguous peer of the same payload.
inline mpi::DatatypePtr c_type_of(const mpi::DatatypePtr& dt) {
  return mpi::Datatype::contiguous(dt->size() / 8, mpi::kDouble());
}

/// Record one virtual-time measurement as the iteration time plus a
/// bandwidth counter (payload bytes per direction / time).
inline void record(benchmark::State& state, vt::Time virtual_ns,
                   std::int64_t payload_bytes) {
  state.SetIterationTime(static_cast<double>(virtual_ns) * 1e-9);
  state.counters["GB/s"] = benchmark::Counter(
      virtual_ns > 0 ? static_cast<double>(payload_bytes) /
                           static_cast<double>(virtual_ns)
                     : 0.0);
  state.counters["msg_MB"] = benchmark::Counter(
      static_cast<double>(payload_bytes) / (1 << 20));
}

/// Shared main: strips `--metrics-out=FILE`, `--trace`,
/// `--trace-format=chrome|v1`, `--trace-out=FILE`, `--profile`,
/// `--check` and `--check-out=FILE` before handing the rest to
/// google-benchmark, then dumps the process-global recorder (which the
/// harness feeds when specs carry no recorder of their own) as JSON.
/// `--trace-format=chrome` (or any `--trace-out=`) implies `--trace` and
/// writes the trace buffer as a Chrome Trace Event Format array
/// (docs/tracing.md) to `--trace-out` (default `trace.json`), loadable
/// in chrome://tracing or Perfetto; `--trace-format=v1` keeps trace
/// events inline in the `--metrics-out` document, the pre-existing
/// behaviour of bare `--trace`. `--profile` implies `--trace` and prints
/// the per-rank stage-utilization table (obs::stage_profile_table) to
/// stdout after the run. `--check` turns the access checker on for every
/// machine the run creates; `--check-out` also writes the
/// gpuddt-check-v1 diagnostic report (docs/checking.md).
/// `--stream-triggered` forces the stream-triggered fragment chains on
/// for every runtime the run creates (mpi::set_stream_triggered_forced,
/// docs/protocols.md), same precedence slot as the GPUDDT_CHECK-style
/// forcing the other flags use. `--latency-out=FILE` switches the
/// process-global recorder's streaming flow-latency engine on before the
/// benchmarks run and writes the gpuddt-latency-v1 report
/// (docs/latency.md) to FILE afterwards - it works with tracing off,
/// since FlowStats consumes spans before the ring buffer can drop them.
/// Returns the usual benchmark exit status.
inline int bench_main(int argc, char** argv) {
  std::string metrics_out;
  std::string latency_out;
  std::string check_out;
  std::string trace_format;
  std::string trace_out;
  bool profile = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--latency-out=", 14) == 0) {
      latency_out = argv[i] + 14;
      obs::default_recorder().flowstats().enable(true);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      obs::default_recorder().enable_tracing(true);
    } else if (std::strncmp(argv[i], "--trace-format=", 15) == 0) {
      trace_format = argv[i] + 15;
      obs::default_recorder().enable_tracing(true);
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
      obs::default_recorder().enable_tracing(true);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
      obs::default_recorder().enable_tracing(true);
    } else if (std::strcmp(argv[i], "--stream-triggered") == 0) {
      mpi::set_stream_triggered_forced(true);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check::set_forced(true);
    } else if (std::strncmp(argv[i], "--check-out=", 12) == 0) {
      check::set_forced(true);
      check_out = argv[i] + 12;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_format.empty() && trace_format != "chrome" &&
      trace_format != "v1") {
    std::fprintf(stderr, "unknown --trace-format=%s (chrome|v1)\n",
                 trace_format.c_str());
    return 1;
  }
  const bool chrome = trace_format == "chrome" ||
                      (trace_format.empty() && !trace_out.empty());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (profile) {
    std::fputs(
        obs::stage_profile_table(obs::default_recorder().trace().snapshot())
            .c_str(),
        stdout);
  }
  if (chrome) {
    const std::string path = trace_out.empty() ? "trace.json" : trace_out;
    if (!obs::default_recorder().write_chrome_json(path)) {
      std::fprintf(stderr, "failed to write chrome trace to %s\n",
                   path.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    if (!obs::default_recorder().write_json(metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  if (!latency_out.empty()) {
    if (!obs::default_recorder().write_latency_json(latency_out)) {
      std::fprintf(stderr, "failed to write latency report to %s\n",
                   latency_out.c_str());
      return 1;
    }
  }
  if (!check_out.empty()) {
    if (!check::write_report(check_out)) {
      std::fprintf(stderr, "failed to write check report to %s\n",
                   check_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace gpuddt::bench

/// Drop-in replacement for BENCHMARK_MAIN() with --metrics-out support.
#define GPUDDT_BENCH_MAIN()                                \
  int main(int argc, char** argv) {                        \
    return gpuddt::bench::bench_main(argc, argv);          \
  }
