// One-sided layers: MPI-3 fence-epoch windows (put/get/accumulate with
// datatypes on both sides) and OpenSHMEM-style symmetric-heap transfers,
// both applying datatypes through the GPU engine.
//
// Not a paper figure - this is the observability workload for the
// `rma.*` and `shmem.*` counter families (docs/metrics.md) and the
// one-sided baseline in bench/baselines/.
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/layouts.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"
#include "shmem/shmem.h"

namespace gpuddt::bench {
namespace {

mpi::RuntimeConfig onesided_cfg() {
  mpi::RuntimeConfig cfg = bench_pingpong_cfg();
  cfg.recorder = &obs::default_recorder();
  return cfg;
}

/// Run `body` on both ranks of a fresh two-rank world and return the
/// largest per-rank virtual-time advance.
template <typename F>
vt::Time run_pair(F&& body) {
  mpi::Runtime rt(onesided_cfg());
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  std::vector<vt::Time> elapsed(2, 0);
  rt.run([&](mpi::Process& p) {
    const vt::Time t0 = p.clock().now();
    body(p);
    elapsed[static_cast<std::size_t>(p.rank())] = p.clock().now() - t0;
  });
  return *std::max_element(elapsed.begin(), elapsed.end());
}

// Origin's dense block scattered into the target's triangular layout in
// device memory: the target datatype is applied remotely by the origin's
// engine inside one fence epoch.
void BM_Rma_Put_T_Device(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto tri = t_type(n);
  for (auto _ : state) {
    const vt::Time ns = run_pair([&](mpi::Process& p) {
      mpi::Comm comm(p);
      auto* win = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
      std::memset(win, 0, static_cast<std::size_t>(n * n * 8));
      rma::Window w(comm, win, n * n * 8);
      w.fence();
      if (p.rank() == 0) {
        std::vector<double> dense(
            static_cast<std::size_t>(core::lower_triangle_elems(n)), 1.5);
        w.put(dense.data(), core::lower_triangle_elems(n), mpi::kDouble(),
              1, 0, 1, tri);
      }
      w.fence();
      sg::Free(p.gpu(), win);
    });
    record(state, ns, tri->size());
  }
}
BENCHMARK(BM_Rma_Put_T_Device)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Rma_Accumulate_Host(benchmark::State& state) {
  const std::int64_t count = state.range(0) * state.range(0) / 8;
  for (auto _ : state) {
    const vt::Time ns = run_pair([&](mpi::Process& p) {
      mpi::Comm comm(p);
      std::vector<double> win(static_cast<std::size_t>(count), 1.0);
      rma::Window w(comm, win.data(), count * 8);
      w.fence();
      if (p.rank() == 0) {
        std::vector<double> ours(static_cast<std::size_t>(count), 2.0);
        w.accumulate(ours.data(), count, mpi::kDouble(), 1, 0, count,
                     mpi::kDouble(), mpi::ReduceOp::kSum);
      }
      w.fence();
    });
    record(state, ns, count * 8);
  }
}
BENCHMARK(BM_Rma_Accumulate_Host)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

/// SHMEM variant of run_pair: the symmetric heap is collective setup
/// state, carved out of every PE's device arena once per world.
template <typename F>
vt::Time run_shmem_pair(std::size_t heap_bytes, F&& body) {
  mpi::Runtime rt(onesided_cfg());
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  shmem::SymmetricHeap heap(rt, heap_bytes);
  std::vector<vt::Time> elapsed(2, 0);
  rt.run([&](mpi::Process& p) {
    shmem::Pe pe(p, heap);
    const vt::Time t0 = p.clock().now();
    body(p, pe);
    elapsed[static_cast<std::size_t>(p.rank())] = p.clock().now() - t0;
  });
  return *std::max_element(elapsed.begin(), elapsed.end());
}

void BM_Shmem_Put_C(benchmark::State& state) {
  const std::size_t bytes =
      static_cast<std::size_t>(state.range(0)) *
      static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const vt::Time ns =
        run_shmem_pair(bytes + 4096, [&](mpi::Process& p, shmem::Pe& pe) {
          auto* buf = pe.malloc(bytes);
          std::memset(buf, p.rank(), bytes);
          pe.barrier_all();
          if (p.rank() == 0) pe.putmem(buf, buf, bytes, 1);
          pe.barrier_all();
        });
    record(state, ns, static_cast<std::int64_t>(bytes));
  }
}
BENCHMARK(BM_Shmem_Put_C)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

// Datatype put: pack on the initiator's device, one-sided ship, unpack
// into the peer's symmetric memory - the shmem.bytes.staged path.
void BM_Shmem_PutDatatype_V(benchmark::State& state) {
  const auto dt = v_type(state.range(0));
  const std::size_t extent = static_cast<std::size_t>(dt->true_extent());
  for (auto _ : state) {
    const vt::Time ns =
        run_shmem_pair(extent + 4096, [&](mpi::Process& p, shmem::Pe& pe) {
          auto* buf = pe.malloc(extent);
          std::memset(buf, 0, extent);
          pe.barrier_all();
          if (p.rank() == 0) pe.put_datatype(buf, buf, dt, 1, 1);
          pe.barrier_all();
        });
    record(state, ns, dt->size());
  }
}
BENCHMARK(BM_Shmem_PutDatatype_V)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
