// Figure 11: ping-pong where the sender uses a vector type and the
// receiver a contiguous type of identical signature (the FFT reshape
// pattern of Section 5.2.2), in shared and distributed memory, ours vs.
// the MVAPICH-style baseline. The contiguous side triggers the RDMA
// handshake shortcuts of Section 4.1.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void run_vc(benchmark::State& state, bool ib, bool baseline,
            bool vector_sends) {
  const std::int64_t n = state.range(0);
  auto vec = v_type(n);
  auto cont = c_type_of(vec);
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  if (ib) spec.cfg.ranks_per_node = 1;
  spec.dt0 = vector_sends ? vec : cont;
  spec.dt1 = vector_sends ? cont : vec;
  if (baseline) spec.plugin = std::make_shared<base::MvapichLikePlugin>();
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}

void BM_Fig11_SM_VtoC(benchmark::State& state) {
  run_vc(state, false, false, true);
}
BENCHMARK(BM_Fig11_SM_VtoC)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig11_SM_CtoV(benchmark::State& state) {
  run_vc(state, false, false, false);
}
BENCHMARK(BM_Fig11_SM_CtoV)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig11_SM_VtoC_MVAPICH(benchmark::State& state) {
  run_vc(state, false, true, true);
}
BENCHMARK(BM_Fig11_SM_VtoC_MVAPICH)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig11_IB_VtoC(benchmark::State& state) {
  run_vc(state, true, false, true);
}
BENCHMARK(BM_Fig11_IB_VtoC)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig11_IB_VtoC_MVAPICH(benchmark::State& state) {
  run_vc(state, true, true, true);
}
BENCHMARK(BM_Fig11_IB_VtoC_MVAPICH)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
