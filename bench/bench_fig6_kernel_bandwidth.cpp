// Figure 6: GPU memory bandwidth of the packing kernels.
//
// Series (vs. matrix order N, doubles, column-major):
//   V       - sub-matrix (vector type), expected ~94% of cudaMemcpy
//   T       - lower triangular (indexed), expected ~80%
//   T-stair - stair triangle with nb = 128 (1KB columns), recovers ~V
//   C       - cudaMemcpy D2D of the same payload (the practical peak)
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void BM_Fig6_V(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto dt = v_type(n);
  for (auto _ : state) {
    const double gbps =
        harness::kernel_pack_bandwidth(dt, 1, {}, bench_machine());
    record(state, static_cast<vt::Time>(dt->size() / gbps), dt->size());
  }
}
BENCHMARK(BM_Fig6_V)->Apply(matrix_sizes)->UseManualTime()->Iterations(2);

void BM_Fig6_T(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto dt = t_type(n);
  for (auto _ : state) {
    const double gbps =
        harness::kernel_pack_bandwidth(dt, 1, {}, bench_machine());
    record(state, static_cast<vt::Time>(dt->size() / gbps), dt->size());
  }
}
BENCHMARK(BM_Fig6_T)->Apply(matrix_sizes)->UseManualTime()->Iterations(2);

void BM_Fig6_T_stair(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto dt = core::stair_triangular_type(n, n, 128);
  for (auto _ : state) {
    const double gbps =
        harness::kernel_pack_bandwidth(dt, 1, {}, bench_machine());
    record(state, static_cast<vt::Time>(dt->size() / gbps), dt->size());
  }
}
BENCHMARK(BM_Fig6_T_stair)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig6_C_cudaMemcpy(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t bytes = n * (n / 2) * 8;  // V's payload
  for (auto _ : state) {
    const double gbps = harness::memcpy_d2d_bandwidth(bytes, bench_machine());
    record(state, static_cast<vt::Time>(bytes / gbps), bytes);
  }
}
BENCHMARK(BM_Fig6_C_cudaMemcpy)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
