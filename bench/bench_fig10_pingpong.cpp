// Figure 10: ping-pong with sub-matrix (V) and triangular (T) datatypes,
// ours vs. the MVAPICH2-GDR-style baseline:
//   (a) shared memory, both ranks on the SAME GPU   (SM_1GPU)
//   (b) shared memory, two GPUs                     (SM_2GPU)
//   (c) distributed memory over InfiniBand          (IB)
//
// Expected shapes: ours always faster; the baseline's indexed series blows
// up (one cudaMemcpy2D per column) and leaves the plot by N ~ 2000; the
// 1GPU case is at least ~2x faster than 2GPU.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

enum class Topo { kSm1Gpu, kSm2Gpu, kIb };

mpi::RuntimeConfig topo_cfg(Topo t) {
  auto cfg = bench_pingpong_cfg();
  switch (t) {
    case Topo::kSm1Gpu:
      cfg.device_of = [](int) { return 0; };
      break;
    case Topo::kSm2Gpu:
      break;
    case Topo::kIb:
      cfg.ranks_per_node = 1;
      break;
  }
  return cfg;
}

void run_pp(benchmark::State& state, Topo topo, const mpi::DatatypePtr& dt,
            bool baseline) {
  harness::PingPongSpec spec;
  spec.cfg = topo_cfg(topo);
  spec.dt0 = spec.dt1 = dt;
  if (baseline) spec.plugin = std::make_shared<base::MvapichLikePlugin>();
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}

#define FIG10_BENCH(name, topo, type_fn, baseline)                       \
  void BM_Fig10_##name(benchmark::State& state) {                        \
    run_pp(state, topo, type_fn(state.range(0)), baseline);              \
  }                                                                      \
  BENCHMARK(BM_Fig10_##name)                                             \
      ->Apply(small_matrix_sizes)                                        \
      ->UseManualTime()                                                  \
      ->Iterations(1)

FIG10_BENCH(SM_1GPU_V, Topo::kSm1Gpu, v_type, false);
FIG10_BENCH(SM_1GPU_T, Topo::kSm1Gpu, t_type, false);
FIG10_BENCH(SM_1GPU_V_MVAPICH, Topo::kSm1Gpu, v_type, true);
FIG10_BENCH(SM_1GPU_T_MVAPICH, Topo::kSm1Gpu, t_type, true);

FIG10_BENCH(SM_2GPU_V, Topo::kSm2Gpu, v_type, false);
FIG10_BENCH(SM_2GPU_T, Topo::kSm2Gpu, t_type, false);
FIG10_BENCH(SM_2GPU_V_MVAPICH, Topo::kSm2Gpu, v_type, true);
FIG10_BENCH(SM_2GPU_T_MVAPICH, Topo::kSm2Gpu, t_type, true);

FIG10_BENCH(IB_V, Topo::kIb, v_type, false);
FIG10_BENCH(IB_T, Topo::kIb, t_type, false);
FIG10_BENCH(IB_V_MVAPICH, Topo::kIb, v_type, true);
FIG10_BENCH(IB_T_MVAPICH, Topo::kIb, t_type, true);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
