// Simulator-throughput benchmark: how much virtual time the event-driven
// core advances per real second, at world sizes the retired
// thread-per-rank scheduler could not reach (docs/simulator.md).
//
// The workload is a communication-bound SPMD program over a modeled
// multi-node fat-tree: every rank runs a few rounds of neighbor exchange
// around a ring (host eager messages crossing SM, node-pair IB links and
// shared leaf uplinks) with a dissemination barrier between rounds. The
// deterministic outputs - the event-loop dispatch/wakeup/yield counts,
// the final virtual clock, and every engine/pml counter the run touches -
// are gated byte-exactly as bench/baselines/sim_throughput.json. The
// wall-clock throughput numbers (sim.wall_ns, sim.vns_per_wall_s) are
// real host time and canon-excluded (obs/canon.cpp), so the baseline
// stays machine-independent.
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "mpi/pml.h"

namespace gpuddt::bench {
namespace {

constexpr int kRounds = 4;
constexpr std::int64_t kPayloadBytes = 4096;

/// One ring-exchange world: `ranks` ranks, 32 per node, 4 nodes per
/// fat-tree leaf with 2 shared uplinks each.
void BM_SimThroughput_Ring(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::RuntimeConfig cfg;
    cfg.world_size = ranks;
    cfg.ranks_per_node = 32;
    cfg.machine.num_devices = 1;
    cfg.machine.topo.fat_tree_leaf_nodes = 4;
    cfg.machine.topo.fat_tree_uplinks = 2;
    // The baseline gates the event loop's own counters, so pin the
    // backend rather than inheriting GPUDDT_SIM_BACKEND.
    cfg.sched_backend = mpi::SchedBackend::kEvent;
    cfg.sim_stack_bytes = 256 * 1024;
    cfg.recorder = &obs::default_recorder();
    mpi::Runtime rt(cfg);

    // det-lint does not scan bench/, but for the record: this wall-clock
    // read feeds only the canon-excluded sim.wall* metrics.
    const auto wall0 = std::chrono::steady_clock::now();
    vt::Time max_vns = 0;
    std::vector<vt::Time> finish(static_cast<std::size_t>(ranks), 0);
    rt.run([&](mpi::Process& p) {
      mpi::Comm comm(p);
      std::vector<std::byte> out(kPayloadBytes);
      std::vector<std::byte> in(kPayloadBytes);
      std::memset(out.data(), p.rank() & 0xff, out.size());
      const int right = (p.rank() + 1) % ranks;
      const int left = (p.rank() + ranks - 1) % ranks;
      for (int round = 0; round < kRounds; ++round) {
        comm.sendrecv(out.data(), kPayloadBytes, mpi::kByte(), right, round,
                      in.data(), kPayloadBytes, mpi::kByte(), left, round);
        comm.barrier();
      }
      finish[static_cast<std::size_t>(p.rank())] = p.clock().now();
    });
    const auto wall1 = std::chrono::steady_clock::now();

    for (const vt::Time t : finish) max_vns = std::max(max_vns, t);
    const auto wall_ns = static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
            .count());
    const vt::EngineStats st = rt.sim_stats();

    obs::Recorder* rec = &obs::default_recorder();
    obs::count(rec, "sim.ranks", ranks);
    obs::count(rec, "sim.dispatches", static_cast<std::int64_t>(st.dispatches));
    obs::count(rec, "sim.wakeups", static_cast<std::int64_t>(st.wakeups));
    obs::count(rec, "sim.yields", static_cast<std::int64_t>(st.yields));
    obs::count(rec, "sim.virtual_ns", max_vns);
    obs::count(rec, "sim.wall_ns", wall_ns);
    obs::count(rec, "sim.vns_per_wall_s",
               wall_ns > 0 ? max_vns * vt::kNanosPerSecond / wall_ns : 0);

    record(state, max_vns, kPayloadBytes * ranks * kRounds);
    state.counters["vns_per_wall_s"] = benchmark::Counter(
        wall_ns > 0 ? static_cast<double>(max_vns) * 1e9 /
                          static_cast<double>(wall_ns)
                    : 0.0);
    state.counters["dispatches"] =
        benchmark::Counter(static_cast<double>(st.dispatches));
  }
}
BENCHMARK(BM_SimThroughput_Ring)
    ->Arg(256)->Arg(1024)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
