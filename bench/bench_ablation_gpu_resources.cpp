// Section 5.3: the minimal GPU resources (CUDA blocks allotted to the
// pack/unpack kernels) needed for optimal communication performance.
//
// Two views:
//   * kernel-only pack bandwidth vs. blocks - scales until the memory
//     system saturates;
//   * full ping-pong round trip vs. blocks - flattens much earlier,
//     because PCI-E is the bottleneck once a handful of blocks keep up.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void blocks_sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t blocks : {1, 2, 4, 8, 15, 32, 64}) b->Arg(blocks);
}

constexpr std::int64_t kN = 2048;

void BM_Resources_KernelBandwidth(benchmark::State& state) {
  core::EngineConfig eng;
  eng.kernel_blocks = static_cast<int>(state.range(0));
  auto dt = v_type(kN);
  for (auto _ : state) {
    const double gbps =
        harness::kernel_pack_bandwidth(dt, 1, eng, bench_machine());
    record(state, static_cast<vt::Time>(dt->size() / gbps), dt->size());
  }
}
BENCHMARK(BM_Resources_KernelBandwidth)
    ->Apply(blocks_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Resources_PingPong(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.gpu_kernel_blocks = static_cast<int>(state.range(0));
  spec.dt0 = spec.dt1 = v_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_Resources_PingPong)
    ->Apply(blocks_sweep)
    ->UseManualTime()
    ->Iterations(1);

void BM_Resources_PingPong_T(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.gpu_kernel_blocks = static_cast<int>(state.range(0));
  spec.dt0 = spec.dt1 = t_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_Resources_PingPong_T)
    ->Apply(blocks_sweep)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
