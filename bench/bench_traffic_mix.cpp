// Seeded traffic-mix workload: concurrent point-to-point, collective and
// one-sided traffic over multiple communicators with mixed derived
// datatypes, all on the event scheduler backend.
//
// Not a paper figure - this is the observability workload for the
// streaming flow-latency engine (src/obs/flowstats.h, docs/latency.md):
// it exercises every completion hook at once (p2p recv, multi-rank
// collective flows, RMA epochs, plugin pack/unpack) so the traffic-mix
// baselines in bench/baselines/ pin both the gpuddt-metrics-v1 dump and
// the gpuddt-latency-v1 report byte-for-byte. The shape/size mix is
// drawn from a fixed-seed generator that every rank advances in
// lock-step, so both ends of each transfer agree on the datatype and
// repeat runs are bit-identical.
#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "bench_common.h"
#include "mpi/coll.h"
#include "protocols/gpu_plugin.h"
#include "rma/window.h"

namespace gpuddt::bench {
namespace {

constexpr int kWorld = 4;
/// Fixed workload seed: every rank seeds its own generator identically
/// and draws the same number of values per round, so the mix is part of
/// the benchmark definition (change it and the baselines change).
constexpr unsigned kSeed = 0x9ddc17u;

mpi::RuntimeConfig mix_cfg() {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kWorld;
  cfg.machine = bench_machine();  // 4 ranks sharing 2 devices
  cfg.progress_timeout_ms = 60000;
  // The latency engine must behave identically under both schedulers
  // (the equivalence suite pins the virtual schedule); the bench runs
  // the default event backend explicitly so the baseline does not
  // depend on GPUDDT_SIM_BACKEND.
  cfg.sched_backend = mpi::SchedBackend::kEvent;
  cfg.recorder = &obs::default_recorder();
  return cfg;
}

/// One of the mixed datatype shapes, by generator draw: the paper's V
/// sub-matrix, its T lower triangle, or the contiguous peer of V.
mpi::DatatypePtr draw_type(std::mt19937& rng, std::int64_t n) {
  switch (rng() % 3) {
    case 0: return v_type(n);
    case 1: return t_type(n);
    default: return c_type_of(v_type(n));
  }
}

/// One round of mixed traffic. The same generator state on every rank
/// picks the round's shapes and sizes; traffic is concurrent by
/// construction - the p2p ring is posted nonblocking on the duplicated
/// world communicator, the collective then runs on the 2-rank split
/// communicator while those transfers are still in flight, and only
/// then does the rank wait on its ring requests.
void mix_round(mpi::Process& p, mpi::Comm& ring_comm, mpi::Comm& half_comm,
               std::mt19937& rng) {
  const std::int64_t sizes[] = {128, 256, 512};
  const std::int64_t n = sizes[rng() % 3];
  const mpi::DatatypePtr p2p_dt = draw_type(rng, n);
  const std::int64_t coll_n = sizes[rng() % 3];
  const mpi::DatatypePtr coll_dt = draw_type(rng, coll_n);
  const unsigned coll_kind = rng() % 3;

  // Device-resident p2p ring on the duplicated communicator.
  const auto extent = static_cast<std::size_t>(p2p_dt->true_extent());
  auto* sendbuf = static_cast<std::byte*>(sg::Malloc(p.gpu(), extent));
  auto* recvbuf = static_cast<std::byte*>(sg::Malloc(p.gpu(), extent));
  std::memset(sendbuf, p.rank() + 1, extent);
  std::memset(recvbuf, 0, extent);
  const int next = (p.rank() + 1) % kWorld;
  const int prev = (p.rank() + kWorld - 1) % kWorld;
  mpi::Request rr = ring_comm.irecv(recvbuf, 1, p2p_dt, prev, /*tag=*/7);
  mpi::Request sr = ring_comm.isend(sendbuf, 1, p2p_dt, next, /*tag=*/7);

  // Collective on the 2-rank split communicator while the ring is in
  // flight. Host buffers here: the mix should cover the host engine too.
  mpi::Collectives coll(half_comm);
  if (coll_kind == 0) {
    std::vector<std::byte> cbuf(
        static_cast<std::size_t>(coll_dt->true_extent()),
        std::byte{static_cast<unsigned char>(half_comm.rank())});
    coll.bcast(cbuf.data(), 1, coll_dt, 0);
  } else if (coll_kind == 1) {
    const std::int64_t count = static_cast<std::int64_t>(coll_n) * coll_n / 8;
    std::vector<double> in(static_cast<std::size_t>(count), 1.0);
    std::vector<double> out(static_cast<std::size_t>(count));
    coll.allreduce(in.data(), out.data(), count, mpi::kDouble(),
                   mpi::ReduceOp::kSum);
  } else {
    const std::int64_t count = static_cast<std::int64_t>(coll_n) * coll_n / 8;
    std::vector<double> mine(static_cast<std::size_t>(count), 2.0);
    std::vector<double> all(static_cast<std::size_t>(count) *
                            static_cast<std::size_t>(half_comm.size()));
    coll.allgather(mine.data(), all.data(), count, mpi::kDouble());
  }

  ring_comm.wait(rr);
  ring_comm.wait(sr);
  sg::Free(p.gpu(), sendbuf);
  sg::Free(p.gpu(), recvbuf);
}

/// One RMA fence epoch on the world communicator: every even rank
/// scatters a dense block into its odd neighbour's triangular device
/// window - the origin-driven datatype path of rma::Window.
void mix_rma_epoch(mpi::Process& p, mpi::Comm& world, std::int64_t n) {
  const auto tri = t_type(n);
  const std::size_t wbytes = static_cast<std::size_t>(n * n * 8);
  auto* win = static_cast<std::byte*>(sg::Malloc(p.gpu(), wbytes));
  std::memset(win, 0, wbytes);
  rma::Window w(world, win, static_cast<std::int64_t>(wbytes));
  w.fence();
  if (p.rank() % 2 == 0) {
    std::vector<double> dense(
        static_cast<std::size_t>(core::lower_triangle_elems(n)), 1.5);
    w.put(dense.data(), core::lower_triangle_elems(n), mpi::kDouble(),
          p.rank() + 1, 0, 1, tri);
  }
  w.fence();
  sg::Free(p.gpu(), win);
}

void BM_TrafficMix(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::Runtime rt(mix_cfg());
    rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
    std::vector<vt::Time> elapsed(kWorld, 0);
    rt.run([&](mpi::Process& p) {
      mpi::Comm world(p);
      // Multiple communicators: a duplicate of the world for the p2p
      // ring (its traffic never matches the parent) and a 2-rank split
      // pairing {0,2} and {1,3} for the collectives.
      mpi::Comm ring = world.dup();
      mpi::Comm half = world.split(p.rank() % 2, p.rank());
      std::mt19937 rng(kSeed);
      const vt::Time t0 = p.clock().now();
      for (int r = 0; r < rounds; ++r) mix_round(p, ring, half, rng);
      mix_rma_epoch(p, world, /*n=*/256);
      world.barrier();
      elapsed[static_cast<std::size_t>(p.rank())] = p.clock().now() - t0;
    });
    const vt::Time ns = *std::max_element(elapsed.begin(), elapsed.end());
    // Nominal payload: the per-round V payload per rank, both directions.
    record(state, ns, rounds * v_type(256)->size() * 2);
  }
}
BENCHMARK(BM_TrafficMix)->Arg(2)->Arg(4)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
