// Section 5.4: impact on non-contiguous transfers when the GPU is shared
// with a compute-intensive application. A background kernel occupying
// `Arg` SMs is launched on the sender's device every iteration; the
// pack/unpack kernels contend for the remaining slots.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void load_sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t sms : {0, 4, 8, 12, 15}) b->Arg(sms);
}

void run_shared(benchmark::State& state, const mpi::DatatypePtr& dt) {
  const int busy_sms = static_cast<int>(state.range(0));
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.dt0 = spec.dt1 = dt;
  if (busy_sms > 0) {
    spec.background = [busy_sms](mpi::Process& p) {
      sg::Stream s(&p.gpu().dev());
      sg::KernelProfile prof;
      prof.device_txn_bytes = 96 << 20;  // a hefty compute burst
      prof.blocks = busy_sms;
      sg::LaunchKernel(p.gpu(), s, prof, [] {});
    };
  }
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}

void BM_SharedGpu_V(benchmark::State& state) {
  run_shared(state, v_type(2048));
}
BENCHMARK(BM_SharedGpu_V)->Apply(load_sweep)->UseManualTime()->Iterations(1);

void BM_SharedGpu_T(benchmark::State& state) {
  run_shared(state, t_type(2048));
}
BENCHMARK(BM_SharedGpu_T)->Apply(load_sweep)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
