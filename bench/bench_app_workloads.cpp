// Application-level benchmarks: the three workloads the paper's
// introduction motivates, measured end-to-end (virtual time per
// application iteration), ours vs. the MVAPICH-style baseline.
//
//   * SHOC-style 2D stencil halo exchange (contiguous + vector halos)
//   * LAMMPS-style indexed particle exchange
//   * ScaLAPACK-style block-cyclic (darray) panel gather
#include "bench_common.h"

#include "mpi/coll.h"
#include "protocols/gpu_plugin.h"

namespace gpuddt::bench {
namespace {

// --- Stencil halo exchange ------------------------------------------------------

void run_stencil(benchmark::State& state, bool baseline) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = rows / 2;
  const std::int64_t ld = rows + 2;
  harness::PingPongSpec spec;  // reuse the 2-rank machinery manually
  mpi::RuntimeConfig cfg = bench_pingpong_cfg();
  cfg.world_size = 2;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(baseline
                        ? std::shared_ptr<mpi::GpuTransferPlugin>(
                              std::make_shared<base::MvapichLikePlugin>())
                        : std::make_shared<proto::GpuDatatypePlugin>());
  vt::Time per_iter = 0;
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::size_t slab = static_cast<std::size_t>(ld * (cols + 2) * 8);
    auto* u = static_cast<std::byte*>(sg::Malloc(p.gpu(), slab));
    auto column = mpi::Datatype::contiguous(rows, mpi::kDouble());
    auto row = mpi::Datatype::vector(cols, 1, ld, mpi::kDouble());
    const int peer = 1 - p.rank();
    constexpr int kIters = 4;
    comm.barrier();
    const vt::Time t0 = p.clock().now();
    for (int it = 0; it < kIters; ++it) {
      std::vector<mpi::Request> reqs;
      // One contiguous column halo and one vector row halo per direction,
      // against the ld x (cols+2) column-major slab: receive into the
      // ghost column (column 0) and ghost row (row 0), send the first
      // interior column/row (column 1 / row 1). The ghost regions are
      // disjoint from the interior ones, as MPI requires of buffers with
      // in-flight overlapping operations.
      reqs.push_back(comm.irecv(u + 8, 1, column, peer, 4 * it));
      reqs.push_back(comm.isend(u + ld * 8 + 8, 1, column, peer, 4 * it));
      reqs.push_back(comm.irecv(u + ld * 8, 1, row, peer, 4 * it + 1));
      reqs.push_back(comm.isend(u + ld * 8 + 8, 1, row, peer, 4 * it + 1));
      comm.waitall(reqs);
    }
    if (p.rank() == 0) per_iter = (p.clock().now() - t0) / kIters;
  });
  record(state, per_iter,
         (rows + cols) * 8 * 2);  // halo payload per iteration
}

void BM_App_Stencil(benchmark::State& state) {
  for (auto _ : state) run_stencil(state, false);
}
BENCHMARK(BM_App_Stencil)
    ->Arg(1024)
    ->Arg(4096)
    ->UseManualTime()
    ->Iterations(1);

void BM_App_Stencil_MVAPICH(benchmark::State& state) {
  for (auto _ : state) run_stencil(state, true);
}
BENCHMARK(BM_App_Stencil_MVAPICH)
    ->Arg(1024)
    ->Arg(4096)
    ->UseManualTime()
    ->Iterations(1);

// --- Particle exchange --------------------------------------------------------------

void run_particles(benchmark::State& state, bool baseline) {
  const std::int64_t boundary = state.range(0);
  mpi::RuntimeConfig cfg = bench_pingpong_cfg();
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(baseline
                        ? std::shared_ptr<mpi::GpuTransferPlugin>(
                              std::make_shared<base::MvapichLikePlugin>())
                        : std::make_shared<proto::GpuDatatypePlugin>());
  vt::Time elapsed = 0;
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t particles = boundary * 8;
    auto* pos = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(particles * 24)));
    // Every 8th particle crosses the boundary: an indexed type.
    std::vector<std::int64_t> lens(static_cast<std::size_t>(boundary), 1);
    std::vector<std::int64_t> ids(static_cast<std::size_t>(boundary));
    for (std::int64_t i = 0; i < boundary; ++i) ids[i] = i * 8;
    auto particle = mpi::Datatype::contiguous(3, mpi::kDouble());
    auto send_t = mpi::Datatype::indexed(lens, ids, particle);
    auto recv_t = mpi::Datatype::contiguous(boundary * 3, mpi::kDouble());
    auto* ghosts = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(boundary * 24)));
    comm.barrier();
    const vt::Time t0 = p.clock().now();
    mpi::Request r = comm.irecv(ghosts, 1, recv_t, 1 - p.rank(), 0);
    mpi::Request s = comm.isend(pos, 1, send_t, 1 - p.rank(), 0);
    comm.wait(r);
    comm.wait(s);
    if (p.rank() == 0) elapsed = p.clock().now() - t0;
  });
  record(state, elapsed, boundary * 24);
}

void BM_App_Particles(benchmark::State& state) {
  for (auto _ : state) run_particles(state, false);
}
BENCHMARK(BM_App_Particles)
    ->Arg(4096)
    ->Arg(32768)
    ->UseManualTime()
    ->Iterations(1);

void BM_App_Particles_MVAPICH(benchmark::State& state) {
  for (auto _ : state) run_particles(state, true);
}
BENCHMARK(BM_App_Particles_MVAPICH)
    ->Arg(4096)
    ->Arg(32768)
    ->UseManualTime()
    ->Iterations(1);

// --- ScaLAPACK panel gather ------------------------------------------------------------

void run_scalapack(benchmark::State& state, bool baseline) {
  const std::int64_t n = state.range(0);
  mpi::RuntimeConfig cfg = bench_pingpong_cfg();
  cfg.world_size = 4;
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(baseline
                        ? std::shared_ptr<mpi::GpuTransferPlugin>(
                              std::make_shared<base::MvapichLikePlugin>())
                        : std::make_shared<proto::GpuDatatypePlugin>());
  vt::Time elapsed = 0;
  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const std::int64_t gs[] = {n, n};
    const mpi::Datatype::Distrib ds[] = {mpi::Datatype::Distrib::kCyclic,
                                         mpi::Datatype::Distrib::kCyclic};
    const std::int64_t da[] = {64, 64};
    const std::int64_t ps[] = {2, 2};
    auto mine = mpi::Datatype::darray(4, p.rank(), gs, ds, da, ps,
                                      mpi::kDouble(),
                                      mpi::Datatype::Order::kFortran);
    auto* local = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(mine->extent())));
    comm.barrier();
    const vt::Time t0 = p.clock().now();
    if (p.rank() == 0) {
      auto* global = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(n * n * 8)));
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.isend(local, 1, mine, 0, 0));
      for (int r = 0; r < 4; ++r) {
        auto theirs = mpi::Datatype::darray(4, r, gs, ds, da, ps,
                                            mpi::kDouble(),
                                            mpi::Datatype::Order::kFortran);
        reqs.push_back(comm.irecv(global, 1, theirs, r, 0));
      }
      comm.waitall(reqs);
      elapsed = p.clock().now() - t0;
    } else {
      comm.send(local, 1, mine, 0, 0);
    }
  });
  record(state, elapsed, n * n * 8);
}

void BM_App_ScalapackGather(benchmark::State& state) {
  for (auto _ : state) run_scalapack(state, false);
}
BENCHMARK(BM_App_ScalapackGather)
    ->Arg(1024)
    ->Arg(2048)
    ->UseManualTime()
    ->Iterations(1);

void BM_App_ScalapackGather_MVAPICH(benchmark::State& state) {
  for (auto _ : state) run_scalapack(state, true);
}
BENCHMARK(BM_App_ScalapackGather_MVAPICH)
    ->Arg(1024)
    ->Arg(2048)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
