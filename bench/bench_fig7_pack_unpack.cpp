// Figure 7: pack + unpack time of the GPU datatype engine vs. matrix size.
//
// Left panel (bypass CPU - everything stays on the device):
//   V-d2d            vector fast path
//   T-d2d            triangular, conversion NOT pipelined with kernels
//   T-d2d-pipeline   triangular, pipelined conversion (~2x faster)
//   T-d2d-cached     triangular, CUDA DEV array cached
// Right panel (through host memory):
//   V-d2d2h / T-d2d2h-cached   pack to device + explicit D2H round trip
//   V-cpy  / T-cpy-cached      zero-copy (UMA-mapped host buffer)
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

harness::PackBenchSpec base_spec(mpi::DatatypePtr dt) {
  harness::PackBenchSpec spec;
  spec.dt = std::move(dt);
  spec.machine = bench_machine();
  return spec;
}

void run_spec(benchmark::State& state, harness::PackBenchSpec spec) {
  for (auto _ : state) {
    const auto res = harness::run_pack_bench(spec);
    record(state, res.avg_ns, res.bytes);
  }
}

void BM_Fig7_V_d2d(benchmark::State& state) {
  auto spec = base_spec(v_type(state.range(0)));
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_V_d2d)->Apply(matrix_sizes)->UseManualTime()->Iterations(2);

void BM_Fig7_T_d2d(benchmark::State& state) {
  auto spec = base_spec(t_type(state.range(0)));
  spec.engine.cache_enabled = false;
  spec.engine.pipeline_conversion = false;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_T_d2d)->Apply(matrix_sizes)->UseManualTime()->Iterations(2);

void BM_Fig7_T_d2d_pipeline(benchmark::State& state) {
  auto spec = base_spec(t_type(state.range(0)));
  spec.engine.cache_enabled = false;
  spec.engine.pipeline_conversion = true;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_T_d2d_pipeline)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig7_T_d2d_cached(benchmark::State& state) {
  auto spec = base_spec(t_type(state.range(0)));
  spec.warmup = 1;  // first round fills the DEV cache
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_T_d2d_cached)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig7_V_d2d2h(benchmark::State& state) {
  auto spec = base_spec(v_type(state.range(0)));
  spec.target = harness::PackTarget::kDeviceHost;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_V_d2d2h)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig7_V_cpy(benchmark::State& state) {
  auto spec = base_spec(v_type(state.range(0)));
  spec.target = harness::PackTarget::kZeroCopy;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_V_cpy)->Apply(matrix_sizes)->UseManualTime()->Iterations(2);

void BM_Fig7_T_d2d2h_cached(benchmark::State& state) {
  auto spec = base_spec(t_type(state.range(0)));
  spec.target = harness::PackTarget::kDeviceHost;
  spec.warmup = 1;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_T_d2d2h_cached)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig7_T_cpy_cached(benchmark::State& state) {
  auto spec = base_spec(t_type(state.range(0)));
  spec.target = harness::PackTarget::kZeroCopy;
  spec.warmup = 1;
  run_spec(state, std::move(spec));
}
BENCHMARK(BM_Fig7_T_cpy_cached)
    ->Apply(matrix_sizes)
    ->UseManualTime()
    ->Iterations(2);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
