// GPUDirect RDMA crossover (Section 5.2 / [14]): "even though the
// GPUDirect RDMA allows direct inter-node GPU data communication, it only
// delivers interesting performance for small messages (less than 30KB)".
//
// Contiguous GPU-to-GPU ping-pong over IB, message-size sweep:
//   direct  - GPUDirect RDMA forced for every size (limit = infinity)
//   staged  - pipelined copy-in/out through host memory
//   policy  - the default adaptive policy (direct below 30KB, staged above)
// The direct series wins below ~30KB and loses beyond; the policy series
// tracks the lower envelope.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void size_sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t kb : {1, 4, 16, 32, 128, 1024, 16384}) b->Arg(kb);
}

enum class Mode { kDirect, kStaged, kPolicy };

void run_gd(benchmark::State& state, Mode mode) {
  const std::int64_t bytes = state.range(0) * 1024;
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.ranks_per_node = 1;
  spec.cfg.gpu_eager_limit = 0;  // isolate the rendezvous protocols
  switch (mode) {
    case Mode::kDirect:
      spec.cfg.gpudirect_rdma = true;
      spec.cfg.gpudirect_limit_bytes = INT64_MAX;
      break;
    case Mode::kStaged:
      spec.cfg.gpudirect_rdma = false;
      break;
    case Mode::kPolicy:
      spec.cfg.gpudirect_rdma = true;  // default 30KB limit
      break;
  }
  spec.dt0 = spec.dt1 =
      mpi::Datatype::contiguous(bytes / 8, mpi::kDouble());
  spec.iters = 4;
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}

void BM_GpuDirect_Direct(benchmark::State& state) {
  run_gd(state, Mode::kDirect);
}
BENCHMARK(BM_GpuDirect_Direct)
    ->Apply(size_sweep)
    ->UseManualTime()
    ->Iterations(1);

void BM_GpuDirect_Staged(benchmark::State& state) {
  run_gd(state, Mode::kStaged);
}
BENCHMARK(BM_GpuDirect_Staged)
    ->Apply(size_sweep)
    ->UseManualTime()
    ->Iterations(1);

void BM_GpuDirect_Policy(benchmark::State& state) {
  run_gd(state, Mode::kPolicy);
}
BENCHMARK(BM_GpuDirect_Policy)
    ->Apply(size_sweep)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
