// Collectives with derived datatypes and device buffers: virtual-time
// cost of bcast/allgather/alltoall/reduce built on the point-to-point
// layer, so device payloads ride the GPU datatype engine end to end.
//
// Not a paper figure - this is the observability workload for the
// `coll.*` counter family (docs/metrics.md) and the collectives baseline
// in bench/baselines/.
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "mpi/coll.h"
#include "protocols/gpu_plugin.h"

namespace gpuddt::bench {
namespace {

constexpr int kWorld = 4;

/// Run `body` on every rank of a fresh world and return the largest
/// per-rank virtual-time advance (the collective's completion time).
template <typename F>
vt::Time run_world(F&& body) {
  mpi::RuntimeConfig cfg;
  cfg.world_size = kWorld;
  cfg.machine = bench_machine();
  cfg.progress_timeout_ms = 60000;
  cfg.recorder = &obs::default_recorder();
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(std::make_shared<proto::GpuDatatypePlugin>());
  std::vector<vt::Time> elapsed(kWorld, 0);
  rt.run([&](mpi::Process& p) {
    mpi::Collectives coll(mpi::Comm{p});
    const vt::Time t0 = p.clock().now();
    body(p, coll);
    elapsed[static_cast<std::size_t>(p.rank())] = p.clock().now() - t0;
  });
  return *std::max_element(elapsed.begin(), elapsed.end());
}

void BM_Coll_Bcast_V_Device(benchmark::State& state) {
  const auto dt = v_type(state.range(0));
  for (auto _ : state) {
    const vt::Time ns = run_world([&](mpi::Process& p,
                                      mpi::Collectives& coll) {
      auto* buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(dt->true_extent())));
      std::memset(buf, p.rank() == 0 ? 7 : 0,
                  static_cast<std::size_t>(dt->true_extent()));
      coll.bcast(buf, 1, dt, 0);
      sg::Free(p.gpu(), buf);
    });
    record(state, ns, dt->size());
  }
}
BENCHMARK(BM_Coll_Bcast_V_Device)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Coll_Allgather_C_Host(benchmark::State& state) {
  const std::int64_t count = state.range(0) * state.range(0) / 8;
  for (auto _ : state) {
    const vt::Time ns = run_world([&](mpi::Process& p,
                                      mpi::Collectives& coll) {
      std::vector<double> mine(static_cast<std::size_t>(count),
                               p.rank() + 0.5);
      std::vector<double> all(static_cast<std::size_t>(count) * kWorld);
      coll.allgather(mine.data(), all.data(), count, mpi::kDouble());
    });
    record(state, ns, count * 8 * kWorld);
  }
}
BENCHMARK(BM_Coll_Allgather_C_Host)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Coll_Alltoall_C_Host(benchmark::State& state) {
  const std::int64_t count = state.range(0) * state.range(0) / 8;
  for (auto _ : state) {
    const vt::Time ns = run_world([&](mpi::Process& p,
                                      mpi::Collectives& coll) {
      std::vector<double> in(static_cast<std::size_t>(count) * kWorld,
                             p.rank() + 0.25);
      std::vector<double> out(static_cast<std::size_t>(count) * kWorld);
      coll.alltoall(in.data(), out.data(), count, mpi::kDouble());
    });
    record(state, ns, count * 8 * kWorld);
  }
}
BENCHMARK(BM_Coll_Alltoall_C_Host)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Coll_Allreduce_Sum(benchmark::State& state) {
  const std::int64_t count = state.range(0) * state.range(0) / 8;
  for (auto _ : state) {
    const vt::Time ns = run_world([&](mpi::Process&,
                                      mpi::Collectives& coll) {
      std::vector<double> in(static_cast<std::size_t>(count), 1.0);
      std::vector<double> out(static_cast<std::size_t>(count));
      coll.allreduce(in.data(), out.data(), count, mpi::kDouble(),
                     mpi::ReduceOp::kSum);
    });
    record(state, ns, count * 8);
  }
}
BENCHMARK(BM_Coll_Allreduce_Sum)
    ->Apply(small_matrix_sizes)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
