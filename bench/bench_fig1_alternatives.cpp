// Figure 1: the four design alternatives for sending non-contiguous
// GPU-resident data, measured at the pack stage (the paper's motivation
// for choice (d), the GPU datatype engine):
//   (a) stage the whole extent (gaps included) to host + CPU pack
//   (b) one cudaMemcpy D2H per contiguous block
//   (c) one cudaMemcpy D2D per contiguous block
//   (d) GPU pack kernel into a device buffer
#include "bench_common.h"

#include "baselines/alternatives.h"

namespace gpuddt::bench {
namespace {

struct AltSetup {
  sg::Machine machine{bench_machine()};
  sg::HostContext ctx{machine, 0};
  mpi::DatatypePtr dt;
  std::int64_t total, span;
  std::byte* dev_src;
  std::byte* dev_packed;
  std::byte* host_scratch;
  std::byte* host_packed;

  AltSetup(const mpi::DatatypePtr& d) : dt(d) {
    total = dt->size();
    span = dt->true_extent() + 64;
    dev_src = static_cast<std::byte*>(sg::Malloc(ctx, span));
    dev_packed = static_cast<std::byte*>(sg::Malloc(ctx, total));
    host_scratch = static_cast<std::byte*>(
        sg::HostAlloc(ctx, static_cast<std::size_t>(span), false));
    host_packed = static_cast<std::byte*>(
        sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
  }
  std::byte* base() { return dev_src - dt->true_lb(); }
};

void BM_Fig1a_StageWhole(benchmark::State& state) {
  AltSetup s(t_type(state.range(0)));
  for (auto _ : state) {
    const auto out = base::pack_stage_whole(s.ctx, s.dt, 1, s.base(),
                                            s.host_scratch, s.host_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1a_StageWhole)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig1b_PerBlockD2H(benchmark::State& state) {
  AltSetup s(t_type(state.range(0)));
  for (auto _ : state) {
    const auto out =
        base::pack_per_block_d2h(s.ctx, s.dt, 1, s.base(), s.host_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1b_PerBlockD2H)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig1c_PerBlockD2D(benchmark::State& state) {
  AltSetup s(t_type(state.range(0)));
  for (auto _ : state) {
    const auto out =
        base::pack_per_block_d2d(s.ctx, s.dt, 1, s.base(), s.dev_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1c_PerBlockD2D)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig1d_GpuKernel(benchmark::State& state) {
  AltSetup s(t_type(state.range(0)));
  core::GpuDatatypeEngine eng(s.ctx);
  for (auto _ : state) {
    const auto out =
        base::pack_gpu_kernel(eng, s.dt, 1, s.base(), s.dev_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1d_GpuKernel)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

// The same four strategies on the vector layout, where the gap ratio is
// smaller and alternative (a) looks comparatively better.
void BM_Fig1a_StageWhole_V(benchmark::State& state) {
  AltSetup s(v_type(state.range(0)));
  for (auto _ : state) {
    const auto out = base::pack_stage_whole(s.ctx, s.dt, 1, s.base(),
                                            s.host_scratch, s.host_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1a_StageWhole_V)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

void BM_Fig1d_GpuKernel_V(benchmark::State& state) {
  AltSetup s(v_type(state.range(0)));
  core::GpuDatatypeEngine eng(s.ctx);
  for (auto _ : state) {
    const auto out =
        base::pack_gpu_kernel(eng, s.dt, 1, s.base(), s.dev_packed);
    record(state, out.elapsed, s.total);
  }
}
BENCHMARK(BM_Fig1d_GpuKernel_V)
    ->Apply(small_matrix_sizes)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
