// Figure 9: PCI-E bandwidth achieved by the full MPI ping-pong for vector
// and indexed datatypes, versus contiguous data of the same size.
//
// Two ranks on one node, different GPUs; all packed data crosses PCI-E.
// The paper reports ~90% (V) and ~78% (T) of the contiguous bandwidth.
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

void run_pp(benchmark::State& state, const mpi::DatatypePtr& dt) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.dt0 = spec.dt1 = dt;
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    // One-way payload per half round trip.
    record(state, res.avg_roundtrip / 2, res.message_bytes);
  }
}

void BM_Fig9_V(benchmark::State& state) { run_pp(state, v_type(state.range(0))); }
BENCHMARK(BM_Fig9_V)->Apply(matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Fig9_T(benchmark::State& state) { run_pp(state, t_type(state.range(0))); }
BENCHMARK(BM_Fig9_T)->Apply(matrix_sizes)->UseManualTime()->Iterations(1);

void BM_Fig9_C(benchmark::State& state) {
  run_pp(state, c_type_of(v_type(state.range(0))));
}
BENCHMARK(BM_Fig9_C)->Apply(matrix_sizes)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
