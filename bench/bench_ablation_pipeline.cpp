// Ablations of the design knobs DESIGN.md calls out:
//   * pipeline fragment size (the paper: "a reduction by nearly a factor
//     of 2 if the pipeline size is correctly tuned")
//   * pipeline depth (staging slots)
//   * work-unit size S (1KB / 2KB / 4KB, Section 3.2)
//   * DEV cache on/off
//   * zero-copy on/off for the copy-in/out protocol
#include "bench_common.h"

namespace gpuddt::bench {
namespace {

constexpr std::int64_t kN = 2048;

void BM_Pipeline_FragSize(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.gpu_frag_bytes = static_cast<std::size_t>(state.range(0));
  spec.dt0 = spec.dt1 = t_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_Pipeline_FragSize)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(512 << 10)
    ->Arg(1 << 20)
    ->UseManualTime()
    ->Iterations(1);

void BM_Pipeline_Depth(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.gpu_pipeline_depth = static_cast<int>(state.range(0));
  spec.dt0 = spec.dt1 = t_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_Pipeline_Depth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1);

void BM_UnitSize_S(benchmark::State& state) {
  harness::PackBenchSpec spec;
  spec.dt = t_type(kN);
  spec.machine = bench_machine();
  spec.engine.cache_enabled = false;
  spec.engine.unit_bytes = state.range(0);
  for (auto _ : state) {
    const auto res = harness::run_pack_bench(spec);
    record(state, res.avg_ns, res.bytes);
  }
}
BENCHMARK(BM_UnitSize_S)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->UseManualTime()
    ->Iterations(2);

void BM_DevCache_OnOff(benchmark::State& state) {
  harness::PackBenchSpec spec;
  spec.dt = t_type(kN);
  spec.machine = bench_machine();
  spec.engine.cache_enabled = state.range(0) != 0;
  spec.warmup = spec.engine.cache_enabled ? 1 : 0;
  for (auto _ : state) {
    const auto res = harness::run_pack_bench(spec);
    record(state, res.avg_ns, res.bytes);
  }
}
BENCHMARK(BM_DevCache_OnOff)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(2);

void BM_ZeroCopy_OnOff(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.ranks_per_node = 1;  // copy-in/out over IB
  spec.cfg.zero_copy = state.range(0) != 0;
  spec.dt0 = spec.dt1 = v_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_ZeroCopy_OnOff)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(1);

void BM_RdmaPutVsGet(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.rdma_put_mode = state.range(0) != 0;
  spec.dt0 = spec.dt1 = t_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_RdmaPutVsGet)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(1);

void BM_IbRails(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.ranks_per_node = 1;  // IB path
  spec.cfg.ib_rails = static_cast<int>(state.range(0));
  spec.dt0 = spec.dt1 = v_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_IbRails)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(1);

void BM_ResidueStream_OnOff(benchmark::State& state) {
  harness::PackBenchSpec spec;
  spec.dt = t_type(kN);
  spec.machine = bench_machine();
  spec.engine.cache_enabled = false;
  spec.engine.residue_separate_stream = state.range(0) != 0;
  for (auto _ : state) {
    const auto res = harness::run_pack_bench(spec);
    record(state, res.avg_ns, res.bytes);
  }
}
BENCHMARK(BM_ResidueStream_OnOff)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(2);

void BM_RecvLocalStaging_OnOff(benchmark::State& state) {
  harness::PingPongSpec spec;
  spec.cfg = bench_pingpong_cfg();
  spec.cfg.recv_local_staging = state.range(0) != 0;
  spec.dt0 = spec.dt1 = t_type(kN);
  for (auto _ : state) {
    const auto res = harness::run_pingpong(spec);
    record(state, res.avg_roundtrip, res.message_bytes);
  }
}
BENCHMARK(BM_RecvLocalStaging_OnOff)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
