// Datatype zoo: a seeded many-type workload for calibrating the DEV
// cache's byte budget (EngineConfig::cache_max_bytes).
//
// The workload models a library-heavy application: many derived types,
// built fresh each time they are needed (so every op carries a new
// type_id), with the same *shapes* recurring across phases and often
// constructed through different MPI constructors (indexed vs hindexed vs
// struct). That is exactly the scenario the shape-keyed cache
// (mpi/canonical.h) targets: without canonical keying every rebuild
// would miss; with it only capacity evictions can miss.
//
// BM_DDTZoo_Capacity/<KiB> packs kRounds passes over the zoo under a
// descriptor-byte budget of <KiB> (0 = unbounded) and reports the cache
// hit rate, shape-dedup hits and evictions alongside the virtual pack
// time - the hit-rate-vs-capacity curve the calibrated default in
// docs/datatypes.md is read from.
#include <cstring>
#include <random>

#include "bench_common.h"
#include "core/engine.h"
#include "simgpu/runtime.h"

namespace gpuddt::bench {
namespace {

using mpi::Datatype;
using mpi::DatatypePtr;

/// Lower triangle built over byte displacements instead of elements:
/// same shape as core::lower_triangular_type, different constructor.
DatatypePtr tri_hindexed(std::int64_t n, std::int64_t ld) {
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    lens[static_cast<std::size_t>(j)] = n - j;
    displs[static_cast<std::size_t>(j)] = (j * ld + j) * 8;
  }
  return Datatype::hindexed(lens, displs, mpi::kDouble());
}

/// Upper triangle built as a struct of per-column double runs.
DatatypePtr upper_struct(std::int64_t n, std::int64_t ld) {
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  std::vector<DatatypePtr> types(static_cast<std::size_t>(n),
                                 mpi::kDouble());
  for (std::int64_t j = 0; j < n; ++j) {
    lens[static_cast<std::size_t>(j)] = j + 1;
    displs[static_cast<std::size_t>(j)] = j * ld * 8;
  }
  return Datatype::struct_type(lens, displs, types);
}

DatatypePtr stair_hindexed(std::int64_t n, std::int64_t ld,
                           std::int64_t nb) {
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t r = (j / nb) * nb;
    lens[static_cast<std::size_t>(j)] = n - r;
    displs[static_cast<std::size_t>(j)] = (j * ld + r) * 8;
  }
  return Datatype::hindexed(lens, displs, mpi::kDouble());
}

/// Transpose built block-by-block (one indexed_block entry per matrix
/// element) - the canonical pass re-rolls it into transpose_type's
/// nested loops.
DatatypePtr transpose_flat(std::int64_t n, std::int64_t ld) {
  std::vector<std::int64_t> displs;
  displs.reserve(static_cast<std::size_t>(n * n));
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t k = 0; k < n; ++k) displs.push_back(j + k * ld);
  return Datatype::indexed_block(1, displs, mpi::kDouble());
}

/// Seeded irregular indexed layout; `variant` switches the constructor
/// (element vs byte displacements) without changing the shape.
DatatypePtr random_irregular(std::uint32_t seed, int variant) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> len(1, 6);
  std::uniform_int_distribution<std::int64_t> gap(1, 9);
  const std::size_t nblocks = 12 + static_cast<std::size_t>(rng() % 8);
  std::vector<std::int64_t> lens(nblocks);
  std::vector<std::int64_t> displs(nblocks);
  std::int64_t d = 0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    lens[i] = len(rng);
    displs[i] = d;
    d += lens[i] + gap(rng);
  }
  if (variant == 0) return Datatype::indexed(lens, displs, mpi::kDouble());
  for (auto& x : displs) x *= 8;
  return Datatype::hindexed(lens, displs, mpi::kDouble());
}

struct ZooEntry {
  DatatypePtr (*build)(int variant);
  std::int64_t count;
};

/// The zoo. Every entry returns a freshly committed type (new type_id)
/// on every call; odd rounds use the alternate constructor.
const ZooEntry kZoo[] = {
    {[](int v) {
       return v == 0 ? core::lower_triangular_type(32, 32)
                     : tri_hindexed(32, 32);
     },
     1},
    {[](int v) {
       return v == 0 ? core::lower_triangular_type(48, 48)
                     : tri_hindexed(48, 48);
     },
     1},
    // Same shape as the first entry but count 2: a distinct cache key.
    {[](int v) {
       return v == 0 ? core::lower_triangular_type(32, 32)
                     : tri_hindexed(32, 32);
     },
     2},
    {[](int v) {
       return v == 0 ? core::upper_triangular_type(32, 32)
                     : upper_struct(32, 32);
     },
     1},
    {[](int v) {
       return v == 0 ? core::upper_triangular_type(40, 40)
                     : upper_struct(40, 40);
     },
     1},
    {[](int v) {
       return v == 0 ? core::stair_triangular_type(32, 32, 8)
                     : stair_hindexed(32, 32, 8);
     },
     1},
    {[](int v) {
       return v == 0 ? core::stair_triangular_type(48, 48, 8)
                     : stair_hindexed(48, 48, 8);
     },
     1},
    {[](int v) {
       return v == 0 ? core::transpose_type(16, 16) : transpose_flat(16, 16);
     },
     1},
    {[](int v) {
       return v == 0 ? core::transpose_type(24, 24) : transpose_flat(24, 24);
     },
     1},
    {[](int v) { return random_irregular(101, v); }, 1},
    {[](int v) { return random_irregular(202, v); }, 1},
    {[](int v) { return random_irregular(303, v); }, 2},
};

constexpr int kRounds = 4;

/// One full pack of (dt, count); returns the payload bytes moved.
std::int64_t pack_once(sg::HostContext& ctx, core::GpuDatatypeEngine& eng,
                       const DatatypePtr& dt, std::int64_t count) {
  const std::int64_t total = dt->size() * count;
  const std::int64_t span =
      (count - 1) * dt->extent() + dt->true_extent() - dt->true_lb();
  auto* src = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(span)));
  auto* packed = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(total)));
  std::memset(src, 0, static_cast<std::size_t>(span));
  auto op = eng.start(core::GpuDatatypeEngine::Dir::kPack, dt, count,
                      src - dt->true_lb());
  while (!op->done()) {
    const auto r =
        eng.process_some(*op, packed + op->bytes_done(), 256 << 10);
    if (r.bytes == 0) break;
  }
  eng.finish(*op);
  sg::Free(ctx, src);
  sg::Free(ctx, packed);
  return total;
}

void BM_DDTZoo_Capacity(benchmark::State& state) {
  const std::int64_t cap_bytes = state.range(0) * 1024;
  for (auto _ : state) {
    sg::Machine m{bench_machine()};
    sg::HostContext ctx(m, 0);
    core::EngineConfig cfg;
    cfg.cache_max_bytes = cap_bytes;
    cfg.recorder = &obs::default_recorder();
    core::GpuDatatypeEngine eng(ctx, cfg);
    std::int64_t payload = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& z : kZoo) {
        payload += pack_once(ctx, eng, z.build(round % 2), z.count);
      }
    }
    eng.synchronize();
    const auto& cache = eng.cache();
    const double lookups =
        static_cast<double>(cache.hits() + cache.misses());
    state.counters["hit_rate"] = benchmark::Counter(
        lookups > 0 ? static_cast<double>(cache.hits()) / lookups : 0.0);
    state.counters["dedup_hits"] =
        benchmark::Counter(static_cast<double>(cache.shape_dedup_hits()));
    state.counters["evictions"] =
        benchmark::Counter(static_cast<double>(cache.evictions()));
    state.counters["desc_KB"] = benchmark::Counter(
        static_cast<double>(cache.bytes()) / 1024.0);
    record(state, ctx.clock.now(), payload);
  }
}
BENCHMARK(BM_DDTZoo_Capacity)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(0)  // unbounded: the dedup ceiling
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
