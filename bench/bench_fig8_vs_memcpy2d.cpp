// Figure 8: vector pack/unpack kernel vs. cudaMemcpy2D.
//
// Arguments: {number of blocks (1K or 8K), block size in bytes}.
// Series:
//   kernel-d2d    our pack kernel into a device buffer
//   kernel-d2d2h  kernel + explicit D2H
//   kernel-d2h    kernel straight into zero-copy mapped host memory
//   mcp2d-d2d     cudaMemcpy2D device-to-device
//   mcp2d-d2d2h   cudaMemcpy2D d2d + bulk D2H
//   mcp2d-d2h     cudaMemcpy2D device-to-host
// The 2D copy regresses whenever the block size is off the 64-byte
// granule; the kernel does not.
#include "bench_common.h"

#include "core/kernels.h"

namespace gpuddt::bench {
namespace {

void block_sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t nblocks : {1024, 8192}) {
    for (std::int64_t bs : {64, 120, 128, 448, 512, 1000, 1024, 4096}) {
      b->Args({nblocks, bs});
    }
  }
}

struct Fig8Setup {
  sg::Machine machine{bench_machine()};
  sg::HostContext ctx{machine, 0};
  sg::Stream stream{&machine.device(0)};
  std::int64_t nblocks, bs, pitch, total;
  std::byte* src;
  std::byte* dev_dst;
  std::byte* host_dst;

  Fig8Setup(benchmark::State& state, bool mapped_host)
      : nblocks(state.range(0)),
        bs(state.range(1)),
        pitch((bs + 127) / 128 * 128 + 128),
        total(nblocks * bs) {
    src = static_cast<std::byte*>(sg::Malloc(ctx, nblocks * pitch));
    dev_dst = static_cast<std::byte*>(sg::Malloc(ctx, total));
    host_dst = static_cast<std::byte*>(
        sg::HostAlloc(ctx, static_cast<std::size_t>(total), mapped_host));
  }

  mpi::RegularPattern pattern() const { return {0, bs, pitch, nblocks}; }
};

void BM_Fig8_kernel_d2d(benchmark::State& state) {
  Fig8Setup s(state, false);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    const vt::Time fin = core::pack_vector_kernel(
        s.ctx, s.stream, s.src, s.pattern(), 0, s.total, s.dev_dst, 64);
    record(state, fin - t0, s.total);
    s.ctx.clock.wait_until(fin);  // drain before the next iteration
  }
}
BENCHMARK(BM_Fig8_kernel_d2d)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig8_kernel_d2d2h(benchmark::State& state) {
  Fig8Setup s(state, false);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    core::pack_vector_kernel(s.ctx, s.stream, s.src, s.pattern(), 0, s.total,
                             s.dev_dst, 64);
    const vt::Time fin =
        sg::MemcpyAsync(s.ctx, s.host_dst, s.dev_dst,
                        static_cast<std::size_t>(s.total), s.stream);
    record(state, fin - t0, s.total);
    s.ctx.clock.wait_until(fin);
  }
}
BENCHMARK(BM_Fig8_kernel_d2d2h)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig8_kernel_d2h_zero_copy(benchmark::State& state) {
  Fig8Setup s(state, true);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    const vt::Time fin = core::pack_vector_kernel(
        s.ctx, s.stream, s.src, s.pattern(), 0, s.total, s.host_dst, 64);
    record(state, fin - t0, s.total);
    s.ctx.clock.wait_until(fin);
  }
}
BENCHMARK(BM_Fig8_kernel_d2h_zero_copy)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig8_mcp2d_d2d(benchmark::State& state) {
  Fig8Setup s(state, false);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    sg::Memcpy2D(s.ctx, s.dev_dst, static_cast<std::size_t>(s.bs), s.src,
                 static_cast<std::size_t>(s.pitch),
                 static_cast<std::size_t>(s.bs),
                 static_cast<std::size_t>(s.nblocks));
    record(state, s.ctx.clock.now() - t0, s.total);
  }
}
BENCHMARK(BM_Fig8_mcp2d_d2d)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig8_mcp2d_d2d2h(benchmark::State& state) {
  Fig8Setup s(state, false);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    sg::Memcpy2D(s.ctx, s.dev_dst, static_cast<std::size_t>(s.bs), s.src,
                 static_cast<std::size_t>(s.pitch),
                 static_cast<std::size_t>(s.bs),
                 static_cast<std::size_t>(s.nblocks));
    sg::Memcpy(s.ctx, s.host_dst, s.dev_dst,
               static_cast<std::size_t>(s.total));
    record(state, s.ctx.clock.now() - t0, s.total);
  }
}
BENCHMARK(BM_Fig8_mcp2d_d2d2h)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

void BM_Fig8_mcp2d_d2h(benchmark::State& state) {
  Fig8Setup s(state, false);
  for (auto _ : state) {
    const vt::Time t0 = s.ctx.clock.now();
    sg::Memcpy2D(s.ctx, s.host_dst, static_cast<std::size_t>(s.bs), s.src,
                 static_cast<std::size_t>(s.pitch),
                 static_cast<std::size_t>(s.bs),
                 static_cast<std::size_t>(s.nblocks));
    record(state, s.ctx.clock.now() - t0, s.total);
  }
}
BENCHMARK(BM_Fig8_mcp2d_d2h)
    ->Apply(block_sweep)
    ->UseManualTime()
    ->Iterations(2);

}  // namespace
}  // namespace gpuddt::bench

GPUDDT_BENCH_MAIN();
