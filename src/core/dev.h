// Datatype Engine Vectors (DEVs) and CUDA DEV work units - Section 3.2.
//
// The host walks the stack-based datatype representation and re-encodes it
// as a flat array of <non-contiguous displacement, packed displacement,
// length> tuples. Large contiguous blocks are split into work units of at
// most S bytes (`unit_bytes`, the paper's 1KB/2KB/4KB knob) so each unit
// maps onto one CUDA warp; because the tuples hold only *relative*
// displacements, a converted array is reusable and cacheable (dev_cache.h).
#pragma once

#include <cstdint>
#include <span>

#include "mpi/cursor.h"
#include "mpi/datatype.h"

namespace gpuddt::core {

/// The paper's `cuda_dev_dist`: one work unit for one CUDA warp.
struct CudaDevDist {
  std::int64_t nc_disp = 0;  // displacement within the non-contiguous data
  std::int64_t pk_disp = 0;  // displacement within the packed buffer
  std::int64_t length = 0;   // bytes (<= unit size S)

  bool operator==(const CudaDevDist&) const = default;
};

/// Paper lower bound for S: 8 bytes x 32 lanes = 256 B per warp round.
constexpr std::int64_t kMinUnitBytes = 256;

/// Incremental converter from a datatype (for `count` elements) into CUDA
/// DEV work units. Supports partial conversion so the host can pipeline
/// conversion with kernel execution (Section 3.2).
class DevCursor {
 public:
  DevCursor() = default;
  DevCursor(mpi::DatatypePtr dt, std::int64_t count, std::int64_t unit_bytes);

  /// Produce up to out.size() units; returns how many were written.
  std::size_t next_units(std::span<CudaDevDist> out);

  bool done() const { return cursor_.done(); }
  std::int64_t bytes_emitted() const { return packed_off_; }
  std::int64_t total_bytes() const { return cursor_.total_bytes(); }

  /// Contiguous pieces visited so far (host traversal cost accounting).
  /// Splitting one large block into several units walks the datatype
  /// program once, so the units of a contiguous run count as one piece;
  /// emission cost is charged per unit separately.
  std::int64_t pieces_visited() const { return pieces_; }

 private:
  mpi::BlockCursor cursor_;
  std::int64_t unit_bytes_ = 1024;
  std::int64_t packed_off_ = 0;
  std::int64_t pieces_ = 0;
  std::int64_t last_end_ = -1;  // source end of the last emitted unit
};

/// Convert a whole datatype in one shot (cache fill, tests).
std::vector<CudaDevDist> convert_all(const mpi::DatatypePtr& dt,
                                     std::int64_t count,
                                     std::int64_t unit_bytes);

}  // namespace gpuddt::core
