#include "core/layouts.h"

#include <stdexcept>
#include <vector>

namespace gpuddt::core {

using mpi::Datatype;
using mpi::DatatypePtr;

DatatypePtr submatrix_type(std::int64_t rows, std::int64_t cols,
                           std::int64_t ld) {
  if (rows > ld) throw std::invalid_argument("submatrix: rows exceed ld");
  return Datatype::vector(cols, rows, ld, mpi::kDouble());
}

DatatypePtr lower_triangular_type(std::int64_t n, std::int64_t ld) {
  if (n > ld) throw std::invalid_argument("triangular: n exceeds ld");
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    lens[static_cast<std::size_t>(j)] = n - j;
    displs[static_cast<std::size_t>(j)] = j * ld + j;
  }
  return Datatype::indexed(lens, displs, mpi::kDouble());
}

DatatypePtr upper_triangular_type(std::int64_t n, std::int64_t ld) {
  if (n > ld) throw std::invalid_argument("triangular: n exceeds ld");
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    lens[static_cast<std::size_t>(j)] = j + 1;
    displs[static_cast<std::size_t>(j)] = j * ld;
  }
  return Datatype::indexed(lens, displs, mpi::kDouble());
}

DatatypePtr stair_triangular_type(std::int64_t n, std::int64_t ld,
                                  std::int64_t nb) {
  if (n > ld) throw std::invalid_argument("stair: n exceeds ld");
  if (nb <= 0) throw std::invalid_argument("stair: nb must be positive");
  std::vector<std::int64_t> lens(static_cast<std::size_t>(n));
  std::vector<std::int64_t> displs(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t r = (j / nb) * nb;
    lens[static_cast<std::size_t>(j)] = n - r;
    displs[static_cast<std::size_t>(j)] = j * ld + r;
  }
  return Datatype::indexed(lens, displs, mpi::kDouble());
}

DatatypePtr transpose_type(std::int64_t n, std::int64_t ld) {
  // One row of the column-major matrix: n elements, ld apart.
  DatatypePtr row = Datatype::vector(n, 1, ld, mpi::kDouble());
  // n rows, each starting one element after the previous.
  return Datatype::hvector(n, 1, static_cast<std::int64_t>(sizeof(double)),
                           row);
}

std::int64_t stair_triangle_elems(std::int64_t n, std::int64_t nb) {
  std::int64_t total = 0;
  for (std::int64_t j = 0; j < n; ++j) total += n - (j / nb) * nb;
  return total;
}

}  // namespace gpuddt::core
