#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "check/dev_invariants.h"
#include "obs/recorder.h"

namespace gpuddt::core {

namespace {

/// Bounds every DEV unit of (dt, count) must respect; see
/// check::validate_dev_window.
check::DevListBounds bounds_of(const mpi::Datatype& dt, std::int64_t count,
                               std::int64_t unit_bytes) {
  const std::int64_t tlb = dt.true_lb();
  return {tlb, tlb + (count - 1) * dt.extent() + dt.true_extent(),
          dt.size() * count, unit_bytes};
}

}  // namespace

GpuDatatypeEngine::GpuDatatypeEngine(sg::HostContext& ctx, EngineConfig cfg)
    : ctx_(ctx),
      cfg_(cfg),
      kernel_stream_(&ctx.dev(), "engine.kernel"),
      upload_stream_(&ctx.dev(), "engine.upload"),
      residue_stream_(&ctx.dev(), "engine.residue") {
  if (cfg_.unit_bytes < kMinUnitBytes)
    throw std::invalid_argument("EngineConfig: unit_bytes below 256B floor");
  if (cfg_.convert_chunk_units == 0)
    throw std::invalid_argument("EngineConfig: zero conversion chunk");
  cache_.set_recorder(cfg_.recorder);
  cache_.set_max_bytes(cfg_.cache_max_bytes);
  validate_ = cfg_.validate_devs >= 0 ? cfg_.validate_devs != 0
                                      : ctx.machine->observer() != nullptr;
  cache_.set_validation(validate_);
}

GpuDatatypeEngine::~GpuDatatypeEngine() = default;

std::unique_ptr<GpuDatatypeEngine::Op> GpuDatatypeEngine::start(
    Dir dir, mpi::DatatypePtr dt, std::int64_t count, void* user_base) {
  auto op = std::make_unique<Op>();
  op->dir_ = dir;
  op->dt_ = std::move(dt);
  op->count_ = count;
  op->user_base_ = static_cast<std::byte*>(user_base);
  op->total_ = op->dt_->size() * count;
  op->pattern_ = op->dt_->regular_pattern(count);
  if (op->pattern_) {
    ++stats_.vector_fast_path_ops;
    obs::count(cfg_.recorder, "engine.ops.vector");
    return op;  // vector fast path: no conversion at all
  }

  if (cfg_.cache_enabled) {
    op->cached_ = cache_.find(op->dt_, count, cfg_.unit_bytes);
    if (op->cached_ != nullptr) {
      op->cached_dev_ = cache_.device_units(ctx_, *op->cached_);
      obs::count(cfg_.recorder, "engine.ops.dev_cached");
      return op;
    }
    op->fill_cache_ = true;
    if (op->total_ > 0) {
      op->accum_.reserve(
          static_cast<std::size_t>(op->total_ / cfg_.unit_bytes + 16));
    }
  }
  obs::count(cfg_.recorder, "engine.ops.dev");
  op->cursor_ = DevCursor(op->dt_, count, cfg_.unit_bytes);
  return op;
}

GpuDatatypeEngine::Result GpuDatatypeEngine::process_some(
    Op& op, void* contig, std::int64_t max_bytes, vt::Time dep) {
  if (op.done() || max_bytes <= 0) return {0, kernel_stream_.tail()};
  if (op.pattern_) return process_vector(op, contig, max_bytes, dep);
  return process_dev(op, contig, max_bytes, dep);
}

void GpuDatatypeEngine::stage_all(Op& op) {
  if (op.batched_) return;
  op.batched_ = true;
  if (op.done() || op.pattern_ || op.cached_ != nullptr) return;
  if (cfg_.residue_separate_stream) {
    throw std::logic_error(
        "stage_all: residue_separate_stream reorders units per window and "
        "cannot be pre-enqueued as a stream-triggered chain");
  }
  // Convert the WHOLE remaining unit list now - the full host conversion
  // cost lands here, at chain-enqueue time - and upload it as one device
  // array. Chain kernels later index into it by unit position, so there is
  // no per-window upload and no descriptor double-buffer WAR hazard.
  for (;;) {
    const std::size_t before = op.staged_.size();
    convert_chunk(op, cfg_.convert_chunk_units);
    if (op.staged_.size() == before) break;
  }
  if (op.staged_.empty()) return;
  op.unit_pos_ = 0;
  const auto bytes =
      static_cast<std::int64_t>(op.staged_.size() * sizeof(CudaDevDist));
  op.batch_dev_ = sg::Malloc(ctx_, static_cast<std::size_t>(bytes));
  const vt::Time t0 = ctx_.clock.now();
  const vt::Time done =
      sg::MemcpyAsync(ctx_, op.batch_dev_, op.staged_.data(),
                      static_cast<std::size_t>(bytes), upload_stream_);
  sg::StreamWaitEvent(ctx_, kernel_stream_,
                      sg::EventRecord(ctx_, upload_stream_));
  obs::count(cfg_.recorder, "engine.desc_uploads");
  obs::count(cfg_.recorder, "engine.desc_upload_bytes", bytes);
  obs::trace(cfg_.recorder,
             {"desc_upload", "engine", t0, done, ctx_.device, bytes,
              cfg_.trace_pid, op.flow_});
}

GpuDatatypeEngine::Result GpuDatatypeEngine::process_triggered(
    Op& op, void* contig, std::int64_t max_bytes, vt::Time dep,
    std::uint64_t flow) {
  op.flow_ = flow;
  if (op.done() || max_bytes <= 0) return {0, kernel_stream_.tail()};
  if (op.pattern_) return process_vector(op, contig, max_bytes, dep, &dep);
  if (op.cached_ == nullptr && !op.batched_) {
    throw std::logic_error(
        "process_triggered: DEV op was not staged (call stage_all first)");
  }
  if (cfg_.residue_separate_stream) {
    throw std::logic_error(
        "process_triggered: residue_separate_stream needs per-window host "
        "descriptor uploads and cannot run as a pre-enqueued chain");
  }
  return process_dev(op, contig, max_bytes, dep, &dep);
}

vt::Time GpuDatatypeEngine::launch(Op& op, std::span<const CudaDevDist> units,
                                   std::int64_t pk_base, void* contig,
                                   const CudaDevDist* dev_units,
                                   sg::Stream& stream,
                                   const vt::Time* triggered_at) {
  ++stats_.kernels_launched;
  obs::count(cfg_.recorder, "engine.kernels.dev");
  const vt::Time queued =
      std::max(triggered_at != nullptr ? *triggered_at : ctx_.clock.now(),
               stream.tail());
  vt::Time ready;
  if (op.dir_ == Dir::kPack) {
    ready = pack_dev_kernel(ctx_, stream, op.user_base_, units, pk_base,
                            contig, dev_units, cfg_.kernel_blocks,
                            triggered_at);
  } else {
    ready = unpack_dev_kernel(ctx_, stream, op.user_base_, units, pk_base,
                              contig, dev_units, cfg_.kernel_blocks,
                              triggered_at);
  }
  obs::trace(cfg_.recorder,
             {"dev_kernel", "engine", queued, ready, ctx_.device,
              static_cast<std::int64_t>(units.size()), cfg_.trace_pid,
              op.flow_});
  return ready;
}

GpuDatatypeEngine::Result GpuDatatypeEngine::process_vector(
    Op& op, void* contig, std::int64_t max_bytes, vt::Time dep,
    const vt::Time* trig) {
  const std::int64_t lo = op.pos_;
  const std::int64_t hi = std::min(op.total_, lo + max_bytes);
  sg::StreamWaitEvent(ctx_, kernel_stream_, sg::Event{dep});
  ++stats_.kernels_launched;
  obs::count(cfg_.recorder, "engine.kernels.vector");
  const vt::Time queued =
      std::max(trig != nullptr ? *trig : ctx_.clock.now(),
               kernel_stream_.tail());
  vt::Time ready;
  if (op.dir_ == Dir::kPack) {
    ready = pack_vector_kernel(ctx_, kernel_stream_, op.user_base_,
                               *op.pattern_, lo, hi, contig,
                               cfg_.kernel_blocks, trig);
  } else {
    ready = unpack_vector_kernel(ctx_, kernel_stream_, op.user_base_,
                                 *op.pattern_, lo, hi, contig,
                                 cfg_.kernel_blocks, trig);
  }
  op.pos_ = hi;
  (op.dir_ == Dir::kPack ? stats_.bytes_packed : stats_.bytes_unpacked) +=
      hi - lo;
  obs::count(cfg_.recorder,
             op.dir_ == Dir::kPack ? "engine.pack.bytes.vector"
                                   : "engine.unpack.bytes.vector",
             hi - lo);
  obs::trace(cfg_.recorder,
             {"vector_kernel", "engine", queued, ready, ctx_.device, hi - lo,
              cfg_.trace_pid, op.flow_});
  return {hi - lo, ready};
}

void GpuDatatypeEngine::convert_chunk(Op& op, std::size_t limit) {
  const std::size_t old = op.staged_.size();
  op.staged_.resize(old + limit);
  const std::int64_t pieces_before = op.cursor_.pieces_visited();
  const std::size_t n = op.cursor_.next_units(
      std::span<CudaDevDist>(op.staged_.data() + old, limit));
  op.staged_.resize(old + n);
  stats_.units_converted += static_cast<std::int64_t>(n);
  obs::count(cfg_.recorder, "engine.units.converted",
             static_cast<std::int64_t>(n));
  // Host-side conversion cost (Section 3.2's first stage).
  const sg::CostModel& cm = ctx_.cost();
  const std::int64_t pieces = op.cursor_.pieces_visited() - pieces_before;
  const auto adv = static_cast<vt::Time>(
      cm.cpu_dev_emit_ns * static_cast<double>(n) +
      cm.cpu_block_walk_ns * static_cast<double>(pieces));
  const vt::Time t0 = ctx_.clock.now();
  ctx_.clock.advance(adv);
  // The slice of this conversion that ran while earlier kernels of the op
  // were still executing is pipeline overlap (Section 3.2's win).
  op.conv_ns_ += adv;
  op.conv_overlap_ns_ +=
      std::clamp<vt::Time>(kernel_stream_.tail() - t0, 0, adv);
  obs::trace(cfg_.recorder,
             {"convert_chunk", "engine", t0, t0 + adv, ctx_.device,
              static_cast<std::int64_t>(n), cfg_.trace_pid, op.flow_});
  if (op.fill_cache_)
    op.accum_.insert(op.accum_.end(), op.staged_.begin() + old,
                     op.staged_.end());
}

const CudaDevDist* GpuDatatypeEngine::upload_descriptors(
    Op& op, std::span<const CudaDevDist> units) {
  if (units.empty()) return nullptr;
  const int slot = op.desc_slot_ ^ 1;
  op.desc_slot_ = slot;
  if (op.desc_cap_units_[slot] < units.size()) {
    if (op.desc_dev_[slot] != nullptr) sg::Free(ctx_, op.desc_dev_[slot]);
    op.desc_cap_units_[slot] = std::max<std::size_t>(units.size(), 256);
    op.desc_dev_[slot] =
        sg::Malloc(ctx_, op.desc_cap_units_[slot] * sizeof(CudaDevDist));
  }
  // The kernel launched against this slot two windows ago may still be in
  // flight; overwriting before it finishes would be a WAR hazard.
  sg::StreamWaitEvent(ctx_, upload_stream_,
                      sg::Event{op.desc_last_use_[slot]});
  // Upload on a dedicated stream; the kernel stream waits on it, so the
  // next conversion chunk (host) overlaps the current kernel (device).
  const auto bytes =
      static_cast<std::int64_t>(units.size() * sizeof(CudaDevDist));
  const vt::Time t0 = ctx_.clock.now();
  const vt::Time done = sg::MemcpyAsync(ctx_, op.desc_dev_[slot],
                                        units.data(),
                                        units.size() * sizeof(CudaDevDist),
                                        upload_stream_);
  sg::StreamWaitEvent(ctx_, kernel_stream_,
                      sg::EventRecord(ctx_, upload_stream_));
  obs::count(cfg_.recorder, "engine.desc_uploads");
  obs::count(cfg_.recorder, "engine.desc_upload_bytes", bytes);
  obs::trace(cfg_.recorder,
             {"desc_upload", "engine", t0, done, ctx_.device, bytes,
              cfg_.trace_pid, op.flow_});
  return static_cast<const CudaDevDist*>(op.desc_dev_[slot]);
}

GpuDatatypeEngine::Result GpuDatatypeEngine::process_dev(
    Op& op, void* contig, std::int64_t max_bytes, vt::Time dep,
    const vt::Time* trig) {
  sg::StreamWaitEvent(ctx_, kernel_stream_, sg::Event{dep});
  const std::int64_t pk_base = op.pos_;
  const std::int64_t budget = std::min(max_bytes, op.total_ - op.pos_);
  std::int64_t bytes = 0;
  vt::Time ready = kernel_stream_.tail();
  const bool cached = op.cached_ != nullptr;
  // A batch-staged op behaves like a cache hit: the full unit list sits in
  // staged_ with a matching device array, so there is no refill and no
  // per-window descriptor upload.
  const bool batched = !cached && op.batch_dev_ != nullptr;

  while (bytes < budget) {
    // Current unit source window.
    const std::vector<CudaDevDist>* units =
        cached ? &op.cached_->units : &op.staged_;
    if (op.unit_pos_ == units->size()) {
      if (cached || batched) break;  // exhausted (coincides with op.done())
      // Refill the staging window: one pipelined chunk, or everything
      // when conversion pipelining is disabled (Figure 7's plain mode).
      op.staged_.clear();
      op.unit_pos_ = 0;
      const std::size_t chunk =
          cfg_.pipeline_conversion
              ? cfg_.convert_chunk_units
              : static_cast<std::size_t>((op.total_ - op.pos_ - bytes) /
                                             cfg_.unit_bytes +
                                         2);
      convert_chunk(op, chunk);
      if (op.staged_.empty()) break;
      units = &op.staged_;
    }
    // Trim a window of units to the remaining budget.
    op.ws_.clear();
    const std::size_t first = op.unit_pos_;
    const std::int64_t win_pk = pk_base + bytes;
    std::int64_t distinct = 0;
    while (op.unit_pos_ < units->size() && bytes < budget) {
      const CudaDevDist& u = (*units)[op.unit_pos_];
      if (op.unit_off_ == 0) ++distinct;  // first touch of this unit
      const std::int64_t avail = u.length - op.unit_off_;
      const std::int64_t take = std::min(avail, budget - bytes);
      op.ws_.push_back(CudaDevDist{u.nc_disp + op.unit_off_,
                                   u.pk_disp + op.unit_off_, take});
      bytes += take;
      op.unit_off_ += take;
      if (op.unit_off_ == u.length) {
        op.unit_off_ = 0;
        ++op.unit_pos_;
      }
    }
    if (op.ws_.empty()) break;
    // Units served from the cache are counted per window, inside the
    // loop: a small per-call budget walks this loop many times, and each
    // window's ws_ replaces the previous one. The companion _distinct
    // counter ignores re-touches of a unit split across windows.
    if (cached) {
      stats_.units_from_cache += static_cast<std::int64_t>(op.ws_.size());
      obs::count(cfg_.recorder, "engine.units.from_cache",
                 static_cast<std::int64_t>(op.ws_.size()));
      stats_.units_from_cache_distinct += distinct;
      obs::count(cfg_.recorder, "engine.units.from_cache_distinct",
                 distinct);
    }
    if (validate_ && op.count_ > 0) {
      check::validate_dev_window(op.ws_,
                                 bounds_of(*op.dt_, op.count_,
                                           cfg_.unit_bytes),
                                 win_pk, /*contiguous=*/true,
                                 "engine.window");
    }
    if (!cfg_.residue_separate_stream) {
      const CudaDevDist* dev_units =
          cached     ? op.cached_dev_ + first
          : batched  ? static_cast<const CudaDevDist*>(op.batch_dev_) + first
                     : upload_descriptors(op, op.ws_);
      const vt::Time r = launch(op, op.ws_, pk_base, contig, dev_units,
                                kernel_stream_, trig);
      if (!cached && !batched) {
        op.desc_last_use_[op.desc_slot_] =
            std::max(op.desc_last_use_[op.desc_slot_], r);
      }
      ready = std::max(ready, r);
    } else {
      // The Section 3.2 alternative: full-size units in the main kernel,
      // residues delegated to a second (lower-priority) stream - one
      // extra launch per window, which is exactly the overhead the paper
      // avoids by treating residues like every other unit.
      //
      // The split reorders units, so neither the ws_-ordered scratch nor
      // the cached device array lines up index-for-index with what each
      // kernel is handed. Build one stable split (full units first, then
      // residues), upload descriptors in that order, and give each launch
      // its own sub-span; the upload on the cached path is the honest
      // extra cost of this ablation variant.
      auto& split = op.split_;
      split.clear();
      split.reserve(op.ws_.size());
      for (const auto& u : op.ws_)
        if (u.length == cfg_.unit_bytes) split.push_back(u);
      const std::size_t n_full = split.size();
      for (const auto& u : op.ws_)
        if (u.length != cfg_.unit_bytes) split.push_back(u);
      if (validate_ && op.count_ > 0) {
        check::validate_dev_window(split,
                                   bounds_of(*op.dt_, op.count_,
                                             cfg_.unit_bytes),
                                   win_pk, /*contiguous=*/false,
                                   "engine.window.residue_split");
      }
      const CudaDevDist* dev_split = upload_descriptors(op, split);
      sg::StreamWaitEvent(ctx_, residue_stream_,
                          sg::EventRecord(ctx_, upload_stream_));
      const std::span<const CudaDevDist> full(split.data(), n_full);
      const std::span<const CudaDevDist> residue(split.data() + n_full,
                                                 split.size() - n_full);
      vt::Time slot_use = 0;
      if (!full.empty()) {
        const vt::Time r =
            launch(op, full, pk_base, contig, dev_split, kernel_stream_);
        slot_use = std::max(slot_use, r);
        ready = std::max(ready, r);
      }
      if (!residue.empty()) {
        const vt::Time r = launch(op, residue, pk_base, contig,
                                  dev_split + n_full, residue_stream_);
        slot_use = std::max(slot_use, r);
        ready = std::max(ready, r);
      }
      op.desc_last_use_[op.desc_slot_] =
          std::max(op.desc_last_use_[op.desc_slot_], slot_use);
    }
  }
  op.pos_ += bytes;
  (op.dir_ == Dir::kPack ? stats_.bytes_packed : stats_.bytes_unpacked) +=
      bytes;
  obs::count(cfg_.recorder,
             op.dir_ == Dir::kPack
                 ? (cached ? "engine.pack.bytes.dev_cached"
                           : "engine.pack.bytes.dev")
                 : (cached ? "engine.unpack.bytes.dev_cached"
                           : "engine.unpack.bytes.dev"),
             bytes);
  return {bytes, ready};
}

void GpuDatatypeEngine::finish(Op& op) {
  if (op.batch_dev_ != nullptr) {
    sg::Free(ctx_, op.batch_dev_);
    op.batch_dev_ = nullptr;
  }
  for (int slot = 0; slot < 2; ++slot) {
    if (op.desc_dev_[slot] != nullptr) {
      sg::Free(ctx_, op.desc_dev_[slot]);
      op.desc_dev_[slot] = nullptr;
      op.desc_cap_units_[slot] = 0;
    }
    op.desc_last_use_[slot] = 0;
  }
  if (op.conv_ns_ > 0) {
    obs::observe(cfg_.recorder, "engine.op.conv_overlap_pct",
                 100 * op.conv_overlap_ns_ / op.conv_ns_);
  }
  if (op.fill_cache_ && op.done() && cfg_.cache_enabled &&
      !op.pattern_.has_value()) {
    cache_.insert(ctx_, op.dt_, op.count_, cfg_.unit_bytes,
                  std::move(op.accum_));
    op.fill_cache_ = false;
  }
}

void GpuDatatypeEngine::prefetch(const mpi::DatatypePtr& dt,
                                 std::int64_t count) {
  if (!cfg_.cache_enabled || dt->size() * count == 0) return;
  if (dt->regular_pattern(count)) return;  // vector fast path: no DEVs
  if (cache_.find(dt, count, cfg_.unit_bytes) != nullptr) return;
  // Drive the conversion through a cursor so the walk cost is charged per
  // datatype piece actually visited - a long contiguous row is one walked
  // piece but many emitted units, while tiny blocks are the reverse.
  DevCursor cur(dt, count, cfg_.unit_bytes);
  std::vector<CudaDevDist> units;
  units.reserve(
      static_cast<std::size_t>(dt->size() * count / cfg_.unit_bytes + 16));
  CudaDevDist buf[256];
  for (;;) {
    const std::size_t n = cur.next_units(buf);
    if (n == 0) break;
    units.insert(units.end(), buf, buf + n);
  }
  const sg::CostModel& cm = ctx_.cost();
  ctx_.clock.advance(static_cast<vt::Time>(
      cm.cpu_dev_emit_ns * static_cast<double>(units.size()) +
      cm.cpu_block_walk_ns * static_cast<double>(cur.pieces_visited())));
  obs::count(cfg_.recorder, "engine.prefetches");
  obs::count(cfg_.recorder, "engine.prefetch.units",
             static_cast<std::int64_t>(units.size()));
  const auto* entry =
      cache_.insert(ctx_, dt, count, cfg_.unit_bytes, std::move(units));
  cache_.device_units(ctx_, *entry);  // upload now, not on first use
}

GpuDatatypeEngine::PipelineShape GpuDatatypeEngine::pipeline_shape() const {
  PipelineShape s;
  // Two descriptor slots: upload_descriptors() flips desc_slot_ between
  // exactly two scratch buffers. If the double-buffer ever grows, this
  // must follow, or the verifier's model diverges from the engine.
  s.desc_slots = 2;
  s.residue_separate_stream = cfg_.residue_separate_stream;
  s.pipeline_conversion = cfg_.pipeline_conversion;
  return s;
}

void GpuDatatypeEngine::synchronize() {
  sg::StreamSynchronize(ctx_, kernel_stream_);
  sg::StreamSynchronize(ctx_, upload_stream_);
  sg::StreamSynchronize(ctx_, residue_stream_);
}

}  // namespace gpuddt::core
