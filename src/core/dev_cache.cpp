#include "core/dev_cache.h"

#include <algorithm>
#include <cstring>

namespace gpuddt::core {

void DevCache::touch(const Key& k) const {
  auto& lru = const_cast<DevCache*>(this)->lru_;
  auto it = std::find(lru.begin(), lru.end(), k);
  if (it != lru.end()) lru.erase(it);
  lru.push_front(k);
}

const DevCache::Entry* DevCache::find(const mpi::DatatypePtr& dt,
                                      std::int64_t count,
                                      std::int64_t unit_bytes) const {
  const Key k{dt->type_id(), count, unit_bytes};
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch(k);
  return it->second.get();
}

const DevCache::Entry* DevCache::insert(sg::HostContext& ctx,
                                        const mpi::DatatypePtr& dt,
                                        std::int64_t count,
                                        std::int64_t unit_bytes,
                                        std::vector<CudaDevDist> units) {
  const Key k{dt->type_id(), count, unit_bytes};
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    touch(k);
    return it->second.get();  // already present; keep the existing copy
  }
  auto entry = std::make_unique<Entry>();
  entry->total_bytes = 0;
  for (const auto& u : units) entry->total_bytes += u.length;
  entry->units = std::move(units);
  const Entry* out = entry.get();
  entries_.emplace(k, std::move(entry));
  lru_.push_front(k);
  evict_if_needed(ctx);
  return out;
}

const CudaDevDist* DevCache::device_units(sg::HostContext& ctx,
                                          const Entry& entry) {
  auto& e = const_cast<Entry&>(entry);
  auto it = e.device_copies.find(ctx.device);
  if (it != e.device_copies.end())
    return static_cast<const CudaDevDist*>(it->second);
  const std::size_t bytes = e.units.size() * sizeof(CudaDevDist);
  void* dev = sg::Malloc(ctx, bytes);
  sg::Memcpy(ctx, dev, e.units.data(), bytes);
  e.device_copies.emplace(ctx.device, dev);
  return static_cast<const CudaDevDist*>(dev);
}

void DevCache::evict_if_needed(sg::HostContext& ctx) {
  while (entries_.size() > max_entries_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    for (auto& [dev, ptr] : it->second->device_copies) {
      // Freeing is only valid from a context that can see the arena;
      // device pointers resolve globally through the machine registry.
      sg::Free(ctx, ptr);
    }
    entries_.erase(it);
  }
}

void DevCache::clear(sg::HostContext& ctx) {
  for (auto& [k, e] : entries_) {
    for (auto& [dev, ptr] : e->device_copies) sg::Free(ctx, ptr);
  }
  entries_.clear();
  lru_.clear();
}

}  // namespace gpuddt::core
