#include "core/dev_cache.h"

#include <cstring>
#include <span>

#include "check/dev_invariants.h"
#include "obs/recorder.h"
#include "verify/hook.h"

namespace gpuddt::core {

void DevCache::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec_ == nullptr) return;
  // Pre-register the core cache counters so a dump always reports them,
  // even when (e.g.) nothing was ever evicted.
  rec_->metrics().counter("dev_cache.hits");
  rec_->metrics().counter("dev_cache.misses");
  rec_->metrics().counter("dev_cache.evictions");
  rec_->metrics().counter("dev_cache.bytes");
  rec_->metrics().counter("dev_cache.evictions_bytes");
  rec_->metrics().counter("dev_cache.shape_dedup.hits");
  rec_->metrics().counter("dev_cache.shape_dedup.inserts_coalesced");
  rec_->metrics().counter("dev_cache.shape_dedup.bytes_saved");
  // Verifier hook counters (src/verify/hook.h): pre-registered so dumps
  // report zeroes when certification is disabled for the run.
  rec_->metrics().counter("verify.obligations.proved");
  rec_->metrics().counter("verify.obligations.failed");
  rec_->metrics().counter("verify.devs.certified");
  rec_->metrics().counter("verify.devs.rejected");
  rec_->metrics().counter("verify.prover_ns");
}

std::uint64_t DevCache::key_hash(std::uint64_t shape, std::int64_t count,
                                 std::int64_t unit_bytes) {
  // FNV-1a over every byte of the (shape, count, unit_bytes) triple.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(shape);
  mix(static_cast<std::uint64_t>(count));
  mix(static_cast<std::uint64_t>(unit_bytes));
  return h;
}

void DevCache::touch(const Node& n) const {
  lru_.splice(lru_.begin(), lru_, n.lru_it);
}

const DevCache::Entry* DevCache::find(const mpi::DatatypePtr& dt,
                                      std::int64_t count,
                                      std::int64_t unit_bytes) const {
  const Key k{dt->shape_digest(), count, unit_bytes};
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    ++misses_;
    obs::count(rec_, "dev_cache.misses");
    return nullptr;
  }
  ++hits_;
  obs::count(rec_, "dev_cache.hits");
  if (it->second.entry->first_type_id != dt->type_id()) {
    // Served to a different instance than the one that compiled it: the
    // shape keying just saved a full conversion + upload.
    ++shape_dedup_hits_;
    obs::count(rec_, "dev_cache.shape_dedup.hits");
  }
  touch(it->second);
  return it->second.entry.get();
}

const DevCache::Entry* DevCache::insert(sg::HostContext& ctx,
                                        const mpi::DatatypePtr& dt,
                                        std::int64_t count,
                                        std::int64_t unit_bytes,
                                        std::vector<CudaDevDist> units) {
  const Key k{dt->shape_digest(), count, unit_bytes};
  if (validate_ && count > 0) {
    const std::int64_t tlb = dt->true_lb();
    const check::DevListBounds b{
        tlb, tlb + (count - 1) * dt->extent() + dt->true_extent(),
        dt->size() * count, unit_bytes};
    check::validate_dev_list(std::span<const CudaDevDist>(units), b,
                             "dev_cache.insert");
  }
  if (verify::enabled()) {
    // Symbolic certification (src/verify/): proves the unit list
    // byte-exact against the datatype's tree/program/canonical layouts
    // before the DEV can become reachable from the cache. Throws
    // verify::CertificationFailure on any unproven obligation.
    verify::certify_insert(dt, count, unit_bytes,
                           std::span<const CudaDevDist>(units), rec_);
  }
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    Entry& e = *it->second.entry;
    if (e.units == units) {
      // Same program resident already: keep the existing copy (and its
      // device uploads). Count the coalesce when another instance of the
      // shape raced the fill.
      if (e.first_type_id != dt->type_id()) {
        ++shape_dedup_coalesced_;
        shape_dedup_bytes_saved_ += entry_bytes(e);
        obs::count(rec_, "dev_cache.shape_dedup.inserts_coalesced");
        obs::count(rec_, "dev_cache.shape_dedup.bytes_saved",
                   entry_bytes(e));
      }
      touch(it->second);
      return &e;
    }
    // Re-insert with a different program (e.g. the same shape converted
    // under a different engine state): replace the units and charge the
    // byte *delta* - the old accounting double-counted the entry.
    const std::int64_t old_bytes = entry_bytes(e);
    for (auto& [dev, ptr] : e.device_copies) sg::Free(ctx, ptr);
    e.device_copies.clear();
    e.total_bytes = 0;
    for (const auto& u : units) e.total_bytes += u.length;
    e.units = std::move(units);
    e.first_type_id = dt->type_id();
    const std::int64_t delta = entry_bytes(e) - old_bytes;
    bytes_ += delta;
    obs::count(rec_, "dev_cache.bytes", delta);
    touch(it->second);
    evict_if_needed(ctx);
    // evict_if_needed never evicts the most-recent entry, so `e` stays
    // valid here.
    return &e;
  }
  auto entry = std::make_unique<Entry>();
  entry->total_bytes = 0;
  for (const auto& u : units) entry->total_bytes += u.length;
  entry->units = std::move(units);
  entry->first_type_id = dt->type_id();
  const Entry* out = entry.get();
  bytes_ += entry_bytes(*entry);
  obs::count(rec_, "dev_cache.bytes", entry_bytes(*entry));
  lru_.push_front(k);
  entries_.emplace(k, Node{std::move(entry), lru_.begin()});
  obs::count(rec_, "dev_cache.inserts");
  evict_if_needed(ctx);
  return out;
}

const CudaDevDist* DevCache::device_units(sg::HostContext& ctx,
                                          const Entry& entry) {
  auto& e = const_cast<Entry&>(entry);
  auto it = e.device_copies.find(ctx.device);
  if (it != e.device_copies.end())
    return static_cast<const CudaDevDist*>(it->second);
  const std::size_t bytes = e.units.size() * sizeof(CudaDevDist);
  void* dev = sg::Malloc(ctx, bytes);
  sg::Memcpy(ctx, dev, e.units.data(), bytes);
  e.device_copies.emplace(ctx.device, dev);
  obs::count(rec_, "dev_cache.device_uploads");
  obs::count(rec_, "dev_cache.device_upload_bytes",
             static_cast<std::int64_t>(bytes));
  return static_cast<const CudaDevDist*>(dev);
}

void DevCache::evict_if_needed(sg::HostContext& ctx) {
  // The entries_.size() > 1 guard on the byte bound keeps the
  // just-inserted (most recent) entry resident even when it alone
  // exceeds max_bytes_ - evicting it would make the insert pointless.
  while (!lru_.empty() &&
         (entries_.size() > max_entries_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_ && entries_.size() > 1))) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    for (auto& [dev, ptr] : it->second.entry->device_copies) {
      // Freeing is only valid from a context that can see the arena;
      // device pointers resolve globally through the machine registry.
      sg::Free(ctx, ptr);
    }
    const std::int64_t freed = entry_bytes(*it->second.entry);
    bytes_ -= freed;
    evictions_bytes_ += freed;
    entries_.erase(it);
    ++evictions_;
    obs::count(rec_, "dev_cache.evictions");
    obs::count(rec_, "dev_cache.evictions_bytes", freed);
    obs::count(rec_, "dev_cache.bytes", -freed);
  }
}

void DevCache::clear(sg::HostContext& ctx) {
  for (auto& [k, n] : entries_) {
    for (auto& [dev, ptr] : n.entry->device_copies) sg::Free(ctx, ptr);
  }
  entries_.clear();
  lru_.clear();
  obs::count(rec_, "dev_cache.bytes", -bytes_);
  bytes_ = 0;
}

std::vector<std::uint64_t> DevCache::lru_shape_digests() const {
  std::vector<std::uint64_t> out;
  out.reserve(lru_.size());
  for (const auto& k : lru_) out.push_back(k.shape);
  return out;
}

}  // namespace gpuddt::core
