#include "core/dev_cache.h"

#include <cstring>
#include <span>

#include "check/dev_invariants.h"
#include "obs/recorder.h"

namespace gpuddt::core {

void DevCache::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec_ == nullptr) return;
  // Pre-register the core cache counters so a dump always reports them,
  // even when (e.g.) nothing was ever evicted.
  rec_->metrics().counter("dev_cache.hits");
  rec_->metrics().counter("dev_cache.misses");
  rec_->metrics().counter("dev_cache.evictions");
  rec_->metrics().counter("dev_cache.bytes");
  rec_->metrics().counter("dev_cache.evictions_bytes");
}

void DevCache::touch(const Node& n) const {
  lru_.splice(lru_.begin(), lru_, n.lru_it);
}

const DevCache::Entry* DevCache::find(const mpi::DatatypePtr& dt,
                                      std::int64_t count,
                                      std::int64_t unit_bytes) const {
  const Key k{dt->type_id(), count, unit_bytes};
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    ++misses_;
    obs::count(rec_, "dev_cache.misses");
    return nullptr;
  }
  ++hits_;
  obs::count(rec_, "dev_cache.hits");
  touch(it->second);
  return it->second.entry.get();
}

const DevCache::Entry* DevCache::insert(sg::HostContext& ctx,
                                        const mpi::DatatypePtr& dt,
                                        std::int64_t count,
                                        std::int64_t unit_bytes,
                                        std::vector<CudaDevDist> units) {
  const Key k{dt->type_id(), count, unit_bytes};
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    touch(it->second);
    return it->second.entry.get();  // already present; keep existing copy
  }
  if (validate_ && count > 0) {
    const std::int64_t tlb = dt->true_lb();
    const check::DevListBounds b{
        tlb, tlb + (count - 1) * dt->extent() + dt->true_extent(),
        dt->size() * count, unit_bytes};
    check::validate_dev_list(std::span<const CudaDevDist>(units), b,
                             "dev_cache.insert");
  }
  auto entry = std::make_unique<Entry>();
  entry->total_bytes = 0;
  for (const auto& u : units) entry->total_bytes += u.length;
  entry->units = std::move(units);
  const Entry* out = entry.get();
  bytes_ += entry_bytes(*entry);
  obs::count(rec_, "dev_cache.bytes", entry_bytes(*entry));
  lru_.push_front(k);
  entries_.emplace(k, Node{std::move(entry), lru_.begin()});
  obs::count(rec_, "dev_cache.inserts");
  evict_if_needed(ctx);
  return out;
}

const CudaDevDist* DevCache::device_units(sg::HostContext& ctx,
                                          const Entry& entry) {
  auto& e = const_cast<Entry&>(entry);
  auto it = e.device_copies.find(ctx.device);
  if (it != e.device_copies.end())
    return static_cast<const CudaDevDist*>(it->second);
  const std::size_t bytes = e.units.size() * sizeof(CudaDevDist);
  void* dev = sg::Malloc(ctx, bytes);
  sg::Memcpy(ctx, dev, e.units.data(), bytes);
  e.device_copies.emplace(ctx.device, dev);
  obs::count(rec_, "dev_cache.device_uploads");
  obs::count(rec_, "dev_cache.device_upload_bytes",
             static_cast<std::int64_t>(bytes));
  return static_cast<const CudaDevDist*>(dev);
}

void DevCache::evict_if_needed(sg::HostContext& ctx) {
  // The entries_.size() > 1 guard on the byte bound keeps the
  // just-inserted (most recent) entry resident even when it alone
  // exceeds max_bytes_ - evicting it would make the insert pointless.
  while (!lru_.empty() &&
         (entries_.size() > max_entries_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_ && entries_.size() > 1))) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    for (auto& [dev, ptr] : it->second.entry->device_copies) {
      // Freeing is only valid from a context that can see the arena;
      // device pointers resolve globally through the machine registry.
      sg::Free(ctx, ptr);
    }
    const std::int64_t freed = entry_bytes(*it->second.entry);
    bytes_ -= freed;
    evictions_bytes_ += freed;
    entries_.erase(it);
    ++evictions_;
    obs::count(rec_, "dev_cache.evictions");
    obs::count(rec_, "dev_cache.evictions_bytes", freed);
    obs::count(rec_, "dev_cache.bytes", -freed);
  }
}

void DevCache::clear(sg::HostContext& ctx) {
  for (auto& [k, n] : entries_) {
    for (auto& [dev, ptr] : n.entry->device_copies) sg::Free(ctx, ptr);
  }
  entries_.clear();
  lru_.clear();
  obs::count(rec_, "dev_cache.bytes", -bytes_);
  bytes_ = 0;
}

std::vector<std::uint64_t> DevCache::lru_type_ids() const {
  std::vector<std::uint64_t> out;
  out.reserve(lru_.size());
  for (const auto& k : lru_) out.push_back(k.type_id);
  return out;
}

}  // namespace gpuddt::core
