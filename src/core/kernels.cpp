#include "core/kernels.h"

#include <cstring>
#include <vector>

namespace gpuddt::core {

namespace {

/// Per-piece access ranges reported to the hazard detector. Only built when
/// the machine has an observer attached; above the cap we fall back to one
/// conservative spanning range per side (the tracker merges overlaps anyway).
constexpr std::size_t kMaxKernelRanges = 4096;

struct RangeBuilder {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::vector<sg::MemRange> ranges;
  std::size_t last_src_ = kNone;
  std::size_t last_dst_ = kNone;
  const std::byte* src_lo = nullptr;
  const std::byte* src_hi = nullptr;
  std::byte* dst_lo = nullptr;
  std::byte* dst_hi = nullptr;
  bool spanning = false;

  void add(const std::byte* src, std::byte* dst, std::int64_t len) {
    if (len <= 0) return;
    if (src_lo == nullptr || src < src_lo) src_lo = src;
    if (src + len > src_hi) src_hi = src + len;
    if (dst_lo == nullptr || dst < dst_lo) dst_lo = dst;
    if (dst + len > dst_hi) dst_hi = dst + len;
    add_one(last_src_, src, len, false);
    add_one(last_dst_, dst, len, true);
  }

  // Extend the previously-pushed range of the same kind when the new piece
  // is contiguous with it, so the sequential side of a pack/unpack (the
  // packed buffer) collapses to one precise range instead of eating into
  // the cap and forcing the lossy spanning fallback.
  void add_one(std::size_t& last, const void* p, std::int64_t len,
               bool write) {
    if (spanning) return;
    const auto* b = static_cast<const std::byte*>(p);
    if (last != kNone) {
      sg::MemRange& r = ranges[last];
      if (b == static_cast<const std::byte*>(r.ptr) + r.len) {
        r.len += len;
        return;
      }
    }
    if (ranges.size() + 1 > kMaxKernelRanges) {
      spanning = true;
      ranges.clear();
      last_src_ = kNone;
      last_dst_ = kNone;
      return;
    }
    last = ranges.size();
    ranges.push_back({b, len, write});
  }

  std::span<const sg::MemRange> finish(const CudaDevDist* device_units,
                                       std::size_t n_units) {
    if (spanning) {
      if (src_lo != nullptr)
        ranges.push_back({src_lo, src_hi - src_lo, false});
      if (dst_lo != nullptr) ranges.push_back({dst_lo, dst_hi - dst_lo, true});
    }
    if (device_units != nullptr && n_units > 0) {
      ranges.push_back(
          {device_units,
           static_cast<std::int64_t>(n_units * sizeof(CudaDevDist)), false});
    }
    return ranges;
  }
};

/// How one side of a copy is reached from the kernel's device.
enum class Side { kLocalDevice, kPeerDevice, kMappedHost };

Side classify(const sg::HostContext& ctx, const sg::Stream& stream,
              const void* p) {
  const sg::PtrAttributes a = ctx.machine->query(p);
  if (a.space == sg::MemorySpace::kDevice) {
    return a.device == stream.device().id() ? Side::kLocalDevice
                                            : Side::kPeerDevice;
  }
  // Pinned-mapped or plain host memory: reached over PCI-E (the simulator
  // is permissive about non-mapped host pointers; the cost is identical).
  return Side::kMappedHost;
}

/// Accumulates the timing profile of a gather/scatter kernel.
struct Traffic {
  const sg::CostModel* cm;
  Side src_side;
  Side dst_side;
  sg::KernelProfile prof;

  Traffic(const sg::HostContext& ctx, const sg::Stream& stream,
          const void* src_base, const void* dst_base, int blocks)
      : cm(&ctx.cost()),
        src_side(classify(ctx, stream, src_base)),
        dst_side(classify(ctx, stream, dst_base)) {
    prof.blocks = blocks;
    if (src_side == Side::kMappedHost) prof.pcie_dir = sg::PcieDir::kFromHost;
    if (dst_side == Side::kMappedHost) prof.pcie_dir = sg::PcieDir::kToHost;
    if (src_side == Side::kPeerDevice || dst_side == Side::kPeerDevice)
      prof.pcie_dir = sg::PcieDir::kPeer;
  }

  void add(std::int64_t src_off, std::int64_t dst_off, std::int64_t len) {
    add_side(src_side, src_off, len);
    add_side(dst_side, dst_off, len);
    prof.warp_rounds += (len + 255) / 256;
  }

  /// Charge descriptor-array reads (the kernel streams the CudaDevDist
  /// array from device memory).
  void add_descriptor_reads(std::int64_t n_units) {
    prof.device_txn_bytes +=
        ((n_units * static_cast<std::int64_t>(sizeof(CudaDevDist))) +
         cm->mem_txn_bytes - 1) /
        cm->mem_txn_bytes * cm->mem_txn_bytes;
  }

 private:
  void add_side(Side side, std::int64_t off, std::int64_t len) {
    switch (side) {
      case Side::kLocalDevice:
        prof.device_txn_bytes += cm->txn_lines(off, len) * cm->mem_txn_bytes;
        break;
      case Side::kPeerDevice:
      case Side::kMappedHost:
        prof.pcie_bytes += len;
        break;
    }
  }
};

/// Iterate the (src_off, dst_off, len) pieces of a packed-range vector
/// operation. `fn(src_off, pk_off, len)` with pk_off relative to pk_lo.
template <typename Fn>
void for_vector_range(const mpi::RegularPattern& pat, std::int64_t pk_lo,
                      std::int64_t pk_hi, Fn&& fn) {
  if (pat.blocklen <= 0) return;
  std::int64_t pk = pk_lo;
  while (pk < pk_hi) {
    const std::int64_t blk = pk / pat.blocklen;
    if (blk >= pat.count) break;
    const std::int64_t intra = pk - blk * pat.blocklen;
    const std::int64_t take =
        std::min(pat.blocklen - intra, pk_hi - pk);
    fn(pat.first_disp + blk * pat.stride + intra, pk - pk_lo, take);
    pk += take;
  }
}

}  // namespace

vt::Time pack_vector_kernel(sg::HostContext& ctx, sg::Stream& stream,
                            const void* src_base,
                            const mpi::RegularPattern& pat, std::int64_t pk_lo,
                            std::int64_t pk_hi, void* dst, int blocks,
                            const vt::Time* triggered_at) {
  Traffic t(ctx, stream, src_base, dst, blocks);
  for_vector_range(pat, pk_lo, pk_hi,
                   [&](std::int64_t s, std::int64_t d, std::int64_t len) {
                     t.add(s, d, len);
                   });
  const auto* sb = static_cast<const std::byte*>(src_base);
  auto* db = static_cast<std::byte*>(dst);
  RangeBuilder rb;
  if (ctx.machine->observer() != nullptr) {
    for_vector_range(pat, pk_lo, pk_hi,
                     [&](std::int64_t s, std::int64_t d, std::int64_t len) {
                       rb.add(sb + s, db + d, len);
                     });
  }
  return sg::LaunchKernel(
      ctx, stream, t.prof,
      [&] {
        for_vector_range(pat, pk_lo, pk_hi,
                         [&](std::int64_t s, std::int64_t d,
                             std::int64_t len) {
                           std::memcpy(db + d, sb + s,
                                       static_cast<std::size_t>(len));
                         });
      },
      "pack_vector", rb.finish(nullptr, 0), triggered_at);
}

vt::Time unpack_vector_kernel(sg::HostContext& ctx, sg::Stream& stream,
                              void* dst_base, const mpi::RegularPattern& pat,
                              std::int64_t pk_lo, std::int64_t pk_hi,
                              const void* src, int blocks,
                              const vt::Time* triggered_at) {
  Traffic t(ctx, stream, src, dst_base, blocks);
  for_vector_range(pat, pk_lo, pk_hi,
                   [&](std::int64_t d, std::int64_t s, std::int64_t len) {
                     t.add(s, d, len);
                   });
  auto* db = static_cast<std::byte*>(dst_base);
  const auto* sb = static_cast<const std::byte*>(src);
  RangeBuilder rb;
  if (ctx.machine->observer() != nullptr) {
    for_vector_range(pat, pk_lo, pk_hi,
                     [&](std::int64_t d, std::int64_t s, std::int64_t len) {
                       rb.add(sb + s, db + d, len);
                     });
  }
  return sg::LaunchKernel(
      ctx, stream, t.prof,
      [&] {
        for_vector_range(pat, pk_lo, pk_hi,
                         [&](std::int64_t d, std::int64_t s,
                             std::int64_t len) {
                           std::memcpy(db + d, sb + s,
                                       static_cast<std::size_t>(len));
                         });
      },
      "unpack_vector", rb.finish(nullptr, 0), triggered_at);
}

vt::Time pack_dev_kernel(sg::HostContext& ctx, sg::Stream& stream,
                         const void* src_base,
                         std::span<const CudaDevDist> units,
                         std::int64_t pk_base, void* dst,
                         const CudaDevDist* device_units, int blocks,
                         const vt::Time* triggered_at) {
  Traffic t(ctx, stream, src_base, dst, blocks);
  for (const auto& u : units) t.add(u.nc_disp, u.pk_disp - pk_base, u.length);
  t.add_descriptor_reads(static_cast<std::int64_t>(units.size()));
  const auto* sb = static_cast<const std::byte*>(src_base);
  auto* db = static_cast<std::byte*>(dst);
  RangeBuilder rb;
  if (ctx.machine->observer() != nullptr) {
    for (const auto& u : units)
      rb.add(sb + u.nc_disp, db + (u.pk_disp - pk_base), u.length);
  }
  return sg::LaunchKernel(
      ctx, stream, t.prof,
      [&] {
        for (const auto& u : units) {
          std::memcpy(db + (u.pk_disp - pk_base), sb + u.nc_disp,
                      static_cast<std::size_t>(u.length));
        }
      },
      "pack_dev", rb.finish(device_units, units.size()), triggered_at);
}

vt::Time unpack_dev_kernel(sg::HostContext& ctx, sg::Stream& stream,
                           void* dst_base,
                           std::span<const CudaDevDist> units,
                           std::int64_t pk_base, const void* src,
                           const CudaDevDist* device_units, int blocks,
                           const vt::Time* triggered_at) {
  Traffic t(ctx, stream, src, dst_base, blocks);
  for (const auto& u : units) t.add(u.pk_disp - pk_base, u.nc_disp, u.length);
  t.add_descriptor_reads(static_cast<std::int64_t>(units.size()));
  auto* db = static_cast<std::byte*>(dst_base);
  const auto* sb = static_cast<const std::byte*>(src);
  RangeBuilder rb;
  if (ctx.machine->observer() != nullptr) {
    for (const auto& u : units)
      rb.add(sb + (u.pk_disp - pk_base), db + u.nc_disp, u.length);
  }
  return sg::LaunchKernel(
      ctx, stream, t.prof,
      [&] {
        for (const auto& u : units) {
          std::memcpy(db + u.nc_disp, sb + (u.pk_disp - pk_base),
                      static_cast<std::size_t>(u.length));
        }
      },
      "unpack_dev", rb.finish(device_units, units.size()), triggered_at);
}

}  // namespace gpuddt::core
