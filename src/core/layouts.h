// The memory layouts of the paper's evaluation (Section 5), as reusable
// datatype builders. All matrices are column-major double-precision, as in
// ScaLAPACK (the paper's motivating library):
//
//  * sub-matrix            -> MPI vector        (the "V" series)
//  * lower triangular      -> MPI indexed       (the "T" series)
//  * stair-shaped triangle -> MPI indexed       (Figure 5's occupancy probe)
//  * matrix transpose      -> N single-element-column vectors (Section 5.2.3)
//  * FFT reshape           -> vector <-> contiguous (Section 5.2.2)
#pragma once

#include <cstdint>

#include "mpi/datatype.h"

namespace gpuddt::core {

/// rows x cols sub-matrix out of an ld x (>=cols) column-major double
/// matrix: vector(count=cols, blocklen=rows, stride=ld).
mpi::DatatypePtr submatrix_type(std::int64_t rows, std::int64_t cols,
                                std::int64_t ld);

/// Lower triangular (including diagonal) of an n x n column-major double
/// matrix stored with leading dimension ld: indexed, column j holding
/// n - j elements at element-displacement j*ld + j.
mpi::DatatypePtr lower_triangular_type(std::int64_t n, std::int64_t ld);

/// Upper triangular (including diagonal): column j holds j + 1 elements at
/// displacement j*ld.
mpi::DatatypePtr upper_triangular_type(std::int64_t n, std::int64_t ld);

/// Stair-shaped lower triangle (Figure 5): column j starts at row
/// (j / nb) * nb, so every column in a stair of width nb has the same
/// aligned start and a length that is a multiple of nb.
mpi::DatatypePtr stair_triangular_type(std::int64_t n, std::int64_t ld,
                                       std::int64_t nb);

/// The transpose view of an n x n column-major double matrix: reading with
/// this type yields the matrix in row-major order, i.e. the transpose. A
/// collection of n single-element-column vectors (the paper's stress
/// test).
mpi::DatatypePtr transpose_type(std::int64_t n, std::int64_t ld);

/// Number of doubles in a lower triangle of order n.
constexpr std::int64_t lower_triangle_elems(std::int64_t n) {
  return n * (n + 1) / 2;
}

std::int64_t stair_triangle_elems(std::int64_t n, std::int64_t nb);

}  // namespace gpuddt::core
