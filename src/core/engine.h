// The GPU datatype engine - the paper's core contribution (Section 3).
//
// One engine per MPI rank. It packs / unpacks non-contiguous GPU-resident
// datatypes incrementally ("a fragment at a time"), which is what the
// pipelined protocols of Section 4 build on:
//
//   * vector fast path: layouts expressible as blocklen/stride go straight
//     to the specialized kernel, no descriptor conversion at all (S3.1);
//   * general path: the host converts the datatype into CUDA DEV work
//     units - in chunks, pipelined with kernel execution (S3.2) - uploads
//     the descriptors, and launches the DEV kernel;
//   * converted unit arrays are cached (host + device copies) and reused
//     whenever the same datatype *shape* and count is packed again - the
//     cache keys on the canonical-form digest (mpi/canonical.h), so
//     structurally equal types built by different callers share entries.
//
// The contiguous side of an operation may live in local device memory, in
// zero-copy mapped host memory (the copy-in/out protocol's bounce buffers)
// or in a peer device (IPC / pack-to-remote shortcut); the kernels price
// each case appropriately.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dev.h"
#include "core/dev_cache.h"
#include "core/kernels.h"
#include "simgpu/runtime.h"
#include "simgpu/stream.h"

namespace gpuddt::core {

struct EngineConfig {
  /// Work-unit size S (Section 3.2: 1KB, 2KB or 4KB; floor 256B).
  std::int64_t unit_bytes = 1024;
  /// Host conversion chunk, in units, for the conversion/kernel pipeline.
  std::size_t convert_chunk_units = 4096;
  /// CUDA blocks per kernel (Section 5.3 sweeps this).
  int kernel_blocks = 64;
  bool cache_enabled = true;
  /// Byte bound on the DEV cache's summed descriptor footprint
  /// (0 = entry-count bound only; see DevCache).
  std::int64_t cache_max_bytes = 0;
  /// Pipeline host-side conversion with kernel execution; off = convert
  /// the whole remaining range first (the Figure 7 "plain" variant).
  bool pipeline_conversion = true;
  /// Section 3.2 discusses delegating incomplete (residue) work units to
  /// a second, lower-priority stream instead of treating them like full
  /// units. The paper chooses equal treatment ("allowing us to launch a
  /// single kernel and therefore minimize launching overhead"); this knob
  /// enables the alternative so the ablation can quantify that choice.
  bool residue_separate_stream = false;
  /// Optional observability sink (counters, histograms, trace events).
  /// Nullable; the engine is silent when unset. Declared in obs/recorder.h
  /// (forward-declared via dev_cache.h).
  obs::Recorder* recorder = nullptr;
  /// Rank that owns this engine, stamped as `pid` on its trace events so
  /// the Chrome export groups engine stages under the right rank process.
  /// -1 (standalone engines) falls back to the device id.
  std::int32_t trace_pid = -1;
  /// Validate every DEV window and cached list against the datatype's
  /// bounds before launch (docs/checking.md). Tri-state: -1 follows the
  /// machine's access checker (on when an observer is attached), 0/1 force.
  int validate_devs = -1;
};

/// Counters the engine accumulates across operations.
struct EngineStats {
  std::int64_t kernels_launched = 0;
  std::int64_t units_converted = 0;   // host-side DEV conversions
  std::int64_t units_from_cache = 0;  // units served by the DEV cache
  /// Distinct cached units touched: each unit counts once per op even when
  /// a small per-call budget splits it across several windows, whereas
  /// units_from_cache counts every window's worth.
  std::int64_t units_from_cache_distinct = 0;
  std::int64_t bytes_packed = 0;
  std::int64_t bytes_unpacked = 0;
  std::int64_t vector_fast_path_ops = 0;
};

class GpuDatatypeEngine {
 public:
  enum class Dir { kPack, kUnpack };

  /// `ctx` must outlive the engine; streams are created on ctx's device.
  explicit GpuDatatypeEngine(sg::HostContext& ctx, EngineConfig cfg = {});
  ~GpuDatatypeEngine();

  GpuDatatypeEngine(const GpuDatatypeEngine&) = delete;
  GpuDatatypeEngine& operator=(const GpuDatatypeEngine&) = delete;

  /// Incremental state of one message's pack or unpack.
  class Op {
   public:
    std::int64_t total_bytes() const { return total_; }
    std::int64_t bytes_done() const { return pos_; }
    bool done() const { return pos_ >= total_; }
    Dir dir() const { return dir_; }
    /// True when the operation runs on the vector fast path.
    bool on_vector_path() const { return pattern_.has_value(); }
    bool used_cache() const { return cached_ != nullptr; }

    /// Fragment flow id stamped on trace events the engine emits for
    /// this op (mpi::frag_flow, docs/tracing.md). Protocol drivers set
    /// it before each process_some call so the conv/desc-upload/kernel
    /// spans of one fragment join that fragment's cross-rank flow chain.
    /// 0 (the default) leaves events flow-less. Virtual time and results
    /// are unaffected - this is pure trace metadata.
    void set_flow(std::uint64_t flow) { flow_ = flow; }
    std::uint64_t flow() const { return flow_; }

   private:
    friend class GpuDatatypeEngine;
    Dir dir_ = Dir::kPack;
    mpi::DatatypePtr dt_;
    std::int64_t count_ = 0;
    std::byte* user_base_ = nullptr;
    std::int64_t total_ = 0;
    std::int64_t pos_ = 0;
    std::optional<mpi::RegularPattern> pattern_;
    // Cached-path state.
    const DevCache::Entry* cached_ = nullptr;
    const CudaDevDist* cached_dev_ = nullptr;
    std::size_t unit_pos_ = 0;   // next unit (cached or staged window)
    std::int64_t unit_off_ = 0;  // bytes of the current unit already done
    // Live-conversion state.
    DevCursor cursor_;
    std::vector<CudaDevDist> staged_;   // converted, not yet consumed
    std::vector<CudaDevDist> accum_;    // full list for cache fill
    bool fill_cache_ = false;
    // Device scratch for descriptor uploads, double-buffered: while the
    // kernel reading slot k is still in flight, the next window uploads
    // into slot k^1. A single buffer would be a WAR hazard (the upload
    // overwrites descriptors the previous kernel may still be reading).
    void* desc_dev_[2] = {nullptr, nullptr};
    std::size_t desc_cap_units_[2] = {0, 0};
    vt::Time desc_last_use_[2] = {0, 0};  // last kernel finish per slot
    int desc_slot_ = 0;                   // slot the latest upload used
    std::vector<CudaDevDist> ws_;       // per-launch trimmed window
    std::vector<CudaDevDist> split_;    // residue-stream split (full first)
    // Batch-submission state (stage_all): the full unit list converted and
    // uploaded up-front into one device array, so later process_triggered
    // calls launch kernels without any host conversion or per-window
    // descriptor upload.
    void* batch_dev_ = nullptr;   // device array of ALL descriptors
    bool batched_ = false;        // stage_all completed
    // Conversion/kernel overlap accounting (virtual time, per op).
    vt::Time conv_ns_ = 0;          // total host conversion time
    vt::Time conv_overlap_ns_ = 0;  // conversion time with a kernel in flight
    std::uint64_t flow_ = 0;        // trace flow id (set_flow)
  };

  /// Begin packing (gathering) or unpacking (scattering) `count` elements
  /// of `dt` at `user_base` (device memory).
  std::unique_ptr<Op> start(Dir dir, mpi::DatatypePtr dt, std::int64_t count,
                            void* user_base);

  struct Result {
    std::int64_t bytes = 0;  // packed-stream bytes processed
    vt::Time ready = 0;      // virtual completion of the launched kernels
  };

  /// Process exactly min(max_bytes, remaining) bytes of the packed stream
  /// against `contig` (the contiguous buffer: destination for pack, source
  /// for unpack), which corresponds to packed offset op.bytes_done().
  /// Work units crossing the budget boundary are split, so sender and
  /// receiver may fragment a message at different unit geometries (e.g.
  /// vector vs. contiguous endpoints). `dep` is a virtual-time dependency
  /// the kernels must wait for (e.g. the RDMA get that produced `contig`'s
  /// bytes).
  Result process_some(Op& op, void* contig, std::int64_t max_bytes,
                      vt::Time dep = 0);

  /// Batch submission, stage 1 (stream-triggered chains): convert the
  /// op's ENTIRE unit list now - charging the full host conversion cost at
  /// this call, i.e. at chain-enqueue time - and upload it to one device
  /// descriptor array on the upload stream. After this, the op can be
  /// driven to completion by process_triggered() with zero host-clock
  /// involvement. No-op for vector-fast-path and cache-hit ops (they have
  /// no host conversion stage). Throws when the engine runs residues on a
  /// separate stream: that ablation shape re-orders units per window and
  /// is not expressible as a pre-enqueued chain (the verifier rejects the
  /// combination for the same reason).
  void stage_all(Op& op);

  /// Batch submission, stage 2: process up to `max_bytes` packed bytes as
  /// a *pre-enqueued* launch - the host clock is neither read nor
  /// advanced; the kernel is ordered after max(stream tail, dep) purely
  /// through stream/event dependencies, and `flow` is stamped on the op
  /// before the window is cut so its trace spans join the fragment's flow
  /// chain. Requires stage_all() first (or a vector/cached op).
  Result process_triggered(Op& op, void* contig, std::int64_t max_bytes,
                           vt::Time dep, std::uint64_t flow);

  /// Release per-op scratch; insert the converted units into the cache if
  /// the op completed a full conversion.
  void finish(Op& op);

  /// Warm the DEV cache for (dt, count) without packing anything: convert
  /// the full unit array (charging the host conversion cost) and upload
  /// the device copy, so the first real transfer already runs cached.
  void prefetch(const mpi::DatatypePtr& dt, std::int64_t count);

  /// Block the host clock until all kernels of this engine completed.
  void synchronize();

  /// Static shape of the synchronization this engine issues per op: the
  /// descriptor double-buffer depth and whether residues run on their
  /// own stream. The static pipeline-hazard prover
  /// (src/verify/pipeline.h) builds its happens-before DAG from exactly
  /// these parameters, so the model provably matches the configuration.
  struct PipelineShape {
    int desc_slots = 2;
    bool residue_separate_stream = false;
    bool pipeline_conversion = true;
  };
  PipelineShape pipeline_shape() const;

  sg::Stream& pack_stream() { return kernel_stream_; }
  DevCache& cache() { return cache_; }
  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return cfg_; }
  sg::HostContext& ctx() { return ctx_; }

 private:
  // `trig` non-null marks a pre-enqueued (stream-triggered) call: launches
  // are ordered after max(stream tail, *trig) and the host clock is never
  // read or advanced (see LaunchKernel's triggered_at).
  Result process_vector(Op& op, void* contig, std::int64_t max_bytes,
                        vt::Time dep, const vt::Time* trig = nullptr);
  Result process_dev(Op& op, void* contig, std::int64_t max_bytes,
                     vt::Time dep, const vt::Time* trig = nullptr);
  /// Convert up to `limit` more units into op.staged_, charging host time.
  void convert_chunk(Op& op, std::size_t limit);
  /// Upload descriptors to op's device scratch; returns the device pointer
  /// and orders the kernel stream after the upload.
  const CudaDevDist* upload_descriptors(Op& op,
                                        std::span<const CudaDevDist> units);
  vt::Time launch(Op& op, std::span<const CudaDevDist> units,
                  std::int64_t pk_base, void* contig,
                  const CudaDevDist* dev_units, sg::Stream& stream,
                  const vt::Time* triggered_at = nullptr);

  sg::HostContext& ctx_;
  EngineConfig cfg_;
  sg::Stream kernel_stream_;
  sg::Stream upload_stream_;
  sg::Stream residue_stream_;  // used only with residue_separate_stream
  DevCache cache_;
  EngineStats stats_;
  bool validate_ = false;  // resolved EngineConfig::validate_devs
};

}  // namespace gpuddt::core
