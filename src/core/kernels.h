// GPU pack/unpack kernels - Sections 3.1 and 3.2.
//
// Two kernel families, mirroring the paper (each wrapper's trailing
// `triggered_at` forwards to sg::LaunchKernel: non-null marks the launch
// as pre-enqueued by a stream-triggered chain, so no host clock charge):
//  * vector kernels - specialized for blocklength/stride layouts; driven
//    directly by the pattern, no descriptor array needed (Section 3.1);
//  * DEV kernels - generic, driven by an array of CudaDevDist work units
//    resident in device memory, one unit per warp (Section 3.2).
//
// Each wrapper computes a transaction-accurate KernelProfile (128-byte
// line counting on both the gather and scatter side, 8 bytes per lane,
// 256-byte warp rounds) and performs the functional byte movement. The
// profiles are what make the simulated Figure 6 behave like the paper's:
// aligned vectors reach ~94% of cudaMemcpy, triangular-matrix columns
// drift off transaction boundaries and lose ~15%, and the stair-shaped
// triangle recovers.
#pragma once

#include <cstdint>
#include <span>

#include "core/dev.h"
#include "mpi/datatype.h"
#include "simgpu/runtime.h"
#include "simgpu/stream.h"

namespace gpuddt::core {

/// Pack the packed-byte subrange [pk_lo, pk_hi) of a strided layout into
/// `dst` (which receives packed byte pk_lo at offset 0). `src_base` is the
/// user buffer the pattern displacements are relative to. Returns the
/// kernel's virtual finish time.
vt::Time pack_vector_kernel(sg::HostContext& ctx, sg::Stream& stream,
                            const void* src_base,
                            const mpi::RegularPattern& pat, std::int64_t pk_lo,
                            std::int64_t pk_hi, void* dst, int blocks,
                            const vt::Time* triggered_at = nullptr);

/// Inverse: scatter `src` (holding packed bytes [pk_lo, pk_hi)) back into
/// the strided layout at `dst_base`.
vt::Time unpack_vector_kernel(sg::HostContext& ctx, sg::Stream& stream,
                              void* dst_base, const mpi::RegularPattern& pat,
                              std::int64_t pk_lo, std::int64_t pk_hi,
                              const void* src, int blocks,
                              const vt::Time* triggered_at = nullptr);

/// Pack the given work units: gather src_base + u.nc_disp into
/// dst + (u.pk_disp - pk_base). `device_units` is the device-resident
/// descriptor array the real kernel would read (its traffic is charged);
/// the functional copy uses the host-visible `units`.
vt::Time pack_dev_kernel(sg::HostContext& ctx, sg::Stream& stream,
                         const void* src_base,
                         std::span<const CudaDevDist> units,
                         std::int64_t pk_base, void* dst,
                         const CudaDevDist* device_units, int blocks,
                         const vt::Time* triggered_at = nullptr);

/// Inverse: scatter src + (u.pk_disp - pk_base) into dst_base + u.nc_disp.
vt::Time unpack_dev_kernel(sg::HostContext& ctx, sg::Stream& stream,
                           void* dst_base,
                           std::span<const CudaDevDist> units,
                           std::int64_t pk_base, const void* src,
                           const CudaDevDist* device_units, int blocks,
                           const vt::Time* triggered_at = nullptr);

}  // namespace gpuddt::core
