// Cache of converted CUDA DEV arrays - Section 3.2.
//
// "As the CUDA DEV is tied to the data representation and is independent
// of the location of the source and destination buffers, it can be cached,
// either in the main or GPU memory, thereby minimizing the overheads of
// future pack/unpack operations."
//
// Keyed by (shape digest, count, unit size): the digest of the
// *canonical* datatype form (mpi/canonical.h), not the per-instance
// type_id - structurally equal types built through different constructor
// paths share one entry, so a many-type workload holds one DEV program
// per distinct shape instead of one per committed instance. Holds the
// host-side unit array and, lazily, a device-resident copy per device
// (so repeated pack/unpack skips both the conversion and the descriptor
// upload). Entries carry their LRU-list iterator, so a hit promotes in
// O(1) via std::list::splice instead of scanning the recency list.
// Dedup traffic is observable through the dev_cache.shape_dedup.*
// counters (docs/metrics.md).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/dev.h"
#include "simgpu/runtime.h"

namespace gpuddt::obs {
class Recorder;
}

namespace gpuddt::core {

class DevCache {
 public:
  struct Entry {
    std::vector<CudaDevDist> units;
    std::int64_t total_bytes = 0;
    /// Device-resident copies of `units`, per device id.
    std::map<int, void*> device_copies;
    /// type_id of the instance that populated the entry; a find() or
    /// insert() from a *different* instance of the same shape is a
    /// shape-dedup event.
    std::uint64_t first_type_id = 0;
  };

  /// `max_bytes` bounds the summed descriptor footprint of the cached
  /// entries (units.size() * sizeof(CudaDevDist) each); 0 = unbounded.
  /// Entries of wildly different DEV-list sizes would otherwise share one
  /// entry-count budget.
  explicit DevCache(std::size_t max_entries = 64, std::int64_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  void set_max_bytes(std::int64_t bytes) { max_bytes_ = bytes; }

  /// Mirror hit/miss/eviction/upload events into `rec` (nullable).
  void set_recorder(obs::Recorder* rec);

  /// Validate every inserted unit list against the datatype's bounds
  /// (check::validate_dev_list); throws check::InvariantViolation on a
  /// corrupt list. Off by default; the engine wires it to its own
  /// validate_devs setting.
  void set_validation(bool on) { validate_ = on; }

  /// Look up a converted array; nullptr on miss.
  const Entry* find(const mpi::DatatypePtr& dt, std::int64_t count,
                    std::int64_t unit_bytes) const;

  /// Insert a fully converted array (takes ownership). Returns the entry.
  /// `ctx` is used to free device copies of any evicted entry.
  const Entry* insert(sg::HostContext& ctx, const mpi::DatatypePtr& dt,
                      std::int64_t count, std::int64_t unit_bytes,
                      std::vector<CudaDevDist> units);

  /// Device-resident copy of an entry's units, uploading on first use
  /// (costs one H2D transfer on `ctx`'s clock).
  const CudaDevDist* device_units(sg::HostContext& ctx, const Entry& entry);

  /// Release device copies (e.g. before tearing down the machine).
  void clear(sg::HostContext& ctx);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Current summed descriptor footprint of the resident entries.
  std::int64_t bytes() const { return bytes_; }
  /// Descriptor bytes released by evictions so far.
  std::int64_t evictions_bytes() const { return evictions_bytes_; }
  /// Hits served to a different type instance than the one that filled
  /// the entry (the shape-keying win; dev_cache.shape_dedup.hits).
  std::uint64_t shape_dedup_hits() const { return shape_dedup_hits_; }
  /// Inserts coalesced onto a resident entry of the same shape from a
  /// different instance (dev_cache.shape_dedup.inserts_coalesced).
  std::uint64_t shape_dedup_coalesced() const { return shape_dedup_coalesced_; }
  /// Descriptor bytes those coalesced inserts did not duplicate.
  std::int64_t shape_dedup_bytes_saved() const {
    return shape_dedup_bytes_saved_;
  }

  /// Cache keys (shape digests) from most- to least-recently used
  /// (tests, introspection).
  std::vector<std::uint64_t> lru_shape_digests() const;

  /// The key hash (exposed for the collision-regression test): FNV-1a
  /// over all 24 key bytes. The previous `h * prime ^ hash(field)`
  /// mixing collapsed for common small-integer field values.
  static std::uint64_t key_hash(std::uint64_t shape, std::int64_t count,
                                std::int64_t unit_bytes);

 private:
  struct Key {
    std::uint64_t shape;  // Datatype::shape_digest()
    std::int64_t count;
    std::int64_t unit_bytes;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          key_hash(k.shape, k.count, k.unit_bytes));
    }
  };
  struct Node {
    std::unique_ptr<Entry> entry;
    std::list<Key>::iterator lru_it;  // position in lru_; stable across
                                      // rehash and splice
  };

  void evict_if_needed(sg::HostContext& ctx);
  void touch(const Node& n) const;

  static std::int64_t entry_bytes(const Entry& e) {
    return static_cast<std::int64_t>(e.units.size() * sizeof(CudaDevDist));
  }

  std::size_t max_entries_;
  std::int64_t max_bytes_ = 0;  // 0 = no byte bound
  std::int64_t bytes_ = 0;
  std::int64_t evictions_bytes_ = 0;
  mutable std::uint64_t shape_dedup_hits_ = 0;
  std::uint64_t shape_dedup_coalesced_ = 0;
  std::int64_t shape_dedup_bytes_saved_ = 0;
  std::unordered_map<Key, Node, KeyHash> entries_;
  mutable std::list<Key> lru_;  // front = most recent
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Recorder* rec_ = nullptr;
  bool validate_ = false;
};

}  // namespace gpuddt::core
