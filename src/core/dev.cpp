#include "core/dev.h"

#include <stdexcept>

namespace gpuddt::core {

DevCursor::DevCursor(mpi::DatatypePtr dt, std::int64_t count,
                     std::int64_t unit_bytes)
    // Convert over the canonical program: structurally equal types then
    // compile to identical unit lists, which is what lets the DEV cache
    // key on the shape digest (dev_cache.h) rather than type identity.
    : cursor_(std::move(dt), count,
              mpi::BlockCursor::ProgramView::kCanonical),
      unit_bytes_(unit_bytes) {
  if (unit_bytes < kMinUnitBytes)
    throw std::invalid_argument("DevCursor: unit size below 256B warp floor");
}

std::size_t DevCursor::next_units(std::span<CudaDevDist> out) {
  std::size_t n = 0;
  mpi::Block b;
  while (n < out.size() && cursor_.next(unit_bytes_, &b)) {
    if (b.offset != last_end_) ++pieces_;  // new contiguous run begins
    last_end_ = b.offset + b.len;
    out[n].nc_disp = b.offset;
    out[n].pk_disp = packed_off_;
    out[n].length = b.len;
    packed_off_ += b.len;
    ++n;
  }
  return n;
}

std::vector<CudaDevDist> convert_all(const mpi::DatatypePtr& dt,
                                     std::int64_t count,
                                     std::int64_t unit_bytes) {
  DevCursor cur(dt, count, unit_bytes);
  std::vector<CudaDevDist> units;
  const std::int64_t total = cur.total_bytes();
  if (total > 0) units.reserve(static_cast<std::size_t>(total / unit_bytes + 16));
  CudaDevDist buf[256];
  for (;;) {
    const std::size_t n = cur.next_units(buf);
    if (n == 0) break;
    units.insert(units.end(), buf, buf + n);
  }
  return units;
}

}  // namespace gpuddt::core
