#include "rma/window.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/recorder.h"
#include "simgpu/staging.h"

namespace gpuddt::rma {

namespace {
// MPI requires element-wise atomicity for concurrent accumulates with the
// same op. The functional read-modify-write below is protected coarsely;
// virtual time is unaffected (the cost model already serializes nothing
// here, matching MPI's undefined ordering).
std::mutex g_accumulate_mu;

/// One-sided-op observability (docs/metrics.md `rma.*` family): call and
/// byte counters split contiguous/packed by the layouts on both sides and
/// by where the staging copy lives, plus one trace span per call. `end`
/// is the op's virtual completion (the epoch-horizon contribution), so
/// spans from back-to-back puts overlap in the timeline exactly as the
/// fence sees them.
void record_rma(mpi::Comm& comm, const char* op, vt::Time begin,
                vt::Time end, std::int64_t bytes, bool contiguous,
                bool device_staging, std::uint64_t flow = 0,
                std::uint64_t shape = 0) {
  obs::Recorder* rec = comm.process().config().recorder;
  if (rec == nullptr) return;
  const std::string prefix = std::string("rma.") + op;
  obs::count(rec, prefix + ".calls");
  obs::count(rec, prefix + ".bytes", bytes);
  if (bytes > 0) {
    obs::count(rec,
               contiguous ? "rma.bytes.contiguous" : "rma.bytes.packed",
               bytes);
    obs::count(rec,
               device_staging ? "rma.bytes.staged_device"
                              : "rma.bytes.staged_host",
               bytes);
  }
  obs::trace(rec,
             {op, "rma", begin, end, comm.rank(), bytes, comm.rank(), flow});
  // One-sided ops are single-participant flows: the origin drives both
  // halves, so its op span closes the flow for the latency engine.
  if (flow != 0 && rec->flowstats().enabled()) {
    rec->flowstats().complete(
        {flow, std::string("rma.") + op, shape, bytes, begin, end, 1});
  }
}
}  // namespace

using Dir = core::GpuDatatypeEngine::Dir;

Window::Window(mpi::Comm comm, void* base, std::int64_t bytes)
    : comm_(comm), coll_(comm) {
  core::EngineConfig ec;
  ec.recorder = comm_.process().config().recorder;
  ec.trace_pid = comm_.rank();
  engine_ =
      std::make_unique<core::GpuDatatypeEngine>(comm_.process().gpu(), ec);
  // Collective creation: exchange window bases and sizes.
  const int n = comm_.size();
  bases_.resize(static_cast<std::size_t>(n));
  sizes_.resize(static_cast<std::size_t>(n));
  struct Desc {
    std::uint64_t base;
    std::int64_t size;
  };
  std::vector<Desc> all(static_cast<std::size_t>(n));
  Desc mine{reinterpret_cast<std::uint64_t>(base), bytes};
  coll_.allgather(&mine, all.data(),
                  static_cast<std::int64_t>(sizeof(Desc)), mpi::kByte());
  for (int r = 0; r < n; ++r) {
    bases_[static_cast<std::size_t>(r)] =
        reinterpret_cast<std::byte*>(all[static_cast<std::size_t>(r)].base);
    sizes_[static_cast<std::size_t>(r)] =
        all[static_cast<std::size_t>(r)].size;
  }
}

void Window::fence() {
  // Remote completion: every rank's epoch horizon must have passed for
  // everyone before the epoch may close.
  const vt::Time t_begin = comm_.process().clock().now();
  std::int64_t mine = epoch_horizon_;
  std::int64_t global = 0;
  coll_.allreduce(&mine, &global, 1, mpi::kInt64(), mpi::ReduceOp::kMax);
  comm_.process().clock().wait_until(global);
  epoch_horizon_ = 0;
  record_rma(comm_, "fence", t_begin, comm_.process().clock().now(),
             /*bytes=*/0, /*contiguous=*/true, /*device_staging=*/false);
}

std::byte* Window::target_ptr(int target, std::int64_t disp,
                              std::int64_t bytes) const {
  if (target < 0 || target >= comm_.size())
    throw std::invalid_argument("Window: bad target rank");
  if (disp < 0 || disp + bytes > sizes_[static_cast<std::size_t>(target)])
    throw std::invalid_argument("Window: access outside the target window");
  return bases_[static_cast<std::size_t>(target)] + disp;
}

vt::Time Window::pack_to(const void* buf, std::int64_t count,
                         const mpi::DatatypePtr& dt, std::byte* out,
                         vt::Time dep, std::uint64_t flow_id) {
  mpi::Process& p = comm_.process();
  const std::int64_t total = dt->size() * count;
  if (p.runtime().machine().is_device_ptr(buf)) {
    auto op = engine_->start(Dir::kPack, dt, count, const_cast<void*>(buf));
    // Fragment flow ids (docs/tracing.md): both halves of one one-sided
    // op stamp the op-level request id its caller drew from the PML's
    // counter, so their engine spans join the same flow grammar as
    // point-to-point fragments - and the same logical flow as each other.
    std::int64_t frag = 0;
    vt::Time last = dep;
    while (!op->done()) {
      op->set_flow(mpi::frag_flow(p.rank(), flow_id, frag++));
      const auto r =
          engine_->process_some(*op, out + op->bytes_done(), total, dep);
      if (r.bytes == 0) break;
      last = r.ready;
    }
    engine_->finish(*op);
    return last;
  }
  const mpi::PackStats st = mpi::cpu_pack(
      dt, count, buf,
      std::span<std::byte>(out, static_cast<std::size_t>(total)));
  p.pml().charge_cpu_pack(st);
  return std::max(dep, p.clock().now());
}

vt::Time Window::unpack_from(const std::byte* in, void* buf,
                             std::int64_t count, const mpi::DatatypePtr& dt,
                             vt::Time dep, std::uint64_t flow_id) {
  mpi::Process& p = comm_.process();
  const std::int64_t total = dt->size() * count;
  if (p.runtime().machine().is_device_ptr(buf)) {
    auto op = engine_->start(Dir::kUnpack, dt, count, buf);
    std::int64_t frag = 0;
    vt::Time last = dep;
    while (!op->done()) {
      op->set_flow(mpi::frag_flow(p.rank(), flow_id, frag++));
      const auto r = engine_->process_some(
          *op, const_cast<std::byte*>(in) + op->bytes_done(), total, dep);
      if (r.bytes == 0) break;
      last = r.ready;
    }
    engine_->finish(*op);
    return last;
  }
  const mpi::PackStats st = mpi::cpu_unpack(
      dt, count,
      std::span<const std::byte>(in, static_cast<std::size_t>(total)), buf);
  p.pml().charge_cpu_pack(st);
  return std::max(dep, p.clock().now());
}

void Window::put(const void* origin, std::int64_t origin_count,
                 const mpi::DatatypePtr& origin_dt, int target,
                 std::int64_t target_disp, std::int64_t target_count,
                 const mpi::DatatypePtr& target_dt) {
  const std::int64_t total = origin_dt->size() * origin_count;
  if (total != target_dt->size() * target_count)
    throw std::invalid_argument("Window::put: size mismatch");
  if (total == 0) return;
  std::byte* tptr = target_ptr(
      target, target_disp,
      target_dt->true_lb() + target_dt->true_extent() +
          (target_count - 1) * target_dt->extent());
  mpi::Process& p = comm_.process();
  const vt::Time t_begin = p.clock().now();
  // Stage through a contiguous buffer on the origin's device (or host if
  // neither side is device-resident): pack, then scatter into the target
  // layout - both halves driven by the origin.
  const bool any_device = p.runtime().machine().is_device_ptr(origin) ||
                          p.runtime().machine().is_device_ptr(tptr);
  std::byte* staging;
  std::vector<std::byte> host_staging;
  if (any_device) {
    staging = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(total)));
  } else {
    host_staging.resize(static_cast<std::size_t>(total));
    staging = host_staging.data();
  }
  const std::uint64_t op_id = p.pml().allocate_id();
  const vt::Time packed = pack_to(origin, origin_count, origin_dt, staging,
                                  p.clock().now(), op_id);
  const vt::Time done =
      unpack_from(staging, tptr, target_count, target_dt, packed, op_id);
  epoch_horizon_ = std::max(epoch_horizon_, done);
  record_rma(comm_, "put", t_begin, done, total,
             origin_dt->is_contiguous(origin_count) &&
                 target_dt->is_contiguous(target_count),
             any_device, mpi::frag_flow(p.rank(), op_id, 0),
             target_dt->shape_digest());
  if (any_device) sg::Free(p.gpu(), staging);
}

void Window::get(void* origin, std::int64_t origin_count,
                 const mpi::DatatypePtr& origin_dt, int target,
                 std::int64_t target_disp, std::int64_t target_count,
                 const mpi::DatatypePtr& target_dt) {
  const std::int64_t total = origin_dt->size() * origin_count;
  if (total != target_dt->size() * target_count)
    throw std::invalid_argument("Window::get: size mismatch");
  if (total == 0) return;
  std::byte* tptr = target_ptr(
      target, target_disp,
      target_dt->true_lb() + target_dt->true_extent() +
          (target_count - 1) * target_dt->extent());
  mpi::Process& p = comm_.process();
  const vt::Time t_begin = p.clock().now();
  const bool any_device = p.runtime().machine().is_device_ptr(origin) ||
                          p.runtime().machine().is_device_ptr(tptr);
  std::byte* staging;
  std::vector<std::byte> host_staging;
  if (any_device) {
    staging = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(total)));
  } else {
    host_staging.resize(static_cast<std::size_t>(total));
    staging = host_staging.data();
  }
  const std::uint64_t op_id = p.pml().allocate_id();
  const vt::Time fetched = pack_to(tptr, target_count, target_dt, staging,
                                   p.clock().now(), op_id);
  const vt::Time done =
      unpack_from(staging, origin, origin_count, origin_dt, fetched, op_id);
  epoch_horizon_ = std::max(epoch_horizon_, done);
  p.clock().wait_until(done);  // a get is locally complete when it returns
  record_rma(comm_, "get", t_begin, done, total,
             origin_dt->is_contiguous(origin_count) &&
                 target_dt->is_contiguous(target_count),
             any_device, mpi::frag_flow(p.rank(), op_id, 0),
             target_dt->shape_digest());
  if (any_device) sg::Free(p.gpu(), staging);
}

void Window::accumulate(const void* origin, std::int64_t origin_count,
                        const mpi::DatatypePtr& origin_dt, int target,
                        std::int64_t target_disp, std::int64_t target_count,
                        const mpi::DatatypePtr& target_dt, mpi::ReduceOp op) {
  const std::int64_t total = origin_dt->size() * origin_count;
  if (total != target_dt->size() * target_count)
    throw std::invalid_argument("Window::accumulate: size mismatch");
  if (total == 0) return;
  const mpi::Signature& sig = origin_dt->signature();
  if (sig.runs.size() != 1 || sig.overflow_hash != 0)
    throw std::invalid_argument(
        "Window::accumulate: single-primitive datatypes only");
  std::byte* tptr = target_ptr(
      target, target_disp,
      target_dt->true_lb() + target_dt->true_extent() +
          (target_count - 1) * target_dt->extent());
  mpi::Process& p = comm_.process();
  const vt::Time t_begin = p.clock().now();

  // Read-modify-write on the packed representation, staged through host
  // memory (where the ALU work happens). The scratch vectors are plain
  // malloc'd host memory the engine reads and writes when either side is
  // device-resident; register them so the access checker sees those
  // ranges (simgpu/staging.h).
  std::vector<std::byte> ours(static_cast<std::size_t>(total));
  std::vector<std::byte> theirs(static_cast<std::size_t>(total));
  sg::ScopedStagingRegistration reg_ours(
      p.runtime().machine(), ours.data(), ours.size());
  sg::ScopedStagingRegistration reg_theirs(
      p.runtime().machine(), theirs.data(), theirs.size());
  const std::uint64_t op_id = p.pml().allocate_id();
  const vt::Time t1 = pack_to(origin, origin_count, origin_dt, ours.data(),
                              p.clock().now(), op_id);
  const vt::Time t2 = pack_to(tptr, target_count, target_dt, theirs.data(),
                              std::max(t1, p.clock().now()), op_id);
  // Element-wise combine (host ALU; ~4 GB/s like the collectives).
  std::lock_guard<std::mutex> lock(g_accumulate_mu);
  const mpi::Primitive prim = sig.runs[0].prim;
  switch (prim) {
    case mpi::Primitive::kInt32: {
      auto* a = reinterpret_cast<std::int32_t*>(theirs.data());
      const auto* b = reinterpret_cast<const std::int32_t*>(ours.data());
      for (std::int64_t i = 0; i < total / 4; ++i) {
        switch (op) {
          case mpi::ReduceOp::kSum: a[i] += b[i]; break;
          case mpi::ReduceOp::kProd: a[i] *= b[i]; break;
          case mpi::ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
          case mpi::ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
        }
      }
      break;
    }
    case mpi::Primitive::kDouble: {
      auto* a = reinterpret_cast<double*>(theirs.data());
      const auto* b = reinterpret_cast<const double*>(ours.data());
      for (std::int64_t i = 0; i < total / 8; ++i) {
        switch (op) {
          case mpi::ReduceOp::kSum: a[i] += b[i]; break;
          case mpi::ReduceOp::kProd: a[i] *= b[i]; break;
          case mpi::ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
          case mpi::ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
        }
      }
      break;
    }
    default:
      throw std::invalid_argument(
          "Window::accumulate: int32/double elements only");
  }
  p.clock().advance(vt::transfer_time(total, 4.0));
  const vt::Time done =
      unpack_from(theirs.data(), tptr, target_count, target_dt,
                  std::max(t2, p.clock().now()), op_id);
  epoch_horizon_ = std::max(epoch_horizon_, done);
  record_rma(comm_, "accumulate", t_begin, done, total,
             origin_dt->is_contiguous(origin_count) &&
                 target_dt->is_contiguous(target_count),
             /*device_staging=*/false, mpi::frag_flow(p.rank(), op_id, 0),
             target_dt->shape_digest());
}

}  // namespace gpuddt::rma
