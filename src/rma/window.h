// MPI-3 style one-sided communication (RMA windows).
//
// The second "different programming paradigm" port the paper's conclusion
// anticipates (alongside OpenSHMEM): fence-synchronized windows whose
// put/get/accumulate accept MPI *datatypes on both sides* - the origin
// description is packed and the target description unpacked by the GPU
// datatype engine when the respective buffer is device-resident, exactly
// like the two ends of a Section 4 transfer, but driven entirely by the
// origin process.
//
// Synchronization model: active-target fence epochs (MPI_Win_fence). All
// ranks call fence(); one-sided operations issued between two fences are
// complete - locally and remotely, in virtual time too - once the closing
// fence returns. Conflicting accesses to the same target bytes within one
// epoch are the caller's responsibility (as in MPI).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "mpi/coll.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"

namespace gpuddt::rma {

class Window {
 public:
  /// Collective over all ranks of `comm`: every rank exposes
  /// [base, base + bytes). Buffers may be host or device memory.
  Window(mpi::Comm comm, void* base, std::int64_t bytes);

  std::int64_t size_at(int rank) const { return sizes_.at(rank); }

  /// Close the current epoch and open the next one (MPI_Win_fence):
  /// collective; on return every one-sided op issued by any rank in the
  /// closed epoch is globally complete.
  void fence();

  /// One-sided put: `origin_count` elements of `origin_dt` at `origin`
  /// land at the target's window offset `target_disp` (bytes) laid out as
  /// (`target_dt`, `target_count`). Signatures must carry the same byte
  /// count.
  void put(const void* origin, std::int64_t origin_count,
           const mpi::DatatypePtr& origin_dt, int target,
           std::int64_t target_disp, std::int64_t target_count,
           const mpi::DatatypePtr& target_dt);

  /// One-sided get: the reverse direction.
  void get(void* origin, std::int64_t origin_count,
           const mpi::DatatypePtr& origin_dt, int target,
           std::int64_t target_disp, std::int64_t target_count,
           const mpi::DatatypePtr& target_dt);

  /// One-sided accumulate (MPI_Accumulate): combine the origin data into
  /// the target with `op`. Restricted to single-primitive datatypes, like
  /// the collectives' reductions.
  void accumulate(const void* origin, std::int64_t origin_count,
                  const mpi::DatatypePtr& origin_dt, int target,
                  std::int64_t target_disp, std::int64_t target_count,
                  const mpi::DatatypePtr& target_dt, mpi::ReduceOp op);

 private:
  /// Pack `count` elements of `dt` at `buf` into `out` (GPU engine for
  /// device memory, CPU engine otherwise). Returns data-ready time.
  /// `flow_id` is the op-level PML request id both halves stamp their
  /// engine spans with (frag_flow; the fragment index restarts per half,
  /// so one put/get/accumulate reads as one logical flow).
  vt::Time pack_to(const void* buf, std::int64_t count,
                   const mpi::DatatypePtr& dt, std::byte* out, vt::Time dep,
                   std::uint64_t flow_id);
  vt::Time unpack_from(const std::byte* in, void* buf, std::int64_t count,
                       const mpi::DatatypePtr& dt, vt::Time dep,
                       std::uint64_t flow_id);
  std::byte* target_ptr(int target, std::int64_t disp,
                        std::int64_t bytes) const;

  mpi::Comm comm_;
  std::vector<std::byte*> bases_;   // every rank's window base
  std::vector<std::int64_t> sizes_;
  std::unique_ptr<core::GpuDatatypeEngine> engine_;
  mpi::Collectives coll_;
  vt::Time epoch_horizon_ = 0;  // completion of this epoch's one-sided ops
};

}  // namespace gpuddt::rma
