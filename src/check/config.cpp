#include "check/config.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "obs/json.h"

namespace gpuddt::check {

namespace {

/// Stored-diagnostic cap: counting is unbounded, storage is not, so a
/// hazard storm cannot exhaust memory. The drop is visible in the report
/// (counts exceed the diagnostics array length).
constexpr std::size_t kMaxStored = 1024;
/// First N diagnostics are echoed to stderr for direct CI visibility.
constexpr std::int64_t kMaxEchoed = 50;

struct Sink {
  std::mutex mu;
  std::vector<Diagnostic> stored;
  std::int64_t hazards = 0;
  std::int64_t violations = 0;
  std::int64_t echoed = 0;
  std::int64_t ops = 0;
  std::int64_t ranges = 0;
  std::int64_t dropped = 0;
};

Sink& sink() {
  static Sink s;
  return s;
}

std::optional<bool>& forced() {
  static std::optional<bool> f;
  return f;
}

bool env_enabled(bool fallback) {
  const char* v = std::getenv("GPUDDT_CHECK");
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

void echo(const Diagnostic& d) {
  if (d.kind == "hazard") {
    std::fprintf(stderr,
                 "gpuddt-check: %s %s: %s\n"
                 "    a: %-14s queue=%-10s [%#zx,+%lld) window [%lld,%lld) %s\n"
                 "    b: %-14s queue=%-10s [%#zx,+%lld) window [%lld,%lld) %s\n",
                 d.kind.c_str(), d.type.c_str(), d.message.c_str(),
                 d.a.label.c_str(), d.a.queue.c_str(), d.a.ptr,
                 static_cast<long long>(d.a.len),
                 static_cast<long long>(d.a.start),
                 static_cast<long long>(d.a.finish),
                 d.a.write ? "write" : "read", d.b.label.c_str(),
                 d.b.queue.c_str(), d.b.ptr, static_cast<long long>(d.b.len),
                 static_cast<long long>(d.b.start),
                 static_cast<long long>(d.b.finish),
                 d.b.write ? "write" : "read");
  } else {
    std::fprintf(stderr, "gpuddt-check: %s %s: %s (unit %lld)\n",
                 d.kind.c_str(), d.type.c_str(), d.message.c_str(),
                 static_cast<long long>(d.unit_index));
  }
}

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_access(std::string& out, const char* key, const AccessDesc& a) {
  out += '"';
  out += key;
  out += "\":{\"label\":\"";
  out += obs::json::escape(a.label);
  out += "\",\"queue\":\"";
  out += obs::json::escape(a.queue);
  out += "\",\"ptr\":";
  append_int(out, static_cast<std::int64_t>(a.ptr));
  out += ",\"len\":";
  append_int(out, a.len);
  out += ",\"start\":";
  append_int(out, a.start);
  out += ",\"finish\":";
  append_int(out, a.finish);
  out += ",\"write\":";
  out += a.write ? "true" : "false";
  out += '}';
}

}  // namespace

bool default_enabled() {
#ifdef GPUDDT_CHECK_DEFAULT
  constexpr bool build_default = true;
#else
  constexpr bool build_default = false;
#endif
  const bool env = env_enabled(build_default);
  return forced().value_or(env);
}

bool enabled_for(int machine_check) {
  if (machine_check >= 0) return machine_check != 0;
  return default_enabled();
}

void set_forced(std::optional<bool> f) { forced() = f; }

void report(Diagnostic diag) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  (diag.kind == "hazard" ? s.hazards : s.violations) += 1;
  if (s.echoed < kMaxEchoed) {
    echo(diag);
    ++s.echoed;
  }
  if (s.stored.size() < kMaxStored) s.stored.push_back(std::move(diag));
}

std::vector<Diagnostic> diagnostics() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stored;
}

std::int64_t hazard_count() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.hazards;
}

std::int64_t violation_count() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.violations;
}

void clear_diagnostics() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.stored.clear();
  s.hazards = 0;
  s.violations = 0;
  s.echoed = 0;
  s.ops = 0;
  s.ranges = 0;
  s.dropped = 0;
}

void add_tracked(std::int64_t ops, std::int64_t ranges) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.ops += ops;
  s.ranges += ranges;
}

void add_dropped(std::int64_t records) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.dropped += records;
}

std::int64_t ops_tracked() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ops;
}

std::int64_t ranges_tracked() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ranges;
}

std::int64_t records_dropped() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dropped;
}

std::string report_json() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"gpuddt-check-v1\",\n  \"hazards\": ";
  append_int(out, s.hazards);
  out += ",\n  \"dev_violations\": ";
  append_int(out, s.violations);
  out += ",\n  \"ops_tracked\": ";
  append_int(out, s.ops);
  out += ",\n  \"ranges_tracked\": ";
  append_int(out, s.ranges);
  out += ",\n  \"records_dropped\": ";
  append_int(out, s.dropped);
  out += ",\n  \"diagnostics\": [";
  bool first = true;
  for (const auto& d : s.stored) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\":\"";
    out += obs::json::escape(d.kind);
    out += "\",\"type\":\"";
    out += obs::json::escape(d.type);
    out += "\",\"message\":\"";
    out += obs::json::escape(d.message);
    out += "\",\"device\":";
    append_int(out, d.device);
    if (d.kind == "hazard") {
      out += ',';
      append_access(out, "a", d.a);
      out += ',';
      append_access(out, "b", d.b);
    } else {
      out += ",\"unit_index\":";
      append_int(out, d.unit_index);
    }
    out += '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write_report(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << report_json();
  return static_cast<bool>(out);
}

}  // namespace gpuddt::check
