// Structured diagnostics emitted by the checking layer (docs/checking.md).
//
// Both passes - the stream hazard detector (access_tracker.h) and the DEV
// invariant checker (dev_invariants.h) - report findings as Diagnostic
// records into a process-global sink (config.h). Tests read them back
// programmatically; tools/check_report summarizes the JSON dump.
#pragma once

#include <cstdint>
#include <string>

#include "vtime/vclock.h"

namespace gpuddt::check {

/// One side of a hazard: which operation touched which bytes, when.
struct AccessDesc {
  std::string label;        // operation label ("memcpy_async", "pack_dev")
  std::string queue;        // stream name / pointer, or "host"
  std::uintptr_t ptr = 0;   // first byte of the conflicting overlap's range
  std::int64_t len = 0;     // bytes of that range
  vt::Time start = 0;       // guaranteed earliest start (virtual ns)
  vt::Time finish = 0;      // guaranteed finish (virtual ns)
  bool write = false;
};

struct Diagnostic {
  std::string kind;     // "hazard" | "dev_invariant"
  std::string type;     // "RAW"/"WAR"/"WAW", or the violated invariant
  std::string message;  // human-readable one-liner
  // Hazard specifics (kind == "hazard"); `a` happens-before-wise earlier.
  AccessDesc a;
  AccessDesc b;
  int device = -1;
  // DEV-invariant specifics (kind == "dev_invariant").
  std::int64_t unit_index = -1;
};

}  // namespace gpuddt::check
