// Enablement and the process-global diagnostic sink of the checking layer.
//
// Whether a Machine gets an access tracker attached resolves, in order:
//   1. MachineConfig::check (0/1) - explicit per-machine setting wins, so
//      tests can force checking on regardless of environment;
//   2. set_forced() - a process-wide override (the bench --check flag);
//   3. the GPUDDT_CHECK environment variable ("0"/"off"/"false" disable,
//      anything else enables);
//   4. the GPUDDT_CHECK build option (compile-time default, normally OFF).
//
// Diagnostics from every tracker and validator in the process land in one
// sink: counted without bound, stored up to a cap, echoed to stderr up to
// a smaller cap. report_json() serializes the sink (and the tracker
// aggregate counters) as a `gpuddt-check-v1` document for
// tools/check_report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/diagnostics.h"

namespace gpuddt::check {

/// The build/env/forced default, before any per-machine override.
bool default_enabled();

/// Resolve enablement for a machine whose config carries `machine_check`
/// (-1 inherit / 0 off / 1 on).
bool enabled_for(int machine_check);

/// Process-wide override between config and environment (bench --check).
void set_forced(std::optional<bool> forced);

// --- Diagnostic sink --------------------------------------------------------

/// Record a diagnostic: count it, store it (up to a cap) and echo it to
/// stderr (up to a smaller cap). Thread-safe.
void report(Diagnostic diag);

/// Stored diagnostics (capped copy; counts below are exact).
std::vector<Diagnostic> diagnostics();

/// Exact totals since process start / the last clear.
std::int64_t hazard_count();
std::int64_t violation_count();

/// Drop stored diagnostics and zero the totals (tests).
void clear_diagnostics();

// --- Tracker aggregate counters (all trackers in the process) ---------------

void add_tracked(std::int64_t ops, std::int64_t ranges);
void add_dropped(std::int64_t records);
std::int64_t ops_tracked();
std::int64_t ranges_tracked();
std::int64_t records_dropped();

// --- Report -----------------------------------------------------------------

/// Serialize the sink as a `gpuddt-check-v1` JSON document.
std::string report_json();

/// report_json() into `path`; returns false on I/O failure.
bool write_report(const std::string& path);

}  // namespace gpuddt::check
