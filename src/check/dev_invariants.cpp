#include "check/dev_invariants.h"

#include <algorithm>
#include <vector>

#include "check/config.h"

namespace gpuddt::check {

namespace {

[[noreturn]] void fail(const char* origin, const char* type,
                       std::int64_t unit_index, std::string message) {
  Diagnostic d;
  d.kind = "dev_invariant";
  d.type = type;
  d.unit_index = unit_index;
  d.message = std::string(origin) + ": " + message;
  std::string what = "gpuddt-check dev_invariant " + std::string(type) +
                     " at " + d.message;
  report(std::move(d));
  throw InvariantViolation(what);
}

std::string unit_str(const core::CudaDevDist& u) {
  return "{nc=" + std::to_string(u.nc_disp) +
         ", pk=" + std::to_string(u.pk_disp) +
         ", len=" + std::to_string(u.length) + "}";
}

/// Shared per-unit checks: length in (0, S] and nc side within bounds.
void check_units(std::span<const core::CudaDevDist> units,
                 const DevListBounds& b, const char* origin) {
  for (std::size_t i = 0; i < units.size(); ++i) {
    const auto& u = units[i];
    if (u.length <= 0 || u.length > b.unit_bytes) {
      fail(origin, "unit_length", static_cast<std::int64_t>(i),
           "unit " + unit_str(u) + " length outside (0, " +
               std::to_string(b.unit_bytes) + "]");
    }
    if (u.nc_disp < b.nc_lo || u.nc_disp + u.length > b.nc_hi) {
      fail(origin, "nc_bounds", static_cast<std::int64_t>(i),
           "unit " + unit_str(u) + " outside buffer bounds [" +
               std::to_string(b.nc_lo) + ", " + std::to_string(b.nc_hi) +
               ")");
    }
    if (u.pk_disp < 0 || u.pk_disp + u.length > b.total_bytes) {
      fail(origin, "pk_bounds", static_cast<std::int64_t>(i),
           "unit " + unit_str(u) + " packed side outside [0, " +
               std::to_string(b.total_bytes) + ")");
    }
  }
}

/// Packed-side overlap check on a sorted-by-pk copy; returns the sorted
/// order for further coverage checks.
std::vector<std::size_t> check_pk_disjoint(
    std::span<const core::CudaDevDist> units, const char* origin) {
  std::vector<std::size_t> order(units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
    return units[a].pk_disp < units[c].pk_disp;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto& prev = units[order[i - 1]];
    const auto& cur = units[order[i]];
    if (cur.pk_disp < prev.pk_disp + prev.length) {
      fail(origin, "pk_overlap", static_cast<std::int64_t>(order[i]),
           "pack destinations overlap: " + unit_str(prev) + " and " +
               unit_str(cur));
    }
  }
  return order;
}

}  // namespace

void validate_dev_list(std::span<const core::CudaDevDist> units,
                       const DevListBounds& b, const char* origin) {
  check_units(units, b, origin);
  const auto order = check_pk_disjoint(units, origin);
  // Disjoint packed units covering total_bytes in sum cover [0, total)
  // exactly iff they are also gap-free from 0.
  std::int64_t expect = 0;
  for (const std::size_t i : order) {
    if (units[i].pk_disp != expect) {
      fail(origin, "pk_gap", static_cast<std::int64_t>(i),
           "packed coverage gap: expected offset " + std::to_string(expect) +
               ", got " + unit_str(units[i]));
    }
    expect += units[i].length;
  }
  if (expect != b.total_bytes) {
    fail(origin, "pk_coverage", -1,
         "packed bytes " + std::to_string(expect) + " != datatype size " +
             std::to_string(b.total_bytes));
  }
  if (!units.empty()) {
    // A complete list must touch both datatype bounds: that is what makes
    // the unpack coverage equal the type's true extent footprint.
    std::int64_t nc_min = units[0].nc_disp;
    std::int64_t nc_max = units[0].nc_disp + units[0].length;
    for (const auto& u : units) {
      nc_min = std::min(nc_min, u.nc_disp);
      nc_max = std::max(nc_max, u.nc_disp + u.length);
    }
    if (nc_min != b.nc_lo || nc_max != b.nc_hi) {
      fail(origin, "nc_coverage", -1,
           "non-contiguous span [" + std::to_string(nc_min) + ", " +
               std::to_string(nc_max) + ") != true extent [" +
               std::to_string(b.nc_lo) + ", " + std::to_string(b.nc_hi) +
               ")");
    }
  }
}

void validate_dev_window(std::span<const core::CudaDevDist> units,
                         const DevListBounds& b, std::int64_t pk_expected,
                         bool contiguous, const char* origin) {
  check_units(units, b, origin);
  if (contiguous) {
    std::int64_t expect = pk_expected;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (units[i].pk_disp != expect) {
        fail(origin, "pk_not_contiguous", static_cast<std::int64_t>(i),
             "window pack destination expected " + std::to_string(expect) +
                 ", got " + unit_str(units[i]));
      }
      expect += units[i].length;
    }
  } else {
    check_pk_disjoint(units, origin);
  }
}

}  // namespace gpuddt::check
