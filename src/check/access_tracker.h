// Stream hazard detector - the checking layer's first pass.
//
// Happens-before model: every tracked operation carries a *guaranteed*
// virtual-time window [start, finish). `start` is the earliest start its
// ordering constructs establish - the max of the issuing stream's tail,
// the host clock at enqueue and any explicit timestamp dependency (event
// waits, RDMA `earliest` bounds) - and `finish` is what the stream tail
// is raised to. An ordering edge (same stream, StreamWaitEvent, a
// completion timestamp threaded through the protocol) forces the later
// op's start to at least the earlier op's finish, so *ordered* operations
// have disjoint windows by construction. Two operations whose windows
// overlap are concurrent as far as the program's synchronization goes;
// if their byte ranges also intersect and at least one writes, that is a
// RAW/WAR/WAW hazard (classified by which op's guaranteed start is
// earlier).
//
// Known approximations (see docs/checking.md): an op that happens to be
// enqueued after another finished - with no ordering construct forcing it
// - is treated as ordered (host-clock coincidence can mask a latent
// race), and accesses to unregistered host memory are not tracked.
//
// History is keyed per allocation (device arena block or registered host
// block), pruned on free/reset, and capped per buffer; dropped records
// are counted, never silently discarded.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "obs/recorder.h"
#include "simgpu/access.h"

namespace gpuddt::sg {
class Machine;
}

namespace gpuddt::check {

class AccessTracker : public sg::AccessObserver {
 public:
  explicit AccessTracker(sg::Machine& machine);

  /// Mirror per-op / hazard counters into `rec` (nullable).
  void set_recorder(obs::Recorder* rec);

  void on_op(const sg::OpInfo& info,
             std::span<const sg::MemRange> ranges) override;
  void on_release(const void* ptr, std::size_t bytes) override;
  void on_reset() override;

  std::int64_t ops() const;
  std::int64_t hazards() const;

 private:
  struct Record {
    std::uintptr_t lo = 0;  // byte range [lo, hi)
    std::uintptr_t hi = 0;
    vt::Time start = 0;  // guaranteed window [start, finish)
    vt::Time finish = 0;
    std::uint64_t op_seq = 0;
    const char* label = nullptr;
    const void* queue = nullptr;
    const char* queue_name = nullptr;
    bool write = false;
  };
  /// Per-allocation history. `max_finish[i]` is the running maximum of
  /// recs[0..i].finish, so a binary search finds the first record whose
  /// suffix could still overlap a new op's window - ordered (sequential)
  /// workloads scan nothing.
  struct Buffer {
    std::vector<Record> recs;
    std::vector<vt::Time> max_finish;
    int device = -1;
  };

  void scan_and_insert(Buffer& buf, const Record& r);
  void compact(Buffer& buf);

  sg::Machine& machine_;
  mutable std::mutex mu_;
  std::map<std::uintptr_t, Buffer> buffers_;  // key: allocation base
  obs::Recorder* rec_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::int64_t ops_ = 0;
  std::int64_t hazards_ = 0;
  std::vector<sg::MemRange> scratch_;  // normalized ranges of one op
};

/// The tracker attached to a machine by make_default_observer, or null.
AccessTracker* tracker_of(sg::Machine& machine);

/// Convenience: point the machine's tracker (if any) at a recorder.
void set_recorder(sg::Machine& machine, obs::Recorder* rec);

}  // namespace gpuddt::check
