#include "check/access_tracker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "check/config.h"
#include "simgpu/machine.h"

namespace gpuddt::check {

namespace {

/// Per-buffer history cap. Beyond it the oldest half is dropped (and
/// counted): a record that old is almost always final-ordered anyway, and
/// the cap bounds both memory and the per-op scan.
constexpr std::size_t kMaxRecordsPerBuffer = 8192;

std::string queue_string(const void* queue, const char* name) {
  if (name != nullptr) return name;
  if (queue == nullptr) return "host";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%p", queue);
  return buf;
}

AccessDesc describe(const char* label, const void* queue,
                    const char* queue_name, std::uintptr_t lo,
                    std::uintptr_t hi, vt::Time start, vt::Time finish,
                    bool write) {
  AccessDesc d;
  d.label = label != nullptr ? label : "op";
  d.queue = queue_string(queue, queue_name);
  d.ptr = lo;
  d.len = static_cast<std::int64_t>(hi - lo);
  d.start = start;
  d.finish = finish;
  d.write = write;
  return d;
}

}  // namespace

AccessTracker::AccessTracker(sg::Machine& machine) : machine_(machine) {}

void AccessTracker::set_recorder(obs::Recorder* rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec_ = rec;
  if (rec_ == nullptr) return;
  // Pre-register so a checked run's dump always carries the counters.
  rec_->metrics().counter("check.ops");
  rec_->metrics().counter("check.ranges");
  rec_->metrics().counter("check.hazards");
  rec_->metrics().counter("check.history.dropped");
}

std::int64_t AccessTracker::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

std::int64_t AccessTracker::hazards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hazards_;
}

void AccessTracker::scan_and_insert(Buffer& buf, const Record& r) {
  // Records whose running-max finish is <= r.start cannot overlap r's
  // window; max_finish is non-decreasing, so binary-search the first
  // candidate. Fully ordered (sequential) traffic scans nothing here.
  const auto it = std::upper_bound(buf.max_finish.begin(),
                                   buf.max_finish.end(), r.start);
  for (std::size_t i =
           static_cast<std::size_t>(it - buf.max_finish.begin());
       i < buf.recs.size(); ++i) {
    const Record& o = buf.recs[i];
    if (o.op_seq == r.op_seq) continue;  // ranges of the same operation
    if (!(o.write || r.write)) continue;
    if (!(o.start < r.finish && r.start < o.finish)) continue;  // ordered
    if (!(std::max(o.lo, r.lo) < std::min(o.hi, r.hi))) continue;
    ++hazards_;
    obs::count(rec_, "check.hazards");
    // `o` predates `r` in program order; classify by guaranteed start.
    const bool o_first = o.start <= r.start;
    const Record& first = o_first ? o : r;
    const Record& second = o_first ? r : o;
    Diagnostic d;
    d.kind = "hazard";
    d.type = first.write ? (second.write ? "WAW" : "RAW") : "WAR";
    d.device = buf.device;
    d.a = describe(first.label, first.queue, first.queue_name, first.lo,
                   first.hi, first.start, first.finish, first.write);
    d.b = describe(second.label, second.queue, second.queue_name, second.lo,
                   second.hi, second.start, second.finish, second.write);
    d.message = "unordered overlapping accesses (device " +
                std::to_string(buf.device) + "): " + d.a.label + " [" +
                d.a.queue + "] vs " + d.b.label + " [" + d.b.queue + "]";
    report(std::move(d));
  }
  if (buf.recs.size() >= kMaxRecordsPerBuffer) compact(buf);
  buf.recs.push_back(r);
  buf.max_finish.push_back(buf.max_finish.empty()
                               ? r.finish
                               : std::max(buf.max_finish.back(), r.finish));
}

void AccessTracker::compact(Buffer& buf) {
  const std::size_t drop = buf.recs.size() / 2;
  add_dropped(static_cast<std::int64_t>(drop));
  obs::count(rec_, "check.history.dropped", static_cast<std::int64_t>(drop));
  buf.recs.erase(buf.recs.begin(),
                 buf.recs.begin() + static_cast<std::ptrdiff_t>(drop));
  buf.max_finish.clear();
  vt::Time running = 0;
  for (const Record& r : buf.recs) {
    running = std::max(running, r.finish);
    buf.max_finish.push_back(running);
  }
}

void AccessTracker::on_op(const sg::OpInfo& info,
                          std::span<const sg::MemRange> ranges) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ops_;
  obs::count(rec_, "check.ops");
  // Normalize: drop empty ranges, then merge touching same-kind ranges so
  // a many-unit kernel costs rows, not units.
  scratch_.assign(ranges.begin(), ranges.end());
  std::erase_if(scratch_, [](const sg::MemRange& r) {
    return r.ptr == nullptr || r.len <= 0;
  });
  std::sort(scratch_.begin(), scratch_.end(),
            [](const sg::MemRange& a, const sg::MemRange& b) {
              if (a.write != b.write) return a.write < b.write;
              return a.ptr < b.ptr;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    const auto* lo = static_cast<const std::byte*>(scratch_[i].ptr);
    if (out > 0 && scratch_[out - 1].write == scratch_[i].write) {
      auto& prev = scratch_[out - 1];
      const auto* prev_hi =
          static_cast<const std::byte*>(prev.ptr) + prev.len;
      if (lo <= prev_hi) {
        prev.len = std::max(prev.len,
                            (lo - static_cast<const std::byte*>(prev.ptr)) +
                                scratch_[i].len);
        continue;
      }
    }
    scratch_[out++] = scratch_[i];
  }
  scratch_.resize(out);

  const std::uint64_t seq = next_seq_++;
  std::int64_t tracked = 0;
  for (const sg::MemRange& mr : scratch_) {
    // Key the range by its containing allocation; unregistered host
    // memory (plain std::vector staging and the like) is not tracked.
    const sg::PtrAttributes attr = machine_.query(mr.ptr);
    const void* base = nullptr;
    int device = -1;
    if (attr.space == sg::MemorySpace::kDevice) {
      base = machine_.device(attr.device).arena().allocation_span(mr.ptr).first;
      device = attr.device;
    } else if (attr.space != sg::MemorySpace::kUnregisteredHost) {
      base = machine_.host_block_span(mr.ptr).first;
    } else {
      continue;
    }
    if (base == nullptr) continue;
    Record r;
    r.lo = reinterpret_cast<std::uintptr_t>(mr.ptr);
    r.hi = r.lo + static_cast<std::uintptr_t>(mr.len);
    r.start = info.start;
    r.finish = std::max(info.finish, info.start + 1);  // half-open, non-empty
    r.op_seq = seq;
    r.label = info.label;
    r.queue = info.queue;
    r.queue_name = info.queue_name;
    r.write = mr.write;
    Buffer& buf = buffers_[reinterpret_cast<std::uintptr_t>(base)];
    buf.device = device;
    if (std::getenv("GPUDDT_CHECK_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[check] op=%s base=%p lo=%#llx hi=%#llx start=%lld "
                   "finish=%lld write=%d seq=%llu dev=%d\n",
                   info.label != nullptr ? info.label : "?", base,
                   static_cast<unsigned long long>(r.lo),
                   static_cast<unsigned long long>(r.hi),
                   static_cast<long long>(r.start),
                   static_cast<long long>(r.finish), r.write ? 1 : 0,
                   static_cast<unsigned long long>(r.op_seq), device);
    }
    scan_and_insert(buf, r);
    ++tracked;
  }
  obs::count(rec_, "check.ranges", tracked);
  add_tracked(1, tracked);
}

void AccessTracker::on_release(const void* ptr, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto lo = reinterpret_cast<std::uintptr_t>(ptr);
  buffers_.erase(buffers_.lower_bound(lo), buffers_.lower_bound(lo + bytes));
}

void AccessTracker::on_reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
}

AccessTracker* tracker_of(sg::Machine& machine) {
  return dynamic_cast<AccessTracker*>(machine.observer());
}

void set_recorder(sg::Machine& machine, obs::Recorder* rec) {
  if (AccessTracker* t = tracker_of(machine)) t->set_recorder(rec);
}

}  // namespace gpuddt::check

namespace gpuddt::sg {

std::unique_ptr<AccessObserver> make_default_observer(Machine& machine) {
  if (!check::enabled_for(machine.config().check)) return nullptr;
  return std::make_unique<check::AccessTracker>(machine);
}

}  // namespace gpuddt::sg
