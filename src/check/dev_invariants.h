// DEV invariant checker - the checking layer's second pass.
//
// Validates converted CUDA DEV unit lists at the engine boundary, before
// descriptors reach a kernel or the cache:
//   * every unit has 0 < length <= S (the work-unit size);
//   * every unit's non-contiguous side lies within the datatype's bounds
//     ([true_lb, true_lb + (count-1)*extent + true_extent) relative to the
//     user buffer);
//   * pack destinations are contiguous (launch windows) or at least
//     pairwise non-overlapping (residue-split windows);
//   * a full list's packed side exactly covers [0, size*count) - the
//     unpack of such a list writes each packed byte's target once, so
//     coverage equals the datatype's true extent footprint.
//
// Violations are reported as structured diagnostics (config.h) and then
// thrown as InvariantViolation: an invalid descriptor list must never
// launch.
//
// The API takes plain numeric bounds plus the CudaDevDist span so this
// library needs no mpi/ symbols; call sites derive DevListBounds from
// their Datatype.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "core/dev.h"

namespace gpuddt::check {

class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Numeric bounds a DEV list is validated against. For a datatype dt
/// packed `count` times with unit size S:
///   nc_lo = dt.true_lb(), nc_hi = dt.true_lb() + (count-1)*dt.extent()
///   + dt.true_extent(), total_bytes = dt.size()*count, unit_bytes = S.
struct DevListBounds {
  std::int64_t nc_lo = 0;
  std::int64_t nc_hi = 0;
  std::int64_t total_bytes = 0;
  std::int64_t unit_bytes = 0;
};

/// Validate a complete converted list (cache insert / prefetch): unit
/// lengths and bounds, packed side exactly covering [0, total_bytes)
/// with no gaps or overlaps, and the non-contiguous span touching both
/// datatype bounds. `origin` names the call site in diagnostics.
void validate_dev_list(std::span<const core::CudaDevDist> units,
                       const DevListBounds& b, const char* origin);

/// Validate one launch window (budget-trimmed units). `pk_expected` is
/// the packed offset the window must start at; with `contiguous` the pack
/// destinations must be exactly consecutive, otherwise (residue-split
/// windows, which reorder units) merely pairwise non-overlapping.
void validate_dev_window(std::span<const core::CudaDevDist> units,
                         const DevListBounds& b, std::int64_t pk_expected,
                         bool contiguous, const char* origin);

}  // namespace gpuddt::check
