#include "obs/canon.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpuddt::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[48];
  // Counters and histogram fields are int64 at the source; print them
  // back as integers so the canonical text matches the exporter's.
  // 2^53 bounds exact integer representation in a double.
  if (std::nearbyint(v) == v && std::fabs(v) < 9007199254740992.0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void write_value(std::string& out, const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kNull:
      out += "null";
      return;
    case json::Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case json::Value::Kind::kNumber:
      append_number(out, v.as_double());
      return;
    case json::Value::Kind::kString:
      out += '"';
      out += json::escape(v.as_string());
      out += '"';
      return;
    case json::Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const json::Value& e : v.as_array()) {
        if (!first) out += ",";
        first = false;
        write_value(out, e);
      }
      out += ']';
      return;
    }
    case json::Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, e] : v.as_object()) {
        if (!first) out += ",";
        first = false;
        out += '"';
        out += json::escape(key);
        out += "\":";
        write_value(out, e);
      }
      out += '}';
      return;
    }
  }
}

/// One "name": value line per metric keeps mismatch reports (and text
/// diffs of checked-in baselines) readable.
/// Metrics produced by the optional access checker, not by the simulated
/// program. GPUDDT_CHECK builds (ci.sh stage 2) attach the checker to
/// every machine, so keeping these would make the canonical text depend
/// on the build configuration instead of on program behavior.
bool instrumentation_metric(const std::string& key) {
  // verify.prover_ns is wall-clock prover time (src/verify/hook.cpp) -
  // real host nanoseconds, never deterministic across runs. The other
  // verify.* counters are pure counts and stay canonical. sim.wall_ns
  // and sim.vns_per_wall_s (bench_sim_throughput) are likewise real
  // host time; the rest of the sim.* family (dispatches, wakeups,
  // yields, virtual_ns) is deterministic and stays canonical.
  return key.rfind("check.", 0) == 0 || key == "verify.prover_ns" ||
         key == "sim.wall_ns" || key == "sim.vns_per_wall_s";
}

void write_section(std::string& out, const char* name,
                   const json::Object& section) {
  out += "  \"";
  out += name;
  out += "\": {";
  bool first = true;
  for (const auto& [key, v] : section) {
    if (instrumentation_metric(key)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(key) + "\": ";
    write_value(out, v);
  }
  out += first ? "}" : "\n  }";
}

}  // namespace

std::string canonical_metrics(const json::Value& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "gpuddt-metrics-v1") {
    throw std::runtime_error(
        "canonical_metrics: not a gpuddt-metrics-v1 dump");
  }
  if (!doc.contains("counters") || !doc.contains("histograms")) {
    throw std::runtime_error(
        "canonical_metrics: dump lacks counters/histograms sections");
  }
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"gpuddt-metrics-v1\",\n";
  write_section(out, "counters", doc.at("counters").as_object());
  out += ",\n";
  write_section(out, "histograms", doc.at("histograms").as_object());
  out += "\n}\n";
  return out;
}

std::string canonical_latency(const json::Value& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "gpuddt-latency-v1") {
    throw std::runtime_error(
        "canonical_latency: not a gpuddt-latency-v1 report");
  }
  if (!doc.contains("flowstats") || !doc.contains("classes")) {
    throw std::runtime_error(
        "canonical_latency: report lacks flowstats/classes sections");
  }
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"gpuddt-latency-v1\",\n";
  write_section(out, "flowstats", doc.at("flowstats").as_object());
  out += ",\n";
  write_section(out, "classes", doc.at("classes").as_object());
  out += "\n}\n";
  return out;
}

std::string canonical_report(const json::Value& doc) {
  if (doc.is_object() && doc.contains("schema") &&
      doc.at("schema").is_string() &&
      doc.at("schema").as_string() == "gpuddt-latency-v1") {
    return canonical_latency(doc);
  }
  return canonical_metrics(doc);
}

}  // namespace gpuddt::obs
