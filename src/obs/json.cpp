#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace gpuddt::obs::json {

const Value& Value::at(const std::string& key) const {
  if (!is_object()) throw std::runtime_error("json: at() on non-object");
  auto it = obj_->find(key);
  if (it == obj_->end())
    throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_->count(key) > 0;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode (metrics dumps only emit ASCII; be lenient).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{}) fail("bad number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace gpuddt::obs::json
