#include "obs/recorder.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace gpuddt::obs {

namespace {

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string Recorder::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"gpuddt-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics_.counters_snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": ";
    append_int(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : metrics_.histograms_snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(name) + "\": {\"count\": ";
    append_int(out, h.count);
    out += ", \"sum\": ";
    append_int(out, h.sum);
    out += ", \"min\": ";
    append_int(out, h.min);
    out += ", \"max\": ";
    append_int(out, h.max);
    out += ", \"mean\": ";
    append_double(out, h.mean());
    out += ", \"p50\": ";
    append_int(out, h.quantile(0.5));
    out += ", \"p99\": ";
    append_int(out, h.quantile(0.99));
    out += ", \"buckets\": [";
    // Trailing zero buckets carry no information; trim them.
    std::size_t last = Histogram::kBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) {
      if (i > 0) out += ", ";
      append_int(out, h.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"trace\": {\"dropped\": ";
  append_int(out, trace_.dropped());
  out += ", \"events\": [";
  first = true;
  for (const auto& ev : trace_.snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json::escape(ev.name) + "\", \"cat\": \"" +
           json::escape(ev.cat) + "\", \"begin\": ";
    append_int(out, ev.begin);
    out += ", \"end\": ";
    append_int(out, ev.end);
    out += ", \"tid\": ";
    append_int(out, ev.tid);
    out += ", \"pid\": ";
    append_int(out, ev.pid);
    out += ", \"arg0\": ";
    append_int(out, ev.arg0);
    if (ev.flow != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ", \"flow\": %" PRIu64, ev.flow);
      out += buf;
    }
    out += "}";
  }
  out += first ? "]}\n}\n" : "\n  ]}\n}\n";
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool Recorder::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

bool Recorder::write_chrome_json(const std::string& path) const {
  return write_file(path, to_chrome_json());
}

bool Recorder::write_latency_json(const std::string& path) const {
  return write_file(path, latency_json());
}

Recorder& default_recorder() {
  static Recorder rec;
  return rec;
}

}  // namespace gpuddt::obs
