// Canonical serialization of gpuddt-metrics-v1 dumps.
//
// Two dumps of the same run must compare byte-for-byte, so the
// determinism harness (tools/determinism_check) and the baseline gate
// (metrics_diff --gate --baseline) both reduce dumps to one canonical
// form before comparing:
//
//   - only the `schema`, `counters` and `histograms` sections survive;
//     the `trace` section is diagnostic payload (event capture is bounded
//     and --trace is opt-in), not a gated metric, and is dropped;
//   - `check.*` metrics are dropped: they come from the optional access
//     checker (GPUDDT_CHECK / --check), so keeping them would make the
//     canonical text depend on the build configuration;
//   - object keys are sorted (json::Object is a std::map, so parsing
//     alone establishes this);
//   - numbers print as integers whenever they are exactly representable
//     as one, and as max-precision doubles ("%.17g") otherwise, so the
//     text never depends on who serialized the value first.
//
// docs/determinism.md describes the rules and how the baselines under
// bench/baselines/ are regenerated.
#pragma once

#include <string>

#include "obs/json.h"

namespace gpuddt::obs {

/// Canonical text of a parsed gpuddt-metrics-v1 dump. Throws
/// std::runtime_error when `doc` lacks the schema marker or either
/// metrics section.
std::string canonical_metrics(const json::Value& doc);

/// Canonical text of a parsed gpuddt-latency-v1 report (obs/flowstats.h,
/// docs/latency.md): fixed section order (schema, flowstats, classes),
/// sorted keys inside each section, the same number-printing rules as
/// canonical_metrics. FlowStats::to_json() emits exactly this form, so
/// serialize -> parse -> canonicalize is byte-idempotent. Throws
/// std::runtime_error when `doc` is not a latency report.
std::string canonical_latency(const json::Value& doc);

/// Schema-dispatching canonicalizer: gpuddt-latency-v1 documents go
/// through canonical_latency, everything else through canonical_metrics
/// (which rejects unknown schemas). The determinism harness and the
/// baseline gate use this so metrics dumps and latency reports share one
/// --gate / --canon path.
std::string canonical_report(const json::Value& doc);

}  // namespace gpuddt::obs
