// Canonical serialization of gpuddt-metrics-v1 dumps.
//
// Two dumps of the same run must compare byte-for-byte, so the
// determinism harness (tools/determinism_check) and the baseline gate
// (metrics_diff --gate --baseline) both reduce dumps to one canonical
// form before comparing:
//
//   - only the `schema`, `counters` and `histograms` sections survive;
//     the `trace` section is diagnostic payload (event capture is bounded
//     and --trace is opt-in), not a gated metric, and is dropped;
//   - `check.*` metrics are dropped: they come from the optional access
//     checker (GPUDDT_CHECK / --check), so keeping them would make the
//     canonical text depend on the build configuration;
//   - object keys are sorted (json::Object is a std::map, so parsing
//     alone establishes this);
//   - numbers print as integers whenever they are exactly representable
//     as one, and as max-precision doubles ("%.17g") otherwise, so the
//     text never depends on who serialized the value first.
//
// docs/determinism.md describes the rules and how the baselines under
// bench/baselines/ are regenerated.
#pragma once

#include <string>

#include "obs/json.h"

namespace gpuddt::obs {

/// Canonical text of a parsed gpuddt-metrics-v1 dump. Throws
/// std::runtime_error when `doc` lacks the schema marker or either
/// metrics section.
std::string canonical_metrics(const json::Value& doc);

}  // namespace gpuddt::obs
