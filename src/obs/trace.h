// Trace events on the virtual clock.
//
// The observability layer's qualitative half: when tracing is enabled,
// instrumented stages (DEV conversion chunks, descriptor uploads, kernel
// launches, pipeline fragments) append one interval event each, stamped
// with virtual begin/end times. Because every producer already carries a
// virtual clock, the collected events replay as an exact timeline of one
// pack op or one pipelined transfer - the same evidence Figure 5 of the
// paper sketches by hand.
//
// Disabled tracing is a single relaxed atomic load per call site; the
// buffer is bounded so runaway benchmarks cannot exhaust memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpuddt::obs {

struct TraceEvent {
  std::string name;       // stage ("convert", "kernel", "frag", ...)
  std::string cat;        // subsystem ("engine", "pml", ...)
  std::int64_t begin = 0; // virtual ns
  std::int64_t end = 0;   // virtual ns
  std::int32_t tid = -1;  // rank (pml events) or device (engine events)
  std::int64_t arg0 = 0;  // stage-specific (bytes, unit count, frag index)
  std::int32_t pid = -1;  // owning rank when known (-1: fall back to tid)
  std::uint64_t flow = 0; // fragment flow id (0: not part of a flow)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Append one event; no-op when disabled or full. `dropped()` reports
  /// how many events the cap swallowed, so a truncated trace is never
  /// mistaken for a complete one.
  void record(TraceEvent ev);

  std::vector<TraceEvent> snapshot() const;
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

 private:
  const std::size_t max_events_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Serialize trace events as a Chrome Trace Event Format JSON array
/// (docs/tracing.md) that loads directly in chrome://tracing or Perfetto:
/// one `ph:"X"` complete event per TraceEvent with `ts`/`dur` in
/// microseconds of virtual time (fractional, so the nanosecond clock is
/// preserved), the owning rank as `pid`, and protocol stages (conv,
/// H2D desc, kernel, wire, RDMA GET, unpack, ...) as named `tid` rows.
/// Events are sorted by begin time, so `ts` is monotone non-decreasing.
/// When `dropped > 0` a final instant event flags the truncation.
///
/// Events carrying the same non-zero `flow` id form one fragment flow:
/// each gets `args.flow`, and the chain is tied together with Chrome
/// flow events (`ph:"s"` on the first span, `ph:"t"` on middle spans,
/// `ph:"f"` with `bp:"e"` on the last), so Perfetto draws dependency
/// arrows conv -> H2D desc -> kernel -> wire/RDMA GET -> unpack across
/// ranks. Flows with a single member emit no flow events.
std::string chrome_trace_json(std::vector<TraceEvent> events,
                              std::int64_t dropped);

/// The named timeline row an event renders on in the chrome export
/// ("conv", "H2D desc", "kernel", "wire", "RDMA GET", "unpack", or a
/// subsystem fallback). Exposed for tools that aggregate by stage.
std::string stage_row(const TraceEvent& ev);

/// Human-readable per-(rank, stage-row) utilization table over a trace
/// snapshot: busy virtual ns, % of the trace's end-to-end span, and
/// event count, sorted by rank then pipeline-row order. Returns "" when
/// there are no events. Backs the bench binaries' `--profile` flag.
std::string stage_profile_table(const std::vector<TraceEvent>& events);

}  // namespace gpuddt::obs
