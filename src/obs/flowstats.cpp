#include "obs/flowstats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "obs/canon.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace gpuddt::obs {

namespace {

// Rows as stage_row() spells them (trace.h) vs. the short identifiers the
// latency report keys stages by (docs/latency.md).
constexpr std::array<const char*, FlowStats::kStages> kRowNames = {
    "conv", "H2D desc", "kernel", "wire", "RDMA GET", "unpack", "other"};
constexpr std::array<const char*, FlowStats::kStages> kShortNames = {
    "conv", "desc", "kernel", "wire", "rdma", "unpack", "other"};

int stage_index(const TraceEvent& ev) {
  const std::string row = stage_row(ev);
  for (int i = 0; i + 1 < FlowStats::kStages; ++i) {
    if (row == kRowNames[static_cast<std::size_t>(i)]) return i;
  }
  return FlowStats::kStages - 1;
}

// All fragments of one rendezvous send share frag_flow's upper 44 bits
// (rank, send id); collective flows live in the reserved all-ones rank
// slot and are already one id per operation (src/mpi/pml.h).
std::uint64_t logical_key(std::uint64_t flow) {
  if ((flow >> 40) == 0x1FFFull) return flow;
  return flow & ~0xFFFFFull;
}

// Same log2 rule as the histogram buckets (obs/metrics.cpp): bucket i
// holds values in [2^(i-1), 2^i), bucket 0 holds zeros.
std::size_t size_bucket(std::int64_t v) {
  if (v <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
}

std::int64_t bucket_upper_bound(std::int64_t v) {
  const std::size_t b = size_bucket(v);
  if (b == 0) return 0;
  if (b >= 63) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << b) - 1;
}

std::string class_key(const std::string& cls, std::uint64_t shape,
                      std::int64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%016llx/b%02zu",
                static_cast<unsigned long long>(shape), size_bucket(bytes));
  return cls + buf;
}

std::int64_t value_at_rank(const std::map<std::int64_t, std::int64_t>& values,
                           std::int64_t rank) {
  std::int64_t seen = 0;
  for (const auto& [v, c] : values) {
    seen += c;
    if (seen >= rank) return v;
  }
  return values.empty() ? 0 : values.rbegin()->first;
}

}  // namespace

const char* FlowStats::stage_name(int stage) {
  if (stage < 0 || stage >= kStages) return "none";
  return kShortNames[static_cast<std::size_t>(stage)];
}

void FlowStats::bump_locked(const char* name, std::int64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name).add(delta);
}

void FlowStats::retire_key_locked(std::uint64_t key) {
  if (completed_keys_.insert(key).second) {
    completed_fifo_.push_back(key);
    if (completed_fifo_.size() > kMaxCompletedKeys) {
      completed_keys_.erase(completed_fifo_.front());
      completed_fifo_.pop_front();
    }
  }
}

void FlowStats::on_span(const TraceEvent& ev) {
  if (!enabled() || ev.flow == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = logical_key(ev.flow);
  if (completed_keys_.count(key) != 0) {
    ++late_spans_;
    bump_locked("flowstats.late_spans");
    return;
  }
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= kMaxPending) {
      ++dropped_;
      bump_locked("flowstats.dropped");
      return;
    }
    it = pending_.emplace(key, Pending{}).first;
    it->second.min_begin = std::numeric_limits<std::int64_t>::max();
    it->second.max_end = std::numeric_limits<std::int64_t>::min();
  }
  Pending& p = it->second;
  const std::int64_t end = std::max(ev.begin, ev.end);
  p.min_begin = std::min(p.min_begin, ev.begin);
  p.max_end = std::max(p.max_end, end);
  auto& ivals = p.stages[static_cast<std::size_t>(stage_index(ev))];
  ivals.push_back(Interval{ev.begin, end});
  if (ivals.size() >= kMaxIntervals) {
    // Compact to the interval union; if the flow genuinely has more
    // disjoint intervals than the cap, merge the closest pair until it
    // fits - deterministic, and only ever *under*-counts wait.
    std::sort(ivals.begin(), ivals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.end < b.end;
              });
    std::vector<Interval> merged;
    for (const Interval& iv : ivals) {
      if (!merged.empty() && iv.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, iv.end);
      } else {
        merged.push_back(iv);
      }
    }
    while (merged.size() >= kMaxIntervals) {
      std::size_t best = 0;
      std::int64_t best_gap = std::numeric_limits<std::int64_t>::max();
      for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
        const std::int64_t gap = merged[i + 1].begin - merged[i].end;
        if (gap < best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      merged[best].end = merged[best + 1].end;
      merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    }
    ivals = std::move(merged);
  }
  ++spans_;
  bump_locked("flowstats.spans");
}

void FlowStats::complete(const Completion& c) {
  if (!enabled() || c.flow == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = logical_key(c.flow);
  if (completed_keys_.count(key) != 0) {
    ++late_spans_;
    bump_locked("flowstats.late_spans");
    return;
  }
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= kMaxPending) {
      ++dropped_;
      bump_locked("flowstats.dropped");
      return;
    }
    it = pending_.emplace(key, Pending{}).first;
    it->second.min_begin = std::numeric_limits<std::int64_t>::max();
    it->second.max_end = std::numeric_limits<std::int64_t>::min();
  }
  Pending& p = it->second;
  if (p.completions == 0) {
    p.cls = c.cls;
    p.shape = c.shape;
    p.participants = std::max(1, c.participants);
  }
  p.bytes += c.bytes;
  if (c.begin >= 0) {
    p.begin_override =
        p.begin_override < 0 ? c.begin : std::min(p.begin_override, c.begin);
  }
  if (c.end >= 0) p.end_override = std::max(p.end_override, c.end);
  ++p.completions;
  if (p.completions >= p.participants) {
    finalize_locked(key, p);
    pending_.erase(it);
  }
}

void FlowStats::finalize_locked(std::uint64_t key, Pending& p) {
  retire_key_locked(key);
  std::int64_t begin = p.begin_override;
  std::int64_t end = p.end_override;
  if (p.min_begin != std::numeric_limits<std::int64_t>::max()) {
    begin = begin < 0 ? p.min_begin : std::min(begin, p.min_begin);
    end = std::max(end, p.max_end);
  }
  if (begin < 0 || end < begin) {
    // No usable window (completion without times and without any span):
    // count it dropped rather than invent a latency.
    ++dropped_;
    bump_locked("flowstats.dropped");
    return;
  }
  const std::int64_t e2e = end - begin;

  ClassAcc& acc = classes_[class_key(p.cls, p.shape, p.bytes)];
  ++acc.count;
  acc.bytes += p.bytes;
  auto vit = acc.values.find(e2e);
  if (vit != acc.values.end()) {
    ++vit->second;
  } else if (acc.values.size() < kMaxDistinctValues) {
    acc.values.emplace(e2e, 1);
  } else {
    // Distinct-value cap: coarsen *new* values to their log2 bucket upper
    // bound (at most 64 extra keys), never silently discard the sample.
    ++acc.values[bucket_upper_bound(e2e)];
    ++capped_;
    bump_locked("flowstats.capped");
  }

  TailFlow tf{e2e, next_seq_++, {}};
  for (std::size_t s = 0; s < static_cast<std::size_t>(kStages); ++s) {
    auto& ivals = p.stages[s];
    if (ivals.empty()) continue;
    std::sort(ivals.begin(), ivals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.end < b.end;
              });
    std::int64_t work = 0;
    std::int64_t cur_begin = ivals.front().begin;
    std::int64_t cur_end = ivals.front().end;
    for (std::size_t i = 1; i < ivals.size(); ++i) {
      if (ivals[i].begin <= cur_end) {
        cur_end = std::max(cur_end, ivals[i].end);
      } else {
        work += cur_end - cur_begin;
        cur_begin = ivals[i].begin;
        cur_end = ivals[i].end;
      }
    }
    work += cur_end - cur_begin;
    ++acc.stage_flows[s];
    acc.work[s] += work;
    acc.wait[s] += std::max<std::int64_t>(0, e2e - work);
    tf.work[s] = work;
  }
  acc.tail.push_back(tf);
  std::sort(acc.tail.begin(), acc.tail.end(),
            [](const TailFlow& a, const TailFlow& b) {
              return a.e2e != b.e2e ? a.e2e > b.e2e : a.seq < b.seq;
            });
  if (acc.tail.size() > kTailFlows) acc.tail.resize(kTailFlows);

  ++flows_;
  bump_locked("flowstats.flows");
  if (metrics_ != nullptr) {
    metrics_->histogram("latency.e2e_ns").record(e2e);
  }
}

void FlowStats::drop_locked(std::uint64_t key, Pending& p) {
  (void)p;
  retire_key_locked(key);
  ++dropped_;
  bump_locked("flowstats.dropped");
}

void FlowStats::drop_unidentified() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++dropped_;
  bump_locked("flowstats.dropped");
}

void FlowStats::begin_generation() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, p] : pending_) drop_locked(key, p);
  pending_.clear();
  // Send ids restart with the new Runtime, so retired keys from the old
  // generation would shadow fresh flows reusing the same bits.
  completed_keys_.clear();
  completed_fifo_.clear();
}

void FlowStats::end_generation() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, p] : pending_) drop_locked(key, p);
  pending_.clear();
  completed_keys_.clear();
  completed_fifo_.clear();
}

FlowStats::Report FlowStats::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  Report r;
  r.spans = spans_;
  r.flows = flows_;
  r.dropped = dropped_;
  r.late_spans = late_spans_;
  r.capped = capped_;
  for (const auto& [key, acc] : classes_) {
    ClassReport cr;
    cr.count = acc.count;
    cr.bytes = acc.bytes;
    cr.work = acc.work;
    cr.wait = acc.wait;
    cr.stage_flows = acc.stage_flows;
    std::int64_t n = 0;
    for (const auto& [v, c] : acc.values) n += c;
    if (n > 0) {
      cr.p50 = value_at_rank(acc.values, nearest_rank(0.50, n));
      cr.p99 = value_at_rank(acc.values, nearest_rank(0.99, n));
      cr.p999 = value_at_rank(acc.values, nearest_rank(0.999, n));
      cr.max = acc.values.rbegin()->first;
    }
    cr.tail_threshold = cr.p99;
    for (auto vit = acc.values.lower_bound(cr.tail_threshold);
         vit != acc.values.end(); ++vit) {
      cr.tail_count += vit->second;
    }
    for (const TailFlow& tf : acc.tail) {
      if (tf.e2e < cr.tail_threshold) continue;
      for (std::size_t s = 0; s < static_cast<std::size_t>(kStages); ++s) {
        cr.tail_work[s] += tf.work[s];
      }
    }
    std::int64_t best = 0;
    for (std::size_t s = 0; s < static_cast<std::size_t>(kStages); ++s) {
      if (cr.tail_work[s] > best) {
        best = cr.tail_work[s];
        cr.tail_dominant = static_cast<int>(s);
      }
    }
    r.classes.emplace(key, cr);
  }
  return r;
}

std::string FlowStats::to_json() const {
  const Report r = report();
  auto num = [](std::int64_t v) {
    return json::Value(static_cast<double>(v));
  };
  json::Object flowstats;
  flowstats.emplace("capped", num(r.capped));
  flowstats.emplace("dropped", num(r.dropped));
  flowstats.emplace("flows", num(r.flows));
  flowstats.emplace("late_spans", num(r.late_spans));
  flowstats.emplace("spans", num(r.spans));

  json::Object classes;
  for (const auto& [key, cr] : r.classes) {
    json::Object e2e;
    e2e.emplace("max", num(cr.max));
    e2e.emplace("p50", num(cr.p50));
    e2e.emplace("p99", num(cr.p99));
    e2e.emplace("p999", num(cr.p999));

    json::Object stages;
    for (std::size_t s = 0; s < static_cast<std::size_t>(kStages); ++s) {
      if (cr.stage_flows[s] == 0) continue;
      json::Object st;
      st.emplace("flows", num(cr.stage_flows[s]));
      st.emplace("wait", num(cr.wait[s]));
      st.emplace("work", num(cr.work[s]));
      stages.emplace(stage_name(static_cast<int>(s)), json::Value(st));
    }

    json::Object tail_work;
    for (std::size_t s = 0; s < static_cast<std::size_t>(kStages); ++s) {
      if (cr.tail_work[s] == 0) continue;
      tail_work.emplace(stage_name(static_cast<int>(s)),
                        num(cr.tail_work[s]));
    }
    json::Object tail;
    tail.emplace("count", num(cr.tail_count));
    tail.emplace("dominant",
                 json::Value(std::string(stage_name(cr.tail_dominant))));
    tail.emplace("threshold", num(cr.tail_threshold));
    tail.emplace("work", json::Value(std::move(tail_work)));

    json::Object cls;
    cls.emplace("bytes", num(cr.bytes));
    cls.emplace("count", num(cr.count));
    cls.emplace("e2e", json::Value(std::move(e2e)));
    cls.emplace("stages", json::Value(std::move(stages)));
    cls.emplace("tail", json::Value(std::move(tail)));
    classes.emplace(key, json::Value(std::move(cls)));
  }

  json::Object doc;
  doc.emplace("schema", json::Value(std::string("gpuddt-latency-v1")));
  doc.emplace("flowstats", json::Value(std::move(flowstats)));
  doc.emplace("classes", json::Value(std::move(classes)));
  return canonical_latency(json::Value(std::move(doc)));
}

void FlowStats::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  completed_keys_.clear();
  completed_fifo_.clear();
  classes_.clear();
  next_seq_ = 0;
  spans_ = 0;
  flows_ = 0;
  dropped_ = 0;
  late_spans_ = 0;
  capped_ = 0;
}

}  // namespace gpuddt::obs
