#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace gpuddt::obs {

namespace {

std::size_t bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
}

}  // namespace

std::int64_t nearest_rank(double q, std::int64_t count) {
  if (count <= 0) return 0;
  const double scaled = q * static_cast<double>(count);
  auto rank = static_cast<std::int64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;  // ceil
  return std::clamp<std::int64_t>(rank, 1, count);
}

std::int64_t Histogram::Snapshot::quantile_nearest_rank(double q) const {
  if (count == 0) return 0;
  const std::int64_t rank = nearest_rank(q, count);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == 0) return std::max<std::int64_t>(0, min);
      const std::int64_t hi = i >= 63 ? max : (std::int64_t{1} << i) - 1;
      return std::max(min, std::min(hi, max));
    }
  }
  return max;
}

std::int64_t Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  const auto target = static_cast<std::int64_t>(
      q * static_cast<double>(count - 1));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      if (i == 0) return 0;
      const std::int64_t hi = i >= 63 ? max : (std::int64_t{1} << i) - 1;
      return std::min(hi, max);
    }
  }
  return max;
}

void Histogram::record(std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.count == 0) {
    s_.min = s_.max = value;
  } else {
    s_.min = std::min(s_.min, value);
    s_.max = std::max(s_.max, value);
  }
  ++s_.count;
  s_.sum += value;
  ++s_.buckets[bucket_of(value)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::map<std::string, std::int64_t> Registry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, Histogram::Snapshot> Registry::histograms_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->snapshot());
  return out;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace gpuddt::obs
