#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/json.h"

namespace gpuddt::obs {

void TraceBuffer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// Virtual ns -> Trace Event Format microseconds, fractional to keep the
/// full nanosecond resolution ("%.3f" is exact for int64 nanoseconds).
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

/// The named timeline row (Chrome `tid`) an event renders on. The
/// pipeline stages of one op get one row each, so the §3.2/§4.1 overlap
/// shows as parallel bars; everything else rows by subsystem (with a
/// `layer:stage` split for dotted span names like "put.pack").
std::string stage_row(const TraceEvent& ev) {
  if (ev.cat == "engine") {
    if (ev.name == "convert_chunk") return "conv";
    if (ev.name == "desc_upload") return "H2D desc";
    if (ev.name == "dev_kernel" || ev.name == "vector_kernel")
      return "kernel";
  }
  if (ev.cat == "pml" && ev.name == "frag") return "wire";
  if (ev.cat == "gpu") {
    if (ev.name == "rdma_frag") return "RDMA GET";
    if (ev.name == "host_frag_unpack") return "unpack";
  }
  const auto dot = ev.name.rfind('.');
  if (dot != std::string::npos && dot + 1 < ev.name.size())
    return ev.cat + ":" + ev.name.substr(dot + 1);
  return ev.cat;
}

std::string chrome_trace_json(std::vector<TraceEvent> events,
                              std::int64_t dropped) {
  // Sort by begin time so `ts` is monotone non-decreasing - viewers do
  // not require it, but it makes the array diffable and lets shape checks
  // (metrics_diff --validate-chrome) assert ordering.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.begin < b.begin;
                   });

  // Stable row numbering: the engine/protocol pipeline stages get fixed
  // ids so the viewer always stacks them in pipeline order; other rows
  // number by first appearance (deterministic: events are sorted).
  std::map<std::string, int> row_ids{{"conv", 0},     {"H2D desc", 1},
                                     {"kernel", 2},   {"wire", 3},
                                     {"RDMA GET", 4}, {"unpack", 5}};
  int next_row = 6;
  // (pid, tid) -> row name, for the thread_name metadata events.
  std::map<std::pair<int, int>, std::string> named_rows;

  // Flow membership after the sort: the k-th member of a flow (in begin
  // order, i.e. virtual-time order) decides its flow phase - "s" for the
  // first, "t" for the middle, "f" for the last. Single-member flows get
  // args.flow but no flow events (an arrow needs two ends).
  std::map<std::uint64_t, std::int64_t> flow_sizes;
  for (const TraceEvent& ev : events)
    if (ev.flow != 0) ++flow_sizes[ev.flow];
  std::map<std::uint64_t, std::int64_t> flow_seen;

  std::string body;
  body.reserve(events.size() * 96);
  std::int64_t last_end = 0;
  for (const TraceEvent& ev : events) {
    const int pid = ev.pid >= 0 ? ev.pid : (ev.tid >= 0 ? ev.tid : 0);
    const std::string row = stage_row(ev);
    auto [it, inserted] = row_ids.try_emplace(row, next_row);
    if (inserted) ++next_row;
    const int tid = it->second;
    named_rows.try_emplace({pid, tid}, row);
    last_end = std::max(last_end, ev.end);

    body += ",\n{\"name\": \"" + json::escape(ev.name) + "\", \"cat\": \"" +
            json::escape(ev.cat) + "\", \"ph\": \"X\", \"ts\": ";
    append_us(body, ev.begin);
    body += ", \"dur\": ";
    append_us(body, std::max<std::int64_t>(0, ev.end - ev.begin));
    body += ", \"pid\": ";
    append_int(body, pid);
    body += ", \"tid\": ";
    append_int(body, tid);
    body += ", \"args\": {\"arg0\": ";
    append_int(body, ev.arg0);
    if (ev.flow != 0) {
      body += ", \"flow\": ";
      append_u64(body, ev.flow);
    }
    body += "}}";
    if (ev.flow != 0 && flow_sizes[ev.flow] >= 2) {
      // One flow event right after its span, at the span's begin ts (so
      // the array stays ts-monotone and `bp:"e"` binds it to exactly
      // this slice: same pid/tid, ts inside the span bounds).
      const std::int64_t k = ++flow_seen[ev.flow];
      const char* ph = k == 1 ? "s"
                     : k == flow_sizes[ev.flow] ? "f"
                                                : "t";
      body += ",\n{\"name\": \"frag_flow\", \"cat\": \"flow\", \"ph\": \"";
      body += ph;
      body += "\", \"id\": ";
      append_u64(body, ev.flow);
      body += ", \"ts\": ";
      append_us(body, ev.begin);
      body += ", \"pid\": ";
      append_int(body, pid);
      body += ", \"tid\": ";
      append_int(body, tid);
      if (*ph != 's') body += ", \"bp\": \"e\"";
      body += "}";
    }
  }
  if (dropped > 0) {
    // A truncated timeline must never read as a complete one: flag the
    // buffer-cap overflow as a global instant event at the trace's end.
    body += ",\n{\"name\": \"trace_truncated\", \"cat\": \"obs\", "
            "\"ph\": \"i\", \"ts\": ";
    append_us(body, last_end);
    body += ", \"pid\": 0, \"tid\": 0, \"s\": \"g\", "
            "\"args\": {\"dropped\": ";
    append_int(body, dropped);
    body += "}}";
  }

  // Metadata first: name every rank process and every stage row.
  std::string out = "[";
  bool first = true;
  int last_pid = -1;
  for (const auto& [key, row] : named_rows) {
    const auto [pid, tid] = key;
    if (pid != last_pid) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
      append_int(out, pid);
      out += ", \"tid\": 0, \"args\": {\"name\": \"rank ";
      append_int(out, pid);
      out += "\"}}";
      last_pid = pid;
    }
    out += ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
    append_int(out, pid);
    out += ", \"tid\": ";
    append_int(out, tid);
    out += ", \"args\": {\"name\": \"" + json::escape(row) + "\"}}";
  }
  if (first && !body.empty()) body.erase(0, 1);  // no metadata: drop comma
  out += body;
  out += "\n]\n";
  return out;
}

std::string stage_profile_table(const std::vector<TraceEvent>& events) {
  if (events.empty()) return "";
  // Busy time per (rank, stage row) as interval-union occupancy: spans on
  // one row can overlap when the pipeline keeps several fragments in
  // flight, and merging intervals keeps busy_% a true utilization
  // (<= 100%) instead of "work issued", which trace_critpath already
  // reports as serial/blame time.
  struct Cell {
    std::vector<std::pair<std::int64_t, std::int64_t>> ivals;
    std::int64_t count = 0;
  };
  std::map<std::string, int> row_order{{"conv", 0},     {"H2D desc", 1},
                                       {"kernel", 2},   {"wire", 3},
                                       {"RDMA GET", 4}, {"unpack", 5}};
  int next_row = 6;
  std::map<std::pair<int, std::pair<int, std::string>>, Cell> cells;
  std::int64_t t0 = events.front().begin, t1 = events.front().end;
  for (const TraceEvent& ev : events) {
    const int pid = ev.pid >= 0 ? ev.pid : (ev.tid >= 0 ? ev.tid : 0);
    const std::string row = stage_row(ev);
    auto [it, inserted] = row_order.try_emplace(row, next_row);
    if (inserted) ++next_row;
    Cell& c = cells[{pid, {it->second, row}}];
    c.ivals.emplace_back(ev.begin, std::max(ev.begin, ev.end));
    ++c.count;
    t0 = std::min(t0, ev.begin);
    t1 = std::max(t1, ev.end);
  }
  const std::int64_t span = std::max<std::int64_t>(1, t1 - t0);

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "stage utilization over %" PRId64 " virtual ns\n", t1 - t0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-6s %-12s %14s %8s %8s\n", "rank",
                "stage", "busy_ns", "busy_%", "events");
  out += buf;
  for (auto& [key, c] : cells) {
    std::sort(c.ivals.begin(), c.ivals.end());
    std::int64_t busy = 0, open_b = c.ivals.front().first,
                 open_e = c.ivals.front().second;
    for (const auto& [b, e] : c.ivals) {
      if (b > open_e) {
        busy += open_e - open_b;
        open_b = b;
        open_e = e;
      } else {
        open_e = std::max(open_e, e);
      }
    }
    busy += open_e - open_b;
    std::snprintf(buf, sizeof(buf),
                  "%-6d %-12s %14" PRId64 " %7.2f%% %8" PRId64 "\n",
                  key.first, key.second.second.c_str(), busy,
                  100.0 * static_cast<double>(busy) /
                      static_cast<double>(span),
                  c.count);
    out += buf;
  }
  return out;
}

}  // namespace gpuddt::obs
