#include "obs/trace.h"

namespace gpuddt::obs {

void TraceBuffer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace gpuddt::obs
