#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/json.h"

namespace gpuddt::obs {

void TraceBuffer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// Virtual ns -> Trace Event Format microseconds, fractional to keep the
/// full nanosecond resolution ("%.3f" is exact for int64 nanoseconds).
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// The named timeline row (Chrome `tid`) an event renders on. The
/// pipeline stages of one op get one row each, so the §3.2/§4.1 overlap
/// shows as parallel bars; everything else rows by subsystem (with a
/// `layer:stage` split for dotted span names like "put.pack").
std::string stage_row(const TraceEvent& ev) {
  if (ev.cat == "engine") {
    if (ev.name == "convert_chunk") return "conv";
    if (ev.name == "desc_upload") return "H2D desc";
    if (ev.name == "dev_kernel" || ev.name == "vector_kernel")
      return "kernel";
  }
  if (ev.cat == "pml" && ev.name == "frag") return "wire";
  if (ev.cat == "gpu") {
    if (ev.name == "rdma_frag") return "RDMA GET";
    if (ev.name == "host_frag_unpack") return "unpack";
  }
  const auto dot = ev.name.rfind('.');
  if (dot != std::string::npos && dot + 1 < ev.name.size())
    return ev.cat + ":" + ev.name.substr(dot + 1);
  return ev.cat;
}

}  // namespace

std::string chrome_trace_json(std::vector<TraceEvent> events,
                              std::int64_t dropped) {
  // Sort by begin time so `ts` is monotone non-decreasing - viewers do
  // not require it, but it makes the array diffable and lets shape checks
  // (metrics_diff --validate-chrome) assert ordering.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.begin < b.begin;
                   });

  // Stable row numbering: the engine/protocol pipeline stages get fixed
  // ids so the viewer always stacks them in pipeline order; other rows
  // number by first appearance (deterministic: events are sorted).
  std::map<std::string, int> row_ids{{"conv", 0},     {"H2D desc", 1},
                                     {"kernel", 2},   {"wire", 3},
                                     {"RDMA GET", 4}, {"unpack", 5}};
  int next_row = 6;
  // (pid, tid) -> row name, for the thread_name metadata events.
  std::map<std::pair<int, int>, std::string> named_rows;

  std::string body;
  body.reserve(events.size() * 96);
  std::int64_t last_end = 0;
  for (const TraceEvent& ev : events) {
    const int pid = ev.pid >= 0 ? ev.pid : (ev.tid >= 0 ? ev.tid : 0);
    const std::string row = stage_row(ev);
    auto [it, inserted] = row_ids.try_emplace(row, next_row);
    if (inserted) ++next_row;
    const int tid = it->second;
    named_rows.try_emplace({pid, tid}, row);
    last_end = std::max(last_end, ev.end);

    body += ",\n{\"name\": \"" + json::escape(ev.name) + "\", \"cat\": \"" +
            json::escape(ev.cat) + "\", \"ph\": \"X\", \"ts\": ";
    append_us(body, ev.begin);
    body += ", \"dur\": ";
    append_us(body, std::max<std::int64_t>(0, ev.end - ev.begin));
    body += ", \"pid\": ";
    append_int(body, pid);
    body += ", \"tid\": ";
    append_int(body, tid);
    body += ", \"args\": {\"arg0\": ";
    append_int(body, ev.arg0);
    body += "}}";
  }
  if (dropped > 0) {
    // A truncated timeline must never read as a complete one: flag the
    // buffer-cap overflow as a global instant event at the trace's end.
    body += ",\n{\"name\": \"trace_truncated\", \"cat\": \"obs\", "
            "\"ph\": \"i\", \"ts\": ";
    append_us(body, last_end);
    body += ", \"pid\": 0, \"tid\": 0, \"s\": \"g\", "
            "\"args\": {\"dropped\": ";
    append_int(body, dropped);
    body += "}}";
  }

  // Metadata first: name every rank process and every stage row.
  std::string out = "[";
  bool first = true;
  int last_pid = -1;
  for (const auto& [key, row] : named_rows) {
    const auto [pid, tid] = key;
    if (pid != last_pid) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
      append_int(out, pid);
      out += ", \"tid\": 0, \"args\": {\"name\": \"rank ";
      append_int(out, pid);
      out += "\"}}";
      last_pid = pid;
    }
    out += ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
    append_int(out, pid);
    out += ", \"tid\": ";
    append_int(out, tid);
    out += ", \"args\": {\"name\": \"" + json::escape(row) + "\"}}";
  }
  if (first && !body.empty()) body.erase(0, 1);  // no metadata: drop comma
  out += body;
  out += "\n]\n";
  return out;
}

}  // namespace gpuddt::obs
