// Recorder - the observability layer's front door.
//
// Bundles a metrics Registry and a TraceBuffer and serializes both as one
// JSON document (schema: docs/metrics.md, `gpuddt-metrics-v1`). Producers
// (the GPU datatype engine, the DEV cache, the PML, the GPU transfer
// plugin) take a nullable Recorder* and record nothing when it is null,
// so unit tests attach private recorders and production paths pay one
// branch when observability is off.
//
// The process-global default_recorder() is what the harness attaches to
// runs that did not bring their own, and what the bench binaries dump
// with --metrics-out=FILE.
#pragma once

#include <string>

#include "obs/flowstats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gpuddt::obs {

class Recorder {
 public:
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }
  FlowStats& flowstats() { return flowstats_; }
  const FlowStats& flowstats() const { return flowstats_; }

  void enable_tracing(bool on = true) { trace_.enable(on); }
  bool tracing() const { return trace_.enabled(); }

  /// Serialize counters, histograms and (if any) trace events as one
  /// JSON document.
  std::string to_json() const;

  /// to_json() into `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Serialize the trace buffer as a Chrome Trace Event Format JSON
  /// array (chrome_trace_json, docs/tracing.md). Counters/histograms are
  /// not part of this view - pair with write_json for the quantitative
  /// half.
  std::string to_chrome_json() const {
    return chrome_trace_json(trace_.snapshot(), trace_.dropped());
  }

  /// to_chrome_json() into `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Serialize the per-flow latency engine as a canonical
  /// gpuddt-latency-v1 report (obs/flowstats.h, docs/latency.md). Empty
  /// but valid when flowstats was never enabled.
  std::string latency_json() const { return flowstats_.to_json(); }

  /// latency_json() into `path`; returns false on I/O failure.
  bool write_latency_json(const std::string& path) const;

  /// Drop all recorded data (between benchmark repetitions).
  void clear() {
    metrics_.clear();
    trace_.clear();
    flowstats_.clear();
  }

 private:
  Registry metrics_;
  TraceBuffer trace_;
  FlowStats flowstats_{&metrics_};
};

/// Process-wide recorder used whenever a run does not provide its own.
Recorder& default_recorder();

/// Shorthand for guarded recording at instrumentation sites.
inline void count(Recorder* rec, std::string_view name,
                  std::int64_t delta = 1) {
  if (rec != nullptr) rec->metrics().counter(name).add(delta);
}
inline void observe(Recorder* rec, std::string_view name,
                    std::int64_t value) {
  if (rec != nullptr) rec->metrics().histogram(name).record(value);
}
inline void trace(Recorder* rec, TraceEvent ev) {
  if (rec == nullptr) return;
  // The latency engine taps the span stream *before* the bounded trace
  // buffer, so per-flow percentiles stay complete even when tracing is
  // off (record() below no-ops) or the buffer truncates.
  if (rec->flowstats().enabled()) rec->flowstats().on_span(ev);
  rec->trace().record(std::move(ev));
}

}  // namespace gpuddt::obs
