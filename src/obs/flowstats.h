// Streaming per-flow latency analytics.
//
// The metrics registry answers "how much" (counters, log2 histograms) and
// the trace buffer answers "when exactly" (bounded event capture) - but
// neither can say what the p99 user of a given operation class actually
// experienced, or which pipeline stage made the slow flows slow. FlowStats
// closes that gap: it consumes the same flow-stamped spans the Chrome
// exporter renders (obs::trace feeds it before the TraceBuffer, so it
// works with tracing disabled or truncated), groups them by *logical*
// flow (all fragments of one rendezvous send, all member spans of one
// collective), and on completion folds each flow's end-to-end latency and
// per-stage work/wait split into bounded-memory per-class accumulators.
//
// A flow class is (operation kind, DDT shape digest, payload size
// bucket): "send/91ab.../b21" is "2 MB rendezvous sends of this vector
// shape". Per class it keeps an exact value->count latency map (capped;
// overflow coarsens new values to their log2 bucket bound and counts
// flowstats.capped), so p50/p99/p999/max are deterministic nearest-rank
// statistics - no interpolation, no sampling jitter - plus the summed
// per-stage work/wait and the slowest flows' stage breakdown for tail
// attribution (docs/latency.md).
//
// Everything is virtual-clock driven and single-pass, so two runs of a
// deterministic benchmark serialize byte-identical gpuddt-latency-v1
// reports (the traffic-mix baseline gates exactly that).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gpuddt::obs {

class Registry;

class FlowStats {
 public:
  /// Pipeline stages a flow's spans are attributed to, in pipeline order
  /// (the same rows stage_row() renders; "other" absorbs layer op spans
  /// and future rows). Ties in tail attribution resolve to the earliest
  /// stage in this order.
  static constexpr int kStages = 7;
  static const char* stage_name(int stage);

  explicit FlowStats(Registry* metrics) : metrics_(metrics) {}

  /// Off by default: with flowstats disabled the hot obs::trace path pays
  /// one relaxed load, and no latency.* / flowstats.* instruments ever
  /// appear in the metrics registry (keeping historic baselines intact).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Fold one flow-stamped span into its logical flow's pending record.
  /// Ignores flow-less events; spans for already-finalized flows count as
  /// flowstats.late_spans and are never folded into percentiles.
  void on_span(const TraceEvent& ev);

  /// One layer-level completion of a logical flow. Single-participant
  /// flows (p2p sends, RMA ops, SHMEM datatype ops, standalone
  /// pack/unpack) finalize immediately; collective flows finalize when
  /// all `participants` ranks have completed, with the end-to-end window
  /// spanning the earliest begin to the latest end.
  struct Completion {
    std::uint64_t flow = 0;   // any fragment/member flow id of the flow
    std::string cls;          // operation kind ("send", "coll.bcast", ...)
    std::uint64_t shape = 0;  // DDT shape digest (0: no datatype involved)
    std::int64_t bytes = 0;   // payload bytes this completion contributes
    std::int64_t begin = -1;  // virtual ns; -1: derive from spans
    std::int64_t end = -1;    // virtual ns; -1: derive from spans
    int participants = 1;     // completions required to finalize
  };
  void complete(const Completion& c);

  /// Count one completion that never had a flow id (eager sends complete
  /// with flow 0, so there is nothing to assemble) in flowstats.dropped -
  /// the report's totals still account for every operation.
  void drop_unidentified();

  /// Flow-id generation fences. Send ids (and collective epochs) restart
  /// when a Runtime is constructed, so a bench binary running several
  /// Runtimes back-to-back would alias old and new flow ids; the Runtime
  /// brackets its lifetime with these. end_generation() drops every
  /// still-open flow into flowstats.dropped - a truncated run is never
  /// silently folded into percentiles.
  void begin_generation();
  void end_generation();

  /// Deterministic per-class statistics, exact nearest-rank percentiles.
  struct ClassReport {
    std::int64_t count = 0;  // finalized flows
    std::int64_t bytes = 0;  // payload bytes across those flows
    std::int64_t p50 = 0;
    std::int64_t p99 = 0;
    std::int64_t p999 = 0;
    std::int64_t max = 0;
    std::array<std::int64_t, kStages> work{};  // interval-union busy ns
    std::array<std::int64_t, kStages> wait{};  // window minus work
    std::array<std::int64_t, kStages> stage_flows{};  // flows with spans
    std::int64_t tail_threshold = 0;  // nearest-rank p99
    std::int64_t tail_count = 0;      // flows with e2e >= threshold
    int tail_dominant = -1;           // stage index; -1: no stage data
    std::array<std::int64_t, kStages> tail_work{};  // over tracked tail
  };
  struct Report {
    std::int64_t spans = 0;
    std::int64_t flows = 0;
    std::int64_t dropped = 0;
    std::int64_t late_spans = 0;
    std::int64_t capped = 0;
    std::map<std::string, ClassReport> classes;
  };
  Report report() const;

  /// The report as a canonical gpuddt-latency-v1 document - built through
  /// canonical_latency (obs/canon.h), so serialize/parse/canonicalize is
  /// byte-idempotent by construction (docs/latency.md has the schema).
  std::string to_json() const;

  /// Drop all state, including per-class accumulators (between benchmark
  /// repetitions). Leaves the enabled flag untouched.
  void clear();

 private:
  struct Interval {
    std::int64_t begin;
    std::int64_t end;
  };
  struct Pending {
    std::int64_t min_begin;
    std::int64_t max_end;
    std::array<std::vector<Interval>, kStages> stages;
    std::string cls;
    std::uint64_t shape = 0;
    std::int64_t bytes = 0;
    std::int64_t begin_override = -1;
    std::int64_t end_override = -1;
    int completions = 0;
    int participants = 1;
  };
  struct TailFlow {
    std::int64_t e2e;
    std::uint64_t seq;  // finalization order, breaks e2e ties
    std::array<std::int64_t, kStages> work;
  };
  struct ClassAcc {
    std::int64_t count = 0;
    std::int64_t bytes = 0;
    std::map<std::int64_t, std::int64_t> values;  // e2e ns -> flow count
    std::array<std::int64_t, kStages> work{};
    std::array<std::int64_t, kStages> wait{};
    std::array<std::int64_t, kStages> stage_flows{};
    std::vector<TailFlow> tail;  // slowest kTailFlows, e2e desc / seq asc
  };

  static constexpr std::size_t kMaxPending = 1 << 16;
  static constexpr std::size_t kMaxCompletedKeys = 1 << 12;
  static constexpr std::size_t kMaxIntervals = 512;
  static constexpr std::size_t kMaxDistinctValues = 1024;
  static constexpr std::size_t kTailFlows = 32;

  void finalize_locked(std::uint64_t key, Pending& p);
  void drop_locked(std::uint64_t key, Pending& p);
  void retire_key_locked(std::uint64_t key);
  void bump_locked(const char* name, std::int64_t delta = 1);

  Registry* metrics_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::uint64_t, Pending> pending_;
  std::set<std::uint64_t> completed_keys_;
  std::deque<std::uint64_t> completed_fifo_;
  std::map<std::string, ClassAcc> classes_;
  std::uint64_t next_seq_ = 0;
  std::int64_t spans_ = 0;
  std::int64_t flows_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t late_spans_ = 0;
  std::int64_t capped_ = 0;
};

}  // namespace gpuddt::obs
