// Metrics registry - named counters and histograms.
//
// The observability layer's quantitative half: every engine path, cache
// decision and protocol stage increments a named counter (or records a
// virtual-nanosecond latency into a histogram) so a benchmark run can
// report *where* bytes and time went, not just the end-to-end figure.
// Counters are lock-free; histograms take a short mutex per record.
// References returned by Registry::counter()/histogram() stay valid for
// the registry's lifetime, so hot paths resolve names once and keep the
// pointer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace gpuddt::obs {

/// Monotonic counter, safe to bump from any rank thread.
class Counter {
 public:
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative values (latencies in virtual
/// ns, sizes in bytes). Bucket i holds values in [2^(i-1), 2^i); bucket 0
/// holds zeros. Bounded memory regardless of sample count.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::array<std::int64_t, kBuckets> buckets{};

    double mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
    /// Approximate quantile (bucket upper bound), q in [0, 1].
    std::int64_t quantile(double q) const;
    /// Nearest-rank quantile (rank = clamp(ceil(q*count), 1, count), no
    /// interpolation; see nearest_rank below): the bucket upper bound of
    /// the rank-th smallest sample, clamped to [min, max]. Deterministic
    /// for any sample stream; 0 when the histogram is empty.
    std::int64_t quantile_nearest_rank(double q) const;
  };

  void record(std::int64_t value);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
};

/// The nearest-rank percentile index: the 1-based rank of the sample that
/// *is* quantile q over `count` sorted samples, clamp(ceil(q * count), 1,
/// count). Exact and deterministic - no interpolation between samples -
/// which is what lets latency reports (obs/flowstats.h) and histogram
/// percentiles gate byte-identically. Returns 0 when count <= 0.
std::int64_t nearest_rank(double q, std::int64_t count);

/// Thread-safe name -> instrument map. Names are dot-separated paths
/// ("engine.pack.bytes.dev"); docs/metrics.md lists the stable set.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::map<std::string, std::int64_t> counters_snapshot() const;
  std::map<std::string, Histogram::Snapshot> histograms_snapshot() const;

  /// Drop every instrument (between benchmark repetitions).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace gpuddt::obs
