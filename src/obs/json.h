// Minimal JSON support for the metrics dumps.
//
// The writer side lives in Recorder::to_json(); this header provides the
// string escaping it needs plus a small recursive-descent parser used by
// tools/metrics_diff and the tests that validate --metrics-out output.
// The parser handles the full JSON grammar (objects, arrays, strings with
// escapes, numbers, booleans, null) - enough to read back anything the
// exporter writes, with no external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpuddt::obs::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), num_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  const Object& as_object() const { return *obj_; }

  /// Object member access; throws when missing or not an object.
  const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Dotted-path lookup through nested objects ("counters.dev_cache.hits"
  /// is NOT split - metric names contain dots - so this splits only on
  /// the first level: use at() chains for deeper access).
  const Value* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input.
Value parse(std::string_view text);

/// Escape a string for embedding between double quotes.
std::string escape(std::string_view s);

}  // namespace gpuddt::obs::json
