#include "baselines/vectorize.h"

#include "mpi/cursor.h"

namespace gpuddt::base {

std::vector<VectorSeg> vectorize(const mpi::DatatypePtr& dt,
                                 std::int64_t count) {
  std::vector<VectorSeg> segs;
  mpi::BlockCursor cur(dt, count);
  mpi::Block b;
  std::int64_t pk = 0;
  while (cur.next(&b)) {
    bool extended = false;
    if (!segs.empty()) {
      VectorSeg& s = segs.back();
      if (b.len == s.blocklen) {
        if (s.count == 1) {
          // Second row fixes the stride; only non-overlapping forward
          // strides make a valid cudaMemcpy2D pitch.
          const std::int64_t stride = b.offset - s.src_disp;
          if (stride >= s.blocklen) {
            s.stride = stride;
            s.count = 2;
            extended = true;
          }
        } else if (b.offset == s.src_disp + s.count * s.stride) {
          ++s.count;
          extended = true;
        }
      }
    }
    if (!extended) {
      segs.push_back(VectorSeg{b.offset, pk, b.len, b.len, 1});
    }
    pk += b.len;
  }
  return segs;
}

}  // namespace gpuddt::base
