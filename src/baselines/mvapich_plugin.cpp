#include "baselines/mvapich_plugin.h"

#include <cstring>
#include <stdexcept>

namespace gpuddt::base {

namespace {

template <typename H>
std::vector<std::byte> make_payload(const H& h, std::size_t extra = 0) {
  std::vector<std::byte> v(sizeof(H) + extra);
  std::memcpy(v.data(), &h, sizeof(H));
  return v;
}

}  // namespace

struct MvapichLikePlugin::SendState : mpi::PluginState {
  std::byte* host = nullptr;
};

struct MvapichLikePlugin::RecvState : mpi::PluginState {
  std::byte* host = nullptr;
  std::int64_t bytes_done = 0;
};

std::byte* MvapichLikePlugin::stage_out(mpi::Process& p,
                                        const mpi::DatatypePtr& dt,
                                        std::int64_t count, const void* buf,
                                        std::int64_t total) {
  auto* host = static_cast<std::byte*>(
      sg::HostAlloc(p.gpu(), static_cast<std::size_t>(total), false));
  const auto segs = vectorize(dt, count);
  const auto* base = static_cast<const std::byte*>(buf);
  for (const auto& s : segs) {
    // One synchronous cudaMemcpy2D per vector segment, D2H.
    sg::Memcpy2D(p.gpu(), host + s.pk_disp,
                 static_cast<std::size_t>(s.blocklen), base + s.src_disp,
                 static_cast<std::size_t>(s.stride),
                 static_cast<std::size_t>(s.blocklen),
                 static_cast<std::size_t>(s.count));
  }
  return host;
}

void MvapichLikePlugin::stage_in(mpi::Process& p, const mpi::DatatypePtr& dt,
                                 std::int64_t count, void* buf,
                                 const std::byte* host, std::int64_t total) {
  (void)total;
  const auto segs = vectorize(dt, count);
  auto* base = static_cast<std::byte*>(buf);
  for (const auto& s : segs) {
    // One synchronous cudaMemcpy2D per vector segment, H2D.
    sg::Memcpy2D(p.gpu(), base + s.src_disp,
                 static_cast<std::size_t>(s.stride), host + s.pk_disp,
                 static_cast<std::size_t>(s.blocklen),
                 static_cast<std::size_t>(s.blocklen),
                 static_cast<std::size_t>(s.count));
  }
}

void MvapichLikePlugin::send_start(mpi::Process& p, mpi::SendRequest& req) {
  mpi::RtsHeader rts;
  rts.env = req.env;
  rts.send_id = req.id;
  rts.total_bytes = req.total_bytes;
  rts.src_is_device = 1;
  rts.src_contiguous = req.dt->is_contiguous(req.count) ? 1 : 0;
  rts.src_device = req.space.device;
  rts.src_node = p.node();
  rts.sig_hash = req.dt->signature().hash();
  req.plugin = std::make_unique<SendState>();
  p.am_send(req.env.dst, mpi::Pml::rts_handler(), make_payload(rts));
}

void MvapichLikePlugin::send_on_cts(mpi::Process& p, mpi::SendRequest& req,
                                    const mpi::CtsHeader& cts,
                                    vt::Time /*arrival*/) {
  if (cts.mode != mpi::TransferMode::kHostFrags)
    throw std::runtime_error("mvapich baseline: only kHostFrags supported");
  // Stage everything to host FIRST (no overlap), then ship fragments.
  std::byte* host = nullptr;
  if (req.total_bytes > 0)
    host = stage_out(p, req.dt, req.count, req.buf, req.total_bytes);

  mpi::Btl& btl = p.runtime().btl_between(p.rank(), req.env.dst);
  std::int64_t frag = cts.frag_bytes > 0
                          ? cts.frag_bytes
                          : static_cast<std::int64_t>(p.config().frag_bytes);
  frag = std::min<std::int64_t>(
      frag,
      static_cast<std::int64_t>(btl.max_am_payload() -
                                sizeof(mpi::FragHeader)));
  std::int64_t offset = 0;
  do {
    const std::int64_t n =
        std::min<std::int64_t>(frag, req.total_bytes - offset);
    mpi::FragHeader h;
    h.recv_id = cts.recv_id;
    h.offset = offset;
    h.bytes = n;
    h.last = (offset + n == req.total_bytes) ? 1 : 0;
    auto payload = make_payload(h, static_cast<std::size_t>(n));
    if (n > 0)
      std::memcpy(payload.data() + sizeof(mpi::FragHeader), host + offset,
                  static_cast<std::size_t>(n));
    p.am_send(req.env.dst, mpi::Pml::frag_handler(), std::move(payload));
    offset += n;
  } while (offset < req.total_bytes);
  if (host != nullptr) sg::HostFree(p.gpu(), host);
  p.pml().complete_send(req);
}

void MvapichLikePlugin::recv_start(mpi::Process& p, mpi::RecvRequest& req,
                                   const mpi::RtsHeader& rts,
                                   vt::Time /*arrival*/) {
  req.total_bytes = rts.total_bytes;
  if (req.space.space != sg::MemorySpace::kDevice) {
    // Host destination: plain host rendezvous.
    req.cursor = mpi::BlockCursor(req.dt, req.count);
  } else {
    auto st = std::make_unique<RecvState>();
    if (req.total_bytes > 0) {
      st->host = static_cast<std::byte*>(sg::HostAlloc(
          p.gpu(), static_cast<std::size_t>(req.total_bytes), false));
    }
    req.plugin = std::move(st);
  }
  mpi::CtsHeader cts;
  cts.send_id = rts.send_id;
  cts.recv_id = req.id;
  cts.mode = mpi::TransferMode::kHostFrags;
  cts.frag_bytes = static_cast<std::int64_t>(p.config().frag_bytes);
  p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
}

void MvapichLikePlugin::recv_on_frag(mpi::Process& p, mpi::RecvRequest& req,
                                     const mpi::FragHeader& hdr,
                                     std::span<const std::byte> data,
                                     vt::Time /*arrival*/) {
  auto* st = static_cast<RecvState*>(req.plugin.get());
  if (st == nullptr)
    throw std::runtime_error("mvapich baseline: fragment without state");
  if (hdr.offset != st->bytes_done)
    throw std::runtime_error("mvapich baseline: out-of-order fragment");
  if (!data.empty())
    std::memcpy(st->host + hdr.offset, data.data(), data.size());
  st->bytes_done += hdr.bytes;
  if (hdr.last) {
    // Everything is on the host; only now scatter to the device.
    if (st->bytes_done != req.total_bytes)
      throw std::runtime_error("mvapich baseline: stream size mismatch");
    if (st->host != nullptr) {
      stage_in(p, req.dt, req.count, req.buf, st->host, req.total_bytes);
      sg::HostFree(p.gpu(), st->host);
      st->host = nullptr;
    }
    p.pml().complete_recv(req);
  }
}

void MvapichLikePlugin::recv_eager(mpi::Process& p, mpi::RecvRequest& req,
                                   std::span<const std::byte> data,
                                   vt::Time /*arrival*/) {
  if (!data.empty()) {
    auto* host =
        static_cast<std::byte*>(sg::HostAlloc(p.gpu(), data.size(), false));
    std::memcpy(host, data.data(), data.size());
    stage_in(p, req.dt, req.count, req.buf, host,
             static_cast<std::int64_t>(data.size()));
    sg::HostFree(p.gpu(), host);
  }
  req.total_bytes = static_cast<std::int64_t>(data.size());
  p.pml().complete_recv(req);
}

}  // namespace gpuddt::base
