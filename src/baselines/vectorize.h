// The vectorization algorithm of Wang et al. [15] (MVAPICH2-GDR's GPU
// datatype approach, the paper's comparator): convert an arbitrary MPI
// datatype into a set of vector segments, each of which maps onto one
// cudaMemcpy2D. Layouts whose blocks share a length and a uniform stride
// collapse into a single segment; irregular layouts such as triangular
// matrices degenerate into one segment per contiguous block, and the
// per-call overhead of the 2D copies is exactly what the paper's Figure 10
// shows blowing up.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/datatype.h"

namespace gpuddt::base {

/// One vector segment: `count` rows of `blocklen` bytes, source rows
/// `stride` apart starting at `src_disp`, landing densely at `pk_disp` of
/// the packed stream.
struct VectorSeg {
  std::int64_t src_disp = 0;
  std::int64_t pk_disp = 0;
  std::int64_t blocklen = 0;
  std::int64_t stride = 0;
  std::int64_t count = 1;
};

/// Convert `count` elements of `dt` into vector segments.
std::vector<VectorSeg> vectorize(const mpi::DatatypePtr& dt,
                                 std::int64_t count);

}  // namespace gpuddt::base
