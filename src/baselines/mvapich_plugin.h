// MVAPICH2-GDR-style GPU datatype transfer (the paper's comparator).
//
// Faithful to the published description ([15]/[16] and the paper's
// Section 2.2 account): every datatype is vectorized into a set of vector
// segments, each staged with its own cudaMemcpy2D; all data transits host
// memory; there is NO pipelining or overlap between packing, the wire
// transfer and unpacking; indexed types degenerate into one 2D copy per
// contiguous block. Installed as the runtime's GpuTransferPlugin, it
// answers the same wire protocol as the real engine, so the benchmark
// harness can A/B the two implementations on identical traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/vectorize.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"

namespace gpuddt::base {

class MvapichLikePlugin : public mpi::GpuTransferPlugin {
 public:
  void attach(mpi::Runtime& /*rt*/) override {}

  void send_start(mpi::Process& p, mpi::SendRequest& req) override;
  void send_on_cts(mpi::Process& p, mpi::SendRequest& req,
                   const mpi::CtsHeader& cts, vt::Time arrival) override;
  void recv_start(mpi::Process& p, mpi::RecvRequest& req,
                  const mpi::RtsHeader& rts, vt::Time arrival) override;
  void recv_on_frag(mpi::Process& p, mpi::RecvRequest& req,
                    const mpi::FragHeader& hdr,
                    std::span<const std::byte> data, vt::Time arrival) override;
  void recv_eager(mpi::Process& p, mpi::RecvRequest& req,
                  std::span<const std::byte> data, vt::Time arrival) override;

 private:
  struct SendState;
  struct RecvState;

  /// Stage the whole message into a host buffer, one cudaMemcpy2D per
  /// vector segment (synchronous: this is the point of the baseline).
  /// Returns the host buffer.
  std::byte* stage_out(mpi::Process& p, const mpi::DatatypePtr& dt,
                       std::int64_t count, const void* buf,
                       std::int64_t total);
  /// Scatter a fully received host buffer back into device memory.
  void stage_in(mpi::Process& p, const mpi::DatatypePtr& dt,
                std::int64_t count, void* buf, const std::byte* host,
                std::int64_t total);
};

}  // namespace gpuddt::base
