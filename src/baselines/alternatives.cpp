#include "baselines/alternatives.h"

#include "mpi/cpu_pack.h"
#include "mpi/cursor.h"

namespace gpuddt::base {

PackOutcome pack_stage_whole(sg::HostContext& ctx, const mpi::DatatypePtr& dt,
                             std::int64_t count, const void* dev_buf,
                             std::byte* host_scratch, std::byte* host_packed) {
  const vt::Time t0 = ctx.clock.now();
  const std::int64_t lb = dt->true_lb();
  const std::int64_t span =
      dt->true_extent() + (count > 0 ? (count - 1) * dt->extent() : 0);
  // One bulk D2H of the whole extent, gaps and all.
  sg::Memcpy(ctx, host_scratch,
             static_cast<const std::byte*>(dev_buf) + lb,
             static_cast<std::size_t>(span));
  // CPU datatype engine packs from the host mirror.
  const auto st = mpi::cpu_pack(
      dt, count, host_scratch - lb,
      std::span<std::byte>(host_packed,
                           static_cast<std::size_t>(dt->size() * count)));
  const sg::CostModel& cm = ctx.cost();
  ctx.clock.advance(cm.cpu_copy_ns(st.bytes) +
                    static_cast<vt::Time>(cm.cpu_block_walk_ns *
                                          static_cast<double>(st.pieces)));
  return {ctx.clock.now() - t0, host_packed, true};
}

PackOutcome pack_per_block_d2h(sg::HostContext& ctx,
                               const mpi::DatatypePtr& dt, std::int64_t count,
                               const void* dev_buf, std::byte* host_packed) {
  const vt::Time t0 = ctx.clock.now();
  mpi::BlockCursor cur(dt, count);
  const auto* base = static_cast<const std::byte*>(dev_buf);
  std::int64_t pk = 0;
  mpi::Block b;
  while (cur.next(&b)) {
    // The overhead of launching one cudaMemcpy per block is the point.
    sg::Memcpy(ctx, host_packed + pk, base + b.offset,
               static_cast<std::size_t>(b.len));
    pk += b.len;
  }
  return {ctx.clock.now() - t0, host_packed, true};
}

PackOutcome pack_per_block_d2d(sg::HostContext& ctx,
                               const mpi::DatatypePtr& dt, std::int64_t count,
                               const void* dev_buf, std::byte* dev_packed) {
  const vt::Time t0 = ctx.clock.now();
  mpi::BlockCursor cur(dt, count);
  const auto* base = static_cast<const std::byte*>(dev_buf);
  std::int64_t pk = 0;
  mpi::Block b;
  while (cur.next(&b)) {
    sg::Memcpy(ctx, dev_packed + pk, base + b.offset,
               static_cast<std::size_t>(b.len));
    pk += b.len;
  }
  return {ctx.clock.now() - t0, dev_packed, false};
}

PackOutcome pack_gpu_kernel(core::GpuDatatypeEngine& eng,
                            const mpi::DatatypePtr& dt, std::int64_t count,
                            const void* dev_buf, std::byte* dev_packed) {
  sg::HostContext& ctx = eng.ctx();
  const vt::Time t0 = ctx.clock.now();
  auto op = eng.start(core::GpuDatatypeEngine::Dir::kPack, dt, count,
                      const_cast<void*>(dev_buf));
  vt::Time last = t0;
  while (!op->done()) {
    const auto res =
        eng.process_some(*op, dev_packed + op->bytes_done(),
                         dt->size() * count - op->bytes_done());
    if (res.bytes == 0) break;
    last = res.ready;
  }
  eng.finish(*op);
  ctx.clock.wait_until(last);
  return {ctx.clock.now() - t0, dev_packed, false};
}

}  // namespace gpuddt::base
