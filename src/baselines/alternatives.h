// The four design alternatives of Figure 1, as directly invokable
// pack-side strategies (used by bench_fig1_alternatives and the tests).
//
//  (a) copy the entire extent - gaps included - to host memory and let the
//      CPU datatype engine pack there;
//  (b) one cudaMemcpy D2H per contiguous block, packing into host memory;
//  (c) one cudaMemcpy D2D per contiguous block, packing into device
//      memory;
//  (d) a GPU pack kernel into a contiguous device buffer (the paper's
//      choice, Section 3).
//
// Every strategy produces the identical packed byte stream; they differ
// only in where the packed data lands and in virtual cost.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "mpi/datatype.h"
#include "simgpu/runtime.h"

namespace gpuddt::base {

struct PackOutcome {
  /// Virtual nanoseconds from start to packed-data-available.
  vt::Time elapsed = 0;
  /// Where the packed bytes ended up (host or device).
  std::byte* packed = nullptr;
  bool packed_on_host = false;
};

/// (a) Stage the whole extent (including gaps) to host, CPU-pack there.
PackOutcome pack_stage_whole(sg::HostContext& ctx, const mpi::DatatypePtr& dt,
                             std::int64_t count, const void* dev_buf,
                             std::byte* host_scratch, std::byte* host_packed);

/// (b) One D2H memcpy per contiguous block into a host buffer.
PackOutcome pack_per_block_d2h(sg::HostContext& ctx,
                               const mpi::DatatypePtr& dt, std::int64_t count,
                               const void* dev_buf, std::byte* host_packed);

/// (c) One D2D memcpy per contiguous block into a device buffer.
PackOutcome pack_per_block_d2d(sg::HostContext& ctx,
                               const mpi::DatatypePtr& dt, std::int64_t count,
                               const void* dev_buf, std::byte* dev_packed);

/// (d) GPU kernel pack into a device buffer (the paper's engine).
PackOutcome pack_gpu_kernel(core::GpuDatatypeEngine& eng,
                            const mpi::DatatypePtr& dt, std::int64_t count,
                            const void* dev_buf, std::byte* dev_packed);

}  // namespace gpuddt::base
