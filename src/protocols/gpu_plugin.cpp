#include "protocols/gpu_plugin.h"

#include <cstring>
#include <stdexcept>

#include "mpi/stream_triggered.h"
#include "obs/recorder.h"
#include "simgpu/staging.h"

namespace gpuddt::proto {

namespace {

using mpi::CtsHeader;
using mpi::FinHeader;
using mpi::FragHeader;
using mpi::RtsHeader;
using mpi::TransferMode;

/// Pack-ready notification: sender -> receiver, "fragment `frag_idx` of
/// `bytes` bytes is packed in staging slot frag_idx % depth" (the paper's
/// "unpack request").
struct FragReadyHeader {
  std::uint64_t recv_id = 0;
  std::uint64_t send_id = 0;
  std::int64_t frag_idx = 0;
  std::int64_t bytes = 0;
  std::uint8_t last = 0;
};

/// Fragment-free acknowledgment: receiver -> sender, "slot of `frag_idx`
/// may be reused".
struct FragFreeHeader {
  std::uint64_t send_id = 0;
  std::int64_t frag_idx = 0;
};

template <typename H>
std::vector<std::byte> make_payload(const H& h, std::size_t extra = 0) {
  std::vector<std::byte> v(sizeof(H) + extra);
  std::memcpy(v.data(), &h, sizeof(H));
  return v;
}

template <typename H>
H read_header(const mpi::AmMessage& m) {
  if (m.payload.size() < sizeof(H))
    throw std::runtime_error("gpu plugin: truncated AM payload");
  H h;
  std::memcpy(&h, m.payload.data(), sizeof(H));
  return h;
}

// Receiver-side unpack reads AM payload bytes in place; register the
// span for the duration of the handler (simgpu/staging.h).
using sg::ScopedStagingRegistration;

core::EngineConfig engine_config(const mpi::RuntimeConfig& cfg,
                                 std::int32_t trace_pid) {
  core::EngineConfig e;
  e.unit_bytes = cfg.dev_unit_bytes;
  e.cache_enabled = cfg.dev_cache_enabled;
  e.cache_max_bytes = cfg.dev_cache_max_bytes;
  e.kernel_blocks = cfg.gpu_kernel_blocks;
  e.pipeline_conversion = cfg.dev_pipeline_conversion;
  e.recorder = cfg.recorder;
  e.trace_pid = trace_pid;
  return e;
}

}  // namespace

// --- Per-request protocol state ----------------------------------------------

struct GpuDatatypePlugin::SendState : mpi::PluginState {
  std::unique_ptr<core::GpuDatatypeEngine::Op> op;
  TransferMode mode = TransferMode::kHostFrags;
  std::uint64_t recv_id = 0;
  std::int64_t frag_bytes = 0;
  int depth = 0;

  // kIpcRdma: device staging ring exposed to the receiver (GET mode) or
  // kept local with fragments pushed to `remote_ring` (PUT mode).
  std::byte* staging = nullptr;
  std::byte* remote_ring = nullptr;
  std::int64_t next_frag = 0;
  std::int64_t frags_sent = 0;
  std::int64_t acks = 0;
  bool all_packed = false;

  // kHostFrags: host bounce (zero-copy mapped) and optional GPU bounce.
  std::byte* host_bounce = nullptr;
  std::byte* gpu_bounce = nullptr;
  std::vector<vt::Time> slot_free;  // per-slot wire-read completion
};

struct GpuDatatypePlugin::RecvState : mpi::PluginState {
  std::unique_ptr<core::GpuDatatypeEngine::Op> op;
  TransferMode mode = TransferMode::kHostFrags;
  std::uint64_t send_id = 0;
  int src_rank = -1;

  // RDMA family.
  std::byte* remote = nullptr;  // sender staging ring or contiguous source
  bool put_mode = false;        // fragments arrive in MY local ring
  std::int64_t frag_bytes = 0;
  int depth = 0;
  std::byte* local_staging = nullptr;  // device-local bounce ring
  std::vector<vt::Time> slot_free;

  // kHostFrags.
  std::byte* gpu_bounce = nullptr;
  std::int64_t gpu_bounce_bytes = 0;

  std::int64_t bytes_done = 0;
  vt::Time last_ready = 0;
};

// --- Plumbing ---------------------------------------------------------------------

void GpuDatatypePlugin::attach(mpi::Runtime& rt) {
  h_frag_ready_ = rt.register_handler(
      [this](mpi::Process& p, mpi::AmMessage& m) { on_frag_ready(p, m); });
  h_frag_free_ = rt.register_handler(
      [this](mpi::Process& p, mpi::AmMessage& m) { on_frag_free(p, m); });
}

GpuDatatypePlugin::PerRank& GpuDatatypePlugin::per_rank(mpi::Process& p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = ranks_[p.rank()];
  if (!slot) {
    slot = std::make_unique<PerRank>();
    slot->engine = std::make_unique<core::GpuDatatypeEngine>(
        p.gpu(), engine_config(p.config(), p.rank()));
  }
  return *slot;
}

core::GpuDatatypeEngine& GpuDatatypePlugin::engine(mpi::Process& p) {
  return *per_rank(p).engine;
}

void* GpuDatatypePlugin::open_handle(mpi::Process& p,
                                     const sg::IpcMemHandle& h) {
  PerRank& pr = per_rank(p);
  const auto key = std::make_pair(h.device, h.offset);
  auto it = pr.ipc_cache.find(key);
  if (it != pr.ipc_cache.end()) {
    ++pr.stats.ipc_reuses;  // registration cache hit
    return it->second;
  }
  ++pr.stats.ipc_opens;
  void* ptr = sg::IpcOpenMemHandle(p.gpu(), h);
  pr.ipc_cache.emplace(key, ptr);
  return ptr;
}

// --- Explicit MPI_Pack-style API --------------------------------------------------------

std::int64_t GpuDatatypePlugin::pack(mpi::Process& p, const void* inbuf,
                                     std::int64_t count,
                                     const mpi::DatatypePtr& dt,
                                     std::span<std::byte> outbuf,
                                     std::int64_t* position) {
  const std::int64_t total = dt->size() * count;
  if (*position + total > static_cast<std::int64_t>(outbuf.size()))
    throw std::invalid_argument("pack: output buffer too small");
  std::byte* out = outbuf.data() + *position;
  // Standalone packs are flows of their own when the latency engine is
  // on: one PML request id per call keys the flow (and stamps the engine
  // spans), so explicit pack/unpack classes are directly comparable to
  // the "send" class in the latency report (docs/latency.md).
  obs::Recorder* rec = p.config().recorder;
  const bool track = rec != nullptr && rec->flowstats().enabled();
  const std::uint64_t id = track ? p.pml().allocate_id() : 0;
  const vt::Time begin = p.clock().now();
  if (p.runtime().machine().is_device_ptr(inbuf)) {
    core::GpuDatatypeEngine& eng = engine(p);
    auto op = eng.start(core::GpuDatatypeEngine::Dir::kPack, dt, count,
                        const_cast<void*>(inbuf));
    vt::Time last = p.clock().now();
    std::int64_t frag = 0;
    while (!op->done()) {
      if (track) op->set_flow(mpi::frag_flow(p.rank(), id, frag++));
      const auto r =
          eng.process_some(*op, out + op->bytes_done(), total);
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*op);
    p.clock().wait_until(last);
  } else {
    const mpi::PackStats st = mpi::cpu_pack(
        dt, count, inbuf,
        std::span<std::byte>(out, static_cast<std::size_t>(total)));
    p.pml().charge_cpu_pack(st);
  }
  if (track) {
    rec->flowstats().complete({mpi::frag_flow(p.rank(), id, 0), "pack",
                               dt->shape_digest(), total, begin,
                               p.clock().now(), 1});
  }
  *position += total;
  return total;
}

std::int64_t GpuDatatypePlugin::unpack(mpi::Process& p,
                                       std::span<const std::byte> inbuf,
                                       std::int64_t* position, void* outbuf,
                                       std::int64_t count,
                                       const mpi::DatatypePtr& dt) {
  const std::int64_t total = dt->size() * count;
  if (*position + total > static_cast<std::int64_t>(inbuf.size()))
    throw std::invalid_argument("unpack: input buffer too small");
  const std::byte* in = inbuf.data() + *position;
  obs::Recorder* rec = p.config().recorder;
  const bool track = rec != nullptr && rec->flowstats().enabled();
  const std::uint64_t id = track ? p.pml().allocate_id() : 0;
  const vt::Time begin = p.clock().now();
  if (p.runtime().machine().is_device_ptr(outbuf)) {
    core::GpuDatatypeEngine& eng = engine(p);
    auto op = eng.start(core::GpuDatatypeEngine::Dir::kUnpack, dt, count,
                        outbuf);
    vt::Time last = p.clock().now();
    std::int64_t frag = 0;
    while (!op->done()) {
      if (track) op->set_flow(mpi::frag_flow(p.rank(), id, frag++));
      const auto r = eng.process_some(
          *op, const_cast<std::byte*>(in) + op->bytes_done(), total);
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*op);
    p.clock().wait_until(last);
  } else {
    const mpi::PackStats st = mpi::cpu_unpack(
        dt, count,
        std::span<const std::byte>(in, static_cast<std::size_t>(total)),
        outbuf);
    p.pml().charge_cpu_pack(st);
  }
  if (track) {
    rec->flowstats().complete({mpi::frag_flow(p.rank(), id, 0), "unpack",
                               dt->shape_digest(), total, begin,
                               p.clock().now(), 1});
  }
  *position += total;
  return total;
}

// --- Sender side ---------------------------------------------------------------------

void GpuDatatypePlugin::send_start(mpi::Process& p, mpi::SendRequest& req) {
  const mpi::RuntimeConfig& cfg = p.config();

  // Small-message tier: pack into a zero-copy host buffer and ship one
  // eager AM - no handshake, no staging ring, no acks.
  if (req.total_bytes <= static_cast<std::int64_t>(cfg.gpu_eager_limit)) {
    core::GpuDatatypeEngine& eng = engine(p);
    auto* bounce = static_cast<std::byte*>(sg::HostAlloc(
        p.gpu(), static_cast<std::size_t>(req.total_bytes + 1), true));
    auto op = eng.start(core::GpuDatatypeEngine::Dir::kPack, req.dt,
                        req.count, const_cast<void*>(req.buf));
    vt::Time ready = p.clock().now();
    while (!op->done()) {
      const auto r = eng.process_some(*op, bounce + op->bytes_done(),
                                      req.total_bytes);
      if (r.bytes == 0) break;
      ready = r.ready;
    }
    eng.finish(*op);
    p.pml().send_packed_eager(
        req.env,
        std::span<const std::byte>(bounce,
                                   static_cast<std::size_t>(req.total_bytes)),
        ready);
    sg::HostFree(p.gpu(), bounce);
    obs::count(cfg.recorder, "gpu.sends.eager");
    p.pml().complete_send(req);
    return;
  }

  auto st = std::make_unique<SendState>();
  st->frag_bytes =
      std::max<std::int64_t>(static_cast<std::int64_t>(cfg.gpu_frag_bytes),
                             cfg.dev_unit_bytes);
  st->depth = std::max(1, cfg.gpu_pipeline_depth);

  RtsHeader rts;
  rts.env = req.env;
  rts.send_id = req.id;
  rts.total_bytes = req.total_bytes;
  rts.src_is_device = 1;
  rts.src_contiguous = req.dt->is_contiguous(req.count) ? 1 : 0;
  rts.src_device = req.space.device;
  rts.src_node = p.node();
  rts.frag_bytes = st->frag_bytes;
  rts.depth = st->depth;
  rts.sig_hash = req.dt->signature().hash();

  mpi::Btl& btl = p.runtime().btl_between(p.rank(), req.env.dst);
  if (btl.supports_gpu_rdma(p, req.env.dst) && req.total_bytes > 0 &&
      req.total_bytes <= btl.gpu_rdma_limit(p)) {
    if (rts.src_contiguous) {
      // Shortcut: expose the source buffer itself; the receiver drives
      // the whole transfer and fins us.
      rts.has_handle = 1;
      rts.handle =
          sg::IpcGetMemHandle(p.gpu(), const_cast<void*>(req.buf));
      rts.src_disp = req.dt->true_lb();
    } else {
      st->staging = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes) *
                                  static_cast<std::size_t>(st->depth)));
      rts.has_handle = 1;
      rts.handle = sg::IpcGetMemHandle(p.gpu(), st->staging);
    }
  }
  req.plugin = std::move(st);
  p.am_send(req.env.dst, mpi::Pml::rts_handler(), make_payload(rts));
  req.rts_sent = p.clock().now();
  obs::count(cfg.recorder, "gpu.sends.rendezvous");
}

void GpuDatatypePlugin::send_on_cts(mpi::Process& p, mpi::SendRequest& req,
                                    const CtsHeader& cts, vt::Time /*arrival*/) {
  auto* st = static_cast<SendState*>(req.plugin.get());
  if (st == nullptr)
    throw std::runtime_error("gpu plugin: CTS without send state");
  st->recv_id = cts.recv_id;
  st->mode = cts.mode;
  core::GpuDatatypeEngine& eng = engine(p);

  switch (cts.mode) {
    case TransferMode::kHostFrags: {
      // Receiver declined (or cannot do) RDMA: copy-in/out protocol.
      if (st->staging != nullptr) {
        sg::Free(p.gpu(), st->staging);
        st->staging = nullptr;
      }
      const mpi::RuntimeConfig& cfg = p.config();
      mpi::Btl& btl = p.runtime().btl_between(p.rank(), req.env.dst);
      std::int64_t frag = cts.frag_bytes > 0 ? cts.frag_bytes : st->frag_bytes;
      frag = std::min<std::int64_t>(
          frag, static_cast<std::int64_t>(btl.max_am_payload() -
                                          sizeof(FragHeader)));
      frag = std::max<std::int64_t>(frag, cfg.dev_unit_bytes);
      st->frag_bytes = frag;
      const std::size_t ring =
          static_cast<std::size_t>(frag) * static_cast<std::size_t>(st->depth);
      if (cfg.zero_copy) {
        st->host_bounce =
            static_cast<std::byte*>(sg::HostAlloc(p.gpu(), ring, true));
      } else {
        st->gpu_bounce = static_cast<std::byte*>(sg::Malloc(p.gpu(), ring));
        st->host_bounce =
            static_cast<std::byte*>(sg::HostAlloc(p.gpu(), ring, false));
      }
      st->slot_free.assign(static_cast<std::size_t>(st->depth), 0);
      st->op = eng.start(core::GpuDatatypeEngine::Dir::kPack, req.dt,
                         req.count, const_cast<void*>(req.buf));
      pump_host_send(p, req);
      return;
    }
    case TransferMode::kIpcRdma: {
      if (cts.has_handle) {
        // PUT mode: the receiver exposed its staging ring; we keep our
        // ring local and push each packed fragment across.
        st->remote_ring =
            static_cast<std::byte*>(open_handle(p, cts.handle));
        st->slot_free.assign(static_cast<std::size_t>(st->depth), 0);
      }
      st->op = eng.start(core::GpuDatatypeEngine::Dir::kPack, req.dt,
                         req.count, const_cast<void*>(req.buf));
      pump_rdma_send(p, req);
      return;
    }
    case TransferMode::kRdmaPackToRemote: {
      // Contiguous receiver exposed its destination: pack straight into
      // remote device memory, then fin the receiver.
      std::byte* remote_base =
          static_cast<std::byte*>(open_handle(p, cts.handle));
      std::byte* remote = remote_base + cts.remote_disp;
      st->op = eng.start(core::GpuDatatypeEngine::Dir::kPack, req.dt,
                         req.count, const_cast<void*>(req.buf));
      vt::Time last = 0;
      std::int64_t frag_idx = 0;
      while (!st->op->done()) {
        st->op->set_flow(mpi::frag_flow(p.rank(), req.id, frag_idx++));
        const auto res = eng.process_some(
            *st->op, remote + st->op->bytes_done(), st->frag_bytes);
        if (res.bytes == 0) break;
        last = res.ready;
      }
      eng.finish(*st->op);
      FinHeader fin;
      fin.req_id = cts.recv_id;
      fin.to_sender = 0;
      p.am_send(req.env.dst, mpi::Pml::fin_handler(), make_payload(fin),
                last);
      p.pml().complete_send(req);
      return;
    }
    case TransferMode::kStreamTriggered: {
      drive_stream_chain(p, req, cts);
      return;
    }
    case TransferMode::kRdmaRecvDriven:
      throw std::runtime_error(
          "gpu plugin: kRdmaRecvDriven must not produce a CTS");
  }
}

void GpuDatatypePlugin::drive_stream_chain(mpi::Process& p,
                                           mpi::SendRequest& req,
                                           const CtsHeader& cts) {
  auto* st = static_cast<SendState*>(req.plugin.get());
  if (st == nullptr || st->staging == nullptr)
    throw std::runtime_error("gpu plugin: stream chain without staging");
  core::GpuDatatypeEngine& eng = engine(p);
  obs::Recorder* rec = p.config().recorder;

  // The chain spans both ranks. The receiver pre-enqueued (and
  // pre-charged) its triggered GETs and unpack launches at CTS time, so
  // the whole per-fragment recurrence is resolved here in one forward
  // pass over stream/event dependencies: pack[f] waits its slot's
  // credit-return event, the GET waits the pack-ready event, the unpack
  // waits the GET, and the GET's completion event is the credit that
  // releases the sender slot for pack[f+depth]. No FragReady/FragFree
  // AMs, no host wakeups per fragment on either rank. Driving the
  // receiver's engine from this thread is safe under the cooperative
  // scheduler (streams and machine resources are internally locked), and
  // the triggered entry points never touch the receiver's host clock.
  mpi::Process& rp = p.runtime().process(req.env.dst);
  mpi::RecvRequest* rreq = rp.pml().find_recv(cts.recv_id);
  if (rreq == nullptr)
    throw std::runtime_error("gpu plugin: stream chain lost its recv");
  auto* rst = static_cast<RecvState*>(rreq->plugin.get());
  if (rst == nullptr || rst->mode != TransferMode::kStreamTriggered)
    throw std::runtime_error("gpu plugin: stream chain mode mismatch");
  core::GpuDatatypeEngine& reng = engine(rp);
  mpi::Btl& btl = p.runtime().btl_between(p.rank(), req.env.dst);

  st->op = eng.start(core::GpuDatatypeEngine::Dir::kPack, req.dt, req.count,
                     const_cast<void*>(req.buf));
  eng.stage_all(*st->op);  // full conversion charged now, at CTS time

  const int sdev = p.gpu().device;
  const int rdev = rp.gpu().device;
  const bool staged = rst->local_staging != nullptr;
  const int depth = std::max(1, st->depth);
  const int rdepth = std::max(1, rst->depth);
  const vt::Time chain_begin = p.clock().now();

  // Per-slot credits, resolved forward. scredit[s]: earliest the sender
  // may overwrite staging slot s (the consuming GET's - or, without local
  // staging, the unpack's - completion event crossed back to the sender's
  // timeline). rcredit[s]: earliest receiver ring slot s may be
  // overwritten (its previous unpack, same-device so free).
  std::vector<vt::Time> scredit(static_cast<std::size_t>(depth), 0);
  std::vector<vt::Time> rcredit(static_cast<std::size_t>(rdepth), 0);
  PerRank& rpr = per_rank(rp);
  std::int64_t frag = 0;
  vt::Time last_pack = 0;

  while (!st->op->done()) {
    const std::int64_t slot = frag % depth;
    const std::int64_t rslot = frag % rdepth;
    const std::uint64_t flow = mpi::frag_flow(p.rank(), req.id, frag);
    st->op->set_flow(flow);
    const auto res = eng.process_some(
        *st->op, st->staging + slot * st->frag_bytes, st->frag_bytes,
        scredit[static_cast<std::size_t>(slot)]);
    if (res.bytes == 0) break;
    last_pack = res.ready;
    // Pack-ready event, observed across the PCI-E switch by the
    // receiver's triggered queue.
    const vt::Time pack_ready =
        sg::EventReadyOn(p.gpu(), sg::Event{res.ready}, sdev, rdev);
    std::byte* unpack_src;
    vt::Time unpack_dep;
    vt::Time staged_at;
    if (staged) {
      std::byte* local = rst->local_staging + rslot * st->frag_bytes;
      const vt::Time t_start =
          std::max(pack_ready, rcredit[static_cast<std::size_t>(rslot)]);
      const vt::Time t_get = btl.rdma_get(
          rp, p.rank(), local, rst->remote + slot * st->frag_bytes,
          static_cast<std::size_t>(res.bytes), t_start);
      obs::trace(rec, {"rdma_frag", "gpu", t_start, t_get, rp.rank(),
                       res.bytes, rp.rank(), flow});
      unpack_src = local;
      unpack_dep = t_get;  // local DMA completion: same-device event
      staged_at = t_get;
      // The GET drained the sender slot; its completion event is the
      // credit (crossed back to the sender's device).
      scredit[static_cast<std::size_t>(slot)] =
          sg::EventReadyOn(p.gpu(), sg::Event{t_get}, rdev, sdev);
    } else {
      // Unpack straight out of the sender's ring (same device, or the
      // remote-read option): the slot stays busy until the unpack read
      // its last byte.
      unpack_src = rst->remote + slot * st->frag_bytes;
      unpack_dep = pack_ready;
      staged_at = pack_ready;
    }
    const auto rres = reng.process_triggered(*rst->op, unpack_src, res.bytes,
                                            unpack_dep, flow);
    if (rres.bytes != res.bytes)
      throw std::runtime_error("gpu plugin: stream chain size mismatch");
    rcredit[static_cast<std::size_t>(rslot)] = rres.ready;
    if (!staged) {
      scredit[static_cast<std::size_t>(slot)] =
          sg::EventReadyOn(p.gpu(), sg::Event{rres.ready}, rdev, sdev);
    }
    rst->bytes_done += res.bytes;
    rst->last_ready = rres.ready;
    ++rpr.stats.fragments;
    obs::count(rec, "pml.stream_triggered.frags");
    obs::count(rec, "pml.stream_triggered.frag.bytes", res.bytes);
    if (rpr.tracing)
      rpr.trace.push_back(FragTrace{frag, pack_ready, staged_at, rres.ready});
    ++frag;
  }
  if (!st->op->done() || rst->bytes_done != rreq->total_bytes)
    throw std::runtime_error("gpu plugin: stream chain incomplete");

  // One fin - the only AM after the rendezvous - sent as soon as the
  // whole chain is posted. It carries no data the receiver waits for: the
  // receiver blocks on its OWN last unpack event (it co-enqueued the
  // chain), so its completion lands at last_ready with no trailing wire
  // hop - the fin merely wakes its progress loop.
  FinHeader fin;
  fin.req_id = st->recv_id;
  fin.to_sender = 0;
  p.am_send(req.env.dst, mpi::Pml::fin_handler(), make_payload(fin));
  // Sender completion: the one remaining host wait is the chain's last
  // credit event - every pack done and the staging ring fully drained.
  vt::Time drained = last_pack;
  for (const vt::Time t : scredit) drained = std::max(drained, t);
  eng.finish(*st->op);
  p.clock().wait_until(drained);
  sg::Free(p.gpu(), st->staging);
  st->staging = nullptr;
  obs::count(rec, "pml.stream_triggered.sends");
  obs::trace(rec, {"stream_chain", "gpu", chain_begin, drained, p.rank(),
                   req.total_bytes, p.rank(), 0});
  p.pml().complete_send(req);
}

void GpuDatatypePlugin::pump_rdma_send(mpi::Process& p,
                                       mpi::SendRequest& req) {
  auto* st = static_cast<SendState*>(req.plugin.get());
  core::GpuDatatypeEngine& eng = engine(p);
  mpi::Btl& btl = p.runtime().btl_between(p.rank(), req.env.dst);
  while (!st->op->done() && st->frags_sent - st->acks < st->depth) {
    const std::int64_t slot = st->next_frag % st->depth;
    // In PUT mode the local slot is reusable once its last put completed.
    const vt::Time slot_dep =
        st->remote_ring != nullptr
            ? st->slot_free[static_cast<std::size_t>(slot)]
            : 0;
    st->op->set_flow(mpi::frag_flow(p.rank(), req.id, st->next_frag));
    const auto res =
        eng.process_some(*st->op, st->staging + slot * st->frag_bytes,
                         st->frag_bytes, slot_dep);
    if (res.bytes == 0) break;
    vt::Time notify_after = res.ready;
    if (st->remote_ring != nullptr) {
      // Push the packed fragment into the receiver's ring (one-sided).
      notify_after = btl.rdma_put(
          p, req.env.dst, st->remote_ring + slot * st->frag_bytes,
          st->staging + slot * st->frag_bytes,
          static_cast<std::size_t>(res.bytes), res.ready);
      st->slot_free[static_cast<std::size_t>(slot)] = notify_after;
    }
    FragReadyHeader h;
    h.recv_id = st->recv_id;
    h.send_id = req.id;
    h.frag_idx = st->next_frag;
    h.bytes = res.bytes;
    h.last = st->op->done() ? 1 : 0;
    p.am_send(req.env.dst, h_frag_ready_, make_payload(h), notify_after);
    ++st->next_frag;
    ++st->frags_sent;
  }
  if (st->op->done()) st->all_packed = true;
  maybe_complete_rdma_send(p, req);
}

void GpuDatatypePlugin::maybe_complete_rdma_send(mpi::Process& p,
                                                 mpi::SendRequest& req) {
  auto* st = static_cast<SendState*>(req.plugin.get());
  if (!st->all_packed || st->acks != st->frags_sent) return;
  core::GpuDatatypeEngine& eng = engine(p);
  eng.finish(*st->op);
  if (st->staging != nullptr) {
    sg::Free(p.gpu(), st->staging);
    st->staging = nullptr;
  }
  p.pml().complete_send(req);
}

void GpuDatatypePlugin::pump_host_send(mpi::Process& p,
                                       mpi::SendRequest& req) {
  auto* st = static_cast<SendState*>(req.plugin.get());
  core::GpuDatatypeEngine& eng = engine(p);
  const bool zero_copy = st->gpu_bounce == nullptr;

  if (req.total_bytes == 0) {
    FragHeader h;
    h.recv_id = st->recv_id;
    h.offset = 0;
    h.bytes = 0;
    h.last = 1;
    p.am_send(req.env.dst, mpi::Pml::frag_handler(), make_payload(h));
    eng.finish(*st->op);
    p.pml().complete_send(req);
    return;
  }

  while (!st->op->done()) {
    const std::int64_t slot = st->next_frag % st->depth;
    std::byte* gpu_slot =
        zero_copy ? nullptr : st->gpu_bounce + slot * st->frag_bytes;
    std::byte* host_slot = st->host_bounce + slot * st->frag_bytes;
    const std::int64_t offset = st->op->bytes_done();
    // Pack into the slot; reuse must wait until the previous occupant's
    // bytes were read onto the wire (virtual-time dependency).
    st->op->set_flow(mpi::frag_flow(p.rank(), req.id, st->next_frag));
    const auto res = eng.process_some(
        *st->op, zero_copy ? static_cast<void*>(host_slot)
                           : static_cast<void*>(gpu_slot),
        st->frag_bytes,
        st->slot_free[static_cast<std::size_t>(slot)]);
    if (res.bytes == 0) break;
    vt::Time ready = res.ready;
    if (!zero_copy) {
      // Explicit staging: D2H copy chained on the pack stream.
      ready = sg::MemcpyAsync(p.gpu(), host_slot, gpu_slot,
                              static_cast<std::size_t>(res.bytes),
                              eng.pack_stream());
    }
    FragHeader h;
    h.recv_id = st->recv_id;
    h.offset = offset;
    h.bytes = res.bytes;
    h.last = st->op->done() ? 1 : 0;
    auto payload = make_payload(h, static_cast<std::size_t>(res.bytes));
    std::memcpy(payload.data() + sizeof(FragHeader), host_slot,
                static_cast<std::size_t>(res.bytes));
    st->slot_free[static_cast<std::size_t>(slot)] = p.am_send(
        req.env.dst, mpi::Pml::frag_handler(), std::move(payload), ready);
    ++st->next_frag;
  }
  eng.finish(*st->op);
  if (st->host_bounce != nullptr) sg::HostFree(p.gpu(), st->host_bounce);
  if (st->gpu_bounce != nullptr) sg::Free(p.gpu(), st->gpu_bounce);
  st->host_bounce = nullptr;
  st->gpu_bounce = nullptr;
  p.pml().complete_send(req);
}

// --- Receiver side ----------------------------------------------------------------------

void GpuDatatypePlugin::recv_start(mpi::Process& p, mpi::RecvRequest& req,
                                   const RtsHeader& rts, vt::Time arrival) {
  const mpi::RuntimeConfig& cfg = p.config();
  req.total_bytes = rts.total_bytes;
  const bool my_dev = req.space.space == sg::MemorySpace::kDevice;

  if (!my_dev) {
    // Host destination: behave exactly like the host rendezvous receiver;
    // the (GPU) sender will stream host-packed fragments.
    req.cursor = mpi::BlockCursor(req.dt, req.count);
    CtsHeader cts;
    cts.send_id = rts.send_id;
    cts.recv_id = req.id;
    cts.mode = TransferMode::kHostFrags;
    cts.frag_bytes = static_cast<std::int64_t>(cfg.frag_bytes);
    p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
    req.cts_sent = p.clock().now();
    obs::count(cfg.recorder, "gpu.mode.host_frags");
    return;
  }

  auto st = std::make_unique<RecvState>();
  st->send_id = rts.send_id;
  st->src_rank = rts.env.src;
  core::GpuDatatypeEngine& eng = engine(p);
  mpi::Btl& btl = p.runtime().btl_between(p.rank(), rts.env.src);
  const bool rdma = rts.src_is_device && rts.has_handle &&
                    btl.supports_gpu_rdma(p, rts.env.src) &&
                    rts.total_bytes > 0 &&
                    rts.total_bytes <= btl.gpu_rdma_limit(p);

  if (!rdma) {
    // Copy-in/out receive side.
    st->mode = TransferMode::kHostFrags;
    st->frag_bytes = std::max<std::int64_t>(
        std::min<std::int64_t>(
            static_cast<std::int64_t>(cfg.gpu_frag_bytes),
            static_cast<std::int64_t>(btl.max_am_payload() -
                                      sizeof(FragHeader))),
        cfg.dev_unit_bytes);
    st->op = eng.start(core::GpuDatatypeEngine::Dir::kUnpack, req.dt,
                       req.count, req.buf);
    if (!cfg.zero_copy) {
      st->gpu_bounce_bytes = st->frag_bytes;
      st->gpu_bounce = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes)));
    }
    CtsHeader cts;
    cts.send_id = rts.send_id;
    cts.recv_id = req.id;
    cts.mode = TransferMode::kHostFrags;
    cts.frag_bytes = st->frag_bytes;
    cts.depth = cfg.gpu_pipeline_depth;
    req.plugin = std::move(st);
    p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
    req.cts_sent = p.clock().now();
    obs::count(cfg.recorder, "gpu.mode.host_frags");
    return;
  }

  if (rts.src_contiguous) {
    // Receiver-driven GET from the exposed contiguous source.
    st->mode = TransferMode::kRdmaRecvDriven;
    st->remote = static_cast<std::byte*>(open_handle(p, rts.handle)) +
                 rts.src_disp;
    st->frag_bytes = rts.frag_bytes;
    st->depth = rts.depth;
    req.plugin = std::move(st);
    obs::count(cfg.recorder, "gpu.mode.rdma_recv_driven");
    drive_recv_from_contiguous(p, req, arrival);
    return;
  }

  if (req.dt->is_contiguous(req.count)) {
    // Shortcut: expose my destination; the sender packs into it directly.
    st->mode = TransferMode::kRdmaPackToRemote;
    CtsHeader cts;
    cts.send_id = rts.send_id;
    cts.recv_id = req.id;
    cts.mode = TransferMode::kRdmaPackToRemote;
    cts.has_handle = 1;
    cts.handle = sg::IpcGetMemHandle(p.gpu(), req.buf);
    cts.remote_disp = req.dt->true_lb();
    cts.frag_bytes = rts.frag_bytes;
    req.plugin = std::move(st);
    PerRank& pr = per_rank(p);
    ++pr.stats.rdma_pack_remote;
    pr.stats.bytes_received += rts.total_bytes;
    p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
    req.cts_sent = p.clock().now();
    obs::count(cfg.recorder, "gpu.mode.rdma_pack_remote");
    return;  // completion arrives as a fin
  }

  // Full pipelined RDMA protocol.
  st->frag_bytes = rts.frag_bytes;
  st->depth = rts.depth;
  st->op = eng.start(core::GpuDatatypeEngine::Dir::kUnpack, req.dt,
                     req.count, req.buf);

  if (mpi::stream_triggered_enabled(cfg.stream_triggered) &&
      !cfg.rdma_put_mode) {
    // Stream-triggered chain (docs/protocols.md): this CTS is the last
    // per-message host work on this rank until the sender's fin. The
    // whole conversion is staged and uploaded now, the ring is allocated
    // now, and the host charge for posting every triggered GET and unpack
    // launch of the chain lands here - the chain driver (sender side,
    // drive_stream_chain) then resolves the per-fragment recurrence
    // purely through stream/event dependencies.
    st->mode = TransferMode::kStreamTriggered;
    eng.stage_all(*st->op);
    st->remote = static_cast<std::byte*>(open_handle(p, rts.handle));
    if (cfg.recv_local_staging && rts.src_device != p.gpu().device) {
      st->local_staging = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes) *
                                  static_cast<std::size_t>(st->depth)));
      st->slot_free.assign(static_cast<std::size_t>(st->depth), 0);
    }
    const std::int64_t nfrags =
        (rts.total_bytes + st->frag_bytes - 1) / st->frag_bytes;
    const bool local_staged = st->local_staging != nullptr;
    CtsHeader cts;
    cts.send_id = rts.send_id;
    cts.recv_id = req.id;
    cts.mode = TransferMode::kStreamTriggered;
    cts.frag_bytes = st->frag_bytes;
    cts.depth = st->depth;
    req.plugin = std::move(st);
    p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
    req.cts_sent = p.clock().now();
    // Posting charge for the chain: one triggered launch (and one GET
    // post, when staging locally) per fragment. Charged after the CTS is
    // on the wire - the posting overlaps the CTS flight and the sender's
    // own staging, exactly the overlap the offloaded path exists for -
    // but still at rendezvous time: the host never wakes per fragment.
    const vt::Time enq = p.gpu().cost().enqueue_ns;
    const vt::Time t0 = p.clock().now();
    p.clock().advance(static_cast<vt::Time>(nfrags) * enq *
                      (local_staged ? 2 : 1));
    obs::count(cfg.recorder, "pml.stream_triggered.recvs");
    obs::observe(cfg.recorder, "pml.stream_triggered.enqueue_ns",
                 p.clock().now() - t0);
    obs::trace(cfg.recorder, {"chain_enqueue", "gpu", t0, p.clock().now(),
                              p.rank(), nfrags, p.rank(), 0});
    obs::count(cfg.recorder, "gpu.mode.stream_triggered");
    return;  // completion arrives as the sender's fin (recv_fin)
  }

  st->mode = TransferMode::kIpcRdma;
  CtsHeader cts;
  cts.send_id = rts.send_id;
  cts.recv_id = req.id;
  cts.mode = TransferMode::kIpcRdma;
  cts.frag_bytes = st->frag_bytes;
  cts.depth = st->depth;
  if (cfg.rdma_put_mode) {
    // PUT mode: expose MY staging ring; the sender pushes fragments in.
    st->put_mode = true;
    st->local_staging = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes) *
                                static_cast<std::size_t>(st->depth)));
    cts.has_handle = 1;
    cts.handle = sg::IpcGetMemHandle(p.gpu(), st->local_staging);
  } else {
    st->remote = static_cast<std::byte*>(open_handle(p, rts.handle));
    if (cfg.recv_local_staging && rts.src_device != p.gpu().device) {
      st->local_staging = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes) *
                                  static_cast<std::size_t>(st->depth)));
      st->slot_free.assign(static_cast<std::size_t>(st->depth), 0);
    }
  }
  req.plugin = std::move(st);
  p.am_send(rts.env.src, mpi::Pml::cts_handler(), make_payload(cts));
  req.cts_sent = p.clock().now();
  obs::count(cfg.recorder, "gpu.mode.ipc_rdma");
}

void GpuDatatypePlugin::drive_recv_from_contiguous(mpi::Process& p,
                                                   mpi::RecvRequest& req,
                                                   vt::Time arrival) {
  auto* st = static_cast<RecvState*>(req.plugin.get());
  core::GpuDatatypeEngine& eng = engine(p);
  mpi::Btl& btl = p.runtime().btl_between(p.rank(), st->src_rank);
  const mpi::RuntimeConfig& cfg = p.config();
  const sg::PtrAttributes remote_attr = p.runtime().machine().query(st->remote);
  const bool same_device = remote_attr.space == sg::MemorySpace::kDevice &&
                           remote_attr.device == p.gpu().device;
  if (!req.dt->is_contiguous(req.count) && st->op == nullptr) {
    st->op = eng.start(core::GpuDatatypeEngine::Dir::kUnpack, req.dt,
                       req.count, req.buf);
  }
  vt::Time last = arrival;

  if (req.dt->is_contiguous(req.count)) {
    // Contiguous on both ends: one big one-sided get into place. The
    // single GET is the whole flow, so it must carry the frag-flow id -
    // without this span the latency engine has no time window for the
    // contiguous-send class and would count the flow dropped.
    auto* dst = static_cast<std::byte*>(req.buf) + req.dt->true_lb();
    const vt::Time t_start = std::max(arrival, p.clock().now());
    if (same_device) {
      last = sg::TimedCopy(p.gpu(), dst, st->remote,
                           static_cast<std::size_t>(req.total_bytes),
                           t_start, "recv_contig_get");
    } else {
      last = btl.rdma_get(p, st->src_rank, dst, st->remote,
                          static_cast<std::size_t>(req.total_bytes), t_start);
    }
    obs::trace(cfg.recorder,
               {"rdma_frag", "gpu", t_start, last, p.rank(), req.total_bytes,
                p.rank(), mpi::frag_flow(st->src_rank, st->send_id, 0)});
  } else if (same_device || !cfg.recv_local_staging) {
    // Unpack straight out of the exposed source (fast when same device,
    // the slower remote-read option otherwise).
    std::int64_t idx = 0;
    while (st->op->bytes_done() < req.total_bytes) {
      const std::int64_t n = std::min<std::int64_t>(
          st->frag_bytes, req.total_bytes - st->op->bytes_done());
      st->op->set_flow(mpi::frag_flow(st->src_rank, st->send_id, idx++));
      const auto res = eng.process_some(
          *st->op, st->remote + st->op->bytes_done(), n, arrival);
      if (res.bytes == 0) break;
      last = res.ready;
    }
    eng.finish(*st->op);
  } else {
    // Pipelined: get fragments into a local ring, unpack behind the gets.
    st->local_staging = static_cast<std::byte*>(
        sg::Malloc(p.gpu(), static_cast<std::size_t>(st->frag_bytes) *
                                static_cast<std::size_t>(st->depth)));
    st->slot_free.assign(static_cast<std::size_t>(st->depth), 0);
    std::int64_t idx = 0;
    while (st->op->bytes_done() < req.total_bytes) {
      const std::int64_t slot = idx % st->depth;
      std::byte* local = st->local_staging + slot * st->frag_bytes;
      const std::int64_t n = std::min<std::int64_t>(
          st->frag_bytes, req.total_bytes - st->op->bytes_done());
      const std::uint64_t flow =
          mpi::frag_flow(st->src_rank, st->send_id, idx);
      st->op->set_flow(flow);
      const vt::Time t_start =
          std::max({arrival, p.clock().now(),
                    st->slot_free[static_cast<std::size_t>(slot)]});
      const vt::Time t_get =
          btl.rdma_get(p, st->src_rank, local,
                       st->remote + st->op->bytes_done(),
                       static_cast<std::size_t>(n), t_start);
      obs::trace(cfg.recorder, {"rdma_frag", "gpu", t_start, t_get,
                                p.rank(), n, p.rank(), flow});
      const auto res = eng.process_some(*st->op, local, n, t_get);
      st->slot_free[static_cast<std::size_t>(slot)] = res.ready;
      last = res.ready;
      ++idx;
      if (res.bytes == 0) break;
    }
    eng.finish(*st->op);
    sg::Free(p.gpu(), st->local_staging);
    st->local_staging = nullptr;
  }

  p.clock().wait_until(last);
  PerRank& pr = per_rank(p);
  ++pr.stats.rdma_recv_driven;
  pr.stats.bytes_received += req.total_bytes;
  FinHeader fin;
  fin.req_id = st->send_id;
  fin.to_sender = 1;
  p.am_send(st->src_rank, mpi::Pml::fin_handler(), make_payload(fin), last);
  p.pml().complete_recv(req);
}

void GpuDatatypePlugin::on_frag_ready(mpi::Process& p, mpi::AmMessage& m) {
  const FragReadyHeader h = read_header<FragReadyHeader>(m);
  mpi::RecvRequest* req = p.pml().find_recv(h.recv_id);
  if (req == nullptr)
    throw std::runtime_error("gpu plugin: frag-ready for unknown recv");
  auto* st = static_cast<RecvState*>(req->plugin.get());
  core::GpuDatatypeEngine& eng = engine(p);
  mpi::Btl& btl = p.runtime().btl_between(p.rank(), st->src_rank);
  const std::int64_t slot = h.frag_idx % st->depth;
  // Same pure function of (src rank, send id, frag idx) the sender used,
  // so this fragment's unpack spans join its cross-rank flow chain.
  const std::uint64_t flow =
      mpi::frag_flow(st->src_rank, h.send_id, h.frag_idx);
  st->op->set_flow(flow);

  vt::Time ack_after;
  if (st->put_mode) {
    // The fragment was pushed into my local ring; just unpack it. The
    // ack releases the RECEIVER-side slot for the sender's next put.
    const auto res = eng.process_some(
        *st->op, st->local_staging + slot * st->frag_bytes, h.bytes,
        p.clock().now());
    if (res.bytes != h.bytes)
      throw std::runtime_error("gpu plugin: fragment size mismatch");
    st->last_ready = res.ready;
    ack_after = res.ready;
  } else if (st->local_staging != nullptr) {
    const std::byte* remote_slot = st->remote + slot * st->frag_bytes;
    // GET into the local ring, then unpack locally; the sender slot is
    // free as soon as the get completed.
    std::byte* local = st->local_staging + slot * st->frag_bytes;
    const vt::Time t_get = btl.rdma_get(
        p, st->src_rank, local, remote_slot,
        static_cast<std::size_t>(h.bytes),
        std::max(p.clock().now(),
                 st->slot_free[static_cast<std::size_t>(slot)]));
    const auto res = eng.process_some(*st->op, local, h.bytes, t_get);
    if (res.bytes != h.bytes)
      throw std::runtime_error("gpu plugin: fragment size mismatch");
    st->slot_free[static_cast<std::size_t>(slot)] = res.ready;
    st->last_ready = res.ready;
    ack_after = t_get;
  } else {
    // Unpack straight from the sender's staging (same device, or the
    // remote-read option); the slot is busy until the kernel finished.
    const std::byte* remote_slot = st->remote + slot * st->frag_bytes;
    const auto res = eng.process_some(
        *st->op, const_cast<std::byte*>(remote_slot), h.bytes,
        p.clock().now());
    if (res.bytes != h.bytes)
      throw std::runtime_error("gpu plugin: fragment size mismatch");
    st->last_ready = res.ready;
    ack_after = res.ready;
  }
  st->bytes_done += h.bytes;
  {
    PerRank& pr = per_rank(p);
    ++pr.stats.fragments;
    if (pr.tracing) {
      pr.trace.push_back(FragTrace{h.frag_idx, m.arrival,
                                   st->local_staging != nullptr ? ack_after
                                                                : m.arrival,
                                   st->last_ready});
    }
  }
  {
    // The pipelined-RDMA fragments bypass Pml::on_frag, so the per-frag
    // rendezvous latencies are recorded here.
    obs::Recorder* rec = p.config().recorder;
    obs::count(rec, "pml.frags");
    obs::count(rec, "pml.frag.bytes", h.bytes);
    if (req->first_frag_arrival == 0) {
      req->first_frag_arrival = m.arrival;
      if (req->cts_sent > 0)
        obs::observe(rec, "pml.cts_to_first_frag_ns",
                     m.arrival - req->cts_sent);
    } else if (m.arrival >= req->last_frag_arrival) {
      obs::observe(rec, "pml.frag_gap_ns",
                   m.arrival - req->last_frag_arrival);
    }
    req->last_frag_arrival = m.arrival;
    obs::observe(rec, "gpu.frag.unpack_ns", st->last_ready - m.arrival);
    obs::trace(rec, {"rdma_frag", "gpu", m.arrival, st->last_ready,
                     p.rank(), h.bytes, p.rank(), flow});
  }

  FragFreeHeader ack;
  ack.send_id = st->send_id;
  ack.frag_idx = h.frag_idx;
  p.am_send(st->src_rank, h_frag_free_, make_payload(ack), ack_after);

  if (h.last) {
    if (st->bytes_done != req->total_bytes)
      throw std::runtime_error("gpu plugin: RDMA stream size mismatch");
    eng.finish(*st->op);
    if (st->local_staging != nullptr) {
      sg::Free(p.gpu(), st->local_staging);
      st->local_staging = nullptr;
    }
    PerRank& pr = per_rank(p);
    ++pr.stats.rdma_pipelined;
    pr.stats.bytes_received += st->bytes_done;
    p.clock().wait_until(st->last_ready);
    p.pml().complete_recv(*req);
  }
}

void GpuDatatypePlugin::on_frag_free(mpi::Process& p, mpi::AmMessage& m) {
  const FragFreeHeader h = read_header<FragFreeHeader>(m);
  mpi::SendRequest* req = p.pml().find_send(h.send_id);
  if (req == nullptr)
    throw std::runtime_error("gpu plugin: frag-free for unknown send");
  auto* st = static_cast<SendState*>(req->plugin.get());
  ++st->acks;
  if (!st->all_packed) pump_rdma_send(p, *req);
  maybe_complete_rdma_send(p, *req);
}

void GpuDatatypePlugin::recv_on_frag(mpi::Process& p, mpi::RecvRequest& req,
                                     const FragHeader& hdr,
                                     std::span<const std::byte> data,
                                     vt::Time arrival) {
  auto* st = static_cast<RecvState*>(req.plugin.get());
  if (st == nullptr || st->mode != TransferMode::kHostFrags)
    throw std::runtime_error("gpu plugin: unexpected host fragment");
  core::GpuDatatypeEngine& eng = engine(p);
  if (hdr.offset != st->bytes_done)
    throw std::runtime_error("gpu plugin: out-of-order fragment");
  // Pml::on_frag computed this fragment's flow id before dispatching here
  // - but only a rendezvous carries the sender's request id. A fragment
  // stream without an RTS-carried send_id (peer_send_id 0) would
  // fabricate a flow that collides across that peer's sends and draw
  // wrong/dangling Perfetto arrows; stamp those spans flow-less instead.
  const std::uint64_t frag_flow_id =
      req.peer_send_id != 0 ? req.last_flow : 0;
  st->op->set_flow(frag_flow_id);

  if (hdr.bytes > 0) {
    ScopedStagingRegistration staging(p.runtime().machine(), data.data(),
                                      static_cast<std::size_t>(hdr.bytes));
    if (st->gpu_bounce != nullptr) {
      // Explicit copy-in: H2D staging, then unpack from device memory.
      if (hdr.bytes > st->gpu_bounce_bytes)
        throw std::runtime_error("gpu plugin: fragment exceeds bounce");
      const vt::Time t_h2d = sg::MemcpyAsync(
          p.gpu(), st->gpu_bounce, data.data(),
          static_cast<std::size_t>(hdr.bytes), eng.pack_stream());
      const auto res =
          eng.process_some(*st->op, st->gpu_bounce, hdr.bytes, t_h2d);
      if (res.bytes != hdr.bytes)
        throw std::runtime_error("gpu plugin: fragment size mismatch");
      st->last_ready = res.ready;
    } else {
      // Zero-copy: the unpack kernel reads the arrived host bytes over
      // PCI-E directly (UMA mapping).
      const auto res = eng.process_some(
          *st->op, const_cast<std::byte*>(data.data()), hdr.bytes, arrival);
      if (res.bytes != hdr.bytes)
        throw std::runtime_error("gpu plugin: fragment size mismatch");
      st->last_ready = res.ready;
    }
    st->bytes_done += hdr.bytes;
    PerRank& pr = per_rank(p);
    ++pr.stats.fragments;
    if (pr.tracing) {
      pr.trace.push_back(
          FragTrace{hdr.offset / std::max<std::int64_t>(1, st->frag_bytes),
                    arrival, arrival, st->last_ready});
    }
    // Arrival gaps were recorded by Pml::on_frag before dispatching here;
    // add the device-side unpack latency of this fragment.
    obs::observe(p.config().recorder, "gpu.frag.unpack_ns",
                 st->last_ready - arrival);
    obs::trace(p.config().recorder,
               {"host_frag_unpack", "gpu", arrival, st->last_ready, p.rank(),
                hdr.bytes, p.rank(), frag_flow_id});
  }

  if (hdr.last) {
    if (st->bytes_done != req.total_bytes)
      throw std::runtime_error("gpu plugin: fragment stream size mismatch");
    PerRank& pr = per_rank(p);
    ++pr.stats.host_staged;
    pr.stats.bytes_received += st->bytes_done;
    eng.finish(*st->op);
    if (st->gpu_bounce != nullptr) {
      sg::Free(p.gpu(), st->gpu_bounce);
      st->gpu_bounce = nullptr;
    }
    p.clock().wait_until(st->last_ready);
    p.pml().complete_recv(req);
  }
}

void GpuDatatypePlugin::recv_eager(mpi::Process& p, mpi::RecvRequest& req,
                                   std::span<const std::byte> data,
                                   vt::Time arrival) {
  core::GpuDatatypeEngine& eng = engine(p);
  auto op = eng.start(core::GpuDatatypeEngine::Dir::kUnpack, req.dt,
                      req.count, req.buf);
  // Eager messages skip the rendezvous, so there is no RTS-carried
  // send_id to derive a cross-rank frag_flow from; stamp the unpack
  // spans flow-less explicitly rather than fabricating a colliding id.
  op->set_flow(0);
  vt::Time last = arrival;
  if (!data.empty()) {
    ScopedStagingRegistration staging(p.runtime().machine(), data.data(),
                                      data.size());
    const auto res = eng.process_some(
        *op, const_cast<std::byte*>(data.data()),
        static_cast<std::int64_t>(data.size()), arrival);
    if (res.bytes != static_cast<std::int64_t>(data.size()))
      throw std::runtime_error("gpu plugin: eager unpack size mismatch");
    last = res.ready;
  }
  eng.finish(*op);
  req.total_bytes = static_cast<std::int64_t>(data.size());
  PerRank& pr = per_rank(p);
  ++pr.stats.eager_unpacks;
  pr.stats.bytes_received += req.total_bytes;
  p.clock().wait_until(last);
  p.pml().complete_recv(req);
}

void GpuDatatypePlugin::recv_fin(mpi::Process& p, mpi::RecvRequest& req,
                                 vt::Time arrival) {
  auto* st = static_cast<RecvState*>(req.plugin.get());
  if (st == nullptr || st->mode != TransferMode::kStreamTriggered) return;
  // First host wakeup this transfer caused on the receiving rank since
  // the CTS: the chain driver already moved every byte and resolved
  // every kernel's virtual time through the triggered entry points.
  core::GpuDatatypeEngine& eng = engine(p);
  eng.finish(*st->op);
  if (st->local_staging != nullptr) {
    sg::Free(p.gpu(), st->local_staging);
    st->local_staging = nullptr;
  }
  PerRank& pr = per_rank(p);
  ++pr.stats.stream_triggered;
  pr.stats.bytes_received += st->bytes_done;
  obs::trace(p.config().recorder,
             {"stream_chain", "gpu", req.cts_sent, st->last_ready, p.rank(),
              st->bytes_done, p.rank(), 0});
  p.clock().wait_until(std::max(arrival, st->last_ready));
}

}  // namespace gpuddt::proto
