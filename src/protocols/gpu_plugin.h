// GPU transfer protocols - Section 4 of the paper.
//
// GpuDatatypePlugin is the integration of the GPU datatype engine with the
// PML/BTL stack. It implements:
//
//  * Pipelined RDMA protocol (Section 4.1, TransferMode::kIpcRdma):
//    one-time RDMA connection (IPC memory-handle exchange with a
//    registration cache), BTL-level Active Messages, a receiver-driven GET
//    with fragment-indexed pack / unpack-ready / fragment-free messages so
//    sender packing, wire transfer and receiver unpacking proceed
//    concurrently over a ring of `depth` staging slots.
//    Handshake shortcuts: a contiguous sender exposes its source buffer
//    and the receiver drives the whole transfer (kRdmaRecvDriven); a
//    contiguous receiver exposes its destination and the sender packs
//    straight into remote memory (kRdmaPackToRemote).
//
//  * Copy-in/copy-out protocol (Section 4.2, TransferMode::kHostFrags):
//    when IPC / GPUDirect is unavailable (different nodes, or disabled),
//    packed fragments are staged through host memory - by default through
//    zero-copy UMA-mapped bounce buffers so the device<->host movement is
//    done "by hardware" and overlaps the pack/unpack kernels - and shipped
//    as ordinary PML fragments, interoperating with host-side peers.
//
// The receiver picks the mode in its CTS, exactly like the paper's GET
// handshake.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"

namespace gpuddt::proto {

/// Per-rank transfer statistics: which protocol handled each message, the
/// payload volume, and registration-cache behaviour. Read from the owning
/// rank's thread, or after run() returns.
struct TransferStats {
  std::int64_t rdma_pipelined = 0;     // kIpcRdma transfers completed
  std::int64_t rdma_recv_driven = 0;   // contiguous-sender shortcut
  std::int64_t rdma_pack_remote = 0;   // contiguous-receiver shortcut (CTS'd)
  std::int64_t stream_triggered = 0;   // kStreamTriggered chains completed
  std::int64_t host_staged = 0;        // copy-in/out transfers completed
  std::int64_t eager_unpacks = 0;      // small host->device eager messages
  std::int64_t bytes_received = 0;     // packed payload bytes received
  std::int64_t fragments = 0;          // pipeline fragments processed
  std::int64_t ipc_opens = 0;          // registration-cache misses
  std::int64_t ipc_reuses = 0;         // registration-cache hits
};

class GpuDatatypePlugin : public mpi::GpuTransferPlugin {
 public:
  GpuDatatypePlugin() = default;

  void attach(mpi::Runtime& rt) override;
  void send_start(mpi::Process& p, mpi::SendRequest& req) override;
  void send_on_cts(mpi::Process& p, mpi::SendRequest& req,
                   const mpi::CtsHeader& cts, vt::Time arrival) override;
  void recv_start(mpi::Process& p, mpi::RecvRequest& req,
                  const mpi::RtsHeader& rts, vt::Time arrival) override;
  void recv_on_frag(mpi::Process& p, mpi::RecvRequest& req,
                    const mpi::FragHeader& hdr,
                    std::span<const std::byte> data, vt::Time arrival) override;
  void recv_eager(mpi::Process& p, mpi::RecvRequest& req,
                  std::span<const std::byte> data, vt::Time arrival) override;
  void recv_fin(mpi::Process& p, mpi::RecvRequest& req,
                vt::Time arrival) override;

  /// The per-rank GPU datatype engine (created lazily from that rank's
  /// thread; also used directly by benchmarks).
  core::GpuDatatypeEngine& engine(mpi::Process& p);

  /// MPI_Pack-style explicit packing: gather `count` elements of `dt`
  /// from `inbuf` into `outbuf` starting at byte *position (updated on
  /// return). Device-resident `inbuf` uses the GPU engine; host buffers
  /// the CPU engine. Returns the bytes packed.
  std::int64_t pack(mpi::Process& p, const void* inbuf, std::int64_t count,
                    const mpi::DatatypePtr& dt, std::span<std::byte> outbuf,
                    std::int64_t* position);

  /// MPI_Unpack-style inverse: scatter from `inbuf` at *position into
  /// `outbuf` laid out as (dt, count).
  std::int64_t unpack(mpi::Process& p, std::span<const std::byte> inbuf,
                      std::int64_t* position, void* outbuf,
                      std::int64_t count, const mpi::DatatypePtr& dt);

  /// This rank's receiver-side protocol statistics.
  const TransferStats& stats(mpi::Process& p) { return per_rank(p).stats; }

  /// Per-fragment virtual-time intervals of a pipelined receive, captured
  /// when tracing is enabled: evidence of the Section 4.1 overlap (while
  /// the sender packs fragment k+1, fragment k is in flight or being
  /// unpacked).
  struct FragTrace {
    std::int64_t frag = 0;
    vt::Time packed_and_wired = 0;  // sender pack + notification arrival
    vt::Time staged = 0;            // one-sided get into local staging
    vt::Time unpacked = 0;          // unpack kernel completion
  };
  void enable_tracing(mpi::Process& p) { per_rank(p).tracing = true; }
  const std::vector<FragTrace>& trace(mpi::Process& p) {
    return per_rank(p).trace;
  }

 private:
  struct PerRank {
    std::unique_ptr<core::GpuDatatypeEngine> engine;
    TransferStats stats;
    bool tracing = false;
    std::vector<FragTrace> trace;
    /// CUDA IPC registration cache: opened handles, keyed by
    /// (device, offset) - the paper's one-time RDMA connection.
    std::map<std::pair<int, std::uint64_t>, void*> ipc_cache;
  };

  struct SendState;
  struct RecvState;

  PerRank& per_rank(mpi::Process& p);
  void* open_handle(mpi::Process& p, const sg::IpcMemHandle& h);

  /// Pack and publish fragments while the staging window has room
  /// (kIpcRdma sender side).
  void pump_rdma_send(mpi::Process& p, mpi::SendRequest& req);
  /// kStreamTriggered sender side: enqueue the ENTIRE per-fragment
  /// pack -> RDMA GET -> unpack -> credit chain at CTS time as
  /// stream/event dependencies, resolved by one forward pass - no
  /// FragReady/FragFree AMs, no per-fragment host wakeups on either rank.
  void drive_stream_chain(mpi::Process& p, mpi::SendRequest& req,
                          const mpi::CtsHeader& cts);
  /// Receiver-driven GET transfer from a contiguous exposed source
  /// (kRdmaRecvDriven).
  void drive_recv_from_contiguous(mpi::Process& p, mpi::RecvRequest& req,
                                  vt::Time arrival);
  /// Stage-and-ship loop for the copy-in/out sender.
  void pump_host_send(mpi::Process& p, mpi::SendRequest& req);
  void maybe_complete_rdma_send(mpi::Process& p, mpi::SendRequest& req);

  // AM handlers (protocol-private messages).
  void on_frag_ready(mpi::Process& p, mpi::AmMessage& m);
  void on_frag_free(mpi::Process& p, mpi::AmMessage& m);

  int h_frag_ready_ = -1;
  int h_frag_free_ = -1;

  std::mutex mu_;
  std::unordered_map<int, std::unique_ptr<PerRank>> ranks_;
};

}  // namespace gpuddt::proto
