// Measurement harness shared by the benchmark binaries and the
// timing-model tests: virtual-time ping-pong between two ranks, and
// pack/unpack micro-measurements against a single engine (the paper's
// Section 5.1 methodology). All results are virtual nanoseconds from the
// simulation's calibrated cost model.
#pragma once

#include <cstdint>
#include <memory>

#include "core/engine.h"
#include "mpi/pml.h"
#include "mpi/runtime.h"

namespace gpuddt::harness {

// --- Ping-pong (Sections 5.2-5.4) ---------------------------------------------

struct PingPongSpec {
  mpi::RuntimeConfig cfg;
  mpi::DatatypePtr dt0;  // rank 0's datatype
  mpi::DatatypePtr dt1;  // rank 1's datatype
  std::int64_t count0 = 1;
  std::int64_t count1 = 1;
  bool device0 = true;  // buffer placement per rank
  bool device1 = true;
  int iters = 4;
  int warmup = 1;  // fills DEV caches and the IPC registration cache
  /// nullptr = the paper's GpuDatatypePlugin; otherwise e.g. the
  /// MVAPICH-style baseline.
  std::shared_ptr<mpi::GpuTransferPlugin> plugin;
  /// Optional perturbation run on rank 0's thread each iteration before
  /// the send (e.g. a co-running compute kernel, Section 5.4).
  std::function<void(mpi::Process&)> background;
};

struct PingPongResult {
  vt::Time avg_roundtrip = 0;  // virtual ns per ping-pong round trip
  std::int64_t message_bytes = 0;
  /// Payload bandwidth in GB/s: 2 * message_bytes / avg_roundtrip.
  double bandwidth_gbps() const {
    if (avg_roundtrip <= 0) return 0.0;
    return 2.0 * static_cast<double>(message_bytes) /
           static_cast<double>(avg_roundtrip);
  }
};

PingPongResult run_pingpong(const PingPongSpec& spec);

// --- Engine micro-measurements (Section 5.1) ---------------------------------------

enum class PackTarget {
  kDevice,      // d2d: pack into a local device buffer
  kDeviceHost,  // d2d2h: pack to device, then explicit D2H
  kZeroCopy,    // cpy: pack straight into a UMA-mapped host buffer
};

struct PackBenchSpec {
  mpi::DatatypePtr dt;
  std::int64_t count = 1;
  core::EngineConfig engine;
  sg::MachineConfig machine;
  PackTarget target = PackTarget::kDevice;
  bool unpack_too = true;  // measure pack + unpack like the paper
  int iters = 3;
  int warmup = 0;  // >0 pre-fills the DEV cache ("cached" series)
};

struct PackBenchResult {
  vt::Time avg_ns = 0;  // pack (+unpack) per iteration
  std::int64_t bytes = 0;
  /// Payload GB/s of the pack alone: bytes / avg over the pack phase.
  vt::Time avg_pack_ns = 0;
  double pack_bandwidth_gbps() const {
    if (avg_pack_ns <= 0) return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(avg_pack_ns);
  }
};

PackBenchResult run_pack_bench(const PackBenchSpec& spec);

/// Kernel-only bandwidth of packing (dt, count) with the given engine
/// config, excluding conversion (descriptors are prepared up front) -
/// what Figure 6 plots. Returns payload GB/s.
double kernel_pack_bandwidth(const mpi::DatatypePtr& dt, std::int64_t count,
                             const core::EngineConfig& engine,
                             const sg::MachineConfig& machine);

/// Practical peak: payload GB/s of a cudaMemcpy D2D of the same size.
double memcpy_d2d_bandwidth(std::int64_t bytes,
                            const sg::MachineConfig& machine);

}  // namespace gpuddt::harness
