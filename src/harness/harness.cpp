#include "harness/harness.h"

#include <cstring>
#include <stdexcept>

#include "core/dev.h"
#include "core/kernels.h"
#include "obs/recorder.h"
#include "protocols/gpu_plugin.h"

namespace gpuddt::harness {

namespace {

std::int64_t span_of(const mpi::DatatypePtr& dt, std::int64_t count) {
  if (count <= 0 || dt->size() == 0) return 64;
  return dt->true_extent() + (count - 1) * dt->extent() + 64;
}

}  // namespace

PingPongResult run_pingpong(const PingPongSpec& spec) {
  // Specs that don't bring their own recorder feed the process-global one,
  // so bench binaries always have something to dump for --metrics-out.
  mpi::RuntimeConfig cfg = spec.cfg;
  if (cfg.recorder == nullptr) cfg.recorder = &obs::default_recorder();
  mpi::Runtime rt(cfg);
  rt.set_gpu_plugin(spec.plugin
                        ? spec.plugin
                        : std::make_shared<proto::GpuDatatypePlugin>());
  PingPongResult result;
  result.message_bytes = spec.dt0->size() * spec.count0;
  vt::Time measured = 0;

  rt.run([&](mpi::Process& p) {
    mpi::Comm comm(p);
    const bool on_device = p.rank() == 0 ? spec.device0 : spec.device1;
    const mpi::DatatypePtr& dt = p.rank() == 0 ? spec.dt0 : spec.dt1;
    const std::int64_t count = p.rank() == 0 ? spec.count0 : spec.count1;
    const std::int64_t span = span_of(dt, count);
    std::vector<std::byte> host_backing;
    std::byte* buf;
    if (on_device) {
      buf = static_cast<std::byte*>(
          sg::Malloc(p.gpu(), static_cast<std::size_t>(span)));
    } else {
      host_backing.resize(static_cast<std::size_t>(span));
      buf = host_backing.data();
    }
    std::memset(buf, p.rank() + 1, static_cast<std::size_t>(span));
    std::byte* base = buf - dt->true_lb();

    const int total_iters = spec.warmup + spec.iters;
    vt::Time t_begin = 0;
    for (int it = 0; it < total_iters; ++it) {
      if (p.rank() == 0) {
        if (it == spec.warmup) t_begin = p.clock().now();
        if (spec.background) spec.background(p);
        comm.send(base, count, dt, 1, it);
        comm.recv(base, count, dt, 1, it + 100000);
      } else {
        comm.recv(base, count, dt, 0, it);
        comm.send(base, count, dt, 0, it + 100000);
      }
    }
    if (p.rank() == 0) {
      measured = (p.clock().now() - t_begin) / spec.iters;
    }
  });
  result.avg_roundtrip = measured;
  return result;
}

PackBenchResult run_pack_bench(const PackBenchSpec& spec) {
  sg::Machine machine(spec.machine);
  sg::HostContext ctx(machine, 0);
  core::EngineConfig ecfg = spec.engine;
  if (ecfg.recorder == nullptr) ecfg.recorder = &obs::default_recorder();
  core::GpuDatatypeEngine eng(ctx, ecfg);
  using Dir = core::GpuDatatypeEngine::Dir;

  const std::int64_t total = spec.dt->size() * spec.count;
  const std::int64_t span = span_of(spec.dt, spec.count);
  auto* user = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(span)));
  std::byte* base = user - spec.dt->true_lb();
  std::byte* dev_packed = nullptr;
  std::byte* host_packed = nullptr;
  if (spec.target == PackTarget::kZeroCopy) {
    host_packed = static_cast<std::byte*>(
        sg::HostAlloc(ctx, static_cast<std::size_t>(total), true));
  } else {
    dev_packed = static_cast<std::byte*>(
        sg::Malloc(ctx, static_cast<std::size_t>(total)));
    if (spec.target == PackTarget::kDeviceHost) {
      host_packed = static_cast<std::byte*>(
          sg::HostAlloc(ctx, static_cast<std::size_t>(total), false));
    }
  }

  auto run_once = [&](bool measure_pack_only, vt::Time* pack_ns) {
    const vt::Time t0 = ctx.clock.now();
    // Pack phase.
    auto pack = eng.start(Dir::kPack, spec.dt, spec.count, base);
    std::byte* target = spec.target == PackTarget::kZeroCopy ? host_packed
                                                             : dev_packed;
    vt::Time last = t0;
    while (!pack->done()) {
      const auto r = eng.process_some(*pack, target + pack->bytes_done(),
                                      total - pack->bytes_done());
      if (r.bytes == 0) break;
      last = r.ready;
    }
    eng.finish(*pack);
    if (spec.target == PackTarget::kDeviceHost) {
      last = sg::MemcpyAsync(ctx, host_packed, dev_packed,
                             static_cast<std::size_t>(total),
                             eng.pack_stream());
    }
    ctx.clock.wait_until(last);
    if (pack_ns != nullptr) *pack_ns = ctx.clock.now() - t0;
    if (measure_pack_only || !spec.unpack_too) return;
    // Unpack phase: the reverse journey.
    vt::Time dep = ctx.clock.now();
    if (spec.target == PackTarget::kDeviceHost) {
      dep = sg::MemcpyAsync(ctx, dev_packed, host_packed,
                            static_cast<std::size_t>(total),
                            eng.pack_stream());
    }
    const std::byte* source =
        spec.target == PackTarget::kZeroCopy ? host_packed : dev_packed;
    auto unpack = eng.start(Dir::kUnpack, spec.dt, spec.count, base);
    vt::Time ready = dep;
    while (!unpack->done()) {
      const auto r = eng.process_some(
          *unpack,
          const_cast<std::byte*>(source) + unpack->bytes_done(),
          total - unpack->bytes_done(), dep);
      if (r.bytes == 0) break;
      ready = r.ready;
    }
    eng.finish(*unpack);
    ctx.clock.wait_until(ready);
  };

  for (int w = 0; w < spec.warmup; ++w) run_once(false, nullptr);

  PackBenchResult res;
  res.bytes = total;
  vt::Time sum = 0, pack_sum = 0;
  for (int i = 0; i < spec.iters; ++i) {
    vt::Time pack_ns = 0;
    const vt::Time t0 = ctx.clock.now();
    run_once(false, &pack_ns);
    sum += ctx.clock.now() - t0;
    pack_sum += pack_ns;
  }
  res.avg_ns = sum / spec.iters;
  res.avg_pack_ns = pack_sum / spec.iters;
  return res;
}

double kernel_pack_bandwidth(const mpi::DatatypePtr& dt, std::int64_t count,
                             const core::EngineConfig& engine,
                             const sg::MachineConfig& machine_cfg) {
  sg::Machine machine(machine_cfg);
  sg::HostContext ctx(machine, 0);
  sg::Stream stream(&machine.device(0));
  const std::int64_t total = dt->size() * count;
  const std::int64_t span = span_of(dt, count);
  auto* user = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(span)));
  auto* packed = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(total)));
  std::byte* base = user - dt->true_lb();

  vt::Time start = 0, finish = 0;
  if (auto pat = dt->regular_pattern(count)) {
    start = ctx.clock.now();
    finish = core::pack_vector_kernel(ctx, stream, base, *pat, 0, total,
                                      packed, engine.kernel_blocks);
  } else {
    // Descriptors prepared up front: kernel-only time, as in Figure 6.
    auto units = core::convert_all(dt, count, engine.unit_bytes);
    auto* dev_units = static_cast<core::CudaDevDist*>(
        sg::Malloc(ctx, units.size() * sizeof(core::CudaDevDist)));
    sg::Memcpy(ctx, dev_units, units.data(),
               units.size() * sizeof(core::CudaDevDist));
    start = ctx.clock.now();
    finish = core::pack_dev_kernel(ctx, stream, base, units, 0, packed,
                                   dev_units, engine.kernel_blocks);
  }
  const vt::Time dur = finish - start;
  if (dur <= 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(dur);
}

double memcpy_d2d_bandwidth(std::int64_t bytes,
                            const sg::MachineConfig& machine_cfg) {
  sg::Machine machine(machine_cfg);
  sg::HostContext ctx(machine, 0);
  auto* a = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(bytes)));
  auto* b = static_cast<std::byte*>(
      sg::Malloc(ctx, static_cast<std::size_t>(bytes)));
  const vt::Time t0 = ctx.clock.now();
  sg::Memcpy(ctx, b, a, static_cast<std::size_t>(bytes));
  const vt::Time dur = ctx.clock.now() - t0;
  if (dur <= 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(dur);
}

}  // namespace gpuddt::harness
