#include "verify/symbolic.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace gpuddt::verify {

std::int64_t ByteMap::size() const {
  std::int64_t s = 0;
  for (const Run& r : runs_) s += r.len;
  return s;
}

std::int64_t ByteMap::min() const {
  if (runs_.empty()) return 0;
  std::int64_t m = runs_.front().off;
  for (const Run& r : runs_) m = std::min(m, r.off);
  return m;
}

std::int64_t ByteMap::max() const {
  if (runs_.empty()) return 0;
  std::int64_t m = runs_.front().off + runs_.front().len;
  for (const Run& r : runs_) m = std::max(m, r.off + r.len);
  return m;
}

namespace {

std::vector<Run> sorted_runs(const std::vector<Run>& runs) {
  std::vector<Run> s = runs;
  std::sort(s.begin(), s.end(), [](const Run& a, const Run& b) {
    return a.off < b.off || (a.off == b.off && a.len < b.len);
  });
  return s;
}

/// Do two *sorted* run lists share any byte, with the second list
/// shifted by `shift`?
bool sorted_overlap(const std::vector<Run>& a, const std::vector<Run>& b,
                    std::int64_t shift) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t a_lo = a[i].off;
    const std::int64_t a_hi = a[i].off + a[i].len;
    const std::int64_t b_lo = b[j].off + shift;
    const std::int64_t b_hi = b[j].off + b[j].len + shift;
    if (a_lo < b_hi && b_lo < a_hi) return true;
    if (a_hi <= b_lo) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

bool ByteMap::self_disjoint() const {
  const std::vector<Run> s = sorted_runs(runs_);
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1].off + s[i - 1].len > s[i].off) return false;
  }
  return true;
}

bool ByteMap::shift_disjoint(std::int64_t extent) const {
  if (runs_.empty()) return true;
  if (extent <= 0) return false;  // every count >= 2 collides
  const std::int64_t width = max() - min();
  const std::vector<Run> s = sorted_runs(runs_);
  // Elements i < j overlap iff elements 0 and j-i do (pure translation),
  // so checking every delta with delta*extent < width covers all counts.
  for (std::int64_t delta = 1; delta * extent < width; ++delta) {
    if (sorted_overlap(s, s, delta * extent)) return false;
  }
  return true;
}

std::string ByteMap::describe(std::size_t max_runs) const {
  std::ostringstream os;
  os << runs_.size() << " runs:";
  for (std::size_t i = 0; i < runs_.size() && i < max_runs; ++i) {
    os << " [" << runs_[i].off << "," << runs_[i].off + runs_[i].len << ")";
  }
  if (runs_.size() > max_runs) os << " ...";
  return os.str();
}

// --- Program interpreter ----------------------------------------------------

namespace {

constexpr int kMaxLoopDepth = 64;

void walk_program(std::span<const mpi::Instr> prog, std::size_t i0,
                  std::size_t i1, std::int64_t base, ByteMap& out,
                  int depth) {
  if (depth > kMaxLoopDepth) {
    throw std::invalid_argument("verify: program nests deeper than 64");
  }
  std::size_t i = i0;
  while (i < i1) {
    const mpi::Instr& in = prog[i];
    switch (in.op) {
      case mpi::Instr::Op::kBlock:
        if (in.len < 0) {
          throw std::invalid_argument("verify: negative block length");
        }
        out.push(base + in.disp, in.len);
        ++i;
        break;
      case mpi::Instr::Op::kLoop: {
        const auto end = static_cast<std::size_t>(in.body_end);
        if (end <= i || end >= i1 ||
            prog[end].op != mpi::Instr::Op::kEndLoop) {
          throw std::invalid_argument("verify: bad loop body_end link");
        }
        if (in.count < 0) {
          throw std::invalid_argument("verify: negative loop count");
        }
        for (std::int64_t it = 0; it < in.count; ++it) {
          walk_program(prog, i + 1, end,
                       base + in.disp + it * in.step, out, depth + 1);
        }
        i = end + 1;
        break;
      }
      case mpi::Instr::Op::kEndLoop:
        throw std::invalid_argument("verify: stray end_loop");
    }
  }
}

}  // namespace

ByteMap program_byte_map(std::span<const mpi::Instr> program) {
  ByteMap out;
  walk_program(program, 0, program.size(), 0, out, 0);
  return out;
}

// --- Constructor-tree interpreter -------------------------------------------
//
// Re-derives the byte map of one element from the TypeContents recipe.
// Every combiner's placement rule is restated here from its MPI
// definition; nothing is shared with the program compiler this
// interpreter is checking.

namespace {

void append_shifted(ByteMap& dst, const ByteMap& src, std::int64_t shift) {
  for (const Run& r : src.runs()) dst.push(r.off + shift, r.len);
}

TreeLayout interp(const mpi::Datatype& dt, int depth);

/// `count` copies of `child`, consecutive copies `stride` bytes apart,
/// first copy at `base` - the shared core of the replicating combiners.
void replicate(ByteMap& dst, const TreeLayout& child, std::int64_t base,
               std::int64_t count, std::int64_t stride) {
  for (std::int64_t i = 0; i < count; ++i) {
    append_shifted(dst, child.map, base + i * stride);
  }
}

/// Layout whose lb/extent follow the touched bounds (the constructors
/// that call finalize() with extent = -1).
TreeLayout true_bounds(ByteMap map) {
  TreeLayout out;
  out.lb = map.min();
  out.extent = map.max() - map.min();
  out.map = std::move(map);
  return out;
}

std::int64_t int_at(const mpi::TypeContents& tc, std::size_t i) {
  if (i >= tc.integers.size()) {
    throw std::invalid_argument("verify: truncated contents integers");
  }
  return tc.integers[i];
}

std::int64_t addr_at(const mpi::TypeContents& tc, std::size_t i) {
  if (i >= tc.addresses.size()) {
    throw std::invalid_argument("verify: truncated contents addresses");
  }
  return tc.addresses[i];
}

const mpi::Datatype& type_at(const mpi::TypeContents& tc, std::size_t i) {
  if (i >= tc.types.size() || tc.types[i] == nullptr) {
    throw std::invalid_argument("verify: missing contents child type");
  }
  return *tc.types[i];
}

TreeLayout interp_subarray(const mpi::TypeContents& tc, int depth) {
  const auto ndims = static_cast<std::size_t>(int_at(tc, 0));
  if (ndims == 0 || tc.integers.size() != 2 + 3 * ndims) {
    throw std::invalid_argument("verify: bad subarray contents");
  }
  std::vector<std::int64_t> sizes(ndims);
  std::vector<std::int64_t> subsizes(ndims);
  std::vector<std::int64_t> starts(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    sizes[d] = int_at(tc, 1 + d);
    subsizes[d] = int_at(tc, 1 + ndims + d);
    starts[d] = int_at(tc, 1 + 2 * ndims + d);
    if (subsizes[d] < 0 || starts[d] < 0 ||
        starts[d] + subsizes[d] > sizes[d]) {
      throw std::invalid_argument("verify: subarray block out of bounds");
    }
  }
  const bool fortran = int_at(tc, 1 + 3 * ndims) != 0;
  const TreeLayout child = interp(type_at(tc, 0), depth + 1);
  // Row-major (C) or column-major (Fortran) element strides.
  std::vector<std::int64_t> stride(ndims);
  if (fortran) {
    stride[0] = 1;
    for (std::size_t d = 1; d < ndims; ++d)
      stride[d] = stride[d - 1] * sizes[d - 1];
  } else {
    stride[ndims - 1] = 1;
    for (std::size_t d = ndims - 1; d-- > 0;)
      stride[d] = stride[d + 1] * sizes[d + 1];
  }
  // Dims from slowest- to fastest-varying, for the odometer below.
  std::vector<std::size_t> slow_to_fast(ndims);
  for (std::size_t k = 0; k < ndims; ++k) {
    slow_to_fast[k] = fortran ? ndims - 1 - k : k;
  }
  TreeLayout out;
  out.lb = 0;
  out.extent = child.extent;
  for (std::size_t d = 0; d < ndims; ++d) out.extent *= sizes[d];
  std::int64_t n = 1;
  for (std::size_t d = 0; d < ndims; ++d) n *= subsizes[d];
  std::vector<std::int64_t> idx(ndims, 0);
  for (std::int64_t e = 0; e < n; ++e) {
    std::int64_t off = 0;
    for (std::size_t d = 0; d < ndims; ++d) {
      off += (starts[d] + idx[d]) * stride[d] * child.extent;
    }
    append_shifted(out.map, child.map, off);
    // Advance the fastest-varying dim first.
    for (std::size_t k = ndims; k-- > 0;) {
      const std::size_t d = slow_to_fast[k];
      if (++idx[d] < subsizes[d]) break;
      idx[d] = 0;
    }
  }
  return out;
}

/// Global indices of dim `d` owned by grid coordinate `coord`, in the
/// order the element visits them (increasing - block ranges and cyclic
/// blocks are both laid out low-to-high).
std::vector<std::int64_t> darray_owned(std::int64_t gsize,
                                       mpi::Datatype::Distrib distrib,
                                       std::int64_t darg,
                                       std::int64_t psize,
                                       std::int64_t coord) {
  using Distrib = mpi::Datatype::Distrib;
  std::vector<std::int64_t> owned;
  switch (distrib) {
    case Distrib::kNone: {
      if (psize != 1) {
        throw std::invalid_argument("verify: darray kNone with psize != 1");
      }
      for (std::int64_t g = 0; g < gsize; ++g) owned.push_back(g);
      return owned;
    }
    case Distrib::kBlock: {
      std::int64_t b = darg;
      if (b == mpi::Datatype::kDefaultDarg) b = (gsize + psize - 1) / psize;
      if (b <= 0 || b * psize < gsize) {
        throw std::invalid_argument("verify: darray block size too small");
      }
      const std::int64_t lo = b * coord;
      const std::int64_t hi = std::min(gsize, lo + b);
      for (std::int64_t g = lo; g < hi; ++g) owned.push_back(g);
      return owned;
    }
    case Distrib::kCyclic: {
      const std::int64_t b = darg == mpi::Datatype::kDefaultDarg ? 1 : darg;
      if (b <= 0) {
        throw std::invalid_argument("verify: darray bad cyclic block");
      }
      const std::int64_t nblocks = (gsize + b - 1) / b;
      for (std::int64_t k = coord; k < nblocks; k += psize) {
        const std::int64_t lo = k * b;
        const std::int64_t hi = std::min(gsize, lo + b);
        for (std::int64_t g = lo; g < hi; ++g) owned.push_back(g);
      }
      return owned;
    }
  }
  throw std::invalid_argument("verify: unknown darray distribution");
}

TreeLayout interp_darray(const mpi::TypeContents& tc, int depth) {
  const std::int64_t world = int_at(tc, 0);
  const std::int64_t rank = int_at(tc, 1);
  const auto ndims = static_cast<std::size_t>(int_at(tc, 2));
  if (ndims == 0 || tc.integers.size() != 4 + 4 * ndims) {
    throw std::invalid_argument("verify: bad darray contents");
  }
  std::vector<std::int64_t> gsizes(ndims);
  std::vector<mpi::Datatype::Distrib> distribs(ndims);
  std::vector<std::int64_t> dargs(ndims);
  std::vector<std::int64_t> psizes(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    gsizes[d] = int_at(tc, 3 + d);
    distribs[d] =
        static_cast<mpi::Datatype::Distrib>(int_at(tc, 3 + ndims + d));
    dargs[d] = int_at(tc, 3 + 2 * ndims + d);
    psizes[d] = int_at(tc, 3 + 3 * ndims + d);
    if (psizes[d] <= 0 || gsizes[d] < 0) {
      throw std::invalid_argument("verify: bad darray sizes");
    }
  }
  const bool fortran = int_at(tc, 3 + 4 * ndims) != 0;
  std::int64_t grid = 1;
  for (std::size_t d = 0; d < ndims; ++d) grid *= psizes[d];
  if (grid != world || rank < 0 || rank >= world) {
    throw std::invalid_argument("verify: darray grid/rank mismatch");
  }
  // Row-major rank -> grid coordinates, per MPI_Type_create_darray.
  std::vector<std::int64_t> coord(ndims);
  {
    std::int64_t r = rank;
    for (std::size_t d = ndims; d-- > 0;) {
      coord[d] = r % psizes[d];
      r /= psizes[d];
    }
  }
  const TreeLayout child = interp(type_at(tc, 0), depth + 1);
  std::vector<std::vector<std::int64_t>> owned(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    owned[d] = darray_owned(gsizes[d], distribs[d], dargs[d], psizes[d],
                            coord[d]);
  }
  // Stride of a global index in dim d: the product of the
  // faster-varying dims' global sizes (C: higher d is faster).
  std::vector<std::int64_t> stride(ndims);
  if (fortran) {
    stride[0] = 1;
    for (std::size_t d = 1; d < ndims; ++d)
      stride[d] = stride[d - 1] * gsizes[d - 1];
  } else {
    stride[ndims - 1] = 1;
    for (std::size_t d = ndims - 1; d-- > 0;)
      stride[d] = stride[d + 1] * gsizes[d + 1];
  }
  std::vector<std::size_t> slow_to_fast(ndims);
  for (std::size_t k = 0; k < ndims; ++k) {
    slow_to_fast[k] = fortran ? ndims - 1 - k : k;
  }
  TreeLayout out;
  out.lb = 0;
  out.extent = child.extent;
  for (std::size_t d = 0; d < ndims; ++d) out.extent *= gsizes[d];
  bool any_empty = false;
  for (std::size_t d = 0; d < ndims; ++d) any_empty |= owned[d].empty();
  if (!any_empty) {
    std::vector<std::size_t> idx(ndims, 0);
    for (;;) {
      std::int64_t off = 0;
      for (std::size_t d = 0; d < ndims; ++d) {
        off += owned[d][idx[d]] * stride[d] * child.extent;
      }
      append_shifted(out.map, child.map, off);
      std::size_t k = ndims;
      while (k-- > 0) {
        const std::size_t d = slow_to_fast[k];
        if (++idx[d] < owned[d].size()) break;
        idx[d] = 0;
        if (k == 0) return out;
      }
    }
  }
  return out;
}

TreeLayout interp(const mpi::Datatype& dt, int depth) {
  if (depth > kMaxLoopDepth) {
    throw std::invalid_argument("verify: contents tree deeper than 64");
  }
  const mpi::TypeContents& tc = dt.contents();
  switch (tc.combiner) {
    case mpi::Combiner::kNamed: {
      const auto p = static_cast<mpi::Primitive>(int_at(tc, 0));
      TreeLayout out;
      out.map.push(0, mpi::primitive_size(p));
      out.lb = 0;
      out.extent = mpi::primitive_size(p);
      return out;
    }
    case mpi::Combiner::kContiguous: {
      const std::int64_t count = int_at(tc, 0);
      const TreeLayout child = interp(type_at(tc, 0), depth + 1);
      TreeLayout out;
      replicate(out.map, child, 0, count, child.extent);
      out.lb = 0;
      out.extent = count == 0 ? 0 : count * child.extent;
      return out;
    }
    case mpi::Combiner::kVector:
    case mpi::Combiner::kHvector: {
      const std::int64_t count = int_at(tc, 0);
      const std::int64_t blocklen = int_at(tc, 1);
      const TreeLayout child = interp(type_at(tc, 0), depth + 1);
      const std::int64_t stride_bytes =
          tc.combiner == mpi::Combiner::kVector
              ? int_at(tc, 2) * child.extent
              : addr_at(tc, 0);
      ByteMap map;
      for (std::int64_t i = 0; i < count; ++i) {
        replicate(map, child, i * stride_bytes, blocklen, child.extent);
      }
      return true_bounds(std::move(map));
    }
    case mpi::Combiner::kIndexed:
    case mpi::Combiner::kHindexed: {
      const auto n = static_cast<std::size_t>(int_at(tc, 0));
      const TreeLayout child = interp(type_at(tc, 0), depth + 1);
      ByteMap map;
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t len = int_at(tc, 1 + i);
        const std::int64_t disp =
            tc.combiner == mpi::Combiner::kIndexed
                ? int_at(tc, 1 + n + i) * child.extent
                : addr_at(tc, i);
        replicate(map, child, disp, len, child.extent);
      }
      return true_bounds(std::move(map));
    }
    case mpi::Combiner::kIndexedBlock: {
      const auto n = static_cast<std::size_t>(int_at(tc, 0));
      const std::int64_t blocklen = int_at(tc, 1);
      const TreeLayout child = interp(type_at(tc, 0), depth + 1);
      ByteMap map;
      for (std::size_t i = 0; i < n; ++i) {
        replicate(map, child, int_at(tc, 2 + i) * child.extent, blocklen,
                  child.extent);
      }
      return true_bounds(std::move(map));
    }
    case mpi::Combiner::kStruct: {
      const auto n = static_cast<std::size_t>(int_at(tc, 0));
      ByteMap map;
      for (std::size_t i = 0; i < n; ++i) {
        const TreeLayout child = interp(type_at(tc, i), depth + 1);
        replicate(map, child, addr_at(tc, i), int_at(tc, 1 + i),
                  child.extent);
      }
      return true_bounds(std::move(map));
    }
    case mpi::Combiner::kSubarray:
      return interp_subarray(tc, depth);
    case mpi::Combiner::kDarray:
      return interp_darray(tc, depth);
    case mpi::Combiner::kResized: {
      TreeLayout out = interp(type_at(tc, 0), depth + 1);
      out.lb = addr_at(tc, 0);
      out.extent = addr_at(tc, 1);
      return out;
    }
  }
  throw std::invalid_argument("verify: unknown combiner");
}

}  // namespace

TreeLayout element_byte_map(const mpi::Datatype& dt) {
  return interp(dt, 0);
}

}  // namespace gpuddt::verify
