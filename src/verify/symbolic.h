// Symbolic byte-maps - the verifier's interval/stride algebra.
//
// A ByteMap is the exact byte-visit sequence of one datatype element,
// represented as maximal contiguous runs in visit order. Two traversals
// visit the same bytes in the same order if and only if their merged
// run lists are equal, so run-list equality is a *proof* of byte-visit
// equivalence - not a sample of it (docs/verification.md).
//
// Three independent producers feed the prover:
//   * program_byte_map()        - walks a compiled loop/block program;
//   * element_byte_map()        - re-derives the layout from the
//                                 constructor recipe (TypeContents),
//                                 sharing no code with the program
//                                 compiler in mpi/datatype.cpp;
//   * the DEV unit expectation  - closed-form unit splitting in
//                                 verifier.cpp.
//
// Multi-count properties are closed over a symbolic count n: element e's
// bytes are element 0's shifted by e * extent, so cross-element overlap
// for *all* n reduces to finitely many shift checks (delta = 1 ..
// ceil(width / extent) - 1), each decided on the sorted run list.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpi/datatype.h"

namespace gpuddt::verify {

/// One maximal contiguous run of visited bytes: [off, off + len).
struct Run {
  std::int64_t off = 0;
  std::int64_t len = 0;
  bool operator==(const Run&) const = default;
};

/// Byte-visit sequence of one element as maximal runs in visit order.
/// `push` maintains the canonical (merged) form: a run that begins
/// exactly where the previous one ended extends it instead.
class ByteMap {
 public:
  void push(std::int64_t off, std::int64_t len) {
    if (len <= 0) return;
    if (!runs_.empty() && runs_.back().off + runs_.back().len == off) {
      runs_.back().len += len;
      return;
    }
    runs_.push_back({off, len});
  }

  const std::vector<Run>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }

  /// Total bytes visited.
  std::int64_t size() const;
  /// Lowest visited offset (0 when empty, matching Datatype::true_lb).
  std::int64_t min() const;
  /// One past the highest visited offset (0 when empty).
  std::int64_t max() const;

  /// True when no byte is visited twice within the element.
  bool self_disjoint() const;

  /// True when no byte is visited by two distinct elements for ANY
  /// element count, with elements placed `extent` apart. Requires
  /// extent > 0 for non-empty maps (otherwise every count >= 2
  /// overlaps and the proof fails).
  bool shift_disjoint(std::int64_t extent) const;

  bool operator==(const ByteMap&) const = default;

  std::string describe(std::size_t max_runs = 8) const;

 private:
  std::vector<Run> runs_;
};

/// Byte map of one element of a compiled loop/block program - an
/// independent recursive interpreter of the Instr encoding (not
/// BlockCursor). Throws std::invalid_argument on malformed programs.
ByteMap program_byte_map(std::span<const mpi::Instr> program);

/// Layout of one element re-derived from the constructor recipe.
struct TreeLayout {
  ByteMap map;
  std::int64_t lb = 0;
  std::int64_t extent = 0;
};

/// Interpret the TypeContents tree of `dt` - every combiner's semantics
/// re-implemented from the MPI definitions, independent of the program
/// compiler. Throws std::invalid_argument on a recipe it cannot
/// interpret (which itself is a verification failure).
TreeLayout element_byte_map(const mpi::Datatype& dt);

}  // namespace gpuddt::verify
