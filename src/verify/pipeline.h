// Static hazard analysis of the fragment pipeline - the verifier's
// second half.
//
// The dynamic access tracker (src/check/) observes ONE schedule: the
// interleaving that actually ran. This model instead proves hazard
// freedom over ALL legal interleavings. It rebuilds the engine's
// fragment pipeline (conv -> H2D descriptor upload -> DEV kernel ->
// wire/RDMA -> unpack, the chain the PR 5 flow ids trace) as an explicit
// dependency DAG whose edges are exactly the orderings the runtime
// guarantees:
//
//   * host program order (the issuing thread),
//   * stream FIFO order (two ops on one CUDA stream),
//   * recorded events (StreamWaitEvent edges the engine issues).
//
// Anything NOT implied by those edges may execute in any order. Two
// accesses to overlapping bytes of one resource, at least one a write,
// are hazard-free only if the edge relation orders them - a
// happens-before reachability check, not a timestamp comparison.
//
// build_engine_pipeline() mirrors the synchronization the engine
// actually issues (core/engine.cpp): the double-buffered descriptor
// slots, the upload->kernel event, the kernel(w) -> upload(w+2) WAR
// guard (desc_last_use_), the optional residue stream, and the
// wire/unpack extension with a bounded staging ring. Dropping the WAR
// guard (MutateDag::kDropWarEdge) reproduces the descriptor-slot race
// PR 2's dynamic tracker caught - now as a statically refuted proof
// obligation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace gpuddt::verify {

/// One byte-range access a pipeline node performs on a named resource.
struct ResourceAccess {
  std::string resource;  // e.g. "desc_slot", "packed", "staging"
  std::int64_t lo = 0;   // [lo, hi) within that resource
  std::int64_t hi = 0;
  bool write = false;
};

/// One node of the pipeline DAG (a host step or a device-side op).
struct DagNode {
  std::string name;   // e.g. "kernel[3]"
  std::string queue;  // "host" / stream name - documentation only
  std::vector<ResourceAccess> accesses;
};

struct DagEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::string why;  // "host order" / "stream fifo" / "event" ...
};

struct PipelineDag {
  std::vector<DagNode> nodes;
  std::vector<DagEdge> edges;
};

/// An unordered conflicting pair found by the prover.
struct PipelineHazard {
  std::string type;  // "RAW" | "WAR" | "WAW"
  std::string a;     // node names
  std::string b;
  std::string resource;
};

/// Prove every conflicting access pair ordered by happens-before
/// reachability. Returns all unordered pairs (empty = proven safe).
std::vector<PipelineHazard> find_hazards(const PipelineDag& dag);

/// Seeded model mutations for the rejection fixtures.
enum class MutateDag : std::uint8_t {
  kNone,
  /// Drop the kernel(w) -> upload(w+2) descriptor-slot WAR guard.
  kDropWarEdge,
  /// Drop the wire(f) -> kernel(f + send_ring_depth) send-ring credit
  /// event of the stream-triggered chain: pack kernels then overwrite
  /// ring slots the in-flight GETs still read (WAR on send_ring).
  kDropCreditEdge,
};

/// Parameters of the modeled engine pipeline. `windows` is the number of
/// descriptor windows one op issues; `wire_fragments`/`staging_depth`
/// extend the model past the kernel into the wire + unpack stages
/// (0 fragments = sender-side model only). With `stream_triggered` the
/// model switches to the offloaded chain the plugin enqueues at
/// rendezvous (docs/protocols.md): stage_all's single batch descriptor
/// upload feeds per-fragment pack kernels writing a bounded send ring of
/// `send_ring_depth` slots, drained by triggered GETs into the receiver
/// staging ring - every ordering a stream/event dependency, none a host
/// round-trip.
struct EnginePipelineParams {
  int windows = 4;
  int desc_slots = 2;
  bool residue_separate_stream = false;
  int wire_fragments = 0;
  int staging_depth = 2;
  bool stream_triggered = false;
  int send_ring_depth = 2;
  MutateDag mutate = MutateDag::kNone;
};

/// The engine's static pipeline shape (GpuDatatypeEngine::pipeline_shape)
/// filled into model parameters.
EnginePipelineParams params_from_engine(
    const core::GpuDatatypeEngine::PipelineShape& shape, int windows,
    int wire_fragments = 0);

/// Build the DAG the engine's synchronization implies.
PipelineDag build_engine_pipeline(const EnginePipelineParams& p);

}  // namespace gpuddt::verify
