#include "verify/hook.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>

#include "check/config.h"
#include "obs/recorder.h"
#include "verify/verifier.h"

namespace gpuddt::verify {

namespace {

std::mutex g_mutex;
std::optional<bool> g_forced;

bool env_enabled() {
  const char* v = std::getenv("GPUDDT_VERIFY");
  if (v == nullptr) {
#ifdef GPUDDT_VERIFY_DEFAULT
    return true;
#else
    return false;
#endif
  }
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "false");
}

/// Count one report's obligations and surface any failure as a
/// diagnostic; returns true when the report certifies.
bool account(const Report& rep, obs::Recorder* rec) {
  std::int64_t proved = 0;
  std::int64_t failed = 0;
  for (const Obligation& o : rep.obligations) {
    (o.proved ? proved : failed)++;
  }
  obs::count(rec, "verify.obligations.proved", proved);
  if (failed > 0) obs::count(rec, "verify.obligations.failed", failed);
  return failed == 0;
}

}  // namespace

bool enabled() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_forced.has_value()) return *g_forced;
  return env_enabled();
}

void set_forced(std::optional<bool> forced) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_forced = forced;
}

void certify_insert(const mpi::DatatypePtr& dt, std::int64_t count,
                    std::int64_t unit_bytes,
                    std::span<const core::CudaDevDist> units,
                    obs::Recorder* rec) {
  // Wall clock, not the virtual clock: the prover is tooling overhead,
  // never part of the simulated program. The counter is dropped from
  // canonical metric dumps (obs/canon.cpp) for exactly that reason.
  // det-lint: allow(wall_clock) - instrumentation-only, canon-excluded
  const auto t0 = std::chrono::steady_clock::now();
  const Report type_rep = verify_type(*dt);
  const Report dev_rep = verify_dev(*dt, count, unit_bytes, units);
  const bool type_ok = account(type_rep, rec);
  const bool dev_ok = account(dev_rep, rec);
  const bool ok = type_ok && dev_ok;
  // det-lint: allow(wall_clock) - instrumentation-only, canon-excluded
  const auto t1 = std::chrono::steady_clock::now();
  obs::count(rec, "verify.prover_ns",
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count());
  if (ok) {
    obs::count(rec, "verify.devs.certified");
    return;
  }
  obs::count(rec, "verify.devs.rejected");
  const Report& bad = type_rep.certified() ? dev_rep : type_rep;
  const Obligation* o = bad.first_failed();
  check::Diagnostic diag;
  diag.kind = "verify";
  diag.type = o->name;
  diag.message = "verify: obligation '" + o->name + "' unproven for " +
                 bad.subject + ": " + o->detail;
  check::report(diag);
  throw CertificationFailure(diag.message);
}

}  // namespace gpuddt::verify
