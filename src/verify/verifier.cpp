#include "verify/verifier.h"

#include <sstream>
#include <stdexcept>

#include "mpi/canonical.h"

namespace gpuddt::verify {

namespace {

void prove(Report& rep, const char* name, bool ok, std::string detail) {
  rep.obligations.push_back({name, ok, ok ? std::string() : std::move(detail)});
}

/// The unmerged block sequence of one element: one entry per kBlock
/// *emission* in visit order. This is the granularity the DEV
/// conversion splits at (a cursor yields per-block pieces; it never
/// merges blocks that happen to abut), so the unit expectation is
/// derived from this list, not from the merged ByteMap.
void block_list(std::span<const mpi::Instr> prog, std::size_t i0,
                std::size_t i1, std::int64_t base, std::vector<Run>& out,
                int depth) {
  if (depth > 64) {
    throw std::invalid_argument("verify: program nests deeper than 64");
  }
  std::size_t i = i0;
  while (i < i1) {
    const mpi::Instr& in = prog[i];
    switch (in.op) {
      case mpi::Instr::Op::kBlock:
        if (in.len > 0) out.push_back({base + in.disp, in.len});
        ++i;
        break;
      case mpi::Instr::Op::kLoop: {
        const auto end = static_cast<std::size_t>(in.body_end);
        if (end <= i || end >= i1 ||
            prog[end].op != mpi::Instr::Op::kEndLoop) {
          throw std::invalid_argument("verify: bad loop body_end link");
        }
        for (std::int64_t it = 0; it < in.count; ++it) {
          block_list(prog, i + 1, end, base + in.disp + it * in.step, out,
                     depth + 1);
        }
        i = end + 1;
        break;
      }
      case mpi::Instr::Op::kEndLoop:
        throw std::invalid_argument("verify: stray end_loop");
    }
  }
}

std::string map_diff(const ByteMap& a, const ByteMap& b) {
  const std::vector<Run>& ra = a.runs();
  const std::vector<Run>& rb = b.runs();
  const std::size_t n = std::min(ra.size(), rb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(ra[i] == rb[i])) {
      std::ostringstream os;
      os << "run " << i << ": [" << ra[i].off << ","
         << ra[i].off + ra[i].len << ") vs [" << rb[i].off << ","
         << rb[i].off + rb[i].len << ")";
      return os.str();
    }
  }
  std::ostringstream os;
  os << ra.size() << " vs " << rb.size() << " runs";
  return os.str();
}

}  // namespace

Report verify_type(const mpi::Datatype& dt) {
  Report rep;
  rep.subject = dt.describe_tree();

  const bool wf = mpi::program_well_formed(dt.program()) &&
                  mpi::program_well_formed(dt.canonical_program());
  prove(rep, kProgramWellFormed, wf,
        "unbalanced loops or broken body_end links");
  if (!wf) return rep;  // the walkers below assume well-formed programs

  const ByteMap prog_map = program_byte_map(dt.program());

  TreeLayout tree;
  bool tree_ok = true;
  std::string tree_err;
  try {
    tree = element_byte_map(dt);
  } catch (const std::invalid_argument& e) {
    tree_ok = false;
    tree_err = e.what();
  }
  prove(rep, kTreeEquiv, tree_ok && tree.map == prog_map,
        tree_ok ? "tree vs program: " + map_diff(tree.map, prog_map)
                : tree_err);

  const ByteMap canon_map = program_byte_map(dt.canonical_program());
  prove(rep, kCanonicalEquiv, canon_map == prog_map,
        "canonical vs program: " + map_diff(canon_map, prog_map));

  {
    std::ostringstream os;
    os << "touched [" << prog_map.min() << "," << prog_map.max()
       << ") vs true [" << dt.true_lb() << ","
       << dt.true_lb() + dt.true_extent() << ")";
    prove(rep, kBoundsExact,
          prog_map.min() == dt.true_lb() &&
              prog_map.max() == dt.true_lb() + dt.true_extent(),
          os.str());
  }
  {
    std::ostringstream os;
    os << "visited " << prog_map.size() << " bytes, size() = " << dt.size();
    prove(rep, kSizeExact, prog_map.size() == dt.size(), os.str());
  }
  {
    std::ostringstream os;
    os << "tree lb/extent " << tree.lb << "/" << tree.extent
       << " vs committed " << dt.lb() << "/" << dt.extent();
    prove(rep, kExtentExact,
          tree_ok && tree.lb == dt.lb() && tree.extent == dt.extent(),
          tree_ok ? os.str() : tree_err);
  }
  {
    const mpi::Signature& sig = dt.signature();
    std::int64_t sig_bytes = 0;
    for (const auto& r : sig.runs) {
      sig_bytes += r.count * mpi::primitive_size(r.prim);
    }
    // A truncated signature folds its tail into a hash; the byte total
    // is then not reconstructible, so the obligation holds vacuously.
    std::ostringstream os;
    os << "signature bytes " << sig_bytes << " vs size " << dt.size();
    prove(rep, kSignatureSize,
          sig.overflow_hash != 0 || sig_bytes == dt.size(), os.str());
  }
  prove(rep, kNcNoOverlap, prog_map.self_disjoint(),
        "two runs of one element overlap: " + prog_map.describe());
  {
    std::ostringstream os;
    os << "elements " << dt.extent() << "B apart, element width "
       << prog_map.max() - prog_map.min() << "B";
    prove(rep, kNcNoOverlapAcross, prog_map.shift_disjoint(dt.extent()),
          os.str());
  }
  return rep;
}

std::vector<core::CudaDevDist> expected_units(const mpi::Datatype& dt,
                                              std::int64_t count,
                                              std::int64_t unit_bytes) {
  std::vector<Run> blocks;
  const std::vector<mpi::Instr>& canon = dt.canonical_program();
  block_list(canon, 0, canon.size(), 0, blocks, 0);
  std::vector<core::CudaDevDist> units;
  std::int64_t pk = 0;
  for (std::int64_t e = 0; e < count; ++e) {
    const std::int64_t elem_base = e * dt.extent();
    for (const Run& b : blocks) {
      for (std::int64_t off = 0; off < b.len; off += unit_bytes) {
        const std::int64_t len = std::min(unit_bytes, b.len - off);
        units.push_back({elem_base + b.off + off, pk, len});
        pk += len;
      }
    }
  }
  return units;
}

Report verify_dev(const mpi::Datatype& dt, std::int64_t count,
                  std::int64_t unit_bytes,
                  std::span<const core::CudaDevDist> units) {
  Report rep;
  {
    std::ostringstream os;
    os << "dev(shape=" << std::hex << dt.shape_digest() << std::dec
       << ", count=" << count << ", S=" << unit_bytes << ")";
    rep.subject = os.str();
  }
  bool len_ok = true;
  std::string len_err;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].length <= 0 || units[i].length > unit_bytes) {
      len_ok = false;
      std::ostringstream os;
      os << "unit " << i << ": length " << units[i].length
         << " outside (0, " << unit_bytes << "]";
      len_err = os.str();
      break;
    }
  }
  prove(rep, kDevUnitLen, len_ok, std::move(len_err));

  const std::vector<core::CudaDevDist> want =
      expected_units(dt, count, unit_bytes);
  {
    std::ostringstream os;
    os << units.size() << " units vs " << want.size() << " expected";
    prove(rep, kDevUnitCount, units.size() == want.size(), os.str());
  }
  if (units.size() == want.size()) {
    bool nc_ok = true;
    bool pk_ok = true;
    std::string nc_err;
    std::string pk_err;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (nc_ok && (units[i].nc_disp != want[i].nc_disp ||
                    units[i].length != want[i].length)) {
        nc_ok = false;
        std::ostringstream os;
        os << "unit " << i << ": nc [" << units[i].nc_disp << " +"
           << units[i].length << "] vs expected [" << want[i].nc_disp
           << " +" << want[i].length << "]";
        nc_err = os.str();
      }
      if (pk_ok && units[i].pk_disp != want[i].pk_disp) {
        pk_ok = false;
        std::ostringstream os;
        os << "unit " << i << ": pk_disp " << units[i].pk_disp
           << " vs expected " << want[i].pk_disp
           << " (pack destination must tile [0, size*count) in order)";
        pk_err = os.str();
      }
      if (!nc_ok && !pk_ok) break;
    }
    prove(rep, kDevNcExact, nc_ok, std::move(nc_err));
    prove(rep, kDevPkExact, pk_ok, std::move(pk_err));
  } else {
    // Unit-by-unit comparison is meaningless on mismatched lengths, but
    // the obligations still fail with the count witness.
    prove(rep, kDevNcExact, false, "unit count mismatch");
    prove(rep, kDevPkExact, false, "unit count mismatch");
  }
  return rep;
}

Report verify_pipeline(const EnginePipelineParams& params) {
  Report rep;
  {
    std::ostringstream os;
    os << "pipeline(windows=" << params.windows
       << ", slots=" << params.desc_slots
       << ", residue_stream=" << (params.residue_separate_stream ? 1 : 0)
       << ", wire=" << params.wire_fragments
       << ", staging=" << params.staging_depth;
    if (params.stream_triggered) {
      os << ", stream_triggered=1, send_ring=" << params.send_ring_depth;
    }
    os << ")";
    rep.subject = os.str();
  }
  const PipelineDag dag = build_engine_pipeline(params);
  const std::vector<PipelineHazard> hazards = find_hazards(dag);
  std::string detail;
  if (!hazards.empty()) {
    std::ostringstream os;
    os << hazards.size() << " unordered conflicting pair(s); first: "
       << hazards.front().type << " between " << hazards.front().a
       << " and " << hazards.front().b << " on "
       << hazards.front().resource;
    detail = os.str();
  }
  prove(rep, kPipelineHazardFree, hazards.empty(), std::move(detail));
  return rep;
}

}  // namespace gpuddt::verify
