#include "verify/pipeline.h"

#include <algorithm>
#include <stdexcept>

namespace gpuddt::verify {

namespace {

std::size_t add_node(PipelineDag& dag, std::string name, std::string queue,
                     std::vector<ResourceAccess> accesses) {
  dag.nodes.push_back({std::move(name), std::move(queue),
                       std::move(accesses)});
  return dag.nodes.size() - 1;
}

void add_edge(PipelineDag& dag, std::size_t from, std::size_t to,
              const char* why) {
  dag.edges.push_back({from, to, why});
}

bool conflicting(const ResourceAccess& a, const ResourceAccess& b) {
  return a.resource == b.resource && (a.write || b.write) && a.lo < b.hi &&
         b.lo < a.hi;
}

}  // namespace

std::vector<PipelineHazard> find_hazards(const PipelineDag& dag) {
  const std::size_t n = dag.nodes.size();
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const DagEdge& e : dag.edges) {
    if (e.from >= n || e.to >= n) {
      throw std::invalid_argument("verify: pipeline edge out of range");
    }
    succ[e.from].push_back(e.to);
    ++indeg[e.to];
  }
  // Kahn topological order; a cycle means the model itself is broken.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const std::size_t s : succ[v]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != n) {
    throw std::invalid_argument("verify: pipeline DAG has a cycle");
  }
  // Transitive reachability as bitsets, filled in reverse topo order.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(n * words, 0);
  const auto bit = [&](std::size_t from, std::size_t to) {
    return (reach[from * words + to / 64] >> (to % 64)) & 1u;
  };
  for (std::size_t k = n; k-- > 0;) {
    const std::size_t v = order[k];
    for (const std::size_t s : succ[v]) {
      reach[v * words + s / 64] |= std::uint64_t{1} << (s % 64);
      for (std::size_t w = 0; w < words; ++w) {
        reach[v * words + w] |= reach[s * words + w];
      }
    }
  }
  std::vector<PipelineHazard> hazards;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (bit(i, j) || bit(j, i)) continue;  // ordered in some direction
      for (const ResourceAccess& a : dag.nodes[i].accesses) {
        for (const ResourceAccess& b : dag.nodes[j].accesses) {
          if (!conflicting(a, b)) continue;
          hazards.push_back({a.write && b.write ? "WAW" : "RW",
                             dag.nodes[i].name, dag.nodes[j].name,
                             a.resource});
        }
      }
    }
  }
  return hazards;
}

EnginePipelineParams params_from_engine(
    const core::GpuDatatypeEngine::PipelineShape& shape, int windows,
    int wire_fragments) {
  EnginePipelineParams p;
  p.windows = windows;
  p.desc_slots = shape.desc_slots;
  p.residue_separate_stream = shape.residue_separate_stream;
  p.wire_fragments = wire_fragments;
  return p;
}

namespace {

/// The stream-triggered chain (drive_stream_chain, docs/protocols.md):
/// conversion is a host FIFO feeding ONE batch descriptor upload
/// (stage_all), then every per-fragment ordering is a stream/event
/// dependency - pack-ready crossing to the triggered GET queue, GET
/// completion releasing the unpack, the receiver staging ring recycled
/// by unpack completion, and the sender send-ring slot recycled by the
/// GET's completion event crossed back. No node is a host step after the
/// rendezvous.
PipelineDag build_stream_triggered_pipeline(const EnginePipelineParams& p) {
  if (p.wire_fragments < 1 || p.send_ring_depth < 1 || p.staging_depth < 1 ||
      p.windows < 1) {
    throw std::invalid_argument("verify: bad stream-triggered parameters");
  }
  if (p.residue_separate_stream) {
    throw std::invalid_argument(
        "verify: stage_all refuses residue_separate_stream; so does the "
        "model");
  }
  if (p.mutate == MutateDag::kDropWarEdge) {
    throw std::invalid_argument(
        "verify: kDropWarEdge targets the double-buffered descriptor "
        "uploader; the stream-triggered chain uploads once");
  }
  PipelineDag dag;
  const std::int64_t B = 1;
  // Host side: conversion chunks in program order, then the one batch
  // upload of the whole descriptor array.
  std::vector<std::size_t> conv(static_cast<std::size_t>(p.windows));
  for (int w = 0; w < p.windows; ++w) {
    conv[static_cast<std::size_t>(w)] =
        add_node(dag, "conv[" + std::to_string(w) + "]", "host", {});
    if (w > 0) {
      add_edge(dag, conv[static_cast<std::size_t>(w - 1)],
               conv[static_cast<std::size_t>(w)], "host program order");
    }
  }
  const std::size_t upload =
      add_node(dag, "batch_upload", "engine.upload",
               {{"desc_batch", 0, p.windows, true}});
  add_edge(dag, conv[static_cast<std::size_t>(p.windows - 1)], upload,
           "host issue order");
  std::vector<std::size_t> kernel(static_cast<std::size_t>(p.wire_fragments));
  std::vector<std::size_t> wire(static_cast<std::size_t>(p.wire_fragments));
  std::vector<std::size_t> unpack(static_cast<std::size_t>(p.wire_fragments));
  for (int f = 0; f < p.wire_fragments; ++f) {
    const std::size_t fi = static_cast<std::size_t>(f);
    const std::int64_t sslot = f % p.send_ring_depth;
    const std::int64_t rslot = f % p.staging_depth;
    const std::string idx = "[" + std::to_string(f) + "]";
    kernel[fi] = add_node(dag, "kernel" + idx, "engine.kernel",
                          {{"desc_batch", 0, p.windows, false},
                           {"send_ring", sslot, sslot + 1, true}});
    wire[fi] = add_node(dag, "wire" + idx, "wire",
                        {{"send_ring", sslot, sslot + 1, false},
                         {"staging", rslot, rslot + 1, true}});
    unpack[fi] = add_node(dag, "unpack" + idx, "unpack",
                          {{"staging", rslot, rslot + 1, false},
                           {"user_dst", f * B, (f + 1) * B, true}});
  }
  for (int f = 0; f < p.wire_fragments; ++f) {
    const std::size_t fi = static_cast<std::size_t>(f);
    add_edge(dag, upload, kernel[fi], "upload->kernel event");
    add_edge(dag, kernel[fi], wire[fi], "pack-ready event (cross-device)");
    add_edge(dag, wire[fi], unpack[fi], "GET completion event");
    if (f + 1 < p.wire_fragments) {
      add_edge(dag, kernel[fi], kernel[fi + 1], "kernel stream FIFO");
      add_edge(dag, wire[fi], wire[fi + 1], "triggered GET queue FIFO");
      add_edge(dag, unpack[fi], unpack[fi + 1], "unpack stream FIFO");
    }
    if (f + p.staging_depth < p.wire_fragments) {
      add_edge(dag, unpack[fi],
               wire[fi + static_cast<std::size_t>(p.staging_depth)],
               "staging credit return");
    }
    // The sender ring slot is writable again only once its consuming GET
    // completed - the completion event crossed back to the sender's
    // device. Dropping it is the seeded send-ring WAR race.
    if (f + p.send_ring_depth < p.wire_fragments &&
        p.mutate != MutateDag::kDropCreditEdge) {
      add_edge(dag, wire[fi],
               kernel[fi + static_cast<std::size_t>(p.send_ring_depth)],
               "send-ring credit event (cross-device)");
    }
  }
  return dag;
}

}  // namespace

PipelineDag build_engine_pipeline(const EnginePipelineParams& p) {
  if (p.stream_triggered) return build_stream_triggered_pipeline(p);
  if (p.mutate == MutateDag::kDropCreditEdge) {
    throw std::invalid_argument(
        "verify: kDropCreditEdge targets the stream-triggered send ring");
  }
  if (p.windows < 1 || p.desc_slots < 1 || p.staging_depth < 1 ||
      p.wire_fragments > p.windows) {
    throw std::invalid_argument("verify: bad pipeline parameters");
  }
  if (p.wire_fragments > 0 && p.residue_separate_stream) {
    // The wire extension maps fragment f onto window f's packed range;
    // the residue split renumbers those ranges, so model one at a time.
    throw std::invalid_argument(
        "verify: wire extension models the single-stream pipeline only");
  }
  PipelineDag dag;
  const std::int64_t B = 1;  // one abstract byte-range unit per window
  std::vector<std::size_t> conv(p.windows);
  std::vector<std::size_t> upload(p.windows);
  std::vector<std::size_t> kernel(p.windows);
  std::vector<std::size_t> residue(p.windows);
  for (int w = 0; w < p.windows; ++w) {
    const std::int64_t slot = w % p.desc_slots;
    const std::string idx = "[" + std::to_string(w) + "]";
    // conv(w): host-side DEV conversion into private staging memory. The
    // MemcpyAsync source is captured at issue time (pageable-staging
    // semantics in the simulator), so the staged host buffer is not a
    // shared resource - only the device descriptor slot is.
    conv[w] = add_node(dag, "conv" + idx, "host", {});
    upload[w] = add_node(dag, "upload" + idx, "engine.upload",
                         {{"desc_slot", slot, slot + 1, true}});
    const std::int64_t pk_lo = w * B;
    if (!p.residue_separate_stream) {
      kernel[w] = add_node(dag, "kernel" + idx, "engine.kernel",
                           {{"desc_slot", slot, slot + 1, false},
                            {"packed", pk_lo, pk_lo + B, true}});
    } else {
      // Full units on the kernel stream, residues on a second stream;
      // they share the descriptor slot and split the window's packed
      // range (full units first - disjoint by construction).
      kernel[w] = add_node(dag, "kernel" + idx, "engine.kernel",
                           {{"desc_slot", slot, slot + 1, false},
                            {"packed", 2 * pk_lo, 2 * pk_lo + 1, true}});
      residue[w] = add_node(dag, "residue" + idx, "engine.residue",
                            {{"desc_slot", slot, slot + 1, false},
                             {"packed", 2 * pk_lo + 1, 2 * pk_lo + 2, true}});
    }
  }
  for (int w = 0; w < p.windows; ++w) {
    // Host program order: the issuing thread converts window w, issues
    // its upload, then converts window w+1.
    add_edge(dag, conv[w], upload[w], "host issue order");
    if (w + 1 < p.windows) {
      add_edge(dag, conv[w], conv[w + 1], "host program order");
      add_edge(dag, upload[w], upload[w + 1], "upload stream FIFO");
      add_edge(dag, kernel[w], kernel[w + 1], "kernel stream FIFO");
      if (p.residue_separate_stream) {
        add_edge(dag, residue[w], residue[w + 1], "residue stream FIFO");
      }
    }
    // upload_descriptors: EventRecord(upload) + StreamWaitEvent(kernel).
    add_edge(dag, upload[w], kernel[w], "upload->kernel event");
    if (p.residue_separate_stream) {
      add_edge(dag, upload[w], residue[w], "upload->residue event");
    }
    // The desc_last_use_ guard: before window w reuses slot w % slots,
    // its upload waits for the kernel that read that slot last
    // (window w - desc_slots). Dropping this edge is the seeded
    // descriptor-slot WAR race.
    if (w >= p.desc_slots && p.mutate != MutateDag::kDropWarEdge) {
      add_edge(dag, kernel[w - p.desc_slots], upload[w],
               "desc_last_use WAR guard");
      if (p.residue_separate_stream) {
        add_edge(dag, residue[w - p.desc_slots], upload[w],
                 "desc_last_use WAR guard");
      }
    }
  }
  // Wire + unpack extension: fragment f's packed bytes leave through a
  // staging ring of `staging_depth` slots and are scattered on the
  // receiver. Modeled only on the plain-stream configuration (fragment
  // f = window f).
  if (p.wire_fragments > 0) {
    std::vector<std::size_t> wire(p.wire_fragments);
    std::vector<std::size_t> unpack(p.wire_fragments);
    for (int f = 0; f < p.wire_fragments; ++f) {
      const std::int64_t slot = f % p.staging_depth;
      const std::string idx = "[" + std::to_string(f) + "]";
      wire[f] = add_node(dag, "wire" + idx, "wire",
                         {{"packed", f * B, (f + 1) * B, false},
                          {"staging", slot, slot + 1, true}});
      unpack[f] = add_node(dag, "unpack" + idx, "unpack",
                           {{"staging", slot, slot + 1, false},
                            {"user_dst", f * B, (f + 1) * B, true}});
    }
    for (int f = 0; f < p.wire_fragments; ++f) {
      add_edge(dag, kernel[f], wire[f], "pack complete -> RDMA");
      add_edge(dag, wire[f], unpack[f], "fragment arrival event");
      if (f + 1 < p.wire_fragments) {
        add_edge(dag, wire[f], wire[f + 1], "wire FIFO");
        add_edge(dag, unpack[f], unpack[f + 1], "unpack stream FIFO");
      }
      if (f + p.staging_depth < p.wire_fragments) {
        add_edge(dag, unpack[f], wire[f + p.staging_depth],
                 "staging credit return");
      }
    }
  }
  return dag;
}

}  // namespace gpuddt::verify
