// GPUDDT_VERIFY - the verifier's opt-in DevCache-insert hook.
//
// When enabled, every DEV unit list inserted into a DevCache (engine
// finish-path fills and prefetches alike) is first certified by the
// symbolic prover: verify_type over the datatype's three
// representations, then verify_dev over the exact unit list. An
// unproven obligation reports a structured diagnostic into the
// src/check/ sink and throws CertificationFailure - an uncertified DEV
// never becomes reachable from the cache.
//
// Enablement resolves, mirroring the checking layer (check/config.h):
//   1. set_forced() - process-wide override (tools / tests);
//   2. the GPUDDT_VERIFY environment variable ("0"/"off"/"false"
//      disable, anything else enables);
//   3. the GPUDDT_VERIFY build option (compile-time default, OFF).
//
// Certification traffic is observable through the verify.* counters
// (docs/metrics.md): obligations proved/failed, DEVs
// certified/rejected, and wall-clock prover time (verify.prover_ns -
// excluded from canonical dumps, like check.*, because it is
// instrumentation, not simulated behavior).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "core/dev.h"

namespace gpuddt::obs {
class Recorder;
}

namespace gpuddt::verify {

class CertificationFailure : public std::runtime_error {
 public:
  explicit CertificationFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Resolved enablement: forced > environment > build default.
bool enabled();

/// Process-wide override between environment and build default
/// (tools/dev_verify, tests). nullopt restores the environment default.
void set_forced(std::optional<bool> forced);

/// Certify (dt, count, unit_bytes) -> units at a cache-insert boundary.
/// Counts verify.* metrics into `rec` (nullable) and throws
/// CertificationFailure on the first unproven obligation. Callers gate
/// on enabled().
void certify_insert(const mpi::DatatypePtr& dt, std::int64_t count,
                    std::int64_t unit_bytes,
                    std::span<const core::CudaDevDist> units,
                    obs::Recorder* rec);

}  // namespace gpuddt::verify
