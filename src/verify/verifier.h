// The symbolic DEV/datatype verifier - proof obligations and provers.
//
// verify_type() proves, for a committed datatype and ALL counts n (not a
// sampled few), that the three representations the engine juggles -
// constructor tree, compiled program, canonical program - describe
// exactly the same byte-visit sequence, with exact bounds/size/extent
// and no intra- or cross-element overlap. verify_dev() then proves a
// converted CUDA DEV unit list is exactly the closed-form unit split of
// the canonical program: right unit count, every non-contiguous
// displacement exact, pack destinations exactly contiguous over
// [0, size*count). verify_pipeline() proves the engine's fragment
// pipeline hazard-free over all legal interleavings (pipeline.h).
//
// Each check is an *obligation* with a stable name (the catalogue in
// docs/verification.md); a report certifies only when every obligation
// is proved. tools/dev_verify serializes reports as gpuddt-verify-v1
// JSON; the GPUDDT_VERIFY cache-insert hook (hook.h) rejects DEVs whose
// report does not certify.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dev.h"
#include "verify/pipeline.h"
#include "verify/symbolic.h"

namespace gpuddt::verify {

/// One named proof obligation and its outcome. `detail` is empty for a
/// proved obligation and names the refuting witness otherwise.
struct Obligation {
  std::string name;
  bool proved = false;
  std::string detail;
};

struct Report {
  std::string subject;  // what was verified (type tree / DEV key / model)
  std::vector<Obligation> obligations;

  bool certified() const {
    for (const Obligation& o : obligations) {
      if (!o.proved) return false;
    }
    return true;
  }
  /// First unproven obligation; nullptr when certified.
  const Obligation* first_failed() const {
    for (const Obligation& o : obligations) {
      if (!o.proved) return &o;
    }
    return nullptr;
  }
};

// Obligation names (the catalogue; docs/verification.md).
inline constexpr const char* kProgramWellFormed = "program_well_formed";
inline constexpr const char* kTreeEquiv = "tree_equiv";
inline constexpr const char* kCanonicalEquiv = "canonical_equiv";
inline constexpr const char* kBoundsExact = "bounds_exact";
inline constexpr const char* kSizeExact = "size_exact";
inline constexpr const char* kExtentExact = "extent_exact";
inline constexpr const char* kSignatureSize = "signature_size";
inline constexpr const char* kNcNoOverlap = "nc_no_overlap";
inline constexpr const char* kNcNoOverlapAcross = "nc_no_overlap_across";
inline constexpr const char* kDevUnitLen = "dev_unit_len";
inline constexpr const char* kDevUnitCount = "dev_unit_count";
inline constexpr const char* kDevNcExact = "dev_nc_exact";
inline constexpr const char* kDevPkExact = "dev_pk_exact";
inline constexpr const char* kPipelineHazardFree = "pipeline_hazard_free";

/// Prove tree == program == canonical byte-visit equivalence plus the
/// bounds/size/extent/overlap obligations, closed over all counts.
Report verify_type(const mpi::Datatype& dt);

/// Prove `units` is exactly the unit split of (dt, count, unit_bytes).
Report verify_dev(const mpi::Datatype& dt, std::int64_t count,
                  std::int64_t unit_bytes,
                  std::span<const core::CudaDevDist> units);

/// Prove the modeled engine pipeline free of unordered conflicting
/// accesses over all legal interleavings.
Report verify_pipeline(const EnginePipelineParams& params);

/// The closed-form unit split the DEV conversion must produce: every
/// canonical-program block of element 0, in visit order, cut into
/// <= unit_bytes pieces; element e's units are element 0's shifted by
/// (e * extent, e * size). Exposed for tests and tools.
std::vector<core::CudaDevDist> expected_units(const mpi::Datatype& dt,
                                              std::int64_t count,
                                              std::int64_t unit_bytes);

}  // namespace gpuddt::verify
