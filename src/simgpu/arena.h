// A simple thread-safe first-fit arena allocator.
//
// Each simulated device owns one arena backed by a single host allocation;
// "device pointers" are real host pointers into that block, which lets the
// simulated kernels and copy engines move bytes with plain memcpy while the
// pointer registry still distinguishes address spaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace gpuddt::sg {

class Arena {
 public:
  /// Allocation alignment; 512 mirrors cudaMalloc's large alignment and
  /// keeps every fresh device buffer transaction-aligned.
  static constexpr std::size_t kAlign = 512;

  explicit Arena(std::size_t capacity)
      : capacity_(round_up(capacity)),
        // Default-initialized (not zeroed): device memory is large and a
        // fresh cudaMalloc'd buffer has unspecified contents anyway.
        storage_(std::make_unique_for_overwrite<std::byte[]>(capacity_ +
                                                             kAlign)) {
    const auto raw = reinterpret_cast<std::uintptr_t>(storage_.get());
    base_ = storage_.get() + (kAlign - raw % kAlign) % kAlign;
    free_[base()] = capacity_;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  std::byte* base() const { return base_; }
  std::size_t capacity() const { return capacity_; }

  bool contains(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= base() && b < base() + capacity_;
  }

  std::byte* allocate(std::size_t bytes) {
    const std::size_t need = round_up(bytes == 0 ? 1 : bytes);
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= need) {
        std::byte* p = it->first;
        const std::size_t remaining = it->second - need;
        free_.erase(it);
        if (remaining > 0) free_[p + need] = remaining;
        allocated_[p] = need;
        in_use_ += need;
        return p;
      }
    }
    throw std::bad_alloc();
  }

  void deallocate(std::byte* p) {
    if (p == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = allocated_.find(p);
    if (it == allocated_.end())
      throw std::invalid_argument("Arena::deallocate: unknown pointer");
    std::size_t size = it->second;
    in_use_ -= size;
    allocated_.erase(it);
    // Coalesce with the next free block.
    auto next = free_.lower_bound(p);
    if (next != free_.end() && p + size == next->first) {
      size += next->second;
      next = free_.erase(next);
    }
    // Coalesce with the previous free block.
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == p) {
        prev->second += size;
        return;
      }
    }
    free_[p] = size;
  }

  std::size_t bytes_in_use() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }

  /// Size of the live allocation starting at p (0 if p is not live).
  std::size_t allocation_size(const void* p) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = allocated_.find(const_cast<std::byte*>(static_cast<const std::byte*>(p)));
    return it == allocated_.end() ? 0 : it->second;
  }

  /// Base and size of the live allocation *containing* p (interior
  /// pointers resolve to their block), or {nullptr, 0} when p does not
  /// point into a live allocation. Used by the access checker to key
  /// tracked ranges per buffer.
  std::pair<std::byte*, std::size_t> allocation_span(const void* p) const {
    auto* b = const_cast<std::byte*>(static_cast<const std::byte*>(p));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = allocated_.upper_bound(b);
    if (it == allocated_.begin()) return {nullptr, 0};
    --it;
    if (b >= it->first && b < it->first + it->second)
      return {it->first, it->second};
    return {nullptr, 0};
  }

 private:
  static std::size_t round_up(std::size_t n) {
    return (n + kAlign - 1) / kAlign * kAlign;
  }

  std::size_t capacity_;
  std::unique_ptr<std::byte[]> storage_;
  std::byte* base_ = nullptr;
  mutable std::mutex mu_;
  // Interval maps over this arena's own buffer: relative key order equals
  // offset order within storage_, and the order is never emitted.
  // det-lint: allow(pointer_order) - arena-internal interval map
  std::map<std::byte*, std::size_t> free_;       // start -> size
  // det-lint: allow(pointer_order) - arena-internal interval map
  std::map<std::byte*, std::size_t> allocated_;  // start -> size
  std::size_t in_use_ = 0;
};

}  // namespace gpuddt::sg
