// Device-access observation hooks - the simgpu side of src/check/.
//
// Every timed device-memory operation (async copies, kernels, one-sided
// RDMA copies, memsets) can report the byte ranges it touches together
// with its *guaranteed* virtual-time window: the earliest start the
// program's ordering constructs (stream tails, event waits, explicit
// timestamp dependencies) establish, and the finish time that becomes the
// stream tail. An attached AccessObserver derives a happens-before
// relation from those windows; overlapping unordered accesses are the
// stream hazards src/check/access_tracker.h reports.
//
// simgpu only knows this abstract interface; the concrete tracker lives in
// src/check/ (which depends on these headers, never the reverse).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "vtime/vclock.h"

namespace gpuddt::sg {

class Machine;

/// One byte range an operation reads or writes.
struct MemRange {
  const void* ptr = nullptr;
  std::int64_t len = 0;
  bool write = false;
};

/// Identity and guaranteed time window of one device operation.
struct OpInfo {
  /// Static label naming the operation ("memcpy_async", "pack_dev", ...).
  const char* label = "op";
  /// Issuing queue identity: the Stream for stream-ordered operations,
  /// nullptr for host-synchronous or explicitly-timed (TimedCopy) ones.
  const void* queue = nullptr;
  /// Optional queue name (Stream::name()); may be null.
  const char* queue_name = nullptr;
  /// Device the operation executes on (-1 for pure host operations).
  int device = -1;
  /// Guaranteed earliest start: max(stream tail, host clock, explicit
  /// dependency) *before* any resource reservation - contention may delay
  /// the real start further, but that delay is timing luck, not ordering.
  vt::Time start = 0;
  /// Guaranteed finish (what the stream tail is raised to).
  vt::Time finish = 0;
};

/// Abstract sink for access registration. Implemented by
/// check::AccessTracker; null observer = checking off (the default).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// An operation with guaranteed window [info.start, info.finish)
  /// touching `ranges`. Ranges in unregistered host memory are ignored by
  /// the tracker (their lifetime is invisible to the machine).
  virtual void on_op(const OpInfo& info, std::span<const MemRange> ranges) = 0;

  /// An allocation was released (sg::Free / HostFree): drop tracked state
  /// overlapping [ptr, ptr + bytes) so address reuse cannot alias.
  virtual void on_release(const void* ptr, std::size_t bytes) = 0;

  /// Machine::reset_timing(): virtual timelines restart, so prior access
  /// windows are no longer comparable. Drops all tracked accesses.
  virtual void on_reset() = 0;
};

/// Factory for the machine's default observer, defined in
/// src/check/access_tracker.cpp. Returns null when checking is disabled
/// (build default, GPUDDT_CHECK env var and MachineConfig::check decide;
/// see check/config.h). Declared here so Machine can self-attach without
/// simgpu depending on check/ headers.
std::unique_ptr<AccessObserver> make_default_observer(Machine& machine);

}  // namespace gpuddt::sg
