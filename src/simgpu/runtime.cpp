#include "simgpu/runtime.h"

#include <cstring>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace gpuddt::sg {

namespace {

enum class CopyKind { kH2H, kH2D, kD2H, kD2DSame, kD2DPeer };

struct ResolvedCopy {
  CopyKind kind;
  int src_device = -1;
  int dst_device = -1;
};

ResolvedCopy resolve(const HostContext& ctx, const void* dst,
                     const void* src) {
  const PtrAttributes s = ctx.machine->query(src);
  const PtrAttributes d = ctx.machine->query(dst);
  const bool src_dev = s.space == MemorySpace::kDevice;
  const bool dst_dev = d.space == MemorySpace::kDevice;
  if (src_dev && dst_dev) {
    if (s.device == d.device)
      return {CopyKind::kD2DSame, s.device, d.device};
    return {CopyKind::kD2DPeer, s.device, d.device};
  }
  if (src_dev) return {CopyKind::kD2H, s.device, -1};
  if (dst_dev) return {CopyKind::kH2D, -1, d.device};
  return {CopyKind::kH2H, -1, -1};
}

/// Reserve the timed resources for a copy whose earliest start is
/// `earliest`; returns its virtual finish time.
vt::Time reserve_copy(HostContext& ctx, const ResolvedCopy& rc,
                      std::int64_t eff_bytes, vt::Time earliest,
                      vt::Time extra_per_call) {
  const CostModel& cm = ctx.cost();
  switch (rc.kind) {
    case CopyKind::kH2H: {
      // Plain host memcpy on the calling core; no device resource.
      return earliest + cm.cpu_copy_ns(eff_bytes) + extra_per_call;
    }
    case CopyKind::kH2D: {
      const vt::Time dur =
          cm.pcie_latency_ns + cm.h2d_ns(eff_bytes) + extra_per_call;
      return ctx.machine->device(rc.dst_device)
          .pcie()
          .reserve(earliest, dur)
          .finish;
    }
    case CopyKind::kD2H: {
      const vt::Time dur =
          cm.pcie_latency_ns + cm.d2h_ns(eff_bytes) + extra_per_call;
      return ctx.machine->device(rc.src_device)
          .pcie()
          .reserve(earliest, dur)
          .finish;
    }
    case CopyKind::kD2DSame: {
      const vt::Time dur = cm.d2d_copy_ns(eff_bytes) + extra_per_call;
      return ctx.machine->device(rc.src_device)
          .copy_engine()
          .reserve(earliest, dur)
          .finish;
    }
    case CopyKind::kD2DPeer: {
      Machine& m = *ctx.machine;
      if (m.nvlink_connected(rc.src_device, rc.dst_device)) {
        // Endpoints share an NVLink domain: the copy rides both devices'
        // NVLink ports and never touches the PCI-E switch.
        const TopologyConfig& topo = m.config().topo;
        const vt::Time dur = topo.nvlink_latency_ns +
                             vt::transfer_time(eff_bytes, topo.nvlink_gbps) +
                             extra_per_call;
        const auto r1 =
            m.device(rc.src_device).nvlink().reserve(earliest, dur);
        const auto r2 =
            m.device(rc.dst_device).nvlink().reserve(r1.start, dur);
        return r2.finish;
      }
      const vt::Time dur =
          cm.pcie_latency_ns + cm.peer_ns(eff_bytes) + extra_per_call;
      // The transfer occupies both endpoints' PCI-E links.
      const auto r1 = m.device(rc.src_device).pcie().reserve(earliest, dur);
      const auto r2 = m.device(rc.dst_device).pcie().reserve(r1.start, dur);
      return r2.finish;
    }
  }
  return earliest;
}

/// Register an operation's byte ranges with the machine's access observer
/// (no-op when checking is off).
void note_op(HostContext& ctx, const char* label, const Stream* stream,
             int device, vt::Time start, vt::Time finish,
             std::span<const MemRange> ranges) {
  AccessObserver* obs = ctx.machine->observer();
  if (obs == nullptr) return;
  OpInfo info;
  info.label = label;
  info.queue = stream;
  info.queue_name = stream != nullptr ? stream->name() : nullptr;
  info.device = device;
  info.start = start;
  info.finish = finish;
  obs->on_op(info, ranges);
}

void note_op(HostContext& ctx, const char* label, const Stream* stream,
             int device, vt::Time start, vt::Time finish,
             std::initializer_list<MemRange> ranges) {
  note_op(ctx, label, stream, device, start, finish,
          std::span<const MemRange>(ranges.begin(), ranges.size()));
}

int copy_device(const ResolvedCopy& rc) {
  return rc.dst_device >= 0 ? rc.dst_device : rc.src_device;
}

/// 2D copies register per-row ranges (so interleaved-column traffic is
/// judged exactly) up to a row cap, beyond which one conservative
/// spanning range per side keeps tracking cost bounded.
constexpr std::size_t kMax2DRowRanges = 512;

void note_2d(HostContext& ctx, const char* label, const Stream* stream,
             const ResolvedCopy& rc, vt::Time start, vt::Time finish,
             void* dst, std::size_t dpitch, const void* src,
             std::size_t spitch, std::size_t width, std::size_t height) {
  if (ctx.machine->observer() == nullptr) return;
  std::vector<MemRange> rs;
  rs.reserve(2 * std::min(height, kMax2DRowRanges));
  const auto add_side = [&](const void* p, std::size_t pitch, bool write) {
    const auto* b = static_cast<const std::byte*>(p);
    if (pitch == width) {
      rs.push_back({b, static_cast<std::int64_t>(width * height), write});
    } else if (height <= kMax2DRowRanges) {
      for (std::size_t h = 0; h < height; ++h)
        rs.push_back(
            {b + h * pitch, static_cast<std::int64_t>(width), write});
    } else {
      rs.push_back({b, static_cast<std::int64_t>((height - 1) * pitch + width),
                    write});
    }
  };
  add_side(src, spitch, false);
  add_side(dst, dpitch, true);
  note_op(ctx, label, stream, copy_device(rc), start, finish,
          std::span<const MemRange>(rs.data(), rs.size()));
}

}  // namespace

void NoteAccess(HostContext& ctx, const char* label, vt::Time start,
                vt::Time finish, std::span<const MemRange> ranges) {
  note_op(ctx, label, nullptr, -1, start, finish, ranges);
}

void* Malloc(HostContext& ctx, std::size_t bytes) {
  ctx.clock.advance(vt::usec(2.0));
  return ctx.dev().arena().allocate(bytes);
}

void Free(HostContext& ctx, void* ptr) {
  if (ptr == nullptr) return;
  const PtrAttributes a = ctx.machine->query(ptr);
  if (a.space != MemorySpace::kDevice)
    throw std::invalid_argument("sg::Free: not a device pointer");
  Arena& arena = ctx.machine->device(a.device).arena();
  const std::size_t bytes = arena.allocation_size(ptr);
  arena.deallocate(static_cast<std::byte*>(ptr));
  if (AccessObserver* obs = ctx.machine->observer())
    obs->on_release(ptr, bytes);
}

void* HostAlloc(HostContext& ctx, std::size_t bytes, bool mapped) {
  ctx.clock.advance(vt::usec(2.0));
  return ctx.machine->host_alloc(bytes, mapped);
}

void HostFree(HostContext& ctx, void* ptr) { ctx.machine->host_free(ptr); }

PtrAttributes PointerGetAttributes(const HostContext& ctx, const void* ptr) {
  return ctx.machine->query(ptr);
}

void Memcpy(HostContext& ctx, void* dst, const void* src, std::size_t bytes) {
  if (bytes == 0) return;
  const ResolvedCopy rc = resolve(ctx, dst, src);
  std::memcpy(dst, src, bytes);
  const vt::Time overhead =
      rc.kind == CopyKind::kH2H ? 0 : ctx.cost().memcpy_call_ns;
  ctx.clock.advance(overhead);
  const vt::Time start = ctx.clock.now();
  const vt::Time finish =
      reserve_copy(ctx, rc, static_cast<std::int64_t>(bytes), start, 0);
  note_op(ctx, "memcpy", nullptr, copy_device(rc), start, finish,
          {MemRange{src, static_cast<std::int64_t>(bytes), false},
           MemRange{dst, static_cast<std::int64_t>(bytes), true}});
  ctx.clock.wait_until(finish);
}

vt::Time MemcpyAsync(HostContext& ctx, void* dst, const void* src,
                     std::size_t bytes, Stream& stream) {
  if (bytes == 0) return stream.tail();
  const ResolvedCopy rc = resolve(ctx, dst, src);
  std::memcpy(dst, src, bytes);
  ctx.clock.advance(ctx.cost().enqueue_ns);
  const vt::Time earliest = stream.order_after(ctx.clock.now());
  const vt::Time finish = reserve_copy(
      ctx, rc, static_cast<std::int64_t>(bytes), earliest,
      rc.kind == CopyKind::kH2H ? 0 : ctx.cost().memcpy_call_ns);
  note_op(ctx, "memcpy_async", &stream, copy_device(rc), earliest, finish,
          {MemRange{src, static_cast<std::int64_t>(bytes), false},
           MemRange{dst, static_cast<std::int64_t>(bytes), true}});
  stream.set_tail(finish);
  return finish;
}

namespace {

/// Effective bytes per row the 2D copy engine moves: rows are transferred
/// in `memcpy2d_granule`-sized bursts, and widths off the granule incur the
/// read-modify-write penalty the paper's Figure 8 demonstrates.
std::int64_t memcpy2d_effective_bytes(const CostModel& cm, std::size_t width,
                                      std::size_t height) {
  const std::int64_t g = cm.memcpy2d_granule;
  std::int64_t per_row =
      (static_cast<std::int64_t>(width) + g - 1) / g * g;
  if (static_cast<std::int64_t>(width) % g != 0) {
    per_row = static_cast<std::int64_t>(
        static_cast<double>(per_row) * cm.memcpy2d_misaligned_penalty);
  }
  return per_row * static_cast<std::int64_t>(height);
}

void memcpy2d_functional(void* dst, std::size_t dpitch, const void* src,
                         std::size_t spitch, std::size_t width,
                         std::size_t height) {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t h = 0; h < height; ++h)
    std::memcpy(d + h * dpitch, s + h * spitch, width);
}

}  // namespace

void Memcpy2D(HostContext& ctx, void* dst, std::size_t dpitch, const void* src,
              std::size_t spitch, std::size_t width, std::size_t height) {
  if (width == 0 || height == 0) return;
  if (width > dpitch || width > spitch)
    throw std::invalid_argument("Memcpy2D: width exceeds pitch");
  const ResolvedCopy rc = resolve(ctx, dst, src);
  memcpy2d_functional(dst, dpitch, src, spitch, width, height);
  const CostModel& cm = ctx.cost();
  const std::int64_t eff = memcpy2d_effective_bytes(cm, width, height);
  const vt::Time row_cost = static_cast<vt::Time>(
      cm.memcpy2d_row_ns * static_cast<double>(height));
  ctx.clock.advance(rc.kind == CopyKind::kH2H ? 0 : cm.memcpy_call_ns);
  const vt::Time start = ctx.clock.now();
  const vt::Time finish = reserve_copy(ctx, rc, eff, start, row_cost);
  note_2d(ctx, "memcpy2d", nullptr, rc, start, finish, dst, dpitch, src,
          spitch, width, height);
  ctx.clock.wait_until(finish);
}

vt::Time Memcpy2DAsync(HostContext& ctx, void* dst, std::size_t dpitch,
                       const void* src, std::size_t spitch, std::size_t width,
                       std::size_t height, Stream& stream) {
  if (width == 0 || height == 0) return stream.tail();
  if (width > dpitch || width > spitch)
    throw std::invalid_argument("Memcpy2DAsync: width exceeds pitch");
  const ResolvedCopy rc = resolve(ctx, dst, src);
  memcpy2d_functional(dst, dpitch, src, spitch, width, height);
  const CostModel& cm = ctx.cost();
  const std::int64_t eff = memcpy2d_effective_bytes(cm, width, height);
  const vt::Time row_cost = static_cast<vt::Time>(
      cm.memcpy2d_row_ns * static_cast<double>(height));
  ctx.clock.advance(cm.enqueue_ns);
  const vt::Time earliest = stream.order_after(ctx.clock.now());
  const vt::Time finish = reserve_copy(
      ctx, rc, eff, earliest,
      row_cost + (rc.kind == CopyKind::kH2H ? 0 : cm.memcpy_call_ns));
  note_2d(ctx, "memcpy2d_async", &stream, rc, earliest, finish, dst, dpitch,
          src, spitch, width, height);
  stream.set_tail(finish);
  return finish;
}

void Memcpy3D(HostContext& ctx, void* dst, std::size_t dpitch,
              std::size_t dslice, const void* src, std::size_t spitch,
              std::size_t sslice, std::size_t width, std::size_t height,
              std::size_t depth) {
  if (width == 0 || height == 0 || depth == 0) return;
  if (width > dpitch || width > spitch || height * dpitch > dslice ||
      height * spitch > sslice)
    throw std::invalid_argument("Memcpy3D: extents exceed pitches");
  // One 2D copy per slice: matches the driver's behaviour for pitched 3D
  // blocks (a 3D DMA descriptor iterating slice by slice).
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t z = 0; z < depth; ++z)
    Memcpy2D(ctx, d + z * dslice, dpitch, s + z * sslice, spitch, width,
             height);
}

void Memset(HostContext& ctx, void* dst, int value, std::size_t bytes) {
  if (bytes == 0) return;
  std::memset(dst, value, bytes);
  const PtrAttributes d = ctx.machine->query(dst);
  if (d.space == MemorySpace::kDevice) {
    const CostModel& cm = ctx.cost();
    ctx.clock.advance(cm.memcpy_call_ns);
    const vt::Time start = ctx.clock.now();
    const vt::Time dur =
        vt::transfer_time(static_cast<std::int64_t>(bytes), cm.gpu_mem_gbps);
    const auto r =
        ctx.machine->device(d.device).copy_engine().reserve(start, dur);
    note_op(ctx, "memset", nullptr, d.device, start, r.finish,
            {MemRange{dst, static_cast<std::int64_t>(bytes), true}});
    ctx.clock.wait_until(r.finish);
  } else {
    const vt::Time start = ctx.clock.now();
    ctx.clock.advance(
        ctx.cost().cpu_copy_ns(static_cast<std::int64_t>(bytes)));
    note_op(ctx, "memset", nullptr, -1, start, ctx.clock.now(),
            {MemRange{dst, static_cast<std::int64_t>(bytes), true}});
  }
}

vt::Time TimedCopy(HostContext& ctx, void* dst, const void* src,
                   std::size_t bytes, vt::Time earliest, const char* label) {
  if (bytes == 0) return earliest;
  const ResolvedCopy rc = resolve(ctx, dst, src);
  std::memcpy(dst, src, bytes);
  const vt::Time start = std::max(earliest, vt::Time{0});
  const vt::Time finish =
      reserve_copy(ctx, rc, static_cast<std::int64_t>(bytes), start, 0);
  note_op(ctx, label, nullptr, copy_device(rc), start, finish,
          {MemRange{src, static_cast<std::int64_t>(bytes), false},
           MemRange{dst, static_cast<std::int64_t>(bytes), true}});
  return finish;
}

void StreamSynchronize(HostContext& ctx, Stream& stream) {
  ctx.clock.wait_until(stream.tail());
}

Event EventRecord(HostContext& ctx, Stream& stream) {
  (void)ctx;
  return Event{stream.tail()};
}

void StreamWaitEvent(HostContext& ctx, Stream& stream, const Event& ev) {
  (void)ctx;
  stream.set_tail(ev.timestamp);
}

void EventSynchronize(HostContext& ctx, const Event& ev) {
  ctx.clock.wait_until(ev.timestamp);
}

vt::Time EventReadyOn(const HostContext& ctx, const Event& ev,
                      int origin_device, int target_device) {
  if (ev.timestamp == 0) return 0;  // never-recorded event: no dependency
  if (origin_device == target_device) return ev.timestamp;
  return ev.timestamp + ctx.cost().cross_event_wait_ns;
}

vt::Time StreamWaitEventCross(HostContext& ctx, Stream& stream,
                              const Event& ev, int origin_device) {
  const vt::Time ready =
      EventReadyOn(ctx, ev, origin_device, stream.device().id());
  stream.set_tail(ready);
  return ready;
}

namespace {
double pcie_dir_gbps(const CostModel& cm, PcieDir dir) {
  switch (dir) {
    case PcieDir::kToHost:
      return cm.pcie_d2h_gbps;
    case PcieDir::kFromHost:
      return cm.pcie_h2d_gbps;
    case PcieDir::kPeer:
      return cm.kernel_peer_gbps;
    case PcieDir::kNone:
      break;
  }
  return cm.pcie_d2h_gbps;
}
}  // namespace

vt::Time KernelDuration(const CostModel& cm, const KernelProfile& profile,
                        int sms_available) {
  const int width = std::max(1, std::min(profile.blocks, sms_available));
  const vt::Time mem_ns = static_cast<vt::Time>(
      static_cast<double>(
          vt::transfer_time(profile.device_txn_bytes, cm.gpu_mem_gbps)) *
      (1.0 + cm.kernel_mem_inefficiency));
  const vt::Time compute_ns = vt::transfer_time(
      profile.device_txn_bytes, cm.sm_copy_gbps * static_cast<double>(width));
  const vt::Time pcie_ns = vt::transfer_time(
      profile.pcie_bytes, pcie_dir_gbps(cm, profile.pcie_dir));
  return cm.kernel_launch_ns + std::max({mem_ns, compute_ns, pcie_ns});
}

vt::Time LaunchKernel(HostContext& ctx, Stream& stream,
                      const KernelProfile& profile,
                      const std::function<void()>& body, const char* label,
                      std::span<const MemRange> ranges,
                      const vt::Time* triggered_at) {
  body();
  const CostModel& cm = ctx.cost();
  if (triggered_at == nullptr) ctx.clock.advance(cm.enqueue_ns);
  Device& dev = stream.device();
  const vt::Time earliest = stream.order_after(
      triggered_at != nullptr ? *triggered_at : ctx.clock.now());
  const int width = std::max(1, std::min(profile.blocks, dev.sm().capacity()));
  const vt::Time dur = KernelDuration(cm, profile, dev.sm().capacity());
  const auto r = dev.sm().reserve(earliest, dur, width);
  if (profile.pcie_bytes > 0) {
    // Zero-copy / peer traffic holds the PCI-E link for its share of the
    // kernel's duration.
    const vt::Time pcie_ns = vt::transfer_time(
        profile.pcie_bytes, pcie_dir_gbps(cm, profile.pcie_dir));
    dev.pcie().reserve(r.start, pcie_ns);
  }
  note_op(ctx, label, &stream, dev.id(), earliest, r.finish, ranges);
  stream.set_tail(r.finish);
  return r.finish;
}

IpcMemHandle IpcGetMemHandle(HostContext& ctx, void* device_ptr) {
  const PtrAttributes a = ctx.machine->query(device_ptr);
  if (a.space != MemorySpace::kDevice)
    throw std::invalid_argument("IpcGetMemHandle: not a device pointer");
  Arena& arena = ctx.machine->device(a.device).arena();
  const std::size_t size = arena.allocation_size(device_ptr);
  ctx.clock.advance(ctx.cost().ipc_get_handle_ns);
  return IpcMemHandle{
      a.device,
      static_cast<std::uint64_t>(static_cast<std::byte*>(device_ptr) -
                                 arena.base()),
      static_cast<std::uint64_t>(size)};
}

void* IpcOpenMemHandle(HostContext& ctx, const IpcMemHandle& handle) {
  if (handle.device < 0 || handle.device >= ctx.machine->num_devices())
    throw std::invalid_argument("IpcOpenMemHandle: bad handle");
  ctx.clock.advance(ctx.cost().ipc_open_ns);
  return ctx.machine->device(handle.device).arena().base() + handle.offset;
}

}  // namespace gpuddt::sg
