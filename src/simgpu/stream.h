// Streams and events.
//
// A Stream is an in-order queue of device operations identified, in virtual
// time, by the finish timestamp of its last operation (`tail`). Because the
// functional side of every operation executes eagerly on the enqueuing
// thread, a stream needs no real queue - only the timestamp and the device
// it is bound to. Events capture a stream's tail so other streams or the
// host can wait on it, exactly mirroring cudaEventRecord/cudaStreamWaitEvent.
#pragma once

#include <algorithm>
#include <mutex>

#include "vtime/vclock.h"

namespace gpuddt::sg {

class Device;

class Stream {
 public:
  /// `name` (optional, static string) labels the stream in access-checker
  /// diagnostics; it has no semantic effect.
  explicit Stream(Device* dev, const char* name = nullptr)
      : dev_(dev), name_(name) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device& device() const { return *dev_; }
  const char* name() const { return name_; }

  /// Finish time of the last enqueued operation.
  vt::Time tail() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tail_;
  }

  /// Serialize an operation after the current tail and any dependency:
  /// returns the operation's earliest possible start.
  vt::Time order_after(vt::Time dependency) {
    std::lock_guard<std::mutex> lock(mu_);
    return std::max(tail_, dependency);
  }

  void set_tail(vt::Time t) {
    std::lock_guard<std::mutex> lock(mu_);
    tail_ = std::max(tail_, t);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    tail_ = 0;
  }

 private:
  Device* dev_;
  const char* name_ = nullptr;
  mutable std::mutex mu_;
  vt::Time tail_ = 0;
};

/// A recorded point in a stream's virtual timeline.
struct Event {
  vt::Time timestamp = 0;
};

}  // namespace gpuddt::sg
