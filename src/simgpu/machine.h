// The simulated heterogeneous node: host memory plus a set of GPU devices.
//
// Machine owns the device arenas, the pointer registry (what address space
// does a pointer live in?) and the timed resources of every device. It is
// shared by all simulated MPI ranks of a run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simgpu/access.h"
#include "simgpu/arena.h"
#include "simgpu/cost_model.h"
#include "vtime/resource.h"

namespace gpuddt::sg {

enum class MemorySpace {
  kUnregisteredHost,  // ordinary host memory
  kPinnedHost,        // page-locked host memory (HostAlloc)
  kMappedHost,        // page-locked and mapped into device space (zero-copy)
  kDevice,            // GPU memory
};

struct PtrAttributes {
  MemorySpace space = MemorySpace::kUnregisteredHost;
  int device = -1;  // owning device for kDevice pointers
};

/// Multi-node topology model (docs/simulator.md). Every default models
/// the degenerate flat topology the simulator always assumed - no NVLink,
/// one full-bisection IB switch - so configurations that never touch
/// these fields produce byte-identical virtual timelines with history.
struct TopologyConfig {
  // --- NVLink domains within a node --------------------------------------
  /// Devices [k*n, (k+1)*n) share an NVLink domain: peer copies between
  /// them ride the devices' NVLink ports instead of their PCI-E links.
  /// 0 disables NVLink modeling (every peer copy crosses the PCI-E
  /// switch, the K40-era default).
  int nvlink_domain_size = 0;
  /// Per-direction NVLink bandwidth (P100-era NVLink 1.0: 4 bonded
  /// links ~ 40 GB/s each way after protocol overhead, versus ~12 GB/s
  /// over the PCI-E switch).
  double nvlink_gbps = 40.0;
  /// DMA start latency over NVLink (no root-complex traversal).
  vt::Time nvlink_latency_ns = vt::usec(1.9);

  // --- Fat-tree InfiniBand between nodes ---------------------------------
  /// Nodes [k*n, (k+1)*n) hang off leaf switch k; traffic between nodes
  /// under different leaves additionally crosses both leaves' shared
  /// spine uplinks. 0 models one full-bisection switch (the default:
  /// node-pair links only, no shared uplink contention).
  int fat_tree_leaf_nodes = 0;
  /// Spine uplinks per leaf switch. Large cross-leaf transfers
  /// round-robin across them (the ib_rails idiom one level up);
  /// small/control traffic stays on uplink 0.
  int fat_tree_uplinks = 1;
  /// Bandwidth of one uplink. A leaf with fewer uplinks than nodes is
  /// oversubscribed: concurrent cross-leaf flows queue here even when
  /// their node-pair links are idle.
  double fat_tree_uplink_gbps = 5.8;
  /// Extra store-and-forward latency of the leaf -> spine -> leaf detour.
  vt::Time fat_tree_hop_ns = vt::usec(0.7);
};

struct MachineConfig {
  int num_devices = 2;
  /// SMs per device (K40: 15 SMX).
  int sms_per_device = 15;
  /// Bytes of simulated device memory per device.
  std::size_t device_memory_bytes = std::size_t{1} << 30;
  CostModel cost;
  /// Intra-node NVLink domains and inter-node fat-tree shape.
  TopologyConfig topo;
  /// Device-access checking (src/check/): -1 inherits the build/env
  /// default (GPUDDT_CHECK option, GPUDDT_CHECK env var), 0 forces it
  /// off, 1 forces it on for this machine.
  int check = -1;
};

/// One simulated GPU.
class Device {
 public:
  Device(int id, const MachineConfig& cfg)
      : id_(id), arena_(cfg.device_memory_bytes), sm_(cfg.sms_per_device) {}

  int id() const { return id_; }
  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }

  /// The SM array executing kernels.
  vt::CapacityResource& sm() { return sm_; }
  /// The DMA copy engine serving cudaMemcpy-style operations.
  vt::TimedResource& copy_engine() { return copy_engine_; }
  /// The PCI-E link between this device and the host / switch.
  vt::TimedResource& pcie() { return pcie_; }
  /// This device's NVLink port; reserved (instead of pcie) by peer
  /// copies whose endpoints share an NVLink domain.
  vt::TimedResource& nvlink() { return nvlink_; }

  void reset_timing() {
    sm_.reset();
    copy_engine_.reset();
    pcie_.reset();
    nvlink_.reset();
  }

 private:
  int id_;
  Arena arena_;
  vt::CapacityResource sm_;
  vt::TimedResource copy_engine_;
  vt::TimedResource pcie_;
  vt::TimedResource nvlink_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg = {}) : cfg_(cfg) {
    if (cfg.num_devices < 1)
      throw std::invalid_argument("Machine: need at least one device");
    devices_.reserve(cfg.num_devices);
    for (int d = 0; d < cfg.num_devices; ++d)
      devices_.push_back(std::make_unique<Device>(d, cfg));
    observer_ = make_default_observer(*this);  // null when checking is off
  }

  const MachineConfig& config() const { return cfg_; }
  const CostModel& cost() const { return cfg_.cost; }
  CostModel& mutable_cost() { return cfg_.cost; }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int d) { return *devices_.at(d); }

  /// NVLink domain of a device, or -1 when NVLink is not modeled.
  int nvlink_domain(int device) const {
    return cfg_.topo.nvlink_domain_size > 0
               ? device / cfg_.topo.nvlink_domain_size
               : -1;
  }
  /// True when a peer copy between these (distinct) devices rides NVLink.
  bool nvlink_connected(int a, int b) const {
    return a != b && a >= 0 && b >= 0 && nvlink_domain(a) >= 0 &&
           nvlink_domain(a) == nvlink_domain(b);
  }

  // --- Host allocations -----------------------------------------------------

  /// Page-locked host memory, optionally mapped into device space.
  void* host_alloc(std::size_t bytes, bool mapped) {
    auto block =
        std::make_unique_for_overwrite<std::byte[]>(bytes == 0 ? 1 : bytes);
    std::byte* p = block.get();
    std::lock_guard<std::mutex> lock(mu_);
    host_blocks_[p] = HostBlock{std::move(block), bytes, mapped};
    return p;
  }

  void host_free(void* p) {
    if (p == nullptr) return;
    std::size_t bytes = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = host_blocks_.find(static_cast<std::byte*>(p));
      if (it == host_blocks_.end())
        throw std::invalid_argument("Machine::host_free: unknown pointer");
      bytes = it->second.size;
      host_blocks_.erase(it);
    }
    if (observer_) observer_->on_release(p, bytes);
  }

  /// Make an externally-owned host range (protocol staging, AM payload
  /// bytes) visible to pointer queries and the access checker. Non-owning:
  /// the caller keeps the memory alive until unregister_host_range. Copy
  /// costs do not distinguish pinned from pageable host memory, so
  /// registration never changes timing - only checker visibility.
  void register_host_range(void* p, std::size_t bytes, bool mapped = false) {
    if (p == nullptr || bytes == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    host_blocks_[static_cast<std::byte*>(p)] =
        HostBlock{nullptr, bytes, mapped};
  }

  /// Drop a register_host_range registration; releases the checker's
  /// access history for the range, so a later allocation reusing these
  /// addresses is not compared against this buffer's accesses.
  void unregister_host_range(void* p) {
    if (p == nullptr) return;
    std::size_t bytes = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = host_blocks_.find(static_cast<std::byte*>(p));
      if (it == host_blocks_.end())
        throw std::invalid_argument(
            "Machine::unregister_host_range: unknown pointer");
      bytes = it->second.size;
      host_blocks_.erase(it);
    }
    if (observer_) observer_->on_release(p, bytes);
  }

  /// Base and size of the registered host block containing p, or
  /// {nullptr, 0} for unregistered host memory.
  std::pair<const void*, std::size_t> host_block_span(const void* p) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = host_blocks_.upper_bound(
        const_cast<std::byte*>(static_cast<const std::byte*>(p)));
    if (it != host_blocks_.begin()) {
      --it;
      const auto* base = it->first;
      if (p >= base && p < base + it->second.size)
        return {base, it->second.size};
    }
    return {nullptr, 0};
  }

  // --- Pointer queries --------------------------------------------------------

  PtrAttributes query(const void* p) const {
    for (const auto& dev : devices_) {
      if (dev->arena().contains(p)) return {MemorySpace::kDevice, dev->id()};
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = host_blocks_.upper_bound(
        const_cast<std::byte*>(static_cast<const std::byte*>(p)));
    if (it != host_blocks_.begin()) {
      --it;
      const auto* base = it->first;
      if (p >= base && p < base + it->second.size) {
        return {it->second.mapped ? MemorySpace::kMappedHost
                                  : MemorySpace::kPinnedHost,
                -1};
      }
    }
    return {MemorySpace::kUnregisteredHost, -1};
  }

  bool is_device_ptr(const void* p) const {
    return query(p).space == MemorySpace::kDevice;
  }

  /// Reset all timing state (between benchmark repetitions). Also drops
  /// the access checker's history: restarted timelines are not comparable
  /// with pre-reset access windows.
  void reset_timing() {
    for (auto& d : devices_) d->reset_timing();
    if (observer_) observer_->on_reset();
  }

  /// The attached access observer; null when checking is disabled.
  AccessObserver* observer() const { return observer_.get(); }

  /// Replace the access observer (tests install byte-accounting sinks;
  /// null detaches). Swap only while no device work is in flight - the
  /// new observer starts with no access history.
  void set_observer(std::unique_ptr<AccessObserver> obs) {
    observer_ = std::move(obs);
  }

 private:
  struct HostBlock {
    std::unique_ptr<std::byte[]> storage;
    std::size_t size = 0;
    bool mapped = false;
  };

  MachineConfig cfg_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<AccessObserver> observer_;
  mutable std::mutex mu_;
  // det-lint: allow(pointer_order) - address-interval lookup, never emitted
  std::map<std::byte*, HostBlock> host_blocks_;
};

}  // namespace gpuddt::sg
