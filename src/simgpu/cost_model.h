// Calibrated performance model for the simulated GPU machine.
//
// Every constant below is a knob; the defaults are calibrated to the
// NVIDIA PSG cluster the paper evaluates on (Kepler K40 GPUs, CUDA 7.0,
// PCI-E gen3, FDR InfiniBand) so that the benchmark harness reproduces the
// *shapes* of the paper's figures: who wins, by what factor, and where the
// crossovers fall. The functional side of every operation (actual byte
// movement) is independent of this model, so tests remain exact.
//
// Conventions:
//  * Bandwidths are in GB/s = 1e9 bytes per second.
//  * A device-to-device copy of B bytes reads B and writes B, so it
//    occupies 2*B bytes of memory-system traffic; reported "bandwidth" in
//    the figure harnesses follows the paper and divides the *payload*
//    bytes moved per direction by time.
//  * Device memory is accessed in 128-byte transactions; host-mapped
//    (zero-copy) memory moves over PCI-E in cacheline-sized bursts.
#pragma once

#include <cstdint>

#include "vtime/vclock.h"

namespace gpuddt::sg {

struct CostModel {
  // --- GPU memory system -------------------------------------------------
  /// Sustained device-memory byte rate (read+write traffic combined).
  /// K40: 288 GB/s theoretical, ~2*180 GB/s practical copy traffic.
  double gpu_mem_gbps = 360.0;
  /// Device memory transaction granularity (bytes).
  int mem_txn_bytes = 128;
  /// Relative inefficiency of an SM-driven copy kernel versus the DMA copy
  /// engine (issue latency, address arithmetic, imperfect ILP). This is
  /// what caps a perfectly coalesced pack kernel at ~94% of cudaMemcpy.
  double kernel_mem_inefficiency = 0.064;

  // --- Kernel execution ---------------------------------------------------
  /// End-to-end kernel launch latency (driver + device scheduling).
  vt::Time kernel_launch_ns = vt::usec(6.5);
  /// Host-side cost of enqueuing any async operation.
  vt::Time enqueue_ns = vt::usec(1.2);
  /// Copy throughput a single SM sustains (read+write traffic). With 15
  /// SMs this exceeds gpu_mem_gbps, so full-width kernels are memory
  /// bound, while narrow launches (the Section 5.3 resource sweep) scale
  /// roughly linearly until saturation.
  double sm_copy_gbps = 26.0;

  // --- Copy engine (cudaMemcpy) -------------------------------------------
  /// Fixed cost of a cudaMemcpy call (driver + DMA descriptor setup).
  vt::Time memcpy_call_ns = vt::usec(6.0);
  /// Per-row descriptor cost of cudaMemcpy2D. Pitched copies are a
  /// single DMA descriptor, so the per-row cost is tiny; the interesting
  /// behaviour is the granule penalty below (Figure 8).
  double memcpy2d_row_ns = 1.5;
  /// cudaMemcpy2D moves rows in 64-byte granules; rows whose width is not
  /// a multiple of this suffer read-modify-write behaviour on top of the
  /// granule rounding (the Figure 8 regression).
  int memcpy2d_granule = 64;
  double memcpy2d_misaligned_penalty = 2.4;

  // --- PCI-Express ----------------------------------------------------------
  /// Host <-> device sustained bandwidth (gen3 x16, K40 era).
  double pcie_h2d_gbps = 10.2;
  double pcie_d2h_gbps = 10.6;
  /// Device <-> device peer bandwidth through the PCI-E switch. The paper
  /// (citing [18]) notes GPU-GPU PCI-E bandwidth exceeds CPU-GPU.
  double pcie_peer_gbps = 12.0;
  /// Effective bandwidth of a *kernel* dereferencing IPC-mapped peer
  /// memory: many small transactions under-utilize PCI-E, which is why the
  /// paper's receiver stages packed fragments into a local GPU buffer
  /// before unpacking (10-20% faster, Section 5.2).
  double kernel_peer_gbps = 8.0;
  /// Latency of starting a PCI-E DMA transfer.
  vt::Time pcie_latency_ns = vt::usec(4.5);

  // --- Interconnect ---------------------------------------------------------
  /// FDR InfiniBand point-to-point.
  double ib_gbps = 5.8;
  vt::Time ib_latency_ns = vt::usec(1.7);
  /// Per-message CPU overhead of posting a network operation.
  vt::Time ib_post_ns = vt::usec(0.9);
  /// Shared-memory (intra-node, host path) BTL copy bandwidth and latency.
  double sm_gbps = 6.0;
  vt::Time sm_latency_ns = vt::usec(0.6);

  // --- CUDA IPC / GPUDirect ---------------------------------------------------
  /// One-time cost of cudaIpcOpenMemHandle (cached afterwards).
  vt::Time ipc_open_ns = vt::usec(90.0);
  vt::Time ipc_get_handle_ns = vt::usec(3.0);

  // --- Stream-triggered chains -------------------------------------------------
  /// Propagation latency of a stream-ordered wait whose event was recorded
  /// on a *different* device's timeline (or by the NIC): the doorbell /
  /// completion-flag write crosses the PCI-E switch before the waiting
  /// queue can observe it. Same-device event waits remain free - they are
  /// resolved inside one device's scheduler. This is the per-dependency
  /// cost of the stream-triggered fragment chains (docs/protocols.md),
  /// replacing the far larger per-fragment host AM round-trips. A single
  /// posted doorbell write plus the waiting queue's poll observing it -
  /// no host software dispatch - so it sits below sm_latency_ns (an AM
  /// hop that does run a host handler).
  vt::Time cross_event_wait_ns = vt::usec(0.5);

  // --- Host CPU ---------------------------------------------------------------
  /// Single-core host memcpy/pack bandwidth.
  double cpu_copy_gbps = 6.0;
  /// Host-side datatype-stack traversal: cost per contiguous block visited.
  double cpu_block_walk_ns = 3.0;
  /// Host-side cost of emitting one CUDA DEV work-unit descriptor.
  /// Calibrated so that full conversion of an indexed type costs about as
  /// much as its pack kernel - the regime where the paper's conversion /
  /// kernel pipelining "almost doubles" performance (Figure 7).
  double cpu_dev_emit_ns = 4.0;

  // Derived helpers ------------------------------------------------------------

  /// Duration of a DMA copy moving `bytes` within one device.
  vt::Time d2d_copy_ns(std::int64_t bytes) const {
    return vt::transfer_time(2 * bytes, gpu_mem_gbps);
  }

  vt::Time h2d_ns(std::int64_t bytes) const {
    return vt::transfer_time(bytes, pcie_h2d_gbps);
  }
  vt::Time d2h_ns(std::int64_t bytes) const {
    return vt::transfer_time(bytes, pcie_d2h_gbps);
  }
  vt::Time peer_ns(std::int64_t bytes) const {
    return vt::transfer_time(bytes, pcie_peer_gbps);
  }

  vt::Time cpu_copy_ns(std::int64_t bytes) const {
    return vt::transfer_time(bytes, cpu_copy_gbps);
  }

  /// Number of `mem_txn_bytes`-sized lines touched by [offset, offset+len).
  std::int64_t txn_lines(std::int64_t offset, std::int64_t len) const {
    if (len <= 0) return 0;
    const std::int64_t first = offset / mem_txn_bytes;
    const std::int64_t last = (offset + len - 1) / mem_txn_bytes;
    return last - first + 1;
  }
};

}  // namespace gpuddt::sg
