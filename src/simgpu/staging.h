// Scoped checker visibility for externally-owned host scratch.
//
// Protocol layers stage payloads through plain malloc'd host buffers (AM
// payload spans, RMA accumulate scratch, pack/unpack bounce buffers) that
// the Machine knows nothing about, so the access checker used to skip
// those ranges entirely - device-side races against such scratch went
// undetected. Registering the span for the scope of the operation closes
// that blind spot; unregistering on scope exit releases the tracked
// history, so a later buffer reusing the same addresses is not compared
// against this one's accesses.
//
// Registration is a no-op when no observer is attached (the common
// production path) and never changes timing - only checker visibility
// (see Machine::register_host_range).
#pragma once

#include <cstddef>

#include "simgpu/machine.h"

namespace gpuddt::sg {

class ScopedStagingRegistration {
 public:
  ScopedStagingRegistration(Machine& m, const void* p, std::size_t n)
      : m_(m), p_(m.observer() != nullptr && n > 0 ? p : nullptr) {
    if (p_ != nullptr)
      m_.register_host_range(const_cast<void*>(p_), n, /*mapped=*/true);
  }
  ~ScopedStagingRegistration() {
    if (p_ != nullptr) m_.unregister_host_range(const_cast<void*>(p_));
  }
  ScopedStagingRegistration(const ScopedStagingRegistration&) = delete;
  ScopedStagingRegistration& operator=(const ScopedStagingRegistration&) =
      delete;

 private:
  Machine& m_;
  const void* p_;
};

}  // namespace gpuddt::sg
